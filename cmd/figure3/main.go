// Figure3 regenerates Figure 3 of the paper: simulation time against host
// workload l (SHA-1 iterations per message) for the four test setups —
// conventional non-deterministic/deterministic and Spawn & Merge
// non-deterministic/deterministic. It prints the measurement table, an
// ASCII rendering of the figure, and the quantitative claims of Section
// III (constant Spawn & Merge overhead, relative overhead shrinking with
// l, the det-vs-nondet gap, linear growth of both substrates).
//
// The default sweep is scaled down so it finishes in a couple of minutes;
// -full runs the paper's exact parameters (l up to 10000, which takes on
// the order of an hour of CPU).
//
//	go run ./cmd/figure3
//	go run ./cmd/figure3 -full -repeats 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/netsim"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full sweep (l = 0..10000 in steps of 1000)")
	ablation := flag.Bool("ablation", false, "also measure the copy-on-write ablation engines (spawnmerge-*-cow)")
	repeats := flag.Int("repeats", 1, "runs averaged per data point")
	hosts := flag.Int("hosts", 20, "simulated hosts (paper: 20)")
	messages := flag.Int("messages", 100, "initial messages (paper: 100)")
	ttl := flag.Int("ttl", 100, "hops per message (paper: 100)")
	quiet := flag.Bool("quiet", false, "suppress per-measurement progress")
	flag.Parse()

	workloads := []int{0, 250, 500, 1000, 1500, 2000}
	if *full {
		workloads = []int{0, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}
	}

	cfg := bench.SweepConfig{
		Base:      netsim.Config{Hosts: *hosts, Messages: *messages, TTL: *ttl, Seed: 1},
		Workloads: workloads,
		Repeats:   *repeats,
	}
	if *ablation {
		cfg.Engines = append(append([]string{}, bench.EngineOrder...),
			"spawnmerge-nondet-cow", "spawnmerge-det-cow")
	}
	if !*quiet {
		cfg.Verbose = os.Stderr
		fmt.Fprintf(os.Stderr, "sweeping l over %v (%d hosts, %d messages, TTL %d, %d repeat(s) per point)\n",
			workloads, *hosts, *messages, *ttl, *repeats)
	}

	points, err := bench.Sweep(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Figure 3: simulation time vs host workload ===")
	bench.WriteTable(os.Stdout, points)
	fmt.Println()
	bench.WriteASCIIChart(os.Stdout, points, 16)
	fmt.Println()
	fmt.Println("=== Section III claims ===")
	bench.WriteAnalysis(os.Stdout, bench.Analyze(points))
}

package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/collab"
	"repro/internal/faultnet"
	"repro/internal/memnet"
	"repro/internal/stats"
)

// The -shard soak probes the sharded document service at scale: the same
// ≥100k-op client workload is run against a single-process MultiServer
// reference and then against 1-, 2- and 4-shard topologies (wire batching
// on), a 4-shard topology with the inter-shard fabric on seeded faultnet
// chaos, and a 4-shard journaled topology whose busiest shard is
// SIGKILLed and resumed mid-traffic. Every run must converge to the
// reference's per-document canonical fingerprints with an exact edit
// count — the cross-shard determinism guarantee under load, faults and
// crash recovery.

// shardSoakClients spreads two writers per document. The fan-out is
// deliberately wide: every OK reply quotes the whole post-merge document,
// so per-op cost grows with document length — concentrating 100k ops on
// a few documents turns the soak quadratic. Spreading them over 256
// documents keeps each under ~5KB at the default op budget while still
// contending every shard's merge loop with hundreds of live sessions.
const (
	shardSoakClients = 512
	shardSoakDocs    = 256
)

func shardSoakDocNames() []string {
	names := make([]string, shardSoakDocs)
	for i := range names {
		names[i] = fmt.Sprintf("doc%03d", i)
	}
	return names
}

func shardSoakInitial() map[string]string {
	m := make(map[string]string, shardSoakDocs)
	for _, name := range shardSoakDocNames() {
		m[name] = ""
	}
	return m
}

// shardDrive runs the sharded workload: `clients` concurrent sessions,
// each USE-ing its document (two clients per document) and prepending
// `edits` unique markers, queued and flushed in wire batches when batch >
// 0. Returns the first client error.
func shardDrive(d collab.Dialer, clients, edits int, opts collab.ClientOptions, batch int) error {
	names := shardSoakDocNames()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := collab.DialWith(d, opts)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", id, err)
				return
			}
			defer c.Close()
			if _, err := c.Use(names[id%len(names)]); err != nil {
				errs <- fmt.Errorf("client %d: use: %w", id, err)
				return
			}
			for j := 0; j < edits; j++ {
				marker := fmt.Sprintf("c%d-e%d;", id, j)
				if batch > 0 {
					c.QueueInsert(0, marker)
					if c.Queued() >= batch || j == edits-1 {
						if err := c.Flush(); err != nil {
							errs <- fmt.Errorf("client %d flush at %d: %w", id, j, err)
							return
						}
					}
				} else if _, err := c.Insert(0, marker); err != nil {
					errs <- fmt.Errorf("client %d edit %d: %w", id, j, err)
					return
				}
			}
			errs <- c.Bye()
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardReference runs the workload on a single-process MultiServer — the
// ground truth: per-document canonical fingerprints and the exact edit
// count every sharded topology must reproduce.
func shardReference(clients, edits int) (map[string]uint64, int64, error) {
	l := memnet.Listen(1024)
	ref := collab.ServeDocs(l, shardSoakInitial())
	err := shardDrive(l, clients, edits, collab.ClientOptions{RequestTimeout: 10 * time.Second}, 8)
	if serr := ref.Shutdown(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return nil, 0, err
	}
	fps := make(map[string]uint64, shardSoakDocs)
	for _, name := range shardSoakDocNames() {
		doc, ok := ref.Document(name)
		if !ok {
			return nil, 0, fmt.Errorf("reference lost document %q", name)
		}
		fps[name] = collab.CanonicalFingerprint(doc)
	}
	return fps, ref.Edits(), nil
}

// shardCheck verifies a completed sharded run against the reference.
func shardCheck(s *collab.ShardedServer, want map[string]uint64, wantEdits int64) error {
	for _, name := range shardSoakDocNames() {
		doc, ok := s.Document(name)
		if !ok {
			return fmt.Errorf("sharded service lost document %q", name)
		}
		if got := collab.CanonicalFingerprint(doc); got != want[name] {
			return fmt.Errorf("document %q fingerprint %016x != reference %016x", name, got, want[name])
		}
	}
	if got := s.Edits(); got != wantEdits {
		return fmt.Errorf("edits = %d, want exactly %d", got, wantEdits)
	}
	return nil
}

// shardReport prints one run's throughput and merge-latency digest and
// folds the service counters into the soak's aggregate.
func shardReport(kind string, s *collab.ShardedServer, shards, ops int, elapsed time.Duration, counters *stats.Counters) {
	h := s.MergeLatency()
	fmt.Printf("  %-7s %d shards: %6d ops in %8v (%7.0f ops/s), merge p50 %6.0fµs p99 %6.0fµs (%d batches)\n",
		kind, shards, ops, elapsed.Round(time.Millisecond),
		float64(ops)/elapsed.Seconds(),
		h.Quantile(0.5)*1e6, h.Quantile(0.99)*1e6, h.Count())
	for k, v := range s.Stats().Snapshot() {
		counters.Add("shard."+k, v)
	}
}

// shardCleanProbe is one fault-free topology run.
func shardCleanProbe(shards, clients, edits int, want map[string]uint64, counters *stats.Counters) error {
	l := memnet.Listen(1024)
	s, err := collab.ServeSharded(l, shardSoakInitial(), collab.ShardedOptions{Shards: shards})
	if err != nil {
		return err
	}
	start := time.Now()
	err = shardDrive(l, clients, edits, collab.ClientOptions{RequestTimeout: 10 * time.Second}, 8)
	if serr := s.Shutdown(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	shardReport("clean", s, shards, clients*edits, time.Since(start), counters)
	return shardCheck(s, want, int64(clients*edits))
}

// shardChaosProbe runs the 4-shard topology with the inter-shard fabric
// on seeded faultnet — drops, resets and a bounded burst of self-healing
// partition pulses — while clients ride the router's rid-deduplicated
// retries. At-least-once wire delivery must still converge exactly once.
func shardChaosProbe(seed int64, clients, edits int, want map[string]uint64, counters *stats.Counters) error {
	fnet := faultnet.New(faultnet.Config{Seed: seed, DropProb: 0.03, ResetProb: 0.02})
	l := memnet.Listen(1024)
	s, err := collab.ServeSharded(l, shardSoakInitial(), collab.ShardedOptions{
		Shards:      4,
		PipeTimeout: 50 * time.Millisecond,
		ShardNet:    func(id int) collab.ListenDialer { return fnet.Listen(id, 64) },
	})
	if err != nil {
		return err
	}
	// Bounded pulse burst: each blackholes the next 3 writes on a rotating
	// shard link and self-heals on traffic. Bounding the count guarantees
	// the blackholes drain — pulsing for the whole run would re-arm the
	// swallow budgets faster than timeout-paced traffic can spend them.
	stop := make(chan struct{})
	var pulses sync.WaitGroup
	pulses.Add(1)
	go func() {
		defer pulses.Done()
		for i := 0; i < 40; i++ {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				fnet.PartitionFor(i%4, 3)
			}
		}
	}()
	start := time.Now()
	err = shardDrive(l, clients, edits, collab.ClientOptions{
		RequestTimeout: 500 * time.Millisecond,
		Backoff:        collab.Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, MaxAttempts: 5000},
	}, 8)
	close(stop)
	pulses.Wait()
	for id := 0; id < 4; id++ {
		fnet.Heal(id)
	}
	if serr := s.Shutdown(); serr != nil && err == nil {
		err = serr
	}
	for k, v := range fnet.Stats().Snapshot() {
		counters.Add("faultnet."+k, v)
	}
	if err != nil {
		return err
	}
	if injected := fnet.Stats().Get("drop") + fnet.Stats().Get("reset"); injected == 0 {
		return fmt.Errorf("no faults were injected; the chaos run proved nothing")
	}
	shardReport("chaos", s, 4, clients*edits, time.Since(start), counters)
	return shardCheck(s, want, int64(clients*edits))
}

// shardKillProbe runs the journaled 4-shard topology and SIGKILLs the
// shard owning the first document mid-traffic, resuming it from its
// journal after a dead-air window. Acked ops survive (flushed before
// ack); unacked ones retry under their original rid.
func shardKillProbe(clients, edits int, want map[string]uint64, counters *stats.Counters) error {
	dir, err := os.MkdirTemp("", "soak-shard-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	l := memnet.Listen(1024)
	s, err := collab.ServeSharded(l, shardSoakInitial(), collab.ShardedOptions{
		Shards: 4,
		Dir:    dir,
	})
	if err != nil {
		return err
	}
	victim := s.RouteOf(shardSoakDocNames()[0])

	start := time.Now()
	done := make(chan error, 1)
	go func() {
		done <- shardDrive(l, clients, edits, collab.ClientOptions{
			RequestTimeout: 500 * time.Millisecond,
			Backoff:        collab.Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, MaxAttempts: 20000},
		}, 8)
	}()
	time.Sleep(20 * time.Millisecond) // let traffic build up
	if kerr := s.KillShard(victim); kerr != nil {
		return fmt.Errorf("kill shard %d: %w", victim, kerr)
	}
	time.Sleep(10 * time.Millisecond) // dead air: clients shed and retry
	if rerr := s.ResumeShard(victim); rerr != nil {
		return fmt.Errorf("resume shard %d: %w", victim, rerr)
	}
	err = <-done
	if serr := s.Shutdown(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	if s.Stats().Get("shard_kills") != 1 || s.Stats().Get("shard_resumes") != 1 {
		return fmt.Errorf("kill/resume counters = %d/%d, want 1/1",
			s.Stats().Get("shard_kills"), s.Stats().Get("shard_resumes"))
	}
	shardReport("kill", s, 4, clients*edits, time.Since(start), counters)
	return shardCheck(s, want, int64(clients*edits))
}

// shardSoak drives full passes — reference, 1/2/4-shard clean sweep,
// 4-shard chaos, 4-shard kill/resume — until the deadline, always
// completing at least one pass. ops is the per-run client-op budget
// (default 100k, trimmed by CI smoke).
func shardSoak(duration time.Duration, baseSeed int64, ops int, reg *repro.MetricsRegistry) {
	clients := shardSoakClients
	edits := ops / clients
	if edits < 1 {
		edits = 1
	}
	counters := stats.NewCounters()
	if reg != nil {
		reg.AddCounters("shard", counters)
	}
	fmt.Printf("shard soak: %d clients × %d edits = %d ops per run over %d docs\n",
		clients, edits, clients*edits, shardSoakDocs)

	want, refEdits, err := shardReference(clients, edits)
	if err != nil {
		fmt.Printf("SHARD REFERENCE FAILED (single-process run, nothing injected): %v\n", err)
		os.Exit(1)
	}
	if refEdits != int64(clients*edits) {
		fmt.Printf("SHARD REFERENCE FAILED: reference edits = %d, want %d\n", refEdits, clients*edits)
		os.Exit(1)
	}

	deadline := time.Now().Add(duration)
	passes := 0
	for passes == 0 || time.Now().Before(deadline) {
		seed := baseSeed + int64(passes)
		for _, shards := range []int{1, 2, 4} {
			if err := shardCleanProbe(shards, clients, edits, want, counters); err != nil {
				fmt.Printf("SHARD CONVERGENCE VIOLATION: pass %d, %d shards clean: %v\n", passes, shards, err)
				os.Exit(1)
			}
		}
		if err := shardChaosProbe(seed, clients, edits, want, counters); err != nil {
			fmt.Printf("SHARD CHAOS VIOLATION: pass %d, seed %d: %v\n", passes, seed, err)
			os.Exit(1)
		}
		if err := shardKillProbe(clients, edits, want, counters); err != nil {
			fmt.Printf("SHARD KILL/RESUME VIOLATION: pass %d: %v\n", passes, err)
			os.Exit(1)
		}
		passes++
	}
	fmt.Printf("clean: %d passes, %d ops each over 1/2/4 shards + chaos + kill/resume, all converged (%d frames, %d forwards, %d replays)\n",
		passes, clients*edits,
		counters.Get("shard.shard_frames"), counters.Get("shard.forwarded"), counters.Get("shard.shard_replayed"))
	fmt.Printf("counters: %s\n", counters)
}

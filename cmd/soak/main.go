// Soak is the long-running QA tool: for a given duration it keeps
// probing the framework's two load-bearing guarantees on randomized
// workloads —
//
//   - determinism: randomly shaped task trees and randomly configured
//     simulations are executed repeatedly and fingerprint-compared;
//   - correctness: every simulation result is verified against the
//     abstract hash-chain model (netsim.VerifyTraceChains).
//
// Any violation stops the run with a nonzero exit and the offending seed,
// which reproduces the failure deterministically.
//
//	go run ./cmd/soak -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/netsim"
)

// taskProbe builds a random-shaped task tree from seed and returns its
// result fingerprint. The shape and every operation derive from the seed,
// so two executions must agree.
func taskProbe(seed int64) uint64 {
	list := repro.NewList(0)
	text := repro.NewText("s")
	counter := repro.NewCounter(0)

	var body func(seed int64, depth int) repro.Func
	body = func(seed int64, depth int) repro.Func {
		return func(ctx *repro.Ctx, data []repro.Mergeable) error {
			r := rand.New(rand.NewSource(seed))
			l := data[0].(*repro.List[int])
			tx := data[1].(*repro.Text)
			c := data[2].(*repro.Counter)
			for i, n := 0, r.Intn(5); i < n; i++ {
				switch r.Intn(4) {
				case 0:
					l.Insert(r.Intn(l.Len()+1), r.Intn(100))
				case 1:
					if l.Len() > 0 {
						l.Delete(r.Intn(l.Len()))
					}
				case 2:
					tx.Insert(r.Intn(tx.Len()+1), string(rune('a'+r.Intn(26))))
				default:
					c.Add(int64(r.Intn(20) - 10))
				}
			}
			if depth > 0 {
				for k, kids := 0, r.Intn(3); k < kids; k++ {
					ctx.Spawn(body(seed*7919+int64(k+1), depth-1), l, tx, c)
				}
				if r.Intn(2) == 0 {
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	if err := repro.Run(body(seed, 3), list, text, counter); err != nil {
		log.Fatalf("seed %d: task probe failed: %v", seed, err)
	}
	h := list.Fingerprint()
	h ^= text.Fingerprint() * 1099511628211
	h ^= counter.Fingerprint() * 16777619
	return h
}

// simProbe runs one random simulation config on a random engine,
// verifies its hash chains, and (for deterministic engines) re-runs it to
// compare fingerprints.
func simProbe(r *rand.Rand) error {
	engines := netsim.AllEngines()
	e := engines[r.Intn(len(engines))]
	cfg := netsim.Config{
		Hosts:    2 + r.Intn(6),
		Messages: 4 + r.Intn(12),
		TTL:      2 + r.Intn(8),
		Workload: r.Intn(4),
		Seed:     r.Uint64(),
		Routing:  e.Routing,
	}
	res, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s %+v: %w", e.Name, cfg, err)
	}
	if err := netsim.VerifyTraceChains(res, cfg); err != nil {
		return fmt.Errorf("%s %+v: %w", e.Name, cfg, err)
	}
	if e.DeterministicResults {
		res2, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s rerun: %w", e.Name, err)
		}
		if res2.Fingerprint != res.Fingerprint {
			return fmt.Errorf("%s %+v: non-deterministic (%x vs %x)", e.Name, cfg, res.Fingerprint, res2.Fingerprint)
		}
	}
	return nil
}

func main() {
	duration := flag.Duration("duration", 30*time.Second, "how long to soak")
	seed := flag.Int64("seed", time.Now().UnixNano(), "base seed (printed for reproduction)")
	flag.Parse()

	fmt.Printf("soaking for %v (base seed %d)\n", *duration, *seed)
	r := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)
	taskProbes, simProbes := 0, 0

	for time.Now().Before(deadline) {
		s := r.Int63()
		want := taskProbe(s)
		for i := 0; i < 3; i++ {
			if got := taskProbe(s); got != want {
				fmt.Printf("DETERMINISM VIOLATION: task probe seed %d: %x != %x\n", s, got, want)
				os.Exit(1)
			}
		}
		taskProbes++

		if err := simProbe(r); err != nil {
			fmt.Printf("SIMULATION VIOLATION: %v\n", err)
			os.Exit(1)
		}
		simProbes++
	}
	fmt.Printf("clean: %d task probes (×4 runs each), %d simulation probes\n", taskProbes, simProbes)
}

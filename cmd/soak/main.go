// Soak is the long-running QA tool: for a given duration it keeps
// probing the framework's two load-bearing guarantees on randomized
// workloads —
//
//   - determinism: randomly shaped task trees and randomly configured
//     simulations are executed repeatedly and fingerprint-compared;
//   - correctness: every simulation result is verified against the
//     abstract hash-chain model (netsim.VerifyTraceChains).
//
// Any violation stops the run with a nonzero exit and the offending seed,
// which reproduces the failure deterministically.
//
// With -chaos the soak instead runs the distributed runtime under the
// fault-injecting faultnet transport for the whole duration: every probe
// builds a fresh cluster behind a seeded mix of latency, message drops,
// connection resets and dial failures, and every probe that completes
// must reproduce the fault-free fingerprint exactly — the
// determinism-under-failover guarantee. Probes that chaos kills outright
// are counted, not failed.
//
// With -kill the soak probes crash recovery end to end: it forks journaled
// worker processes (RunJournaled), SIGKILLs each one at a random point
// mid-run, resumes the journal in a fresh process (Resume) and repeats
// until a worker completes — then holds the journaled result fingerprint
// to an uninterrupted in-process reference. Every kill exercises a real
// torn WAL tail; every resume exercises full recovery.
//
// With -churn the soak probes the elastic cluster end to end: each round
// forks a journaled coordinator process that drives seeded join/drain/
// leave churn while placing remote work on the shifting membership,
// SIGKILLs the coordinator mid-run, resumes it from its journal until it
// completes, and verifies the sealed fingerprint against an uninterrupted
// in-process run of the same seed. The recovered membership log feeds the
// churn.* counters (-metrics exports them).
//
// With -explore the soak rotates the built-in schedule-exploration
// scenarios (internal/explore) under the random-walk strategy, so every
// probe also exercises forced MergeAny pick orders and decision-driven
// fault injection; -metrics exports the explorer's progress counters.
//
// With -collab the soak probes the collaborative front door end to end:
// every round runs a full multi-client editing workload through a seeded
// faultnet (drops, resets, dial failures and self-healing partition
// pulses) — every client must complete its whole edit script via
// automatic reconnect+resume, and the canonical final fingerprint and
// exact edit count must match a fault-free reference run. A final
// overload round starves the admission gates (session cap, token bucket,
// merge backpressure) and demands explicit BUSY shedding with zero lost
// or duplicated acked edits.
//
// With -mem the soak probes the bounded-memory guarantee: every round
// runs a compressed endurance workload unbounded (history GC off, no
// journal) and bounded (eager op-log GC, WAL segment rotation, checkpoint
// pruning), demands bit-identical fingerprints, retained history a small
// fraction of the unbounded run's, journal disk under a fixed bound at
// every wave, a clean read-only Verify plus a full replay of the sealed
// rotated journal, and a post-GC heap that stays flat across rounds.
//
//	go run ./cmd/soak -duration 30s
//	go run ./cmd/soak -duration 30s -chaos
//	go run ./cmd/soak -duration 30s -kill
//	go run ./cmd/soak -duration 30s -churn
//	go run ./cmd/soak -duration 30s -collab
//	go run ./cmd/soak -duration 30s -explore -metrics localhost:0
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/collab"
	"repro/internal/cow"
	"repro/internal/dist"
	"repro/internal/explore"
	"repro/internal/faultnet"
	"repro/internal/journal"
	"repro/internal/memnet"
	"repro/internal/mergeable"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/task"
)

func init() {
	dist.RegisterListCodec[int]("soak-list-int")
	dist.RegisterSetCodec[int]("soak-set-int")
	for i, delta := range []int64{100, 200, 300} {
		node := i
		d := delta
		dist.RegisterFunc(fmt.Sprintf("soak-chaos-%d", node), func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.List[int]).Insert(0, node+1)
			data[1].(*mergeable.Counter).Add(d)
			return nil
		})
	}
	// The -churn workload: slot-addressed remote effects, so any
	// placement, rebalance or resumed re-placement must reproduce the one
	// fingerprint. The sleep widens the window for the parent's SIGKILL to
	// land mid-journal.
	for slot := 0; slot < churnSoakWaves*churnSoakTasks; slot++ {
		s := slot
		dist.RegisterFunc(fmt.Sprintf("soak-churn-%d", s), func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
			time.Sleep(2 * time.Millisecond)
			data[0].(*mergeable.List[int]).Append(s)
			data[1].(*mergeable.Counter).Add(1 << uint(s))
			return nil
		})
	}
}

// chaosProbe runs the three-node distributed determinism workload on a
// cluster whose transport injects seeded faults. It returns the merged
// fingerprint, or the error chaos inflicted.
func chaosProbe(seed int64, faults bool, counters *stats.Counters) (uint64, error) {
	opts := dist.Options{Nodes: 3}
	var fnet *faultnet.Network
	if faults {
		fnet = faultnet.New(faultnet.Config{
			Seed:         seed,
			DropProb:     0.02,
			ResetProb:    0.01,
			DialFailProb: 0.02,
			MaxDelay:     500 * time.Microsecond,
		})
		opts.SendTimeout = time.Second
		opts.RecvTimeout = time.Second
		opts.HeartbeatInterval = 50 * time.Millisecond
		opts.HeartbeatTimeout = 300 * time.Millisecond
		opts.Retry = dist.RetryPolicy{MaxAttempts: 4}
		opts.Listen = func(node int) dist.Listener { return fnet.Listen(node, 64) }
	}
	cluster := dist.NewClusterWith(opts)
	defer func() {
		cluster.Close()
		if counters != nil {
			for k, v := range cluster.Stats().Snapshot() {
				counters.Add("dist."+k, v)
			}
			if fnet != nil {
				for k, v := range fnet.Stats().Snapshot() {
					counters.Add("faultnet."+k, v)
				}
			}
		}
	}()

	list := mergeable.NewList(0)
	cnt := mergeable.NewCounter(0)
	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		for i := 0; i < 3; i++ {
			cluster.SpawnRemote(ctx, i, fmt.Sprintf("soak-chaos-%d", i), data[0], data[1])
		}
		return ctx.MergeAll()
	}, list, cnt)
	if err != nil {
		return 0, err
	}
	return mergeable.CombineFingerprints(list.Fingerprint(), cnt.Fingerprint()), nil
}

// chaosSoak drives chaosProbe until the deadline, holding every
// successful run to the fault-free fingerprint.
func chaosSoak(duration time.Duration, baseSeed int64) {
	want, err := chaosProbe(0, false, nil)
	if err != nil {
		log.Fatalf("fault-free reference probe failed: %v", err)
	}
	r := rand.New(rand.NewSource(baseSeed))
	deadline := time.Now().Add(duration)
	counters := stats.NewCounters()
	probes, lost := 0, 0
	for time.Now().Before(deadline) {
		s := r.Int63()
		got, err := chaosProbe(s, true, counters)
		probes++
		if err != nil {
			lost++ // chaos killed the run; that is the transport working as configured
			continue
		}
		if got != want {
			fmt.Printf("DETERMINISM VIOLATION under chaos: seed %d: %x != %x\n", s, got, want)
			os.Exit(1)
		}
	}
	fmt.Printf("clean: %d chaos probes (%d lost to injected faults, %d fingerprint-verified)\n",
		probes, lost, probes-lost)
	fmt.Printf("counters: %s\n", counters)
	if probes == lost {
		if probes == 0 {
			fmt.Println("WARNING: duration too short, no chaos probes ran")
		} else {
			fmt.Println("WARNING: every probe was lost to chaos; fingerprints never checked")
		}
		os.Exit(1)
	}
}

// killData returns fresh instances of the -kill workload's structures.
func killData() []mergeable.Mergeable {
	return []mergeable.Mergeable{mergeable.NewCounter(0), mergeable.NewSet[int]()}
}

// killWorkload is the journaled workload behind -kill: three waves of
// three children, each wave drained with MergeAny. The pick order is
// non-deterministic, but every child's effect commutes (a distinct
// counter bit, a distinct set element), so the final fingerprint is
// pick-order-independent — the invariant the kill loop checks across
// SIGKILL and resume. The sleeps keep the run long enough for the
// parent's kill to land mid-journal.
func killWorkload(ctx *task.Ctx, data []mergeable.Mergeable) error {
	for wave := 0; wave < 3; wave++ {
		for c := 0; c < 3; c++ {
			id := wave*3 + c
			ctx.Spawn(func(_ *task.Ctx, data []mergeable.Mergeable) error {
				time.Sleep(2 * time.Millisecond)
				data[0].(*mergeable.Counter).Add(1 << id)
				data[1].(*mergeable.Set[int]).Add(id)
				return nil
			}, data...)
		}
		for c := 0; c < 3; c++ {
			if _, err := ctx.MergeAny(); err != nil {
				return err
			}
		}
	}
	return nil
}

// killReference runs the -kill workload uninterrupted and in-process,
// returning the fingerprint every journaled worker must reproduce.
func killReference() uint64 {
	data := killData()
	if err := task.Run(killWorkload, data...); err != nil {
		log.Fatalf("kill reference run failed: %v", err)
	}
	return mergeable.CombineFingerprints(data[0].Fingerprint(), data[1].Fingerprint())
}

// killChild is the re-exec'd worker: resume the journal in dir, or start
// the run if nothing durable exists yet. It is the process the parent
// SIGKILLs.
func killChild(dir string) {
	_, err := repro.Resume(dir, killWorkload)
	if err == nil {
		os.Exit(0)
	}
	if !errors.Is(err, repro.ErrNoJournaledRun) {
		log.Fatalf("kill child: resume %s: %v", dir, err)
	}
	// Nothing durable survived (the previous worker died before the
	// inputs record landed). Start over in a clean directory.
	if err := os.RemoveAll(dir); err != nil {
		log.Fatalf("kill child: reset %s: %v", dir, err)
	}
	if err := repro.RunJournaled(dir, killWorkload, killData()...); err != nil {
		log.Fatalf("kill child: run %s: %v", dir, err)
	}
	os.Exit(0)
}

// killSoak forks journaled workers, SIGKILLs them mid-run and resumes
// them until one completes, then verifies the journaled fingerprint
// against the uninterrupted reference. Repeats until the deadline.
func killSoak(duration time.Duration, baseSeed int64) {
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot locate own binary for re-exec: %v", err)
	}
	want := killReference()
	counters := stats.NewCounters()
	r := rand.New(rand.NewSource(baseSeed))
	deadline := time.Now().Add(duration)

	for time.Now().Before(deadline) {
		dir, err := os.MkdirTemp("", "soak-kill-*")
		if err != nil {
			log.Fatalf("mkdir: %v", err)
		}
		counters.Inc("kill.runs")
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				log.Fatalf("kill soak: worker never completed after %d attempts (dir %s)", attempt, dir)
			}
			if attempt > 0 {
				counters.Inc("kill.resumes")
			}
			cmd := exec.Command(self, "-kill-child", dir)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				log.Fatalf("start worker: %v", err)
			}
			// Every fourth attempt runs unkilled so the loop always
			// terminates; the others die at a random point mid-run.
			killed := attempt%4 != 3
			if killed {
				time.Sleep(time.Duration(2+r.Intn(25)) * time.Millisecond)
				_ = cmd.Process.Kill()
				counters.Inc("kill.sigkills")
			}
			if err := cmd.Wait(); err == nil {
				break
			} else if !killed {
				log.Fatalf("worker failed without being killed: %v", err)
			}
		}

		// The worker exited cleanly: its journal must hold a done record
		// whose fingerprint matches the uninterrupted reference.
		j, err := journal.Open(dir, journal.Options{Encode: dist.EncodeSnapshot, Decode: dist.DecodeSnapshot})
		if err != nil {
			fmt.Printf("KILL-RESUME VIOLATION: completed journal unreadable: %v\n", err)
			os.Exit(1)
		}
		rec := j.Recovery()
		j.Close()
		if !rec.Done {
			fmt.Printf("KILL-RESUME VIOLATION: worker exited 0 but journal %s has no done record\n", dir)
			os.Exit(1)
		}
		if rec.Fingerprint != want {
			fmt.Printf("KILL-RESUME VIOLATION: journal %s fingerprint %x != reference %x\n", dir, rec.Fingerprint, want)
			os.Exit(1)
		}
		counters.Inc("kill.verified")
		os.RemoveAll(dir)
	}

	snap := counters.Snapshot()
	fmt.Printf("clean: %d kill runs (%d SIGKILLs, %d resumes, %d fingerprint-verified)\n",
		snap["kill.runs"], snap["kill.sigkills"], snap["kill.resumes"], snap["kill.verified"])
	fmt.Printf("counters: %s\n", counters)
	if snap["kill.runs"] == 0 {
		fmt.Println("WARNING: duration too short, no kill runs completed")
		os.Exit(1)
	}
	if snap["kill.resumes"] == 0 {
		fmt.Println("WARNING: no worker was ever resumed; kills landed too late to test recovery")
		os.Exit(1)
	}
}

// Churn soak sizing: waves of remote work interleaved with seeded
// membership transitions.
const (
	churnSoakWaves = 3
	churnSoakTasks = 2
)

// churnData returns fresh instances of the -churn workload's structures.
func churnData() []mergeable.Mergeable {
	return []mergeable.Mergeable{mergeable.NewList(0), mergeable.NewCounter(0)}
}

// churnWorkload is the journaled workload behind -churn: every wave a
// seeded membership transition (join, drain or leave, guarded so a
// placeable member always remains) runs before two remote tasks land on
// seeded targets. The cluster arrives via pointer because the journal's
// OnOpen hook builds it — membership epochs and routes must land in the
// same crash-consistent WAL the run itself uses, so a resumed coordinator
// re-drives the exact transition sequence under replay verification.
func churnWorkload(seed int64, cluster **dist.Cluster) task.Func {
	return func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		c := *cluster
		r := rand.New(rand.NewSource(seed))
		for wave := 0; wave < churnSoakWaves; wave++ {
			var active []int
			for _, m := range c.Members() {
				if m.State == dist.StateActive {
					active = append(active, m.Node)
				}
			}
			switch action := r.Intn(4); {
			case action == 1:
				if _, err := c.Join(); err != nil {
					return err
				}
			case action == 2 && len(active) >= 2:
				if err := c.Drain(active[r.Intn(len(active))]); err != nil {
					return err
				}
			case action == 3 && len(active) >= 2:
				if err := c.Leave(active[r.Intn(len(active))]); err != nil {
					return err
				}
			}
			active = active[:0]
			for _, m := range c.Members() {
				if m.State == dist.StateActive {
					active = append(active, m.Node)
				}
			}
			for tk := 0; tk < churnSoakTasks; tk++ {
				slot := wave*churnSoakTasks + tk
				c.SpawnRemote(ctx, active[r.Intn(len(active))], fmt.Sprintf("soak-churn-%d", slot), data[0], data[1])
			}
			if err := ctx.MergeAll(); err != nil {
				return err
			}
		}
		return nil
	}
}

// churnJournalOptions wires a fresh two-node cluster into the journal the
// run opens, so coordinator state (membership, routes) is journaled with
// the run.
func churnJournalOptions(cluster **dist.Cluster) journal.Options {
	return journal.Options{
		Encode: dist.EncodeSnapshot,
		Decode: dist.DecodeSnapshot,
		OnOpen: func(j *journal.Journal) {
			*cluster = dist.NewClusterWith(dist.Options{Nodes: 2, HeartbeatInterval: -1, Journal: j})
		},
	}
}

// churnReference runs the -churn workload for seed uninterrupted, in
// process and unjournaled, returning the fingerprint every killed-and-
// resumed coordinator must reproduce.
func churnReference(seed int64) uint64 {
	cluster := dist.NewClusterWith(dist.Options{Nodes: 2, HeartbeatInterval: -1})
	defer cluster.Close()
	data := churnData()
	if err := task.Run(churnWorkload(seed, &cluster), data...); err != nil {
		log.Fatalf("churn reference run failed (seed %d): %v", seed, err)
	}
	return mergeable.CombineFingerprints(data[0].Fingerprint(), data[1].Fingerprint())
}

// churnChild is the re-exec'd coordinator process: resume the journaled
// churn run in dir, or start it fresh if nothing durable exists. It is
// the process the parent SIGKILLs mid-run.
func churnChild(dir string, seed int64) {
	var cluster *dist.Cluster
	closeCluster := func() {
		if cluster != nil {
			cluster.Close()
			cluster = nil
		}
	}
	_, err := journal.Resume(dir, churnJournalOptions(&cluster), churnWorkload(seed, &cluster))
	closeCluster()
	if err == nil {
		os.Exit(0)
	}
	if !errors.Is(err, journal.ErrNoRun) {
		log.Fatalf("churn child: resume %s: %v", dir, err)
	}
	if err := os.RemoveAll(dir); err != nil {
		log.Fatalf("churn child: reset %s: %v", dir, err)
	}
	err = journal.Run(dir, churnJournalOptions(&cluster), churnWorkload(seed, &cluster), churnData()...)
	closeCluster()
	if err != nil {
		log.Fatalf("churn child: run %s: %v", dir, err)
	}
	os.Exit(0)
}

// churnSoak is the elastic-cluster endurance loop: each round picks a
// seed, forks a journaled coordinator that churns membership while
// hosting remote work, SIGKILLs it mid-run, resumes it until it
// completes, and verifies the sealed fingerprint against an uninterrupted
// in-process reference for the same seed. The recovered membership
// records feed the churn.joins/drains/leaves counters.
func churnSoak(duration time.Duration, baseSeed int64, reg *repro.MetricsRegistry) {
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot locate own binary for re-exec: %v", err)
	}
	counters := stats.NewCounters()
	if reg != nil {
		reg.AddCounters("churn", counters)
	}
	r := rand.New(rand.NewSource(baseSeed))
	deadline := time.Now().Add(duration)

	for time.Now().Before(deadline) {
		childSeed := r.Int63()
		want := churnReference(childSeed)
		dir, err := os.MkdirTemp("", "soak-churn-*")
		if err != nil {
			log.Fatalf("mkdir: %v", err)
		}
		counters.Inc("runs")
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				log.Fatalf("churn soak: coordinator never completed after %d attempts (dir %s, seed %d)", attempt, dir, childSeed)
			}
			if attempt > 0 {
				counters.Inc("resumes")
			}
			cmd := exec.Command(self, "-churn-child", dir, "-seed", fmt.Sprint(childSeed))
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				log.Fatalf("start coordinator: %v", err)
			}
			// Every fourth attempt runs unkilled so the loop always
			// terminates; the others die at a random point mid-run.
			killed := attempt%4 != 3
			if killed {
				time.Sleep(time.Duration(2+r.Intn(25)) * time.Millisecond)
				_ = cmd.Process.Kill()
				counters.Inc("sigkills")
			}
			if err := cmd.Wait(); err == nil {
				break
			} else if !killed {
				log.Fatalf("coordinator failed without being killed (seed %d): %v", childSeed, err)
			}
		}

		// The coordinator exited cleanly: its journal must hold a done
		// record matching the uninterrupted reference, and its membership
		// log is the churn audit trail.
		j, err := journal.Open(dir, journal.Options{Encode: dist.EncodeSnapshot, Decode: dist.DecodeSnapshot})
		if err != nil {
			fmt.Printf("CHURN VIOLATION: completed journal unreadable (seed %d): %v\n", childSeed, err)
			os.Exit(1)
		}
		rec := j.Recovery()
		j.Close()
		if !rec.Done {
			fmt.Printf("CHURN VIOLATION: coordinator exited 0 but journal %s has no done record (seed %d)\n", dir, childSeed)
			os.Exit(1)
		}
		if rec.Fingerprint != want {
			fmt.Printf("CHURN VIOLATION: seed %d: resumed coordinator fingerprint %x != uninterrupted reference %x (journal %s)\n",
				childSeed, rec.Fingerprint, want, dir)
			os.Exit(1)
		}
		for _, m := range rec.Members {
			switch dist.MemberEventKind(m.Kind) {
			case dist.MemberJoined:
				counters.Inc("joins")
			case dist.MemberDraining:
				counters.Inc("drains")
			case dist.MemberLeft:
				counters.Inc("leaves")
			}
		}
		counters.Inc("verified")
		os.RemoveAll(dir)
	}

	snap := counters.Snapshot()
	fmt.Printf("clean: %d churn runs (%d SIGKILLs, %d resumes, %d fingerprint-verified; %d joins, %d drains, %d leaves)\n",
		snap["runs"], snap["sigkills"], snap["resumes"], snap["verified"], snap["joins"], snap["drains"], snap["leaves"])
	fmt.Printf("counters: %s\n", counters)
	if snap["runs"] == 0 {
		fmt.Println("WARNING: duration too short, no churn runs completed")
		os.Exit(1)
	}
	if snap["resumes"] == 0 {
		fmt.Println("WARNING: no coordinator was ever resumed; kills landed too late to test failover")
		os.Exit(1)
	}
}

// Memory soak sizing: each round runs memWaves waves; even waves churn
// the sequence structures and drain through MergeAll, odd waves apply
// commuting counter/set effects and drain through MergeAny, so the
// journal carries real picks across rotations while the final
// fingerprint stays pick-order-independent.
const (
	memWaves        = 128
	memTasks        = 3
	memChurnOps     = 32
	memCommuteOps   = 8
	memValueCap     = 96
	memSegmentBytes = 4 << 10
)

// memData returns fresh instances of the -mem workload's structures. The
// workload keeps every value bounded — churn pairs inserts with deletes,
// the root clamps after each merge, set elements repeat modulo a small
// space — so the only unbounded growth is history: op logs in memory,
// WAL segments and checkpoints on disk. Exactly the growth the
// compaction layers must cap.
func memData() []mergeable.Mergeable {
	vals := make([]int, 64)
	for i := range vals {
		vals[i] = i
	}
	return []mergeable.Mergeable{
		mergeable.NewList(vals...),
		mergeable.NewText("bounded-memory-soak"),
		mergeable.NewCounter(0),
		mergeable.NewSet[int](),
	}
}

// memFingerprint folds the -mem structures' fingerprints in data order.
func memFingerprint(data []mergeable.Mergeable) uint64 {
	fps := make([]uint64, len(data))
	for i, m := range data {
		fps[i] = m.Fingerprint()
	}
	return mergeable.CombineFingerprints(fps...)
}

// memWorkload is the compressed endurance workload behind -mem. Every
// observable effect derives from seed; MergeAny appears only on waves
// whose child effects commute, so the one fingerprint is reachable under
// any pick order — journaled, resumed and unjournaled runs must all land
// on it. onWave (may be nil) observes the root between waves without
// touching the data.
func memWorkload(seed int64, waves int, onWave func(wave int)) task.Func {
	return func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		for wave := 0; wave < waves; wave++ {
			churn := wave%2 == 0
			for c := 0; c < memTasks; c++ {
				childSeed := seed ^ int64(wave)*1000003 ^ int64(c)*7919
				slot := wave*memTasks + c
				ctx.Spawn(func(_ *task.Ctx, data []mergeable.Mergeable) error {
					if churn {
						r := rand.New(rand.NewSource(childSeed))
						l := data[0].(*mergeable.List[int])
						tx := data[1].(*mergeable.Text)
						cnt := data[2].(*mergeable.Counter)
						for i := 0; i < memChurnOps; i++ {
							switch r.Intn(5) {
							case 0:
								l.Insert(r.Intn(l.Len()+1), r.Intn(1000))
							case 1:
								if l.Len() > 0 {
									l.Delete(r.Intn(l.Len()))
								}
							case 2:
								tx.Insert(r.Intn(tx.Len()+1), string(rune('a'+r.Intn(26))))
							case 3:
								if tx.Len() > 0 {
									tx.Delete(r.Intn(tx.Len()), 1)
								}
							default:
								cnt.Add(int64(r.Intn(100) - 50))
							}
						}
						return nil
					}
					// Commuting effects only: this wave drains via MergeAny
					// and any pick order must produce the same values.
					cnt := data[2].(*mergeable.Counter)
					set := data[3].(*mergeable.Set[int])
					for i := 0; i < memCommuteOps; i++ {
						cnt.Add(1 << uint((slot+i)%60))
						set.Add((slot*memCommuteOps + i) % 251)
					}
					return nil
				}, data...)
			}
			if churn {
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			} else {
				for c := 0; c < memTasks; c++ {
					if _, err := ctx.MergeAny(); err != nil {
						return err
					}
				}
			}
			// Root rebalance: clamp the merged values back under the cap so
			// they cannot trend upward across thousands of waves.
			l := data[0].(*mergeable.List[int])
			if l.Len() > memValueCap {
				l.DeleteN(memValueCap, l.Len()-memValueCap)
			}
			for l.Len() < 16 {
				l.Append(l.Len())
			}
			tx := data[1].(*mergeable.Text)
			if tx.Len() > memValueCap {
				tx.Delete(memValueCap, tx.Len()-memValueCap)
			}
			if tx.Len() == 0 {
				tx.Append("reseed")
			}
			if onWave != nil {
				onWave(wave)
			}
		}
		return nil
	}
}

// retainedOps sums how many committed operations the structures' op logs
// physically retain — the in-memory quantity history GC bounds.
func retainedOps(data []mergeable.Mergeable) int {
	type logger interface{ Log() *mergeable.Log }
	total := 0
	for _, m := range data {
		if l, ok := m.(logger); ok {
			total += l.Log().RetainedLen()
		}
	}
	return total
}

// dirBytes sums the sizes of dir's entries — the journal's disk
// footprint (live segment, any mid-rotation sibling, checkpoints).
func dirBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// memSoak is PR 9's bounded-memory acceptance harness: every round runs
// the compressed endurance workload three ways — unbounded reference
// (history GC off, no journal), bounded journaled run (eager GC, WAL
// segment rotation, checkpoint pruning), and a full replay of the sealed
// rotated journal — and demands bit-identical fingerprints, retained
// history a fraction of the unbounded run's, journal disk under a fixed
// bound at every wave, and a post-GC heap that stays flat across rounds.
func memSoak(duration time.Duration, baseSeed int64, reg *repro.MetricsRegistry) {
	counters := stats.NewCounters()
	if reg != nil {
		reg.AddCounters("mem", counters)
	}
	memOpts := func() journal.Options {
		return journal.Options{
			Encode:            dist.EncodeSnapshot,
			Decode:            dist.DecodeSnapshot,
			SegmentBytes:      memSegmentBytes,
			RetainCheckpoints: 2,
			History:           task.HistoryGC{Stats: counters},
			Stats:             counters,
		}
	}
	const diskBound = int64(6*memSegmentBytes + 64<<10)
	r := rand.New(rand.NewSource(baseSeed))
	deadline := time.Now().Add(duration)
	var heapSamples []uint64
	var maxDisk int64
	rounds := 0
	lastBounded, lastUnbounded := 0, 0

	for rounds == 0 || time.Now().Before(deadline) {
		seed := r.Int63()

		// Unbounded reference: the fingerprint authority and the
		// retained-history yardstick.
		ref := memData()
		if err := task.RunWith(task.RunConfig{History: task.HistoryGC{Disable: true}},
			memWorkload(seed, memWaves, nil), ref...); err != nil {
			log.Fatalf("mem reference run failed (seed %d): %v", seed, err)
		}
		want := memFingerprint(ref)
		unbounded := retainedOps(ref)

		// Bounded journaled run: eager history GC, rotating WAL, pruned
		// checkpoints. Disk is probed after every wave.
		dir, err := os.MkdirTemp("", "soak-mem-*")
		if err != nil {
			log.Fatalf("mkdir: %v", err)
		}
		data := memData()
		onWave := func(int) {
			if size := dirBytes(dir); size > maxDisk {
				maxDisk = size
			}
			if maxDisk > diskBound {
				fmt.Printf("MEM DISK VIOLATION: seed %d: journal dir grew to %d bytes (bound %d)\n", seed, maxDisk, diskBound)
				os.Exit(1)
			}
		}
		if err := journal.Run(dir, memOpts(), memWorkload(seed, memWaves, onWave), data...); err != nil {
			log.Fatalf("mem journaled run failed (seed %d): %v", seed, err)
		}
		if got := memFingerprint(data); got != want {
			fmt.Printf("MEM DETERMINISM VIOLATION: seed %d: bounded run fingerprint %016x != unbounded reference %016x\n", seed, got, want)
			os.Exit(1)
		}
		bounded := retainedOps(data)
		if bounded*4 > unbounded {
			fmt.Printf("MEM COMPACTION VIOLATION: seed %d: GC-on run retains %d ops vs %d unbounded — history was not trimmed\n", seed, bounded, unbounded)
			os.Exit(1)
		}

		// The sealed, rotated, pruned journal must verify read-only and
		// replay end to end onto the same fingerprint.
		if err := journal.Verify(dir); err != nil {
			fmt.Printf("MEM JOURNAL VIOLATION: seed %d: sealed journal fails verification: %v\n", seed, err)
			os.Exit(1)
		}
		out, err := journal.Resume(dir, memOpts(), memWorkload(seed, memWaves, nil))
		if err != nil {
			fmt.Printf("MEM REPLAY VIOLATION: seed %d: sealed journal replay failed: %v\n", seed, err)
			os.Exit(1)
		}
		if got := memFingerprint(out); got != want {
			fmt.Printf("MEM REPLAY VIOLATION: seed %d: replayed fingerprint %016x != reference %016x\n", seed, got, want)
			os.Exit(1)
		}
		os.RemoveAll(dir)
		lastBounded, lastUnbounded = bounded, unbounded
		rounds++

		// One post-GC heap sample per round: with values clamped and
		// history trimmed, the live set must not trend upward.
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapSamples = append(heapSamples, ms.HeapAlloc)
	}

	if counters.Get("compaction.wal.rotations") == 0 {
		fmt.Println("WARNING: the WAL never rotated; the segment budget was never exceeded")
		os.Exit(1)
	}
	if len(heapSamples) >= 4 {
		base := heapSamples[len(heapSamples)/4]
		last := heapSamples[len(heapSamples)-1]
		if last > base*2+(32<<20) {
			fmt.Printf("MEM GROWTH VIOLATION: post-GC heap grew from %d to %d bytes over %d rounds\n", base, last, rounds)
			os.Exit(1)
		}
	}
	allocd, reclaimed := cow.ChunkAccounting()
	fmt.Printf("clean: %d mem rounds (%d waves × %d tasks each; %d rotations, %d segments deleted, %d checkpoints pruned, %d log trims)\n",
		rounds, memWaves, memTasks,
		counters.Get("compaction.wal.rotations"), counters.Get("compaction.wal.segments_deleted"),
		counters.Get("compaction.ckpt.pruned"), counters.Get("compaction.log.trims"))
	fmt.Printf("bounded: retained ops %d vs %d unbounded; journal disk peak %d bytes (bound %d); cow chunks %d allocated / %d reclaimed\n",
		lastBounded, lastUnbounded, maxDisk, diskBound, allocd, reclaimed)
	if len(heapSamples) > 0 {
		fmt.Printf("heap: first %.1f MB, last %.1f MB over %d post-GC samples\n",
			float64(heapSamples[0])/(1<<20), float64(heapSamples[len(heapSamples)-1])/(1<<20), len(heapSamples))
	}
	fmt.Printf("counters: %s\n", counters)
}

// taskProbe builds a random-shaped task tree from seed and returns its
// result fingerprint. The shape and every operation derive from the seed,
// so two executions must agree.
func taskProbe(seed int64) uint64 { return taskProbeWith(seed, nil) }

// taskProbeWith is taskProbe with optional span tracing (tr may be nil).
func taskProbeWith(seed int64, tr *repro.Tracer) uint64 {
	list := repro.NewList(0)
	text := repro.NewText("s")
	counter := repro.NewCounter(0)

	var body func(seed int64, depth int) repro.Func
	body = func(seed int64, depth int) repro.Func {
		return func(ctx *repro.Ctx, data []repro.Mergeable) error {
			r := rand.New(rand.NewSource(seed))
			l := data[0].(*repro.List[int])
			tx := data[1].(*repro.Text)
			c := data[2].(*repro.Counter)
			for i, n := 0, r.Intn(5); i < n; i++ {
				switch r.Intn(4) {
				case 0:
					l.Insert(r.Intn(l.Len()+1), r.Intn(100))
				case 1:
					if l.Len() > 0 {
						l.Delete(r.Intn(l.Len()))
					}
				case 2:
					tx.Insert(r.Intn(tx.Len()+1), string(rune('a'+r.Intn(26))))
				default:
					c.Add(int64(r.Intn(20) - 10))
				}
			}
			if depth > 0 {
				for k, kids := 0, r.Intn(3); k < kids; k++ {
					ctx.Spawn(body(seed*7919+int64(k+1), depth-1), l, tx, c)
				}
				if r.Intn(2) == 0 {
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	if err := repro.RunObserved(tr, body(seed, 3), list, text, counter); err != nil {
		log.Fatalf("seed %d: task probe failed: %v", seed, err)
	}
	h := list.Fingerprint()
	h ^= text.Fingerprint() * 1099511628211
	h ^= counter.Fingerprint() * 16777619
	return h
}

// traceSoak probes the observability layer's determinism claim: the
// traced task probe is run at GOMAXPROCS 1 and 4 and the two span trees
// must be bit-identical (fingerprints and exported counter sets), only
// durations differing. A violation prints the span-tree diff — the exact
// merge where the runs forked — and the reproducing seed.
func traceSoak(duration time.Duration, baseSeed int64, reg *repro.MetricsRegistry, dumpPath string) {
	r := rand.New(rand.NewSource(baseSeed))
	deadline := time.Now().Add(duration)
	probes := 0
	var lastTree *repro.SpanTree
	for probes == 0 || time.Now().Before(deadline) {
		s := r.Int63()
		var trees []*repro.SpanTree
		var counts []string
		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			tr := repro.NewTracer()
			taskProbeWith(s, tr)
			runtime.GOMAXPROCS(prev)
			trees = append(trees, tr.Tree())
			counts = append(counts, tr.Counters().String())
			if reg != nil {
				reg.AddTracer("runtime", tr)
			}
		}
		if trees[0].Fingerprint() != trees[1].Fingerprint() || counts[0] != counts[1] {
			fmt.Printf("SPAN-TREE VIOLATION: seed %d: traced runs differ across GOMAXPROCS 1/4\n", s)
			for _, d := range obs.Diff(trees[0], trees[1]) {
				fmt.Println("  " + d)
			}
			if counts[0] != counts[1] {
				fmt.Printf("  counters at procs=1: %s\n  counters at procs=4: %s\n", counts[0], counts[1])
			}
			os.Exit(1)
		}
		lastTree = trees[1]
		probes++
	}
	fmt.Printf("clean: %d traced probes, span trees bit-identical across GOMAXPROCS 1/4 (last fingerprint %016x)\n",
		probes, lastTree.Fingerprint())
	if dumpPath != "" {
		f, err := os.Create(dumpPath)
		if err != nil {
			log.Fatalf("span dump: %v", err)
		}
		lastTree.Render(f, false)
		f.Close()
		fmt.Printf("span tree written to %s\n", dumpPath)
	}
}

// simProbe runs one random simulation config on a random engine,
// verifies its hash chains, and (for deterministic engines) re-runs it to
// compare fingerprints.
func simProbe(r *rand.Rand) error {
	engines := netsim.AllEngines()
	e := engines[r.Intn(len(engines))]
	cfg := netsim.Config{
		Hosts:    2 + r.Intn(6),
		Messages: 4 + r.Intn(12),
		TTL:      2 + r.Intn(8),
		Workload: r.Intn(4),
		Seed:     r.Uint64(),
		Routing:  e.Routing,
	}
	res, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s %+v: %w", e.Name, cfg, err)
	}
	if err := netsim.VerifyTraceChains(res, cfg); err != nil {
		return fmt.Errorf("%s %+v: %w", e.Name, cfg, err)
	}
	if e.DeterministicResults {
		res2, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s rerun: %w", e.Name, err)
		}
		if res2.Fingerprint != res.Fingerprint {
			return fmt.Errorf("%s %+v: non-deterministic (%x vs %x)", e.Name, cfg, res.Fingerprint, res2.Fingerprint)
		}
	}
	return nil
}

// exploreSoak rotates the built-in exploration scenarios under the
// random-walk strategy until the deadline, holding every schedule to the
// explorer's invariants (determinism, replay soundness, progress). With
// -metrics the explorer's counters are exported under the "explore"
// group, so /metrics shows schedules, decisions and shrink probes live.
func exploreSoak(duration time.Duration, baseSeed int64, reg *repro.MetricsRegistry) {
	counters := stats.NewCounters()
	if reg != nil {
		reg.AddCounters("explore", counters)
	}
	scenarios := explore.Builtins()
	deadline := time.Now().Add(duration)
	rounds := 0
	for i := 0; time.Now().Before(deadline); i++ {
		sc := scenarios[i%len(scenarios)]
		res, err := explore.Run(sc, explore.Options{
			Schedules: 16,
			Seed:      baseSeed + int64(i),
			Shrink:    true,
			Stats:     counters,
		})
		if err != nil {
			fmt.Printf("EXPLORE ERROR: %s: %v\n", sc.Name, err)
			os.Exit(1)
		}
		if !res.Ok() {
			fmt.Printf("EXPLORE VIOLATION (round seed %d): %v\n", baseSeed+int64(i), res.Violations[0])
			os.Exit(1)
		}
		rounds++
	}
	fmt.Printf("clean: %d exploration rounds, %d schedules, %d decisions, %d lost to tolerated chaos\n",
		rounds, counters.Get("schedule"), counters.Get("decision"), counters.Get("lost"))
}

const (
	collabClients = 8
	collabEdits   = 50
)

// collabDrive runs the front-door workload: `clients` concurrent editors
// each prepend `edits` unique `;`-terminated markers and say BYE. It
// returns the first client error — under reconnect+resume a chaos run is
// expected to complete the exact same workload a fault-free run does.
func collabDrive(d collab.Dialer, clients, edits int, opts collab.ClientOptions) error {
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := collab.DialWith(d, opts)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", id, err)
				return
			}
			defer c.Close()
			for j := 0; j < edits; j++ {
				if _, err := c.Insert(0, fmt.Sprintf("c%d-e%d;", id, j)); err != nil {
					errs <- fmt.Errorf("client %d edit %d: %w", id, j, err)
					return
				}
			}
			errs <- c.Bye()
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// collabReference runs the workload fault-free on memnet and returns the
// canonical fingerprint and exact edit count every probe must reproduce.
func collabReference() (uint64, int64, error) {
	l := memnet.Listen(64)
	srv := collab.Serve(l, "")
	err := collabDrive(l, collabClients, collabEdits, collab.ClientOptions{})
	l.Close()
	if werr := srv.Wait(); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return 0, 0, err
	}
	return collab.CanonicalFingerprint(srv.Document()), srv.Edits(), nil
}

// collabProbe runs one seeded chaos round: drops, resets, dial failures
// and periodic self-healing partition pulses, with every client riding
// automatic reconnect+resume. Server and faultnet counters are merged
// into `counters` for the final report.
func collabProbe(seed int64, counters *stats.Counters) (uint64, int64, error) {
	fnet := faultnet.New(faultnet.Config{
		Seed:         seed,
		DropProb:     0.03,
		ResetProb:    0.01,
		DialFailProb: 0.02,
	})
	l := fnet.Listen(0, 64)
	srv := collab.ServeWith(l, "", collab.Options{Seed: seed, Counters: stats.NewCounters()})

	// A bounded burst of partition pulses: each blackholes the next few
	// writes and self-heals on traffic. The burst must end — a pulse every
	// few tens of milliseconds forever stalls more client time per second
	// than a second holds, and the probe would livelock.
	stop := make(chan struct{})
	pulses := make(chan struct{})
	go func() {
		defer close(pulses)
		for i := 0; i < 8; i++ {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				fnet.PartitionFor(0, 3)
			}
		}
	}()
	err := collabDrive(l, collabClients, collabEdits, collab.ClientOptions{
		RequestTimeout: 100 * time.Millisecond,
		Backoff:        collab.Backoff{Base: time.Millisecond, Cap: 20 * time.Millisecond, MaxAttempts: 2000},
	})
	close(stop)
	<-pulses
	fnet.Heal(0)
	l.Close()
	if werr := srv.Wait(); werr != nil && err == nil {
		err = werr
	}
	for k, v := range srv.Stats().Snapshot() {
		counters.Add("collab."+k, v)
	}
	for k, v := range fnet.Stats().Snapshot() {
		counters.Add("faultnet."+k, v)
	}
	if err != nil {
		return 0, 0, err
	}
	return collab.CanonicalFingerprint(srv.Document()), srv.Edits(), nil
}

// collabOverloadProbe starves the admission gates — session cap, token
// bucket and merge backpressure — on a healthy network. The server must
// shed explicitly (BUSY, counted) and still lose or duplicate nothing.
func collabOverloadProbe(counters *stats.Counters) (fp uint64, edits, shed int64, err error) {
	l := memnet.Listen(64)
	srv := collab.ServeWith(l, "", collab.Options{
		Admission: collab.Admission{
			MaxSessions: 3,
			MaxPending:  1,
			RateBurst:   4,
			RateEvery:   2,
			RetryAfter:  time.Millisecond,
		},
	})
	err = collabDrive(l, collabClients, collabEdits, collab.ClientOptions{
		RequestTimeout: 2 * time.Second,
		Backoff:        collab.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, MaxAttempts: 50000},
	})
	l.Close()
	if werr := srv.Wait(); werr != nil && err == nil {
		err = werr
	}
	for k, v := range srv.Stats().Snapshot() {
		counters.Add("overload."+k, v)
	}
	st := srv.Stats()
	shed = st.Get("shed") + st.Get("busy_rate") + st.Get("busy_merges")
	if err != nil {
		return 0, 0, shed, err
	}
	return collab.CanonicalFingerprint(srv.Document()), srv.Edits(), shed, nil
}

// collabSoak probes the collaborative front door until the deadline:
// every chaos round must complete the full workload via reconnect+resume
// and converge on the fault-free canonical fingerprint with an exact edit
// count, then one overload round must shed visibly without loss.
func collabSoak(duration time.Duration, baseSeed int64, reg *repro.MetricsRegistry) {
	refFp, refEdits, err := collabReference()
	if err != nil {
		fmt.Printf("COLLAB REFERENCE FAILED (fault-free run, nothing injected): %v\n", err)
		os.Exit(1)
	}
	counters := stats.NewCounters()
	if reg != nil {
		reg.AddCounters("collab", counters)
	}
	r := rand.New(rand.NewSource(baseSeed))
	deadline := time.Now().Add(duration)
	probes := 0
	for time.Now().Before(deadline) {
		s := r.Int63()
		fp, edits, err := collabProbe(s, counters)
		if err != nil {
			fmt.Printf("COLLAB RESILIENCE VIOLATION: seed %d: a client failed to complete under chaos: %v\n", s, err)
			os.Exit(1)
		}
		if fp != refFp || edits != refEdits {
			fmt.Printf("COLLAB CONVERGENCE VIOLATION: seed %d: canonical fingerprint %016x (%d edits) != fault-free %016x (%d edits)\n",
				s, fp, edits, refFp, refEdits)
			os.Exit(1)
		}
		probes++
	}
	fp, edits, shed, err := collabOverloadProbe(counters)
	if err != nil {
		fmt.Printf("COLLAB OVERLOAD VIOLATION: a client failed to complete under admission pressure: %v\n", err)
		os.Exit(1)
	}
	if fp != refFp || edits != refEdits {
		fmt.Printf("COLLAB OVERLOAD VIOLATION: canonical fingerprint %016x (%d edits) != fault-free %016x (%d edits)\n",
			fp, edits, refFp, refEdits)
		os.Exit(1)
	}
	if shed == 0 {
		fmt.Printf("COLLAB OVERLOAD VIOLATION: the gates shed nothing; overload was never exercised\n")
		os.Exit(1)
	}
	injected := counters.Get("faultnet.drop") + counters.Get("faultnet.reset") +
		counters.Get("faultnet.dial_fail") + counters.Get("faultnet.partition_heal")
	fmt.Printf("clean: %d chaos probes (%d clients × %d edits each, %d faults injected, %d resumes, %d replays) + 1 overload probe (%d shed), all converged on %016x\n",
		probes, collabClients, collabEdits, injected,
		counters.Get("collab.resumed"), counters.Get("collab.replayed"), shed, refFp)
	fmt.Printf("counters: %s\n", counters)
	if probes == 0 {
		fmt.Println("WARNING: no chaos probes completed inside the soak window")
		os.Exit(1)
	}
}

func main() {
	duration := flag.Duration("duration", 30*time.Second, "how long to soak")
	seed := flag.Int64("seed", time.Now().UnixNano(), "base seed (printed for reproduction)")
	chaos := flag.Bool("chaos", false, "soak the distributed runtime under fault injection instead")
	kill := flag.Bool("kill", false, "soak crash recovery: SIGKILL and resume journaled workers in a loop")
	churn := flag.Bool("churn", false, "soak the elastic cluster: seeded join/drain/leave churn with coordinator SIGKILL, journal resume and fingerprint verification")
	trace := flag.Bool("trace", false, "soak the span tracer: traced probes must be bit-identical across GOMAXPROCS 1/4")
	explores := flag.Bool("explore", false, "soak the schedule explorer: rotate the built-in scenarios under random-walk exploration")
	collabs := flag.Bool("collab", false, "soak the collab front door: chaos rounds must complete via reconnect+resume and converge, an overload round must shed without loss")
	mem := flag.Bool("mem", false, "soak bounded memory: journaled GC-on runs must match the unbounded reference bit for bit while history, WAL and heap stay bounded")
	shard := flag.Bool("shard", false, "soak the sharded document service: 1/2/4-shard runs plus chaos and shard kill/resume must all converge to the single-process reference fingerprints")
	shardOps := flag.Int("shard-ops", 100000, "with -shard: client ops per run (CI smoke trims this down)")
	metricsAddr := flag.String("metrics", "", "serve /debug/vars and /metrics on this address while soaking")
	spandump := flag.String("spandump", "", "with -trace: write the last probe's span tree to this file")
	killChildDir := flag.String("kill-child", "", "internal: run one journaled -kill worker in this directory")
	churnChildDir := flag.String("churn-child", "", "internal: run one journaled -churn coordinator in this directory")
	flag.Parse()

	if *killChildDir != "" {
		killChild(*killChildDir)
		return
	}
	if *churnChildDir != "" {
		churnChild(*churnChildDir, *seed)
		return
	}
	var reg *repro.MetricsRegistry
	if *metricsAddr != "" {
		reg = repro.NewMetricsRegistry()
		reg.Publish("spawnmerge")
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		go http.Serve(ln, reg.Handler("spawnmerge"))
		fmt.Printf("metrics on http://%s/metrics and /debug/vars\n", ln.Addr())
	}
	fmt.Printf("soaking for %v (base seed %d)\n", *duration, *seed)
	if *chaos {
		chaosSoak(*duration, *seed)
		return
	}
	if *kill {
		killSoak(*duration, *seed)
		return
	}
	if *churn {
		churnSoak(*duration, *seed, reg)
		return
	}
	if *trace {
		traceSoak(*duration, *seed, reg, *spandump)
		return
	}
	if *explores {
		exploreSoak(*duration, *seed, reg)
		return
	}
	if *collabs {
		collabSoak(*duration, *seed, reg)
		return
	}
	if *mem {
		memSoak(*duration, *seed, reg)
		return
	}
	if *shard {
		shardSoak(*duration, *seed, *shardOps, reg)
		return
	}
	var agg *repro.Tracer
	if reg != nil {
		// One cumulative tracer across every probe feeds the live metrics
		// endpoint (latency histograms and span counters).
		agg = repro.NewTracer()
		reg.AddTracer("runtime", agg)
	}
	r := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)
	taskProbes, simProbes := 0, 0

	for time.Now().Before(deadline) {
		s := r.Int63()
		want := taskProbeWith(s, agg)
		for i := 0; i < 3; i++ {
			if got := taskProbe(s); got != want {
				fmt.Printf("DETERMINISM VIOLATION: task probe seed %d: %x != %x\n", s, got, want)
				os.Exit(1)
			}
		}
		taskProbes++

		if err := simProbe(r); err != nil {
			fmt.Printf("SIMULATION VIOLATION: %v\n", err)
			os.Exit(1)
		}
		simProbes++
	}
	fmt.Printf("clean: %d task probes (×4 runs each), %d simulation probes\n", taskProbes, simProbes)
}

// Otdemo replays Figures 1 and 2 of the paper: two processes concurrently
// modify the list [a, b, c] — process A deletes index 2, process B inserts
// "d" at index 0. Without operational transformation the processes
// diverge; with it they converge to [d, a, b], A's delete having been
// rewritten to del(3).
//
//	go run ./cmd/otdemo
package main

import (
	"fmt"

	"repro/internal/ot"
)

func apply(state []any, ops ...ot.Op) []any {
	var err error
	for _, op := range ops {
		state, err = ot.ApplySeq(state, op)
		if err != nil {
			panic(err)
		}
	}
	return state
}

func render(state []any) string {
	s := ""
	for i, v := range state {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s
}

func main() {
	base := []any{"a", "b", "c"}
	opA := ot.SeqDelete{Pos: 2, N: 1}              // process A: del(2)
	opB := ot.SeqInsert{Pos: 0, Elems: []any{"d"}} // process B: ins(0,d)

	fmt.Println("Figure 1 — without operational transformation")
	fmt.Printf("  both processes start from [%s]\n", render(base))
	fmt.Printf("  A applies %v then receives %v raw: [%s]\n", opA, opB, render(apply(base, opA, opB)))
	fmt.Printf("  B applies %v then receives %v raw: [%s]\n", opB, opA, render(apply(base, opB, opA)))
	fmt.Println("  the replicas diverged")
	fmt.Println()

	aT, bT := ot.TransformPair(opA, opB)
	fmt.Println("Figure 2 — with operational transformation")
	fmt.Printf("  transform(%v against %v) = %v  (index shifted to preserve A's intention)\n", opA, opB, aT)
	fmt.Printf("  transform(%v against %v) = %v\n", opB, opA, bT)
	siteA := apply(apply(base, opA), bT...)
	siteB := apply(apply(base, opB), aT...)
	fmt.Printf("  A applies %v then %v: [%s]\n", opA, bT, render(siteA))
	fmt.Printf("  B applies %v then %v: [%s]\n", opB, aT, render(siteB))
	fmt.Println("  the replicas converged")
}

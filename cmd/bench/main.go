// Command bench runs the repository's core benchmark families outside `go
// test` and writes a BENCH_PR10.json trajectory file, so successive PRs can
// track ns/op and allocs/op against the recorded pre-PR baseline instead
// of eyeballing `go test -bench` output.
//
// Usage:
//
//	go run ./cmd/bench            # full run (300ms per family, 5 rounds)
//	go run ./cmd/bench -quick     # CI smoke: 30ms per family, 1 round
//	go run ./cmd/bench -out F     # write the trajectory to F
//	go run ./cmd/bench -gate      # exit non-zero if the roundtrip's or
//	                              # shard_route's allocs/op exceed the
//	                              # committed budgets
//
// Each family is measured with testing.Benchmark and the median of
// `rounds` ns/op is recorded — this machine's run-to-run noise is ±8%, so
// single runs are not comparable. The baseline_* fields are the same
// workloads measured at the pre-PR seed commit with the identical
// median-of-rounds methodology.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/journal"
	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/task"
)

// baselines are the pre-PR numbers for each family, taken from the
// committed BENCH_PR7.json trajectory measured at 95016df (the state
// before history compaction, WAL segment rotation and COW chunk reclaim)
// on this machine. Re-using the committed trajectory keeps the baselines
// exactly the numbers past CI runs recorded; allocs/op are exact and
// session-independent, ns/op carry this single-core box's ~±8%
// run-to-run drift, so judge ns ratios with that margin. Families
// without a pre-PR equivalent (the compaction families did not exist;
// their in-run GC-off / unbounded ablation partners *are* their
// baselines) carry zeros.
var baselines = map[string]baseline{
	"spawn_copy_overhead":                {NsPerOp: 59922, AllocsPerOp: 480},
	"merge_many_structs_64x100_serial":   {NsPerOp: 581530, AllocsPerOp: 7939},
	"merge_many_structs_64x100_parallel": {NsPerOp: 560454, AllocsPerOp: 7939},
	"spawn_merge_roundtrip":              {NsPerOp: 1808, AllocsPerOp: 7},
	// Same workload as spawn_merge_roundtrip, run through the hook-bearing
	// RunWith entry point with tracing disabled. The observability layer
	// must be free when off (BenchmarkSpawnMergeTraceOff guards allocs/op
	// exactly).
	"spawn_merge_trace_off":      {NsPerOp: 2470, AllocsPerOp: 7},
	"queue_push_pop":             {NsPerOp: 90, AllocsPerOp: 2},
	"batched_transform":          {NsPerOp: 56493, AllocsPerOp: 513},
	"batched_transform_pairwise": {NsPerOp: 18441664, AllocsPerOp: 517},
	"remote_fanout_encode_once":  {NsPerOp: 648437, AllocsPerOp: 3307},
}

// roundtripAllocBudget is the committed allocation budget for one
// spawn-merge roundtrip: frame + shells + logs + scratch are all pooled,
// so a steady-state roundtrip performs at most this many allocations.
// `-gate` fails the run when the measured family exceeds it.
const roundtripAllocBudget = 8

// shardRouteAllocBudget is the committed budget for one routing lookup
// (ring Owner + live-router RouteOf): both are read-locked searches over
// prebuilt tables, so the steady state allocates nothing.
const shardRouteAllocBudget = 0

type baseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

type familyResult struct {
	NsPerOp             float64 `json:"ns_per_op"`
	AllocsPerOp         uint64  `json:"allocs_per_op"`
	BytesPerOp          uint64  `json:"bytes_per_op"`
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp uint64  `json:"baseline_allocs_per_op,omitempty"`
	SpeedupVsBaseline   float64 `json:"speedup_vs_baseline,omitempty"`
}

type trajectory struct {
	GOOS           string                  `json:"goos"`
	GOARCH         string                  `json:"goarch"`
	GOMAXPROCS     int                     `json:"gomaxprocs"`
	BenchTime      string                  `json:"benchtime"`
	Rounds         int                     `json:"rounds"`
	BaselineCommit string                  `json:"baseline_commit"`
	Families       map[string]familyResult `json:"families"`
	Order          []string                `json:"order"`
	ShardSpine     []spineEntry            `json:"shard_spine,omitempty"`
}

// family is one named workload. The bodies mirror the same-named
// benchmarks in bench_test.go — kept verbatim there so `go test -bench`
// and cmd/bench measure the same work.
type family struct {
	name string
	fn   func(b *testing.B)
}

func families() []family {
	return []family{
		// BenchmarkSpawnCopyOverhead: 20 no-op tasks spawned over 20
		// populated queues — the paper's per-run constant copy overhead.
		{"spawn_copy_overhead", func(b *testing.B) {
			b.ReportAllocs()
			const hosts = 20
			for i := 0; i < b.N; i++ {
				data := make([]mergeable.Mergeable, hosts)
				for j := range data {
					q := mergeable.NewQueue[int]()
					for k := 0; k < 5; k++ {
						q.Push(k)
					}
					data[j] = q
				}
				err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
					for t := 0; t < hosts; t++ {
						ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error { return nil }, d...)
					}
					return ctx.MergeAll()
				}, data...)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		// BenchmarkMergeManyStructs 64×100, both engine settings.
		{"merge_many_structs_64x100_serial", func(b *testing.B) {
			task.SetParallelMerge(false)
			defer task.SetParallelMerge(true)
			mergeManyStructs(b, 64, 100)
		}},
		{"merge_many_structs_64x100_parallel", func(b *testing.B) {
			task.SetParallelMerge(true)
			mergeManyStructs(b, 64, 100)
		}},
		// BenchmarkSpawnMergeRoundtrip: one child, one op, one merge.
		{"spawn_merge_roundtrip", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := mergeable.NewList(1, 2, 3)
				err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
					ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
						d[0].(*mergeable.List[int]).Append(5)
						return nil
					}, d[0])
					d[0].(*mergeable.List[int]).Append(4)
					return ctx.MergeAll()
				}, l)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		// BenchmarkSpawnMergeTraceOff: the roundtrip through RunWith with
		// every hook nil — the zero-cost-when-disabled guard's workload.
		{"spawn_merge_trace_off", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := mergeable.NewList(1, 2, 3)
				err := task.RunWith(task.RunConfig{}, func(ctx *task.Ctx, d []mergeable.Mergeable) error {
					ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
						d[0].(*mergeable.List[int]).Append(5)
						return nil
					}, d[0])
					d[0].(*mergeable.List[int]).Append(4)
					return ctx.MergeAll()
				}, l)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		// BenchmarkMergeableQueue/push-pop: raw structure op cost.
		{"queue_push_pop", func(b *testing.B) {
			b.ReportAllocs()
			q := mergeable.NewQueue[int]()
			for i := 0; i < b.N; i++ {
				q.Push(i)
				if _, ok := q.PopFront(); !ok {
					b.Fatal("empty queue")
				}
				// Keep the op log from growing without bound.
				if i%1024 == 0 {
					q.Log().Commit(q.Log().TakeLocal())
					q.Log().Trim(q.Log().CommittedLen())
				}
			}
		}},
		// BenchmarkBatchedTransform: raw transform of run-heavy histories
		// (one long append run against an append run followed by a pop
		// run) through the batched run-length engine, with the pairwise
		// shape engine as the in-run ablation partner. Both produce
		// identical op sequences; the gap between the two families is the
		// run-granularity payoff.
		{"batched_transform", func(b *testing.B) {
			b.ReportAllocs()
			client, server := batchedTransformHistories()
			prev := ot.SetBatchedTransform(true)
			defer ot.SetBatchedTransform(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ot.TransformAgainst(client, server)
			}
		}},
		{"batched_transform_pairwise", func(b *testing.B) {
			b.ReportAllocs()
			client, server := batchedTransformHistories()
			prev := ot.SetBatchedTransform(false)
			defer ot.SetBatchedTransform(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ot.TransformAgainst(client, server)
			}
		}},
		// Compaction families (PR 9): the same long-lived spawn/merge wave
		// workload with history GC on (the production default) and off —
		// the ablation partner is the baseline. The gap in bytes/op is the
		// retained-history cost compaction reclaims; ns/op shows the trim
		// passes pay for themselves on long runs.
		{"compaction_history_gc_on", func(b *testing.B) {
			compactionWaves(b, task.HistoryGC{})
		}},
		{"compaction_history_gc_off", func(b *testing.B) {
			compactionWaves(b, task.HistoryGC{Disable: true})
		}},
		// Journaled variant: a multi-root-merge run against a 4 KiB WAL
		// rotation threshold with checkpoint pruning, versus one unbounded
		// segment keeping every checkpoint. Measures the full durability
		// path (fsyncs included), so ns/op dwarfs the in-memory families;
		// the comparison of interest is rotate vs unbounded.
		{"compaction_journal_rotate", func(b *testing.B) {
			compactionJournal(b, 4<<10, 2)
		}},
		{"compaction_journal_unbounded", func(b *testing.B) {
			compactionJournal(b, 0, 0)
		}},
		// BenchmarkRemoteFanout/encode-once: scatter one snapshot to a
		// 4-node cluster with a single serialization.
		{"remote_fanout_encode_once", func(b *testing.B) {
			b.ReportAllocs()
			const nodes = 4
			vals := make([]int, 512)
			for i := range vals {
				vals[i] = i
			}
			cluster := dist.NewCluster(nodes)
			defer cluster.Close()
			for i := 0; i < b.N; i++ {
				l := mergeable.NewList(vals...)
				err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
					if _, err := cluster.SpawnRemoteMany(ctx, []int{0, 1, 2, 3}, "cmdbench-append", d[0]); err != nil {
						return err
					}
					return ctx.MergeAll()
				}, l)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// compactionWaves is the long-lived-structure workload behind the
// compaction_history_* families: 32 spawn/merge waves over a list and a
// counter, with the list's value size clamped so retained op history is
// the only quantity the GC knob changes.
func compactionWaves(b *testing.B, h task.HistoryGC) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := mergeable.NewList[int]()
		cnt := mergeable.NewCounter(0)
		err := task.RunWith(task.RunConfig{History: h}, func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			for wave := 0; wave < 32; wave++ {
				ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
					for k := 0; k < 8; k++ {
						d[0].(*mergeable.List[int]).Append(k)
					}
					d[1].(*mergeable.Counter).Inc()
					return nil
				}, d...)
				for k := 0; k < 8; k++ {
					d[0].(*mergeable.List[int]).Append(-k)
				}
				if err := ctx.MergeAll(); err != nil {
					return err
				}
				if lst := d[0].(*mergeable.List[int]); lst.Len() > 64 {
					lst.DeleteN(0, lst.Len()-64)
				}
			}
			return nil
		}, l, cnt)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// compactionJournal is the durability-path workload behind the
// compaction_journal_* families: one journaled 8-wave run per iteration
// in a fresh scratch directory, checkpointing on every root merge.
func compactionJournal(b *testing.B, segBytes int64, retain int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-journal-*")
		if err != nil {
			b.Fatal(err)
		}
		l := mergeable.NewList(0)
		err = journal.Run(dir, journal.Options{
			Encode:            dist.EncodeSnapshot,
			Decode:            dist.DecodeSnapshot,
			CheckpointEvery:   1,
			SegmentBytes:      segBytes,
			RetainCheckpoints: retain,
		}, func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			for wave := 0; wave < 8; wave++ {
				w := wave
				ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
					d[0].(*mergeable.List[int]).Append(w)
					return nil
				}, d...)
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			}
			return nil
		}, l)
		os.RemoveAll(dir)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// batchedTransformHistories builds the run-heavy operation histories the
// batched_transform families transform: a 512-op client append run
// against a 256-op server append run followed by a 128-op pop run — the
// shape a producer task racing a consumer task leaves in its log.
func batchedTransformHistories() (client, server []ot.Op) {
	client = make([]ot.Op, 512)
	for i := range client {
		client[i] = ot.SeqInsert{Pos: i, Elems: []any{i}}
	}
	server = make([]ot.Op, 0, 384)
	for i := 0; i < 256; i++ {
		server = append(server, ot.SeqInsert{Pos: i, Elems: []any{-i}})
	}
	for i := 0; i < 128; i++ {
		server = append(server, ot.SeqDelete{Pos: 0, N: 1})
	}
	return client, server
}

func mergeManyStructs(b *testing.B, structs, ops int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data := make([]mergeable.Mergeable, structs)
		for j := range data {
			l := mergeable.NewList[int]()
			for k := 0; k < 8; k++ {
				l.Append(k)
			}
			data[j] = l
		}
		err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			ch := ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
				for _, m := range d {
					l := m.(*mergeable.List[int])
					for k := 0; k < ops; k++ {
						l.Set(k%8, k)
					}
				}
				return nil
			}, d...)
			for _, m := range d {
				l := m.(*mergeable.List[int])
				for k := 0; k < ops; k++ {
					l.Set((k+3)%8, -k)
				}
			}
			return ctx.MergeAllFromSet([]*task.Task{ch})
		}, data...)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// spanDump runs a fixed deterministic workload traced, diffs its span
// tree against an existing dump at path (a prior commit's run — any
// divergence localizes a behavior change to the exact merge), then
// rewrites path with the current tree as JSON.
func spanDump(path string) error {
	tr := obs.New()
	data := []mergeable.Mergeable{mergeable.NewList(0), mergeable.NewCounter(0)}
	err := task.RunObserved(tr, func(ctx *task.Ctx, d []mergeable.Mergeable) error {
		for i := 0; i < 8; i++ {
			i := i
			ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
				d[0].(*mergeable.List[int]).Append(i)
				d[1].(*mergeable.Counter).Add(int64(i))
				return nil
			}, d...)
		}
		return ctx.MergeAll()
	}, data...)
	if err != nil {
		return fmt.Errorf("spandump workload: %w", err)
	}
	tree := tr.Tree()
	if old, err := os.ReadFile(path); err == nil {
		var prev obs.Tree
		if err := json.Unmarshal(old, &prev); err != nil {
			return fmt.Errorf("spandump: parse existing %s: %w", path, err)
		}
		if diffs := obs.Diff(&prev, tree); len(diffs) > 0 {
			fmt.Printf("span tree diverges from %s:\n", path)
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
		} else {
			fmt.Printf("span tree matches %s (fingerprint %016x)\n", path, tree.Fingerprint())
		}
	}
	buf, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	quick := flag.Bool("quick", false, "CI smoke mode: one short round per family")
	out := flag.String("out", "BENCH_PR10.json", "trajectory file to write")
	gate := flag.Bool("gate", false, "fail (exit 1) if spawn_merge_roundtrip or shard_route exceed their allocs/op budgets")
	familyFilter := flag.String("family", "", "only run families whose name contains this substring")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured families to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the measured families to this file")
	spandump := flag.String("spandump", "", "write (and diff against) a reference span-tree JSON dump at this path")
	testing.Init()
	flag.Parse()

	dist.RegisterListCodec[int]("cmdbench-list-int")
	dist.RegisterFunc("cmdbench-append", func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Append(1)
		return nil
	})

	if *spandump != "" {
		if err := spanDump(*spandump); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote span tree to %s\n", *spandump)
	}

	benchtime, rounds := "300ms", 5
	if *quick {
		benchtime, rounds = "30ms", 1
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	traj := trajectory{
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		BenchTime:      benchtime,
		Rounds:         rounds,
		BaselineCommit: "95016df",
		Families:       map[string]familyResult{},
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.Lookup("allocs").WriteTo(f, 0)
		}()
	}

	fams := append(families(), shardFamilies()...)
	for _, f := range fams {
		if *familyFilter != "" && !strings.Contains(f.name, *familyFilter) {
			continue
		}
		nsSamples := make([]float64, 0, rounds)
		var last testing.BenchmarkResult
		for r := 0; r < rounds; r++ {
			last = testing.Benchmark(f.fn)
			if last.N == 0 {
				fmt.Fprintf(os.Stderr, "bench: family %s did not run\n", f.name)
				os.Exit(1)
			}
			nsSamples = append(nsSamples, float64(last.T.Nanoseconds())/float64(last.N))
		}
		sort.Float64s(nsSamples)
		med := nsSamples[len(nsSamples)/2]
		res := familyResult{
			NsPerOp:     med,
			AllocsPerOp: uint64(last.AllocsPerOp()),
			BytesPerOp:  uint64(last.AllocedBytesPerOp()),
		}
		if base, ok := baselines[f.name]; ok {
			res.BaselineNsPerOp = base.NsPerOp
			res.BaselineAllocsPerOp = base.AllocsPerOp
			if med > 0 {
				res.SpeedupVsBaseline = base.NsPerOp / med
			}
		}
		traj.Families[f.name] = res
		traj.Order = append(traj.Order, f.name)
		fmt.Printf("%-36s %12.0f ns/op %8d allocs/op", f.name, res.NsPerOp, res.AllocsPerOp)
		if res.SpeedupVsBaseline > 0 {
			fmt.Printf("   %.2fx vs baseline", res.SpeedupVsBaseline)
		}
		fmt.Println()
	}

	// The shard spine sweep is a wall-clock measurement (client throughput
	// and merge-latency quantiles across topologies), not a testing.B
	// family — it records absolute numbers per topology point rather than
	// ns/op medians.
	if *familyFilter == "" || strings.Contains("shard_spine", *familyFilter) {
		spine, err := runShardSpine(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		traj.ShardSpine = spine
	}

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d families, benchtime %s × %d rounds)\n", *out, len(traj.Families), benchtime, rounds)

	if *gate {
		budgets := []struct {
			family string
			budget uint64
		}{
			{"spawn_merge_roundtrip", roundtripAllocBudget},
			{"shard_route", shardRouteAllocBudget},
		}
		for _, g := range budgets {
			res, ok := traj.Families[g.family]
			if !ok {
				fmt.Fprintf(os.Stderr, "bench: gate: %s was filtered out of this run\n", g.family)
				os.Exit(1)
			}
			allocs := res.AllocsPerOp
			if allocs > g.budget {
				// A single short quick-mode round can catch the frame, shell
				// and scratch pools cold and amortize their warm-up over too
				// few iterations; re-measure once warm before declaring a
				// regression.
				for _, f := range fams {
					if f.name == g.family {
						allocs = uint64(testing.Benchmark(f.fn).AllocsPerOp())
					}
				}
			}
			if allocs > g.budget {
				fmt.Fprintf(os.Stderr, "bench: gate FAILED: %s allocs/op = %d, budget %d\n",
					g.family, allocs, g.budget)
				os.Exit(1)
			}
			fmt.Printf("gate: %s allocs/op %d within budget %d\n", g.family, allocs, g.budget)
		}
	}
}

package main

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/collab"
	"repro/internal/memnet"
	"repro/internal/shard"
)

// The sharded-spine measurements: a hot-path allocation family for the
// routing lookups every session request pays (gated to zero allocs/op),
// and a topology sweep recording merge latency and throughput for 1/2/4
// shards with wire batching on and off.

const (
	spineClients = 64
	spineDocs    = 32
)

func spineDocNames() []string {
	names := make([]string, spineDocs)
	for i := range names {
		names[i] = fmt.Sprintf("doc%02d", i)
	}
	return names
}

func spineInitial() map[string]string {
	m := make(map[string]string, spineDocs)
	for _, name := range spineDocNames() {
		m[name] = ""
	}
	return m
}

// shardFamilies are the allocation-sensitive routing lookups, measured
// like every other family. shard_route covers both layers a request
// crosses: the consistent-hash ring's Owner and the live router's
// RouteOf (session redirect target). Steady state must be zero-alloc —
// these run on every forwarded op.
func shardFamilies() []family {
	return []family{
		{"shard_route", func(b *testing.B) {
			b.ReportAllocs()
			ring := shard.New([]int{0, 1, 2, 3}, 64, 1)
			names := spineDocNames()
			l := memnet.Listen(16)
			s, err := collab.ServeSharded(l, spineInitial(), collab.ShardedOptions{Shards: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Shutdown()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				name := names[i%len(names)]
				sink += ring.Owner(name) + s.RouteOf(name)
			}
			if sink == -1 {
				b.Fatal("impossible route sum")
			}
		}},
	}
}

// spineEntry is one topology point of the sharded-service sweep,
// recorded into the trajectory's shard_spine section.
type spineEntry struct {
	Shards     int     `json:"shards"`
	Batching   bool    `json:"batching"`
	Ops        int     `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50MergeNs float64 `json:"p50_merge_ns"`
	P99MergeNs float64 `json:"p99_merge_ns"`
}

// spineDrive pushes ops client edits through the sharded front door:
// spineClients concurrent sessions, two per document, prepending unique
// markers — batched through the queue in frames of 8 when batching is
// on, one request round trip per op when off.
func spineDrive(d collab.Dialer, edits int, batching bool) error {
	names := spineDocNames()
	errs := make(chan error, spineClients)
	var wg sync.WaitGroup
	for id := 0; id < spineClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := collab.DialWith(d, collab.ClientOptions{RequestTimeout: 10 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Use(names[id%len(names)]); err != nil {
				errs <- err
				return
			}
			for j := 0; j < edits; j++ {
				marker := fmt.Sprintf("c%d-e%d;", id, j)
				if batching {
					c.QueueInsert(0, marker)
					if c.Queued() >= 8 || j == edits-1 {
						if err := c.Flush(); err != nil {
							errs <- err
							return
						}
					}
				} else if _, err := c.Insert(0, marker); err != nil {
					errs <- err
					return
				}
			}
			errs <- c.Bye()
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runShardSpine sweeps shards × batching and records per-point merge
// latency quantiles (from the router's per-batch histogram) and
// end-to-end client throughput. The same op budget runs at every point,
// so the entries are directly comparable; quick mode trims the budget
// for CI smoke.
func runShardSpine(quick bool) ([]spineEntry, error) {
	edits := 250 // × 64 clients = 16k ops per point
	if quick {
		edits = 30
	}
	var entries []spineEntry
	for _, shards := range []int{1, 2, 4} {
		for _, batching := range []bool{true, false} {
			l := memnet.Listen(256)
			s, err := collab.ServeSharded(l, spineInitial(), collab.ShardedOptions{
				Shards:  shards,
				NoBatch: !batching,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			err = spineDrive(l, edits, batching)
			if serr := s.Shutdown(); serr != nil && err == nil {
				err = serr
			}
			if err != nil {
				return nil, fmt.Errorf("spine %d shards batching=%v: %w", shards, batching, err)
			}
			elapsed := time.Since(start)
			ops := spineClients * edits
			h := s.MergeLatency()
			e := spineEntry{
				Shards:     shards,
				Batching:   batching,
				Ops:        ops,
				OpsPerSec:  float64(ops) / elapsed.Seconds(),
				P50MergeNs: h.Quantile(0.5) * 1e9,
				P99MergeNs: h.Quantile(0.99) * 1e9,
			}
			entries = append(entries, e)
			fmt.Printf("shard_spine %d shards batching=%-5v %8.0f ops/s, merge p50 %8.0f ns p99 %8.0f ns\n",
				e.Shards, e.Batching, e.OpsPerSec, e.P50MergeNs, e.P99MergeNs)
		}
	}
	return entries, nil
}

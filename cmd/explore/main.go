// Explore is the schedule-exploration CLI: it drives a built-in scenario
// through the deterministic-simulation harness (internal/explore), which
// seizes every nondeterminism source — MergeAny/MergeAnyFromSet pick
// order, faultnet fault injection, journal crash points — behind one
// decision stream, and checks the paper's invariants on every schedule:
// bit-identical fingerprints for deterministic programs, MergeAny
// outcomes reproducible from their recorded pick order, bounded progress,
// and crash-resume equivalence.
//
//	go run ./cmd/explore -list
//	go run ./cmd/explore -scenario anyorder -strategy exhaustive
//	go run ./cmd/explore -scenario fanout -schedules 256 -procs 1,4,8
//	go run ./cmd/explore -scenario fanout -crash
//	go run ./cmd/explore -scenario compact -strategy exhaustive -schedules 2048
//	go run ./cmd/explore -scenario compact -crash -segment-bytes 256 -retain-ckpts 1
//	go run ./cmd/explore -scenario chaos -schedules 64 -seeds out/
//	go run ./cmd/explore -scenario buggy -replay out/buggy-determinism-000.seed
//
// A violation prints its (shrunk) decision trace and exits nonzero; with
// -seeds the trace is also persisted as a replayable seed file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/explore"
	"repro/internal/stats"
)

func main() {
	var (
		scenario  = flag.String("scenario", "anyorder", "built-in scenario to explore (see -list)")
		strategy  = flag.String("strategy", "random", "exploration strategy: random | exhaustive")
		schedules = flag.Int("schedules", 64, "schedule budget per GOMAXPROCS value")
		seed      = flag.Int64("seed", 1, "random-walk seed")
		maxDec    = flag.Int("max-decisions", 4096, "per-schedule decision budget")
		stall     = flag.Duration("stall", 10*time.Second, "bounded-progress watchdog window")
		procs     = flag.String("procs", "", "comma-separated GOMAXPROCS sweep (e.g. 1,4,8)")
		shrink    = flag.Bool("shrink", true, "delta-debug failing schedules to minimal traces")
		seeds     = flag.String("seeds", "", "directory to persist failing seeds into")
		replay    = flag.String("replay", "", "replay a persisted seed file instead of exploring")
		crash     = flag.Bool("crash", false, "sweep injected crash points over every schedule")
		points    = flag.Int("crash-points", 3, "crash boundaries per schedule with -crash")
		segBytes  = flag.Int64("segment-bytes", 0, "WAL rotation threshold for -crash journals (0 = one unbounded segment)")
		retain    = flag.Int("retain-ckpts", 0, "prune -crash journal checkpoints to the newest N (0 = keep all)")
		failFast  = flag.Bool("fail-fast", false, "stop at the first violation")
		list      = flag.Bool("list", false, "list built-in scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range explore.Builtins() {
			kind := "MergeAny"
			if sc.Deterministic {
				kind = "deterministic"
			}
			fmt.Printf("  %-12s %s\n", sc.Name, kind)
		}
		return
	}

	sc, ok := explore.BuiltinScenario(*scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "explore: unknown scenario %q (try -list)\n", *scenario)
		os.Exit(2)
	}

	counters := stats.NewCounters()
	opts := explore.Options{
		Schedules:    *schedules,
		Seed:         *seed,
		MaxDecisions: *maxDec,
		StallTimeout: *stall,
		Shrink:       *shrink,
		SeedDir:      *seeds,
		FailFast:     *failFast,
		Stats:        counters,
	}
	switch *strategy {
	case "random":
		opts.Strategy = explore.RandomWalk
	case "exhaustive":
		opts.Strategy = explore.Exhaustive
	default:
		fmt.Fprintf(os.Stderr, "explore: unknown strategy %q (random | exhaustive)\n", *strategy)
		os.Exit(2)
	}
	if *procs != "" {
		for _, p := range strings.Split(*procs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "explore: bad -procs entry %q\n", p)
				os.Exit(2)
			}
			opts.Procs = append(opts.Procs, v)
		}
	}
	if *crash {
		opts.Crash = &explore.CrashCheck{
			Encode:            dist.EncodeSnapshot,
			Decode:            dist.DecodeSnapshot,
			Points:            *points,
			SegmentBytes:      *segBytes,
			RetainCheckpoints: *retain,
		}
	}

	if *replay != "" {
		v, err := explore.ReplaySeed(*replay, sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore: %v\n", err)
			os.Exit(2)
		}
		if v == nil {
			fmt.Printf("seed %s no longer fails on %s\n", *replay, sc.Name)
			return
		}
		fmt.Printf("seed reproduces: %v\n", v)
		printViolation(v)
		os.Exit(1)
	}

	start := time.Now()
	res, err := explore.Run(sc, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("%s (%s strategy, %s)\n", res, opts.Strategy, time.Since(start).Round(time.Millisecond))
	if n := counters.Get("replay_check"); n > 0 {
		fmt.Printf("  replay cross-checks: %d\n", n)
	}
	if n := counters.Get("crash_check"); n > 0 {
		fmt.Printf("  crash sweeps: %d\n", n)
	}
	if n := counters.Get("shrink_try"); n > 0 {
		fmt.Printf("  shrink probes: %d\n", n)
	}
	for _, v := range res.Violations {
		fmt.Println()
		fmt.Println(v)
		printViolation(v)
	}
	if !res.Ok() {
		os.Exit(1)
	}
}

func printViolation(v *explore.Violation) {
	if len(v.Trace) > 0 {
		fmt.Printf("  minimal decision trace:\n")
		for _, line := range strings.Split(strings.TrimRight(v.Trace.String(), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	for _, line := range v.SpanDiff {
		fmt.Printf("  span diff: %s\n", line)
	}
	if v.SeedFile != "" {
		fmt.Printf("  seed file: %s\n", v.SeedFile)
	}
}

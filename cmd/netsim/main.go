// Netsim runs one network-simulation experiment from the paper's
// evaluation (Section III) on a chosen engine, printing the runtime,
// processed hops and the result fingerprint. With -detcheck N it repeats
// the run N times and reports whether the engine produced identical
// results — the paper's determinism claim as a command-line check.
//
//	go run ./cmd/netsim -engine spawnmerge-det -workload 1000
//	go run ./cmd/netsim -engine conventional-nondet -detcheck 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/detcheck"
	"repro/internal/netsim"
)

func main() {
	engine := flag.String("engine", "spawnmerge-det",
		"one of: conventional-nondet, conventional-det, spawnmerge-nondet, spawnmerge-det")
	hosts := flag.Int("hosts", 20, "simulated hosts (paper: 20)")
	messages := flag.Int("messages", 100, "initial messages (paper: 100)")
	ttl := flag.Int("ttl", 100, "hops per message (paper: 100)")
	workload := flag.Int("workload", 0, "SHA-1 iterations per hop (paper sweeps 0..10000)")
	seed := flag.Uint64("seed", 1, "payload seed")
	det := flag.Int("detcheck", 0, "if > 0, repeat the run N times and check result determinism")
	verify := flag.Bool("verify", false, "verify the result's hash chains against the abstract workload model")
	flag.Parse()

	cfg := netsim.Config{
		Hosts: *hosts, Messages: *messages, TTL: *ttl,
		Workload: *workload, Seed: *seed,
	}

	if *det > 0 {
		rep, err := detcheck.Check(*det, func() (uint64, error) {
			r, err := netsim.RunEngine(*engine, cfg)
			return r.Fingerprint, err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", *engine, rep)
		if !rep.Deterministic() {
			os.Exit(1)
		}
		return
	}

	r, err := netsim.RunEngine(*engine, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine:      %s\n", r.Engine)
	fmt.Printf("config:      %d hosts, %d messages, TTL %d, workload %d\n",
		cfg.Hosts, cfg.Messages, cfg.TTL, cfg.Workload)
	fmt.Printf("hops:        %d\n", r.Hops)
	if r.Rounds > 0 {
		fmt.Printf("rounds:      %d\n", r.Rounds)
	}
	fmt.Printf("time:        %v\n", r.Elapsed)
	fmt.Printf("fingerprint: %016x\n", r.Fingerprint)
	if *verify {
		vcfg := r.Config
		if err := netsim.VerifyTraceChains(r, vcfg); err != nil {
			log.Fatalf("verification FAILED: %v", err)
		}
		fmt.Println("verified:    every message's hash chain matches the abstract model")
	}
}

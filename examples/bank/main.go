// Bank demonstrates the merge condition functions of Section II.D — the
// paper's rollback mechanism — on the enterprise workload its
// introduction motivates ("especially for enterprise applications results
// have to be reproducible"). Teller tasks post transfers against copies
// of the accounts; the parent accepts a merge only if no account would be
// overdrawn. Unlike transactional memory, nothing is ever rolled back
// because of write-write conflicts; a rollback happens exactly when the
// application's invariant says no.
//
// Data-modeling note: each balance is a mergeable *Counter*, not a map
// entry. Transfers are increments, increments commute, so concurrent
// transfers merge without losing updates. Storing balances as map values
// would give register semantics — concurrent read-modify-writes to the
// same account would resolve by merge order and lose money.
//
//	go run ./examples/bank
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
)

const (
	alice = iota
	bob
	carol
	naccounts
	journalIdx = naccounts
)

var names = [naccounts]string{"alice", "bob", "carol"}

// transfer returns a teller task body moving amount between two accounts.
func transfer(from, to int, amount int) repro.Func {
	return func(ctx *repro.Ctx, data []repro.Mergeable) error {
		data[from].(*repro.Counter).Add(-int64(amount))
		data[to].(*repro.Counter).Add(int64(amount))
		data[journalIdx].(*repro.FastList[string]).Append(
			fmt.Sprintf("%s -> %s: %d", names[from], names[to], amount))
		return nil
	}
}

func main() {
	data := make([]repro.Mergeable, 0, naccounts+1)
	for _, start := range []int64{100, 50, 10} {
		data = append(data, repro.NewCounter(start))
	}
	// FastList (copy-on-write) rather than List: the journal is append-only
	// and copied to every teller, the COW structure's best case.
	journal := repro.NewFastList[string]()
	data = append(data, journal)

	noOverdraft := repro.WithCondition(func(preview []repro.Mergeable) bool {
		for i := 0; i < naccounts; i++ {
			if preview[i].(*repro.Counter).Value() < 0 {
				return false
			}
		}
		return true
	})

	err := repro.Run(func(ctx *repro.Ctx, d []repro.Mergeable) error {
		// Three tellers post transfers concurrently; the third would
		// overdraw carol and must be rolled back.
		t1 := ctx.Spawn(transfer(alice, bob, 30), d...)
		t2 := ctx.Spawn(transfer(bob, carol, 20), d...)
		t3 := ctx.Spawn(transfer(carol, alice, 500), d...)

		err := ctx.MergeAllFromSet([]*repro.Task{t1, t2, t3}, noOverdraft)
		if !errors.Is(err, repro.ErrMergeRejected) {
			return fmt.Errorf("expected exactly one rejected transfer, got %v", err)
		}
		for i, h := range []*repro.Task{t1, t2, t3} {
			status := "committed"
			if errors.Is(h.Err(), repro.ErrMergeRejected) {
				status = "ROLLED BACK (would overdraw)"
			}
			fmt.Printf("  transfer %d: %s\n", i+1, status)
		}
		return nil
	}, data...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("final balances:")
	var total int64
	for i := 0; i < naccounts; i++ {
		v := data[i].(*repro.Counter).Value()
		fmt.Printf("  %-6s %4d\n", names[i], v)
		total += v
	}
	fmt.Printf("  %-6s %4d (conserved)\n", "total", total)
	fmt.Println("journal (committed transfers only):")
	for _, line := range journal.Values() {
		fmt.Printf("  %s\n", line)
	}
	if total != 160 {
		log.Fatalf("money not conserved: %d", total)
	}
}

// Simulation runs the paper's Listing 4: a network of hosts exchanging
// messages, one Spawn & Merge task per host, every host cycle starting
// with Sync() and the parent merging all hosts deterministically with
// MergeAll. Although message routing is derived from message content
// ("inherently prone to race conditions when using common synchronization
// primitives"), the simulation produces the identical result on every run.
//
//	go run ./examples/simulation [-hosts 4] [-messages 12] [-ttl 5] [-runs 3]
package main

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"

	"repro"
)

type message struct {
	Payload uint64
	TTL     int
}

// hash advances a payload by one SHA-1 round — the simulation's "work".
func hash(payload uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], payload)
	d := sha1.Sum(buf[:])
	return binary.LittleEndian.Uint64(d[:8])
}

// host is Listing 4's host(): sync, pop the own queue, process, forward.
func host(id, hosts int) repro.Func {
	return func(ctx *repro.Ctx, data []repro.Mergeable) error {
		hops := data[hosts].(*repro.Counter)
		for {
			if err := ctx.Sync(); err != nil {
				if errors.Is(err, repro.ErrAborted) {
					return nil
				}
				return err
			}
			queue := data[id].(*repro.FastQueue[message])
			m, ok := queue.PopFront()
			if !ok {
				continue
			}
			digest := hash(m.Payload)
			hops.Inc()
			if m.TTL > 1 {
				dest := int(digest % uint64(hosts)) // content-derived routing
				data[dest].(*repro.FastQueue[message]).Push(message{Payload: digest, TTL: m.TTL - 1})
			}
		}
	}
}

// simulate runs one full simulation and returns a fingerprint of the
// final queues plus the processed hop count.
func simulate(hosts, messages, ttl int) (uint64, int64, error) {
	data := make([]repro.Mergeable, 0, hosts+1)
	// FastQueue (copy-on-write) rather than Queue: every host cycle copies
	// all queues on Sync, and the workload is pure push/pop — exactly the
	// shape the COW structure's O(1) clone exists for.
	queues := make([]*repro.FastQueue[message], hosts)
	for i := range queues {
		queues[i] = repro.NewFastQueue[message]()
		data = append(data, queues[i])
	}
	for i := 0; i < messages; i++ {
		queues[i%hosts].Push(message{Payload: uint64(1 + i), TTL: ttl})
	}
	hops := repro.NewCounter(0)
	data = append(data, hops)
	total := int64(messages) * int64(ttl)

	err := repro.Run(func(ctx *repro.Ctx, d []repro.Mergeable) error {
		handles := make([]*repro.Task, hosts)
		for i := 0; i < hosts; i++ {
			handles[i] = ctx.Spawn(host(i, hosts), d...)
		}
		for hops.Value() < total {
			if err := ctx.MergeAll(); err != nil {
				return err
			}
		}
		for _, h := range handles {
			h.Abort()
		}
		return nil
	}, data...)
	if err != nil {
		return 0, 0, err
	}

	fps := make([]uint64, 0, hosts+1)
	for _, q := range queues {
		fps = append(fps, q.Fingerprint())
	}
	fps = append(fps, hops.Fingerprint())
	return combine(fps), hops.Value(), nil
}

func combine(fps []uint64) uint64 {
	var h uint64 = 1469598103934665603
	for _, fp := range fps {
		for i := 0; i < 8; i++ {
			h ^= fp >> (8 * i) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func main() {
	hosts := flag.Int("hosts", 4, "simulated hosts")
	messages := flag.Int("messages", 12, "initial messages")
	ttl := flag.Int("ttl", 5, "hops per message")
	runs := flag.Int("runs", 3, "repetitions to demonstrate determinism")
	flag.Parse()

	fmt.Printf("Listing 4: %d hosts, %d messages, TTL %d — content-routed, merged with MergeAll\n",
		*hosts, *messages, *ttl)
	var first uint64
	for r := 1; r <= *runs; r++ {
		fp, hops, err := simulate(*hosts, *messages, *ttl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  run %d: %d hops processed, state fingerprint %016x\n", r, hops, fp)
		if r == 1 {
			first = fp
		} else if fp != first {
			log.Fatal("non-deterministic simulation result!")
		}
	}
	fmt.Println("identical fingerprints: the racy-looking simulation is deterministic under Spawn & Merge")
}

// Stencil applies Spawn & Merge to the scientific-computing use case the
// paper's conclusion targets ("reason about the generality and
// scalability of our approach for further interesting use cases like
// scientific computing"): Jacobi relaxation of the 1-D heat equation with
// domain decomposition.
//
// The rod is split into partitions, one task per partition. Each
// iteration, every task recomputes its cells from its copy of the full
// grid (it only needs its neighbors' halo cells) and writes its partition
// back; Sync merges the writes — disjoint cell sets, so the merges are
// conflict-free — and refreshes the halos. MergeAll keeps the iterations
// in deterministic lockstep, so the parallel solver converges through
// exactly the sequential solver's states, which the example verifies.
//
//	go run ./examples/stencil [-cells 64] [-parts 4] [-iters 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
)

// jacobiStep computes the next value of cell i from the previous grid.
func jacobiStep(prev []float64, i int) float64 {
	if i == 0 || i == len(prev)-1 {
		return prev[i] // fixed boundary temperatures
	}
	return (prev[i-1] + prev[i+1]) / 2
}

// sequential runs the reference solver.
func sequential(grid []float64, iters int) []float64 {
	cur := append([]float64(nil), grid...)
	next := make([]float64, len(cur))
	for it := 0; it < iters; it++ {
		for i := range cur {
			next[i] = jacobiStep(cur, i)
		}
		cur, next = next, cur
	}
	return cur
}

// parallel runs the Spawn & Merge solver: one task per partition, two
// Syncs per Jacobi iteration. The double Sync is the lockstep-barrier
// idiom: a task resumed from its first (write-delivering) Sync has only
// seen the writes of partitions merged before it in that round; the
// second, empty Sync refreshes it with the complete round — after which
// every partition sees the identical post-iteration grid.
func parallel(grid []float64, parts, iters int) ([]float64, error) {
	// FastList (copy-on-write) rather than List: the whole grid is copied
	// to every partition twice per iteration (the double Sync), and the
	// solver only reads and overwrites cells — COW's O(1) clone turns the
	// dominant copy cost into structural sharing.
	cells := repro.NewFastList(grid...)
	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
		n := len(grid)
		for p := 0; p < parts; p++ {
			lo := p * n / parts
			hi := (p + 1) * n / parts
			ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
				g := data[0].(*repro.FastList[float64])
				for it := 0; it < iters; it++ {
					prev := g.Values() // complete previous-iteration grid
					for i := lo; i < hi; i++ {
						if v := jacobiStep(prev, i); v != prev[i] {
							g.Set(i, v)
						}
					}
					if err := ctx.Sync(); err != nil { // deliver writes
						return err
					}
					if err := ctx.Sync(); err != nil { // barrier: see the full round
						return err
					}
				}
				return nil
			}, data[0])
		}
		// Two MergeAll rounds per iteration plus one collecting completions.
		for r := 0; r <= 2*iters; r++ {
			if err := ctx.MergeAll(); err != nil {
				return err
			}
		}
		return nil
	}, cells)
	return cells.Values(), err
}

func main() {
	ncells := flag.Int("cells", 64, "grid cells")
	parts := flag.Int("parts", 4, "partitions (tasks)")
	iters := flag.Int("iters", 200, "Jacobi iterations")
	flag.Parse()

	grid := make([]float64, *ncells)
	grid[0], grid[*ncells-1] = 100, 0 // hot left end, cold right end

	want := sequential(grid, *iters)
	got, err := parallel(grid, *parts, *iters)
	if err != nil {
		log.Fatal(err)
	}

	var maxDiff float64
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("heat equation: %d cells, %d partitions, %d iterations\n", *ncells, *parts, *iters)
	fmt.Printf("  T[0]=%.1f  T[mid]=%.2f  T[end]=%.1f\n", got[0], got[*ncells/2], got[*ncells-1])
	fmt.Printf("  max |parallel - sequential| = %g\n", maxDiff)
	if maxDiff != 0 {
		log.Fatal("parallel solver diverged from the sequential reference")
	}
	fmt.Println("  bit-identical to the sequential solver — lockstep determinism")

	// And identical across repeated parallel runs, of course.
	again, err := parallel(grid, *parts, *iters)
	if err != nil {
		log.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			log.Fatalf("parallel runs diverged at cell %d", i)
		}
	}
	fmt.Println("  repeated parallel runs identical")
}

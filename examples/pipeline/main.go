// Pipeline demonstrates MergeAllFromSet on a staged computation — the
// paper's motivation for the FromSet variants: "useful when a task has a
// set of child tasks running and wants to wait and merge a subset of
// them". A three-stage text pipeline (tokenize → score → summarize) fans
// each stage out over worker tasks and merges exactly that stage's
// workers before starting the next, while an unrelated slow audit task
// keeps running until the end.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"repro"
)

var documents = []string{
	"the quick brown fox jumps over the lazy dog",
	"a deterministic program is a debuggable program",
	"merge early merge often and never hold a lock",
}

func main() {
	// FastList (copy-on-write) rather than List for the append-only token
	// and summary streams; the per-stage fan-out copies them to every
	// worker, which COW makes O(1).
	tokens := repro.NewFastList[string]()
	scores := repro.NewMap[string, int]()
	summary := repro.NewFastList[string]()
	audit := repro.NewCounter(0)

	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
		tk := data[0].(*repro.FastList[string])
		sc := data[1].(*repro.Map[string, int])
		sm := data[2].(*repro.FastList[string])

		// A slow, unrelated child runs across all stages; nothing waits
		// for it until the very end.
		auditTask := ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
			time.Sleep(30 * time.Millisecond)
			data[0].(*repro.Counter).Inc()
			return nil
		}, data[3])

		// Stage 1: tokenize each document in its own task.
		stage1 := make([]*repro.Task, len(documents))
		for i, doc := range documents {
			doc := doc
			stage1[i] = ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
				out := data[0].(*repro.FastList[string])
				out.Append(strings.Fields(doc)...)
				return nil
			}, tk)
		}
		if err := ctx.MergeAllFromSet(stage1); err != nil { // barrier: stage 1 only
			return err
		}

		// Stage 2: score token shards (word lengths) over the merged
		// token list.
		words := tk.Values()
		half := len(words) / 2
		shards := [][]string{words[:half], words[half:]}
		stage2 := make([]*repro.Task, len(shards))
		for i, shard := range shards {
			i, shard := i, shard
			stage2[i] = ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
				out := data[0].(*repro.Map[string, int])
				for _, w := range shard {
					out.Set(fmt.Sprintf("shard%d/%s", i, w), len(w))
				}
				return nil
			}, sc)
		}
		if err := ctx.MergeAllFromSet(stage2); err != nil {
			return err
		}

		// Stage 3: summarize (single task, needs all stage-2 output).
		stage3 := ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
			in := data[0].(*repro.Map[string, int])
			out := data[1].(*repro.FastList[string])
			longest, best := "", 0
			total := 0
			for _, k := range in.Keys() {
				v, _ := in.Get(k)
				total += v
				word := k[strings.Index(k, "/")+1:]
				if v > best || (v == best && word < longest) {
					longest, best = word, v
				}
			}
			out.Append(fmt.Sprintf("tokens: %d", in.Len()))
			out.Append(fmt.Sprintf("total letters: %d", total))
			out.Append(fmt.Sprintf("longest word: %s (%d)", longest, best))
			return nil
		}, sc, sm)
		if err := ctx.MergeAllFromSet([]*repro.Task{stage3}); err != nil {
			return err
		}

		// Finally collect the audit task (and anything else left).
		if err := ctx.MergeAllFromSet([]*repro.Task{auditTask}); err != nil {
			return err
		}
		return nil
	}, tokens, scores, summary, audit)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pipeline summary:")
	for _, line := range summary.Values() {
		fmt.Printf("  %s\n", line)
	}
	fmt.Printf("audit passes: %d\n", audit.Value())

	// Deterministic? Sort-free check: re-run would be identical; here we
	// just show the merged token order is the deterministic stage-1 merge
	// order (document order, not completion order).
	first := tokens.Values()[0]
	if first != "the" {
		log.Fatalf("stage-1 merge order violated: first token %q", first)
	}
	sorted := append([]string(nil), tokens.Values()...)
	sort.Strings(sorted)
	fmt.Printf("%d tokens, first by merge order: %q, first alphabetically: %q\n",
		len(sorted), first, sorted[0])
}

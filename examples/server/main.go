// Server runs the paper's Listing 3: a key-value server whose root task
// owns the data, an accept task that blocks on incoming connections and
// Clones a sibling per connection, and connection tasks that Sync() after
// every request to merge their changes into the root. The root merges on
// a first-completed basis with MergeAny — the paper's explicit
// non-determinism for reacting to unpredictable clients — yet the store
// operations themselves remain race-free by construction.
//
// Networking runs over an in-memory transport (internal/memnet) so the
// example is hermetic; the task structure is identical to real TCP.
//
// With -metrics the server also exposes the runtime's observability
// endpoints over real HTTP — /debug/vars (expvar JSON) and /metrics
// (Prometheus text format) — fed by a span tracer on the whole task tree;
// -linger keeps the process (and the endpoints) up after the workload
// finishes, for interactive scraping.
//
// With -resilient the example instead runs the collaborative editor's
// resilient front door (internal/collab): flaky clients edit one shared
// document through a fault-injecting network, dropping connections
// mid-script and transparently reconnecting with RESUME; the final
// document carries every acked edit exactly once, and the run prints the
// session counters (resumes, replays, detaches) that prove the churn.
//
// With -shards the example runs the sharded document service: documents
// consistent-hash onto per-shard merge loops behind one routing front,
// clients push batched edits, and a new shard joins mid-traffic — the
// handoff is invisible to clients thanks to the epoch fence.
//
//	go run ./examples/server [-clients 4] [-requests 3]
//	go run ./examples/server -metrics 127.0.0.1:8321 -linger 60s
//	go run ./examples/server -resilient [-clients 6] [-requests 8]
//	go run ./examples/server -shards 2 [-clients 6] [-requests 16]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/collab"
	"repro/internal/faultnet"
	"repro/internal/memnet"
)

// accept is Listing 3's accept(): loop on the blocking Accept and clone a
// sibling task per connection. The clone inherits stale data copies and
// must Sync before touching them.
func accept(listener *memnet.Listener) repro.Func {
	return func(ctx *repro.Ctx, data []repro.Mergeable) error {
		for {
			socket, err := listener.Accept()
			if err != nil {
				return nil // listener closed: server shutting down
			}
			ctx.Clone(conn(socket))
		}
	}
}

// conn is Listing 3's conn(): refresh the inherited data with Sync, then
// serve requests, syncing after each one so the root sees the changes.
func conn(socket net.Conn) repro.Func {
	return func(ctx *repro.Ctx, data []repro.Mergeable) error {
		defer socket.Close()
		if err := ctx.Sync(); err != nil { // the clone's data is outdated
			return err
		}
		store := data[0].(*repro.Map[string, string])
		served := data[1].(*repro.Counter)
		r := bufio.NewReader(socket)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return nil // client hung up: task completes
			}
			reply := handle(store, strings.TrimSpace(line))
			served.Inc()
			if err := ctx.Sync(); err != nil { // merge this request's work
				fmt.Fprintf(socket, "ERR %v\n", err)
				return err
			}
			fmt.Fprintf(socket, "%s\n", reply)
		}
	}
}

// handle executes one request against the task's copy of the store.
func handle(store *repro.Map[string, string], req string) string {
	parts := strings.SplitN(req, " ", 3)
	switch parts[0] {
	case "SET":
		if len(parts) < 3 {
			return "ERR usage: SET key value"
		}
		store.Set(parts[1], parts[2])
		return "OK"
	case "GET":
		if len(parts) < 2 {
			return "ERR usage: GET key"
		}
		if v, ok := store.Get(parts[1]); ok {
			return v
		}
		return "(nil)"
	default:
		return "ERR unknown command"
	}
}

// shardedDemo runs the multi-node spine: documents consistent-hash onto
// per-shard single-writer merge loops behind one routing front, clients
// push batched edits, and mid-run a new shard joins — its doc ranges
// hand off via snapshot transfer behind the epoch fence while traffic
// keeps flowing. The run prints the final routing table, per-document
// fingerprints and the shard merge-latency quantiles.
func shardedDemo(shards, clients, edits int, seed int64) {
	initial := map[string]string{
		"alpha": "", "beta": "", "gamma": "", "delta": "", "epsilon": "",
	}
	listener := memnet.Listen(clients + 4)
	srv, err := collab.ServeSharded(listener, initial, collab.ShardedOptions{
		Shards: shards,
		Front:  collab.Options{Seed: seed},
	})
	if err != nil {
		log.Fatalf("serve sharded: %v", err)
	}
	names := srv.Names()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := collab.DialWith(listener, collab.ClientOptions{RequestTimeout: 5 * time.Second})
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer cl.Close()
			if _, err := cl.Use(names[c%len(names)]); err != nil {
				log.Fatalf("client %d: use: %v", c, err)
			}
			for i := 0; i < edits; i++ {
				cl.QueueInsert(0, fmt.Sprintf("c%d-e%d;", c, i))
				if cl.Queued() >= 4 || i == edits-1 {
					if err := cl.Flush(); err != nil {
						log.Fatalf("client %d edit %d: %v", c, i, err)
					}
				}
			}
			if err := cl.Bye(); err != nil {
				log.Fatalf("client %d: bye: %v", c, err)
			}
		}(c)
	}

	// Live rebalance mid-traffic: shard N joins, takes over its ranges.
	time.Sleep(5 * time.Millisecond)
	if err := srv.AddShard(shards); err != nil {
		log.Fatalf("add shard: %v", err)
	}
	wg.Wait()
	if err := srv.Shutdown(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("routing table after shard %d joined (epoch %d):\n", shards, srv.Epoch())
	for _, name := range names {
		doc, _ := srv.Document(name)
		fmt.Printf("  %-8s -> shard %d  (%3d bytes, fingerprint %016x)\n",
			name, srv.RouteOf(name), len(doc), collab.CanonicalFingerprint(doc))
	}
	h := srv.MergeLatency()
	fmt.Printf("%d edits across %d shards; merge p50 %.0fµs p99 %.0fµs over %d batches\n",
		srv.Edits(), len(srv.ShardIDs()), h.Quantile(0.5)*1e6, h.Quantile(0.99)*1e6, h.Count())
	fmt.Printf("service counters: %s\n", srv.Stats())
}

// resilientDemo runs the collab front door under fire: every client edits
// the shared document through a seeded fault-injecting network, and on
// top of the injected drops and resets each client yanks its own
// connection once mid-script. The Client reconnects and RESUMEs on its
// own; the session's replay window dedupes any retried request, so the
// final document holds each edit exactly once.
func resilientDemo(clients, edits int, seed int64) {
	fnet := faultnet.New(faultnet.Config{Seed: seed, DropProb: 0.05, ResetProb: 0.02})
	listener := fnet.Listen(0, clients)
	srv := collab.ServeWith(listener, "", collab.Options{Seed: seed})

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := collab.DialWith(listener, collab.ClientOptions{
				RequestTimeout: 100 * time.Millisecond,
				Backoff:        collab.Backoff{Base: time.Millisecond, Cap: 20 * time.Millisecond, MaxAttempts: 500},
			})
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer cl.Close()
			for i := 0; i < edits; i++ {
				if i == edits/2 {
					cl.Drop() // simulate a flaky client: kill the socket mid-script
				}
				if _, err := cl.Insert(0, fmt.Sprintf("c%d-e%d;", c, i)); err != nil {
					log.Fatalf("client %d edit %d: %v", c, i, err)
				}
			}
			if err := cl.Bye(); err != nil {
				log.Fatalf("client %d: bye: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	listener.Close()
	if err := srv.Wait(); err != nil {
		log.Fatal(err)
	}

	doc := srv.Document()
	fmt.Printf("final document (%d bytes, %d edits, canonical fingerprint %016x):\n  %s\n",
		len(doc), srv.Edits(), collab.CanonicalFingerprint(doc), doc)
	fmt.Printf("session counters: %s\n", srv.Stats())
	fmt.Printf("injected faults:  %s\n", fnet.Stats())
}

func main() {
	clients := flag.Int("clients", 4, "concurrent clients")
	requests := flag.Int("requests", 3, "SET requests per client")
	resilient := flag.Bool("resilient", false, "demo the collab front door: flaky clients reconnect+RESUME through injected faults")
	shards := flag.Int("shards", 0, "demo the sharded document service: route documents over this many shards with a live join mid-traffic")
	metricsAddr := flag.String("metrics", "", "serve /debug/vars and /metrics on this address")
	linger := flag.Duration("linger", 0, "keep the process (and metrics endpoints) alive this long after the workload")
	flag.Parse()

	if *resilient {
		resilientDemo(*clients, max(*requests, 8), 42)
		return
	}
	if *shards > 0 {
		shardedDemo(*shards, max(*clients, 6), max(*requests, 16), 42)
		return
	}

	var tracer *repro.Tracer
	if *metricsAddr != "" {
		tracer = repro.NewTracer()
		reg := repro.NewMetricsRegistry()
		reg.AddTracer("server", tracer)
		reg.Publish("spawnmerge")
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		go http.Serve(ln, reg.Handler("spawnmerge"))
		fmt.Printf("metrics on http://%s/metrics and /debug/vars\n", ln.Addr())
	}

	listener := memnet.Listen(*clients)
	store := repro.NewMap[string, string]()
	served := repro.NewCounter(0)

	// Drive the clients from plain goroutines — they are the outside
	// world, beyond the deterministic core.
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sock, err := listener.Dial()
			if err != nil {
				return
			}
			defer sock.Close()
			r := bufio.NewReader(sock)
			for i := 0; i < *requests; i++ {
				fmt.Fprintf(sock, "SET client%d-key%d value%d\n", c, i, i)
				if _, err := r.ReadString('\n'); err != nil {
					return
				}
			}
			fmt.Fprintf(sock, "GET client%d-key0\n", c)
			if reply, err := r.ReadString('\n'); err == nil {
				fmt.Printf("  client %d read back: %s", c, reply)
			}
		}(c)
	}
	go func() {
		wg.Wait()
		listener.Close() // all clients done: stop accepting
	}()

	err := repro.RunObserved(tracer, func(ctx *repro.Ctx, data []repro.Mergeable) error {
		ctx.Spawn(accept(listener), data...)
		for {
			if _, err := ctx.MergeAny(); err != nil {
				if errors.Is(err, repro.ErrNothingToMerge) {
					return nil // accept task and all connections finished
				}
				return err
			}
		}
	}, store, served)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d requests; final store (%d keys):\n", served.Value(), store.Len())
	for _, k := range store.Keys() {
		v, _ := store.Get(k)
		fmt.Printf("  %s = %s\n", k, v)
	}
	if tracer != nil {
		fmt.Printf("spans recorded: %d\n", tracer.SpanCount())
	}
	if *linger > 0 {
		fmt.Printf("lingering %v for scrapes...\n", *linger)
		time.Sleep(*linger)
	}
}

// Quickstart runs the paper's Listing 1: a parent task and a spawned child
// append to the same logical list without any locking; the deterministic
// merge interleaves their operations the same way on every run.
//
// Compare with the mutex-based Listing 2 the paper shows: that version is
// longer, needs two mutexes, and its result depends on scheduling. This
// one cannot race and cannot deadlock.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

// f is the child task's body from Listing 1: it appends 5 to its copy of
// the list.
func f(ctx *repro.Ctx, data []repro.Mergeable) error {
	l := data[0].(*repro.List[int])
	l.Append(5)
	return nil
}

func runOnce() ([]int, error) {
	// Plain List, to match Listing 1 verbatim. Since the COW rework its
	// CloneValue is O(1) structural sharing too; FastList remains the
	// leaner choice for append/overwrite-only workloads (see the other
	// examples).
	list := repro.NewList(1, 2, 3)
	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
		l := data[0].(*repro.List[int])
		t := ctx.Spawn(f, l) // child gets a copy — no locks needed
		l.Append(4)          // parent appends concurrently
		return ctx.MergeAllFromSet([]*repro.Task{t})
	}, list)
	return list.Values(), err
}

func main() {
	fmt.Println("Listing 1: Spawn(f, list); list.Append(4); MergeAllFromSet(t)")
	var first []int
	for run := 1; run <= 5; run++ {
		got, err := runOnce()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  run %d: %v\n", run, got)
		if first == nil {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				log.Fatalf("non-deterministic result: %v vs %v", got, first)
			}
		}
	}
	fmt.Println("every run produced the same list — deterministic by construction")
}

// Distributed demonstrates the paper's second future-work item: Spawn &
// Merge over distributed workers ("we plan to apply the concept of Spawn
// and Merge to distributed computing by using MPI"). Three worker nodes —
// separate address spaces connected by a message-passing transport —
// each count the words of one document shard on a snapshot copy of a
// mergeable map; the coordinator merges their serialized operations
// deterministically and folds the totals.
//
// Note the idiom: every shard publishes under its own key prefix and the
// coordinator folds afterwards. Concurrent writes to the *same* key would
// be resolved by merge order (earlier merge wins) — deterministic, but
// not addition; disjoint keys make the shards truly conflict-free.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro"
	"repro/internal/dist"
	"repro/internal/mergeable"
	"repro/internal/task"
)

var shards = []string{
	"parallel programming must be deterministic by default",
	"spawn and merge make parallel programs deterministic",
	"operational transformation makes the merge deterministic",
}

func init() {
	dist.RegisterMapCodec[string, int]("wordcounts")
	// Remote task bodies are named — closures cannot cross address
	// spaces, exactly as in MPI programs.
	for i, shard := range shards {
		i, shard := i, shard
		dist.RegisterFunc(fmt.Sprintf("count-shard-%d", i), func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
			counts := data[0].(*mergeable.Map[string, int])
			local := map[string]int{}
			for _, w := range strings.Fields(shard) {
				local[w]++
			}
			for w, n := range local {
				counts.Set(fmt.Sprintf("shard%d/%s", i, w), n)
			}
			// Ship the shard's results back mid-task, then finish — the
			// remote Sync path in action.
			return wctx.Sync()
		})
	}
}

func runOnce() (map[string]int, error) {
	cluster := dist.NewCluster(len(shards))
	defer cluster.Close()

	counts := repro.NewMap[string, int]()
	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		m := data[0].(*mergeable.Map[string, int])
		for node := range shards {
			cluster.SpawnRemote(ctx, node, fmt.Sprintf("count-shard-%d", node), m)
		}
		if err := ctx.MergeAll(); err != nil { // merges the remote syncs
			return err
		}
		if err := ctx.MergeAll(); err != nil { // collects completions
			return err
		}
		// Fold per-shard results into totals, on the coordinator.
		totals := map[string]int{}
		for _, k := range m.Keys() {
			if idx := strings.Index(k, "/"); idx >= 0 {
				v, _ := m.Get(k)
				totals[k[idx+1:]] += v
			}
		}
		for w, n := range totals {
			m.Set("total/"+w, n)
		}
		return nil
	}, counts)
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for _, k := range counts.Keys() {
		if strings.HasPrefix(k, "total/") {
			v, _ := counts.Get(k)
			out[strings.TrimPrefix(k, "total/")] = v
		}
	}
	return out, nil
}

func main() {
	first, err := runOnce()
	if err != nil {
		log.Fatal(err)
	}
	words := make([]string, 0, len(first))
	for w := range first {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if first[words[i]] != first[words[j]] {
			return first[words[i]] > first[words[j]]
		}
		return words[i] < words[j]
	})
	fmt.Printf("word counts from %d remote workers:\n", len(shards))
	for _, w := range words {
		fmt.Printf("  %-16s %d\n", w, first[w])
	}
	if first["deterministic"] != 3 || first["parallel"] != 2 {
		log.Fatalf("wrong totals: %v", first)
	}

	for run := 2; run <= 3; run++ {
		again, err := runOnce()
		if err != nil {
			log.Fatal(err)
		}
		for w, n := range first {
			if again[w] != n {
				log.Fatalf("non-deterministic distributed result for %q: %d vs %d", w, again[w], n)
			}
		}
	}
	fmt.Println("3 runs, identical counts — determinism survives distribution")
}

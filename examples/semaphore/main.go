// Semaphore runs the constructive proof of Section IV.A: Dijkstra
// semaphores built from nothing but Spawn, Merge and Sync, driving the
// classic bounded-buffer producer/consumer exercise. It also reproduces
// the section's deadlock discussion — two workers acquiring two locks in
// opposite order deadlock in a semaphore system; the Spawn & Merge
// simulation detects the state (MergeAnyFromSet over an empty set) and
// reports it instead of hanging.
//
//	go run ./examples/semaphore
package main

import (
	"errors"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/mergeable"
	"repro/internal/semaphore"
	"repro/internal/task"
)

const (
	semSlots = 0 // free buffer slots (count 3)
	semItems = 1 // filled buffer slots (count 0)
	semMutex = 2 // buffer mutex (count 1)
)

func producerConsumer() {
	const items = 6
	// FastQueue/FastList (copy-on-write) rather than Queue/List: the buffer
	// and sink cross a Spawn/Sync boundary on every semaphore operation, and
	// this example only pushes, pops and appends — the COW fast paths.
	buf := repro.NewFastQueue[int]()
	out := repro.NewFastList[int]()

	producer := func(ctx *task.Ctx, sems *semaphore.Sems, data []mergeable.Mergeable) error {
		q := data[0].(*repro.FastQueue[int])
		for i := 0; i < items; i++ {
			if err := sems.Acquire(semSlots); err != nil {
				return err
			}
			if err := sems.Acquire(semMutex); err != nil {
				return err
			}
			q.Push(i)
			fmt.Printf("  produced %d\n", i)
			if err := sems.Release(semMutex); err != nil {
				return err
			}
			if err := sems.Release(semItems); err != nil {
				return err
			}
		}
		return nil
	}
	consumer := func(ctx *task.Ctx, sems *semaphore.Sems, data []mergeable.Mergeable) error {
		q := data[0].(*repro.FastQueue[int])
		sink := data[1].(*repro.FastList[int])
		for i := 0; i < items; i++ {
			if err := sems.Acquire(semItems); err != nil {
				return err
			}
			if err := sems.Acquire(semMutex); err != nil {
				return err
			}
			if v, ok := q.PopFront(); ok {
				sink.Append(v)
				fmt.Printf("  consumed %d\n", v)
			}
			if err := sems.Release(semMutex); err != nil {
				return err
			}
			if err := sems.Release(semSlots); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Println("bounded buffer (capacity 3) with semaphores made of Spawn/Merge/Sync:")
	if err := semaphore.Run([]int64{3, 0, 1}, []semaphore.Worker{producer, consumer}, buf, out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  transferred in order: %v\n\n", out.Values())
}

func deadlockDemo() {
	fmt.Println("two locks acquired in opposite order (the classic deadlock):")
	var aHolds, bHolds atomic.Bool
	workerA := func(ctx *task.Ctx, sems *semaphore.Sems, data []mergeable.Mergeable) error {
		if err := sems.Acquire(0); err != nil {
			return err
		}
		aHolds.Store(true)
		for !bHolds.Load() {
			time.Sleep(time.Millisecond)
		}
		return sems.Acquire(1)
	}
	workerB := func(ctx *task.Ctx, sems *semaphore.Sems, data []mergeable.Mergeable) error {
		if err := sems.Acquire(1); err != nil {
			return err
		}
		bHolds.Store(true)
		for !aHolds.Load() {
			time.Sleep(time.Millisecond)
		}
		return sems.Acquire(0)
	}
	err := semaphore.Run([]int64{1, 1}, []semaphore.Worker{workerA, workerB})
	if errors.Is(err, semaphore.ErrAllBlocked) {
		fmt.Println("  detected:", semaphore.ErrAllBlocked)
		fmt.Println("  (per §IV.B the simulation livelocks instead of deadlocking; we detect and stop)")
		return
	}
	log.Fatalf("expected ErrAllBlocked, got %v", err)
}

func main() {
	producerConsumer()
	deadlockDemo()
}

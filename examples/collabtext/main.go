// Collabtext demonstrates operational transformation on the workload it
// was invented for — collaborative text editing — driven by the Spawn &
// Merge runtime. Three editor tasks edit one document concurrently on
// their own copies; each editing round ends with Sync(), and the parent
// merges rounds deterministically with MergeAll. No matter how the
// scheduler interleaves the editors, the final document is identical on
// every run.
//
//	go run ./examples/collabtext [-runs 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
)

// editor returns a task body performing the given per-round edits, each
// round separated by a Sync.
func editor(rounds []func(doc *repro.Text)) repro.Func {
	return func(ctx *repro.Ctx, data []repro.Mergeable) error {
		doc := data[0].(*repro.Text)
		for _, edit := range rounds {
			edit(doc)
			if err := ctx.Sync(); err != nil {
				return err
			}
		}
		return nil
	}
}

func compose() (string, error) {
	doc := repro.NewText("Meeting notes\n")

	alice := editor([]func(*repro.Text){
		func(d *repro.Text) { d.Append("- agenda: determinism\n") },
		func(d *repro.Text) { d.Append("- agenda: merging\n") },
	})
	bob := editor([]func(*repro.Text){
		func(d *repro.Text) { d.Insert(0, "# ") }, // turn the title into a heading
		func(d *repro.Text) { d.Append("- action: write tests\n") },
	})
	carol := editor([]func(*repro.Text){
		func(d *repro.Text) { d.Append("- attendees: a, b, c\n") },
		func(d *repro.Text) {
			// Fix the title wording, wherever the heading markup put it.
			s := d.String()
			if idx := strings.Index(s, "Meeting"); idx >= 0 {
				d.Delete(idx, len("Meeting"))
				d.Insert(idx, "Weekly")
			}
		},
	})

	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
		ctx.Spawn(alice, data[0])
		ctx.Spawn(bob, data[0])
		ctx.Spawn(carol, data[0])
		// Three merge rounds: two for the editors' syncs, one to collect
		// completions (MergeAll merges each quiescent child once per call).
		for i := 0; i < 3; i++ {
			if err := ctx.MergeAll(); err != nil {
				return err
			}
		}
		return nil
	}, doc)
	return doc.String(), err
}

func main() {
	runs := flag.Int("runs", 3, "repetitions to demonstrate determinism")
	flag.Parse()

	var first string
	for r := 1; r <= *runs; r++ {
		got, err := compose()
		if err != nil {
			log.Fatal(err)
		}
		if r == 1 {
			first = got
			fmt.Println("merged document:")
			fmt.Println(indent(got))
		} else if got != first {
			log.Fatalf("run %d produced a different document:\n%s", r, indent(got))
		}
	}
	fmt.Printf("%d runs, identical documents — concurrent edits merged deterministically\n", *runs)
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}

// Package repro is Spawn & Merge: deterministic synchronization of
// multi-threaded programs with operational transformation, a from-scratch
// Go implementation of Boelmann, Schwittmann and Weis (IPDPSW 2014).
//
// # The model
//
// A program is a tree of tasks. Spawn forks a child task that receives
// deep copies of selected mergeable data structures — no memory is shared,
// so data races cannot exist. Every structure records the operations
// applied to it; Merge folds a child's operations back into the parent
// using operational transformation, so merging always succeeds (no aborts,
// no retries). Programs that merge with the deterministic MergeAll /
// MergeAllFromSet produce identical results on every run and any core
// count; MergeAny / MergeAnyFromSet introduce non-determinism exactly
// where the programmer asks for it. Deadlocks are impossible: the wait
// graph is the task tree, and its only cycle (parent merging, child
// syncing) resolves by performing the merge.
//
// # Quick start
//
// The paper's Listing 1 — parent and child append to one list without
// locks, the merge interleaves them deterministically:
//
//	list := repro.NewList(1, 2, 3)
//	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
//		l := data[0].(*repro.List[int])
//		t := ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
//			data[0].(*repro.List[int]).Append(5)
//			return nil
//		}, l)
//		l.Append(4)
//		return ctx.MergeAllFromSet([]*repro.Task{t})
//	}, list)
//	// list is now [1 2 3 4 5] — on every run.
//
// The runnable programs under examples/ cover the paper's server software
// (Listing 3), the network simulation (Listing 4), collaborative text
// editing and the Section IV.A semaphore construction.
//
// This facade re-exports the implementation packages internal/task
// (runtime), internal/mergeable (data structures) and internal/ot
// (transformation engine).
package repro

import (
	"repro/internal/dist"
	"repro/internal/explore"
	"repro/internal/journal"
	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/task"
)

// Core runtime types, re-exported from internal/task.
type (
	// Ctx is a task's view of itself: Spawn, Clone, Sync and the four
	// Merge flavors live here.
	Ctx = task.Ctx
	// Task is the handle a parent holds for a spawned child.
	Task = task.Task
	// Func is a task body.
	Func = task.Func
	// MergeOption configures a merge call (see WithCondition).
	MergeOption = task.MergeOption
	// Condition validates a merge preview (Section II.D's post-condition).
	Condition = task.Condition
	// PanicError wraps a panic recovered from a task body.
	PanicError = task.PanicError
	// Trace collects merge decisions from RunTraced.
	Trace = task.Trace
	// MergeEvent is one recorded merge decision.
	MergeEvent = task.MergeEvent
	// MergeScript records/replays non-deterministic merge picks.
	MergeScript = task.MergeScript
)

// Mergeable data structures, re-exported from internal/mergeable.
type (
	// Mergeable is the interface between structures and the runtime;
	// implement it to add custom mergeable structures.
	Mergeable = mergeable.Mergeable
	// Log is the operation log embedded in every structure.
	Log = mergeable.Log
	// List is a mergeable ordered sequence.
	List[T any] = mergeable.List[T]
	// Queue is a mergeable FIFO queue.
	Queue[T any] = mergeable.Queue[T]
	// FastList is List with copy-on-write storage: O(1) task copies.
	FastList[T any] = mergeable.FastList[T]
	// FastQueue is Queue with copy-on-write storage: O(1) task copies.
	FastQueue[T any] = mergeable.FastQueue[T]
	// Map is a mergeable key-value map.
	Map[K comparable, V any] = mergeable.Map[K, V]
	// Set is a mergeable mathematical set.
	Set[K comparable] = mergeable.Set[K]
	// Register is a mergeable single-value cell.
	Register[T any] = mergeable.Register[T]
	// Counter is a mergeable integer counter.
	Counter = mergeable.Counter
	// Text is a mergeable text buffer.
	Text = mergeable.Text
	// Tree is a mergeable ordered tree.
	Tree = mergeable.Tree
)

// Runtime sentinel errors, re-exported from internal/task.
var (
	// ErrAborted is observed by an externally aborted task at its next Sync.
	ErrAborted = task.ErrAborted
	// ErrMergeRejected reports that a merge condition discarded the changes.
	ErrMergeRejected = task.ErrMergeRejected
	// ErrNothingToMerge is returned by MergeAny without live children.
	ErrNothingToMerge = task.ErrNothingToMerge
	// ErrNotChild guards the tree-shaped wait discipline.
	ErrNotChild = task.ErrNotChild
	// ErrRootSync is returned when the root task calls Sync.
	ErrRootSync = task.ErrRootSync
)

// Run executes fn as the root task and returns once the whole task tree
// has completed and merged. See task.Run.
func Run(fn Func, data ...Mergeable) error { return task.Run(fn, data...) }

// RunPooled is Run with task execution bounded to maxParallel
// simultaneous tasks (the paper's thread-pool scheduling, footnote 2).
// Results are identical to Run's; only the scheduling changes.
func RunPooled(maxParallel int, fn Func, data ...Mergeable) error {
	return task.RunPooled(maxParallel, fn, data...)
}

// RunTraced is Run with merge tracing: every merge decision is recorded
// into the returned Trace. Deterministic programs produce identical
// per-parent traces on every run, so two traces can be diffed to localize
// a divergence.
func RunTraced(fn Func, data ...Mergeable) (*Trace, error) {
	return task.RunTraced(fn, data...)
}

// NewMergeScript returns an empty script for RunRecording.
func NewMergeScript() *MergeScript { return task.NewMergeScript() }

// RunRecording is Run that records every non-deterministic merge decision
// (MergeAny / MergeAnyFromSet) into script, so RunReplaying can reproduce
// the execution exactly.
func RunRecording(script *MergeScript, fn Func, data ...Mergeable) error {
	return task.RunRecording(script, fn, data...)
}

// RunReplaying is Run with the non-deterministic merge decisions forced
// to follow a recorded script, reproducing that execution bit for bit.
func RunReplaying(script *MergeScript, fn Func, data ...Mergeable) error {
	return task.RunReplaying(script, fn, data...)
}

// WithCondition attaches a post-condition to a merge call.
func WithCondition(cond Condition) MergeOption { return task.WithCondition(cond) }

// Observability layer, re-exported from internal/obs.
type (
	// Tracer collects hierarchical runtime spans (see RunObserved). For a
	// deterministic program the span tree is identical across runs and
	// core counts, durations aside.
	Tracer = obs.Tracer
	// Span is one recorded runtime event.
	Span = obs.Span
	// SpanTree is a tracer's spans frozen into canonical, comparable form
	// (Fingerprint, Render, obs.Diff).
	SpanTree = obs.Tree
	// MetricsRegistry exports counters and latency histograms over expvar
	// (/debug/vars) and the Prometheus text format (/metrics).
	MetricsRegistry = obs.Registry
	// RunConfig bundles every optional runtime hook for RunWith.
	RunConfig = task.RunConfig
)

// NewTracer returns an empty span tracer.
func NewTracer() *Tracer { return obs.New() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DiffSpanTrees reports the identity divergences between two span trees,
// ignoring durations — empty for trees of equal fingerprint. Diffing a
// failing run against a known-good one localizes where behavior forked.
func DiffSpanTrees(a, b *SpanTree) []string { return obs.Diff(a, b) }

// RunObserved is Run with span tracing: every spawn, merge (with nested
// per-structure transform/apply phases), sync and abort in the task tree
// is recorded into tracer. See internal/obs for the determinism
// guarantees of the resulting span tree.
func RunObserved(tracer *Tracer, fn Func, data ...Mergeable) error {
	return task.RunObserved(tracer, fn, data...)
}

// RunWith executes fn with an explicit hook configuration — the general
// form behind Run, RunPooled, RunTraced, RunRecording, RunReplaying and
// RunObserved, for callers combining several hooks at once.
func RunWith(cfg RunConfig, fn Func, data ...Mergeable) error {
	return task.RunWith(cfg, fn, data...)
}

// SetProfileLabels enables runtime/pprof labels (task_id, task_path,
// phase=run|merge) on every task goroutine, so CPU and goroutine profiles
// can be sliced per task or per phase. Off by default; enabling costs one
// label-set allocation per task.
func SetProfileLabels(on bool) { task.SetProfileLabels(on) }

// Journal sentinel errors, re-exported from internal/journal. Classify
// with errors.Is.
var (
	// ErrJournalCorrupt reports journal damage recovery cannot repair
	// (mid-file CRC mismatch, undecodable record, inconsistent
	// checkpoint). A corrupt journal must not be resumed.
	ErrJournalCorrupt = journal.ErrCorrupt
	// ErrJournalTornTail reports an incomplete final WAL record — the
	// benign signature of a killed process. Resume truncates it and
	// recovers everything before it.
	ErrJournalTornTail = journal.ErrTornTail
	// ErrNoJournaledRun reports a directory with nothing to resume: no
	// journal, or one that died before the inputs became durable. Start
	// the run from scratch with RunJournaled.
	ErrNoJournaledRun = journal.ErrNoRun
	// ErrJournalDiverged reports that a resumed run did not retrace the
	// journaled one — the program changed, or it harbors non-determinism
	// the merge script does not capture.
	ErrJournalDiverged = journal.ErrDiverged
)

// journalOptions wires the journal to the dist codec registry: durable
// snapshots use the same per-structure codecs as the cluster wire format.
func journalOptions() journal.Options {
	return journal.Options{Encode: dist.EncodeSnapshot, Decode: dist.DecodeSnapshot}
}

// RunJournaled is Run with crash recovery: the initial snapshots of data
// are made durable in dir before fn starts, every committed MergeAny /
// MergeAnyFromSet pick is written ahead of its merge, and checkpoints of
// the root structures land periodically. If the process dies — kill -9
// included — Resume(dir, fn) reproduces the interrupted run exactly and
// carries it to completion.
//
// Every structure in data needs a registered dist codec (for example
// dist.RegisterListCodec); built-ins Counter and Text are pre-registered.
// dir must not already contain a journal.
func RunJournaled(dir string, fn Func, data ...Mergeable) error {
	return journal.Run(dir, journalOptions(), fn, data...)
}

// Resume recovers the journaled run in dir and re-executes fn over the
// recovered inputs with the journaled picks forced, returning the final
// structures (in the order they were passed to RunJournaled). The
// replayed prefix is bit-identical to the interrupted run — checkpoint
// fingerprints are verified along the way — and execution continues live
// past the crash point, still journaled, so an interrupted Resume is
// itself resumable. Resuming a journal whose run already completed
// replays and verifies it, returning the same final state.
func Resume(dir string, fn Func) ([]Mergeable, error) {
	return journal.Resume(dir, journalOptions(), fn)
}

// Schedule exploration, re-exported from internal/explore. The explorer
// seizes every sanctioned nondeterminism source — MergeAny picks, faultnet
// chaos, journal crash points — behind one seeded decision stream and
// checks the paper's invariants on every explored schedule. See
// internal/explore and cmd/explore.
type (
	// ExploreScenario is one program under exploration.
	ExploreScenario = explore.Scenario
	// ExploreEnv is a schedule's decision-stream view, handed to Build.
	ExploreEnv = explore.Env
	// ExploreOptions configures an exploration.
	ExploreOptions = explore.Options
	// ExploreResult summarizes one.
	ExploreResult = explore.Result
	// ExploreViolation is one schedule that broke an invariant.
	ExploreViolation = explore.Violation
	// ExploreStrategy selects random-walk or bounded-exhaustive search.
	ExploreStrategy = explore.Strategy
	// ExploreCrashCheck configures crash-point exploration.
	ExploreCrashCheck = explore.CrashCheck
)

// Exploration strategies.
const (
	ExploreRandomWalk = explore.RandomWalk
	ExploreExhaustive = explore.Exhaustive
)

// Explore walks sc's schedule space under opts, checking determinism,
// MergeAny replay soundness, progress and (optionally) crash-resume
// equivalence on every schedule. Failing schedules are shrunk to minimal
// decision traces when opts.Shrink is set.
func Explore(sc ExploreScenario, opts ExploreOptions) (*ExploreResult, error) {
	return explore.Run(sc, opts)
}

// ExploreCrashCodecs returns a CrashCheck wired to the dist codec
// registry — the same snapshot codecs RunJournaled uses — so callers only
// fill in the sweep shape (Points, Dir).
func ExploreCrashCodecs() *ExploreCrashCheck {
	return &ExploreCrashCheck{Encode: dist.EncodeSnapshot, Decode: dist.DecodeSnapshot}
}

// ReplayExploreSeed re-runs a persisted counterexample seed file against
// sc and reports the violation it reproduces (nil if it no longer fails).
func ReplayExploreSeed(path string, sc ExploreScenario, opts ExploreOptions) (*ExploreViolation, error) {
	return explore.ReplaySeed(path, sc, opts)
}

// NewList returns a mergeable list holding vals.
func NewList[T any](vals ...T) *List[T] { return mergeable.NewList(vals...) }

// NewQueue returns a mergeable FIFO queue holding vals front-to-back.
func NewQueue[T any](vals ...T) *Queue[T] { return mergeable.NewQueue(vals...) }

// NewFastList returns a copy-on-write mergeable list holding vals. Prefer
// it over NewList for large structures copied to many tasks: cloning is
// O(1) instead of O(n).
func NewFastList[T any](vals ...T) *FastList[T] { return mergeable.NewFastList(vals...) }

// NewFastQueue returns a copy-on-write mergeable queue holding vals.
func NewFastQueue[T any](vals ...T) *FastQueue[T] { return mergeable.NewFastQueue(vals...) }

// NewMap returns an empty mergeable map.
func NewMap[K comparable, V any]() *Map[K, V] { return mergeable.NewMap[K, V]() }

// NewSet returns a mergeable set holding vals.
func NewSet[K comparable](vals ...K) *Set[K] { return mergeable.NewSet(vals...) }

// NewRegister returns a mergeable register initialized to v.
func NewRegister[T any](v T) *Register[T] { return mergeable.NewRegister(v) }

// NewCounter returns a mergeable counter initialized to v.
func NewCounter(v int64) *Counter { return mergeable.NewCounter(v) }

// NewText returns a mergeable text buffer initialized with s.
func NewText(s string) *Text { return mergeable.NewText(s) }

// NewTree returns a mergeable tree whose root holds rootValue.
func NewTree(rootValue any) *Tree { return mergeable.NewTree(rootValue) }

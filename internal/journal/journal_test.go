package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/mergeable"
	"repro/internal/stats"
	"repro/internal/task"
)

func init() {
	dist.RegisterListCodec[int]("journal-test-list-int")
	dist.RegisterSetCodec[int]("journal-test-set-int")
}

func testOptions() Options {
	return Options{
		Encode:          dist.EncodeSnapshot,
		Decode:          dist.DecodeSnapshot,
		CheckpointEvery: 3,
	}
}

// anyData / anyWorkload: the acceptance workload. Three waves of three
// children drained with MergeAny — nine non-deterministic picks and nine
// root merges (checkpoints at 3, 6, 9 with CheckpointEvery=3). Every
// child's effect commutes (a distinct counter bit, a distinct set
// element) and the root's list appends are pick-independent, so the FINAL
// fingerprint is the same whatever the picks — which is what lets a
// crashed run, resumed with a different tail of free picks, be compared
// against an uninterrupted reference. Intermediate states still depend on
// the picks, so checkpoint verification stays meaningful.
func anyData() []mergeable.Mergeable {
	return []mergeable.Mergeable{mergeable.NewCounter(0), mergeable.NewSet[int](), mergeable.NewList[int]()}
}

func anyWorkload(ctx *task.Ctx, data []mergeable.Mergeable) error {
	for wave := 0; wave < 3; wave++ {
		for c := 0; c < 3; c++ {
			id := wave*3 + c
			ctx.Spawn(func(_ *task.Ctx, d []mergeable.Mergeable) error {
				d[0].(*mergeable.Counter).Add(1 << id)
				d[1].(*mergeable.Set[int]).Add(id)
				return nil
			}, data...)
		}
		for c := 0; c < 3; c++ {
			if _, err := ctx.MergeAny(); err != nil {
				return err
			}
		}
		data[2].(*mergeable.List[int]).Append(wave)
	}
	return nil
}

// orderData / orderWorkload: an order-SENSITIVE MergeAny workload — the
// final list is the pick order itself. Only a complete journal can make
// its replay exact.
func orderData() []mergeable.Mergeable {
	return []mergeable.Mergeable{mergeable.NewList[int]()}
}

func orderWorkload(ctx *task.Ctx, data []mergeable.Mergeable) error {
	for c := 0; c < 6; c++ {
		id := c
		ctx.Spawn(func(_ *task.Ctx, d []mergeable.Mergeable) error {
			d[0].(*mergeable.List[int]).Append(id)
			return nil
		}, data...)
	}
	for c := 0; c < 6; c++ {
		if _, err := ctx.MergeAny(); err != nil {
			return err
		}
	}
	return nil
}

// allData / allWorkload: a fully deterministic MergeAll workload whose
// result is order-sensitive in merge positions — recovery must reproduce
// the exact state with no picks to lean on.
func allData() []mergeable.Mergeable {
	return []mergeable.Mergeable{mergeable.NewList[int]()}
}

func allWorkload(ctx *task.Ctx, data []mergeable.Mergeable) error {
	for wave := 0; wave < 4; wave++ {
		for c := 0; c < 2; c++ {
			id := wave*2 + c
			ctx.Spawn(func(_ *task.Ctx, d []mergeable.Mergeable) error {
				d[0].(*mergeable.List[int]).Append(id)
				return nil
			}, data...)
		}
		if err := ctx.MergeAll(); err != nil {
			return err
		}
	}
	return nil
}

// TestRunJournalsAndSeals: a clean journaled run records its inputs, all
// nine picks, three checkpoints and a done record; resuming the completed
// journal replays it and verifies the sealed fingerprint.
func TestRunJournalsAndSeals(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Stats = stats.NewCounters()
	data := anyData()
	if err := Run(dir, opts, anyWorkload, data...); err != nil {
		t.Fatal(err)
	}
	want := fingerprintAll(data)

	if got := opts.Stats.Get("pick_recorded"); got != 9 {
		t.Errorf("pick_recorded = %d, want 9", got)
	}
	if got := opts.Stats.Get("checkpoint_written"); got != 3 {
		t.Errorf("checkpoint_written = %d, want 3", got)
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify(clean journal) = %v", err)
	}

	ropts := testOptions()
	ropts.Stats = stats.NewCounters()
	out, err := Resume(dir, ropts, anyWorkload)
	if err != nil {
		t.Fatalf("Resume(completed journal) = %v", err)
	}
	if got := fingerprintAll(out); got != want {
		t.Fatalf("resumed fingerprint %016x, want %016x", got, want)
	}
	if got := ropts.Stats.Get("done_verified"); got != 1 {
		t.Errorf("done_verified = %d, want 1", got)
	}
	if got := ropts.Stats.Get("pick_replayed"); got != 9 {
		t.Errorf("pick_replayed = %d, want 9", got)
	}
	if got := ropts.Stats.Get("checkpoint_verified"); got != 3 {
		t.Errorf("checkpoint_verified = %d, want 3", got)
	}
	if got := ropts.Stats.Get("pick_recorded"); got != 0 {
		t.Errorf("replay of a complete journal recorded %d fresh picks", got)
	}
}

// TestReplayExactForOrderSensitivePicks: with the COMPLETE pick script
// durable, replay is exact even for a workload whose result is the pick
// order itself.
func TestReplayExactForOrderSensitivePicks(t *testing.T) {
	dir := t.TempDir()
	data := orderData()
	if err := Run(dir, testOptions(), orderWorkload, data...); err != nil {
		t.Fatal(err)
	}
	want := data[0].(*mergeable.List[int]).Values()

	for i := 0; i < 3; i++ {
		out, err := Resume(dir, testOptions(), orderWorkload)
		if err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
		got := out[0].(*mergeable.List[int]).Values()
		if len(got) != len(want) {
			t.Fatalf("resume %d: list %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("resume %d: list %v, want %v (pick order not reproduced)", i, got, want)
			}
		}
	}
}

// TestCreateRefusesExistingRun: Create must never overwrite a run's
// history; the second Run over the same directory fails.
func TestCreateRefusesExistingRun(t *testing.T) {
	dir := t.TempDir()
	if err := Run(dir, testOptions(), anyWorkload, anyData()...); err != nil {
		t.Fatal(err)
	}
	if err := Run(dir, testOptions(), anyWorkload, anyData()...); err == nil {
		t.Fatal("second Run over an existing journal succeeded")
	}
}

// TestResumeDivergenceDetected: resuming with a DIFFERENT program against
// a journal whose picks and checkpoints describe the old one must report
// ErrDiverged (or fail outright), never silently succeed.
func TestResumeDivergenceDetected(t *testing.T) {
	dir := t.TempDir()
	data := orderData()
	if err := Run(dir, testOptions(), orderWorkload, data...); err != nil {
		t.Fatal(err)
	}
	changed := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		for c := 0; c < 6; c++ {
			id := 100 + c // different values -> different fingerprints
			ctx.Spawn(func(_ *task.Ctx, d []mergeable.Mergeable) error {
				d[0].(*mergeable.List[int]).Append(id)
				return nil
			}, data...)
		}
		for c := 0; c < 6; c++ {
			if _, err := ctx.MergeAny(); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := Resume(dir, testOptions(), changed)
	if err == nil {
		t.Fatal("resume with a changed program succeeded")
	}
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("resume with a changed program = %v, want ErrDiverged", err)
	}
}

// corruptionAt flips one byte of the WAL at offset off.
func corruptionAt(t *testing.T, dir string, off int64) {
	t.Helper()
	path := filepath.Join(dir, walName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(buf))
	}
	buf[off] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestErrorClassification covers the torn-vs-corrupt taxonomy: an
// incomplete tail is recoverable (ErrTornTail), everything else is
// ErrCorrupt or ErrNoRun, and the sentinels never alias each other.
func TestErrorClassification(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		if err := Run(dir, testOptions(), anyWorkload, anyData()...); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	walPath := func(dir string) string { return filepath.Join(dir, walName) }

	t.Run("missing journal is ErrNoRun", func(t *testing.T) {
		err := Verify(t.TempDir())
		if !errors.Is(err, ErrNoRun) {
			t.Fatalf("Verify(empty dir) = %v, want ErrNoRun", err)
		}
		if _, err := Open(t.TempDir(), testOptions()); !errors.Is(err, ErrNoRun) {
			t.Fatalf("Open(empty dir) = %v, want ErrNoRun", err)
		}
	})

	t.Run("short magic is ErrNoRun", func(t *testing.T) {
		dir := t.TempDir()
		os.WriteFile(walPath(dir), walMagic[:3], 0o644)
		if err := Verify(dir); !errors.Is(err, ErrNoRun) {
			t.Fatalf("Verify = %v, want ErrNoRun", err)
		}
	})

	t.Run("bad magic is ErrCorrupt", func(t *testing.T) {
		dir := build(t)
		corruptionAt(t, dir, 0)
		if err := Verify(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify = %v, want ErrCorrupt", err)
		}
		if _, err := Open(dir, testOptions()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("truncated tail is ErrTornTail and recoverable", func(t *testing.T) {
		dir := build(t)
		path := walPath(dir)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()-3); err != nil {
			t.Fatal(err)
		}
		verr := Verify(dir)
		if !errors.Is(verr, ErrTornTail) {
			t.Fatalf("Verify(truncated) = %v, want ErrTornTail", verr)
		}
		if errors.Is(verr, ErrCorrupt) {
			t.Fatal("ErrTornTail must not classify as ErrCorrupt")
		}
		j, err := Open(dir, testOptions())
		if err != nil {
			t.Fatalf("Open(truncated) = %v, want recovery", err)
		}
		if !j.Recovery().TornTail {
			t.Error("recovery did not flag the torn tail")
		}
		if j.Recovery().Done {
			t.Error("truncated done record still reported as Done")
		}
		j.Close()
		if err := Verify(dir); err != nil {
			t.Fatalf("Verify after recovery = %v, want clean", err)
		}
	})

	t.Run("mid-file bit flip is ErrCorrupt", func(t *testing.T) {
		dir := build(t)
		corruptionAt(t, dir, int64(len(walMagic))+12) // inside the inputs record
		verr := Verify(dir)
		if !errors.Is(verr, ErrCorrupt) {
			t.Fatalf("Verify(bit flip) = %v, want ErrCorrupt", verr)
		}
		if errors.Is(verr, ErrTornTail) {
			t.Fatal("ErrCorrupt must not classify as ErrTornTail")
		}
		if _, err := Open(dir, testOptions()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open(bit flip) = %v, want ErrCorrupt", err)
		}
	})

	t.Run("typed errors carry their sentinels", func(t *testing.T) {
		var c error = CorruptError{File: "wal.log", Offset: 9, Reason: "x"}
		var torn error = TornTailError{File: "wal.log", Offset: 9}
		var d error = DivergedError{Detail: "x"}
		if !errors.Is(c, ErrCorrupt) || errors.Is(c, ErrTornTail) || errors.Is(c, ErrNoRun) {
			t.Error("CorruptError misclassified")
		}
		if !errors.Is(torn, ErrTornTail) || errors.Is(torn, ErrCorrupt) {
			t.Error("TornTailError misclassified")
		}
		if !errors.Is(d, ErrDiverged) || errors.Is(d, ErrCorrupt) {
			t.Error("DivergedError misclassified")
		}
	})
}

// TestRouteJournal: RecordRoute/NextRoute round-trip through a crash —
// the coordinator half of deterministic failover resume.
func TestRouteJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.writeInputs(anyData()); err != nil {
		t.Fatal(err)
	}
	j.RecordRoute("r/0", 2)
	j.RecordRoute("r/1", 0)
	j.RecordRoute("r/0", 2) // duplicate: must not append a record
	j.RecordRoute("r/0", 1) // failover overrides the slot
	if got := j.Stats().Get("route_recorded"); got != 3 {
		t.Errorf("route_recorded = %d, want 3", got)
	}
	j.Close()

	opts := testOptions()
	opts.Stats = stats.NewCounters()
	j2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n, ok := j2.NextRoute("r/0"); !ok || n != 1 {
		t.Errorf("NextRoute(r/0) = %d,%v, want 1,true (last write wins)", n, ok)
	}
	if n, ok := j2.NextRoute("r/1"); !ok || n != 0 {
		t.Errorf("NextRoute(r/1) = %d,%v, want 0,true", n, ok)
	}
	if _, ok := j2.NextRoute("r/9"); ok {
		t.Error("NextRoute invented a route for an unknown slot")
	}
	if got := opts.Stats.Get("route_replayed"); got != 2 {
		t.Errorf("route_replayed = %d, want 2", got)
	}
}

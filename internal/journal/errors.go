package journal

import (
	"errors"
	"fmt"
)

// Sentinel errors. Callers classify failures with errors.Is — never by
// string matching — mirroring the dist package's RemoteError/ErrTransport
// scheme: concrete typed errors carry the details and unwrap to these.
var (
	// ErrCorrupt reports damage recovery cannot repair: a CRC mismatch in
	// the middle of the WAL, an undecodable record, a checkpoint that is
	// not a prefix of the WAL, or inputs that no longer decode. A corrupt
	// journal must not be resumed — the durable pick history can no longer
	// be trusted to reproduce the crashed run.
	ErrCorrupt = errors.New("journal: corrupt")

	// ErrTornTail reports an incomplete final record — the signature a
	// killed process leaves mid-write. Unlike ErrCorrupt it is benign:
	// Open truncates the tear and recovers everything before it. Verify
	// surfaces it for read-only inspection.
	ErrTornTail = errors.New("journal: torn tail")

	// ErrNoRun reports that the directory holds no recoverable run: no WAL
	// at all, or one that died before the inputs record became durable.
	// Nothing ran to recovery-relevant effect, so the caller should simply
	// start the run from scratch.
	ErrNoRun = errors.New("journal: no run recorded")

	// ErrDiverged reports that a resumed run did not retrace the journaled
	// one: a replayed pick or a checkpoint fingerprint disagreed with the
	// durable record. The program changed, or it harbors non-determinism
	// the script does not capture.
	ErrDiverged = errors.New("journal: resumed run diverged from journal")

	// ErrCrashed is returned by writes through an exhausted CrashWriter
	// and surfaces from a journaled run killed by crash injection.
	ErrCrashed = errors.New("journal: injected crash")
)

// CorruptError pins corruption to a file and offset. errors.Is matches it
// against ErrCorrupt.
type CorruptError struct {
	File   string
	Offset int64
	Reason string
}

func (e CorruptError) Error() string {
	return fmt.Sprintf("journal: corrupt: %s at %s+%d", e.Reason, e.File, e.Offset)
}

// Is classifies every CorruptError as ErrCorrupt.
func (e CorruptError) Is(target error) bool { return target == ErrCorrupt }

// TornTailError pins a torn tail to its offset. errors.Is matches it
// against ErrTornTail.
type TornTailError struct {
	File   string
	Offset int64
}

func (e TornTailError) Error() string {
	return fmt.Sprintf("journal: torn tail at %s+%d", e.File, e.Offset)
}

// Is classifies every TornTailError as ErrTornTail.
func (e TornTailError) Is(target error) bool { return target == ErrTornTail }

// DivergedError describes where a resumed run left the journaled path.
// errors.Is matches it against ErrDiverged.
type DivergedError struct {
	Detail string
}

func (e DivergedError) Error() string {
	return ErrDiverged.Error() + ": " + e.Detail
}

// Is classifies every DivergedError as ErrDiverged.
func (e DivergedError) Is(target error) bool { return target == ErrDiverged }

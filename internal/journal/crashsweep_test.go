package journal

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/mergeable"
	"repro/internal/stats"
	"repro/internal/task"
)

// journaledScenario runs workload journaled in a fresh directory and
// returns the final fingerprint.
func journaledScenario(t *testing.T, dir string, mk func() []mergeable.Mergeable, fn task.Func) (uint64, *stats.Counters) {
	t.Helper()
	opts := testOptions()
	opts.Stats = stats.NewCounters()
	data := mk()
	if err := Run(dir, opts, fn, data...); err != nil {
		t.Fatal(err)
	}
	return fingerprintAll(data), opts.Stats
}

// sweepStride selects the crash sweep's boundary stride: every byte by
// default (the acceptance bar), thinned when each run costs 10-20x under
// the race detector or the suite asked for -short.
func sweepStride() int64 {
	if testing.Short() || raceEnabled {
		return 17
	}
	return 1
}

// crashSweep injects a crash at byte boundary k of every physical journal
// write for k = 1..total-1 (stride apart), then recovers and checks the
// final fingerprint against want. Killing at EVERY boundary exercises the
// torn tail of each record and each checkpoint tmp file.
func crashSweep(t *testing.T, want uint64, total int64, stride int64, mk func() []mergeable.Mergeable, fn task.Func) {
	t.Helper()
	crashSweepOpts(t, want, total, stride, testOptions, mk, fn)
}

// crashSweepOpts is crashSweep with the journal options under the
// harness's control — the segment sweep passes options with a tiny
// SegmentBytes so the budgets land inside rotations too.
func crashSweepOpts(t *testing.T, want uint64, total int64, stride int64, mkOpts func() Options, mk func() []mergeable.Mergeable, fn task.Func) {
	t.Helper()
	base := t.TempDir()
	swept, fresh := 0, 0
	for k := int64(1); k < total; k += stride {
		dir := filepath.Join(base, fmt.Sprintf("k%06d", k))
		cw := NewCrashWriter(k)
		opts := mkOpts()
		opts.WrapWriter = cw.Wrap
		data := mk()
		err := Run(dir, opts, fn, data...)
		if err == nil {
			t.Fatalf("k=%d: run with a %d-byte crash budget did not report the crash", k, k)
		}
		if !cw.Crashed() {
			t.Fatalf("k=%d: crash writer never fired", k)
		}

		out, err := Resume(dir, mkOpts(), fn)
		var got uint64
		switch {
		case err == nil:
			got = fingerprintAll(out)
		case errors.Is(err, ErrNoRun):
			// Crash landed before the inputs were durable: nothing to
			// resume, the caller starts over.
			freshDir := filepath.Join(base, fmt.Sprintf("k%06d-fresh", k))
			data := mk()
			if err := Run(freshDir, mkOpts(), fn, data...); err != nil {
				t.Fatalf("k=%d: fresh run after ErrNoRun: %v", k, err)
			}
			got = fingerprintAll(data)
			fresh++
		default:
			t.Fatalf("k=%d: resume failed: %v", k, err)
		}
		if got != want {
			t.Fatalf("k=%d: recovered fingerprint %016x, want %016x", k, got, want)
		}
		swept++
	}
	if swept == 0 {
		t.Fatal("sweep covered no boundaries")
	}
	t.Logf("swept %d crash boundaries (%d pre-durable, stride %d, %d bytes total)", swept, fresh, stride, total)
}

// TestCrashSweepMergeAny is the acceptance scenario: a run with 9 MergeAny
// picks and 3 checkpoints, killed at every injected write boundary and
// resumed, must land on the uninterrupted fingerprint — at GOMAXPROCS 1
// and 4.
func TestCrashSweepMergeAny(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			want, counters := journaledScenario(t, t.TempDir(), anyData, anyWorkload)
			if got := counters.Get("pick_recorded"); got < 8 {
				t.Fatalf("reference run recorded %d picks, acceptance needs >= 8", got)
			}
			if got := counters.Get("checkpoint_written"); got < 3 {
				t.Fatalf("reference run wrote %d checkpoints, acceptance needs >= 3", got)
			}
			total := counters.Get("bytes_written")
			crashSweep(t, want, total, sweepStride(), anyData, anyWorkload)
		})
	}
}

// TestCrashSweepMergeAllExact: the fully deterministic workload has no
// picks to journal — recovery is pure re-execution from the durable
// inputs, checkpoint-verified, and must reproduce the exact state.
func TestCrashSweepMergeAllExact(t *testing.T) {
	want, counters := journaledScenario(t, t.TempDir(), allData, allWorkload)
	crashSweep(t, want, counters.Get("bytes_written"), sweepStride(), allData, allWorkload)
}

// TestResumeOfResume: a resume that itself crashes is resumable — the
// journal keeps extending across generations of processes.
func TestResumeOfResume(t *testing.T) {
	refData := anyData()
	if err := task.Run(anyWorkload, refData...); err != nil {
		t.Fatal(err)
	}
	want := fingerprintAll(refData)

	dir := t.TempDir()
	// Generation 0: the original run crashes partway in.
	opts := testOptions()
	opts.WrapWriter = NewCrashWriter(600).Wrap
	if err := Run(dir, opts, anyWorkload, anyData()...); err == nil {
		t.Fatal("crashing run reported success")
	}
	// Generation 1: the resume crashes too (fresh budget, counted from
	// this process's first journal write).
	ropts := testOptions()
	ropts.WrapWriter = NewCrashWriter(120).Wrap
	if _, err := Resume(dir, ropts, anyWorkload); err == nil {
		t.Fatal("crashing resume reported success")
	}
	// Generation 2: a clean resume completes the run.
	out, err := Resume(dir, testOptions(), anyWorkload)
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	if got := fingerprintAll(out); got != want {
		t.Fatalf("fingerprint after two crashes %016x, want %016x", got, want)
	}
	// The sealed journal now replays deterministically.
	if _, err := Resume(dir, testOptions(), anyWorkload); err != nil {
		t.Fatalf("replay of sealed journal: %v", err)
	}
}

// TestJournaledRunDeterministicAcrossProcs: the journaled acceptance
// workload has one observable outcome regardless of core count — the
// paper's determinism claim, checked through the journal path. The check
// loop is inlined rather than delegated to detcheck: detcheck now rides
// internal/explore, which imports this package for crash exploration.
func TestJournaledRunDeterministicAcrossProcs(t *testing.T) {
	base := t.TempDir()
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	n := 0
	outcomes := make(map[uint64]int)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for i := 0; i < 3; i++ {
			n++
			dir := filepath.Join(base, fmt.Sprintf("run%d", n))
			data := anyData()
			if err := Run(dir, testOptions(), anyWorkload, data...); err != nil {
				t.Fatalf("run %d: %v", n, err)
			}
			outcomes[fingerprintAll(data)]++
		}
	}
	if len(outcomes) != 1 {
		t.Fatalf("journaled runs diverged: %v", outcomes)
	}
}

package journal

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/task"
)

// Run executes fn as a journaled root task: the initial snapshots of data
// are made durable before any user code runs, every committed
// MergeAny/MergeAnyFromSet pick streams into the WAL ahead of its merge,
// and checkpoints land on the Options cadence. On success a done record
// seals the journal with the final fingerprint. If the journal dies
// mid-run (disk failure, injected crash), the in-memory run finishes but
// Run reports the journal's failure — the caller must treat the run as
// crashed and recover with Resume.
func Run(dir string, opts Options, fn task.Func, data ...mergeable.Mergeable) error {
	j, err := Create(dir, opts)
	if err != nil {
		return err
	}
	defer j.Close()
	if err := j.writeInputs(data); err != nil {
		return err
	}
	if opts.OnOpen != nil {
		opts.OnOpen(j)
	}
	return j.execute(nil, fn, data)
}

// Resume recovers the journal in dir and re-runs fn over the recovered
// initial snapshots with the durable picks forced, returning the final
// structures. The replayed prefix re-traces the crashed run exactly —
// divergence from any journaled pick or checkpoint fingerprint surfaces
// as ErrDiverged — and execution past the prefix continues live, with
// fresh picks journaled, so an interrupted Resume is itself resumable.
// Resuming an already completed journal replays it fully and verifies the
// final fingerprint — deterministic replay as a read path.
func Resume(dir string, opts Options, fn task.Func) ([]mergeable.Mergeable, error) {
	j, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	data, err := j.decodeInputs()
	if err != nil {
		return nil, err
	}
	j.counters.Inc("resume")
	if opts.OnOpen != nil {
		opts.OnOpen(j)
	}
	if err := j.execute(j.rec.Script(), fn, data); err != nil {
		return nil, err
	}
	return data, nil
}

// execute runs fn with the journal's full hook set (recovery picks,
// streaming record sink, checkpoint cadence, span tracer), then seals or
// verifies the done record.
func (j *Journal) execute(replay *task.MergeScript, fn task.Func, data []mergeable.Mergeable) error {
	record := task.NewMergeScript()
	record.SetSink(j.pickSink)
	j.record = record
	runErr := task.RunWith(task.RunConfig{
		Replay:      replay,
		Record:      record,
		Choose:      j.opts.Choose,
		Jitter:      j.opts.Jitter,
		OnRootMerge: j.onRootMerge,
		Obs:         j.opts.Obs,
		History:     j.opts.History,
	}, fn, data...)
	if err := errors.Join(runErr, j.Err()); err != nil {
		return err
	}
	fp := fingerprintAll(data)
	if j.rec != nil && j.rec.Done {
		if fp != j.rec.Fingerprint {
			return DivergedError{Detail: fmt.Sprintf("final fingerprint %016x, journal sealed at %016x", fp, j.rec.Fingerprint)}
		}
		j.counters.Inc("done_verified")
		if tr := j.opts.Obs; tr != nil {
			tr.Emit("journal", obs.KindReplay, "done", -1, 0, 0)
		}
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.appendLocked(recDone, doneRec{Fingerprint: fp})
	if err == nil {
		if tr := j.opts.Obs; tr != nil {
			tr.Emit("journal", obs.KindAppend, "done", -1, 0, 0)
		}
	}
	return err
}

// Verify is the read-only integrity check: it scans dir's WAL segments
// and checkpoints without truncating, deleting or appending anything and
// reports what recovery would find — nil for a clean journal, ErrTornTail
// for an incomplete final record or a torn mid-rotation segment (both
// recoverable), ErrCorrupt for real damage, ErrNoRun for a directory with
// no recoverable run.
func Verify(dir string) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return fmt.Errorf("journal: verify %s: %w", dir, ErrNoRun)
	}
	var torn error
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		buf, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("journal: verify: %w", err)
		}
		if s.seg != 0 {
			ok, err := anchoredSegment(buf, s.name)
			if err != nil {
				return err
			}
			if !ok {
				// Torn mid-rotation artifact: recovery would delete it and
				// fall back to the previous segment. Report the tear but
				// keep verifying the segment that still holds the run.
				torn = TornTailError{File: s.name, Offset: int64(len(buf))}
				continue
			}
		}
		if err := verifySegment(buf, s); err != nil {
			return err
		}
		return torn
	}
	return fmt.Errorf("journal: only torn rotation artifacts in %s: %w", dir, ErrNoRun)
}

// verifySegment checks one segment's framing and record decodability.
func verifySegment(buf []byte, s segFile) error {
	if len(buf) < len(walMagic) {
		return fmt.Errorf("journal: wal shorter than magic: %w", ErrNoRun)
	}
	for i, b := range walMagic {
		if buf[i] != b {
			return CorruptError{File: s.name, Offset: int64(i), Reason: "bad magic"}
		}
	}
	recs, _, scanErr := scanWAL(buf[len(walMagic):], int64(len(walMagic)), s.name)
	if scanErr != nil && !errors.Is(scanErr, ErrTornTail) {
		return scanErr
	}
	var sawInputs bool
	for i, r := range recs {
		var decodeErr error
		switch r.typ {
		case recInputs:
			if i != 0 || s.seg != 0 {
				return CorruptError{File: s.name, Offset: r.offset, Reason: "misplaced inputs record"}
			}
			var body inputsRec
			decodeErr = decodeBody(r, &body)
			sawInputs = decodeErr == nil
		case recAnchor:
			if i != 0 || s.seg == 0 {
				return CorruptError{File: s.name, Offset: r.offset, Reason: "misplaced anchor record"}
			}
			var body anchorRec
			decodeErr = decodeBody(r, &body)
			sawInputs = decodeErr == nil
		case recPick:
			var body pickRec
			decodeErr = decodeBody(r, &body)
		case recCkpt:
			var body ckptRec
			decodeErr = decodeBody(r, &body)
		case recRoute:
			var body routeRec
			decodeErr = decodeBody(r, &body)
		case recDone:
			var body doneRec
			decodeErr = decodeBody(r, &body)
		case recMember:
			var body memberRec
			decodeErr = decodeBody(r, &body)
		default:
			return CorruptError{File: s.name, Offset: r.offset, Reason: fmt.Sprintf("unknown record type %d", r.typ)}
		}
		if decodeErr != nil {
			return decodeErr
		}
	}
	if !sawInputs {
		return fmt.Errorf("journal: no inputs record: %w", ErrNoRun)
	}
	return scanErr
}

package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mergeable"
	"repro/internal/stats"
)

// segOptions returns test options with a WAL segment budget small enough
// that the acceptance workload rotates several times.
func segOptions() Options {
	opts := testOptions()
	opts.SegmentBytes = 512
	return opts
}

// walFiles lists the WAL segment file names in dir, ascending.
func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(segs))
	for i, s := range segs {
		names[i] = s.name
	}
	return names
}

// TestSegmentRotationBoundsDisk: a run with a segment budget rotates,
// keeps exactly one segment on disk, lands on the same fingerprint as the
// unrotated reference, verifies clean, and replays exactly on Resume.
func TestSegmentRotationBoundsDisk(t *testing.T) {
	refDir := t.TempDir()
	refData := anyData()
	if err := Run(refDir, testOptions(), anyWorkload, refData...); err != nil {
		t.Fatal(err)
	}
	want := fingerprintAll(refData)

	dir := t.TempDir()
	opts := segOptions()
	opts.Stats = stats.NewCounters()
	data := anyData()
	if err := Run(dir, opts, anyWorkload, data...); err != nil {
		t.Fatal(err)
	}
	if got := fingerprintAll(data); got != want {
		t.Fatalf("rotated run fingerprint %016x, want %016x", got, want)
	}
	rotations := opts.Stats.Get("compaction.wal.rotations")
	if rotations == 0 {
		t.Fatal("512-byte segment budget produced no rotations")
	}
	if got := opts.Stats.Get("compaction.wal.segments_deleted"); got != rotations {
		t.Errorf("segments_deleted = %d, want %d (one per rotation)", got, rotations)
	}
	if names := walFiles(t, dir); len(names) != 1 || names[0] == walName {
		t.Fatalf("disk holds segments %v, want exactly one rotated segment", names)
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify(rotated journal) = %v", err)
	}

	ropts := segOptions()
	ropts.Stats = stats.NewCounters()
	out, err := Resume(dir, ropts, anyWorkload)
	if err != nil {
		t.Fatalf("Resume(rotated journal) = %v", err)
	}
	if got := fingerprintAll(out); got != want {
		t.Fatalf("resumed fingerprint %016x, want %016x", got, want)
	}
	if got := ropts.Stats.Get("done_verified"); got != 1 {
		t.Errorf("done_verified = %d, want 1", got)
	}
	if got := ropts.Stats.Get("pick_replayed"); got != 9 {
		t.Errorf("pick_replayed = %d, want 9 (anchor must carry the superseded picks)", got)
	}
	if got := ropts.Stats.Get("pick_recorded"); got != 0 {
		t.Errorf("replay of a complete rotated journal recorded %d fresh picks", got)
	}
}

// TestSegmentRotationOrderExact: with the result being the pick order
// itself, replay through any number of rotations must be exact — the
// anchors must preserve per-path pick order, not just pick sets.
func TestSegmentRotationOrderExact(t *testing.T) {
	dir := t.TempDir()
	opts := segOptions()
	opts.SegmentBytes = 256
	data := orderData()
	if err := Run(dir, opts, orderWorkload, data...); err != nil {
		t.Fatal(err)
	}
	want := data[0].(*mergeable.List[int]).Values()

	for i := 0; i < 3; i++ {
		out, err := Resume(dir, segOptions(), orderWorkload)
		if err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
		got := out[0].(*mergeable.List[int]).Values()
		if len(got) != len(want) {
			t.Fatalf("resume %d: list %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("resume %d: list %v, want %v (pick order lost across rotation)", i, got, want)
			}
		}
	}
}

// TestSegmentCreateRefusesRotatedRun: Create must refuse a directory
// whose run has rotated past wal.log — a rotated segment is a run's
// history as much as the original file.
func TestSegmentCreateRefusesRotatedRun(t *testing.T) {
	dir := t.TempDir()
	if err := Run(dir, segOptions(), anyWorkload, anyData()...); err != nil {
		t.Fatal(err)
	}
	if names := walFiles(t, dir); len(names) != 1 || names[0] == walName {
		t.Fatalf("precondition: want one rotated segment, have %v", names)
	}
	if err := Run(dir, segOptions(), anyWorkload, anyData()...); err == nil {
		t.Fatal("second Run over a rotated journal succeeded")
	}
}

// TestSegmentTornRotationArtifact: a crash mid-rotation leaves a new
// segment without an intact anchor. Verify reports the tear read-only;
// recovery deletes the artifact, falls back to the previous segment, and
// the resume completes on the reference fingerprint.
func TestSegmentTornRotationArtifact(t *testing.T) {
	refData := anyData()
	refDir := t.TempDir()
	if err := Run(refDir, testOptions(), anyWorkload, refData...); err != nil {
		t.Fatal(err)
	}
	want := fingerprintAll(refData)

	for _, tc := range []struct {
		name string
		torn func(valid []byte) []byte
	}{
		{"half magic", func(valid []byte) []byte { return append([]byte(nil), valid[:len(walMagic)/2]...) }},
		{"magic only", func(valid []byte) []byte { return append([]byte(nil), valid[:len(walMagic)]...) }},
		{"magic plus partial anchor", func(valid []byte) []byte { return append([]byte(nil), valid[:len(walMagic)+11]...) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := Run(dir, segOptions(), anyWorkload, anyData()...); err != nil {
				t.Fatal(err)
			}
			segs, err := listSegments(dir)
			if err != nil || len(segs) != 1 || segs[0].seg == 0 {
				t.Fatalf("precondition: want one rotated segment, have %v (err %v)", segs, err)
			}
			valid, err := os.ReadFile(segs[0].path)
			if err != nil {
				t.Fatal(err)
			}
			tornName := segFileName(segs[0].seg + 1)
			tornPath := filepath.Join(dir, tornName)
			if err := os.WriteFile(tornPath, tc.torn(valid), 0o644); err != nil {
				t.Fatal(err)
			}

			verr := Verify(dir)
			if !errors.Is(verr, ErrTornTail) {
				t.Fatalf("Verify(torn rotation) = %v, want ErrTornTail", verr)
			}
			if _, err := os.Stat(tornPath); err != nil {
				t.Fatalf("Verify deleted the artifact: %v (must be read-only)", err)
			}

			ropts := segOptions()
			ropts.Stats = stats.NewCounters()
			out, err := Resume(dir, ropts, anyWorkload)
			if err != nil {
				t.Fatalf("Resume(torn rotation) = %v", err)
			}
			if got := fingerprintAll(out); got != want {
				t.Fatalf("resumed fingerprint %016x, want %016x", got, want)
			}
			if got := ropts.Stats.Get("compaction.wal.torn_segment_dropped"); got != 1 {
				t.Errorf("torn_segment_dropped = %d, want 1", got)
			}
			if _, err := os.Stat(tornPath); !os.IsNotExist(err) {
				t.Errorf("recovery left the torn artifact %s on disk", tornName)
			}
		})
	}
}

// TestSegmentNoResurrection is the regression test for op resurrection: a
// stale segment that an interrupted rotation failed to delete must be
// ignored and removed, never merged back into the recovered state. The
// stale file is a complete wal.log from a DIFFERENT workload — if
// recovery read it, the resumed picks (and the fingerprint) would change.
func TestSegmentNoResurrection(t *testing.T) {
	// A full foreign journal whose wal.log will play the stale segment.
	staleDir := t.TempDir()
	if err := Run(staleDir, testOptions(), orderWorkload, orderData()...); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(filepath.Join(staleDir, walName))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := segOptions()
	data := anyData()
	if err := Run(dir, opts, anyWorkload, data...); err != nil {
		t.Fatal(err)
	}
	want := fingerprintAll(data)
	if names := walFiles(t, dir); len(names) != 1 || names[0] == walName {
		t.Fatalf("precondition: want one rotated segment, have %v", names)
	}
	// Simulate the delete that never happened: the stale wal.log sits
	// below the anchored rotated segment.
	if err := os.WriteFile(filepath.Join(dir, walName), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	ropts := segOptions()
	ropts.Stats = stats.NewCounters()
	out, err := Resume(dir, ropts, anyWorkload)
	if err != nil {
		t.Fatalf("Resume(stale segment present) = %v", err)
	}
	if got := fingerprintAll(out); got != want {
		t.Fatalf("resumed fingerprint %016x, want %016x — stale segment resurrected ops", got, want)
	}
	if got := ropts.Stats.Get("pick_replayed"); got != 9 {
		t.Errorf("pick_replayed = %d, want 9 (the anchor's picks, not the stale file's)", got)
	}
	if got := ropts.Stats.Get("compaction.wal.stale_segments_removed"); got != 1 {
		t.Errorf("stale_segments_removed = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, walName)); !os.IsNotExist(err) {
		t.Error("recovery left the stale wal.log on disk")
	}
}

// TestCrashSweepRotation: the acceptance crash sweep with rotation armed —
// the byte budgets land inside anchors, mid-rotation and around segment
// deletes, and every recovery must still land on the reference
// fingerprint.
func TestCrashSweepRotation(t *testing.T) {
	want, counters := journaledScenario(t, t.TempDir(), anyData, anyWorkload)
	dirB := t.TempDir()
	opts := segOptions()
	opts.Stats = stats.NewCounters()
	segData := anyData()
	if err := Run(dirB, opts, anyWorkload, segData...); err != nil {
		t.Fatal(err)
	}
	if got := fingerprintAll(segData); got != want {
		t.Fatalf("rotated reference fingerprint %016x, want %016x", got, want)
	}
	if opts.Stats.Get("compaction.wal.rotations") == 0 {
		t.Fatal("rotated reference run never rotated")
	}
	_ = counters
	crashSweepOpts(t, want, opts.Stats.Get("bytes_written"), sweepStride(), segOptions, anyData, anyWorkload)
}

// FuzzSegmentRecover feeds arbitrary bytes to recovery as a ROTATED
// segment, with and without a valid wal.log beneath it: recovery must
// never panic, every failure must classify, and whenever a valid seg-0
// journal is present recovery must succeed by falling back past any
// artifact the fuzzer produced.
func FuzzSegmentRecover(f *testing.F) {
	seedDir := f.TempDir()
	if err := Run(seedDir, segOptions(), anyWorkload, anyData()...); err != nil {
		f.Fatal(err)
	}
	segs, err := listSegments(seedDir)
	if err != nil || len(segs) != 1 {
		f.Fatalf("seed journal: segments %v, err %v", segs, err)
	}
	valid, err := os.ReadFile(segs[0].path)
	if err != nil {
		f.Fatal(err)
	}
	plainDir := f.TempDir()
	if err := Run(plainDir, testOptions(), anyWorkload, anyData()...); err != nil {
		f.Fatal(err)
	}
	plain, err := os.ReadFile(filepath.Join(plainDir, walName))
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid, false)
	f.Add(valid, true)
	f.Add(valid[:len(valid)-3], false)         // torn tail after the anchor
	f.Add(valid[:len(walMagic)], true)         // mid-rotation artifact over a valid base
	f.Add(valid[:len(walMagic)/2], true)       // partial magic artifact
	f.Add([]byte{}, true)                      // empty artifact
	f.Add([]byte("SMJRNL\x00\x01junk"), false) // garbage record stream
	f.Add(plain, false)                        // seg-0 content in a rotated name
	flipped := append([]byte(nil), valid...)
	flipped[len(walMagic)+12] ^= 0xff
	f.Add(flipped, false)

	f.Fuzz(func(t *testing.T, b []byte, withBase bool) {
		dir := t.TempDir()
		if withBase {
			if err := os.WriteFile(filepath.Join(dir, walName), plain, 0o644); err != nil {
				t.Skip()
			}
		}
		if err := os.WriteFile(filepath.Join(dir, segFileName(1)), b, 0o644); err != nil {
			t.Skip()
		}
		if err := Verify(dir); err != nil && !classified(err) {
			t.Fatalf("Verify: unclassified error: %v", err)
		}
		j, err := Open(dir, segOptions())
		if err != nil {
			if !classified(err) {
				t.Fatalf("Open: unclassified error: %v", err)
			}
			return
		}
		if _, err := j.decodeInputs(); err != nil && !classified(err) {
			t.Fatalf("decodeInputs: unclassified error: %v", err)
		}
		j.Recovery().Script()
		j.Close()
		// Open truncated tails and dropped artifacts: a second pass must
		// see a recoverable directory again.
		if err := Verify(dir); err != nil && !classified(err) {
			t.Fatalf("re-Verify: unclassified error: %v", err)
		}
		if _, err := Open(dir, segOptions()); err != nil && !classified(err) {
			t.Fatalf("re-Open: unclassified error: %v", err)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzSegmentRecover from real journal bytes. Skipped
// unless WRITE_FUZZ_CORPUS is set — rerun it after any WAL format change
// so the committed corpus keeps tracking real segment layouts:
//
//	WRITE_FUZZ_CORPUS=1 go test ./internal/journal -run TestWriteFuzzCorpus
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the committed corpus")
	}
	seedDir := t.TempDir()
	if err := Run(seedDir, segOptions(), anyWorkload, anyData()...); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(seedDir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("seed journal: segments %v, err %v", segs, err)
	}
	valid, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	plainDir := t.TempDir()
	if err := Run(plainDir, testOptions(), anyWorkload, anyData()...); err != nil {
		t.Fatal(err)
	}
	plain, err := os.ReadFile(filepath.Join(plainDir, walName))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(walMagic)+12] ^= 0xff

	entries := []struct {
		name     string
		b        []byte
		withBase bool
	}{
		{"anchored-segment", valid, false},
		{"anchored-segment-with-stale-base", valid, true},
		{"torn-tail-after-anchor", valid[:len(valid)-3], false},
		{"magic-only-artifact-over-base", valid[:len(walMagic)], true},
		{"partial-magic-artifact-over-base", valid[:len(walMagic)/2], true},
		{"empty-artifact-over-base", []byte{}, true},
		{"garbage-after-magic", []byte("SMJRNL\x00\x01junk"), false},
		{"plain-wal-in-rotated-name", plain, false},
		{"crc-bit-flip", flipped, false},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentRecover")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nbool(%v)\n", e.b, e.withBase)
		if err := os.WriteFile(filepath.Join(dir, e.name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", e.name, len(e.b))
	}
}

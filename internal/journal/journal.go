// Package journal makes long Spawn & Merge runs crash-recoverable. The
// paper's determinism guarantee means a run is fully described by its
// inputs plus the script of its sanctioned non-deterministic choices (the
// MergeAny/MergeAnyFromSet picks): replaying that script over the same
// inputs reproduces the identical state, bit for bit. The journal turns
// that replay property into a recovery mechanism:
//
//   - a write-ahead log durably records the run's initial snapshots, then
//     every committed pick (streamed from the MergeScript sink before the
//     corresponding merge applies) and every dist coordinator routing
//     decision, each record length-prefixed and CRC32-framed;
//   - periodic checkpoints — post-merge snapshots of the root structures
//     plus their fingerprint — are written atomically (tmp file, fsync,
//     rename, directory fsync) every N root merges;
//   - recovery truncates the WAL's torn tail, validates every CRC, loads
//     the latest intact checkpoint, and resumes by re-running the program
//     with the durable picks forced (task.RunRecoverable). The resumed
//     run re-traces the crashed one exactly — every prior checkpoint it
//     passes is fingerprint-verified — and keeps journaling fresh picks
//     from where the crash cut off, so a resumed run can itself crash and
//     be resumed again.
//
// Structures cross the disk boundary with the same codecs the dist layer
// uses for the wire; callers inject them via Options (the repro facade
// wires dist's registry in automatically).
package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/task"
)

// Options configures a journal.
type Options struct {
	// Encode serializes one structure, returning the codec name to store
	// alongside the bytes; Decode rebuilds it. Both are required — the
	// dist codec registry (dist.EncodeSnapshot / dist.DecodeSnapshot)
	// satisfies them, and the repro facade injects exactly that.
	Encode func(m mergeable.Mergeable) (codec string, data []byte, err error)
	Decode func(codec string, data []byte) (mergeable.Mergeable, error)

	// CheckpointEvery takes a checkpoint every N root merges. Zero means
	// the default (4); negative disables checkpoints.
	CheckpointEvery int

	// Stats, when non-nil, receives the journal's counters instead of an
	// internal set: "record_written", "bytes_written", "pick_recorded",
	// "pick_replayed", "checkpoint_written", "checkpoint_verified",
	// "route_recorded", "route_replayed", "member_recorded",
	// "member_replayed", "torn_tail_truncated",
	// "torn_bytes", "resume", "done_verified", "tmp_removed",
	// "checkpoint_damaged".
	Stats *stats.Counters

	// WrapWriter, when non-nil, intercepts every physical writer the
	// journal opens (the WAL and each checkpoint tmp file). Crash
	// harnesses pass (*CrashWriter).Wrap; production passes nothing.
	WrapWriter func(io.Writer) io.Writer

	// Obs, when non-nil, receives WAL spans (wal.append, checkpoint,
	// replay) and is also handed to the task runtime, so a journaled run
	// gets the full span tree. Nil — the default — costs nothing.
	Obs *obs.Tracer

	// Choose, when non-nil, decides fresh MergeAny picks — ones the
	// journal's own durable replay script does not cover — so the
	// schedule explorer can pin a journaled run to an exact schedule.
	// Journaled picks always take precedence on Resume.
	Choose task.ChoiceFunc

	// Jitter, when non-nil, is invoked at every blocking point of the
	// merge protocol (see task.RunConfig.Jitter) — harnesses use it as a
	// progress pulse for stall watchdogs.
	Jitter func()

	// OnOpen, when non-nil, is invoked with the live journal just before
	// the run's root task starts — after Create initialized it (Run) or
	// Open recovered it (Resume). Callers use it to hand the journal to
	// collaborators that must write through the same WAL, e.g. a dist
	// cluster's Options.Journal, so coordinator state (routes, membership
	// epochs) and merge picks land in one crash-consistent log.
	OnOpen func(*Journal)
}

func (o Options) normalized() (Options, error) {
	if o.Encode == nil || o.Decode == nil {
		return o, errors.New("journal: Options.Encode and Options.Decode are required")
	}
	switch {
	case o.CheckpointEvery == 0:
		o.CheckpointEvery = 4
	case o.CheckpointEvery < 0:
		o.CheckpointEvery = 0 // disabled
	}
	if o.Stats == nil {
		o.Stats = stats.NewCounters()
	}
	return o, nil
}

// Recovery is what Open salvaged from a journal directory.
type Recovery struct {
	// Snaps are the run's initial snapshots; Picks the durable merge
	// picks per parent path; Routes the last recorded dist routing
	// decision per spawn slot.
	Snaps  []NamedSnapshot
	Picks  map[string][]uint64
	Routes map[string]int
	// Members is the durable membership transition sequence, ascending by
	// epoch — the part of the coordinator's state that, together with
	// Routes, lets a restarted coordinator re-drive its placement.
	Members []MemberRec
	// Checkpoints are the intact checkpoints, ascending by index; Latest
	// is the highest index (0 when none).
	Checkpoints []Checkpoint
	Latest      int
	// TornTail reports that an incomplete final WAL record was truncated.
	TornTail bool
	// Done reports the journaled run completed; Fingerprint is its final
	// combined fingerprint.
	Done        bool
	Fingerprint uint64
}

// Script rebuilds the durable picks as a replayable MergeScript.
func (r *Recovery) Script() *task.MergeScript {
	s := task.NewMergeScript()
	for path, seqs := range r.Picks {
		for _, seq := range seqs {
			s.Append(path, seq)
		}
	}
	return s
}

// Journal is an open journal: a WAL accepting appends plus the state
// recovered from it. Safe for concurrent use — picks and routes arrive
// from the merge paths of many tasks at once.
type Journal struct {
	dir      string
	opts     Options
	counters *stats.Counters

	mu  sync.Mutex
	wal *os.File
	w   io.Writer // wal behind WrapWriter
	// dead is the first write failure; once set, the journal drops every
	// later append. The in-memory run continues (the process "died" only
	// as far as durability is concerned — exactly a crash simulation) and
	// the error surfaces when the run finishes.
	dead error
	// diverged is the first resume divergence (see ErrDiverged).
	diverged error

	// Recovered state driving a resume. recPicks/cursor implement the
	// sink's replay-dedupe: the first len(recPicks[p]) picks a resumed
	// run makes for path p are already durable — they are verified
	// against the record instead of re-appended.
	rec     *Recovery
	cursor  map[string]int
	routes  map[string]int       // slot -> last recorded node (recovered + live)
	members map[uint64]MemberRec // epoch -> transition (recovered + live)
	ckpts   map[int]uint64       // intact prior checkpoints, for verification
	record  *task.MergeScript
}

// MemberRec is one durable cluster membership transition (see the dist
// package's MembershipJournal). Kind is dist's MemberEventKind as a raw
// byte; the journal only promises the epoch sequence replays verbatim.
type MemberRec struct {
	Epoch uint64
	Kind  uint8
	Node  int
}

// Stats returns the journal's counters.
func (j *Journal) Stats() *stats.Counters { return j.counters }

// Recovery returns what Open recovered (nil on a journal built by Create).
func (j *Journal) Recovery() *Recovery { return j.rec }

// Err returns the journal's sticky failure: the first write error (e.g.
// an injected crash) or the first detected resume divergence.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return errors.Join(j.dead, j.diverged)
}

func (j *Journal) wrapWriter(w io.Writer) io.Writer {
	if j.opts.WrapWriter != nil {
		return j.opts.WrapWriter(w)
	}
	return w
}

// countWrite writes b fully through w, accounting the bytes that landed.
func (j *Journal) countWrite(w io.Writer, b []byte) error {
	n, err := w.Write(b)
	j.counters.Add("bytes_written", int64(n))
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	return err
}

// Create initializes a fresh journal in dir (created if missing). It
// refuses a directory that already holds a WAL — recover that with Open
// instead of silently overwriting a run's history.
func Create(dir string, opts Options) (*Journal, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	path := filepath.Join(dir, walName)
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("journal: %s already holds a run; use Open/Resume", dir)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create wal: %w", err)
	}
	j := &Journal{
		dir:      dir,
		opts:     opts,
		counters: opts.Stats,
		wal:      f,
		cursor:   make(map[string]int),
		routes:   make(map[string]int),
		members:  make(map[uint64]MemberRec),
		ckpts:    make(map[int]uint64),
	}
	j.w = j.wrapWriter(f)
	if err := j.countWrite(j.w, walMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write magic: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync wal: %w", err)
	}
	syncDir(dir)
	return j, nil
}

// Open recovers the journal in dir and reopens it for appending: the
// WAL's torn tail (if any) is physically truncated, every surviving
// record is CRC-validated and decoded, stray checkpoint tmp files are
// removed and damaged checkpoints discarded, and the latest intact
// checkpoint is cross-checked against the WAL (its script must be a
// prefix of the durable picks). See Recovery for what comes back.
func Open(dir string, opts Options) (*Journal, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("journal: open %s: %w", dir, ErrNoRun)
		}
		return nil, fmt.Errorf("journal: open wal: %w", err)
	}
	j := &Journal{
		dir:      dir,
		opts:     opts,
		counters: opts.Stats,
		wal:      f,
		cursor:   make(map[string]int),
		routes:   make(map[string]int),
		members:  make(map[uint64]MemberRec),
		ckpts:    make(map[int]uint64),
	}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek wal: %w", err)
	}
	j.w = j.wrapWriter(f)
	return j, nil
}

// recover parses the WAL and checkpoint files into j.rec.
func (j *Journal) recover() error {
	buf, err := io.ReadAll(j.wal)
	if err != nil {
		return fmt.Errorf("journal: read wal: %w", err)
	}
	if len(buf) < len(walMagic) {
		// The process died before even the magic was durable: nothing ran.
		return fmt.Errorf("journal: wal shorter than magic: %w", ErrNoRun)
	}
	for i, b := range walMagic {
		if buf[i] != b {
			return CorruptError{File: walName, Offset: int64(i), Reason: "bad magic"}
		}
	}
	recs, tornAt, scanErr := scanWAL(buf[len(walMagic):], int64(len(walMagic)))
	rec := &Recovery{
		Picks:  make(map[string][]uint64),
		Routes: make(map[string]int),
	}
	switch {
	case scanErr == nil:
	case errors.Is(scanErr, ErrTornTail):
		if err := j.wal.Truncate(tornAt); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		j.wal.Sync()
		rec.TornTail = true
		j.counters.Inc("torn_tail_truncated")
		j.counters.Add("torn_bytes", int64(len(buf))-tornAt)
	default:
		return scanErr
	}

	for i, r := range recs {
		switch r.typ {
		case recInputs:
			if i != 0 {
				return CorruptError{File: walName, Offset: r.offset, Reason: "duplicate inputs record"}
			}
			var body inputsRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Snaps = body.Snaps
		case recPick:
			var body pickRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Picks[body.Path] = append(rec.Picks[body.Path], body.Seq)
		case recCkpt:
			// Markers are advisory; the checkpoint files themselves are
			// scanned below.
			var body ckptRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
		case recRoute:
			var body routeRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Routes[body.Slot] = body.Node
		case recMember:
			var body memberRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Members = append(rec.Members, MemberRec(body))
		case recDone:
			var body doneRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Done = true
			rec.Fingerprint = body.Fingerprint
		default:
			return CorruptError{File: walName, Offset: r.offset, Reason: fmt.Sprintf("unknown record type %d", r.typ)}
		}
	}
	if len(recs) == 0 || recs[0].typ != recInputs {
		// Died before the inputs record became durable: the run never got
		// past the starting line, so there is nothing to resume.
		return fmt.Errorf("journal: no inputs record: %w", ErrNoRun)
	}

	cks, latest, err := j.loadCheckpoints()
	if err != nil {
		return err
	}
	rec.Checkpoints = cks
	for _, c := range cks {
		j.ckpts[c.Index] = c.Fingerprint
	}
	if latest != nil {
		rec.Latest = latest.Index
		// The checkpoint's script must be a prefix of the WAL's picks: the
		// sink runs write-ahead of every merge, so an intact checkpoint
		// can never know picks the WAL lost. A violation means the files
		// are from different runs or the bytes lie.
		snap := task.NewMergeScript()
		if err := snap.Restore(latest.Script); err != nil {
			return CorruptError{File: ckptName(latest.Index), Offset: 0, Reason: fmt.Sprintf("script snapshot: %v", err)}
		}
		for path, seqs := range snap.Picks() {
			wal := rec.Picks[path]
			if len(seqs) > len(wal) {
				return CorruptError{File: ckptName(latest.Index), Offset: 0, Reason: fmt.Sprintf("checkpoint knows %d picks for %s, wal holds %d", len(seqs), path, len(wal))}
			}
			for k, s := range seqs {
				if wal[k] != s {
					return CorruptError{File: ckptName(latest.Index), Offset: 0, Reason: fmt.Sprintf("checkpoint pick %d for %s disagrees with wal", k, path)}
				}
			}
		}
	}
	for slot, node := range rec.Routes {
		j.routes[slot] = node
	}
	for _, m := range rec.Members {
		j.members[m.Epoch] = m
	}
	j.rec = rec
	return nil
}

// Close fsyncs and closes the WAL. The journal refuses further appends.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil
	}
	if j.dead == nil {
		j.wal.Sync()
	}
	err := j.wal.Close()
	j.wal = nil
	return err
}

// appendLocked frames and durably appends one record. Callers hold j.mu.
func (j *Journal) appendLocked(typ byte, body any) error {
	if j.dead != nil {
		return j.dead
	}
	if j.wal == nil {
		j.dead = errors.New("journal: closed")
		return j.dead
	}
	frame, err := frameRecord(typ, body)
	if err != nil {
		j.dead = err
		return err
	}
	if err := j.countWrite(j.w, frame); err != nil {
		j.dead = fmt.Errorf("journal: append: %w", err)
		return j.dead
	}
	if err := j.wal.Sync(); err != nil {
		j.dead = fmt.Errorf("journal: sync: %w", err)
		return j.dead
	}
	j.counters.Inc("record_written")
	return nil
}

// writeInputs journals the run's initial snapshots. Run calls it before
// executing any user code.
func (j *Journal) writeInputs(data []mergeable.Mergeable) error {
	var start time.Time
	if j.opts.Obs != nil {
		start = time.Now()
	}
	snaps, err := j.encodeAll(data)
	if err != nil {
		return err
	}
	j.mu.Lock()
	err = j.appendLocked(recInputs, inputsRec{Snaps: snaps})
	j.mu.Unlock()
	if err == nil && j.opts.Obs != nil {
		j.opts.Obs.Emit("journal", obs.KindAppend, "inputs", -1, int64(len(snaps)), time.Since(start))
	}
	return err
}

func (j *Journal) encodeAll(data []mergeable.Mergeable) ([]NamedSnapshot, error) {
	snaps := make([]NamedSnapshot, len(data))
	for i, m := range data {
		codec, b, err := j.opts.Encode(m)
		if err != nil {
			return nil, fmt.Errorf("journal: encode %T: %w", m, err)
		}
		snaps[i] = NamedSnapshot{Codec: codec, Data: b}
	}
	return snaps, nil
}

// decodeInputs rebuilds fresh structures from the recovered snapshots. A
// snapshot that no longer decodes classifies as corruption: the journal
// cannot reproduce the run.
func (j *Journal) decodeInputs() ([]mergeable.Mergeable, error) {
	if j.rec == nil {
		return nil, errors.New("journal: no recovery state; decodeInputs is for opened journals")
	}
	data := make([]mergeable.Mergeable, len(j.rec.Snaps))
	for i, s := range j.rec.Snaps {
		m, err := j.opts.Decode(s.Codec, s.Data)
		if err != nil {
			return nil, CorruptError{File: walName, Offset: 0, Reason: fmt.Sprintf("input %d (%s) undecodable: %v", i, s.Codec, err)}
		}
		data[i] = m
	}
	return data, nil
}

// pickSink is the MergeScript streaming sink: the write-ahead append for
// every committed non-deterministic pick. During a resume, picks that are
// already durable are verified against the record instead of re-appended
// — per-path order is deterministic under replay, so position k in the
// resumed run must equal position k in the WAL.
func (j *Journal) pickSink(path string, seq uint64) {
	// Pick spans live on per-path tracks ("wal/<parent path>"): the global
	// WAL append order interleaves scheduling-dependently across parents,
	// but each parent's own pick sequence is deterministic under replay —
	// exactly the track discipline package obs requires.
	tr := j.opts.Obs
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rec != nil {
		if i := j.cursor[path]; i < len(j.rec.Picks[path]) {
			j.cursor[path] = i + 1
			if want := j.rec.Picks[path][i]; want != seq && j.diverged == nil {
				j.diverged = DivergedError{Detail: fmt.Sprintf("pick %d for %s: journal has child seq %d, resumed run chose %d", i, path, want, seq)}
			}
			j.counters.Inc("pick_replayed")
			if tr != nil {
				tr.Emit("wal/"+path, obs.KindReplay, "pick", -1, int64(seq), time.Since(start))
			}
			return
		}
	}
	if j.appendLocked(recPick, pickRec{Path: path, Seq: seq}) == nil {
		j.counters.Inc("pick_recorded")
		if tr != nil {
			tr.Emit("wal/"+path, obs.KindAppend, "pick", -1, int64(seq), time.Since(start))
		}
	}
}

// RecordRoute journals a dist coordinator routing decision for slot —
// dist.RouteJournal's write half. Re-recording the route a resume just
// replayed is a no-op.
func (j *Journal) RecordRoute(slot string, node int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cur, ok := j.routes[slot]; ok && cur == node {
		return
	}
	j.routes[slot] = node
	if j.appendLocked(recRoute, routeRec{Slot: slot, Node: node}) == nil {
		j.counters.Inc("route_recorded")
		if tr := j.opts.Obs; tr != nil {
			// Per-slot track: the slot's proxy task is the single logical
			// writer of its routing history.
			tr.Emit("route/"+slot, obs.KindAppend, "route", -1, int64(node), 0)
		}
	}
}

// RecordMember journals one cluster membership transition —
// dist.MembershipJournal's write half. Membership is epoch-keyed: a
// fresh epoch is appended write-ahead of the transition taking effect,
// while a resumed run re-executing a transition the journal already
// holds verifies it against the record instead (a mismatch — different
// kind or node at the same epoch — is a divergence, the resumed run is
// not re-tracing the crashed one).
func (j *Journal) RecordMember(epoch uint64, kind uint8, node int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if have, ok := j.members[epoch]; ok {
		if (have.Kind != kind || have.Node != node) && j.diverged == nil {
			j.diverged = DivergedError{Detail: fmt.Sprintf(
				"member epoch %d: journal has kind %d node %d, resumed run chose kind %d node %d",
				epoch, have.Kind, have.Node, kind, node)}
		}
		j.counters.Inc("member_replayed")
		if tr := j.opts.Obs; tr != nil {
			tr.Emit("journal", obs.KindReplay, "member", -1, int64(epoch), 0)
		}
		return
	}
	m := MemberRec{Epoch: epoch, Kind: kind, Node: node}
	j.members[epoch] = m
	if j.appendLocked(recMember, memberRec(m)) == nil {
		j.counters.Inc("member_recorded")
		if tr := j.opts.Obs; tr != nil {
			tr.Emit("journal", obs.KindAppend, "member", -1, int64(epoch), 0)
		}
	}
}

// NextRoute returns the journaled routing decision for slot, if any —
// dist.RouteJournal's replay half. A restarted coordinator re-drives its
// fan-out to the nodes the crashed run settled on instead of re-deriving
// placement from current health.
func (j *Journal) NextRoute(slot string) (int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	node, ok := j.routes[slot]
	if ok {
		j.counters.Inc("route_replayed")
	}
	return node, ok
}

// onRootMerge is the checkpoint cadence: every CheckpointEvery root
// merges, either verify against the intact checkpoint a prior run left at
// this ordinal, or write a new one.
func (j *Journal) onRootMerge(data []mergeable.Mergeable, n int) {
	every := j.opts.CheckpointEvery
	if every == 0 || n%every != 0 {
		return
	}
	// Snapshot the script before taking j.mu: the sink runs under the
	// script's own lock and then takes j.mu, so the reverse nesting here
	// would deadlock. Taking the snapshot first only makes the checkpoint
	// conservative — picks landing in between are in the WAL but not in
	// the snapshot, preserving the prefix invariant.
	var script []byte
	if j.record != nil {
		script = j.record.Snapshot()
	}
	tr := j.opts.Obs
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	fp := fingerprintAll(data)

	j.mu.Lock()
	defer j.mu.Unlock()
	if want, ok := j.ckpts[n]; ok {
		if want != fp && j.diverged == nil {
			j.diverged = DivergedError{Detail: fmt.Sprintf("checkpoint %d: journal fingerprint %016x, resumed run at %016x", n, want, fp)}
			if tr != nil {
				tr.Emit("journal", obs.KindCheckpoint, fmt.Sprintf("ckpt %d diverged", n), -1, 0, time.Since(start))
			}
		} else if want == fp {
			j.counters.Inc("checkpoint_verified")
			if tr != nil {
				tr.Emit("journal", obs.KindCheckpoint, fmt.Sprintf("ckpt %d verified", n), -1, 0, time.Since(start))
			}
		}
		return
	}
	if j.dead != nil {
		return
	}
	snaps, err := j.encodeAll(data)
	if err != nil {
		j.dead = err
		return
	}
	if err := j.writeCheckpoint(ckptPayload{Index: n, Script: script, Snaps: snaps, Fingerprint: fp}); err != nil {
		j.dead = err
		return
	}
	j.ckpts[n] = fp
	j.counters.Inc("checkpoint_written")
	j.appendLocked(recCkpt, ckptRec{Index: n, Fingerprint: fp})
	if tr != nil {
		tr.Emit("journal", obs.KindCheckpoint, fmt.Sprintf("ckpt %d written", n), -1, int64(len(snaps)), time.Since(start))
	}
}

// fingerprintAll folds the structures' fingerprints in data order.
func fingerprintAll(data []mergeable.Mergeable) uint64 {
	fps := make([]uint64, len(data))
	for i, m := range data {
		fps[i] = m.Fingerprint()
	}
	return mergeable.CombineFingerprints(fps...)
}

// Package journal makes long Spawn & Merge runs crash-recoverable. The
// paper's determinism guarantee means a run is fully described by its
// inputs plus the script of its sanctioned non-deterministic choices (the
// MergeAny/MergeAnyFromSet picks): replaying that script over the same
// inputs reproduces the identical state, bit for bit. The journal turns
// that replay property into a recovery mechanism:
//
//   - a write-ahead log durably records the run's initial snapshots, then
//     every committed pick (streamed from the MergeScript sink before the
//     corresponding merge applies) and every dist coordinator routing
//     decision, each record length-prefixed and CRC32-framed;
//   - periodic checkpoints — post-merge snapshots of the root structures
//     plus their fingerprint — are written atomically (tmp file, fsync,
//     rename, directory fsync) every N root merges;
//   - recovery truncates the WAL's torn tail, validates every CRC, loads
//     the latest intact checkpoint, and resumes by re-running the program
//     with the durable picks forced (task.RunRecoverable). The resumed
//     run re-traces the crashed one exactly — every prior checkpoint it
//     passes is fingerprint-verified — and keeps journaling fresh picks
//     from where the crash cut off, so a resumed run can itself crash and
//     be resumed again.
//
// Structures cross the disk boundary with the same codecs the dist layer
// uses for the wire; callers inject them via Options (the repro facade
// wires dist's registry in automatically).
package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/task"
)

// Options configures a journal.
type Options struct {
	// Encode serializes one structure, returning the codec name to store
	// alongside the bytes; Decode rebuilds it. Both are required — the
	// dist codec registry (dist.EncodeSnapshot / dist.DecodeSnapshot)
	// satisfies them, and the repro facade injects exactly that.
	Encode func(m mergeable.Mergeable) (codec string, data []byte, err error)
	Decode func(codec string, data []byte) (mergeable.Mergeable, error)

	// CheckpointEvery takes a checkpoint every N root merges. Zero means
	// the default (4); negative disables checkpoints.
	CheckpointEvery int

	// SegmentBytes, when positive, bounds the WAL on disk: whenever the
	// live segment grows past this many bytes the journal rotates to a
	// fresh segment whose first record is a snapshot anchor carrying the
	// full durable prefix (inputs, picks, routes, membership), then
	// deletes the superseded segments. Zero — the default — keeps the
	// historical single-file wal.log. Recovery semantics are unchanged
	// either way: kill the process at any byte and Open/Resume still
	// reproduce the run.
	SegmentBytes int64

	// RetainCheckpoints, when positive, prunes checkpoint files after each
	// new one lands, keeping only the newest N on disk (counted as
	// "compaction.ckpt.pruned"). Checkpoints are verification anchors, not
	// recovery state, so pruning only thins the anchors a resume verifies
	// against. Zero — the default — keeps every checkpoint.
	RetainCheckpoints int

	// Stats, when non-nil, receives the journal's counters instead of an
	// internal set: "record_written", "bytes_written", "pick_recorded",
	// "pick_replayed", "checkpoint_written", "checkpoint_verified",
	// "route_recorded", "route_replayed", "member_recorded",
	// "member_replayed", "torn_tail_truncated",
	// "torn_bytes", "resume", "done_verified", "tmp_removed",
	// "checkpoint_damaged", plus the compaction family when SegmentBytes
	// is set: "compaction.wal.rotations",
	// "compaction.wal.segments_deleted", "compaction.wal.bytes_reclaimed",
	// "compaction.wal.stale_segments_removed",
	// "compaction.wal.torn_segment_dropped".
	Stats *stats.Counters

	// WrapWriter, when non-nil, intercepts every physical writer the
	// journal opens (the WAL and each checkpoint tmp file). Crash
	// harnesses pass (*CrashWriter).Wrap; production passes nothing.
	WrapWriter func(io.Writer) io.Writer

	// Obs, when non-nil, receives WAL spans (wal.append, checkpoint,
	// replay) and is also handed to the task runtime, so a journaled run
	// gets the full span tree. Nil — the default — costs nothing.
	Obs *obs.Tracer

	// Choose, when non-nil, decides fresh MergeAny picks — ones the
	// journal's own durable replay script does not cover — so the
	// schedule explorer can pin a journaled run to an exact schedule.
	// Journaled picks always take precedence on Resume.
	Choose task.ChoiceFunc

	// Jitter, when non-nil, is invoked at every blocking point of the
	// merge protocol (see task.RunConfig.Jitter) — harnesses use it as a
	// progress pulse for stall watchdogs.
	Jitter func()

	// History tunes the task runtime's op-log garbage collector for the
	// journaled run (see task.HistoryGC). The zero value trims eagerly —
	// the runtime default. The soak harness's unbounded reference runs set
	// Disable; compaction never changes a result, so the fingerprint a
	// journal seals is identical either way.
	History task.HistoryGC

	// OnOpen, when non-nil, is invoked with the live journal just before
	// the run's root task starts — after Create initialized it (Run) or
	// Open recovered it (Resume). Callers use it to hand the journal to
	// collaborators that must write through the same WAL, e.g. a dist
	// cluster's Options.Journal, so coordinator state (routes, membership
	// epochs) and merge picks land in one crash-consistent log.
	OnOpen func(*Journal)
}

func (o Options) normalized() (Options, error) {
	if o.Encode == nil || o.Decode == nil {
		return o, errors.New("journal: Options.Encode and Options.Decode are required")
	}
	switch {
	case o.CheckpointEvery == 0:
		o.CheckpointEvery = 4
	case o.CheckpointEvery < 0:
		o.CheckpointEvery = 0 // disabled
	}
	if o.Stats == nil {
		o.Stats = stats.NewCounters()
	}
	return o, nil
}

// Recovery is what Open salvaged from a journal directory.
type Recovery struct {
	// Snaps are the run's initial snapshots; Picks the durable merge
	// picks per parent path; Routes the last recorded dist routing
	// decision per spawn slot.
	Snaps  []NamedSnapshot
	Picks  map[string][]uint64
	Routes map[string]int
	// Members is the durable membership transition sequence, ascending by
	// epoch — the part of the coordinator's state that, together with
	// Routes, lets a restarted coordinator re-drive its placement.
	Members []MemberRec
	// Checkpoints are the intact checkpoints, ascending by index; Latest
	// is the highest index (0 when none).
	Checkpoints []Checkpoint
	Latest      int
	// TornTail reports that an incomplete final WAL record was truncated.
	TornTail bool
	// Done reports the journaled run completed; Fingerprint is its final
	// combined fingerprint.
	Done        bool
	Fingerprint uint64
}

// Script rebuilds the durable picks as a replayable MergeScript.
func (r *Recovery) Script() *task.MergeScript {
	s := task.NewMergeScript()
	for path, seqs := range r.Picks {
		for _, seq := range seqs {
			s.Append(path, seq)
		}
	}
	return s
}

// Journal is an open journal: a WAL accepting appends plus the state
// recovered from it. Safe for concurrent use — picks and routes arrive
// from the merge paths of many tasks at once.
type Journal struct {
	dir      string
	opts     Options
	counters *stats.Counters

	mu  sync.Mutex
	wal *os.File
	w   io.Writer // wal behind WrapWriter
	// Segment rotation state: seg is the live segment's number (0 = the
	// plain wal.log), segBytes its on-disk size, and snaps/picks the
	// accumulated anchor state a rotation snapshots — the run's initial
	// snapshots and every durable pick per path. snaps doubles as the
	// rotation gate: until the inputs record is durable there is nothing
	// an anchor could carry, so rotation stays off.
	seg      int
	segBytes int64
	snaps    []NamedSnapshot
	picks    map[string][]uint64
	// dead is the first write failure; once set, the journal drops every
	// later append. The in-memory run continues (the process "died" only
	// as far as durability is concerned — exactly a crash simulation) and
	// the error surfaces when the run finishes.
	dead error
	// diverged is the first resume divergence (see ErrDiverged).
	diverged error

	// Recovered state driving a resume. recPicks/cursor implement the
	// sink's replay-dedupe: the first len(recPicks[p]) picks a resumed
	// run makes for path p are already durable — they are verified
	// against the record instead of re-appended.
	rec     *Recovery
	cursor  map[string]int
	routes  map[string]int       // slot -> last recorded node (recovered + live)
	members map[uint64]MemberRec // epoch -> transition (recovered + live)
	ckpts   map[int]uint64       // intact prior checkpoints, for verification
	record  *task.MergeScript
}

// MemberRec is one durable cluster membership transition (see the dist
// package's MembershipJournal). Kind is dist's MemberEventKind as a raw
// byte; the journal only promises the epoch sequence replays verbatim.
type MemberRec struct {
	Epoch uint64
	Kind  uint8
	Node  int
}

// Stats returns the journal's counters.
func (j *Journal) Stats() *stats.Counters { return j.counters }

// Recovery returns what Open recovered (nil on a journal built by Create).
func (j *Journal) Recovery() *Recovery { return j.rec }

// Err returns the journal's sticky failure: the first write error (e.g.
// an injected crash) or the first detected resume divergence.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return errors.Join(j.dead, j.diverged)
}

func (j *Journal) wrapWriter(w io.Writer) io.Writer {
	if j.opts.WrapWriter != nil {
		return j.opts.WrapWriter(w)
	}
	return w
}

// countWrite writes b fully through w, accounting the bytes that landed.
func (j *Journal) countWrite(w io.Writer, b []byte) error {
	n, err := w.Write(b)
	j.counters.Add("bytes_written", int64(n))
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	return err
}

// Create initializes a fresh journal in dir (created if missing). It
// refuses a directory that already holds a WAL — recover that with Open
// instead of silently overwriting a run's history.
func Create(dir string, opts Options) (*Journal, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	if segs, err := listSegments(dir); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		return nil, fmt.Errorf("journal: %s already holds a run; use Open/Resume", dir)
	}
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create wal: %w", err)
	}
	j := &Journal{
		dir:      dir,
		opts:     opts,
		counters: opts.Stats,
		wal:      f,
		segBytes: int64(len(walMagic)),
		picks:    make(map[string][]uint64),
		cursor:   make(map[string]int),
		routes:   make(map[string]int),
		members:  make(map[uint64]MemberRec),
		ckpts:    make(map[int]uint64),
	}
	j.w = j.wrapWriter(f)
	if err := j.countWrite(j.w, walMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write magic: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync wal: %w", err)
	}
	syncDir(dir)
	return j, nil
}

// Open recovers the journal in dir and reopens it for appending: the
// newest recoverable WAL segment is selected (a torn mid-rotation
// artifact is deleted, stale superseded segments are removed), the
// segment's torn tail (if any) is physically truncated, every surviving
// record is CRC-validated and decoded, stray checkpoint tmp files are
// removed and damaged checkpoints discarded, and the latest intact
// checkpoint is cross-checked against the WAL (its script must be a
// prefix of the durable picks). See Recovery for what comes back.
func Open(dir string, opts Options) (*Journal, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:      dir,
		opts:     opts,
		counters: opts.Stats,
		picks:    make(map[string][]uint64),
		cursor:   make(map[string]int),
		routes:   make(map[string]int),
		members:  make(map[uint64]MemberRec),
		ckpts:    make(map[int]uint64),
	}
	if err := j.recoverDir(); err != nil {
		if j.wal != nil {
			j.wal.Close()
		}
		return nil, err
	}
	if _, err := j.wal.Seek(0, io.SeekEnd); err != nil {
		j.wal.Close()
		return nil, fmt.Errorf("journal: seek wal: %w", err)
	}
	j.w = j.wrapWriter(j.wal)
	return j, nil
}

// recoverDir picks the authoritative WAL segment and recovers from it.
// Newest first: a rotated newest segment without an intact anchor is the
// artifact of a crash mid-rotation — the anchor never became durable, so
// the previous segment is still the authority; the artifact is deleted
// and the scan falls back. Once a segment recovers, every older segment
// is superseded by its anchor and is removed (finishing the deletes a
// crash may have interrupted).
func (j *Journal) recoverDir() error {
	segs, err := listSegments(j.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return fmt.Errorf("journal: open %s: %w", j.dir, ErrNoRun)
	}
	chosen := -1
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		if s.seg == 0 {
			chosen = i
			break
		}
		buf, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("journal: read %s: %w", s.name, err)
		}
		ok, err := anchoredSegment(buf, s.name)
		if err != nil {
			return err
		}
		if ok {
			chosen = i
			break
		}
		// Torn rotation artifact: the previous segment never ceded
		// authority. Only the newest segment can be one — an anchored
		// segment's predecessors were all deleted before it accepted a
		// single append — so seeing a second means the files were
		// tampered with, which the fallback scan below surfaces as
		// corruption (no anchored segment and no wal.log → ErrNoRun-ish,
		// an anchored older segment recovers fine).
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("journal: drop torn segment %s: %w", s.name, err)
		}
		j.counters.Inc("compaction.wal.torn_segment_dropped")
		syncDir(j.dir)
	}
	if chosen < 0 {
		// Every file present was a torn rotation artifact: the run's
		// authority was lost with the pre-rotation segments, which only
		// happens if files were removed by hand.
		return fmt.Errorf("journal: only torn rotation artifacts in %s: %w", j.dir, ErrNoRun)
	}
	s := segs[chosen]
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open wal: %w", err)
	}
	j.wal = f
	j.seg = s.seg
	if err := j.recoverSegment(s); err != nil {
		return err
	}
	for _, old := range segs[:chosen] {
		if os.Remove(old.path) == nil {
			j.counters.Inc("compaction.wal.stale_segments_removed")
		}
	}
	if chosen > 0 {
		syncDir(j.dir)
	}
	return nil
}

// recoverSegment parses the chosen WAL segment and the checkpoint files
// into j.rec. A rotated segment opens with its anchor record, which seeds
// the recovered state with everything the deleted predecessors held.
func (j *Journal) recoverSegment(s segFile) error {
	buf, err := io.ReadAll(j.wal)
	if err != nil {
		return fmt.Errorf("journal: read wal: %w", err)
	}
	if len(buf) < len(walMagic) {
		// The process died before even the magic was durable: nothing ran.
		return fmt.Errorf("journal: wal shorter than magic: %w", ErrNoRun)
	}
	for i, b := range walMagic {
		if buf[i] != b {
			return CorruptError{File: s.name, Offset: int64(i), Reason: "bad magic"}
		}
	}
	recs, tornAt, scanErr := scanWAL(buf[len(walMagic):], int64(len(walMagic)), s.name)
	rec := &Recovery{
		Picks:  make(map[string][]uint64),
		Routes: make(map[string]int),
	}
	size := int64(len(buf))
	switch {
	case scanErr == nil:
	case errors.Is(scanErr, ErrTornTail):
		if err := j.wal.Truncate(tornAt); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		j.wal.Sync()
		size = tornAt
		rec.TornTail = true
		j.counters.Inc("torn_tail_truncated")
		j.counters.Add("torn_bytes", int64(len(buf))-tornAt)
	default:
		return scanErr
	}

	for i, r := range recs {
		switch r.typ {
		case recInputs:
			if i != 0 || s.seg != 0 {
				return CorruptError{File: s.name, Offset: r.offset, Reason: "misplaced inputs record"}
			}
			var body inputsRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Snaps = body.Snaps
		case recAnchor:
			if i != 0 || s.seg == 0 {
				return CorruptError{File: s.name, Offset: r.offset, Reason: "misplaced anchor record"}
			}
			var body anchorRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			if body.Seg != s.seg {
				return CorruptError{File: s.name, Offset: r.offset, Reason: fmt.Sprintf("anchor claims segment %d", body.Seg)}
			}
			rec.Snaps = body.Snaps
			for path, seqs := range body.Picks {
				rec.Picks[path] = append([]uint64(nil), seqs...)
			}
			for slot, node := range body.Routes {
				rec.Routes[slot] = node
			}
			rec.Members = append(rec.Members, body.Members...)
		case recPick:
			var body pickRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Picks[body.Path] = append(rec.Picks[body.Path], body.Seq)
		case recCkpt:
			// Markers are advisory; the checkpoint files themselves are
			// scanned below.
			var body ckptRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
		case recRoute:
			var body routeRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Routes[body.Slot] = body.Node
		case recMember:
			var body memberRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Members = append(rec.Members, MemberRec(body))
		case recDone:
			var body doneRec
			if err := decodeBody(r, &body); err != nil {
				return err
			}
			rec.Done = true
			rec.Fingerprint = body.Fingerprint
		default:
			return CorruptError{File: s.name, Offset: r.offset, Reason: fmt.Sprintf("unknown record type %d", r.typ)}
		}
	}
	if len(recs) == 0 || (recs[0].typ != recInputs && recs[0].typ != recAnchor) {
		// Died before the inputs record became durable: the run never got
		// past the starting line, so there is nothing to resume.
		return fmt.Errorf("journal: no inputs record: %w", ErrNoRun)
	}
	j.segBytes = size
	j.snaps = rec.Snaps
	for path, seqs := range rec.Picks {
		j.picks[path] = append([]uint64(nil), seqs...)
	}

	cks, latest, err := j.loadCheckpoints()
	if err != nil {
		return err
	}
	rec.Checkpoints = cks
	for _, c := range cks {
		j.ckpts[c.Index] = c.Fingerprint
	}
	if latest != nil {
		rec.Latest = latest.Index
		// The checkpoint's script must be a prefix of the WAL's picks: the
		// sink runs write-ahead of every merge, so an intact checkpoint
		// can never know picks the WAL lost. A violation means the files
		// are from different runs or the bytes lie.
		snap := task.NewMergeScript()
		if err := snap.Restore(latest.Script); err != nil {
			return CorruptError{File: ckptName(latest.Index), Offset: 0, Reason: fmt.Sprintf("script snapshot: %v", err)}
		}
		for path, seqs := range snap.Picks() {
			wal := rec.Picks[path]
			if len(seqs) > len(wal) {
				return CorruptError{File: ckptName(latest.Index), Offset: 0, Reason: fmt.Sprintf("checkpoint knows %d picks for %s, wal holds %d", len(seqs), path, len(wal))}
			}
			for k, s := range seqs {
				if wal[k] != s {
					return CorruptError{File: ckptName(latest.Index), Offset: 0, Reason: fmt.Sprintf("checkpoint pick %d for %s disagrees with wal", k, path)}
				}
			}
		}
	}
	for slot, node := range rec.Routes {
		j.routes[slot] = node
	}
	for _, m := range rec.Members {
		j.members[m.Epoch] = m
	}
	j.rec = rec
	return nil
}

// Close fsyncs and closes the WAL. The journal refuses further appends.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil
	}
	if j.dead == nil {
		j.wal.Sync()
	}
	err := j.wal.Close()
	j.wal = nil
	return err
}

// appendLocked frames and durably appends one record. Callers hold j.mu.
func (j *Journal) appendLocked(typ byte, body any) error {
	if j.dead != nil {
		return j.dead
	}
	if j.wal == nil {
		j.dead = errors.New("journal: closed")
		return j.dead
	}
	frame, err := frameRecord(typ, body)
	if err != nil {
		j.dead = err
		return err
	}
	if err := j.countWrite(j.w, frame); err != nil {
		j.dead = fmt.Errorf("journal: append: %w", err)
		return j.dead
	}
	if err := j.wal.Sync(); err != nil {
		j.dead = fmt.Errorf("journal: sync: %w", err)
		return j.dead
	}
	j.counters.Inc("record_written")
	j.segBytes += int64(len(frame))
	// Rotate once the segment outgrows its budget — but never right after
	// the done record (the final segment must keep it) and never before
	// the inputs are durable (an anchor would have nothing to carry).
	if max := j.opts.SegmentBytes; max > 0 && j.segBytes >= max && j.snaps != nil && typ != recDone {
		j.rotateLocked()
	}
	return nil
}

// writeInputs journals the run's initial snapshots. Run calls it before
// executing any user code.
func (j *Journal) writeInputs(data []mergeable.Mergeable) error {
	var start time.Time
	if j.opts.Obs != nil {
		start = time.Now()
	}
	snaps, err := j.encodeAll(data)
	if err != nil {
		return err
	}
	j.mu.Lock()
	err = j.appendLocked(recInputs, inputsRec{Snaps: snaps})
	if err == nil {
		j.snaps = snaps
	}
	j.mu.Unlock()
	if err == nil && j.opts.Obs != nil {
		j.opts.Obs.Emit("journal", obs.KindAppend, "inputs", -1, int64(len(snaps)), time.Since(start))
	}
	return err
}

func (j *Journal) encodeAll(data []mergeable.Mergeable) ([]NamedSnapshot, error) {
	snaps := make([]NamedSnapshot, len(data))
	for i, m := range data {
		codec, b, err := j.opts.Encode(m)
		if err != nil {
			return nil, fmt.Errorf("journal: encode %T: %w", m, err)
		}
		snaps[i] = NamedSnapshot{Codec: codec, Data: b}
	}
	return snaps, nil
}

// decodeInputs rebuilds fresh structures from the recovered snapshots. A
// snapshot that no longer decodes classifies as corruption: the journal
// cannot reproduce the run.
func (j *Journal) decodeInputs() ([]mergeable.Mergeable, error) {
	if j.rec == nil {
		return nil, errors.New("journal: no recovery state; decodeInputs is for opened journals")
	}
	data := make([]mergeable.Mergeable, len(j.rec.Snaps))
	for i, s := range j.rec.Snaps {
		m, err := j.opts.Decode(s.Codec, s.Data)
		if err != nil {
			return nil, CorruptError{File: walName, Offset: 0, Reason: fmt.Sprintf("input %d (%s) undecodable: %v", i, s.Codec, err)}
		}
		data[i] = m
	}
	return data, nil
}

// pickSink is the MergeScript streaming sink: the write-ahead append for
// every committed non-deterministic pick. During a resume, picks that are
// already durable are verified against the record instead of re-appended
// — per-path order is deterministic under replay, so position k in the
// resumed run must equal position k in the WAL.
func (j *Journal) pickSink(path string, seq uint64) {
	// Pick spans live on per-path tracks ("wal/<parent path>"): the global
	// WAL append order interleaves scheduling-dependently across parents,
	// but each parent's own pick sequence is deterministic under replay —
	// exactly the track discipline package obs requires.
	tr := j.opts.Obs
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rec != nil {
		if i := j.cursor[path]; i < len(j.rec.Picks[path]) {
			j.cursor[path] = i + 1
			if want := j.rec.Picks[path][i]; want != seq && j.diverged == nil {
				j.diverged = DivergedError{Detail: fmt.Sprintf("pick %d for %s: journal has child seq %d, resumed run chose %d", i, path, want, seq)}
			}
			j.counters.Inc("pick_replayed")
			if tr != nil {
				tr.Emit("wal/"+path, obs.KindReplay, "pick", -1, int64(seq), time.Since(start))
			}
			return
		}
	}
	// Accumulate before appending so a rotation triggered by this very
	// append snapshots an anchor that already includes the pick.
	j.picks[path] = append(j.picks[path], seq)
	if j.appendLocked(recPick, pickRec{Path: path, Seq: seq}) == nil {
		j.counters.Inc("pick_recorded")
		if tr != nil {
			tr.Emit("wal/"+path, obs.KindAppend, "pick", -1, int64(seq), time.Since(start))
		}
	}
}

// RecordRoute journals a dist coordinator routing decision for slot —
// dist.RouteJournal's write half. Re-recording the route a resume just
// replayed is a no-op.
func (j *Journal) RecordRoute(slot string, node int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cur, ok := j.routes[slot]; ok && cur == node {
		return
	}
	j.routes[slot] = node
	if j.appendLocked(recRoute, routeRec{Slot: slot, Node: node}) == nil {
		j.counters.Inc("route_recorded")
		if tr := j.opts.Obs; tr != nil {
			// Per-slot track: the slot's proxy task is the single logical
			// writer of its routing history.
			tr.Emit("route/"+slot, obs.KindAppend, "route", -1, int64(node), 0)
		}
	}
}

// RecordMember journals one cluster membership transition —
// dist.MembershipJournal's write half. Membership is epoch-keyed: a
// fresh epoch is appended write-ahead of the transition taking effect,
// while a resumed run re-executing a transition the journal already
// holds verifies it against the record instead (a mismatch — different
// kind or node at the same epoch — is a divergence, the resumed run is
// not re-tracing the crashed one).
func (j *Journal) RecordMember(epoch uint64, kind uint8, node int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if have, ok := j.members[epoch]; ok {
		if (have.Kind != kind || have.Node != node) && j.diverged == nil {
			j.diverged = DivergedError{Detail: fmt.Sprintf(
				"member epoch %d: journal has kind %d node %d, resumed run chose kind %d node %d",
				epoch, have.Kind, have.Node, kind, node)}
		}
		j.counters.Inc("member_replayed")
		if tr := j.opts.Obs; tr != nil {
			tr.Emit("journal", obs.KindReplay, "member", -1, int64(epoch), 0)
		}
		return
	}
	m := MemberRec{Epoch: epoch, Kind: kind, Node: node}
	j.members[epoch] = m
	if j.appendLocked(recMember, memberRec(m)) == nil {
		j.counters.Inc("member_recorded")
		if tr := j.opts.Obs; tr != nil {
			tr.Emit("journal", obs.KindAppend, "member", -1, int64(epoch), 0)
		}
	}
}

// NextRoute returns the journaled routing decision for slot, if any —
// dist.RouteJournal's replay half. A restarted coordinator re-drives its
// fan-out to the nodes the crashed run settled on instead of re-deriving
// placement from current health.
func (j *Journal) NextRoute(slot string) (int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	node, ok := j.routes[slot]
	if ok {
		j.counters.Inc("route_replayed")
	}
	return node, ok
}

// onRootMerge is the checkpoint cadence: every CheckpointEvery root
// merges, either verify against the intact checkpoint a prior run left at
// this ordinal, or write a new one.
func (j *Journal) onRootMerge(data []mergeable.Mergeable, n int) {
	every := j.opts.CheckpointEvery
	if every == 0 || n%every != 0 {
		return
	}
	// Snapshot the script before taking j.mu: the sink runs under the
	// script's own lock and then takes j.mu, so the reverse nesting here
	// would deadlock. Taking the snapshot first only makes the checkpoint
	// conservative — picks landing in between are in the WAL but not in
	// the snapshot, preserving the prefix invariant.
	var script []byte
	if j.record != nil {
		script = j.record.Snapshot()
	}
	tr := j.opts.Obs
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	fp := fingerprintAll(data)

	j.mu.Lock()
	defer j.mu.Unlock()
	if want, ok := j.ckpts[n]; ok {
		if want != fp && j.diverged == nil {
			j.diverged = DivergedError{Detail: fmt.Sprintf("checkpoint %d: journal fingerprint %016x, resumed run at %016x", n, want, fp)}
			if tr != nil {
				tr.Emit("journal", obs.KindCheckpoint, fmt.Sprintf("ckpt %d diverged", n), -1, 0, time.Since(start))
			}
		} else if want == fp {
			j.counters.Inc("checkpoint_verified")
			if tr != nil {
				tr.Emit("journal", obs.KindCheckpoint, fmt.Sprintf("ckpt %d verified", n), -1, 0, time.Since(start))
			}
		}
		return
	}
	if j.dead != nil {
		return
	}
	snaps, err := j.encodeAll(data)
	if err != nil {
		j.dead = err
		return
	}
	if err := j.writeCheckpoint(ckptPayload{Index: n, Script: script, Snaps: snaps, Fingerprint: fp}); err != nil {
		j.dead = err
		return
	}
	j.ckpts[n] = fp
	j.counters.Inc("checkpoint_written")
	if retain := j.opts.RetainCheckpoints; retain > 0 {
		j.pruneCheckpoints(retain)
	}
	j.appendLocked(recCkpt, ckptRec{Index: n, Fingerprint: fp})
	if tr != nil {
		tr.Emit("journal", obs.KindCheckpoint, fmt.Sprintf("ckpt %d written", n), -1, int64(len(snaps)), time.Since(start))
	}
}

// fingerprintAll folds the structures' fingerprints in data order.
func fingerprintAll(data []mergeable.Mergeable) uint64 {
	fps := make([]uint64, len(data))
	for i, m := range data {
		fps[i] = m.Fingerprint()
	}
	return mergeable.CombineFingerprints(fps...)
}

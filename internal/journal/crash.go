package journal

import (
	"io"
	"sync"
)

// CrashWriter injects a process death at an exact byte boundary: writers
// wrapped by the same CrashWriter share one byte budget, and the write
// that crosses it lands only its prefix — a torn write, exactly what
// kill -9 leaves — after which every write fails with ErrCrashed. Crash
// harnesses sweep the budget over every boundary of a reference run to
// prove recovery works from any interleaving of durable and lost bytes.
type CrashWriter struct {
	mu        sync.Mutex
	remaining int64
	crashed   bool
}

// NewCrashWriter returns a CrashWriter that dies after n bytes.
func NewCrashWriter(n int64) *CrashWriter {
	return &CrashWriter{remaining: n}
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashWriter) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Wrap returns a writer that passes bytes through to w against the shared
// budget. Pass it as Options.WrapWriter so every physical journal writer
// (WAL and checkpoint files alike) draws from the same clock.
func (c *CrashWriter) Wrap(w io.Writer) io.Writer {
	return &crashProxy{c: c, w: w}
}

type crashProxy struct {
	c *CrashWriter
	w io.Writer
}

func (p *crashProxy) Write(b []byte) (int, error) {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	if p.c.remaining <= 0 {
		p.c.crashed = true
		return 0, ErrCrashed
	}
	if int64(len(b)) <= p.c.remaining {
		p.c.remaining -= int64(len(b))
		return p.w.Write(b)
	}
	n := p.c.remaining
	p.c.remaining = 0
	p.c.crashed = true
	m, err := p.w.Write(b[:n])
	if err != nil {
		return m, err
	}
	return m, ErrCrashed
}

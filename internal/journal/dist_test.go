package journal

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/mergeable"
	"repro/internal/task"
)

func init() {
	dist.RegisterFunc("journal-route-work", func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Append(42)
		return nil
	})
}

// routedRun drives one remote spawn, requested on node 0, through
// cluster and returns the merged fingerprint.
func routedRun(t *testing.T, cluster *dist.Cluster) uint64 {
	t.Helper()
	list := mergeable.NewList[int]()
	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		cluster.SpawnRemote(ctx, 0, "journal-route-work", data[0])
		return ctx.MergeAll()
	}, list)
	if err != nil {
		t.Fatal(err)
	}
	return list.Fingerprint()
}

// TestCoordinatorRoutesSurviveRestart is the durable end of coordinator
// journaling: run 1's coordinator fails over from a dead node and
// journals the final placement; a "restarted" coordinator — a fresh
// cluster over the journal reopened from disk — re-drives the spawn
// straight to that node, with no failover and an identical result.
func TestCoordinatorRoutesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.writeInputs(anyData()); err != nil {
		t.Fatal(err)
	}
	clusterA := dist.NewClusterWith(dist.Options{Nodes: 2, Journal: j})
	clusterA.KillNode(0)
	wantFP := routedRun(t, clusterA)
	if got := clusterA.Stats().Get("failover"); got != 1 {
		t.Fatalf("failover counter = %d, want 1", got)
	}
	clusterA.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j2.Close()
	if n, ok := j2.Recovery().Routes["r/0"]; !ok || n != 1 {
		t.Fatalf("recovered route for r/0 = %d,%v, want 1,true", n, ok)
	}
	clusterB := dist.NewClusterWith(dist.Options{Nodes: 2, Journal: j2}) // both nodes healthy
	defer clusterB.Close()
	gotFP := routedRun(t, clusterB)
	if gotFP != wantFP {
		t.Fatalf("fingerprint after restart = %x, want %x", gotFP, wantFP)
	}
	if got := clusterB.Stats().Get("route_replayed"); got != 1 {
		t.Fatalf("route_replayed = %d, want 1", got)
	}
	if got := clusterB.Stats().Get("failover"); got != 0 {
		t.Fatalf("failover after restart = %d, want 0 (route came from the journal)", got)
	}
}

// churnTransitions drives the canonical membership sequence on cluster:
// admit a third node, drain node 0, then remove it.
func churnTransitions(t *testing.T, cluster *dist.Cluster) {
	t.Helper()
	if _, err := cluster.Join(); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Leave(0); err != nil {
		t.Fatal(err)
	}
}

// TestMembershipSurvivesRestart is the membership half of full
// coordinator state: run 1's transitions land in the WAL epoch by epoch;
// a restarted coordinator recovers the exact sequence, and re-driving
// the same transitions verifies against the record instead of appending.
func TestMembershipSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.writeInputs(anyData()); err != nil {
		t.Fatal(err)
	}
	clusterA := dist.NewClusterWith(dist.Options{Nodes: 2, HeartbeatInterval: -1, Journal: j})
	churnTransitions(t, clusterA)
	wantFP := routedRun(t, clusterA) // requested node 0 is gone; placement redirects
	clusterA.Close()
	if got := j.Stats().Get("member_recorded"); got != 3 {
		t.Fatalf("member_recorded = %d, want 3", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify after membership records: %v", err)
	}

	j2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j2.Close()
	wantSeq := []MemberRec{
		{Epoch: 1, Kind: uint8(dist.MemberJoined), Node: 2},
		{Epoch: 2, Kind: uint8(dist.MemberDraining), Node: 0},
		{Epoch: 3, Kind: uint8(dist.MemberLeft), Node: 0},
	}
	if got := j2.Recovery().Members; !reflect.DeepEqual(got, wantSeq) {
		t.Fatalf("recovered members = %+v, want %+v", got, wantSeq)
	}

	clusterB := dist.NewClusterWith(dist.Options{Nodes: 2, HeartbeatInterval: -1, Journal: j2})
	defer clusterB.Close()
	churnTransitions(t, clusterB)
	gotFP := routedRun(t, clusterB)
	if gotFP != wantFP {
		t.Fatalf("fingerprint after restart = %x, want %x", gotFP, wantFP)
	}
	if got := j2.Stats().Get("member_replayed"); got != 3 {
		t.Fatalf("member_replayed = %d, want 3", got)
	}
	if got := j2.Stats().Get("member_recorded"); got != 0 {
		t.Fatalf("member_recorded on resume = %d, want 0", got)
	}
	if err := j2.Err(); err != nil {
		t.Fatalf("journal error after faithful replay: %v", err)
	}
}

// TestMembershipDivergenceDetected: a restarted coordinator that drives
// a different transition at a journaled epoch is not resuming the same
// run — the journal must flag the divergence rather than rewrite
// history.
func TestMembershipDivergenceDetected(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.writeInputs(anyData()); err != nil {
		t.Fatal(err)
	}
	clusterA := dist.NewClusterWith(dist.Options{Nodes: 2, HeartbeatInterval: -1, Journal: j})
	if _, err := clusterA.Join(); err != nil { // epoch 1: joined node 2
		t.Fatal(err)
	}
	clusterA.Close()
	j.Close()

	j2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	clusterB := dist.NewClusterWith(dist.Options{Nodes: 2, HeartbeatInterval: -1, Journal: j2})
	defer clusterB.Close()
	if err := clusterB.Drain(0); err != nil { // epoch 1: draining node 0 — not what the WAL holds
		t.Fatal(err)
	}
	if err := j2.Err(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("journal error = %v, want ErrDiverged", err)
	}
}

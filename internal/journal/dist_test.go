package journal

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/mergeable"
	"repro/internal/task"
)

func init() {
	dist.RegisterFunc("journal-route-work", func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Append(42)
		return nil
	})
}

// routedRun drives one remote spawn, requested on node 0, through
// cluster and returns the merged fingerprint.
func routedRun(t *testing.T, cluster *dist.Cluster) uint64 {
	t.Helper()
	list := mergeable.NewList[int]()
	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		cluster.SpawnRemote(ctx, 0, "journal-route-work", data[0])
		return ctx.MergeAll()
	}, list)
	if err != nil {
		t.Fatal(err)
	}
	return list.Fingerprint()
}

// TestCoordinatorRoutesSurviveRestart is the durable end of coordinator
// journaling: run 1's coordinator fails over from a dead node and
// journals the final placement; a "restarted" coordinator — a fresh
// cluster over the journal reopened from disk — re-drives the spawn
// straight to that node, with no failover and an identical result.
func TestCoordinatorRoutesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.writeInputs(anyData()); err != nil {
		t.Fatal(err)
	}
	clusterA := dist.NewClusterWith(dist.Options{Nodes: 2, Journal: j})
	clusterA.KillNode(0)
	wantFP := routedRun(t, clusterA)
	if got := clusterA.Stats().Get("failover"); got != 1 {
		t.Fatalf("failover counter = %d, want 1", got)
	}
	clusterA.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j2.Close()
	if n, ok := j2.Recovery().Routes["r/0"]; !ok || n != 1 {
		t.Fatalf("recovered route for r/0 = %d,%v, want 1,true", n, ok)
	}
	clusterB := dist.NewClusterWith(dist.Options{Nodes: 2, Journal: j2}) // both nodes healthy
	defer clusterB.Close()
	gotFP := routedRun(t, clusterB)
	if gotFP != wantFP {
		t.Fatalf("fingerprint after restart = %x, want %x", gotFP, wantFP)
	}
	if got := clusterB.Stats().Get("route_replayed"); got != 1 {
		t.Fatalf("route_replayed = %d, want 1", got)
	}
	if got := clusterB.Stats().Get("failover"); got != 0 {
		t.Fatalf("failover after restart = %d, want 0 (route came from the journal)", got)
	}
}

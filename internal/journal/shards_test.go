package journal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestShardDirNaming(t *testing.T) {
	if got := ShardDirName(7); got != "shard-0007" {
		t.Fatalf("ShardDirName(7) = %q", got)
	}
	if got := ShardDirName(12345); got != "shard-12345" {
		t.Fatalf("ShardDirName(12345) = %q", got)
	}

	base := t.TempDir()
	for _, id := range []int{3, 0, 11} {
		dir, err := ShardDir(base, id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("ShardDir did not create %s: %v", dir, err)
		}
	}
	// Foreign entries must be ignored.
	os.MkdirAll(filepath.Join(base, "not-a-shard"), 0o755)
	os.WriteFile(filepath.Join(base, "shard-0099"), []byte("a file, not a dir"), 0o644)

	ids, err := ListShardDirs(base)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 11}
	if len(ids) != len(want) {
		t.Fatalf("ListShardDirs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ListShardDirs = %v, want %v", ids, want)
		}
	}
}

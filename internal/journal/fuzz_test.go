package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// classified reports whether err is one of the journal's public failure
// classes. Recovery may fail, but only in vocabulary the caller can act
// on.
func classified(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTornTail) || errors.Is(err, ErrNoRun)
}

// FuzzJournalRecover feeds arbitrary bytes to recovery as a WAL: it must
// never panic, and every failure must classify as ErrCorrupt, ErrTornTail
// or ErrNoRun. A journal that opens must survive input decoding, script
// rebuilding and a re-verify of its (possibly tail-truncated) file.
func FuzzJournalRecover(f *testing.F) {
	// Seed with a real journal and characteristic damage to it.
	seedDir := f.TempDir()
	if err := Run(seedDir, testOptions(), anyWorkload, anyData()...); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(seedDir, walName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])  // torn tail
	f.Add(valid[:len(walMagic)]) // magic only
	f.Add([]byte{})
	f.Add([]byte("SMJRNL\x00\x01garbage after the magic"))
	flipped := append([]byte(nil), valid...)
	flipped[len(walMagic)+12] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), b, 0o644); err != nil {
			t.Skip()
		}
		if err := Verify(dir); err != nil && !classified(err) {
			t.Fatalf("Verify: unclassified error: %v", err)
		}
		j, err := Open(dir, testOptions())
		if err != nil {
			if !classified(err) {
				t.Fatalf("Open: unclassified error: %v", err)
			}
			return
		}
		// Recovery accepted the bytes: everything it exposes must be
		// usable without panicking.
		if _, err := j.decodeInputs(); err != nil && !classified(err) {
			t.Fatalf("decodeInputs: unclassified error: %v", err)
		}
		j.Recovery().Script()
		j.Close()
		// Open truncated any torn tail, so a second pass sees a clean file.
		if err := Verify(dir); err != nil && !classified(err) {
			t.Fatalf("re-Verify: unclassified error: %v", err)
		}
	})
}

package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
)

// The write-ahead log is a flat stream:
//
//	magic (8 bytes) | record | record | ...
//	record = u32le payload length | u32le CRC32-IEEE of payload | payload
//	payload = 1 type byte | gob body
//
// Every record is written with a single Write call, so a process killed
// mid-write leaves at most one incomplete record — the torn tail — at the
// physical end of the file. Recovery truncates it; an inconsistency
// anywhere before the tail is corruption, not a crash artifact.

// walMagic identifies a Spawn & Merge journal, version 1.
var walMagic = []byte("SMJRNL\x00\x01")

// walName is the WAL's file name inside the journal directory.
const walName = "wal.log"

// maxRecord bounds a sane record: anything claiming to be larger is
// corruption (the writer never produces it), not a torn write.
const maxRecord = 1 << 28

// Record types.
const (
	recInputs byte = 1 // the run's initial snapshots (exactly one, first)
	recPick   byte = 2 // one committed MergeAny/MergeAnyFromSet pick
	recCkpt   byte = 3 // checkpoint marker (the state lives in its own file)
	recRoute  byte = 4 // one dist coordinator routing decision
	recDone   byte = 5 // successful completion + final fingerprint
	recMember byte = 6 // one cluster membership transition, keyed by epoch
	recAnchor byte = 7 // rotated-segment anchor: the full durable prefix state
)

// NamedSnapshot is one structure's serialized value, tagged with the codec
// that produced it (the dist codec registry's wire names).
type NamedSnapshot struct {
	Codec string
	Data  []byte
}

// Record bodies (gob-encoded after the type byte).
type inputsRec struct{ Snaps []NamedSnapshot }
type pickRec struct {
	Path string
	Seq  uint64
}
type ckptRec struct {
	Index       int
	Fingerprint uint64
}
type routeRec struct {
	Slot string
	Node int
}
type doneRec struct{ Fingerprint uint64 }

// anchorRec is the first record of every rotated WAL segment: a snapshot
// anchor carrying everything replay-from-inputs recovery needs from the
// segments it supersedes — the run's initial snapshots plus the accumulated
// picks, routes and membership transitions. Once an anchor is durable, every
// older segment is dead weight and is deleted; recovery reads exactly one
// segment, so resume-of-resume works across any number of rotations.
type anchorRec struct {
	Seg     int
	Snaps   []NamedSnapshot
	Picks   map[string][]uint64
	Routes  map[string]int
	Members []MemberRec // ascending by epoch
}

// memberRec is one cluster membership transition. Kind is the dist
// layer's MemberEventKind as a raw byte — the journal stays ignorant of
// dist's types, it only promises to replay the epoch sequence verbatim.
type memberRec struct {
	Epoch uint64
	Kind  uint8
	Node  int
}

// frameRecord renders one framed record: header + type byte + gob body.
func frameRecord(typ byte, body any) ([]byte, error) {
	var payload bytes.Buffer
	payload.WriteByte(typ)
	if err := gob.NewEncoder(&payload).Encode(body); err != nil {
		return nil, fmt.Errorf("journal: encode record %d: %w", typ, err)
	}
	p := payload.Bytes()
	frame := make([]byte, 8+len(p))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p))
	copy(frame[8:], p)
	return frame, nil
}

// walRecord is one physical record surfaced by the scanner.
type walRecord struct {
	typ    byte
	body   []byte // gob bytes after the type byte
	offset int64  // offset of the record's header in the file
	file   string // file the record came from, for error reporting
}

// scanWAL walks the framed records in buf (the file contents after the
// magic). It stops at the first inconsistency: an incomplete record at the
// physical end is reported as a TornTailError (recoverable — the caller
// truncates at its offset); anything else is a CorruptError. base is the
// file offset of buf's first byte and file names the source, both for
// error reporting.
func scanWAL(buf []byte, base int64, file string) (recs []walRecord, tornAt int64, err error) {
	off := int64(0)
	n := int64(len(buf))
	for off < n {
		if n-off < 8 {
			return recs, base + off, TornTailError{File: file, Offset: base + off}
		}
		length := int64(binary.LittleEndian.Uint32(buf[off : off+4]))
		sum := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if length == 0 || length > maxRecord {
			return recs, 0, CorruptError{File: file, Offset: base + off, Reason: fmt.Sprintf("implausible record length %d", length)}
		}
		end := off + 8 + length
		if end > n {
			// The record claims more bytes than the file holds — the torn
			// tail of a killed write.
			return recs, base + off, TornTailError{File: file, Offset: base + off}
		}
		payload := buf[off+8 : end]
		if crc32.ChecksumIEEE(payload) != sum {
			if end == n {
				// The final record's bytes are all present but the content
				// is short-changed — a tear inside the last write (e.g. a
				// page that never hit the platter). Same recovery: truncate.
				return recs, base + off, TornTailError{File: file, Offset: base + off}
			}
			return recs, 0, CorruptError{File: file, Offset: base + off, Reason: "CRC mismatch"}
		}
		recs = append(recs, walRecord{typ: payload[0], body: payload[1:], offset: base + off, file: file})
		off = end
	}
	return recs, 0, nil
}

// decodeBody gob-decodes a record body into v.
func decodeBody(r walRecord, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(r.body)).Decode(v); err != nil {
		return CorruptError{File: r.file, Offset: r.offset, Reason: fmt.Sprintf("record type %d undecodable: %v", r.typ, err)}
	}
	return nil
}

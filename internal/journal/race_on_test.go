//go:build race

package journal

// raceEnabled mirrors the race detector's build tag so the crash sweep
// can trade exhaustiveness for time when every run costs 10-20x.
const raceEnabled = true

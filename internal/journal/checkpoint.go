package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A checkpoint is one atomically written file, ckpt-%08d, holding the
// run's durable state after its Index-th root merge: the merge script so
// far, the root structures' snapshots, and their combined fingerprint.
// The file is written to a .tmp sibling, fsynced, renamed into place and
// the directory fsynced — a crash leaves either the previous set of
// checkpoints or the previous set plus one complete new file, never a
// half-written one (stray .tmp files are deleted during recovery).
//
// Resume never loads state from a checkpoint — state is reproduced by
// replaying the journal from the initial inputs, which is what makes the
// recovered run bit-identical — but every intact checkpoint is a
// verification anchor: when the resumed run reaches the same root-merge
// ordinal, its fingerprint must match the stored one, or the resume has
// diverged.

// ckptPayload is a checkpoint file's framed record body.
type ckptPayload struct {
	Index       int
	Script      []byte // MergeScript.Snapshot at checkpoint time
	Snaps       []NamedSnapshot
	Fingerprint uint64
}

// Checkpoint is recovery's view of one intact checkpoint file.
type Checkpoint struct {
	Index       int
	Fingerprint uint64
}

func ckptName(idx int) string { return fmt.Sprintf("ckpt-%08d", idx) }

// writeCheckpoint durably writes one checkpoint file. The write path runs
// through wrap (crash injection); any failure is returned with the .tmp
// file left behind, as a real death would leave it.
func (j *Journal) writeCheckpoint(p ckptPayload) error {
	frame, err := frameRecord(recCkpt, p)
	if err != nil {
		return err
	}
	name := filepath.Join(j.dir, ckptName(p.Index))
	tmp := name + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: checkpoint tmp: %w", err)
	}
	w := j.wrapWriter(f)
	if err := j.countWrite(w, walMagic); err == nil {
		err = j.countWrite(w, frame)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, name); err != nil {
		return fmt.Errorf("journal: checkpoint rename: %w", err)
	}
	syncDir(j.dir)
	return nil
}

// readCheckpoint parses one checkpoint file. Damage of any kind returns
// an error; callers treat a damaged checkpoint as absent (the WAL is the
// source of truth), never as fatal.
func readCheckpoint(path string) (ckptPayload, error) {
	var p ckptPayload
	buf, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if len(buf) < len(walMagic) || !bytes.Equal(buf[:len(walMagic)], walMagic) {
		return p, CorruptError{File: filepath.Base(path), Offset: 0, Reason: "bad magic"}
	}
	recs, _, err := scanWAL(buf[len(walMagic):], int64(len(walMagic)), filepath.Base(path))
	if err != nil {
		return p, err
	}
	if len(recs) != 1 || recs[0].typ != recCkpt {
		return p, CorruptError{File: filepath.Base(path), Offset: 0, Reason: "not a single checkpoint record"}
	}
	if err := decodeBody(recs[0], &p); err != nil {
		return p, err
	}
	return p, nil
}

// loadCheckpoints scans dir for intact checkpoints, deleting stray .tmp
// files a crash left behind. It returns the intact checkpoints sorted by
// index and the payload of the latest one (nil when none survive).
func (j *Journal) loadCheckpoints() ([]Checkpoint, *ckptPayload, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: scan checkpoints: %w", err)
	}
	var cks []Checkpoint
	var latest *ckptPayload
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(j.dir, name))
			j.counters.Inc("tmp_removed")
			continue
		}
		if !strings.HasPrefix(name, "ckpt-") {
			continue
		}
		p, err := readCheckpoint(filepath.Join(j.dir, name))
		if err != nil {
			j.counters.Inc("checkpoint_damaged")
			continue
		}
		cks = append(cks, Checkpoint{Index: p.Index, Fingerprint: p.Fingerprint})
		if latest == nil || p.Index > latest.Index {
			cp := p
			latest = &cp
		}
	}
	sort.Slice(cks, func(a, b int) bool { return cks[a].Index < cks[b].Index })
	return cks, latest, nil
}

// pruneCheckpoints deletes all but the newest retain checkpoint files.
// Checkpoints are verification anchors, never recovery state — resume
// replays from the WAL's inputs regardless — so pruning trades anchor
// density for bounded disk. Callers hold j.mu.
func (j *Journal) pruneCheckpoints(retain int) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return
	}
	var idxs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, "ckpt-%d", &idx); err == nil {
			idxs = append(idxs, idx)
		}
	}
	if len(idxs) <= retain {
		return
	}
	sort.Ints(idxs)
	for _, idx := range idxs[:len(idxs)-retain] {
		if os.Remove(filepath.Join(j.dir, ckptName(idx))) == nil {
			j.counters.Inc("compaction.ckpt.pruned")
		}
	}
	syncDir(j.dir)
}

// syncDir best-effort fsyncs a directory so renames and creates are
// durable before we report success.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

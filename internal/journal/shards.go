package journal

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Per-shard journal naming. A sharded service keeps one journal
// directory per shard under a common base so a shard's crash-recovery
// state travels as a unit: base/shard-0007/ holds everything shard 7
// needs to resume. The zero-padded width keeps lexical and numeric
// order identical, so directory listings read in shard order.
const shardDirPrefix = "shard-"

// ShardDirName returns the canonical directory name for a shard id,
// e.g. "shard-0007".
func ShardDirName(id int) string {
	return fmt.Sprintf("%s%04d", shardDirPrefix, id)
}

// ShardDir returns base/shard-NNNN, creating it (and base) if missing.
func ShardDir(base string, id int) (string, error) {
	dir := base + string(os.PathSeparator) + ShardDirName(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// ListShardDirs scans base for per-shard journal directories and
// returns their shard ids, sorted. Foreign entries are ignored — a
// base directory may hold other state alongside the shards.
func ListShardDirs(base string) ([]int, error) {
	entries, err := os.ReadDir(base)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rest, ok := strings.CutPrefix(e.Name(), shardDirPrefix)
		if !ok {
			continue
		}
		id, err := strconv.Atoi(rest)
		if err != nil || id < 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// WAL segment rotation. A journal's log starts life as the single wal.log
// (segment 0). When Options.SegmentBytes is set and the current segment
// outgrows it, the journal rotates: a fresh segment file wal-%08d.log is
// created whose first record is a snapshot anchor (anchorRec) carrying the
// complete durable prefix — initial inputs, every pick, route and
// membership transition so far. Only after the anchor is fsynced (file and
// directory) do appends switch to the new segment and the older segments
// get deleted, so at every instant exactly one segment chain on disk can
// reproduce the run:
//
//   - crash before the anchor is durable → the new segment is a torn
//     artifact; the previous segment is still the authority. Recovery
//     deletes the artifact and recovers from the previous segment.
//   - crash after the anchor is durable but before the old segments are
//     deleted → recovery recovers from the newest segment and finishes
//     the interrupted deletes. The stale segments are never read: an
//     intact anchor supersedes everything before it, which is what the
//     no-resurrection regression test pins.
//
// Torn tails keep their single-file semantics because each record (and the
// magic+anchor pair) is written through the same one-Write framing; a kill
// at any byte leaves at most one incomplete record in the newest segment.

// segFile is one WAL segment on disk.
type segFile struct {
	seg  int
	name string
	path string
}

// segFileName renders a segment's file name; segment 0 is the plain
// wal.log so unrotated journals keep their historical layout.
func segFileName(seg int) string {
	if seg == 0 {
		return walName
	}
	return fmt.Sprintf("wal-%08d.log", seg)
}

// listSegments returns the WAL segments present in dir, ascending by
// segment number. A missing directory lists as empty, not as an error.
func listSegments(dir string) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: scan segments: %w", err)
	}
	var out []segFile
	for _, e := range entries {
		name := e.Name()
		var seg int
		switch {
		case name == walName:
			seg = 0
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
			if err != nil || n <= 0 {
				continue
			}
			seg = n
		default:
			continue
		}
		out = append(out, segFile{seg: seg, name: name, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seg < out[b].seg })
	return out, nil
}

// anchoredSegment classifies a rotated segment's bytes: (true, nil) when an
// intact anchor record opens it, (false, nil) when the bytes are the torn
// prefix a crash mid-rotation leaves (recoverable — the previous segment is
// still the authority), and a CorruptError when the bytes cannot be either.
func anchoredSegment(buf []byte, name string) (bool, error) {
	if len(buf) < len(walMagic) {
		if bytes.Equal(buf, walMagic[:len(buf)]) {
			return false, nil
		}
		return false, CorruptError{File: name, Offset: 0, Reason: "bad magic"}
	}
	if !bytes.Equal(buf[:len(walMagic)], walMagic) {
		return false, CorruptError{File: name, Offset: 0, Reason: "bad magic"}
	}
	recs, _, scanErr := scanWAL(buf[len(walMagic):], int64(len(walMagic)), name)
	if len(recs) == 0 {
		if scanErr == nil || errors.Is(scanErr, ErrTornTail) {
			// Magic landed but the anchor write did not complete: the
			// rotation never took effect.
			return false, nil
		}
		return false, scanErr
	}
	if recs[0].typ != recAnchor {
		return false, CorruptError{File: name, Offset: recs[0].offset, Reason: "rotated segment does not start with an anchor"}
	}
	return true, nil
}

// memberSeq renders the journal's membership transitions ascending by
// epoch, the order recovery promises.
func (j *Journal) memberSeq() []MemberRec {
	if len(j.members) == 0 {
		return nil
	}
	out := make([]MemberRec, 0, len(j.members))
	for _, m := range j.members {
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Epoch < out[b].Epoch })
	return out
}

// rotateLocked starts a new WAL segment: write magic + snapshot anchor to
// a fresh file, fsync it and the directory, switch appends over, then
// delete every superseded segment. Callers hold j.mu. Any failure before
// the anchor is durable marks the journal dead and leaves the old segment
// untouched — exactly the artifact a real mid-rotation death leaves, which
// recovery knows how to drop.
func (j *Journal) rotateLocked() {
	if j.dead != nil {
		return
	}
	tr := j.opts.Obs
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	next := j.seg + 1
	path := filepath.Join(j.dir, segFileName(next))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		j.dead = fmt.Errorf("journal: create segment %d: %w", next, err)
		return
	}
	anchor := anchorRec{
		Seg:     next,
		Snaps:   j.snaps,
		Picks:   j.picks,
		Routes:  j.routes,
		Members: j.memberSeq(),
	}
	frame, err := frameRecord(recAnchor, anchor)
	if err != nil {
		f.Close()
		j.dead = err
		return
	}
	w := j.wrapWriter(f)
	if err := j.countWrite(w, walMagic); err == nil {
		err = j.countWrite(w, frame)
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		j.dead = fmt.Errorf("journal: rotate: %w", err)
		return
	}
	syncDir(j.dir)
	// The anchor is durable: the new segment is now the authority.
	old, oldName, oldSize := j.wal, segFileName(j.seg), j.segBytes
	j.wal = f
	j.w = w
	j.seg = next
	j.segBytes = int64(len(walMagic) + len(frame))
	old.Close()
	if os.Remove(filepath.Join(j.dir, oldName)) == nil {
		j.counters.Inc("compaction.wal.segments_deleted")
		j.counters.Add("compaction.wal.bytes_reclaimed", oldSize)
	}
	syncDir(j.dir)
	j.counters.Inc("compaction.wal.rotations")
	if tr != nil {
		tr.Emit("journal", obs.KindCompact, fmt.Sprintf("rotate seg %d", next), -1, oldSize, time.Since(start))
	}
}

// Package stats provides the small statistics toolkit the benchmark
// harness uses to summarize measurements: central moments, extrema, and a
// least-squares linear fit (the paper's Figure 3 claims are about linear
// growth and relative overheads).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// SummarizeDurations converts durations to milliseconds and summarizes.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / float64(time.Millisecond)
	}
	return Summarize(xs)
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f med=%.2f max=%.2f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// LinearFit is a least-squares line y = Intercept + Slope*x with its
// coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear computes the least-squares line through (xs[i], ys[i]). It
// panics if the slices differ in length and returns a zero fit for fewer
// than two points or degenerate x.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLinear length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{}
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}

// OverheadPercent returns how much slower a is than b, in percent.
func OverheadPercent(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

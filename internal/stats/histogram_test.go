package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewHistogramValidation(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":         {},
		"not ascending": {1, 1},
		"descending":    {2, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestHistogramQuantiles is the table of edge cases for the quantile
// estimator: empty histogram, single sample, samples below the first
// bound, overflow-bucket samples, and in-bucket interpolation.
func TestHistogramQuantiles(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		samples []float64
		q       float64
		want    float64
		tol     float64
	}{
		{name: "empty returns zero", bounds: []float64{1}, samples: nil, q: 0.5, want: 0},
		{name: "single sample p0", bounds: []float64{1, 2, 4}, samples: []float64{1.5}, q: 0, want: 1.5},
		{name: "single sample p50", bounds: []float64{1, 2, 4}, samples: []float64{1.5}, q: 0.5, want: 1.5},
		{name: "single sample p100", bounds: []float64{1, 2, 4}, samples: []float64{1.5}, q: 1, want: 1.5},
		{name: "below first bound clamps to min", bounds: []float64{10, 20}, samples: []float64{3}, q: 0.5, want: 3},
		{name: "overflow sample clamps to max", bounds: []float64{1}, samples: []float64{50}, q: 0.99, want: 50},
		{name: "overflow mixed p100 is max", bounds: []float64{1, 2}, samples: []float64{0.5, 1.5, 99}, q: 1, want: 99},
		{
			name:   "interpolates inside owning bucket",
			bounds: []float64{1, 2, 3, 4},
			// 4 samples in (2,3]: the median lands mid-bucket, between the
			// bucket's bounds, not on either edge.
			samples: []float64{2.2, 2.4, 2.6, 2.8},
			q:       0.5, want: 2.5, tol: 0.5,
		},
		{
			name:    "confined to observed range in wide bucket",
			bounds:  []float64{1, 100},
			samples: []float64{1.2, 1.4}, // both in the wide (1,100] bucket
			q:       0.99, want: 1.4, tol: 0.05,
		},
		{name: "q below zero clamps", bounds: []float64{1}, samples: []float64{0.5, 0.7}, q: -3, want: 0.5},
		{name: "q above one clamps", bounds: []float64{1}, samples: []float64{0.5, 0.7}, q: 7, want: 0.7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			for _, s := range tc.samples {
				h.Record(s)
			}
			got := h.Quantile(tc.q)
			if tc.tol == 0 {
				if got != tc.want {
					t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
				}
				return
			}
			if math.Abs(got-tc.want) > tc.tol {
				t.Fatalf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
			}
			// Interpolated estimates must stay inside the observed range.
			if got < tc.samples[0] || got > tc.samples[len(tc.samples)-1] {
				t.Fatalf("Quantile(%v) = %v outside observed [%v, %v]",
					tc.q, got, tc.samples[0], tc.samples[len(tc.samples)-1])
			}
		})
	}
}

func TestHistogramSnapshotBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 1.7, 9} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 0.5+1.5+1.7+9 || s.Min != 0.5 || s.Max != 9 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Counts) != 3 { // two bounds + overflow
		t.Fatalf("counts = %v", s.Counts)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 2 || s.Counts[2] != 1 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
	// The snapshot is a copy: further recording must not change it.
	h.Record(100)
	if s.Count != 4 {
		t.Fatal("snapshot aliased live state")
	}
}

func TestHistogramBoundaryValuesLandInclusive(t *testing.T) {
	// A sample exactly on an upper bound belongs to that bucket, not the
	// next one (bucketOf is "first bound >= v").
	h := NewHistogram([]float64{1, 2})
	h.Record(1)
	h.Record(2)
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 0 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
}

func TestLatencyHistogramAndDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.RecordDuration(5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); math.Abs(got-0.005) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.005", got)
	}
	if s := h.String(); !strings.Contains(s, "n=1") || !strings.Contains(s, "5ms") {
		t.Fatalf("String() = %q", s)
	}
	if NewHistogram([]float64{1}).String() != "n=0" {
		t.Fatal("empty String()")
	}
}

func TestHistogramQuantilesBatch(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Record(float64(i%4) + 0.5)
	}
	qs := h.Quantiles(0, 0.5, 1)
	if len(qs) != 3 {
		t.Fatalf("len = %d", len(qs))
	}
	if qs[0] != 0.5 || qs[2] != 3.5 {
		t.Fatalf("quantiles = %v", qs)
	}
	if qs[1] < qs[0] || qs[1] > qs[2] {
		t.Fatalf("median %v outside [%v, %v]", qs[1], qs[0], qs[2])
	}
}

// TestHistogramConcurrentRecording hammers one histogram from many
// goroutines — meaningful chiefly under -race — and checks the aggregate
// arithmetic survived.
func TestHistogramConcurrentRecording(t *testing.T) {
	h := NewLatencyHistogram()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(float64(i%10+1) * 1e-6)
				if i%100 == 0 {
					_ = h.Quantile(0.9) // concurrent reads too
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	s := h.Snapshot()
	var inBuckets uint64
	for _, c := range s.Counts {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
	if s.Min != 1e-6 || s.Max != float64(10)*1e-6 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !approx(s.Mean, 3) || !approx(s.Min, 1) || !approx(s.Max, 5) || !approx(s.Median, 3) {
		t.Fatalf("summary = %+v", s)
	}
	if !approx(s.StdDev, math.Sqrt(2.5)) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	even := Summarize([]float64{4, 1, 3, 2})
	if !approx(even.Median, 2.5) {
		t.Fatalf("median = %v", even.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
	if !strings.Contains(s.String(), "mean=3.00") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if !approx(s.Mean, 2) {
		t.Fatalf("mean = %v ms", s.Mean)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	f := FitLinear(xs, ys)
	if !approx(f.Slope, 2) || !approx(f.Intercept, 1) || !approx(f.R2, 1) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestFitLinearNoise(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0.1, 0.9, 2.2, 2.8, 4.1, 5.0}
	f := FitLinear(xs, ys)
	if f.Slope < 0.9 || f.Slope > 1.1 {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("r2 = %v", f.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if f := FitLinear([]float64{1}, []float64{1}); f.Slope != 0 {
		t.Fatalf("single point fit = %+v", f)
	}
	if f := FitLinear([]float64{2, 2}, []float64{1, 5}); f.Slope != 0 {
		t.Fatalf("vertical fit = %+v", f)
	}
	if f := FitLinear([]float64{1, 2}, []float64{3, 3}); !approx(f.R2, 1) || !approx(f.Slope, 0) {
		t.Fatalf("horizontal fit = %+v", f)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	FitLinear([]float64{1}, []float64{1, 2})
}

func TestOverheadPercent(t *testing.T) {
	if !approx(OverheadPercent(138, 100), 38) {
		t.Fatalf("overhead = %v", OverheadPercent(138, 100))
	}
	if OverheadPercent(1, 0) != 0 {
		t.Fatalf("zero base should yield 0")
	}
}

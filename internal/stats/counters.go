package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a set of named monotonic event counters, safe for
// concurrent use. The distributed runtime and the fault-injecting
// transport use one each to account for retries, drops, failovers and
// heartbeat misses, so soak runs and tests can report what the fault
// layer actually exercised.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the named counter's current value (zero if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders the counters as sorted "name=value" pairs.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, snap[k])
	}
	return strings.Join(parts, " ")
}

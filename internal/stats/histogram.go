package stats

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Histogram is a fixed-bucket latency histogram with quantile summaries,
// safe for concurrent recording. The observability layer keeps one per
// span kind, so a soak or bench run can report where merge time actually
// goes (p50/p99 transform latency, checkpoint fsync cost, RPC wait)
// without retaining every sample.
//
// Buckets are defined by ascending upper bounds; values above the last
// bound land in an implicit overflow bucket. Quantiles are estimated by
// linear interpolation inside the owning bucket and clamped to the
// observed [min, max], so a single-sample histogram reports that sample
// exactly at every quantile.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. It panics on empty or non-ascending bounds — histogram shapes
// are compile-time decisions, not data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: NewHistogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: NewHistogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// NewLatencyHistogram returns a histogram sized for span latencies in
// seconds: exponential buckets from 1µs doubling up to ~16s, plus the
// overflow bucket.
func NewLatencyHistogram() *Histogram {
	bounds := make([]float64, 25)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return NewHistogram(bounds)
}

// bucketOf returns the index of the bucket v falls into (the first bucket
// whose upper bound is >= v; the overflow bucket otherwise).
func (h *Histogram) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Record adds one sample.
func (h *Histogram) Record(v float64) {
	h.mu.Lock()
	h.counts[h.bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// RecordDuration adds one duration sample, in seconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Seconds()) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded samples.
// It returns 0 for an empty histogram. Estimates interpolate linearly
// inside the owning bucket and are clamped to the observed [min, max].
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next || i == len(h.counts)-1 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			pos := (target - cum) / float64(c)
			if pos < 0 {
				pos = 0
			}
			if pos > 1 {
				pos = 1
			}
			v := lo + (hi-lo)*pos
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
	Bounds []float64 // upper bounds; Counts has one extra overflow slot
	Counts []uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
	}
}

// Quantiles returns the given quantiles in one lock acquisition.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.quantileLocked(q)
	}
	return out
}

// String renders a compact summary: count, mean and the standard latency
// quantiles.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return "n=0"
	}
	mean := h.sum / float64(h.count)
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		h.count, fmtSeconds(mean),
		fmtSeconds(h.quantileLocked(0.5)),
		fmtSeconds(h.quantileLocked(0.9)),
		fmtSeconds(h.quantileLocked(0.99)),
		fmtSeconds(h.max))
}

// fmtSeconds renders a seconds value as a duration-style string.
func fmtSeconds(s float64) string {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return "?"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

package stats

import (
	"reflect"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
	c.Inc("a")
	c.Add("a", 2)
	c.Inc("b")
	if got := c.Get("a"); got != 3 {
		t.Fatalf("a = %d, want 3", got)
	}
	want := map[string]int64{"a": 3, "b": 1}
	if got := c.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	if got := c.String(); got != "a=3 b=1" {
		t.Fatalf("String() = %q", got)
	}
	// Snapshot is a copy, not a view.
	c.Snapshot()["a"] = 99
	if got := c.Get("a"); got != 3 {
		t.Fatalf("snapshot mutation leaked: a = %d", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}

// Package explore is the deterministic-simulation schedule explorer: it
// seizes every nondeterminism source the runtime has — MergeAny /
// MergeAnyFromSet completion order (via the scheduler hook in
// internal/task), faultnet chaos decisions (drops, resets, partitions,
// dial failures) and journal crash points — and drives them all from one
// seeded decision stream, so a schedule is a value: recordable,
// replayable, enumerable and shrinkable.
//
// Two strategies walk the schedule space: a seeded random walk (the
// workhorse, also backing internal/detcheck) and bounded-exhaustive DFS
// that enumerates every reachable combination of picks within a budget.
// On every explored schedule the paper's claims are checked automatically:
//
//   - determinism (Section IV.A): a scenario marked Deterministic must
//     produce one bit-identical fingerprint on every schedule;
//   - MergeAny soundness (Section II.D): the outcome must equal the
//     result of sequentially forcing the recorded pick order — the
//     executed MergeScript is replayed through the production replay
//     path and the fingerprints compared;
//   - progress (Section IV.B): a bounded-progress watchdog flags
//     schedules whose runtime stops pulsing — a deadlock, a livelock, or
//     a decision loop that blew the per-schedule budget;
//   - crash-resume equivalence (optional, Options.Crash): the schedule
//     is re-run journaled, killed at explored byte boundaries with
//     journal.CrashWriter, resumed, and held to the live outcome.
//
// A failing schedule is delta-debugged down to a minimal decision trace
// and persisted as a seed file that reproduces the failure on replay
// (ReplaySeed) — the counterexample is the artifact, not the log.
package explore

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/task"
)

// Scenario is one program under exploration. Build must construct all
// state fresh per call so schedules are independent.
type Scenario struct {
	// Name identifies the scenario in reports and seed files.
	Name string
	// Build returns a fresh root Func and data set for one schedule. The
	// env carries the schedule's decision stream: wire env.Decide into
	// faultnet.Config.Decider (or any scenario-level choice) so chaos is
	// explored, not random. Cleanup (clusters, listeners) registers with
	// env.Defer.
	Build func(env *Env) (task.Func, []mergeable.Mergeable)
	// Fingerprint reduces the final structures to the observable outcome;
	// nil means the combined structure fingerprint (Fingerprint).
	Fingerprint func(data []mergeable.Mergeable) uint64
	// Deterministic asserts the program admits exactly one outcome (it is
	// MergeAll-only, or its MergeAny results are order-insensitive): any
	// second fingerprint is a violation.
	Deterministic bool
	// TolerateError, when non-nil, classifies run errors that are part of
	// the scenario's contract (e.g. a chaos transport legitimately
	// killing a run) — such schedules count as lost, not as violations.
	TolerateError func(error) bool

	// opaque is the detcheck compatibility path: a self-contained run
	// that ignores the decision stream. Set via Opaque.
	opaque func() (uint64, error)
}

// Opaque wraps a self-contained scenario — one that performs its own run
// and fingerprinting with no decision hooks — so the legacy
// detcheck-style checkers can ride the explorer's random walk. Opaque
// scenarios sample only wall-clock schedules; they cannot be steered,
// shrunk or explored exhaustively.
func Opaque(name string, f func() (uint64, error)) Scenario {
	return Scenario{Name: name, opaque: f}
}

// Env is a schedule's view of its decision stream, handed to
// Scenario.Build.
type Env struct {
	src      *Source
	deferred []func()
	history  task.HistoryGC
}

// Decide resolves a scenario-level decision point with n alternatives,
// returning a pick in [0, n). Alternative 0 should be the benign default.
// The signature matches faultnet.Config.Decider, so chaos wiring is
// `Decider: env.Decide`.
func (e *Env) Decide(site string, n int) int { return e.src.Choose(site, n) }

// Defer registers cleanup to run after the schedule completes, LIFO.
// Build runs on the schedule's goroutine, so no locking is needed.
func (e *Env) Defer(f func()) { e.deferred = append(e.deferred, f) }

// SetHistory selects the run's history-compaction policy (wired into
// task.RunConfig.History and, under crash exploration, into the journaled
// runs). Deciding the policy from the decision stream makes the GC knob
// itself an explored site: on a Deterministic scenario every choice —
// eager trim, deferred slack, GC off — must land on one fingerprint,
// which is the compaction-invisibility claim in executable form.
func (e *Env) SetHistory(h task.HistoryGC) { e.history = h }

func (e *Env) runDeferred() {
	for i := len(e.deferred) - 1; i >= 0; i-- {
		e.deferred[i]()
	}
	e.deferred = nil
}

// chooser adapts the decision stream to the runtime's scheduler hook:
// candidates arrive in creation order, so pick 0 is the deterministic
// default and the decision's N is the fan-in of the merge.
func (e *Env) chooser(parentPath string, candidates []uint64) (uint64, bool) {
	pick := e.src.Choose("merge:"+parentPath, len(candidates))
	if pick < 0 || pick >= len(candidates) {
		pick = 0
	}
	return candidates[pick], true
}

// Violation kinds.
const (
	KindDeterminism = "determinism"       // second fingerprint on a Deterministic scenario
	KindReplay      = "replay-divergence" // outcome != replay of the recorded pick order
	KindStall       = "stall"             // bounded-progress watchdog fired
	KindError       = "error"             // the run failed and the scenario does not tolerate it
	KindCrash       = "crash-divergence"  // journaled crash/resume did not reproduce the outcome
)

// Violation is one schedule that broke an invariant, with its (shrunk)
// decision trace and, when persisted, the seed file that replays it.
type Violation struct {
	Kind     string
	Scenario string
	Detail   string
	// Err is the underlying run error for KindError.
	Err error
	// Fingerprint/Want are the diverging outcomes where applicable.
	Fingerprint, Want uint64
	// Trace reproduces the violation through ReplayTrace/ReplaySeed. When
	// shrinking ran it is minimal: removing any decision loses the bug.
	Trace Trace
	// RawLen is the decision count before shrinking.
	RawLen int
	// SeedFile is where the trace was persisted (Options.SeedDir).
	SeedFile string
	// SpanDiff localizes a determinism violation: the first divergences
	// between the baseline schedule's span tree and this one's.
	SpanDiff []string
}

func (v *Violation) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "explore: %s: %s violation", v.Scenario, v.Kind)
	if v.Detail != "" {
		fmt.Fprintf(&sb, ": %s", v.Detail)
	}
	if v.Err != nil {
		fmt.Fprintf(&sb, ": %v", v.Err)
	}
	if len(v.Trace) > 0 {
		fmt.Fprintf(&sb, " (trace %d decisions, raw %d)", len(v.Trace), v.RawLen)
	}
	if v.SeedFile != "" {
		fmt.Fprintf(&sb, " [seed %s]", v.SeedFile)
	}
	return sb.String()
}

// Options configures an exploration.
type Options struct {
	// Strategy picks the walk; default RandomWalk.
	Strategy Strategy
	// Schedules bounds how many schedules run per GOMAXPROCS value;
	// default 64. The exhaustive strategy stops earlier when the space is
	// fully enumerated (Result.Exhausted).
	Schedules int
	// Seed drives the random walk.
	Seed int64
	// MaxDecisions bounds decisions per schedule (default 4096); past it
	// the schedule is flagged by the stall watchdog.
	MaxDecisions int
	// StallTimeout is the bounded-progress watchdog window: a schedule
	// whose runtime stops pulsing for this long is a stall violation.
	// Zero means 10s for instrumented scenarios and disabled for Opaque
	// ones (which cannot pulse); negative disables it.
	StallTimeout time.Duration
	// Procs sweeps GOMAXPROCS across the given values (restored after),
	// re-running the budget under each — the "regardless of the number of
	// cores" claim. Empty means the current setting only.
	Procs []int
	// DisableReplayCheck skips the MergeAny pick-order cross-check.
	DisableReplayCheck bool
	// Crash enables crash-point exploration (see CrashCheck).
	Crash *CrashCheck
	// Shrink delta-debugs failing schedules to minimal traces.
	Shrink bool
	// ShrinkBudget caps predicate re-runs per shrink; default 200.
	ShrinkBudget int
	// SeedDir, when set, persists every violation's trace as a replayable
	// seed file in this directory.
	SeedDir string
	// FailFast stops at the first violation (or first intolerable error).
	FailFast bool
	// Stats, when non-nil, receives the explorer's counters ("schedule",
	// "decision", "violation", "lost", "stall", "replay_check",
	// "crash_check", "shrink_try", "seed_persisted") — register it in an
	// obs.Registry to export exploration progress over /metrics.
	Stats *stats.Counters
}

func (o Options) normalized(sc Scenario) (Options, error) {
	if sc.Build == nil && sc.opaque == nil {
		return o, fmt.Errorf("explore: scenario %q has no Build", sc.Name)
	}
	if o.Schedules <= 0 {
		o.Schedules = 64
	}
	if o.MaxDecisions <= 0 {
		o.MaxDecisions = 4096
	}
	if o.StallTimeout == 0 {
		if sc.opaque != nil {
			o.StallTimeout = -1
		} else {
			o.StallTimeout = 10 * time.Second
		}
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 200
	}
	if o.Stats == nil {
		o.Stats = stats.NewCounters()
	}
	if o.Crash != nil {
		if sc.opaque != nil {
			return o, fmt.Errorf("explore: crash exploration needs a Build scenario")
		}
		if o.Crash.Encode == nil || o.Crash.Decode == nil {
			return o, fmt.Errorf("explore: CrashCheck.Encode and Decode are required")
		}
		if o.Crash.Points <= 0 {
			o.Crash.Points = 3
		}
	}
	return o, nil
}

// Result summarizes an exploration.
type Result struct {
	Scenario string
	// Schedules ran to an outcome (including lost ones); Decisions is the
	// total decision count across them.
	Schedules int
	Decisions int64
	// Lost schedules ended in a tolerated error (chaos killing a run).
	Lost int
	// Exhausted reports the exhaustive strategy enumerated its whole
	// space within the budget.
	Exhausted bool
	// Outcomes maps observed fingerprints to occurrence counts.
	Outcomes map[uint64]int
	// Violations holds every invariant breach found, in discovery order.
	Violations []*Violation
}

// Ok reports a clean exploration.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d schedules, %d decisions, %d outcomes", r.Scenario, r.Schedules, r.Decisions, len(r.Outcomes))
	if r.Lost > 0 {
		fmt.Fprintf(&sb, ", %d lost", r.Lost)
	}
	if r.Exhausted {
		sb.WriteString(", space exhausted")
	}
	if len(r.Violations) == 0 {
		sb.WriteString(", clean")
	} else {
		fmt.Fprintf(&sb, ", %d VIOLATIONS", len(r.Violations))
	}
	return sb.String()
}

// Fingerprint folds the structures' fingerprints in data order — the
// default outcome reduction.
func Fingerprint(data ...mergeable.Mergeable) uint64 {
	fps := make([]uint64, len(data))
	for i, m := range data {
		fps[i] = m.Fingerprint()
	}
	return mergeable.CombineFingerprints(fps...)
}

// Run explores sc's schedule space under opts and reports what it found.
// The returned error covers misconfiguration only; invariant breaches are
// Result.Violations.
func Run(sc Scenario, opts Options) (*Result, error) {
	o, err := opts.normalized(sc)
	if err != nil {
		return nil, err
	}
	x := &explorer{
		sc:   sc,
		opts: o,
		res:  &Result{Scenario: sc.Name, Outcomes: make(map[uint64]int)},
	}
	procs := o.Procs
	if len(procs) == 0 {
		procs = []int{runtime.GOMAXPROCS(0)}
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		x.explorePass()
		if o.FailFast && len(x.res.Violations) > 0 {
			break
		}
	}
	return x.res, nil
}

// explorer is one Run's state.
type explorer struct {
	sc   Scenario
	opts Options
	res  *Result

	haveRef bool
	refFP   uint64
}

// explorePass runs one GOMAXPROCS sweep's schedule budget.
func (x *explorer) explorePass() {
	st := newStrategyState(x.opts.Strategy, x.opts.Seed)
	n := 0
	if x.opts.Strategy == RandomWalk && x.sc.opaque == nil {
		// Anchor the reference outcome on the all-default baseline
		// schedule before randomizing. (Exhaustive starts there anyway.)
		x.runOne(newSource(nil, nil, x.opts.MaxDecisions), st)
		n++
	}
	for n < x.opts.Schedules {
		if x.opts.FailFast && len(x.res.Violations) > 0 {
			return
		}
		src, ok := st.next(x.opts.MaxDecisions)
		if !ok {
			x.res.Exhausted = true
			return
		}
		x.runOne(src, st)
		n++
	}
}

// runOne executes a single schedule and applies every invariant check.
func (x *explorer) runOne(src *Source, st strategyState) {
	out := runSchedule(x.sc, src, x.opts, nil, nil)
	x.res.Schedules++
	x.res.Decisions += int64(len(out.trace))
	x.opts.Stats.Inc("schedule")
	x.opts.Stats.Add("decision", int64(len(out.trace)))
	st.observe(src)

	var v *Violation
	switch {
	case out.stalled:
		detail := "runtime made no progress within the watchdog window"
		if out.over {
			detail = fmt.Sprintf("decision budget (%d) exhausted and no further progress — livelock suspect", x.opts.MaxDecisions)
		}
		x.opts.Stats.Inc("stall")
		v = &Violation{Kind: KindStall, Detail: detail}
	case out.err != nil:
		if x.sc.TolerateError != nil && x.sc.TolerateError(out.err) {
			x.res.Lost++
			x.opts.Stats.Inc("lost")
			return
		}
		v = &Violation{Kind: KindError, Err: out.err}
	default:
		x.res.Outcomes[out.fp]++
		if x.sc.Deterministic {
			if !x.haveRef {
				x.haveRef, x.refFP = true, out.fp
			} else if out.fp != x.refFP {
				v = &Violation{
					Kind:        KindDeterminism,
					Detail:      fmt.Sprintf("fingerprint %016x, baseline %016x", out.fp, x.refFP),
					Fingerprint: out.fp,
					Want:        x.refFP,
				}
			}
		}
		if v == nil && !x.opts.DisableReplayCheck && out.script != nil && out.script.Len() > 0 {
			x.opts.Stats.Inc("replay_check")
			v = replayCheck(x.sc, x.opts, out)
		}
		if v == nil && x.opts.Crash != nil {
			x.opts.Stats.Inc("crash_check")
			v = crashCheck(x.sc, x.opts, out)
		}
	}
	if v != nil {
		x.report(v, out)
	}
}

// report finalizes a violation: shrink, persist, localize, record.
func (x *explorer) report(v *Violation, out schedOut) {
	v.Scenario = x.sc.Name
	v.Trace = out.trace.clone()
	v.RawLen = len(out.trace)
	if x.opts.Shrink && v.Kind != KindStall && x.sc.opaque == nil {
		// Stalls are not shrunk: every still-failing probe would park
		// another goroutine on the watchdog's floor.
		v.Trace = shrink(v.Trace, x.failsLike(v), x.opts.ShrinkBudget, x.opts.Stats)
	}
	if x.opts.SeedDir != "" {
		path, err := persistSeed(x.opts.SeedDir, x.sc.Name, v.Kind, len(x.res.Violations), v.Trace)
		if err != nil {
			v.Detail += fmt.Sprintf(" (seed persist failed: %v)", err)
		} else {
			v.SeedFile = path
			x.opts.Stats.Inc("seed_persisted")
		}
	}
	if v.Kind == KindDeterminism && x.sc.opaque == nil {
		v.SpanDiff = spanDiff(x.sc, x.opts, v.Trace)
	}
	x.opts.Stats.Inc("violation")
	x.res.Violations = append(x.res.Violations, v)
}

// failsLike builds the shrinker's predicate: does replaying tr reproduce
// a violation of v's kind?
func (x *explorer) failsLike(v *Violation) func(Trace) bool {
	return func(tr Trace) bool {
		out := runSchedule(x.sc, newSource(tr, nil, x.opts.MaxDecisions), x.opts, nil, nil)
		switch v.Kind {
		case KindError:
			return out.err != nil && !out.stalled &&
				(x.sc.TolerateError == nil || !x.sc.TolerateError(out.err))
		case KindDeterminism:
			return !out.stalled && out.err == nil && x.haveRef && out.fp != x.refFP
		case KindReplay:
			if out.stalled || out.err != nil || out.script == nil || out.script.Len() == 0 {
				return false
			}
			return replayCheck(x.sc, x.opts, out) != nil
		case KindCrash:
			if out.stalled || out.err != nil {
				return false
			}
			return crashCheck(x.sc, x.opts, out) != nil
		}
		return false
	}
}

// schedOut is one executed schedule.
type schedOut struct {
	fp      uint64
	err     error
	stalled bool
	over    bool
	trace   Trace
	script  *task.MergeScript
}

// runSchedule executes one schedule of sc driven by src, under the
// bounded-progress watchdog. tracer, when non-nil, records the run's span
// tree. replay, when non-nil, forces the recorded MergeAny picks through
// the production replay path instead of the scheduler hook (the MergeAny
// cross-check).
func runSchedule(sc Scenario, src *Source, opts Options, tracer *obs.Tracer, replay *task.MergeScript) schedOut {
	if sc.opaque != nil {
		fp, err := sc.opaque()
		return schedOut{fp: fp, err: err}
	}
	env := &Env{src: src}
	ch := make(chan schedOut, 1)
	go func() {
		out := schedOut{}
		defer func() {
			if r := recover(); r != nil {
				out.err = fmt.Errorf("explore: scenario panicked: %v", r)
			}
			env.runDeferred()
			out.trace, out.over = src.snapshot()
			ch <- out
		}()
		fn, data := sc.Build(env)
		cfg := task.RunConfig{Jitter: src.pulse, Obs: tracer, History: env.history}
		if replay != nil {
			cfg.Replay = replay
		} else {
			out.script = task.NewMergeScript()
			cfg.Choose = env.chooser
			cfg.Record = out.script
		}
		out.err = task.RunWith(cfg, fn, data...)
		if out.err == nil {
			out.fp = fingerprintOf(sc, data)
		}
	}()
	if opts.StallTimeout <= 0 {
		return <-ch
	}
	last := src.progress.Load()
	for {
		select {
		case out := <-ch:
			return out
		case <-time.After(opts.StallTimeout):
			cur := src.progress.Load()
			if cur == last {
				// The schedule's goroutine is abandoned, not killed — Go
				// has no cancellation for a genuinely wedged runtime, and
				// that wedge is exactly what is being reported.
				tr, over := src.snapshot()
				return schedOut{stalled: true, trace: tr, over: over}
			}
			last = cur
		}
	}
}

func fingerprintOf(sc Scenario, data []mergeable.Mergeable) uint64 {
	if sc.Fingerprint != nil {
		return sc.Fingerprint(data)
	}
	return Fingerprint(data...)
}

// replayCheck re-runs the schedule with the recorded MergeAny picks
// forced through the production replay path (task.RunConfig.Replay) and
// holds the outcome to the live one — the executable form of "a MergeAny
// result is the result of some sequential pick order".
func replayCheck(sc Scenario, opts Options, out schedOut) *Violation {
	src := newSource(out.trace, nil, opts.MaxDecisions)
	re := runSchedule(sc, src, opts, nil, out.script)
	switch {
	case re.stalled:
		return &Violation{Kind: KindReplay, Detail: "replaying the recorded pick order stalled"}
	case re.err != nil:
		return &Violation{Kind: KindReplay, Detail: "replaying the recorded pick order failed", Err: re.err}
	case re.fp != out.fp:
		return &Violation{
			Kind:        KindReplay,
			Detail:      fmt.Sprintf("replay of recorded pick order gave %016x, live schedule gave %016x", re.fp, out.fp),
			Fingerprint: re.fp,
			Want:        out.fp,
		}
	}
	return nil
}

// spanDiff localizes a determinism violation as an obs span-tree diff
// between the baseline schedule and the violating trace.
func spanDiff(sc Scenario, opts Options, tr Trace) []string {
	base, bad := obs.New(), obs.New()
	if out := runSchedule(sc, newSource(nil, nil, opts.MaxDecisions), opts, base, nil); out.err != nil || out.stalled {
		return nil
	}
	if out := runSchedule(sc, newSource(tr, nil, opts.MaxDecisions), opts, bad, nil); out.err != nil || out.stalled {
		return nil
	}
	diff := obs.Diff(base.Tree(), bad.Tree())
	const maxLines = 16
	if len(diff) > maxLines {
		diff = append(diff[:maxLines:maxLines], fmt.Sprintf("... %d more", len(diff)-maxLines))
	}
	return diff
}

// ReplayTrace re-runs sc under a decision trace and re-evaluates the
// schedule's invariants, returning the violation it reproduces (nil for a
// clean replay). refFP, when known (haveRef), anchors the determinism
// check; pass haveRef=false to skip it.
func ReplayTrace(sc Scenario, tr Trace, opts Options) (*Violation, error) {
	o, err := opts.normalized(sc)
	if err != nil {
		return nil, err
	}
	if sc.opaque != nil {
		return nil, fmt.Errorf("explore: cannot replay a trace into an Opaque scenario")
	}
	x := &explorer{sc: sc, opts: o, res: &Result{Scenario: sc.Name, Outcomes: make(map[uint64]int)}}
	if sc.Deterministic {
		// Establish the reference from the all-default baseline.
		base := runSchedule(sc, newSource(nil, nil, o.MaxDecisions), o, nil, nil)
		if base.err != nil || base.stalled {
			return nil, fmt.Errorf("explore: baseline schedule failed: stalled=%v err=%v", base.stalled, base.err)
		}
		x.haveRef, x.refFP = true, base.fp
	}
	// Disable shrinking and persistence: a replay reports, it does not
	// re-minimize.
	x.opts.Shrink = false
	x.opts.SeedDir = ""
	before := len(x.res.Violations)
	x.runOne(newSource(tr, nil, o.MaxDecisions), &randomWalk{})
	if len(x.res.Violations) > before {
		return x.res.Violations[len(x.res.Violations)-1], nil
	}
	return nil, nil
}

// sortedOutcomes renders Outcomes deterministically for reports.
func sortedOutcomes(m map[uint64]int) []string {
	fps := make([]uint64, 0, len(m))
	for fp := range m {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	out := make([]string, len(fps))
	for i, fp := range fps {
		out[i] = fmt.Sprintf("%016x×%d", fp, m[fp])
	}
	return out
}

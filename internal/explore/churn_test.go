package explore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/mergeable"
	"repro/internal/task"
)

func init() {
	// The injected placement bug: one registered function per node whose
	// effect leaks the placement — exactly what the runtime promises never
	// happens. The explorer must catch it as a determinism violation.
	for i := 0; i < 3; i++ {
		n := i
		dist.RegisterFunc(fmt.Sprintf("explore-churn-bug-%d", n), func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.List[int]).Append(100 + n)
			return nil
		})
	}
}

// TestChurnRandomWalkSmoke keeps a fast always-on eye on the churn
// scenario: a handful of random membership schedules, all clean, all on
// the one fingerprint.
func TestChurnRandomWalkSmoke(t *testing.T) {
	res, err := Run(Churn(), Options{Schedules: 24, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("violations on random churn walk: %v", res.Violations[0])
	}
	if res.Lost != 0 {
		t.Fatalf("lost schedules = %d, want 0 (churn tolerates no errors)", res.Lost)
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %v, want exactly one", sortedOutcomes(res.Outcomes))
	}
}

// TestChurnExhaustiveAcceptance is the elastic-membership acceptance
// bar: the exhaustive strategy must enumerate at least a thousand
// distinct join/leave/drain/kill/placement schedules with zero
// violations and a single outcome — the determinism claim quantified
// over membership churn.
func TestChurnExhaustiveAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive churn sweep is not a -short test")
	}
	res, err := Run(Churn(), Options{Strategy: Exhaustive, Schedules: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted && res.Schedules < 1000 {
		t.Fatalf("enumerated %d schedules, want >= 1000 (or exhaustion)", res.Schedules)
	}
	if !res.Ok() {
		t.Fatalf("%d violations; first: %v", len(res.Violations), res.Violations[0])
	}
	if res.Lost != 0 {
		t.Fatalf("lost schedules = %d, want 0", res.Lost)
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %v, want exactly one across all churn schedules", sortedOutcomes(res.Outcomes))
	}
}

// TestChurnCrashExploration composes the two failure axes: explored
// membership schedules re-run journaled, torn at crash points, resumed
// and held to the live outcome — the coordinator-crash choice riding
// the same decision stream as the churn choices.
func TestChurnCrashExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point churn sweep is not a -short test")
	}
	res, err := Run(Churn(), Options{
		Schedules: 3,
		Seed:      11,
		Crash: &CrashCheck{
			Encode: dist.EncodeSnapshot,
			Decode: dist.DecodeSnapshot,
			Points: 2,
			Dir:    t.TempDir(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
}

// churnPlacementBug is a deliberately broken elastic workload: the
// merged value depends on where the task was placed.
func churnPlacementBug() Scenario {
	return Scenario{
		Name:          "churn-placement-bug",
		Deterministic: true,
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			cluster := dist.NewClusterWith(dist.Options{Nodes: 3, HeartbeatInterval: -1})
			env.Defer(cluster.Close)
			list := mergeable.NewList[int]()
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				target := env.Decide("bug.target", 3)
				cluster.SpawnRemote(ctx, target, fmt.Sprintf("explore-churn-bug-%d", target), data[0])
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{list}
		},
	}
}

// TestChurnPlacementBugShrinksToSeed: an injected placement bug must be
// found, shrunk to the single placement decision that triggers it, and
// persisted as a seed file that reproduces the violation on replay.
func TestChurnPlacementBugShrinksToSeed(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(churnPlacementBug(), Options{
		Strategy:  Exhaustive,
		Schedules: 16,
		Shrink:    true,
		SeedDir:   dir,
		FailFast:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("the injected placement bug was not found")
	}
	v := res.Violations[0]
	if v.Kind != KindDeterminism {
		t.Fatalf("violation kind = %s, want %s", v.Kind, KindDeterminism)
	}
	if len(v.Trace) != 1 {
		t.Errorf("this bug is one placement decision, shrinker kept %d:\n%s", len(v.Trace), v.Trace)
	}
	if len(v.Trace) == 1 && (v.Trace[0].Site != "bug.target" || v.Trace[0].Pick == 0) {
		t.Errorf("minimal decision = %v, want a non-default bug.target pick", v.Trace[0])
	}
	if v.SeedFile == "" {
		t.Fatal("violation was not persisted to a seed file")
	}
	re, err := ReplaySeed(v.SeedFile, churnPlacementBug(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re == nil {
		t.Fatal("replaying the persisted seed did not reproduce the violation")
	}
	if re.Kind != KindDeterminism {
		t.Errorf("replayed violation kind = %s, want %s", re.Kind, KindDeterminism)
	}
}

// leaveRaceScenario pins the nastiest membership edge: a member leaves
// while a task it hosts is still in flight. The decision stream places
// the leave before or after the merge; either way the task's effects
// must land exactly once.
func leaveRaceScenario() Scenario {
	return Scenario{
		Name:          "churn-leave-race",
		Deterministic: true,
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			cluster := dist.NewClusterWith(dist.Options{
				Nodes:             2,
				HeartbeatInterval: -1,
				RecvTimeout:       5 * time.Second,
				Retry:             dist.RetryPolicy{MaxAttempts: 4},
			})
			env.Defer(cluster.Close)
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				cluster.SpawnRemote(ctx, 0, "explore-churn-0", data[0], data[1])
				before := env.Decide("leave.before-merge", 2) == 1
				if before {
					if err := cluster.Leave(0); err != nil {
						return err
					}
				}
				if err := ctx.MergeAll(); err != nil {
					return err
				}
				if !before {
					if err := cluster.Leave(0); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// TestChurnLeaveRacesMerge exhausts the leave-vs-merge race: both
// orderings run, the space is fully enumerated, and the outcome is one
// fingerprint — the departing member's task was rebalanced, not lost and
// not duplicated.
func TestChurnLeaveRacesMerge(t *testing.T) {
	res, err := Run(leaveRaceScenario(), Options{Strategy: Exhaustive, Schedules: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("leave-race space not exhausted in %d schedules", res.Schedules)
	}
	if res.Schedules < 2 {
		t.Fatalf("schedules = %d, want both leave orderings", res.Schedules)
	}
	if !res.Ok() {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %v, want exactly one", sortedOutcomes(res.Outcomes))
	}
}

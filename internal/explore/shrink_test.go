package explore

import (
	"strings"
	"testing"

	"repro/internal/mergeable"
	"repro/internal/task"
)

// buggyScenario claims determinism but plants a schedule-dependent bug:
// whenever child 2 wins the first MergeAny, a sentinel lands in the
// counter. The bug needs exactly one wrong decision to fire, so the
// shrinker must reduce any failing trace to a single decision.
func buggyScenario() Scenario {
	return Scenario{
		Name:          "buggy",
		Deterministic: true,
		Fingerprint: func(data []mergeable.Mergeable) uint64 {
			return uint64(data[0].(*mergeable.Counter).Value())
		},
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				var kids []*task.Task
				for i := 0; i < 3; i++ {
					kids = append(kids, ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
						data[0].(*mergeable.Counter).Inc()
						return nil
					}, data[0]))
				}
				winner, err := ctx.MergeAny()
				if err != nil {
					return err
				}
				if winner == kids[2] {
					data[0].(*mergeable.Counter).Add(999) // the injected bug
				}
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{cnt}
		},
	}
}

// TestShrinkFindsMinimalCounterexample is the acceptance check for
// shrinking: the injected determinism bug must be found, delta-debugged
// to at most three decisions (this one needs exactly one), persisted as
// a seed file, and reproduced from that file alone.
func TestShrinkFindsMinimalCounterexample(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(buggyScenario(), Options{
		Strategy:  Exhaustive,
		Schedules: 50,
		Shrink:    true,
		SeedDir:   dir,
		FailFast:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("the injected bug was not found")
	}
	v := res.Violations[0]
	if v.Kind != KindDeterminism {
		t.Fatalf("violation kind = %s, want %s", v.Kind, KindDeterminism)
	}
	if len(v.Trace) > 3 {
		t.Errorf("shrunk trace has %d decisions, want ≤3:\n%s", len(v.Trace), v.Trace)
	}
	if len(v.Trace) != 1 {
		t.Errorf("this bug needs exactly one decision, shrinker kept %d:\n%s", len(v.Trace), v.Trace)
	}
	if len(v.Trace) == 1 {
		d := v.Trace[0]
		if !strings.HasPrefix(d.Site, "merge:") || d.Pick != 2 {
			t.Errorf("minimal decision = %v, want a merge pick of 2", d)
		}
	}
	if v.SeedFile == "" {
		t.Fatal("violation was not persisted to a seed file")
	}

	// The persisted seed alone must reproduce the violation.
	re, err := ReplaySeed(v.SeedFile, buggyScenario(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re == nil {
		t.Fatal("replaying the persisted seed did not reproduce the violation")
	}
	if re.Kind != KindDeterminism {
		t.Errorf("replayed violation kind = %s, want %s", re.Kind, KindDeterminism)
	}
}

// TestShrinkAlgorithm pins the shrinker's behavior on a synthetic
// predicate: failure iff the trace sets site "x" to pick 2 somewhere —
// everything else is noise to remove.
func TestShrinkAlgorithm(t *testing.T) {
	noise := Trace{
		{Site: "a", N: 2, Pick: 1},
		{Site: "b", N: 3, Pick: 2},
		{Site: "x", N: 3, Pick: 2},
		{Site: "c", N: 2, Pick: 1},
		{Site: "d", N: 2, Pick: 1},
	}
	fails := func(tr Trace) bool {
		for _, d := range tr {
			if d.Site == "x" && d.Pick == 2 {
				return true
			}
		}
		return false
	}
	got := shrink(noise, fails, 200, newTestCounters())
	if len(got) != 1 || got[0].Site != "x" || got[0].Pick != 2 {
		t.Errorf("shrink kept %v, want just the x/2 decision", got)
	}
}

// TestShrinkTrimsTrailingDefaults checks the free phase: trailing default
// picks vanish without predicate re-runs.
func TestShrinkTrimsTrailingDefaults(t *testing.T) {
	tr := Trace{
		{Site: "x", N: 2, Pick: 1},
		{Site: "y", N: 2, Pick: 0},
		{Site: "z", N: 3, Pick: 0},
	}
	fails := func(tr Trace) bool { return len(tr) > 0 && tr[0].Site == "x" && tr[0].Pick == 1 }
	got := shrink(tr, fails, 200, newTestCounters())
	if len(got) != 1 {
		t.Errorf("shrink kept %v, want just the x decision", got)
	}
}

package explore

import (
	"testing"
)

// TestShardScenarioExhaustive enumerates the sharded service's whole
// membership decision space — no change / a shard joining / a shard
// draining, crossed with where the handoff lands in the client's write
// waves, whether a connection dialed before the handoff races it with a
// stale-epoch write, and whether a shard is killed and resumed from its
// journal — and demands the single fingerprint the epoch fence
// guarantees: routed writes are handoff-transparent and every stale
// in-flight write is turned away.
func TestShardScenarioExhaustive(t *testing.T) {
	res, err := Run(Shard(), Options{Strategy: Exhaustive, Schedules: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	for _, v := range res.Violations {
		t.Error(v)
	}
	if !res.Exhausted {
		t.Errorf("schedule space not exhausted in %d schedules", res.Schedules)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d schedules, want 0 (no chaos in this scenario)", res.Lost)
	}
	if len(res.Outcomes) != 1 {
		t.Errorf("observed %d outcomes, want exactly 1: %v", len(res.Outcomes), sortedOutcomes(res.Outcomes))
	}
}

// TestShardStaleOwnerShrinksToSeed is the planted-bug acceptance check:
// with UnsafeLiveHandoff the old owner keeps acking writes after its
// documents moved, so the explorer must flag a determinism violation,
// shrink it to the two necessary decisions (join the shard, race the
// write), and persist a seed file that reproduces the bug on replay.
func TestShardStaleOwnerShrinksToSeed(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(shardStaleOwner(), Options{
		Strategy:  Exhaustive,
		Schedules: 32,
		Shrink:    true,
		SeedDir:   dir,
		FailFast:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("the planted stale-owner bug was not found")
	}
	v := res.Violations[0]
	if v.Kind != KindDeterminism {
		t.Fatalf("violation kind = %s, want %s", v.Kind, KindDeterminism)
	}
	if len(v.Trace) > 2 {
		t.Errorf("shrunk trace has %d decisions, want ≤2:\n%s", len(v.Trace), v.Trace)
	}
	for _, d := range v.Trace {
		if (d.Site != "shard.plan" && d.Site != "shard.inflight") || d.Pick != 1 {
			t.Errorf("unexpected decision in minimal trace: %v", d)
		}
	}
	if v.SeedFile == "" {
		t.Fatal("violation was not persisted to a seed file")
	}

	// The persisted seed alone must reproduce the lost write.
	re, err := ReplaySeed(v.SeedFile, shardStaleOwner(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re == nil {
		t.Fatal("replaying the persisted seed did not reproduce the violation")
	}
	if re.Kind != KindDeterminism {
		t.Errorf("replayed violation kind = %s, want %s", re.Kind, KindDeterminism)
	}
}

package explore

import (
	"sync"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/stats"
	"repro/internal/task"
)

// TestExhaustiveEnumeratesAllPickOrders is the acceptance check for the
// exhaustive strategy: draining a three-child fan-out with successive
// MergeAny calls has exactly 3! = 6 pick orders, and the DFS must visit
// every one of them, once, and then report the space exhausted.
func TestExhaustiveEnumeratesAllPickOrders(t *testing.T) {
	var mu sync.Mutex
	orders := make(map[[3]int]int)

	sc := Scenario{
		Name: "pickorders",
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				var kids []*task.Task
				for i := 0; i < 3; i++ {
					id := i
					kids = append(kids, ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
						data[0].(*mergeable.List[int]).Append(id)
						return nil
					}, data[0]))
				}
				var order [3]int
				for i := 0; i < 3; i++ {
					winner, err := ctx.MergeAny()
					if err != nil {
						return err
					}
					for j, k := range kids {
						if k == winner {
							order[i] = j
						}
					}
				}
				mu.Lock()
				orders[order]++
				mu.Unlock()
				return nil
			}
			return fn, []mergeable.Mergeable{list}
		},
	}

	// The replay cross-check re-executes Build per schedule, which would
	// double the visit counts; TestAnyOrderReplayCheck covers it instead.
	res, err := Run(sc, Options{Strategy: Exhaustive, Schedules: 100, DisableReplayCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	if res.Schedules != 6 {
		t.Errorf("Schedules = %d, want 6", res.Schedules)
	}
	if !res.Exhausted {
		t.Error("exhaustive strategy did not report the space exhausted")
	}
	if len(orders) != 6 {
		t.Fatalf("visited %d distinct pick orders, want all 6: %v", len(orders), orders)
	}
	for order, n := range orders {
		if n != 1 {
			t.Errorf("pick order %v visited %d times, want exactly once", order, n)
		}
	}
	// Every permutation of a three-element merge produces a distinct list,
	// so the outcome census must also be six-way.
	if len(res.Outcomes) != 6 {
		t.Errorf("observed %d distinct outcomes, want 6: %v", len(res.Outcomes), sortedOutcomes(res.Outcomes))
	}
}

// TestRandomWalkDeterministicScenario holds the MergeAll-only fixture to
// one fingerprint across random schedules and a GOMAXPROCS sweep.
func TestRandomWalkDeterministicScenario(t *testing.T) {
	res, err := Run(Fanout(), Options{Schedules: 8, Seed: 42, Procs: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	if len(res.Outcomes) != 1 {
		t.Errorf("deterministic scenario produced %d outcomes: %v", len(res.Outcomes), sortedOutcomes(res.Outcomes))
	}
	if res.Schedules != 16 {
		t.Errorf("Schedules = %d, want 16 (8 per GOMAXPROCS value)", res.Schedules)
	}
	if got := res.Decisions; got != 0 {
		t.Errorf("MergeAll-only scenario recorded %d decisions, want 0", got)
	}
}

// TestAnyOrderReplayCheck runs the MergeAny fixture under the random walk
// with the replay cross-check on: every outcome must be reproducible by
// forcing its recorded MergeScript through the production replay path.
func TestAnyOrderReplayCheck(t *testing.T) {
	st := stats.NewCounters()
	res, err := Run(AnyOrder(), Options{Schedules: 12, Seed: 7, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	if st.Get("replay_check") == 0 {
		t.Error("replay cross-check never ran")
	}
	if len(res.Outcomes) < 2 {
		t.Errorf("random walk over 6 pick orders found %d outcomes, want ≥2", len(res.Outcomes))
	}
}

// TestStallWatchdog plants a child that blocks forever; the
// bounded-progress watchdog must classify the schedule as a stall rather
// than hang the exploration. The wedged goroutine is deliberately leaked.
func TestStallWatchdog(t *testing.T) {
	block := make(chan struct{})
	sc := Scenario{
		Name: "wedge",
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
					<-block // never closes: a lost wakeup
					return nil
				}, data[0])
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{cnt}
		},
	}
	res, err := Run(sc, Options{Schedules: 1, StallTimeout: 300 * time.Millisecond, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Violations[0].Kind != KindStall {
		t.Fatalf("violations = %v, want one %s", res.Violations, KindStall)
	}
	close(block) // release the leaked goroutine after the verdict
}

// TestOpaqueScenarioCountsRuns pins the detcheck compatibility contract:
// an Opaque scenario runs exactly Schedules times (no baseline run is
// added) and populates the outcome census.
func TestOpaqueScenarioCountsRuns(t *testing.T) {
	runs := 0
	sc := Opaque("opaque", func() (uint64, error) {
		runs++
		return uint64(runs % 2), nil
	})
	res, err := Run(sc, Options{Schedules: 10})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 10 || res.Schedules != 10 {
		t.Errorf("runs = %d, Schedules = %d, want 10 and 10", runs, res.Schedules)
	}
	if len(res.Outcomes) != 2 {
		t.Errorf("outcomes = %v, want two", res.Outcomes)
	}
}

// TestSourceForcedReplayAndBudget covers the decision stream's contract:
// per-site FIFO replay, default extension, and the budget tripwire.
func TestSourceForcedReplayAndBudget(t *testing.T) {
	forced := Trace{
		{Site: "a", N: 3, Pick: 2},
		{Site: "b", N: 2, Pick: 1},
		{Site: "a", N: 3, Pick: 1},
	}
	src := newSource(forced, nil, 5)
	// Sites interleave differently than recorded; per-site order holds.
	if got := src.Choose("b", 2); got != 1 {
		t.Errorf("b first = %d, want 1", got)
	}
	if got := src.Choose("a", 3); got != 2 {
		t.Errorf("a first = %d, want 2", got)
	}
	if got := src.Choose("a", 3); got != 1 {
		t.Errorf("a second = %d, want 1", got)
	}
	if got := src.Choose("a", 3); got != 0 {
		t.Errorf("a past the forced queue = %d, want default 0", got)
	}
	if got := src.Choose("c", 1); got != 0 {
		t.Errorf("single-alternative site = %d, want 0", got)
	}
	tr, over := src.snapshot()
	if len(tr) != 4 || over {
		t.Fatalf("trace len = %d over = %v, want 4 false", len(tr), over)
	}
	src.Choose("d", 2)
	src.Choose("d", 2) // budget of 5 exhausted here
	if _, over := src.snapshot(); !over {
		t.Error("budget overrun not flagged")
	}
}

// TestSeedFileRoundTrip exercises the seed file format both ways.
func TestSeedFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := Trace{
		{Site: "merge:r", N: 3, Pick: 2},
		{Site: "fault.write:n0:00000000deadbeef", N: 3, Pick: 1},
	}
	path, err := persistSeed(dir, "any order", "determinism", 0, tr)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := ReadSeedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if seed.Scenario != "any order" || seed.Kind != "determinism" {
		t.Errorf("header = %q/%q", seed.Scenario, seed.Kind)
	}
	if len(seed.Trace) != 2 || seed.Trace[0] != tr[0] || seed.Trace[1] != tr[1] {
		t.Errorf("trace round-trip mismatch: %v", seed.Trace)
	}
	if _, err := ReadSeedFile(path + "-missing"); err == nil {
		t.Error("reading a missing seed succeeded")
	}
}

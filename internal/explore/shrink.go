package explore

import "repro/internal/stats"

// shrink delta-debugs a failing decision trace to a locally minimal one:
// the returned trace still satisfies fails, and removing any single
// decision (or lowering any pick) from it no longer would — within the
// re-run budget. The algorithm is ddmin-style chunk removal, refined by
// per-decision pick lowering (a lower pick is a "smaller" choice: 0 is
// the default alternative), finished by trimming trailing defaults —
// which is free, because an absent trailing decision falls back to the
// same default pick the trace would have forced.
func shrink(tr Trace, fails func(Trace) bool, budget int, counters *stats.Counters) Trace {
	best := tr.clone()
	tries := 0
	attempt := func(cand Trace) bool {
		if tries >= budget {
			return false
		}
		tries++
		counters.Inc("shrink_try")
		if fails(cand) {
			best = cand.clone()
			return true
		}
		return false
	}

	// Phase 1: ddmin chunk removal. Try dropping ever-smaller chunks
	// until no chunk of any size can go.
	for chunk := (len(best) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(best); {
			cand := make(Trace, 0, len(best)-chunk)
			cand = append(cand, best[:start]...)
			cand = append(cand, best[start+chunk:]...)
			if attempt(cand) {
				removed = true
				// best changed; retry the same start against the new best.
			} else {
				start += chunk
			}
			if tries >= budget {
				break
			}
		}
		if !removed || chunk > len(best) {
			chunk /= 2
		}
		if tries >= budget {
			break
		}
	}

	// Phase 2: lower each surviving pick toward the default.
	for i := 0; i < len(best); i++ {
		for best[i].Pick > 0 {
			cand := best.clone()
			cand[i].Pick--
			if !attempt(cand) {
				break
			}
		}
		if tries >= budget {
			break
		}
	}

	// Phase 3: trailing defaults cost nothing — drop them without
	// re-checking (an exhausted forced queue answers the default anyway).
	for len(best) > 0 && best[len(best)-1].Pick == 0 {
		best = best[:len(best)-1]
	}
	return best
}

package explore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/journal"
	"repro/internal/mergeable"
	"repro/internal/stats"
)

// CrashCheck configures crash-point exploration: each explored schedule is
// re-run journaled, killed at byte boundaries spread across its WAL +
// checkpoint write stream (journal.CrashWriter), and resumed — recovery
// must succeed from every crash point, the sealed journal must verify,
// and for Deterministic scenarios the resumed outcome must equal the live
// schedule's fingerprint. Non-deterministic scenarios get the weaker
// guarantee recovery actually provides: the journaled prefix is re-traced
// exactly, but fresh picks past the crash point are the resumed run's own,
// so only success and seal integrity are asserted.
type CrashCheck struct {
	// Encode / Decode carry structures across the disk boundary — the
	// same contract as journal.Options (dist.EncodeSnapshot /
	// dist.DecodeSnapshot satisfy them; the repro facade wires that in).
	Encode func(m mergeable.Mergeable) (codec string, data []byte, err error)
	Decode func(codec string, data []byte) (mergeable.Mergeable, error)
	// Points is how many crash boundaries are swept per schedule,
	// spread evenly over the reference run's byte total; default 3.
	Points int
	// Dir is the scratch directory for journal dirs; empty means the OS
	// temp dir.
	Dir string
	// CheckpointEvery is passed through to the journal; zero keeps the
	// journal's default cadence.
	CheckpointEvery int
	// SegmentBytes is the journal's WAL rotation threshold: a small value
	// forces segment rotation (and old-segment reclaim) inside the crash
	// sweep, so tears land on segment boundaries, fresh anchors and
	// half-written rotations too. Zero keeps a single unbounded segment.
	SegmentBytes int64
	// RetainCheckpoints prunes the crash journals' checkpoint files down
	// to the newest N after each new checkpoint; zero keeps every one.
	RetainCheckpoints int
	// Stats, when non-nil, receives the journals' counters (rotation,
	// reclaim and pruning live under "compaction.*") aggregated across
	// every journaled run of the sweep.
	Stats *stats.Counters
}

// countWriter measures a reference run's total journal bytes so crash
// budgets can be spread across real write boundaries.
type countWriter struct{ n atomic.Int64 }

func (c *countWriter) wrap(w io.Writer) io.Writer { return &countProxy{c: c, w: w} }

type countProxy struct {
	c *countWriter
	w io.Writer
}

func (p *countProxy) Write(b []byte) (int, error) {
	n, err := p.w.Write(b)
	p.c.n.Add(int64(n))
	return n, err
}

// journalOpts builds one journaled run's options: the schedule's decision
// trace drives fresh picks (journaled picks take precedence on resume)
// and the source keeps pulsing the watchdog.
func (cc *CrashCheck) journalOpts(env *Env, wrap func(io.Writer) io.Writer) journal.Options {
	return journal.Options{
		Encode:            cc.Encode,
		Decode:            cc.Decode,
		CheckpointEvery:   cc.CheckpointEvery,
		SegmentBytes:      cc.SegmentBytes,
		RetainCheckpoints: cc.RetainCheckpoints,
		History:           env.history,
		Stats:             cc.Stats,
		WrapWriter:        wrap,
		Choose:            env.chooser,
		Jitter:            env.src.pulse,
	}
}

// crashCheck holds one schedule to crash-resume equivalence. It returns
// the first violation found, or nil.
func crashCheck(sc Scenario, opts Options, out schedOut) *Violation {
	cc := opts.Crash
	bad := func(detail string, err error) *Violation {
		return &Violation{Kind: KindCrash, Detail: detail, Err: err}
	}

	// Reference journaled run: same decision trace, no crash. Its byte
	// total defines the crash boundaries, and its outcome must already
	// match the live schedule — if journaling alone perturbs the result,
	// crashing is beside the point.
	refDir, err := os.MkdirTemp(cc.Dir, "explore-journal-*")
	if err != nil {
		return bad("cannot create journal scratch dir", err)
	}
	defer os.RemoveAll(refDir)
	cw := &countWriter{}
	env := &Env{src: newSource(out.trace, nil, opts.MaxDecisions)}
	fn, data := sc.Build(env)
	runErr := journal.Run(refDir, cc.journalOpts(env, cw.wrap), fn, data...)
	env.runDeferred()
	if runErr != nil {
		return bad("journaled reference run failed", runErr)
	}
	if fp := fingerprintOf(sc, data); fp != out.fp {
		return bad(fmt.Sprintf("journaled reference run gave %016x, live schedule gave %016x", fp, out.fp), nil)
	}
	total := cw.n.Load()
	if total < 2 {
		return nil // nothing to tear
	}

	points := cc.Points
	for i := 1; i <= points; i++ {
		budget := total * int64(i) / int64(points+1)
		if budget < 1 {
			budget = 1
		}
		if budget > total-1 {
			budget = total - 1
		}
		if v := crashAt(sc, opts, out, budget); v != nil {
			return v
		}
	}
	return nil
}

// crashAt runs the schedule journaled with a byte-budget crash, resumes,
// and checks the recovered outcome.
func crashAt(sc Scenario, opts Options, out schedOut, budget int64) *Violation {
	cc := opts.Crash
	bad := func(detail string, err error) *Violation {
		return &Violation{Kind: KindCrash, Detail: detail, Err: err}
	}
	dir, err := os.MkdirTemp(cc.Dir, "explore-crash-*")
	if err != nil {
		return bad("cannot create journal scratch dir", err)
	}
	defer os.RemoveAll(dir)

	crasher := journal.NewCrashWriter(budget)
	env := &Env{src: newSource(out.trace, nil, opts.MaxDecisions)}
	fn, data := sc.Build(env)
	runErr := journal.Run(dir, cc.journalOpts(env, crasher.Wrap), fn, data...)
	env.runDeferred()
	_ = runErr // the crashed run is supposed to fail; recovery is the test
	if !crasher.Crashed() && runErr != nil {
		return bad(fmt.Sprintf("journaled run failed before the crash budget (%d bytes) was reached", budget), runErr)
	}

	renv := &Env{src: newSource(out.trace, nil, opts.MaxDecisions)}
	rfn, _ := sc.Build(renv)
	rdata, rerr := journal.Resume(dir, cc.journalOpts(renv, nil), rfn)
	renv.runDeferred()
	if errors.Is(rerr, journal.ErrNoRun) {
		// The crash landed before the inputs record was durable: nothing
		// ever started, and recovery saying so is the correct answer — the
		// caller re-runs from scratch.
		return nil
	}
	if rerr != nil {
		return bad(fmt.Sprintf("resume after crash at byte %d failed", budget), rerr)
	}
	if sc.Deterministic {
		if fp := fingerprintOf(sc, rdata); fp != out.fp {
			return &Violation{
				Kind:        KindCrash,
				Detail:      fmt.Sprintf("resume after crash at byte %d gave %016x, live schedule gave %016x", budget, fp, out.fp),
				Fingerprint: fp,
				Want:        out.fp,
			}
		}
	}
	if verr := journal.Verify(dir); verr != nil {
		return bad(fmt.Sprintf("journal does not verify after resume from crash at byte %d", budget), verr)
	}
	return nil
}

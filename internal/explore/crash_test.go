package explore

import (
	"testing"

	"repro/internal/dist"
)

// TestCrashExploration sweeps injected crash points over every explored
// schedule of the checkpointing fixture: each journaled run is torn at a
// byte boundary, resumed, fingerprint-checked against the live schedule
// and its sealed journal re-verified.
func TestCrashExploration(t *testing.T) {
	st := newTestCounters()
	res, err := Run(Fanout(), Options{
		Schedules: 2,
		Crash: &CrashCheck{
			Encode: dist.EncodeSnapshot,
			Decode: dist.DecodeSnapshot,
			Points: 3,
			Dir:    t.TempDir(),
		},
		Stats: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	if st.Get("crash_check") == 0 {
		t.Error("crash check never ran")
	}
}

// TestCrashExplorationMergeAny covers the weaker non-deterministic
// contract: resume after a crash must succeed and verify for MergeAny
// schedules too, even though the resumed tail may pick differently.
func TestCrashExplorationMergeAny(t *testing.T) {
	res, err := Run(AnyOrder(), Options{
		Schedules: 4,
		Seed:      3,
		Crash: &CrashCheck{
			Encode: dist.EncodeSnapshot,
			Decode: dist.DecodeSnapshot,
			Points: 2,
			Dir:    t.TempDir(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
}

// TestCrashCheckMisconfiguration pins the configuration errors.
func TestCrashCheckMisconfiguration(t *testing.T) {
	if _, err := Run(Fanout(), Options{Crash: &CrashCheck{}}); err == nil {
		t.Error("CrashCheck without codecs was accepted")
	}
	sc := Opaque("op", func() (uint64, error) { return 0, nil })
	if _, err := Run(sc, Options{Crash: &CrashCheck{Encode: dist.EncodeSnapshot, Decode: dist.DecodeSnapshot}}); err == nil {
		t.Error("crash exploration of an Opaque scenario was accepted")
	}
}

package explore

import "math/rand"

// Strategy selects how the explorer walks the schedule space.
type Strategy int

const (
	// RandomWalk answers every decision from a seeded random stream — a
	// different stream per schedule. It samples the schedule space
	// uniformly-ish and scales to arbitrarily deep programs; it is the
	// strategy the determinism checker (internal/detcheck) rides on.
	RandomWalk Strategy = iota
	// Exhaustive performs bounded-exhaustive depth-first search over the
	// decision tree: the first schedule takes every default, and each
	// recorded decision point spawns one branch per untried alternative
	// (prefix replayed, alternative forced, defaults beyond). Within the
	// schedule budget it enumerates every reachable combination of
	// MergeAny pick orders, fault-injection sites and crash points.
	Exhaustive
)

func (s Strategy) String() string {
	switch s {
	case RandomWalk:
		return "random"
	case Exhaustive:
		return "exhaustive"
	}
	return "unknown"
}

// strategyState generates one Source per schedule and learns from the
// executed traces.
type strategyState interface {
	// next returns the next schedule's decision source, or ok=false when
	// the strategy has exhausted its space.
	next(maxDecisions int) (src *Source, ok bool)
	// observe feeds back a schedule's executed source so the strategy can
	// expand its frontier.
	observe(src *Source)
}

// randomWalk derives one fresh seeded stream per schedule.
type randomWalk struct {
	seed int64
	n    int64
}

func (r *randomWalk) next(maxDecisions int) (*Source, bool) {
	r.n++
	mixed := r.seed ^ int64(uint64(r.n)*0x9E3779B97F4A7C15)
	return newSource(nil, rand.New(rand.NewSource(mixed)), maxDecisions), true
}

func (r *randomWalk) observe(*Source) {}

// exhaustive is the DFS frontier: a stack of forced prefixes. Popping the
// most recently pushed prefix first makes the walk depth-first, so long
// schedules are fully resolved before the search backtracks.
type exhaustive struct {
	stack []Trace
}

func newExhaustive() *exhaustive { return &exhaustive{stack: []Trace{nil}} }

func (e *exhaustive) next(maxDecisions int) (*Source, bool) {
	if len(e.stack) == 0 {
		return nil, false
	}
	p := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	return newSource(p, nil, maxDecisions), true
}

func (e *exhaustive) observe(src *Source) {
	trace, over := src.snapshot()
	if over {
		// The schedule hit the decision budget; its tail is truncated, so
		// expanding it would enumerate a lie. The prefix alternatives were
		// already pushed by the run that discovered them.
		return
	}
	for i := src.forcedLen; i < len(trace); i++ {
		d := trace[i]
		for pick := d.Pick + 1; pick < d.N; pick++ {
			alt := trace[:i].clone()
			alt = append(alt, Decision{Site: d.Site, N: d.N, Pick: pick})
			e.stack = append(e.stack, alt)
		}
	}
}

func newStrategyState(s Strategy, seed int64) strategyState {
	if s == Exhaustive {
		return newExhaustive()
	}
	return &randomWalk{seed: seed}
}

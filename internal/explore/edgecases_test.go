package explore

import (
	"testing"

	"repro/internal/stats"
)

func newTestCounters() *stats.Counters { return stats.NewCounters() }

// TestAbortRacingSyncDeterministic explores every abort-victim choice
// exhaustively across a GOMAXPROCS sweep: wherever the Abort flag lands
// relative to the victim's Syncs, exactly one worker's effects must be
// discarded, so the committed-increment count is schedule-invariant.
func TestAbortRacingSyncDeterministic(t *testing.T) {
	res, err := Run(AbortSync(), Options{
		Strategy:  Exhaustive,
		Schedules: 50,
		Procs:     []int{1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	// Three victims per pass, two passes.
	if res.Schedules != 6 {
		t.Errorf("Schedules = %d, want 6", res.Schedules)
	}
	if !res.Exhausted {
		t.Error("abort space not exhausted")
	}
	if len(res.Outcomes) != 1 {
		t.Errorf("abort outcomes = %v, want exactly one (6 = two surviving workers × three increments)", sortedOutcomes(res.Outcomes))
	}
	for fp := range res.Outcomes {
		if fp != 6 {
			t.Errorf("outcome fingerprint = %d, want 6 committed increments", fp)
		}
	}
}

// TestMergeAnyFromSetOverlapExhaustive drives the duplicate/overlap
// fixture through the exhaustive strategy. The first call's duplicates
// collapse to two candidates; when the first winner overlaps the second
// set, the single survivor is no decision point at all — so the whole
// space is exactly three schedules.
func TestMergeAnyFromSetOverlapExhaustive(t *testing.T) {
	res, err := Run(OverlapAny(), Options{Strategy: Exhaustive, Schedules: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	if res.Schedules != 3 {
		t.Errorf("Schedules = %d, want 3 (a→b, a→c, b→c)", res.Schedules)
	}
	if !res.Exhausted {
		t.Error("overlap space not exhausted")
	}
	if len(res.Outcomes) < 2 {
		t.Errorf("overlap outcomes = %v, want the merge order to show", sortedOutcomes(res.Outcomes))
	}
}

// TestChaosDecisionDriven runs the distributed scenario with every
// faultnet decision wired to the decision stream: the healthy baseline
// plus random fault schedules must either converge to the baseline
// fingerprint or die as tolerated lost runs — never diverge.
func TestChaosDecisionDriven(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed chaos exploration is not short")
	}
	st := stats.NewCounters()
	res, err := Run(Chaos(), Options{Schedules: 6, Seed: 11, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	if res.Schedules != 6 {
		t.Errorf("Schedules = %d, want 6", res.Schedules)
	}
	if len(res.Outcomes) > 1 {
		t.Errorf("chaos outcomes diverged: %v", sortedOutcomes(res.Outcomes))
	}
	if res.Decisions == 0 {
		t.Error("no fault decisions recorded — the decider is not wired")
	}
}

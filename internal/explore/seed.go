package explore

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Seed files are the explorer's portable counterexamples: a small text
// file holding a scenario name, a violation kind and a decision trace.
// The format is line-oriented so a failing seed reads in a CI log or a
// bug report as-is:
//
//	explore-seed v1
//	scenario: mergeany-fanout
//	kind: determinism
//	decision: merge:r 3 2
//	decision: merge:r 2 1
//
// Decision lines are "decision: <site> <n> <pick>"; sites never contain
// spaces (task paths are r/0/2..., fault sites fault.write:n0:...).

const seedMagic = "explore-seed v1"

// Seed is a parsed seed file.
type Seed struct {
	Scenario string
	Kind     string
	Trace    Trace
}

// WriteSeedFile persists a trace as a seed file at path.
func WriteSeedFile(path, scenario, kind string, tr Trace) error {
	var sb strings.Builder
	sb.WriteString(seedMagic + "\n")
	fmt.Fprintf(&sb, "scenario: %s\n", scenario)
	fmt.Fprintf(&sb, "kind: %s\n", kind)
	for _, d := range tr {
		fmt.Fprintf(&sb, "decision: %s %d %d\n", d.Site, d.N, d.Pick)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("explore: write seed: %w", err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("explore: write seed: %w", err)
	}
	return nil
}

// ReadSeedFile parses a seed file.
func ReadSeedFile(path string) (*Seed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("explore: read seed: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != seedMagic {
		return nil, fmt.Errorf("explore: %s is not a seed file (want %q header)", path, seedMagic)
	}
	seed := &Seed{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, val, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("explore: %s:%d: malformed line %q", path, line, text)
		}
		val = strings.TrimSpace(val)
		switch key {
		case "scenario":
			seed.Scenario = val
		case "kind":
			seed.Kind = val
		case "decision":
			fields := strings.Fields(val)
			if len(fields) != 3 {
				return nil, fmt.Errorf("explore: %s:%d: decision wants \"<site> <n> <pick>\", got %q", path, line, val)
			}
			var d Decision
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &d.N, &d.Pick); err != nil {
				return nil, fmt.Errorf("explore: %s:%d: bad decision numbers %q: %v", path, line, val, err)
			}
			d.Site = fields[0]
			if d.N < 2 || d.Pick < 0 || d.Pick >= d.N {
				return nil, fmt.Errorf("explore: %s:%d: decision %q out of range", path, line, val)
			}
			seed.Trace = append(seed.Trace, d)
		default:
			return nil, fmt.Errorf("explore: %s:%d: unknown key %q", path, line, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("explore: read seed: %w", err)
	}
	if seed.Scenario == "" {
		return nil, fmt.Errorf("explore: %s: missing scenario line", path)
	}
	return seed, nil
}

// ReplaySeed re-runs a persisted counterexample: it reads the seed file,
// replays its trace into sc (which must match the seed's scenario name)
// and re-evaluates the invariants, returning the reproduced violation or
// nil if the seed no longer fails.
func ReplaySeed(path string, sc Scenario, opts Options) (*Violation, error) {
	seed, err := ReadSeedFile(path)
	if err != nil {
		return nil, err
	}
	if seed.Scenario != sc.Name {
		return nil, fmt.Errorf("explore: seed %s is for scenario %q, not %q", path, seed.Scenario, sc.Name)
	}
	return ReplayTrace(sc, seed.Trace, opts)
}

// persistSeed writes a violation's trace under dir with a collision-free
// deterministic name.
func persistSeed(dir, scenario, kind string, ordinal int, tr Trace) (string, error) {
	name := fmt.Sprintf("%s-%s-%03d.seed", sanitize(scenario), kind, ordinal)
	path := filepath.Join(dir, name)
	if err := WriteSeedFile(path, scenario, kind, tr); err != nil {
		return "", err
	}
	return path, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

package explore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/collab"
	"repro/internal/dist"
	"repro/internal/faultnet"
	"repro/internal/memnet"
	"repro/internal/mergeable"
	"repro/internal/task"
)

// Built-in scenarios: small Spawn & Merge programs that each pin one of
// the paper's claims under exploration. cmd/explore runs them by name;
// the package tests use them as fixtures.

func init() {
	// The chaos scenario's structures cross node (and crash) boundaries.
	dist.RegisterListCodec[int]("explore-list-int")
	dist.RegisterRegisterCodec[int]("explore-reg-int")
	for i, delta := range []int64{100, 200, 300} {
		node, d := i, delta
		dist.RegisterFunc(fmt.Sprintf("explore-chaos-%d", node), func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.List[int]).Insert(0, node+1)
			data[1].(*mergeable.Counter).Add(d)
			return nil
		})
	}
	// The compact scenario's structures cross the crash boundary.
	dist.RegisterMapCodec[int, int]("explore-map-int-int")
	// The churn scenario's workload: one registered function per task
	// slot, its effect a pure function of the slot — never of the node
	// that happens to host it — so any placement, failover or rebalance
	// must converge on one fingerprint.
	for slot := 0; slot < churnWaves*churnTasksPerWave; slot++ {
		s := slot
		dist.RegisterFunc(fmt.Sprintf("explore-churn-%d", s), func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.List[int]).Append(s)
			data[1].(*mergeable.Counter).Add(1 << uint(s))
			return nil
		})
	}
}

// Fanout is the determinism workhorse: three rounds of three children
// each, all merged with MergeAll, so the paper demands one bit-identical
// outcome on every goroutine interleaving and every GOMAXPROCS. Multiple
// root merges also make it the crash-exploration fixture (checkpoints
// land on the root-merge cadence).
func Fanout() Scenario {
	return Scenario{
		Name:          "fanout",
		Deterministic: true,
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for round := 0; round < 3; round++ {
					for child := 0; child < 3; child++ {
						r, c := round, child
						ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
							data[0].(*mergeable.List[int]).Append(r*10 + c)
							data[1].(*mergeable.Counter).Inc()
							return nil
						}, data[0], data[1])
					}
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// AnyOrder drains a three-child fan-out with successive MergeAny calls,
// so the merge order — and with it the list contents — is exactly the
// explorer's pick sequence: 3×2×1 = 6 schedules, six distinct outcomes,
// each of which must survive the replay cross-check (the recorded
// MergeScript re-run through the production replay path).
func AnyOrder() Scenario {
	return Scenario{
		Name: "anyorder",
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for i := 0; i < 3; i++ {
					id := i
					ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
						data[0].(*mergeable.List[int]).Append(id)
						return nil
					}, data[0])
				}
				for i := 0; i < 3; i++ {
					if _, err := ctx.MergeAny(); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list}
		},
	}
}

// AbortSync races Abort against Sync: every worker checkpoints through
// Sync three times while the root aborts one of them — which one, the
// decision stream picks — and whether the flag lands before the victim's
// first Sync, mid-loop, or after its body finished is up to the goroutine
// schedule. The paper's abort contract makes the outcome deterministic
// anyway: exactly the victim's effects are discarded, wherever the abort
// landed, so the surviving operation count is the fingerprint.
func AbortSync() Scenario {
	return Scenario{
		Name:          "abortsync",
		Deterministic: true,
		// Only the counter is the observable outcome: the list's contents
		// name the surviving workers (they differ by victim), the count of
		// committed increments must not (always two workers × three).
		Fingerprint: func(data []mergeable.Mergeable) uint64 {
			return uint64(data[1].(*mergeable.Counter).Value())
		},
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				var workers []*task.Task
				for i := 0; i < 3; i++ {
					id := i
					workers = append(workers, ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
						for round := 0; round < 3; round++ {
							data[0].(*mergeable.List[int]).Append(id*10 + round)
							data[1].(*mergeable.Counter).Inc()
							if err := ctx.Sync(); err != nil {
								return nil // aborted mid-loop: bow out
							}
						}
						return nil
					}, data[0], data[1]))
				}
				victim := env.Decide("abort.victim", len(workers))
				workers[victim].Abort()
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// OverlapAny exercises MergeAnyFromSet with duplicate and overlapping
// candidate sets: the first call lists two children twice over, the
// second call's set overlaps the first winner (leaving one live
// candidate, which is not a decision point at all), and a final MergeAll
// collects whatever survived.
func OverlapAny() Scenario {
	return Scenario{
		Name: "overlapany",
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				var kids []*task.Task
				for i := 0; i < 3; i++ {
					id := i
					kids = append(kids, ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
						data[0].(*mergeable.List[int]).Append(id)
						return nil
					}, data[0]))
				}
				a, b, c := kids[0], kids[1], kids[2]
				if _, err := ctx.MergeAnyFromSet([]*task.Task{a, b, a, b}); err != nil {
					return err
				}
				if _, err := ctx.MergeAnyFromSet([]*task.Task{b, c}); err != nil {
					return err
				}
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{list}
		},
	}
}

// Chaos runs the three-node distributed workload on a faultnet transport
// whose every fault decision — drop, reset, dial failure — comes from the
// decision stream instead of the seeded probabilistic draws. The healthy
// all-default schedule anchors the fingerprint; schedules that force
// faults must either recover to the same outcome (retries, failover) or
// die with an injected-fault error, which the scenario tolerates as a
// lost run. Latency injection is off by construction (deciders disable
// it), heartbeats are off by configuration, so the protocol byte stream —
// and with it the decision trace — stays schedule-deterministic.
func Chaos() Scenario {
	return Scenario{
		Name:          "chaos",
		Deterministic: true,
		TolerateError: func(err error) bool { return err != nil },
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			fnet := faultnet.New(faultnet.Config{Decider: env.Decide})
			cluster := dist.NewClusterWith(dist.Options{
				Nodes:             3,
				SendTimeout:       time.Second,
				RecvTimeout:       time.Second,
				HeartbeatInterval: -1,
				Retry:             dist.RetryPolicy{MaxAttempts: 4},
				Listen:            func(node int) dist.Listener { return fnet.Listen(node, 64) },
			})
			env.Defer(cluster.Close)
			list := mergeable.NewList(0)
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for i := 0; i < 3; i++ {
					cluster.SpawnRemote(ctx, i, fmt.Sprintf("explore-chaos-%d", i), data[0], data[1])
				}
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// Churn scenario sizing: waves of remote work interleaved with
// membership transitions. Every task slot's effect is a pure function of
// the slot number, so any placement the explorer picks must converge on
// the one fingerprint.
const (
	churnWaves        = 3
	churnTasksPerWave = 2
)

// churnEligible lists members that may be drained, removed or killed
// while keeping the cluster placeable: active and not already killed.
// Victim actions run only when two or more remain, so at least one
// live, undrained member always survives to host the wave's tasks.
func churnEligible(cluster *dist.Cluster, killed map[int]bool) []int {
	var out []int
	for _, m := range cluster.Members() {
		if m.State == dist.StateActive && !killed[m.Node] {
			out = append(out, m.Node)
		}
	}
	return out
}

// churnTargets lists spawn targets: every active member, including
// killed ones — requesting a dead member is legal and exercises the
// failover path, which must land on the same outcome.
func churnTargets(cluster *dist.Cluster) []int {
	var out []int
	for _, m := range cluster.Members() {
		if m.State == dist.StateActive {
			out = append(out, m.Node)
		}
	}
	return out
}

// Churn is the elastic-membership scenario: every wave the decision
// stream picks a membership transition (none, join, drain, leave, kill)
// and a victim, places two remote tasks on explored targets — dead
// members included — and may start a late drain while the wave's tasks
// are still in flight, racing rebalancing against the merge. The
// workload is MergeAll-only and slot-addressed, so the paper's
// determinism claim extends verbatim: every join/leave/drain/kill
// schedule must produce the one bit-identical fingerprint.
func Churn() Scenario {
	return Scenario{
		Name:          "churn",
		Deterministic: true,
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			cluster := dist.NewClusterWith(dist.Options{
				Nodes:             2,
				SendTimeout:       time.Second,
				RecvTimeout:       time.Second,
				HeartbeatInterval: -1,
				Retry:             dist.RetryPolicy{MaxAttempts: 6},
			})
			env.Defer(cluster.Close)
			killed := make(map[int]bool)
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for wave := 0; wave < churnWaves; wave++ {
					// Membership transition for this wave. Victim actions are
					// offered only while a second placeable member exists.
					eligible := churnEligible(cluster, killed)
					actions := 2 // none, join
					if len(eligible) >= 2 {
						actions = 5 // + drain, leave, kill
					}
					switch env.Decide(fmt.Sprintf("churn.w%d.action", wave), actions) {
					case 1:
						if _, err := cluster.Join(); err != nil {
							return err
						}
					case 2:
						victim := eligible[env.Decide(fmt.Sprintf("churn.w%d.victim", wave), len(eligible))]
						if err := cluster.Drain(victim); err != nil {
							return err
						}
					case 3:
						victim := eligible[env.Decide(fmt.Sprintf("churn.w%d.victim", wave), len(eligible))]
						if err := cluster.Leave(victim); err != nil {
							return err
						}
					case 4:
						victim := eligible[env.Decide(fmt.Sprintf("churn.w%d.victim", wave), len(eligible))]
						cluster.KillNode(victim)
						killed[victim] = true
					}
					// The wave's work, on explored placements.
					for tk := 0; tk < churnTasksPerWave; tk++ {
						slot := wave*churnTasksPerWave + tk
						targets := churnTargets(cluster)
						target := targets[env.Decide(fmt.Sprintf("churn.w%d.t%d.target", wave, tk), len(targets))]
						cluster.SpawnRemote(ctx, target, fmt.Sprintf("explore-churn-%d", slot), data[0], data[1])
					}
					// A late drain races rebalancing against the merge: the
					// tasks just spawned may still be in flight on the victim.
					if late := churnEligible(cluster, killed); len(late) >= 2 &&
						env.Decide(fmt.Sprintf("churn.w%d.late", wave), 2) == 1 {
						if err := cluster.Drain(late[0]); err != nil {
							return err
						}
					}
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// sessionWaitDetach blocks until the server has registered one more
// detach than base — the decision path needs the detach on the books
// before pumping the logical clock, or the eviction it expects would
// race the server's notice of the dead socket.
func sessionWaitDetach(srv *collab.Server, base int64) error {
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Get("detached") <= base {
		if time.Now().After(deadline) {
			return errors.New("session: detach was never observed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// Session explores the collaborative front door's session churn: after
// each of client A's edits the decision stream picks continue, a
// drop+resume, a drop left idle until B's traffic evicts the session
// (then a fresh HELLO), or a lost-ack retransmit through the replay
// window. Client B spends a fixed total edit budget — partly pumped as
// eviction traffic, the rest at the end — so every decision path
// produces the same marker multiset, which (with the exact edit counter)
// is the deterministic fingerprint: 4³ = 64 schedules, one outcome.
// Exactly-once across every churn combination is the property under
// test — a lost or double-applied edit on any path splits the
// fingerprint.
func Session() Scenario {
	return Scenario{
		Name:          "session",
		Deterministic: true,
		Fingerprint: func(data []mergeable.Mergeable) uint64 {
			doc := data[0].(*mergeable.Text).String()
			edits := data[1].(*mergeable.Counter).Value()
			return collab.CanonicalFingerprint(doc) ^ uint64(edits)*0x9E3779B97F4A7C15
		},
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			finalDoc := mergeable.NewText("")
			finalEdits := mergeable.NewCounter(0)
			l := memnet.Listen(16)
			srv := collab.ServeWith(l, "", collab.Options{
				Seed:      1,
				Admission: collab.Admission{IdleTicks: 3, IdleJitter: 2},
			})
			env.Defer(func() { l.Close(); srv.Wait() })

			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				opts := collab.ClientOptions{
					RequestTimeout: 10 * time.Second,
					NoAutoResume:   true, // churn is explicit; nothing may hide behind retries
				}
				a, err := collab.DialWith(l, opts)
				if err != nil {
					return err
				}
				defer a.Close()
				b, err := collab.DialWith(l, opts)
				if err != nil {
					return err
				}
				defer b.Close()

				const bBudget = 18
				bNext := 0
				pumpB := func(n int) error {
					for ; n > 0 && bNext < bBudget; n-- {
						if _, err := b.Insert(0, fmt.Sprintf("b%d;", bNext)); err != nil {
							return err
						}
						bNext++
					}
					return nil
				}

				for i := 0; i < 3; i++ {
					marker := fmt.Sprintf("a%d;", i)
					switch env.Decide(fmt.Sprintf("sess.a%d", i), 4) {
					case 0: // plain edit
						if _, err := a.Insert(0, marker); err != nil {
							return err
						}
					case 1: // transport dies after the ack; resume
						if _, err := a.Insert(0, marker); err != nil {
							return err
						}
						a.Drop()
						if err := a.Reconnect(); err != nil {
							return fmt.Errorf("session: resume after drop: %w", err)
						}
					case 2: // detach long enough for eviction; fresh session
						if _, err := a.Insert(0, marker); err != nil {
							return err
						}
						base := srv.Stats().Get("detached")
						a.Drop()
						if err := sessionWaitDetach(srv, base); err != nil {
							return err
						}
						if err := pumpB(6); err != nil { // 6 ticks > IdleTicks+jitter
							return err
						}
						if err := a.Reconnect(); !errors.Is(err, collab.ErrSessionExpired) {
							return fmt.Errorf("session: resume after eviction: err = %v, want ErrSessionExpired", err)
						}
						if err := a.NewSession(); err != nil {
							return err
						}
					case 3: // ack lost mid-flight; the replay window dedupes
						if err := a.BeginInsert(0, marker); err != nil {
							return err
						}
						a.Drop()
						if err := a.Reconnect(); err != nil {
							return fmt.Errorf("session: resume for dedup: %w", err)
						}
						if _, err := a.Finish(); err != nil {
							return err
						}
					}
				}
				if err := pumpB(bBudget); err != nil { // B's remaining budget
					return err
				}
				if err := a.Bye(); err != nil {
					return err
				}
				if err := b.Bye(); err != nil {
					return err
				}
				l.Close()
				if err := srv.Wait(); err != nil {
					return err
				}
				data[0].(*mergeable.Text).Insert(0, srv.Document())
				data[1].(*mergeable.Counter).Add(srv.Edits())
				return nil
			}
			return fn, []mergeable.Mergeable{finalDoc, finalEdits}
		},
	}
}

// Compact scenario sizing: two waves of two workers, so the schedule
// commits multiple root merges — the cadence checkpoints, WAL rotation
// and history trimming all key off.
const (
	compactWaves   = 2
	compactWorkers = 2
)

// compactHistory maps the explored GC decision to a history policy. Pick
// 0 — the benign default every other schedule inherits — is the
// production eager trim; the alternatives must all be observationally
// invisible.
func compactHistory(pick int) task.HistoryGC {
	switch pick {
	case 1:
		return task.HistoryGC{Disable: true}
	case 2:
		return task.HistoryGC{Slack: 2}
	case 3:
		return task.HistoryGC{Slack: 8}
	}
	return task.HistoryGC{}
}

// Compact turns PR 9's compaction machinery itself into a decision site:
// the first decision picks the history-GC policy (eager, off, slack 2,
// slack 8), and the schedule then crosses it with everything else the
// explorer steers — spawn fan-out, a mid-body Sync that pins the
// parent's history from a live child, an optional aborted sibling whose
// effects must vanish, and a MergeAny drain whose pick order is
// enumerated. All worker effects commute (counter bits, distinct map
// keys) and the root's non-commuting list appends are sequential, so the
// paper's claim extends to the knob: every GC choice × abort × drain ×
// pick-order combination must land on the one bit-identical fingerprint.
// Under crash exploration (Options.Crash with a small SegmentBytes) the
// same schedules additionally sweep WAL rotation and checkpoint pruning
// against kill points at every byte budget.
func Compact() Scenario {
	return Scenario{
		Name:          "compact",
		Deterministic: true,
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			env.SetHistory(compactHistory(env.Decide("compact.gc", 4)))
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			kv := mergeable.NewMap[int, int]()
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for wave := 0; wave < compactWaves; wave++ {
					// Root-local, non-commuting history: sequential appends
					// the GC must trim without changing what later merges
					// transform against.
					for k := 0; k < 4; k++ {
						data[0].(*mergeable.List[int]).Append(wave*10 + k)
					}
					// An explored abort: the doomed sibling parks in Sync (it
					// cannot outrun the flag — Sync blocks until the parent
					// merges), so its sentinel must be discarded wherever the
					// drain collects it.
					var doomed *task.Task
					if env.Decide(fmt.Sprintf("compact.w%d.abort", wave), 2) == 1 {
						doomed = ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
							data[0].(*mergeable.Counter).Add(1 << 40) // must never commit
							ctx.Sync()
							return nil
						}, data[1])
					}
					for w := 0; w < compactWorkers; w++ {
						slot := wave*compactWorkers + w
						syncs := w == 0
						ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
							data[0].(*mergeable.Counter).Add(1 << uint(slot))
							if syncs {
								// Pin the parent's history from a live child:
								// the trim watermark must respect the pin, and
								// the post-Sync tail rides to the next merge.
								if err := ctx.Sync(); err != nil {
									return nil // aborted externally: bow out
								}
							}
							data[1].(*mergeable.Map[int, int]).Set(slot, slot*3+1)
							return nil
						}, data[1], data[2])
					}
					if doomed != nil {
						doomed.Abort()
					}
					if env.Decide(fmt.Sprintf("compact.w%d.drain", wave), 2) == 1 {
						// Explored MergeAny order over commuting effects: any
						// pick sequence must land on the one fingerprint.
						for w := 0; w < compactWorkers; w++ {
							if _, err := ctx.MergeAny(); err != nil {
								return err
							}
						}
					}
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list, cnt, kv}
		},
	}
}

// shardNetBook retains the internal transport of every shard incarnation
// so the scenario can dial a shard host directly — the stale-owner write
// needs a connection that bypasses the router's own epoch bookkeeping.
type shardNetBook struct {
	mu   sync.Mutex
	nets map[int]collab.ListenDialer
}

// shardNet is the ShardedOptions.ShardNet hook: a fresh memnet per
// incarnation, recorded under the shard id (later incarnations replace
// earlier ones, matching what the router itself dials).
func (b *shardNetBook) shardNet(id int) collab.ListenDialer {
	ld := memnet.Listen(64)
	b.mu.Lock()
	if b.nets == nil {
		b.nets = make(map[int]collab.ListenDialer)
	}
	b.nets[id] = ld
	b.mu.Unlock()
	return ld
}

func (b *shardNetBook) dialer(id int) collab.ListenDialer {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nets[id]
}

// probeConn is one directly-dialed shard connection with its read side.
type probeConn struct {
	c net.Conn
	r *bufio.Reader
}

// shardProbe is the pre-handoff half of an in-flight write racing a
// handoff: one SHELLO'd connection per shard plus the epoch and routing
// table they were dialed under. After the handoff, fire sends a mutating
// APPLY stamped with that stale epoch to the old owner of a moved
// document.
type shardProbe struct {
	epoch uint64
	route map[string]int
	conns map[int]probeConn
}

// openShardProbe dials every current shard and completes the SHELLO
// handshake at the current epoch. Shards that cannot be dialed are
// skipped — fire treats a missing connection as a rejected write.
func openShardProbe(srv *collab.ShardedServer, book *shardNetBook) *shardProbe {
	p := &shardProbe{
		epoch: srv.Epoch(),
		route: make(map[string]int),
		conns: make(map[int]probeConn),
	}
	for _, name := range srv.Names() {
		p.route[name] = srv.RouteOf(name)
	}
	for _, id := range srv.ShardIDs() {
		ld := book.dialer(id)
		if ld == nil {
			continue
		}
		c, err := ld.Dial()
		if err != nil {
			continue
		}
		c.SetDeadline(time.Now().Add(5 * time.Second))
		r := bufio.NewReader(c)
		if _, err := fmt.Fprintf(c, "SHELLO %d\n", p.epoch); err != nil {
			c.Close()
			continue
		}
		line, err := r.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "OK ") {
			c.Close()
			continue
		}
		p.conns[id] = probeConn{c: c, r: r}
	}
	return p
}

// fire sends the stale write: one APPLY at the pre-handoff epoch for the
// first document the handoff moved (the first document at all when
// nothing moved), on the connection to its pre-handoff owner. It reports
// whether the shard ACCEPTED it — under the epoch fence every path must
// answer STALE or a dead transport, so a true return is exactly the
// planted stale-owner bug firing.
func (p *shardProbe) fire(srv *collab.ShardedServer) bool {
	names := srv.Names()
	target := names[0]
	for _, name := range names {
		if srv.RouteOf(name) != p.route[name] {
			target = name
			break
		}
	}
	pc, ok := p.conns[p.route[target]]
	if !ok {
		return false
	}
	pc.c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(pc.c, "APPLY ghost.1 %d %s INS 0 %s\n", p.epoch, target, strconv.Quote("ghost;")); err != nil {
		return false
	}
	line, err := pc.r.ReadString('\n')
	return err == nil && strings.HasPrefix(line, "OK ")
}

func (p *shardProbe) close() {
	for _, pc := range p.conns {
		pc.c.Close()
	}
}

// shardFingerprint reduces a sharded schedule to its outcome: the final
// documents (name=content records in sorted order), the exact cross-shard
// edit count, and the count of stale-owner writes any shard accepted —
// which must be zero everywhere the fence is on.
func shardFingerprint(data []mergeable.Mergeable) uint64 {
	doc := data[0].(*mergeable.Text).String()
	edits := data[1].(*mergeable.Counter).Value()
	stale := data[2].(*mergeable.Counter).Value()
	return collab.CanonicalFingerprint(doc) ^ uint64(edits)*0x9E3779B97F4A7C15 ^ uint64(stale)*0xBF58476D1CE4E5B9
}

// shardCollect shuts the service down and folds every document, the edit
// counter and the stale-accept counter into the schedule's mergeables.
func shardCollect(srv *collab.ShardedServer, data []mergeable.Mergeable) error {
	if err := srv.Shutdown(); err != nil {
		return err
	}
	var sb strings.Builder
	for _, name := range srv.Names() {
		doc, ok := srv.Document(name)
		if !ok {
			return fmt.Errorf("shard: lost document %q", name)
		}
		fmt.Fprintf(&sb, "%s=%s;", name, doc)
	}
	data[0].(*mergeable.Text).Insert(0, sb.String())
	data[1].(*mergeable.Counter).Add(srv.Edits())
	return nil
}

// Shard explores the sharded document service's membership machinery:
// the decision stream picks a membership change (none, a shard joining,
// a shard draining), where the handoff lands relative to the client's
// write waves, whether a write dialed before the handoff races it at the
// stale epoch, and whether a shard is SIGKILLed and resumed from its
// journal afterwards. Routed writes are handoff-transparent and the
// epoch fence must turn every stale in-flight write away, so all
// join/drain × handoff-point × in-flight-write × crash combinations
// land on one fingerprint — the cross-shard determinism claim with the
// handoff itself under explorer control. The unsafe variant
// (shardStaleOwner) removes the fence and must split.
func Shard() Scenario {
	return Scenario{
		Name:          "shard",
		Deterministic: true,
		Fingerprint:   shardFingerprint,
		Build:         func(env *Env) (task.Func, []mergeable.Mergeable) { return buildShard(env, false) },
	}
}

// shardStaleOwner is Shard with the planted stale-owner bug armed
// (UnsafeLiveHandoff): handoffs snapshot documents from still-running
// owners with no epoch fence, so the explored in-flight write is ACKED
// by the old owner and lost. Two non-default decisions — join, then
// race the write — are necessary and sufficient, which is exactly what
// the shrinker must find.
func shardStaleOwner() Scenario {
	return Scenario{
		Name:          "shard-stale-owner",
		Deterministic: true,
		Fingerprint:   shardFingerprint,
		Build:         func(env *Env) (task.Func, []mergeable.Mergeable) { return buildShard(env, true) },
	}
}

func buildShard(env *Env, unsafe bool) (task.Func, []mergeable.Mergeable) {
	finalDocs := mergeable.NewText("")
	finalEdits := mergeable.NewCounter(0)
	staleAccepted := mergeable.NewCounter(0)
	data := []mergeable.Mergeable{finalDocs, finalEdits, staleAccepted}

	book := &shardNetBook{}
	opts := collab.ShardedOptions{
		Front:             collab.Options{Seed: 1},
		Shards:            2,
		ShardNet:          book.shardNet,
		UnsafeLiveHandoff: unsafe,
	}
	if !unsafe {
		// The crash decision needs per-shard journals; the unsafe variant
		// keeps the minimal two-site space the shrinker must land on.
		dir, err := os.MkdirTemp("", "explore-shard-")
		if err != nil {
			return func(*task.Ctx, []mergeable.Mergeable) error { return err }, data
		}
		env.Defer(func() { os.RemoveAll(dir) })
		opts.Dir = dir
	}
	l := memnet.Listen(16)
	srv, err := collab.ServeSharded(l, map[string]string{"alpha": "", "beta": "", "gamma": ""}, opts)
	if err != nil {
		l.Close()
		return func(*task.Ctx, []mergeable.Mergeable) error { return err }, data
	}
	env.Defer(func() { srv.Shutdown() }) // idempotent; normally already down

	fn := func(ctx *task.Ctx, _ []mergeable.Mergeable) error {
		names := srv.Names()
		c, err := collab.DialWith(l, collab.ClientOptions{RequestTimeout: 10 * time.Second})
		if err != nil {
			return err
		}
		defer c.Close()
		writeOne := func(name string, wave int) error {
			if _, err := c.Use(name); err != nil {
				return err
			}
			_, err := c.Insert(0, fmt.Sprintf("%s%d;", name, wave))
			return err
		}
		writeWave := func(wave int) error {
			for _, name := range names {
				if err := writeOne(name, wave); err != nil {
					return err
				}
			}
			return nil
		}
		if err := writeWave(0); err != nil {
			return err
		}

		if unsafe {
			// Planted-bug variant: all routed writes stay before the
			// handoff (the live snapshot then matches the abandoned copy,
			// so the membership change alone is clean) and only a join is
			// offered — a drain would also orphan the zombie's edit
			// counter, a coarser failure that would mask the targeted one.
			if env.Decide("shard.plan", 2) == 1 {
				probe := openShardProbe(srv, book)
				defer probe.close()
				if err := srv.AddShard(7); err != nil {
					return err
				}
				if env.Decide("shard.inflight", 2) == 1 && probe.fire(srv) {
					staleAccepted.Add(1)
				}
			}
			if err := c.Bye(); err != nil {
				return err
			}
			return shardCollect(srv, data)
		}

		plan := env.Decide("shard.plan", 3) // 0 none, 1 join, 2 drain
		handoff := func() error {
			if plan == 2 {
				return srv.DrainShard(0)
			}
			return srv.AddShard(7)
		}
		var probe *shardProbe
		if plan != 0 {
			point := env.Decide("shard.point", 2) // before wave 1 | inside it
			if env.Decide("shard.inflight", 2) == 1 {
				probe = openShardProbe(srv, book)
				defer probe.close()
			}
			if point == 0 {
				if err := handoff(); err != nil {
					return err
				}
			}
			if err := writeOne(names[0], 1); err != nil {
				return err
			}
			if point == 1 {
				if err := handoff(); err != nil {
					return err
				}
			}
			for _, name := range names[1:] {
				if err := writeOne(name, 1); err != nil {
					return err
				}
			}
			if probe != nil && probe.fire(srv) {
				staleAccepted.Add(1)
			}
		} else if err := writeWave(1); err != nil {
			return err
		}
		if env.Decide("shard.crash", 2) == 1 {
			id := srv.RouteOf(names[1])
			if err := srv.KillShard(id); err != nil {
				return err
			}
			if err := srv.ResumeShard(id); err != nil {
				return err
			}
		}
		if err := writeWave(2); err != nil {
			return err
		}
		if err := c.Bye(); err != nil {
			return err
		}
		return shardCollect(srv, data)
	}
	return fn, data
}

// Builtins returns the built-in scenarios in a stable order.
func Builtins() []Scenario {
	return []Scenario{Fanout(), AnyOrder(), AbortSync(), OverlapAny(), Chaos(), Churn(), Session(), Compact(), Shard()}
}

// BuiltinScenario looks a built-in up by name.
func BuiltinScenario(name string) (Scenario, bool) {
	for _, sc := range Builtins() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

package explore

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/collab"
	"repro/internal/dist"
	"repro/internal/faultnet"
	"repro/internal/memnet"
	"repro/internal/mergeable"
	"repro/internal/task"
)

// Built-in scenarios: small Spawn & Merge programs that each pin one of
// the paper's claims under exploration. cmd/explore runs them by name;
// the package tests use them as fixtures.

func init() {
	// The chaos scenario's structures cross node (and crash) boundaries.
	dist.RegisterListCodec[int]("explore-list-int")
	dist.RegisterRegisterCodec[int]("explore-reg-int")
	for i, delta := range []int64{100, 200, 300} {
		node, d := i, delta
		dist.RegisterFunc(fmt.Sprintf("explore-chaos-%d", node), func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.List[int]).Insert(0, node+1)
			data[1].(*mergeable.Counter).Add(d)
			return nil
		})
	}
	// The compact scenario's structures cross the crash boundary.
	dist.RegisterMapCodec[int, int]("explore-map-int-int")
	// The churn scenario's workload: one registered function per task
	// slot, its effect a pure function of the slot — never of the node
	// that happens to host it — so any placement, failover or rebalance
	// must converge on one fingerprint.
	for slot := 0; slot < churnWaves*churnTasksPerWave; slot++ {
		s := slot
		dist.RegisterFunc(fmt.Sprintf("explore-churn-%d", s), func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.List[int]).Append(s)
			data[1].(*mergeable.Counter).Add(1 << uint(s))
			return nil
		})
	}
}

// Fanout is the determinism workhorse: three rounds of three children
// each, all merged with MergeAll, so the paper demands one bit-identical
// outcome on every goroutine interleaving and every GOMAXPROCS. Multiple
// root merges also make it the crash-exploration fixture (checkpoints
// land on the root-merge cadence).
func Fanout() Scenario {
	return Scenario{
		Name:          "fanout",
		Deterministic: true,
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for round := 0; round < 3; round++ {
					for child := 0; child < 3; child++ {
						r, c := round, child
						ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
							data[0].(*mergeable.List[int]).Append(r*10 + c)
							data[1].(*mergeable.Counter).Inc()
							return nil
						}, data[0], data[1])
					}
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// AnyOrder drains a three-child fan-out with successive MergeAny calls,
// so the merge order — and with it the list contents — is exactly the
// explorer's pick sequence: 3×2×1 = 6 schedules, six distinct outcomes,
// each of which must survive the replay cross-check (the recorded
// MergeScript re-run through the production replay path).
func AnyOrder() Scenario {
	return Scenario{
		Name: "anyorder",
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for i := 0; i < 3; i++ {
					id := i
					ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
						data[0].(*mergeable.List[int]).Append(id)
						return nil
					}, data[0])
				}
				for i := 0; i < 3; i++ {
					if _, err := ctx.MergeAny(); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list}
		},
	}
}

// AbortSync races Abort against Sync: every worker checkpoints through
// Sync three times while the root aborts one of them — which one, the
// decision stream picks — and whether the flag lands before the victim's
// first Sync, mid-loop, or after its body finished is up to the goroutine
// schedule. The paper's abort contract makes the outcome deterministic
// anyway: exactly the victim's effects are discarded, wherever the abort
// landed, so the surviving operation count is the fingerprint.
func AbortSync() Scenario {
	return Scenario{
		Name:          "abortsync",
		Deterministic: true,
		// Only the counter is the observable outcome: the list's contents
		// name the surviving workers (they differ by victim), the count of
		// committed increments must not (always two workers × three).
		Fingerprint: func(data []mergeable.Mergeable) uint64 {
			return uint64(data[1].(*mergeable.Counter).Value())
		},
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				var workers []*task.Task
				for i := 0; i < 3; i++ {
					id := i
					workers = append(workers, ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
						for round := 0; round < 3; round++ {
							data[0].(*mergeable.List[int]).Append(id*10 + round)
							data[1].(*mergeable.Counter).Inc()
							if err := ctx.Sync(); err != nil {
								return nil // aborted mid-loop: bow out
							}
						}
						return nil
					}, data[0], data[1]))
				}
				victim := env.Decide("abort.victim", len(workers))
				workers[victim].Abort()
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// OverlapAny exercises MergeAnyFromSet with duplicate and overlapping
// candidate sets: the first call lists two children twice over, the
// second call's set overlaps the first winner (leaving one live
// candidate, which is not a decision point at all), and a final MergeAll
// collects whatever survived.
func OverlapAny() Scenario {
	return Scenario{
		Name: "overlapany",
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			list := mergeable.NewList[int]()
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				var kids []*task.Task
				for i := 0; i < 3; i++ {
					id := i
					kids = append(kids, ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
						data[0].(*mergeable.List[int]).Append(id)
						return nil
					}, data[0]))
				}
				a, b, c := kids[0], kids[1], kids[2]
				if _, err := ctx.MergeAnyFromSet([]*task.Task{a, b, a, b}); err != nil {
					return err
				}
				if _, err := ctx.MergeAnyFromSet([]*task.Task{b, c}); err != nil {
					return err
				}
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{list}
		},
	}
}

// Chaos runs the three-node distributed workload on a faultnet transport
// whose every fault decision — drop, reset, dial failure — comes from the
// decision stream instead of the seeded probabilistic draws. The healthy
// all-default schedule anchors the fingerprint; schedules that force
// faults must either recover to the same outcome (retries, failover) or
// die with an injected-fault error, which the scenario tolerates as a
// lost run. Latency injection is off by construction (deciders disable
// it), heartbeats are off by configuration, so the protocol byte stream —
// and with it the decision trace — stays schedule-deterministic.
func Chaos() Scenario {
	return Scenario{
		Name:          "chaos",
		Deterministic: true,
		TolerateError: func(err error) bool { return err != nil },
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			fnet := faultnet.New(faultnet.Config{Decider: env.Decide})
			cluster := dist.NewClusterWith(dist.Options{
				Nodes:             3,
				SendTimeout:       time.Second,
				RecvTimeout:       time.Second,
				HeartbeatInterval: -1,
				Retry:             dist.RetryPolicy{MaxAttempts: 4},
				Listen:            func(node int) dist.Listener { return fnet.Listen(node, 64) },
			})
			env.Defer(cluster.Close)
			list := mergeable.NewList(0)
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for i := 0; i < 3; i++ {
					cluster.SpawnRemote(ctx, i, fmt.Sprintf("explore-chaos-%d", i), data[0], data[1])
				}
				return ctx.MergeAll()
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// Churn scenario sizing: waves of remote work interleaved with
// membership transitions. Every task slot's effect is a pure function of
// the slot number, so any placement the explorer picks must converge on
// the one fingerprint.
const (
	churnWaves        = 3
	churnTasksPerWave = 2
)

// churnEligible lists members that may be drained, removed or killed
// while keeping the cluster placeable: active and not already killed.
// Victim actions run only when two or more remain, so at least one
// live, undrained member always survives to host the wave's tasks.
func churnEligible(cluster *dist.Cluster, killed map[int]bool) []int {
	var out []int
	for _, m := range cluster.Members() {
		if m.State == dist.StateActive && !killed[m.Node] {
			out = append(out, m.Node)
		}
	}
	return out
}

// churnTargets lists spawn targets: every active member, including
// killed ones — requesting a dead member is legal and exercises the
// failover path, which must land on the same outcome.
func churnTargets(cluster *dist.Cluster) []int {
	var out []int
	for _, m := range cluster.Members() {
		if m.State == dist.StateActive {
			out = append(out, m.Node)
		}
	}
	return out
}

// Churn is the elastic-membership scenario: every wave the decision
// stream picks a membership transition (none, join, drain, leave, kill)
// and a victim, places two remote tasks on explored targets — dead
// members included — and may start a late drain while the wave's tasks
// are still in flight, racing rebalancing against the merge. The
// workload is MergeAll-only and slot-addressed, so the paper's
// determinism claim extends verbatim: every join/leave/drain/kill
// schedule must produce the one bit-identical fingerprint.
func Churn() Scenario {
	return Scenario{
		Name:          "churn",
		Deterministic: true,
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			cluster := dist.NewClusterWith(dist.Options{
				Nodes:             2,
				SendTimeout:       time.Second,
				RecvTimeout:       time.Second,
				HeartbeatInterval: -1,
				Retry:             dist.RetryPolicy{MaxAttempts: 6},
			})
			env.Defer(cluster.Close)
			killed := make(map[int]bool)
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for wave := 0; wave < churnWaves; wave++ {
					// Membership transition for this wave. Victim actions are
					// offered only while a second placeable member exists.
					eligible := churnEligible(cluster, killed)
					actions := 2 // none, join
					if len(eligible) >= 2 {
						actions = 5 // + drain, leave, kill
					}
					switch env.Decide(fmt.Sprintf("churn.w%d.action", wave), actions) {
					case 1:
						if _, err := cluster.Join(); err != nil {
							return err
						}
					case 2:
						victim := eligible[env.Decide(fmt.Sprintf("churn.w%d.victim", wave), len(eligible))]
						if err := cluster.Drain(victim); err != nil {
							return err
						}
					case 3:
						victim := eligible[env.Decide(fmt.Sprintf("churn.w%d.victim", wave), len(eligible))]
						if err := cluster.Leave(victim); err != nil {
							return err
						}
					case 4:
						victim := eligible[env.Decide(fmt.Sprintf("churn.w%d.victim", wave), len(eligible))]
						cluster.KillNode(victim)
						killed[victim] = true
					}
					// The wave's work, on explored placements.
					for tk := 0; tk < churnTasksPerWave; tk++ {
						slot := wave*churnTasksPerWave + tk
						targets := churnTargets(cluster)
						target := targets[env.Decide(fmt.Sprintf("churn.w%d.t%d.target", wave, tk), len(targets))]
						cluster.SpawnRemote(ctx, target, fmt.Sprintf("explore-churn-%d", slot), data[0], data[1])
					}
					// A late drain races rebalancing against the merge: the
					// tasks just spawned may still be in flight on the victim.
					if late := churnEligible(cluster, killed); len(late) >= 2 &&
						env.Decide(fmt.Sprintf("churn.w%d.late", wave), 2) == 1 {
						if err := cluster.Drain(late[0]); err != nil {
							return err
						}
					}
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list, cnt}
		},
	}
}

// sessionWaitDetach blocks until the server has registered one more
// detach than base — the decision path needs the detach on the books
// before pumping the logical clock, or the eviction it expects would
// race the server's notice of the dead socket.
func sessionWaitDetach(srv *collab.Server, base int64) error {
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Get("detached") <= base {
		if time.Now().After(deadline) {
			return errors.New("session: detach was never observed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// Session explores the collaborative front door's session churn: after
// each of client A's edits the decision stream picks continue, a
// drop+resume, a drop left idle until B's traffic evicts the session
// (then a fresh HELLO), or a lost-ack retransmit through the replay
// window. Client B spends a fixed total edit budget — partly pumped as
// eviction traffic, the rest at the end — so every decision path
// produces the same marker multiset, which (with the exact edit counter)
// is the deterministic fingerprint: 4³ = 64 schedules, one outcome.
// Exactly-once across every churn combination is the property under
// test — a lost or double-applied edit on any path splits the
// fingerprint.
func Session() Scenario {
	return Scenario{
		Name:          "session",
		Deterministic: true,
		Fingerprint: func(data []mergeable.Mergeable) uint64 {
			doc := data[0].(*mergeable.Text).String()
			edits := data[1].(*mergeable.Counter).Value()
			return collab.CanonicalFingerprint(doc) ^ uint64(edits)*0x9E3779B97F4A7C15
		},
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			finalDoc := mergeable.NewText("")
			finalEdits := mergeable.NewCounter(0)
			l := memnet.Listen(16)
			srv := collab.ServeWith(l, "", collab.Options{
				Seed:      1,
				Admission: collab.Admission{IdleTicks: 3, IdleJitter: 2},
			})
			env.Defer(func() { l.Close(); srv.Wait() })

			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				opts := collab.ClientOptions{
					RequestTimeout: 10 * time.Second,
					NoAutoResume:   true, // churn is explicit; nothing may hide behind retries
				}
				a, err := collab.DialWith(l, opts)
				if err != nil {
					return err
				}
				defer a.Close()
				b, err := collab.DialWith(l, opts)
				if err != nil {
					return err
				}
				defer b.Close()

				const bBudget = 18
				bNext := 0
				pumpB := func(n int) error {
					for ; n > 0 && bNext < bBudget; n-- {
						if _, err := b.Insert(0, fmt.Sprintf("b%d;", bNext)); err != nil {
							return err
						}
						bNext++
					}
					return nil
				}

				for i := 0; i < 3; i++ {
					marker := fmt.Sprintf("a%d;", i)
					switch env.Decide(fmt.Sprintf("sess.a%d", i), 4) {
					case 0: // plain edit
						if _, err := a.Insert(0, marker); err != nil {
							return err
						}
					case 1: // transport dies after the ack; resume
						if _, err := a.Insert(0, marker); err != nil {
							return err
						}
						a.Drop()
						if err := a.Reconnect(); err != nil {
							return fmt.Errorf("session: resume after drop: %w", err)
						}
					case 2: // detach long enough for eviction; fresh session
						if _, err := a.Insert(0, marker); err != nil {
							return err
						}
						base := srv.Stats().Get("detached")
						a.Drop()
						if err := sessionWaitDetach(srv, base); err != nil {
							return err
						}
						if err := pumpB(6); err != nil { // 6 ticks > IdleTicks+jitter
							return err
						}
						if err := a.Reconnect(); !errors.Is(err, collab.ErrSessionExpired) {
							return fmt.Errorf("session: resume after eviction: err = %v, want ErrSessionExpired", err)
						}
						if err := a.NewSession(); err != nil {
							return err
						}
					case 3: // ack lost mid-flight; the replay window dedupes
						if err := a.BeginInsert(0, marker); err != nil {
							return err
						}
						a.Drop()
						if err := a.Reconnect(); err != nil {
							return fmt.Errorf("session: resume for dedup: %w", err)
						}
						if _, err := a.Finish(); err != nil {
							return err
						}
					}
				}
				if err := pumpB(bBudget); err != nil { // B's remaining budget
					return err
				}
				if err := a.Bye(); err != nil {
					return err
				}
				if err := b.Bye(); err != nil {
					return err
				}
				l.Close()
				if err := srv.Wait(); err != nil {
					return err
				}
				data[0].(*mergeable.Text).Insert(0, srv.Document())
				data[1].(*mergeable.Counter).Add(srv.Edits())
				return nil
			}
			return fn, []mergeable.Mergeable{finalDoc, finalEdits}
		},
	}
}

// Compact scenario sizing: two waves of two workers, so the schedule
// commits multiple root merges — the cadence checkpoints, WAL rotation
// and history trimming all key off.
const (
	compactWaves   = 2
	compactWorkers = 2
)

// compactHistory maps the explored GC decision to a history policy. Pick
// 0 — the benign default every other schedule inherits — is the
// production eager trim; the alternatives must all be observationally
// invisible.
func compactHistory(pick int) task.HistoryGC {
	switch pick {
	case 1:
		return task.HistoryGC{Disable: true}
	case 2:
		return task.HistoryGC{Slack: 2}
	case 3:
		return task.HistoryGC{Slack: 8}
	}
	return task.HistoryGC{}
}

// Compact turns PR 9's compaction machinery itself into a decision site:
// the first decision picks the history-GC policy (eager, off, slack 2,
// slack 8), and the schedule then crosses it with everything else the
// explorer steers — spawn fan-out, a mid-body Sync that pins the
// parent's history from a live child, an optional aborted sibling whose
// effects must vanish, and a MergeAny drain whose pick order is
// enumerated. All worker effects commute (counter bits, distinct map
// keys) and the root's non-commuting list appends are sequential, so the
// paper's claim extends to the knob: every GC choice × abort × drain ×
// pick-order combination must land on the one bit-identical fingerprint.
// Under crash exploration (Options.Crash with a small SegmentBytes) the
// same schedules additionally sweep WAL rotation and checkpoint pruning
// against kill points at every byte budget.
func Compact() Scenario {
	return Scenario{
		Name:          "compact",
		Deterministic: true,
		Build: func(env *Env) (task.Func, []mergeable.Mergeable) {
			env.SetHistory(compactHistory(env.Decide("compact.gc", 4)))
			list := mergeable.NewList[int]()
			cnt := mergeable.NewCounter(0)
			kv := mergeable.NewMap[int, int]()
			fn := func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for wave := 0; wave < compactWaves; wave++ {
					// Root-local, non-commuting history: sequential appends
					// the GC must trim without changing what later merges
					// transform against.
					for k := 0; k < 4; k++ {
						data[0].(*mergeable.List[int]).Append(wave*10 + k)
					}
					// An explored abort: the doomed sibling parks in Sync (it
					// cannot outrun the flag — Sync blocks until the parent
					// merges), so its sentinel must be discarded wherever the
					// drain collects it.
					var doomed *task.Task
					if env.Decide(fmt.Sprintf("compact.w%d.abort", wave), 2) == 1 {
						doomed = ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
							data[0].(*mergeable.Counter).Add(1 << 40) // must never commit
							ctx.Sync()
							return nil
						}, data[1])
					}
					for w := 0; w < compactWorkers; w++ {
						slot := wave*compactWorkers + w
						syncs := w == 0
						ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
							data[0].(*mergeable.Counter).Add(1 << uint(slot))
							if syncs {
								// Pin the parent's history from a live child:
								// the trim watermark must respect the pin, and
								// the post-Sync tail rides to the next merge.
								if err := ctx.Sync(); err != nil {
									return nil // aborted externally: bow out
								}
							}
							data[1].(*mergeable.Map[int, int]).Set(slot, slot*3+1)
							return nil
						}, data[1], data[2])
					}
					if doomed != nil {
						doomed.Abort()
					}
					if env.Decide(fmt.Sprintf("compact.w%d.drain", wave), 2) == 1 {
						// Explored MergeAny order over commuting effects: any
						// pick sequence must land on the one fingerprint.
						for w := 0; w < compactWorkers; w++ {
							if _, err := ctx.MergeAny(); err != nil {
								return err
							}
						}
					}
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
				return nil
			}
			return fn, []mergeable.Mergeable{list, cnt, kv}
		},
	}
}

// Builtins returns the built-in scenarios in a stable order.
func Builtins() []Scenario {
	return []Scenario{Fanout(), AnyOrder(), AbortSync(), OverlapAny(), Chaos(), Churn(), Session(), Compact()}
}

// BuiltinScenario looks a built-in up by name.
func BuiltinScenario(name string) (Scenario, bool) {
	for _, sc := range Builtins() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

package explore

import (
	"testing"
)

// TestSessionExhaustive enumerates every session-churn decision path —
// continue / drop+resume / evict+new-session / lost-ack-dedup after each
// of client A's edits, 4³ = 64 schedules — and demands a clean sweep
// with exactly one outcome: exactly-once editing survives every churn
// combination, and the final state is bit-identical across all of them.
func TestSessionExhaustive(t *testing.T) {
	res, err := Run(Session(), Options{Strategy: Exhaustive, Schedules: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("violation on session churn: %v", res.Violations[0])
	}
	if !res.Exhausted {
		t.Fatalf("space not exhausted in %d schedules", res.Schedules)
	}
	if res.Lost != 0 {
		t.Fatalf("lost schedules = %d, want 0", res.Lost)
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %d, want exactly one (exactly-once broke on some churn path)", len(res.Outcomes))
	}
}

// TestSessionRandomWalkSmoke is the fast always-on leg: a few random
// churn schedules, all clean, one fingerprint.
func TestSessionRandomWalkSmoke(t *testing.T) {
	res, err := Run(Session(), Options{Schedules: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("violations on session random walk: %v", res.Violations[0])
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %d, want exactly one", len(res.Outcomes))
	}
}

package explore

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
)

// Decision is one resolved nondeterminism point: at Site, one of N
// alternatives existed and Pick was taken. Alternative 0 is always the
// "default" — first candidate in creation order for merges, no fault for
// the chaos transport, earliest boundary for crash points — so the
// all-zero trace is the canonical baseline schedule.
type Decision struct {
	Site string
	N    int
	Pick int
}

func (d Decision) String() string { return fmt.Sprintf("%s %d/%d", d.Site, d.Pick, d.N) }

// Trace is the ordered decision record of one explored schedule. Replayed
// through a Source it reproduces the schedule; persisted with
// WriteSeedFile it becomes a shareable repro.
type Trace []Decision

func (t Trace) clone() Trace { return append(Trace(nil), t...) }

// String renders the trace one decision per line.
func (t Trace) String() string {
	var sb strings.Builder
	for i, d := range t {
		fmt.Fprintf(&sb, "%3d: %s\n", i, d.String())
	}
	return sb.String()
}

// Source is one schedule's decision stream. Every nondeterminism source
// the harness has seized — MergeAny picks, faultnet chaos, journal crash
// points, scenario-level choices — resolves its alternatives through
// Choose, so a schedule is fully described by the trace of answers.
//
// Forced decisions (a replayed trace or a DFS prefix) are consumed first,
// FIFO per site: keying the queues by site keeps replay correct even when
// decision points on different sites (different merging parents, different
// connections) interleave differently between runs — per-site order is
// what the runtime makes deterministic, global order is not guaranteed.
// Past the forced decisions, a random-walk source answers from its seeded
// stream; a bare source answers 0.
type Source struct {
	mu     sync.Mutex
	queues map[string][]int
	// forcedLen is the forced-prefix length — the DFS strategy only
	// branches on decisions recorded past it.
	forcedLen int
	rng       *rand.Rand
	trace     Trace
	// maxDecisions bounds the trace. Past the bound Choose stops
	// recording and answering (always 0) and stops pulsing the progress
	// counter, so a decision-driven livelock surfaces as a stall.
	maxDecisions int
	overBudget   bool
	// progress is the stall watchdog's pulse: bumped by every decision
	// and by every blocking point of the merge protocol (via
	// task.RunConfig.Jitter).
	progress atomic.Int64
}

// newSource builds a schedule's stream: forced decisions first, then rng
// (nil means the all-default extension), capped at maxDecisions.
func newSource(forced Trace, rng *rand.Rand, maxDecisions int) *Source {
	s := &Source{
		queues:       make(map[string][]int, len(forced)),
		forcedLen:    len(forced),
		rng:          rng,
		maxDecisions: maxDecisions,
	}
	for _, d := range forced {
		s.queues[d.Site] = append(s.queues[d.Site], d.Pick)
	}
	return s
}

// Choose resolves one decision point with n alternatives and records it.
// Points with fewer than two alternatives are not decisions: they answer
// 0 without being recorded, so traces hold only real branch points. Safe
// for concurrent use from any goroutine.
func (s *Source) Choose(site string, n int) int {
	s.progress.Add(1)
	if n <= 1 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.trace) >= s.maxDecisions {
		s.overBudget = true
		s.progress.Add(-1) // an over-budget loop must look like a stall
		return 0
	}
	pick := 0
	if q := s.queues[site]; len(q) > 0 {
		pick = q[0]
		s.queues[site] = q[1:]
		if pick < 0 || pick >= n {
			// The program drifted from the trace (different candidate
			// count at this site); fall back to the default alternative.
			pick = 0
		}
	} else if s.rng != nil {
		// Bias 3:1 toward the default alternative. Uniform picks make
		// nearly every chaos schedule inject faults at nearly every write,
		// which mostly kills runs outright; sparse faults explore the
		// interesting recovery paths (retries, failover, late merges).
		if s.rng.Intn(4) > 0 {
			pick = 0
		} else {
			pick = s.rng.Intn(n)
		}
	}
	s.trace = append(s.trace, Decision{Site: site, N: n, Pick: pick})
	return pick
}

// pulse feeds the watchdog from runtime blocking points.
func (s *Source) pulse() { s.progress.Add(1) }

// snapshot returns the decisions taken so far and whether the budget was
// exhausted.
func (s *Source) snapshot() (Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trace.clone(), s.overBudget
}

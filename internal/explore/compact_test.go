package explore

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/mergeable"
	"repro/internal/stats"
	"repro/internal/task"
)

// retainedOps sums the structures' retained op-log lengths — the quantity
// history GC bounds and the one thing a correct compaction must keep
// invisible to fingerprints.
func retainedOps(data []mergeable.Mergeable) int {
	total := 0
	for _, m := range data {
		type logger interface{ Log() *mergeable.Log }
		total += m.(logger).Log().RetainedLen()
	}
	return total
}

// TestCompactRetainedByPolicy pins the calibration the leak test below
// rides on: under every GC-on policy the end-of-body collection leaves
// the op logs trimmed below the leak threshold, while GC-off retains the
// full root history above it — same fingerprint either way.
func TestCompactRetainedByPolicy(t *testing.T) {
	var want uint64
	for pick := 0; pick < 4; pick++ {
		sc := Compact()
		env := &Env{src: newSource(Trace{{Site: "compact.gc", N: 4, Pick: pick}}, nil, 4096)}
		fn, data := sc.Build(env)
		if err := task.RunWith(task.RunConfig{Jitter: env.src.pulse, History: env.history}, fn, data...); err != nil {
			t.Fatalf("pick %d: %v", pick, err)
		}
		env.runDeferred()
		retained := retainedOps(data)
		t.Logf("gc pick %d: retained %d", pick, retained)
		if fp := Fingerprint(data...); pick == 0 {
			want = fp
		} else if fp != want {
			t.Errorf("gc pick %d: fingerprint %016x, baseline %016x", pick, fp, want)
		}
		if pick == 1 {
			if retained <= compactLeakThreshold {
				t.Errorf("GC off retained %d ops, want > %d", retained, compactLeakThreshold)
			}
		} else if retained > compactLeakThreshold {
			t.Errorf("gc pick %d retained %d ops, want <= %d", pick, retained, compactLeakThreshold)
		}
	}
}

// TestCompactExhaustive enumerates the compact scenario's whole decision
// space — GC policy × abort × drain × MergeAny pick order — with
// bounded-exhaustive DFS. Every combination must land on the one
// bit-identical fingerprint: compaction, aborts and merge order are all
// observationally invisible.
func TestCompactExhaustive(t *testing.T) {
	res, err := Run(Compact(), Options{Strategy: Exhaustive, Schedules: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	if !res.Exhausted {
		t.Errorf("decision space not exhausted in %d schedules", res.Schedules)
	}
	if len(res.Outcomes) != 1 {
		t.Errorf("observed %d distinct outcomes, want 1: %v", len(res.Outcomes), sortedOutcomes(res.Outcomes))
	}
	// The GC site alone has four alternatives; the space must be larger
	// than any single site's fan-out.
	if res.Schedules < 16 {
		t.Errorf("only %d schedules enumerated — decision sites missing", res.Schedules)
	}
	t.Logf("%s", res)
}

// TestCompactCrashExploration re-runs explored compact schedules
// journaled with a tiny rotation threshold and aggressive checkpoint
// pruning, kills them at swept byte budgets and resumes: recovery must
// reproduce the live fingerprint even when the tear lands mid-rotation,
// and the sweep must actually have rotated and pruned.
func TestCompactCrashExploration(t *testing.T) {
	jc := stats.NewCounters()
	res, err := Run(Compact(), Options{
		Schedules: 3,
		Seed:      7,
		Crash: &CrashCheck{
			Encode:            dist.EncodeSnapshot,
			Decode:            dist.DecodeSnapshot,
			Points:            3,
			Dir:               t.TempDir(),
			CheckpointEvery:   1,
			SegmentBytes:      256,
			RetainCheckpoints: 1,
			Stats:             jc,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	if jc.Get("compaction.wal.rotations") == 0 {
		t.Error("crash sweep never rotated a WAL segment — SegmentBytes not honored")
	}
	if jc.Get("compaction.ckpt.pruned") == 0 {
		t.Error("crash sweep never pruned a checkpoint — RetainCheckpoints not honored")
	}
}

// compactLeakThreshold separates every GC-on policy's retained history
// (the end-of-body collection advances the watermark past everything, so
// the final trim empties the logs at any slack) from the GC-off
// accumulation, which keeps all eight root list appends.
const compactLeakThreshold = 4

// compactLeakBug is the planted violation for the shrink check: its
// fingerprint leaks whether history was actually compacted, so the one
// decision that disables GC breaks determinism — and the shrinker must
// strip every abort/drain/merge decision and hand back exactly that
// single-decision seed.
func compactLeakBug() Scenario {
	sc := Compact()
	sc.Name = "compactleak"
	sc.Fingerprint = func(data []mergeable.Mergeable) uint64 {
		fp := Fingerprint(data...)
		if retainedOps(data) > compactLeakThreshold {
			fp ^= 0xdeadbeef // the injected leak
		}
		return fp
	}
	return sc
}

// TestCompactShrinkToMinimalSeed: the leak bug needs exactly one wrong
// decision (compact.gc = disable), so the shrunk counterexample must be
// that single decision, persisted as a seed file that reproduces the
// violation on replay.
func TestCompactShrinkToMinimalSeed(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(compactLeakBug(), Options{
		Strategy:  Exhaustive,
		Schedules: 4096,
		Shrink:    true,
		SeedDir:   dir,
		FailFast:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("the planted compaction leak was not found")
	}
	v := res.Violations[0]
	if v.Kind != KindDeterminism {
		t.Fatalf("violation kind = %s, want %s", v.Kind, KindDeterminism)
	}
	if len(v.Trace) != 1 {
		t.Fatalf("shrunk trace has %d decisions, want exactly the GC decision:\n%s", len(v.Trace), v.Trace)
	}
	if d := v.Trace[0]; d.Site != "compact.gc" || d.Pick != 1 {
		t.Errorf("minimal decision = %v, want compact.gc pick 1 (GC off)", d)
	}
	if v.SeedFile == "" {
		t.Fatal("violation was not persisted to a seed file")
	}
	re, err := ReplaySeed(v.SeedFile, compactLeakBug(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re == nil || re.Kind != KindDeterminism {
		t.Fatalf("persisted seed did not reproduce the violation: %v", re)
	}
}

package shard

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpLogAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.log")
	l, err := CreateOpLog(path)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]string{
		{"S doc0 \"\"", "B 0"},
		{"A r0.1 doc0 INS 0 \"a;\"", "A r0.2 doc0 INS 2 \"b;\""},
		{"A r0.3 doc0 DEL 0 2"},
	}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, frames, damage := mustRecover(t, path)
	defer l2.Close()
	if damage != nil {
		t.Fatalf("unexpected damage: %v", damage)
	}
	if len(frames) != len(batches) {
		t.Fatalf("recovered %d frames, want %d", len(frames), len(batches))
	}
	for i := range batches {
		if strings.Join(frames[i], "|") != strings.Join(batches[i], "|") {
			t.Fatalf("frame %d = %q, want %q", i, frames[i], batches[i])
		}
	}
}

func TestOpLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.log")
	l, err := CreateOpLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]string{"A r0.1 doc0 INS 0 \"x;\""}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: append half a frame.
	half, err := AppendFrame(nil, []string{"A r0.2 doc0 INS 2 \"y;\""})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(half[:len(half)-5])
	f.Close()

	l2, frames, damage := mustRecover(t, path)
	if !errors.Is(damage, ErrFrameTruncated) {
		t.Fatalf("damage = %v, want ErrFrameTruncated", damage)
	}
	if len(frames) != 1 {
		t.Fatalf("recovered %d frames, want 1", len(frames))
	}
	// The truncation must leave a clean append boundary.
	if err := l2.Append([]string{"A r0.2 doc0 INS 2 \"y;\""}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, frames, damage = mustRecoverClosed(t, path)
	if damage != nil {
		t.Fatalf("damage after clean re-append: %v", damage)
	}
	if len(frames) != 2 {
		t.Fatalf("recovered %d frames after re-append, want 2", len(frames))
	}
}

func TestOpLogClosedFence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.log")
	l, err := CreateOpLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]string{"A r0.1 doc0 GETish"}); !errors.Is(err, ErrOpLogClosed) {
		t.Fatalf("Append after Close = %v, want ErrOpLogClosed", err)
	}
	if err := l.Flush(); !errors.Is(err, ErrOpLogClosed) {
		t.Fatalf("Flush after Close = %v, want ErrOpLogClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func mustRecover(t *testing.T, path string) (*OpLog, [][]string, error) {
	t.Helper()
	l, frames, damage := RecoverOpLog(path)
	if l == nil {
		t.Fatalf("recover returned nil log (damage %v)", damage)
	}
	return l, frames, damage
}

func mustRecoverClosed(t *testing.T, path string) (*OpLog, [][]string, error) {
	t.Helper()
	l, frames, damage := mustRecover(t, path)
	l.Close()
	return l, frames, damage
}

// Package shard provides the building blocks of the sharded collab
// spine: a consistent-hash ring mapping document ids onto shard ids, a
// CRC-framed batch wire format that coexists with the line protocol, and
// a frame-based operation log that makes a shard incarnation resumable
// after SIGKILL.
//
// The package is deliberately protocol-agnostic: it knows nothing about
// sessions, documents or merge loops. internal/collab composes these
// pieces into the routed multi-shard document service.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/dist"
)

// DefaultReplicas is the number of virtual points each shard contributes
// to the ring. 64 points per shard keeps the worst-case ownership skew
// under ~20% for small clusters while the point array stays cache-warm.
const DefaultReplicas = 64

// ringPoint is one virtual point: a hash position owned by a shard id.
type ringPoint struct {
	hash uint64
	id   int
}

// Ring is an immutable consistent-hash ring at one membership epoch.
// Lookups walk a sorted point array with a hand-rolled binary search so
// the steady-state routing path performs zero allocations.
//
// Mutation is by replacement: membership changes build a new Ring at the
// next epoch and swap it in under the router's lock, which is what makes
// the epoch fence meaningful — a request stamped with an old epoch can
// be recognized by any shard no matter how stale its sender's view was.
type Ring struct {
	epoch  uint64
	ids    []int // member shard ids, sorted
	points []ringPoint
}

// New builds a ring over the given shard ids at the given epoch.
// replicas <= 0 means DefaultReplicas. ids may arrive in any order and
// are defensively copied.
func New(ids []int, replicas int, epoch uint64) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	r := &Ring{
		epoch:  epoch,
		ids:    sorted,
		points: make([]ringPoint, 0, len(sorted)*replicas),
	}
	var key []byte
	for _, id := range sorted {
		for v := 0; v < replicas; v++ {
			key = fmt.Appendf(key[:0], "shard-%d/%d", id, v)
			r.points = append(r.points, ringPoint{hash: mix64(fnv64aBytes(key)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id // tie-break deterministically
	})
	return r
}

// FromMembers builds a ring from a dist membership snapshot: every
// active, healthy member contributes points; draining and departed
// members own nothing (their ranges have already moved). The ring's
// epoch is the membership epoch, so dist's epoch ordering carries
// straight through to the shard fence.
func FromMembers(members []dist.MemberInfo, replicas int, epoch uint64) *Ring {
	ids := make([]int, 0, len(members))
	for _, m := range members {
		if m.State == dist.StateActive && m.Healthy {
			ids = append(ids, m.Node)
		}
	}
	return New(ids, replicas, epoch)
}

// Epoch returns the membership epoch this ring was built at.
func (r *Ring) Epoch() uint64 { return r.epoch }

// IDs returns the member shard ids, sorted. The slice is a copy.
func (r *Ring) IDs() []int { return append([]int(nil), r.ids...) }

// Len returns the number of member shards.
func (r *Ring) Len() int { return len(r.ids) }

// Contains reports whether id is a ring member.
func (r *Ring) Contains(id int) bool {
	i := sort.SearchInts(r.ids, id)
	return i < len(r.ids) && r.ids[i] == id
}

// Owner returns the shard id owning doc, or -1 on an empty ring. The
// lookup is allocation-free: an inline FNV-1a over the doc id followed
// by a binary search for the first point at or past the hash (wrapping
// to the first point).
func (r *Ring) Owner(doc string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := mix64(fnv64aString(doc))
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap: past the last point, the first point owns
	}
	return r.points[lo].id
}

// mix64 is the murmur3 finalizer: FNV-1a alone barely avalanches short,
// similar keys ("shard-0/1" vs "shard-0/2" land adjacent), which leaves
// enormous ownership arcs. The finalizer spreads every input bit across
// the word, and ring positions become uniform.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnv64aString is FNV-1a over a string without conversions or
// allocations.
func fnv64aString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

func fnv64aBytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * 0x100000001b3
	}
	return h
}

package shard

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// The batch frame format. Both the client→router and router→shard legs
// accumulate run-coalescible op lines and ship them as one frame; the
// reader transparently interleaves frames with legacy newline-terminated
// lines, so framed and unframed peers share one listener.
//
// Layout (integers big-endian):
//
//	byte 0   0x01 (SOH)       — never the first byte of a text line
//	byte 1   'B'
//	uint16   line count        1..MaxFrameLines
//	uint32   payload length    <= MaxFramePayload
//	uint32   CRC32 (IEEE) of the payload
//	payload  count lines joined with '\n' (no trailing separator)
//	byte     '\n'              trailing terminator
//
// The trailing newline keeps a framed stream line-structured for
// debugging tools and doubles as a cheap torn-frame tripwire.
const (
	frameMagic0 = 0x01
	frameMagic1 = 'B'
	headerSize  = 12

	// MaxFrameLines caps the op count of one frame.
	MaxFrameLines = 4096
	// MaxFramePayload caps one frame's payload bytes, bounding what a
	// decoder will buffer for a single length header.
	MaxFramePayload = 1 << 20
)

// Frame damage taxonomy. Every decode failure is one of these three
// sentinels wrapped in a *FrameError carrying the detail; the decoder
// never panics on arbitrary bytes (FuzzBatchFrameDecode pins this).
var (
	// ErrFrameHeader: the header is structurally invalid — wrong magic,
	// zero or oversized line count, oversized payload, or a payload whose
	// line structure contradicts the declared count.
	ErrFrameHeader = errors.New("shard: bad frame header")
	// ErrFrameCRC: the payload arrived complete but its checksum does not
	// match — bit damage in transit.
	ErrFrameCRC = errors.New("shard: frame payload CRC mismatch")
	// ErrFrameTruncated: the stream ended inside a frame — a torn write.
	ErrFrameTruncated = errors.New("shard: truncated frame")
)

// FrameError is the typed decode failure: Kind is one of the sentinels
// above (errors.Is-matchable), Detail says what was wrong.
type FrameError struct {
	Kind   error
	Detail string
}

func (e *FrameError) Error() string { return e.Kind.Error() + ": " + e.Detail }
func (e *FrameError) Unwrap() error { return e.Kind }

func frameErrf(kind error, format string, args ...any) error {
	return &FrameError{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

// AppendFrame encodes lines as one batch frame appended to dst (grown as
// needed) and returns the extended slice. Lines must be newline-free and
// the batch must respect MaxFrameLines/MaxFramePayload; violations are
// caller bugs and reported as errors so a bad op never poisons a wire.
func AppendFrame(dst []byte, lines []string) ([]byte, error) {
	if len(lines) == 0 {
		return dst, errors.New("shard: empty frame")
	}
	if len(lines) > MaxFrameLines {
		return dst, fmt.Errorf("shard: frame of %d lines exceeds cap %d", len(lines), MaxFrameLines)
	}
	size := len(lines) - 1 // separators
	for _, l := range lines {
		if strings.IndexByte(l, '\n') >= 0 {
			return dst, fmt.Errorf("shard: frame line contains newline: %q", l)
		}
		size += len(l)
	}
	if size > MaxFramePayload {
		return dst, fmt.Errorf("shard: frame payload of %d bytes exceeds cap %d", size, MaxFramePayload)
	}
	dst = append(dst, frameMagic0, frameMagic1)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(lines)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(size))
	payloadAt := len(dst) + 4 // CRC placeholder precedes the payload
	dst = append(dst, 0, 0, 0, 0)
	for i, l := range lines {
		if i > 0 {
			dst = append(dst, '\n')
		}
		dst = append(dst, l...)
	}
	crc := crc32.ChecksumIEEE(dst[payloadAt:])
	binary.BigEndian.PutUint32(dst[payloadAt-4:payloadAt], crc)
	return append(dst, '\n'), nil
}

// FrameReader reads a stream that interleaves batch frames with legacy
// newline-terminated text lines. One byte of lookahead decides which is
// next: text-protocol lines never start with SOH.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps an existing buffered reader (the byte already
// buffered by a handshake read stays visible).
func NewFrameReader(r *bufio.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next returns the next unit of the stream: either a decoded frame
// (isFrame true, lines valid until the next call) or one legacy line
// with its terminator stripped (isFrame false). At clean stream end it
// returns io.EOF; a torn trailing line without its newline is surfaced
// as a legacy line first. A genuine mid-stream read failure (disk
// fault, transport error) is NOT end-of-stream: it propagates as a
// *FrameError wrapping ErrFrameTruncated, so recovery paths can tell
// unread history from a cleanly exhausted log. Decode failures return a
// *FrameError and leave the stream unusable (a framed transport has no
// resynchronization point — the connection is dropped and the sender's
// retry machinery re-sends).
func (fr *FrameReader) Next() (lines []string, legacy string, isFrame bool, err error) {
	first, err := fr.r.Peek(1)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, "", false, io.EOF
		}
		return nil, "", false, frameErrf(ErrFrameTruncated, "read: %v", err)
	}
	if first[0] != frameMagic0 {
		s, rerr := fr.r.ReadString('\n')
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) {
				return nil, "", false, frameErrf(ErrFrameTruncated, "read: %v", rerr)
			}
			if len(s) > 0 {
				return nil, strings.TrimRight(s, "\r"), false, nil
			}
			return nil, "", false, io.EOF
		}
		return nil, strings.TrimRight(s[:len(s)-1], "\r"), false, nil
	}

	if cap(fr.buf) < headerSize {
		fr.buf = make([]byte, headerSize, 512)
	}
	header := fr.buf[:headerSize]
	if _, err := io.ReadFull(fr.r, header); err != nil {
		return nil, "", false, frameErrf(ErrFrameTruncated, "stream ended inside header: %v", err)
	}
	if header[1] != frameMagic1 {
		return nil, "", false, frameErrf(ErrFrameHeader, "bad magic 0x%02x%02x", header[0], header[1])
	}
	count := int(binary.BigEndian.Uint16(header[2:4]))
	size := int(binary.BigEndian.Uint32(header[4:8]))
	want := binary.BigEndian.Uint32(header[8:12])
	if count == 0 || count > MaxFrameLines {
		return nil, "", false, frameErrf(ErrFrameHeader, "line count %d out of range", count)
	}
	if size > MaxFramePayload || size < count-1 {
		return nil, "", false, frameErrf(ErrFrameHeader, "payload length %d invalid for %d lines", size, count)
	}
	if cap(fr.buf) < size+1 {
		fr.buf = make([]byte, size+1)
	}
	body := fr.buf[:size+1] // payload + trailing newline
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, "", false, frameErrf(ErrFrameTruncated, "stream ended inside payload: %v", err)
	}
	payload := body[:size]
	if body[size] != '\n' {
		return nil, "", false, frameErrf(ErrFrameHeader, "missing frame terminator")
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, "", false, frameErrf(ErrFrameCRC, "crc 0x%08x, header says 0x%08x", got, want)
	}
	lines = strings.Split(string(payload), "\n")
	if len(lines) != count {
		return nil, "", false, frameErrf(ErrFrameHeader, "payload has %d lines, header says %d", len(lines), count)
	}
	return lines, "", true, nil
}

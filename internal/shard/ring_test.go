package shard

import (
	"fmt"
	"testing"

	"repro/internal/dist"
)

func TestRingOwnerStableAndTotal(t *testing.T) {
	r := New([]int{0, 1, 2, 3}, 0, 7)
	if r.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", r.Epoch())
	}
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		o := r.Owner(doc)
		if !r.Contains(o) {
			t.Fatalf("owner %d of %q is not a member", o, doc)
		}
		if o2 := r.Owner(doc); o2 != o {
			t.Fatalf("owner of %q unstable: %d then %d", doc, o, o2)
		}
		counts[o]++
	}
	for id, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns nothing", id)
		}
		if n > 600 {
			t.Fatalf("shard %d owns %d/1000 docs — skew too extreme", id, n)
		}
	}
}

func TestRingSingleShardOwnsAll(t *testing.T) {
	r := New([]int{5}, 8, 1)
	for i := 0; i < 64; i++ {
		if o := r.Owner(fmt.Sprintf("d%d", i)); o != 5 {
			t.Fatalf("owner = %d, want 5", o)
		}
	}
	if empty := New(nil, 8, 1); empty.Owner("x") != -1 {
		t.Fatal("empty ring must return -1")
	}
}

// TestRingMinimalMovement pins the consistent-hashing property: adding a
// shard must only move documents onto the new shard, never shuffle
// ownership between surviving shards.
func TestRingMinimalMovement(t *testing.T) {
	before := New([]int{0, 1, 2}, 0, 1)
	after := New([]int{0, 1, 2, 3}, 0, 2)
	moved := 0
	for i := 0; i < 500; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		was, is := before.Owner(doc), after.Owner(doc)
		if was != is {
			moved++
			if is != 3 {
				t.Fatalf("doc %q moved %d→%d; growth may only move docs to the new shard", doc, was, is)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no documents moved to the new shard")
	}
}

func TestRingFromMembers(t *testing.T) {
	members := []dist.MemberInfo{
		{Node: 0, State: dist.StateActive, Healthy: true},
		{Node: 1, State: dist.StateDraining, Healthy: true},
		{Node: 2, State: dist.StateActive, Healthy: false},
		{Node: 3, State: dist.StateActive, Healthy: true},
	}
	r := FromMembers(members, 0, 9)
	if got := r.IDs(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("ring members = %v, want [0 3] (draining and unhealthy excluded)", got)
	}
	if r.Epoch() != 9 {
		t.Fatalf("epoch = %d, want 9", r.Epoch())
	}
}

// TestRingOwnerNoAllocs is the in-package half of the cmd/bench
// shard_route gate: the routing lookup must not allocate.
func TestRingOwnerNoAllocs(t *testing.T) {
	r := New([]int{0, 1, 2, 3}, 0, 1)
	docs := []string{"doc-a", "doc-b", "doc-c", "doc-d"}
	avg := testing.AllocsPerRun(200, func() {
		for _, d := range docs {
			if r.Owner(d) < 0 {
				t.Fatal("no owner")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("Ring.Owner allocates %.1f times per 4 lookups, want 0", avg)
	}
}

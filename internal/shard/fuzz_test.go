package shard

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// frameClassified reports whether err is one of the frame decoder's
// public failure classes. Decoding may fail, but only in vocabulary the
// transport layer can act on.
func frameClassified(err error) bool {
	return errors.Is(err, ErrFrameHeader) || errors.Is(err, ErrFrameCRC) || errors.Is(err, ErrFrameTruncated)
}

// FuzzBatchFrameDecode feeds arbitrary bytes to the batch-frame decoder:
// it must never panic, every failure must classify as ErrFrameHeader,
// ErrFrameCRC or ErrFrameTruncated, and everything it accepts must
// re-encode to bytes that decode to the same lines. The same bytes are
// then recovered as an oplog, which additionally must truncate to a
// clean append boundary.
func FuzzBatchFrameDecode(f *testing.F) {
	// Seed with real frames and characteristic damage to them: torn
	// tails, CRC flips, interleaved legacy lines, header-only prefixes.
	one, err := AppendFrame(nil, []string{`APPLY r0.1 3 doc0 INS 0 "a;"`})
	if err != nil {
		f.Fatal(err)
	}
	batch, err := AppendFrame(nil, []string{`1 INS 0 "x"`, `2 INS 1 "y"`, `3 DEL 0 1`, `4 GET`})
	if err != nil {
		f.Fatal(err)
	}
	mixed := append([]byte("HELLO\n"), one...)
	mixed = append(mixed, "7 GET\n"...)
	mixed = append(mixed, batch...)
	f.Add(one)
	f.Add(batch)
	f.Add(mixed)
	f.Add(one[:len(one)-3])    // torn payload
	f.Add(one[:headerSize-2])  // torn header
	f.Add([]byte{frameMagic0}) // magic byte only
	f.Add([]byte{})            // empty stream
	f.Add([]byte("legacy only\nno frames here\n"))
	flipped := append([]byte(nil), batch...)
	flipped[headerSize+3] ^= 0x20 // payload bit flip → CRC mismatch
	f.Add(flipped)
	badMagic := append([]byte(nil), one...)
	badMagic[1] = 'Z'
	f.Add(badMagic)

	f.Fuzz(func(t *testing.T, b []byte) {
		// Pass 1: the stream decoder. Never panics; typed errors only.
		var units [][]string
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(b)))
		for {
			lines, _, isFrame, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !frameClassified(err) {
					t.Fatalf("unclassified decode error: %v", err)
				}
				break
			}
			if isFrame {
				// Accepted frames must round-trip bit-exactly through the
				// encoder and decode back to the same lines.
				re, err := AppendFrame(nil, lines)
				if err != nil {
					t.Fatalf("accepted frame %q does not re-encode: %v", lines, err)
				}
				lines2, _, isFrame2, err := NewFrameReader(bufio.NewReader(bytes.NewReader(re))).Next()
				if err != nil || !isFrame2 || len(lines2) != len(lines) {
					t.Fatalf("re-encoded frame does not decode: %v", err)
				}
				for i := range lines {
					if lines[i] != lines2[i] {
						t.Fatalf("re-decode line %d = %q, want %q", i, lines2[i], lines[i])
					}
				}
				units = append(units, append([]string(nil), lines...))
			}
		}

		// Pass 2: the same bytes as an oplog file. Recovery truncates at
		// the first damage; the surviving prefix must re-recover cleanly
		// and accept appends.
		path := filepath.Join(t.TempDir(), "ops.log")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Skip()
		}
		l, frames, damage := RecoverOpLog(path)
		if l == nil {
			t.Fatalf("RecoverOpLog returned no log: %v", damage)
		}
		if damage != nil && !frameClassified(damage) {
			t.Fatalf("unclassified oplog damage: %v", damage)
		}
		if err := l.Append([]string{"A r9.9 doc0 INS 0 \"z;\""}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, frames2, damage2 := RecoverOpLog(path)
		if damage2 != nil {
			t.Fatalf("recovery not idempotent: second pass damage %v", damage2)
		}
		if len(frames2) != len(frames)+1 {
			t.Fatalf("second recovery sees %d frames, want %d", len(frames2), len(frames)+1)
		}
		l2.Close()
		_ = units
	})
}

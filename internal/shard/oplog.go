package shard

import (
	"bufio"
	"errors"
	"io"
	"os"
	"sync"
)

// OpLog is a shard incarnation's durable operation journal: an
// append-only file of batch frames, one frame per acked batch, flushed
// before the batch's replies go out (the flush-on-sync rule). After a
// SIGKILL the next incarnation replays the surviving frames to rebuild
// its documents and its applied-rid dedup table, so a router retrying an
// acked-but-unanswered op is deduplicated across the crash.
//
// The log's unit is the frame, not the byte: a frame either recovers
// whole (its CRC held) or marks the end of usable history. Damage is
// torn-tail tolerated — RecoverOpLog truncates at the first bad frame so
// re-opened logs append from a clean boundary. The record lines inside
// each frame are opaque to this package; internal/collab encodes
// snapshot and op records on top.
type OpLog struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	closed bool
	path   string
}

// ErrOpLogClosed is returned by Append/Flush after Close — the window in
// which a killed incarnation's zombie writers discover that the resumed
// incarnation owns the file now.
var ErrOpLogClosed = errors.New("shard: oplog closed")

// CreateOpLog truncates path and opens a fresh log (a new incarnation
// with snapshot-transferred or initial state writes its snapshot frame
// first).
func CreateOpLog(path string) (*OpLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &OpLog{f: f, w: bufio.NewWriterSize(f, 1<<16), path: path}, nil
}

// RecoverOpLog scans path, returning every intact frame's lines in
// append order, truncating the file at the first damaged frame, and
// reopening it for append. The returned error classifies any damage
// found (*FrameError wrapping ErrFrameTruncated/ErrFrameCRC/
// ErrFrameHeader) while the log itself is still usable — trailing damage
// is the expected SIGKILL artifact, not a failure.
func RecoverOpLog(path string) (*OpLog, [][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var (
		frames [][]string
		good   int64 // offset past the last intact frame
		damage error
	)
	cr := &countingReader{r: f}
	fr := NewFrameReader(bufio.NewReader(cr))
	for {
		lines, _, isFrame, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil || !isFrame {
			// A legacy line in an oplog is damage too: every record was
			// written framed, so bare bytes mean a torn or corrupt region.
			if err == nil {
				err = frameErrf(ErrFrameHeader, "unframed bytes in oplog")
			}
			damage = err
			break
		}
		frames = append(frames, append([]string(nil), lines...))
		good = cr.n - int64(fr.r.Buffered())
	}
	f.Close()
	if damage != nil {
		if err := os.Truncate(path, good); err != nil {
			return nil, nil, err
		}
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &OpLog{f: af, w: bufio.NewWriterSize(af, 1<<16), path: path}, frames, damage
}

// countingReader tracks how many bytes the decoder consumed from the
// file so recovery can truncate at the exact end of the last good frame.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Append buffers one frame of record lines. It does not hit the disk;
// call Flush before acking (flush-on-sync).
func (l *OpLog) Append(lines []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrOpLogClosed
	}
	frame, err := AppendFrame(nil, lines)
	if err != nil {
		return err
	}
	_, err = l.w.Write(frame)
	return err
}

// Flush pushes buffered frames to the file — the durability point an ack
// must not precede. (The in-process kill model closes the descriptor;
// fsync is not required for it, and the OS page cache covers a real
// SIGKILL of the process.)
func (l *OpLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrOpLogClosed
	}
	return l.w.Flush()
}

// Close flushes and closes the file. Further Append/Flush calls fail
// with ErrOpLogClosed — the fence that keeps a killed incarnation's
// stragglers from interleaving with the resumed incarnation's writes.
func (l *OpLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.w.Flush()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Path returns the log's file path.
func (l *OpLog) Path() string { return l.path }

package shard

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// drain reads a stream to EOF, collecting every unit.
func drain(t *testing.T, raw []byte) (frames [][]string, legacy []string, err error) {
	t.Helper()
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(raw)))
	for {
		lines, line, isFrame, e := fr.Next()
		if e == io.EOF {
			return frames, legacy, nil
		}
		if e != nil {
			return frames, legacy, e
		}
		if isFrame {
			frames = append(frames, append([]string(nil), lines...))
		} else {
			legacy = append(legacy, line)
		}
	}
}

func TestFrameRoundtrip(t *testing.T) {
	batches := [][]string{
		{"APPLY r0.1 3 doc0 INS 0 \"a;\""},
		{"1 INS 0 \"x\"", "2 INS 1 \"y\"", "3 DEL 0 1"},
	}
	var raw []byte
	var err error
	for _, b := range batches {
		raw, err = AppendFrame(raw, b)
		if err != nil {
			t.Fatal(err)
		}
	}
	frames, legacy, err := drain(t, raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != 0 || len(frames) != len(batches) {
		t.Fatalf("got %d frames %d legacy, want %d frames", len(frames), len(legacy), len(batches))
	}
	for i := range batches {
		if strings.Join(frames[i], "|") != strings.Join(batches[i], "|") {
			t.Fatalf("frame %d = %q, want %q", i, frames[i], batches[i])
		}
	}
}

func TestFrameInterleavedWithLegacyLines(t *testing.T) {
	raw := []byte("HELLO\n")
	raw, err := AppendFrame(raw, []string{"1 INS 0 \"a\"", "2 INS 1 \"b\""})
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, "3 GET\n"...)
	raw, err = AppendFrame(raw, []string{"4 BYE"})
	if err != nil {
		t.Fatal(err)
	}
	frames, legacy, err := drain(t, raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || len(legacy) != 2 {
		t.Fatalf("got %d frames %d legacy lines, want 2 and 2", len(frames), len(legacy))
	}
	if legacy[0] != "HELLO" || legacy[1] != "3 GET" {
		t.Fatalf("legacy lines = %q", legacy)
	}
}

func TestFrameCRCFlip(t *testing.T) {
	raw, err := AppendFrame(nil, []string{"1 INS 0 \"abc\""})
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40 // flip a payload bit
	_, _, err = drain(t, raw)
	if !errors.Is(err, ErrFrameCRC) {
		t.Fatalf("err = %v, want ErrFrameCRC", err)
	}
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("err %T is not *FrameError", err)
	}
}

func TestFrameTornTail(t *testing.T) {
	raw, err := AppendFrame(nil, []string{"1 INS 0 \"abcdefgh\""})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := drain(t, raw[:cut])
		if !errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrFrameHeader) && !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("cut at %d byte(s): err = %v, want a typed frame error", cut, err)
		}
	}
}

func TestFrameHeaderDamage(t *testing.T) {
	good, err := AppendFrame(nil, []string{"1 GET"})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bad second magic": append([]byte{frameMagic0, 'X'}, good[2:]...),
		"zero line count":  append([]byte{frameMagic0, frameMagic1, 0, 0}, good[4:]...),
		"oversized length": {frameMagic0, frameMagic1, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0},
	}
	for name, raw := range cases {
		_, _, err := drain(t, raw)
		if !errors.Is(err, ErrFrameHeader) {
			t.Fatalf("%s: err = %v, want ErrFrameHeader", name, err)
		}
	}
}

// faultyReader yields some good bytes, then a non-EOF read error — the
// shape of a disk fault or transport reset mid-stream.
type faultyReader struct {
	data []byte
	err  error
}

func (r *faultyReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestFrameReaderPropagatesReadErrors: a genuine mid-stream read failure
// is not end-of-stream. Next must surface it as a typed truncation error
// rather than io.EOF, or recovery paths (RecoverOpLog) would silently
// treat acked-but-unread history as a complete log.
func TestFrameReaderPropagatesReadErrors(t *testing.T) {
	good, err := AppendFrame(nil, []string{"1 INS 0 \"a\""})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated disk fault")
	fr := NewFrameReader(bufio.NewReader(&faultyReader{data: good, err: boom}))
	if _, _, isFrame, err := fr.Next(); err != nil || !isFrame {
		t.Fatalf("intact frame before the fault: isFrame=%v err=%v", isFrame, err)
	}
	_, _, _, err = fr.Next()
	if errors.Is(err, io.EOF) {
		t.Fatal("mid-stream read fault collapsed to io.EOF")
	}
	if !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("err = %v, want ErrFrameTruncated", err)
	}
}

func TestAppendFrameRejectsBadInput(t *testing.T) {
	if _, err := AppendFrame(nil, nil); err == nil {
		t.Fatal("empty frame must be rejected")
	}
	if _, err := AppendFrame(nil, []string{"a\nb"}); err == nil {
		t.Fatal("embedded newline must be rejected")
	}
	if _, err := AppendFrame(nil, make([]string, MaxFrameLines+1)); err == nil {
		t.Fatal("oversized line count must be rejected")
	}
}

package detcheck

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestCheckDeterministic(t *testing.T) {
	rep, err := Check(10, func() (uint64, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic() || rep.Runs != 10 || rep.Fingerprints[42] != 10 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "deterministic") {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestCheckNonDeterministic(t *testing.T) {
	var n atomic.Uint64
	rep, err := Check(6, func() (uint64, error) { return n.Add(1) % 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deterministic() {
		t.Fatalf("should detect divergence: %+v", rep)
	}
	if !strings.Contains(rep.String(), "NON-DETERMINISTIC: 2 distinct") {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestCheckError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Check(3, func() (uint64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckAcrossProcs(t *testing.T) {
	rep, err := CheckAcrossProcs(3, []int{1, 2}, func() (uint64, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 6 || !rep.Deterministic() {
		t.Fatalf("report = %+v", rep)
	}
}

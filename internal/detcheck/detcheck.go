// Package detcheck is the determinism checker used across the test suite
// and the CLI tools: it runs a scenario repeatedly — optionally across
// several GOMAXPROCS settings — and verifies every execution produced the
// same fingerprint. A deterministic program has exactly one observable
// outcome; any second fingerprint is a reportable violation.
//
// Since the schedule explorer landed, detcheck is a thin compatibility
// wrapper: Check and CheckAcrossProcs ride internal/explore's random-walk
// strategy (as Opaque scenarios — self-contained runs the explorer
// samples but cannot steer). Programs wanting steered schedules,
// exhaustive enumeration or shrinking counterexamples should use
// internal/explore directly.
package detcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/explore"
)

// Scenario produces one run's result fingerprint. It must build all its
// state internally so repeated invocations are independent.
type Scenario func() (uint64, error)

// Report summarizes a determinism check.
type Report struct {
	Runs         int
	Fingerprints map[uint64]int // fingerprint -> occurrences
}

// Deterministic reports whether all runs agreed.
func (r Report) Deterministic() bool { return len(r.Fingerprints) <= 1 }

// String renders the report.
func (r Report) String() string {
	if r.Deterministic() {
		for fp := range r.Fingerprints {
			return fmt.Sprintf("deterministic: %d runs, fingerprint %016x", r.Runs, fp)
		}
		return fmt.Sprintf("deterministic: %d runs", r.Runs)
	}
	fps := make([]uint64, 0, len(r.Fingerprints))
	for fp := range r.Fingerprints {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	var sb strings.Builder
	fmt.Fprintf(&sb, "NON-DETERMINISTIC: %d distinct outcomes over %d runs:", len(fps), r.Runs)
	for _, fp := range fps {
		fmt.Fprintf(&sb, " %016x×%d", fp, r.Fingerprints[fp])
	}
	return sb.String()
}

// Check runs scenario n times and collects the outcome fingerprints.
func Check(n int, scenario Scenario) (Report, error) {
	return run(n, nil, scenario)
}

// CheckAcrossProcs runs scenario n times under each of the given
// GOMAXPROCS values (restoring the original afterwards), accumulating all
// outcomes into one report — the paper's "regardless of the number of
// cores" claim in executable form.
func CheckAcrossProcs(n int, procs []int, scenario Scenario) (Report, error) {
	return run(n, procs, scenario)
}

// run adapts the explorer's random walk to detcheck's historical
// contract: exactly n runs per GOMAXPROCS value, stop at the first
// failing run, report partial fingerprints alongside the error.
func run(n int, procs []int, scenario Scenario) (Report, error) {
	rep := Report{Fingerprints: make(map[uint64]int)}
	if n <= 0 {
		return rep, nil
	}
	res, err := explore.Run(
		explore.Opaque("detcheck", scenario),
		explore.Options{Schedules: n, Procs: procs, FailFast: true},
	)
	if err != nil {
		return rep, err
	}
	rep.Fingerprints = res.Outcomes
	// Runs counts n per attempted GOMAXPROCS pass, even when a failing
	// run cut the pass short — the historical accounting.
	passes := (res.Schedules + n - 1) / n
	rep.Runs = passes * n
	for _, v := range res.Violations {
		if v.Kind == explore.KindError {
			idx := res.Schedules - 1 - (passes-1)*n
			return rep, fmt.Errorf("detcheck: run %d failed: %w", idx, v.Err)
		}
	}
	return rep, nil
}

// Package detcheck is the determinism checker used across the test suite
// and the CLI tools: it runs a scenario repeatedly — optionally across
// several GOMAXPROCS settings — and verifies every execution produced the
// same fingerprint. A deterministic program has exactly one observable
// outcome; any second fingerprint is a reportable violation.
package detcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// Scenario produces one run's result fingerprint. It must build all its
// state internally so repeated invocations are independent.
type Scenario func() (uint64, error)

// Report summarizes a determinism check.
type Report struct {
	Runs         int
	Fingerprints map[uint64]int // fingerprint -> occurrences
}

// Deterministic reports whether all runs agreed.
func (r Report) Deterministic() bool { return len(r.Fingerprints) <= 1 }

// String renders the report.
func (r Report) String() string {
	if r.Deterministic() {
		for fp := range r.Fingerprints {
			return fmt.Sprintf("deterministic: %d runs, fingerprint %016x", r.Runs, fp)
		}
		return fmt.Sprintf("deterministic: %d runs", r.Runs)
	}
	fps := make([]uint64, 0, len(r.Fingerprints))
	for fp := range r.Fingerprints {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	var sb strings.Builder
	fmt.Fprintf(&sb, "NON-DETERMINISTIC: %d distinct outcomes over %d runs:", len(fps), r.Runs)
	for _, fp := range fps {
		fmt.Fprintf(&sb, " %016x×%d", fp, r.Fingerprints[fp])
	}
	return sb.String()
}

// Check runs scenario n times and collects the outcome fingerprints.
func Check(n int, scenario Scenario) (Report, error) {
	rep := Report{Runs: n, Fingerprints: make(map[uint64]int)}
	for i := 0; i < n; i++ {
		fp, err := scenario()
		if err != nil {
			return rep, fmt.Errorf("detcheck: run %d failed: %w", i, err)
		}
		rep.Fingerprints[fp]++
	}
	return rep, nil
}

// CheckAcrossProcs runs scenario n times under each of the given
// GOMAXPROCS values (restoring the original afterwards), accumulating all
// outcomes into one report — the paper's "regardless of the number of
// cores" claim in executable form.
func CheckAcrossProcs(n int, procs []int, scenario Scenario) (Report, error) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	rep := Report{Fingerprints: make(map[uint64]int)}
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		sub, err := Check(n, scenario)
		rep.Runs += sub.Runs
		for fp, c := range sub.Fingerprints {
			rep.Fingerprints[fp] += c
		}
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// Package graph provides deterministic parallel graph algorithms built on
// Spawn & Merge — a second generality probe (with package mapreduce) for
// the paper's closing question about further use cases.
//
// The algorithms are level-synchronous: each BFS level fans the frontier
// out over tasks whose only output is a mergeable set of neighbor
// candidates. Sets merge idempotently and MergeAll keeps the levels in
// deterministic lockstep, so distances, parents and component labels are
// identical on every run and any degree of parallelism.
package graph

import (
	"fmt"

	"repro/internal/mergeable"
	"repro/internal/task"
)

// Graph is a simple undirected graph as an adjacency list. Vertices are
// 0..N-1. The zero value is unusable; create with New.
type Graph struct {
	adj [][]int
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]int, n)}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge connects u and v (undirected). It panics on out-of-range
// vertices, matching slice semantics.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj)))
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// Neighbors returns v's adjacency list (shared slice; do not modify).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// BFS computes the distance (in edges) from src to every vertex, -1 for
// unreachable ones, expanding each level in parallel across up to tasks
// worker tasks.
func BFS(g *Graph, src, tasks int) ([]int, error) {
	n := g.Len()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("graph: source %d out of range [0,%d)", src, n)
	}
	if tasks < 1 {
		tasks = 1
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}

	for level := 1; len(frontier) > 0; level++ {
		candidates := mergeable.NewSet[int]()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			t := tasks
			if t > len(frontier) {
				t = len(frontier)
			}
			for w := 0; w < t; w++ {
				w := w
				ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
					out := data[0].(*mergeable.Set[int])
					// Strided partition of the frontier; the task emits
					// every neighbor, the (deterministic) filter below
					// keeps the unvisited ones.
					for i := w; i < len(frontier); i += t {
						for _, nb := range g.Neighbors(frontier[i]) {
							out.Add(nb)
						}
					}
					return nil
				}, data[0])
			}
			return ctx.MergeAll()
		}, candidates)
		if err != nil {
			return nil, err
		}

		frontier = frontier[:0]
		for _, v := range candidates.Values() { // deterministic order
			if dist[v] == -1 {
				dist[v] = level
				frontier = append(frontier, v)
			}
		}
	}
	return dist, nil
}

// Components labels every vertex with its connected component: the label
// is the smallest vertex index in the component. BFS levels run in
// parallel; labeling order (ascending start vertex) is deterministic.
func Components(g *Graph, tasks int) ([]int, error) {
	n := g.Len()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		dist, err := BFS(g, v, tasks)
		if err != nil {
			return nil, err
		}
		for u, d := range dist {
			if d >= 0 && labels[u] == -1 {
				labels[u] = v
			}
		}
	}
	return labels, nil
}

// Degrees returns every vertex's degree, computed in parallel with a
// mergeable counter per stripe — a small demonstration of commutative
// aggregation.
func Degrees(g *Graph, tasks int) ([]int, error) {
	n := g.Len()
	if tasks < 1 {
		tasks = 1
	}
	out := make([]int, n)
	counts := mergeable.NewMap[int, int]()
	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		t := tasks
		if t > n {
			t = n
		}
		for w := 0; w < t; w++ {
			w := w
			ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				m := data[0].(*mergeable.Map[int, int])
				for v := w; v < n; v += t {
					m.Set(v, len(g.Neighbors(v))) // disjoint keys: conflict-free
				}
				return nil
			}, data[0])
		}
		return ctx.MergeAll()
	}, counts)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		d, _ := counts.Get(v)
		out[v] = d
	}
	return out, nil
}

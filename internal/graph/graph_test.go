package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// seqBFS is the reference implementation.
func seqBFS(g *Graph, src int) []int {
	dist := make([]int, g.Len())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(v) {
			if dist[nb] == -1 {
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

func lineGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestBFSLine(t *testing.T) {
	g := lineGraph(6)
	dist, err := BFS(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("dist = %v", dist)
	}
}

func TestBFSStarAndUnreachable(t *testing.T) {
	g := New(6)
	for i := 1; i < 4; i++ {
		g.AddEdge(0, i) // star 0-{1,2,3}; 4,5 isolated
	}
	g.AddEdge(4, 5)
	dist, err := BFS(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist, []int{0, 1, 1, 1, -1, -1}) {
		t.Fatalf("dist = %v", dist)
	}
}

func TestBFSErrors(t *testing.T) {
	g := New(3)
	if _, err := BFS(g, 9, 1); err == nil {
		t.Fatal("out-of-range source should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad edge should panic")
		}
	}()
	g.AddEdge(0, 7)
}

// TestBFSMatchesSequential drives random graphs through the parallel BFS
// with random task counts and compares against the reference.
func TestBFSMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		g := New(n)
		for e := 0; e < r.Intn(3*n); e++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		src := r.Intn(n)
		tasks := 1 + r.Intn(6)
		got, err := BFS(g, src, tasks)
		if err != nil {
			t.Log(err)
			return false
		}
		want := seqBFS(g, src)
		if !reflect.DeepEqual(got, want) {
			t.Logf("seed %d: got %v want %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestBFSTaskCountInvariant pins that the task count never changes the
// answer.
func TestBFSTaskCountInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := New(40)
	for e := 0; e < 90; e++ {
		g.AddEdge(r.Intn(40), r.Intn(40))
	}
	want, err := BFS(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tasks := range []int{2, 3, 8, 64, 0} {
		got, err := BFS(g, 0, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tasks=%d: %v != %v", tasks, got, want)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5 isolated, 6 isolated
	g.AddEdge(5, 5) // self loop
	labels, err := Components(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, []int{0, 0, 0, 3, 3, 5, 6}) {
		t.Fatalf("labels = %v", labels)
	}
}

func TestDegrees(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	deg, err := Degrees(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(deg, []int{3, 1, 1, 1}) {
		t.Fatalf("deg = %v", deg)
	}
	empty := New(0)
	if d, err := Degrees(empty, 3); err != nil || len(d) != 0 {
		t.Fatalf("empty degrees = %v, %v", d, err)
	}
}

// Package memnet provides an in-memory substitute for TCP networking so
// the paper's server-software example (Listing 3) runs hermetically: a
// Listener with blocking Accept semantics and full-duplex stream
// connections built on net.Pipe. DESIGN.md records this substitution —
// the blocking behavior the example depends on (a task parked in Accept
// while the root merges siblings) is preserved exactly.
package memnet

import (
	"errors"
	"net"
	"sync"
)

// ErrClosed is returned by Accept and Dial after the listener closed.
var ErrClosed = errors.New("memnet: listener closed")

// Listener accepts in-memory connections. Create one with Listen.
type Listener struct {
	mu      sync.Mutex
	backlog chan net.Conn
	done    chan struct{}
	closed  bool
}

// Listen creates a listener with the given accept backlog (minimum 1).
func Listen(backlog int) *Listener {
	if backlog < 1 {
		backlog = 1
	}
	return &Listener{
		backlog: make(chan net.Conn, backlog),
		done:    make(chan struct{}),
	}
}

// Accept blocks until a client dials in or the listener is closed.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		// Drain connections that raced with Close so dialers holding a
		// conn get a working peer or a clear closure.
		select {
		case c := <-l.backlog:
			return c, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Dial connects to the listener, returning the client end of a fresh
// full-duplex in-memory stream. It blocks while the backlog is full.
func (l *Listener) Dial() (net.Conn, error) {
	// Check closure first: a ready backlog slot must not win the race
	// against an already-closed listener.
	select {
	case <-l.done:
		return nil, ErrClosed
	default:
	}
	client, server := net.Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, ErrClosed
	}
}

// Close unblocks all pending and future Accept and Dial calls.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
	return nil
}

package memnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

func TestDialAccept(t *testing.T) {
	l := Listen(4)
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			done <- err
			return
		}
		_, err = fmt.Fprintf(conn, "echo:%s", line)
		done <- err
	}()

	client, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := fmt.Fprintln(client, "hello"); err != nil {
		t.Fatal(err)
	}
	reply, err := bufio.NewReader(client).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if reply != "echo:hello\n" {
		t.Fatalf("reply = %q", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAcceptBlocksUntilDial(t *testing.T) {
	l := Listen(1)
	defer l.Close()
	got := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			got <- c
		}
	}()
	select {
	case <-got:
		t.Fatal("accept returned before dial")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := l.Dial(); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-got:
		c.Close()
	case <-time.After(time.Second):
		t.Fatal("accept did not observe dial")
	}
}

func TestCloseUnblocksAccept(t *testing.T) {
	l := Listen(1)
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("accept not unblocked by close")
	}
	if _, err := l.Dial(); !errors.Is(err, ErrClosed) {
		t.Fatalf("dial after close = %v", err)
	}
	if err := l.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
}

func TestMultipleConnections(t *testing.T) {
	l := Listen(8)
	defer l.Close()
	const conns = 5
	for i := 0; i < conns; i++ {
		go func(i int) {
			c, err := l.Dial()
			if err != nil {
				return
			}
			fmt.Fprintf(c, "client %d\n", i)
			c.Close()
		}(i)
	}
	seen := map[string]bool{}
	for i := 0; i < conns; i++ {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		seen[line] = true
		c.Close()
	}
	if len(seen) != conns {
		t.Fatalf("saw %d distinct clients, want %d", len(seen), conns)
	}
}

// TestDialClosedListener: Dial against an already-closed listener must
// return promptly with ErrClosed rather than blocking.
func TestDialClosedListener(t *testing.T) {
	l := Listen(2)
	l.Close()
	done := make(chan error, 1)
	go func() {
		_, err := l.Dial()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Dial after Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Dial against a closed listener blocked")
	}
}

// TestAcceptAfterClose: Accept on a closed listener returns ErrClosed,
// but first drains connections that raced with Close.
func TestAcceptAfterClose(t *testing.T) {
	l := Listen(2)
	client, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	l.Close()
	// The pre-Close dial is still deliverable.
	conn, err := l.Accept()
	if err != nil {
		t.Fatalf("Accept should drain the raced connection, got %v", err)
	}
	conn.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept on drained closed listener = %v, want ErrClosed", err)
	}
}

// TestCloseDuringInflightDial: closing while dialers are parked on a full
// backlog must unblock every one of them with ErrClosed (or let the dial
// through if it won the race), never leave them hanging.
func TestCloseDuringInflightDial(t *testing.T) {
	l := Listen(1)
	// Fill the backlog so subsequent dials block.
	if _, err := l.Dial(); err != nil {
		t.Fatal(err)
	}
	const dialers = 8
	results := make(chan error, dialers)
	for i := 0; i < dialers; i++ {
		go func() {
			_, err := l.Dial()
			results <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the dialers park
	l.Close()
	for i := 0; i < dialers; i++ {
		select {
		case err := <-results:
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("in-flight Dial = %v, want nil or ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("in-flight Dial still blocked after Close")
		}
	}
	// Close must be idempotent.
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

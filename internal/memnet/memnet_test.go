package memnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

func TestDialAccept(t *testing.T) {
	l := Listen(4)
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			done <- err
			return
		}
		_, err = fmt.Fprintf(conn, "echo:%s", line)
		done <- err
	}()

	client, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := fmt.Fprintln(client, "hello"); err != nil {
		t.Fatal(err)
	}
	reply, err := bufio.NewReader(client).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if reply != "echo:hello\n" {
		t.Fatalf("reply = %q", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAcceptBlocksUntilDial(t *testing.T) {
	l := Listen(1)
	defer l.Close()
	got := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			got <- c
		}
	}()
	select {
	case <-got:
		t.Fatal("accept returned before dial")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := l.Dial(); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-got:
		c.Close()
	case <-time.After(time.Second):
		t.Fatal("accept did not observe dial")
	}
}

func TestCloseUnblocksAccept(t *testing.T) {
	l := Listen(1)
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("accept not unblocked by close")
	}
	if _, err := l.Dial(); !errors.Is(err, ErrClosed) {
		t.Fatalf("dial after close = %v", err)
	}
	if err := l.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
}

func TestMultipleConnections(t *testing.T) {
	l := Listen(8)
	defer l.Close()
	const conns = 5
	for i := 0; i < conns; i++ {
		go func(i int) {
			c, err := l.Dial()
			if err != nil {
				return
			}
			fmt.Fprintf(c, "client %d\n", i)
			c.Close()
		}(i)
	}
	seen := map[string]bool{}
	for i := 0; i < conns; i++ {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		seen[line] = true
		c.Close()
	}
	if len(seen) != conns {
		t.Fatalf("saw %d distinct clients, want %d", len(seen), conns)
	}
}

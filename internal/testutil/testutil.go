// Package testutil holds small helpers shared by the repository's test
// suites.
package testutil

import (
	"testing"
	"time"
)

// WithTimeout fails the test if fn does not return within d — the guard
// used by every test that could in principle block forever. The select
// runs on the calling (test) goroutine, so the Fatal is legal; fn runs
// on a fresh goroutine and is abandoned on timeout.
func WithTimeout(t testing.TB, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("timed out: blocked unexpectedly")
	}
}

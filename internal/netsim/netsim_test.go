package netsim

import (
	"testing"
	"time"
)

// testConfig keeps the simulation small enough for quick, race-enabled
// test runs while keeping all the structure of the paper's setup.
func testConfig(routing Routing, workload int) Config {
	return Config{Hosts: 4, Messages: 8, TTL: 6, Workload: workload, Routing: routing, Seed: 7}
}

func runWithDeadline(t *testing.T, name string, cfg Config) Result {
	t.Helper()
	type out struct {
		r   Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		r, err := RunEngine(name, cfg)
		ch <- out{r, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("%s: %v", name, o.err)
		}
		return o.r
	case <-time.After(120 * time.Second):
		t.Fatalf("%s: simulation hung", name)
		return Result{}
	}
}

func TestWorkDeterministicAndLoadSensitive(t *testing.T) {
	a := Work(42, 0)
	b := Work(42, 0)
	if a != b {
		t.Fatalf("Work is not deterministic: %x != %x", a, b)
	}
	if Work(42, 1) == a {
		t.Fatalf("extra iterations should change the digest")
	}
	if Work(43, 0) == a {
		t.Fatalf("different payloads should hash differently")
	}
}

func TestInitialMessageDistribution(t *testing.T) {
	cfg := testConfig(RouteHash, 0)
	queues := cfg.initialMessages()
	if len(queues) != cfg.Hosts {
		t.Fatalf("queues = %d", len(queues))
	}
	total := 0
	for _, q := range queues {
		total += len(q)
		for _, m := range q {
			if m.TTL != cfg.TTL {
				t.Fatalf("TTL = %d", m.TTL)
			}
		}
	}
	if total != cfg.Messages {
		t.Fatalf("distributed %d messages, want %d", total, cfg.Messages)
	}
	// Round-robin: hosts differ by at most one message.
	if len(queues[0])-len(queues[cfg.Hosts-1]) > 1 {
		t.Fatalf("unbalanced distribution: %d vs %d", len(queues[0]), len(queues[cfg.Hosts-1]))
	}
}

func TestRouting(t *testing.T) {
	if RouteRing.dest(3, 12345, 4) != 0 {
		t.Fatalf("ring dest wrong")
	}
	if RouteHash.dest(3, 13, 4) != 1 {
		t.Fatalf("hash dest wrong")
	}
	if RouteRing.String() != "ring" || RouteHash.String() != "hash" {
		t.Fatalf("routing names wrong")
	}
}

// TestAllEnginesComplete verifies every engine processes exactly
// Messages×TTL hops.
func TestAllEnginesComplete(t *testing.T) {
	for _, e := range Engines() {
		cfg := testConfig(e.Routing, 0)
		r := runWithDeadline(t, e.Name, cfg)
		if r.Hops != cfg.TotalHops() {
			t.Errorf("%s: hops = %d, want %d", e.Name, r.Hops, cfg.TotalHops())
		}
		if r.Engine != e.Name {
			t.Errorf("engine name = %q, want %q", r.Engine, e.Name)
		}
		total := 0
		for _, tr := range r.Traces {
			total += len(tr)
		}
		if int64(total) != cfg.TotalHops() {
			t.Errorf("%s: trace entries = %d, want %d", e.Name, total, cfg.TotalHops())
		}
	}
}

// TestDeterministicEnginesStable is the headline determinism check: every
// engine that claims deterministic results must fingerprint identically
// across repeated runs. This covers the paper's central claim that under
// Spawn & Merge even the hash-routing simulation is deterministic.
func TestDeterministicEnginesStable(t *testing.T) {
	const runs = 5
	for _, e := range Engines() {
		if !e.DeterministicResults {
			continue
		}
		cfg := testConfig(e.Routing, 0)
		want := runWithDeadline(t, e.Name, cfg).Fingerprint
		for i := 1; i < runs; i++ {
			if got := runWithDeadline(t, e.Name, cfg).Fingerprint; got != want {
				t.Errorf("%s: run %d fingerprint %x != %x", e.Name, i, got, want)
			}
		}
	}
}

// TestCrossEngineTraceMultisets pins a strong cross-engine oracle: message
// paths are content-determined, so the multiset of (host, digest)
// processings must agree between the conventional and the Spawn & Merge
// engines for the same routing — the engines simulate the same network.
func TestCrossEngineTraceMultisets(t *testing.T) {
	for _, routing := range []Routing{RouteHash, RouteRing} {
		cfg := testConfig(routing, 0)
		var names []string
		if routing == RouteHash {
			names = []string{"conventional-nondet", "spawnmerge-nondet"}
		} else {
			names = []string{"conventional-det", "spawnmerge-det"}
		}
		a := runWithDeadline(t, names[0], cfg)
		b := runWithDeadline(t, names[1], cfg)
		if a.TraceMultisetFingerprint() != b.TraceMultisetFingerprint() {
			t.Errorf("routing %s: %s and %s disagree on the processed-message multiset",
				routing, names[0], names[1])
		}
	}
}

// TestRingEnginesIdenticalTraces checks the stronger property for ring
// routing: with a single producer per queue, even the per-host processing
// order must match between substrates.
func TestRingEnginesIdenticalTraces(t *testing.T) {
	cfg := testConfig(RouteRing, 0)
	conv := runWithDeadline(t, "conventional-det", cfg)
	sm := runWithDeadline(t, "spawnmerge-det", cfg)
	if conv.Fingerprint != sm.Fingerprint {
		t.Errorf("ring traces differ between conventional (%x) and spawn-merge (%x)",
			conv.Fingerprint, sm.Fingerprint)
	}
}

// TestWorkloadChangesResultNotDeterminism sweeps l and confirms results
// stay deterministic while the digests (and thus fingerprints) change.
func TestWorkloadChangesResultNotDeterminism(t *testing.T) {
	cfg0 := testConfig(RouteHash, 0)
	cfg5 := testConfig(RouteHash, 5)
	r0 := runWithDeadline(t, "spawnmerge-nondet", cfg0)
	r5a := runWithDeadline(t, "spawnmerge-nondet", cfg5)
	r5b := runWithDeadline(t, "spawnmerge-nondet", cfg5)
	if r0.Fingerprint == r5a.Fingerprint {
		t.Errorf("different workloads should produce different traces")
	}
	if r5a.Fingerprint != r5b.Fingerprint {
		t.Errorf("workload 5 runs diverged: %x != %x", r5a.Fingerprint, r5b.Fingerprint)
	}
}

// TestSeedChangesResult confirms the seed feeds through to the traces.
func TestSeedChangesResult(t *testing.T) {
	cfg := testConfig(RouteHash, 0)
	a := runWithDeadline(t, "spawnmerge-nondet", cfg)
	cfg.Seed = 99
	b := runWithDeadline(t, "spawnmerge-nondet", cfg)
	if a.Fingerprint == b.Fingerprint {
		t.Errorf("different seeds should produce different traces")
	}
}

// TestUnknownEngine covers the harness error path.
func TestUnknownEngine(t *testing.T) {
	if _, err := RunEngine("no-such-engine", DefaultConfig()); err == nil {
		t.Fatal("unknown engine should error")
	}
}

// TestDefaultConfigMatchesPaper pins the paper's evaluation parameters.
func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Hosts != 20 || cfg.Messages != 100 || cfg.TTL != 100 {
		t.Fatalf("default config %+v does not match the paper (20 hosts, 100 messages, TTL 100)", cfg)
	}
	if cfg.TotalHops() != 10000 {
		t.Fatalf("total hops = %d, want 10000", cfg.TotalHops())
	}
}

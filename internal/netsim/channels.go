package netsim

import (
	"sync"
	"sync/atomic"
	"time"
)

// RunConventionalChannels is a second conventional baseline beyond the
// paper's: the Go-idiomatic implementation of the same simulation, with
// one goroutine per host receiving from a buffered channel ("do not
// communicate by sharing memory"). It has exactly the conventional
// engines' semantics — including the hash-routing races on queue order —
// and exists to show the measured Spawn & Merge overheads are not an
// artifact of the mutex-based queue substrate.
func RunConventionalChannels(cfg Config) Result {
	queues := make([]chan Message, cfg.Hosts)
	for i := range queues {
		// Every live message could sit in one queue; this capacity keeps
		// sends non-blocking so hosts cannot deadlock on full peers.
		queues[i] = make(chan Message, cfg.Messages+1)
	}
	for i, initial := range cfg.initialMessages() {
		for _, m := range initial {
			queues[i] <- m
		}
	}
	traces := make([][]uint64, cfg.Hosts)
	done := make(chan struct{})

	var remaining atomic.Int64
	remaining.Store(cfg.TotalHops())

	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < cfg.Hosts; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case m := <-queues[id]:
					digest := Work(m.Payload, cfg.Workload)
					traces[id] = append(traces[id], digest)
					if m.TTL > 1 {
						queues[cfg.Routing.dest(id, digest, cfg.Hosts)] <- Message{Payload: digest, TTL: m.TTL - 1}
					}
					if remaining.Add(-1) == 0 {
						close(done)
						return
					}
				case <-done:
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	name := "channels-nondet"
	if cfg.Routing == RouteRing {
		name = "channels-det"
	}
	return Result{
		Engine:      name,
		Config:      cfg,
		Hops:        cfg.TotalHops() - remaining.Load(),
		Elapsed:     elapsed,
		Fingerprint: fingerprintTraces(traces),
		Traces:      traces,
	}
}

package netsim

import "testing"

// TestChannelBaselineCompletes verifies the Go-idiomatic baseline
// processes exactly the configured hops.
func TestChannelBaselineCompletes(t *testing.T) {
	for _, e := range BaselineEngines() {
		cfg := testConfig(e.Routing, 0)
		r := runWithDeadline(t, e.Name, cfg)
		if r.Hops != cfg.TotalHops() {
			t.Errorf("%s: hops = %d, want %d", e.Name, r.Hops, cfg.TotalHops())
		}
		if r.Engine != e.Name {
			t.Errorf("engine name = %q", r.Engine)
		}
	}
}

// TestChannelBaselineMatchesMutexBaseline pins that the two conventional
// substrates simulate the same network: identical traces for ring
// routing, identical processed-message multisets for hash routing.
func TestChannelBaselineMatchesMutexBaseline(t *testing.T) {
	ring := testConfig(RouteRing, 0)
	a := runWithDeadline(t, "conventional-det", ring)
	b := runWithDeadline(t, "channels-det", ring)
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("ring traces differ between mutex (%x) and channel (%x) baselines", a.Fingerprint, b.Fingerprint)
	}
	hash := testConfig(RouteHash, 0)
	c := runWithDeadline(t, "conventional-nondet", hash)
	d := runWithDeadline(t, "channels-nondet", hash)
	if c.TraceMultisetFingerprint() != d.TraceMultisetFingerprint() {
		t.Errorf("hash-routing multisets differ between baselines")
	}
}

// TestChannelDetDeterministic repeats the deterministic channel setup.
func TestChannelDetDeterministic(t *testing.T) {
	cfg := testConfig(RouteRing, 0)
	want := runWithDeadline(t, "channels-det", cfg).Fingerprint
	for i := 0; i < 4; i++ {
		if got := runWithDeadline(t, "channels-det", cfg).Fingerprint; got != want {
			t.Errorf("run %d: %x != %x", i, got, want)
		}
	}
}

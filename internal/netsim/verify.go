package netsim

import "fmt"

// VerifyTraceChains checks a simulation result against the abstract model
// of the workload, independent of any engine: every message's payload
// evolves as a SHA-1 hash chain, and routing is a pure function of the
// digests, so each initial message determines the exact sequence of
// (host, digest) processings it must have caused. The verifier recomputes
// every message's chain, consumes the matching entries from the per-host
// trace multisets, and requires that exactly the whole trace is consumed.
//
// Passing this check means the engine processed every message exactly
// TTL times, at the right hosts, with the right payload evolution — a
// far stronger oracle than comparing hop counts.
func VerifyTraceChains(r Result, cfg Config) error {
	if len(r.Traces) != cfg.Hosts {
		return fmt.Errorf("netsim: verify: %d traces for %d hosts", len(r.Traces), cfg.Hosts)
	}
	// Per-host multiset of trace digests.
	remaining := make([]map[uint64]int, cfg.Hosts)
	total := 0
	for h, tr := range r.Traces {
		remaining[h] = make(map[uint64]int, len(tr))
		for _, d := range tr {
			remaining[h][d]++
			total++
		}
	}

	for i := 0; i < cfg.Messages; i++ {
		payload := splitmix64(cfg.Seed + uint64(i))
		host := i % cfg.Hosts
		if cfg.Hotspot {
			host = 0
		}
		for hop := 1; hop <= cfg.TTL; hop++ {
			digest := Work(payload, cfg.Workload)
			if remaining[host][digest] == 0 {
				return fmt.Errorf("netsim: verify: message %d hop %d: digest %x missing from host %d's trace",
					i, hop, digest, host)
			}
			remaining[host][digest]--
			total--
			host = cfg.Routing.dest(host, digest, cfg.Hosts)
			payload = digest
		}
	}
	if total != 0 {
		return fmt.Errorf("netsim: verify: %d unexplained trace entries remain", total)
	}
	return nil
}

package netsim

import (
	"sync"
	"sync/atomic"
	"time"
)

// lockedQueue is the conventional substrate: a mutex-protected FIFO with a
// blocking read, the "thread with an incoming queue" of Section III.
type lockedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool
}

func newLockedQueue(initial []Message) *lockedQueue {
	q := &lockedQueue{items: append([]Message(nil), initial...)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends m and wakes a blocked reader.
func (q *lockedQueue) push(m Message) {
	q.mu.Lock()
	q.items = append(q.items, m)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a message is available or the queue is closed.
func (q *lockedQueue) pop() (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Message{}, false
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, true
}

// close wakes every blocked reader permanently.
func (q *lockedQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// RunConventional executes the simulation with the conventional
// implementation: one goroutine per host performing blocking reads on a
// locked queue, exactly as the paper's baseline does with C++11 threads.
// With cfg.Routing == RouteHash this is the paper's non-deterministic
// setup (concurrent pushes race for queue positions); with RouteRing it is
// the deterministic baseline.
func RunConventional(cfg Config) Result {
	queues := make([]*lockedQueue, cfg.Hosts)
	for i, initial := range cfg.initialMessages() {
		queues[i] = newLockedQueue(initial)
	}
	traces := make([][]uint64, cfg.Hosts)

	var remaining atomic.Int64
	remaining.Store(cfg.TotalHops())

	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < cfg.Hosts; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok := queues[id].pop()
				if !ok {
					return
				}
				digest := Work(m.Payload, cfg.Workload)
				traces[id] = append(traces[id], digest)
				if m.TTL > 1 {
					queues[cfg.Routing.dest(id, digest, cfg.Hosts)].push(Message{Payload: digest, TTL: m.TTL - 1})
				}
				if remaining.Add(-1) == 0 {
					for _, q := range queues {
						q.close()
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	name := "conventional-nondet"
	if cfg.Routing == RouteRing {
		name = "conventional-det"
	}
	return Result{
		Engine:      name,
		Config:      cfg,
		Hops:        cfg.TotalHops() - remaining.Load(),
		Elapsed:     elapsed,
		Fingerprint: fingerprintTraces(traces),
		Traces:      traces,
	}
}

package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/task"
)

// TestHostFailureUnwindsCleanly injects a panic into one host mid-
// simulation and verifies the runtime aborts the remaining hosts and
// unwinds with an error instead of hanging — the failure path of a
// long-running Spawn & Merge program.
func TestHostFailureUnwindsCleanly(t *testing.T) {
	cfg := testConfig(RouteRing, 0)
	cfg.failAtHop = 10

	errCh := make(chan error, 1)
	go func() {
		_, err := RunSpawnMerge(cfg)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("injected failure should surface as an error")
		}
		var pe task.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want wrapped PanicError", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("simulation hung after injected host failure")
	}
}

package netsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mergeable"
	"repro/internal/task"
)

// RunSpawnMerge executes the simulation with the Spawn & Merge framework,
// following Listing 4 of the paper: one task per simulated host, each
// holding copies of all message queues; every host cycle starts with
// Sync(), which merges the previous cycle's operations into the parent and
// refreshes the host's copies; the parent loops on the deterministic
// MergeAll. Results are identical on every run — for both routings, which
// is the point: even the "non-deterministic" hash-routing simulation
// becomes deterministic under Spawn & Merge.
//
// Data layout passed to every host task: queues[0..H-1], traces[0..H-1]
// (per-host processing logs), then the global hop counter. Copying all of
// them at every spawn and sync is exactly the "constant overhead" the
// paper measures (20 tasks × 20 queues).
func RunSpawnMerge(cfg Config) (Result, error) {
	h := cfg.Hosts
	queues := make([]messageQueue, h)
	for i, initial := range cfg.initialMessages() {
		var q messageQueue
		if cfg.COW {
			q = mergeable.NewFastQueue[Message]()
		} else {
			q = mergeable.NewQueue[Message]()
		}
		for _, m := range initial {
			q.Push(m)
		}
		queues[i] = q
	}
	traces := make([]traceList, h)
	for i := range traces {
		if cfg.COW {
			traces[i] = mergeable.NewFastList[uint64]()
		} else {
			traces[i] = mergeable.NewList[uint64]()
		}
	}
	hops := mergeable.NewCounter(0)

	data := make([]mergeable.Mergeable, 0, 2*h+1)
	for _, q := range queues {
		data = append(data, q)
	}
	for _, tr := range traces {
		data = append(data, tr)
	}
	data = append(data, hops)

	total := cfg.TotalHops()
	var rounds int64
	start := time.Now()
	err := task.Run(func(ctx *task.Ctx, rootData []mergeable.Mergeable) error {
		handles := make([]*task.Task, h)
		for id := 0; id < h; id++ {
			handles[id] = ctx.Spawn(hostFunc(id, cfg), rootData...)
		}
		for hops.Value() < total {
			if err := ctx.MergeAll(); err != nil {
				return fmt.Errorf("netsim: merge round failed: %w", err)
			}
			rounds++
		}
		// All hops processed and merged: stop the hosts. Their next Sync
		// returns ErrAborted; any residual operations are discarded —
		// there are none, because no messages remain.
		for _, hd := range handles {
			hd.Abort()
		}
		return nil
	}, data...)
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}

	outTraces := make([][]uint64, h)
	for i, tr := range traces {
		outTraces[i] = tr.Values()
	}
	name := "spawnmerge-nondet"
	if cfg.Routing == RouteRing {
		name = "spawnmerge-det"
	}
	if cfg.COW {
		name += "-cow"
	}
	return Result{
		Engine:      name,
		Config:      cfg,
		Hops:        hops.Value(),
		Elapsed:     elapsed,
		Fingerprint: fingerprintTraces(outTraces),
		Traces:      outTraces,
		Rounds:      rounds,
	}, nil
}

// messageQueue abstracts the two queue backings: the default deep-copy
// Queue and the copy-on-write FastQueue ablation.
type messageQueue interface {
	mergeable.Mergeable
	Push(Message)
	PopFront() (Message, bool)
	Len() int
}

// traceList abstracts the two trace backings (List vs FastList).
type traceList interface {
	mergeable.Mergeable
	Append(vals ...uint64)
	Values() []uint64
}

// hostFunc is the paper's host() function (Listing 4): sync, pop own
// queue, process, push to the destination queue.
func hostFunc(id int, cfg Config) task.Func {
	return func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		h := cfg.Hosts
		queues := make([]messageQueue, h)
		for i := 0; i < h; i++ {
			queues[i] = data[i].(messageQueue)
		}
		trace := data[h+id].(traceList)
		hops := data[2*h].(*mergeable.Counter)

		for {
			if err := ctx.Sync(); err != nil {
				if errors.Is(err, task.ErrAborted) {
					return nil // simulation over
				}
				return err
			}
			if cfg.failAtHop > 0 && id == 0 && hops.Value() >= cfg.failAtHop {
				panic("netsim: injected host failure")
			}
			m, ok := queues[id].PopFront()
			if !ok {
				continue
			}
			digest := Work(m.Payload, cfg.Workload)
			trace.Append(digest)
			hops.Inc()
			if m.TTL > 1 {
				dest := cfg.Routing.dest(id, digest, h)
				queues[dest].Push(Message{Payload: digest, TTL: m.TTL - 1})
			}
		}
	}
}

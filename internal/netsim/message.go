// Package netsim implements the paper's evaluation workload (Section III):
// a simulation of a network of hosts that communicate by message passing.
// Each host pops a message from its incoming queue, performs a
// configurable amount of cryptographic work (iterated SHA-1 hashing, the
// "host workload l"), derives the next recipient, and forwards the
// message until its TTL is exhausted.
//
// Four engines reproduce the paper's four test setups:
//
//   - Conventional non-deterministic: one thread (goroutine) per host with
//     a locked incoming queue; the destination is derived from the message
//     payload, so several hosts may race to push into the same queue.
//   - Conventional deterministic: same substrate, but each host forwards
//     only to the next-higher ID (ring), eliminating the races.
//   - Spawn & Merge, hash routing: Listing 4 — one task per host, copies
//     of all queues, Sync each cycle, parent MergeAll per cycle. The
//     "non-deterministic" routing still yields deterministic results.
//   - Spawn & Merge, ring routing: the deterministic-simulation variant.
package netsim

import (
	"crypto/sha1"
	"encoding/binary"
)

// Message is one simulated network packet. Payload evolves at every hop
// (it becomes the SHA-1 digest of the previous payload), which is how the
// paper makes routing content-dependent; TTL counts the remaining hops.
type Message struct {
	Payload uint64
	TTL     int
}

// Work performs the host workload: one SHA-1 of the payload (always —
// routing and payload evolution need a digest even at l = 0) plus l extra
// iterations, and returns the first eight digest bytes. l is the knob the
// paper sweeps on the x-axis of Figure 3.
func Work(payload uint64, l int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], payload)
	d := sha1.Sum(buf[:])
	for i := 0; i < l; i++ {
		d = sha1.Sum(d[:])
	}
	return binary.LittleEndian.Uint64(d[:8])
}

// Routing selects how a host derives a message's next recipient.
type Routing int

const (
	// RouteHash derives the destination from the message digest — the
	// paper's "non-deterministic" simulation (the label refers to the
	// conventional implementation's races; under Spawn & Merge even this
	// routing produces deterministic results).
	RouteHash Routing = iota
	// RouteRing forwards to the next-higher host ID — the paper's
	// deterministic simulation setup.
	RouteRing
)

// String returns the routing's name as used in engine labels.
func (r Routing) String() string {
	if r == RouteRing {
		return "ring"
	}
	return "hash"
}

// dest computes the next recipient for a digest processed by host id.
func (r Routing) dest(id int, digest uint64, hosts int) int {
	if r == RouteRing {
		return (id + 1) % hosts
	}
	return int(digest % uint64(hosts))
}

// Config parameterizes one simulation run. The zero value is not useful;
// use DefaultConfig for the paper's setup.
type Config struct {
	Hosts    int     // number of simulated hosts (paper: 20)
	Messages int     // initial messages distributed round-robin (paper: 100)
	TTL      int     // hops per message (paper: 100)
	Workload int     // SHA-1 iterations per hop, the l axis (paper: 0..10000)
	Routing  Routing // hash (non-det setups) or ring (det setups)
	Seed     uint64  // seeds the initial payloads
	// COW switches the Spawn & Merge engines to copy-on-write queues
	// (mergeable.FastQueue) — the paper's announced future-work
	// optimization, exposed as the "-cow" ablation engines. It has no
	// effect on the conventional engines.
	COW bool

	// Hotspot changes the initial distribution: all messages start on
	// host 0 instead of round-robin. With ring routing this creates the
	// clustering the paper blames for the det-vs-nondet gap in its purest
	// form: one host's queue drains over many consecutive cycles.
	Hotspot bool

	// failAtHop, when positive, makes host 0 of the Spawn & Merge engines
	// panic once the merged hop counter reaches the value — test-only
	// failure injection for the runtime's abort-and-unwind path.
	failAtHop int64
}

// DefaultConfig returns the paper's evaluation parameters: 20 hosts, 100
// messages, TTL 100.
func DefaultConfig() Config {
	return Config{Hosts: 20, Messages: 100, TTL: 100, Workload: 0, Routing: RouteHash, Seed: 1}
}

// TotalHops returns the exact number of message processings a run
// performs: every message is handled once per TTL unit.
func (c Config) TotalHops() int64 { return int64(c.Messages) * int64(c.TTL) }

// initialMessages builds the deterministic starting distribution: message
// i goes to host i mod Hosts (or host 0 with Hotspot) with a seed-derived
// payload.
func (c Config) initialMessages() [][]Message {
	queues := make([][]Message, c.Hosts)
	for i := 0; i < c.Messages; i++ {
		m := Message{Payload: splitmix64(c.Seed + uint64(i)), TTL: c.TTL}
		h := i % c.Hosts
		if c.Hotspot {
			h = 0
		}
		queues[h] = append(queues[h], m)
	}
	return queues
}

// splitmix64 is the standard seed scrambler, so nearby seeds produce
// unrelated payloads.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

package netsim

import (
	"fmt"
	"time"

	"repro/internal/mergeable"
)

// Result captures the outcome of one simulation run. Two runs of a
// deterministic engine must produce identical Fingerprints; the elapsed
// time feeds the Figure 3 measurements.
type Result struct {
	Engine      string
	Config      Config
	Hops        int64         // processed hops (always Config.TotalHops on success)
	Elapsed     time.Duration // wall time of the simulation proper
	Fingerprint uint64        // order-sensitive hash of every host's processing trace
	Traces      [][]uint64    // per host: digests in processing order
	// Rounds counts the MergeAll cycles a Spawn & Merge engine needed
	// (zero for the conventional engines). The paper attributes the
	// det-vs-nondet gap to hash routing clustering several messages on
	// one host, "processed in consecutive simulation cycles" — visible
	// here as a higher round count for the same hop count.
	Rounds int64
}

// fingerprintTraces folds the per-host processing traces into one
// order-sensitive hash. The trace — which messages a host processed, in
// which order — is precisely where the conventional non-deterministic
// implementation shows run-to-run variation.
func fingerprintTraces(traces [][]uint64) uint64 {
	fps := make([]uint64, 0, len(traces))
	for id, tr := range traces {
		s := fmt.Sprintf("host%d:", id)
		for _, d := range tr {
			s += fmt.Sprintf("%x,", d)
		}
		fps = append(fps, mergeable.FingerprintString(s))
	}
	return mergeable.CombineFingerprints(fps...)
}

// TraceMultisetFingerprint hashes the traces ignoring per-host processing
// order. All four engines must agree on it for ring routing (same
// messages traverse the same hosts), making it a strong cross-engine
// oracle even where processing order legitimately differs.
func (r Result) TraceMultisetFingerprint() uint64 {
	fps := make([]uint64, 0, len(r.Traces))
	for id, tr := range r.Traces {
		var sum uint64
		for _, d := range tr {
			// Commutative fold per host: order-insensitive, host-sensitive.
			sum += mergeable.FingerprintString(fmt.Sprintf("h%d/%x", id, d))
		}
		fps = append(fps, sum)
	}
	return mergeable.CombineFingerprints(fps...)
}

package netsim

import "testing"

// TestAllEnginesSatisfyTraceChains runs every engine — the paper's four,
// the COW ablations and the channel baselines — through the hash-chain
// verifier: each must have processed every message exactly TTL times, at
// the model-determined hosts, with the model-determined payloads.
func TestAllEnginesSatisfyTraceChains(t *testing.T) {
	for _, e := range AllEngines() {
		for _, workload := range []int{0, 3} {
			cfg := testConfig(e.Routing, workload)
			r := runWithDeadline(t, e.Name, cfg)
			reCfg := cfg
			reCfg.Routing = e.Routing
			if err := VerifyTraceChains(r, reCfg); err != nil {
				t.Errorf("%s (l=%d): %v", e.Name, workload, err)
			}
		}
	}
}

// TestVerifyTraceChainsCatchesCorruption ensures the oracle actually
// detects wrong traces.
func TestVerifyTraceChainsCatchesCorruption(t *testing.T) {
	cfg := testConfig(RouteRing, 0)
	r := runWithDeadline(t, "spawnmerge-det", cfg)

	// Flip one digest.
	corrupted := r
	corrupted.Traces = make([][]uint64, len(r.Traces))
	for i, tr := range r.Traces {
		corrupted.Traces[i] = append([]uint64(nil), tr...)
	}
	corrupted.Traces[0][0] ^= 1
	if err := VerifyTraceChains(corrupted, cfg); err == nil {
		t.Error("corrupted digest not detected")
	}

	// Drop one entry.
	dropped := r
	dropped.Traces = make([][]uint64, len(r.Traces))
	for i, tr := range r.Traces {
		dropped.Traces[i] = append([]uint64(nil), tr...)
	}
	dropped.Traces[1] = dropped.Traces[1][1:]
	if err := VerifyTraceChains(dropped, cfg); err == nil {
		t.Error("dropped hop not detected")
	}

	// Duplicate one entry.
	duped := r
	duped.Traces = make([][]uint64, len(r.Traces))
	for i, tr := range r.Traces {
		duped.Traces[i] = append([]uint64(nil), tr...)
	}
	duped.Traces[2] = append(duped.Traces[2], duped.Traces[2][0])
	if err := VerifyTraceChains(duped, cfg); err == nil {
		t.Error("duplicated hop not detected")
	}

	// Wrong host count.
	short := r
	short.Traces = r.Traces[:1]
	if err := VerifyTraceChains(short, cfg); err == nil {
		t.Error("missing host trace not detected")
	}
}

package netsim

import "testing"

// TestDetGapExplainedByRounds pins the paper's explanation for the
// det-vs-nondet performance gap: hash routing clusters several messages
// on one host, which then needs consecutive simulation cycles to drain
// them — so the hash-routing simulation takes more MergeAll rounds than
// the ring-routing one for the same number of hops.
func TestDetGapExplainedByRounds(t *testing.T) {
	cfgRing := testConfig(RouteRing, 0)
	cfgHash := testConfig(RouteHash, 0)
	ring := runWithDeadline(t, "spawnmerge-det", cfgRing)
	hash := runWithDeadline(t, "spawnmerge-nondet", cfgHash)
	if ring.Hops != hash.Hops {
		t.Fatalf("hop counts differ: %d vs %d", ring.Hops, hash.Hops)
	}
	if ring.Rounds == 0 || hash.Rounds == 0 {
		t.Fatalf("rounds not counted: ring=%d hash=%d", ring.Rounds, hash.Rounds)
	}
	if hash.Rounds < ring.Rounds {
		t.Errorf("hash routing should need at least as many rounds as ring (clustering): ring=%d hash=%d",
			ring.Rounds, hash.Rounds)
	}
	// Ring routing drains perfectly: every host processes one message per
	// round, so rounds == hops per host (messages/hosts * TTL) plus the
	// startup round in which the hosts' first Sync delivers nothing
	// (Listing 4 syncs at the top of the loop).
	perfect := cfgRing.TotalHops()/int64(cfgRing.Hosts) + 1
	if ring.Rounds != perfect {
		t.Errorf("ring rounds = %d, want the perfect pipeline %d", ring.Rounds, perfect)
	}
	// The conventional engines report no rounds.
	conv := runWithDeadline(t, "conventional-det", cfgRing)
	if conv.Rounds != 0 {
		t.Errorf("conventional engine should not report rounds, got %d", conv.Rounds)
	}
}

// TestHotspotDistribution pins the clustering stress case: all messages
// starting on one host force far more simulation cycles for the same hop
// count, and the result still satisfies the hash-chain model.
func TestHotspotDistribution(t *testing.T) {
	base := testConfig(RouteRing, 0)
	hot := base
	hot.Hotspot = true

	spread := runWithDeadline(t, "spawnmerge-det", base)
	clustered := runWithDeadline(t, "spawnmerge-det", hot)
	if clustered.Hops != spread.Hops {
		t.Fatalf("hop counts differ: %d vs %d", clustered.Hops, spread.Hops)
	}
	if clustered.Rounds <= spread.Rounds {
		t.Errorf("hotspot should need more rounds: %d vs %d", clustered.Rounds, spread.Rounds)
	}
	hotCfg := hot
	hotCfg.Routing = RouteRing
	if err := VerifyTraceChains(clustered, hotCfg); err != nil {
		t.Errorf("hotspot result fails verification: %v", err)
	}
	// Determinism holds for the hotspot too.
	again := runWithDeadline(t, "spawnmerge-det", hot)
	if again.Fingerprint != clustered.Fingerprint {
		t.Errorf("hotspot run not deterministic")
	}
}

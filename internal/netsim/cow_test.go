package netsim

import "testing"

// TestCOWEnginesComplete checks the copy-on-write ablation engines run the
// full simulation.
func TestCOWEnginesComplete(t *testing.T) {
	for _, e := range AblationEngines() {
		cfg := testConfig(e.Routing, 0)
		r := runWithDeadline(t, e.Name, cfg)
		if r.Hops != cfg.TotalHops() {
			t.Errorf("%s: hops = %d, want %d", e.Name, r.Hops, cfg.TotalHops())
		}
		if r.Engine != e.Name {
			t.Errorf("engine name = %q", r.Engine)
		}
	}
}

// TestCOWEnginesMatchDefaultEngines is the ablation's correctness oracle:
// COW storage must not change the simulation's result in any way — the
// per-host traces must be identical to the deep-copy engines', not merely
// equivalent.
func TestCOWEnginesMatchDefaultEngines(t *testing.T) {
	pairs := [][2]string{
		{"spawnmerge-nondet", "spawnmerge-nondet-cow"},
		{"spawnmerge-det", "spawnmerge-det-cow"},
	}
	for _, pair := range pairs {
		var cfg Config
		if pair[0] == "spawnmerge-det" {
			cfg = testConfig(RouteRing, 0)
		} else {
			cfg = testConfig(RouteHash, 0)
		}
		base := runWithDeadline(t, pair[0], cfg)
		cow := runWithDeadline(t, pair[1], cfg)
		if base.Fingerprint != cow.Fingerprint {
			t.Errorf("%s (%x) and %s (%x) diverged — storage must not change semantics",
				pair[0], base.Fingerprint, pair[1], cow.Fingerprint)
		}
	}
}

// TestCOWEnginesDeterministic repeats the COW engines and demands stable
// fingerprints.
func TestCOWEnginesDeterministic(t *testing.T) {
	for _, e := range AblationEngines() {
		cfg := testConfig(e.Routing, 0)
		want := runWithDeadline(t, e.Name, cfg).Fingerprint
		for i := 0; i < 3; i++ {
			if got := runWithDeadline(t, e.Name, cfg).Fingerprint; got != want {
				t.Errorf("%s: run %d fingerprint %x != %x", e.Name, i, got, want)
			}
		}
	}
}

package netsim

import "fmt"

// Engine is one of the four test setups of Section III.
type Engine struct {
	// Name identifies the setup, matching the series labels of Figure 3.
	Name string
	// DeterministicResults reports whether repeated runs must produce
	// identical fingerprints. True for both Spawn & Merge engines (that is
	// the paper's claim) and for the conventional ring-routing setup.
	DeterministicResults bool
	// Routing the engine must be run with.
	Routing Routing
	// Run executes one simulation.
	Run func(Config) (Result, error)
}

// Engines returns the paper's four test setups in the order of Figure 3's
// legend.
func Engines() []Engine {
	conv := func(cfg Config) (Result, error) { return RunConventional(cfg), nil }
	return []Engine{
		{Name: "conventional-nondet", DeterministicResults: false, Routing: RouteHash, Run: conv},
		{Name: "conventional-det", DeterministicResults: true, Routing: RouteRing, Run: conv},
		{Name: "spawnmerge-nondet", DeterministicResults: true, Routing: RouteHash, Run: RunSpawnMerge},
		{Name: "spawnmerge-det", DeterministicResults: true, Routing: RouteRing, Run: RunSpawnMerge},
	}
}

// AblationEngines returns the copy-on-write variants of the Spawn & Merge
// engines — same algorithm, FastQueue storage — used to quantify the
// paper's announced copy-on-write optimization.
func AblationEngines() []Engine {
	cow := func(cfg Config) (Result, error) {
		cfg.COW = true
		return RunSpawnMerge(cfg)
	}
	return []Engine{
		{Name: "spawnmerge-nondet-cow", DeterministicResults: true, Routing: RouteHash, Run: cow},
		{Name: "spawnmerge-det-cow", DeterministicResults: true, Routing: RouteRing, Run: cow},
	}
}

// BaselineEngines returns the additional Go-idiomatic channel baselines
// (not part of the paper's four setups).
func BaselineEngines() []Engine {
	ch := func(cfg Config) (Result, error) { return RunConventionalChannels(cfg), nil }
	return []Engine{
		{Name: "channels-nondet", DeterministicResults: false, Routing: RouteHash, Run: ch},
		{Name: "channels-det", DeterministicResults: true, Routing: RouteRing, Run: ch},
	}
}

// AllEngines returns every engine: the paper's four, the COW ablations
// and the channel baselines.
func AllEngines() []Engine {
	all := Engines()
	all = append(all, AblationEngines()...)
	all = append(all, BaselineEngines()...)
	return all
}

// RunEngine runs the named engine after forcing cfg.Routing to the
// engine's routing.
func RunEngine(name string, cfg Config) (Result, error) {
	for _, e := range AllEngines() {
		if e.Name == name {
			cfg.Routing = e.Routing
			return e.Run(cfg)
		}
	}
	return Result{}, fmt.Errorf("netsim: unknown engine %q", name)
}

package task

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/ot"

	"repro/internal/testutil"
)

// deterministicScenario runs a nontrivial task tree with deliberately
// conflicting operations, timing jitter and nested spawns, and returns a
// fingerprint of the final state. Every invocation must produce the same
// fingerprint — this is the paper's headline determinism claim.
func deterministicScenario(jitter bool) uint64 {
	list := mergeable.NewList(0)
	txt := mergeable.NewText("seed")
	cnt := mergeable.NewCounter(0)
	m := mergeable.NewMap[string, int]()

	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		tx := data[1].(*mergeable.Text)
		c := data[2].(*mergeable.Counter)
		mp := data[3].(*mergeable.Map[string, int])

		for i := 0; i < 6; i++ {
			i := i
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				if jitter {
					time.Sleep(time.Duration((i*7)%3) * time.Millisecond)
				}
				cl := data[0].(*mergeable.List[int])
				ct := data[1].(*mergeable.Text)
				cc := data[2].(*mergeable.Counter)
				cm := data[3].(*mergeable.Map[string, int])

				cl.Insert(0, i)             // all children fight for index 0
				cl.Append(100 + i)          //
				ct.Insert(0, fmt.Sprint(i)) // conflicting text edits
				cc.Add(int64(i))            // commuting increments
				cm.Set("shared", i)         // conflicting map writes
				cm.Set(fmt.Sprint(i), i)    // independent map writes

				// A nested child per task, merged implicitly.
				ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
					data[2].(*mergeable.Counter).Add(1000)
					return nil
				}, cl, ct, cc, cm)
				return nil
			}, l, tx, c, mp)
		}
		l.Append(-1) // the parent edits concurrently too
		return ctx.MergeAll()
	}, list, txt, cnt, m)
	if err != nil {
		panic(err)
	}
	return mergeable.CombineFingerprints(
		list.Fingerprint(), txt.Fingerprint(), cnt.Fingerprint(), m.Fingerprint())
}

// TestDeterminismAcrossRuns runs the scenario many times and demands
// byte-identical outcomes.
func TestDeterminismAcrossRuns(t *testing.T) {
	want := deterministicScenario(false)
	for i := 0; i < 25; i++ {
		if got := deterministicScenario(false); got != want {
			t.Fatalf("run %d: fingerprint %x != %x", i, got, want)
		}
	}
	// Timing jitter must not change the result either.
	for i := 0; i < 10; i++ {
		if got := deterministicScenario(true); got != want {
			t.Fatalf("jittered run %d: fingerprint %x != %x", i, got, want)
		}
	}
}

// TestDeterminismAcrossGOMAXPROCS pins the "regardless of the number of
// cores" half of the claim.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	want := deterministicScenario(false)
	for _, procs := range []int{1, 2, 4, orig} {
		runtime.GOMAXPROCS(procs)
		for i := 0; i < 5; i++ {
			if got := deterministicScenario(false); got != want {
				t.Fatalf("GOMAXPROCS=%d run %d: fingerprint %x != %x", procs, i, got, want)
			}
		}
	}
}

// TestBatchedEngineDeterminism runs the conflict-heavy scenario through
// both transform engines across GOMAXPROCS values and demands one
// fingerprint from all of them: the batched run-length engine must be
// observationally identical to the pairwise engine through the full
// merge path, and the repeated runs recycle pooled frames, shells and
// merge scratch, so any cross-run contamination from pooling shows up as
// a fingerprint mismatch (and, under -race, as a report).
func TestBatchedEngineDeterminism(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	defer ot.SetBatchedTransform(ot.SetBatchedTransform(true))

	want := deterministicScenario(false)
	for _, batched := range []bool{true, false} {
		ot.SetBatchedTransform(batched)
		for _, procs := range []int{1, 2, 4} {
			runtime.GOMAXPROCS(procs)
			for i := 0; i < 5; i++ {
				if got := deterministicScenario(i%2 == 1); got != want {
					t.Fatalf("batched=%v GOMAXPROCS=%d run %d: fingerprint %x != %x",
						batched, procs, i, got, want)
				}
			}
		}
	}
}

// TestListing2NonDeterministic demonstrates the paper's Listing 2: the
// mutex-based version's outcome depends on timing. We steer the schedule
// explicitly (the paper's "DoSomething()" delay) to exhibit both outcomes,
// which is exactly the schedule-dependence Spawn & Merge eliminates.
func TestListing2NonDeterministic(t *testing.T) {
	runMutexVersion := func(parentDelay time.Duration) []int {
		mutex, wait := newChMutex(), newChMutex()
		list := []int{1, 2, 3}
		wait.Lock()
		go func() {
			mutex.Lock()
			defer mutex.Unlock()
			defer wait.Unlock()
			list = append(list, 5)
		}()
		time.Sleep(parentDelay) // DoSomething()
		mutex.Lock()
		list = append(list, 4)
		mutex.Unlock()
		wait.Lock()
		return list
	}
	// With a long enough delay the child wins the race; without it the
	// parent (almost always) does. Both orders are legal executions of the
	// same program.
	slow := runMutexVersion(50 * time.Millisecond)
	if !(slow[3] == 5 && slow[4] == 4) {
		t.Skipf("scheduler did not exhibit the alternative order (got %v); inherently timing dependent", slow)
	}
	fast := runMutexVersion(0)
	if fast[3] == 5 && fast[4] == 4 {
		t.Logf("note: child won even without delay: %v", fast)
	}
}

// chMutex is a tiny channel-based mutex that, unlike sync.Mutex, permits
// locking in one goroutine and unlocking in another — which is what
// Listing 2's `wait` mutex does.
type chMutex struct{ ch chan struct{} }

func newChMutex() *chMutex { return &chMutex{ch: make(chan struct{}, 1)} }
func (m *chMutex) Lock()   { m.ch <- struct{}{} }
func (m *chMutex) Unlock() { <-m.ch }

// TestNoDeadlockMergeSyncCycle exercises the one wait cycle the model
// permits — parent waiting in Merge while the child waits in Sync — at
// scale and depth; per Section IV.B it must always resolve.
func TestNoDeadlockMergeSyncCycle(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		for round := 0; round < 20; round++ {
			c := mergeable.NewCounter(0)
			err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
				cnt := data[0].(*mergeable.Counter)
				handles := make([]*Task, 8)
				for i := range handles {
					handles[i] = ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
						for s := 0; s < 5; s++ {
							data[0].(*mergeable.Counter).Inc()
							if err := ctx.Sync(); err != nil {
								return err
							}
						}
						return nil
					}, cnt)
				}
				for s := 0; s < 6; s++ {
					if err := ctx.MergeAll(); err != nil {
						return err
					}
				}
				return nil
			}, c)
			if err != nil {
				t.Fatal(err)
			}
			if c.Value() != 40 {
				t.Fatalf("round %d: counter = %d, want 40", round, c.Value())
			}
		}
	})
}

// TestNoDeadlockDeepTree spawns a deep chain of tasks, each syncing with
// its parent while the parent merges — a stack of merge/sync cycles.
func TestNoDeadlockDeepTree(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		c := mergeable.NewCounter(0)
		var descend func(depth int) Func
		descend = func(depth int) Func {
			return func(ctx *Ctx, data []mergeable.Mergeable) error {
				cnt := data[0].(*mergeable.Counter)
				cnt.Inc()
				if depth > 0 {
					ctx.Spawn(descend(depth-1), cnt)
					if err := ctx.Sync(); err != nil && err != ErrRootSync {
						return err
					}
				}
				return nil
			}
		}
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			ctx.Spawn(descend(30), data[0])
			return ctx.MergeAll()
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value() != 31 {
			t.Fatalf("counter = %d, want 31", c.Value())
		}
	})
}

// TestHistoryTrimmedOnLongSyncLoop guards against unbounded operation-log
// growth: after thousands of sync rounds the structure's committed history
// must stay short because every round advances the child's base.
func TestHistoryTrimmedOnLongSyncLoop(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		c := mergeable.NewCounter(0)
		const rounds = 2000
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			cnt := data[0].(*mergeable.Counter)
			h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				for {
					data[0].(*mergeable.Counter).Inc()
					if err := ctx.Sync(); err != nil {
						return nil
					}
				}
			}, cnt)
			for i := 0; i < rounds; i++ {
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			}
			h.Abort()
			for len(ctx.task.liveChildren()) > 0 {
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			}
			return nil
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value() < rounds-1 {
			t.Fatalf("counter = %d, want ~%d", c.Value(), rounds)
		}
		// The version number keeps growing but the retained slice must not.
		if kept := c.Log().RetainedLen(); kept > 100 {
			t.Fatalf("history not trimmed: %d ops retained after %d rounds", kept, rounds)
		}
		if c.Log().CommittedLen() < rounds {
			t.Fatalf("committed version = %d, want >= %d", c.Log().CommittedLen(), rounds)
		}
	})
}

// TestStressManyTasks floods the runtime with short-lived tasks under the
// race detector.
func TestStressManyTasks(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		c := mergeable.NewCounter(0)
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			cnt := data[0].(*mergeable.Counter)
			for wave := 0; wave < 10; wave++ {
				for i := 0; i < 50; i++ {
					ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
						data[0].(*mergeable.Counter).Inc()
						return nil
					}, cnt)
				}
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			}
			return nil
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value() != 500 {
			t.Fatalf("counter = %d, want 500", c.Value())
		}
	})
}

package task

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mergeable"
	"repro/internal/ot"
)

// Parallel merge engine. The transform step of a merge — compacting each
// structure's outgoing operations and transforming them against the unseen
// committed history — is embarrassingly parallel across structures: each
// position reads its own child log and its own slice of the parent's
// committed history and writes only its own result slot. This file fans
// that work over a small shared worker pool while keeping the observable
// merge EXACTLY deterministic: results are indexed by data position, the
// apply/commit loop stays serial in position order, and positions that
// alias the same parent structure (the one cross-position dependency, via
// pending-operation chaining) are computed serially in position order on
// the merging goroutine itself.
//
// On a single-core machine — or when disabled via SetParallelMerge — every
// merge takes the inline serial path with no pool, no goroutines and no
// extra allocation, so the engine never costs anything it cannot win back.

// parallelMerge gates the pool. Enabled by default; SetParallelMerge
// toggles it at runtime (tests pin both settings).
var parallelMerge atomic.Bool

func init() { parallelMerge.Store(true) }

// SetParallelMerge enables or disables the parallel transform step of the
// merge engine. Merge results are bit-identical either way; the switch
// exists for benchmarking and for ruling the engine out when debugging.
func SetParallelMerge(on bool) { parallelMerge.Store(on) }

// mergePool is the process-wide transform worker pool, created lazily on
// the first merge that can actually use it. Its size is fixed at creation
// from GOMAXPROCS; a later GOMAXPROCS(1) does not tear it down, but the
// per-merge gate below stops submitting to it.
var (
	mergePoolOnce sync.Once
	mergeJobs     chan func()
)

func mergePoolJobs() chan func() {
	mergePoolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 2 {
			return // leave nil: caller falls back to inline execution
		}
		mergeJobs = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for f := range mergeJobs {
					f()
				}
			}()
		}
	})
	return mergeJobs
}

// submitOrRun hands f to the pool, or runs it inline when every worker is
// busy and the queue is full. Workers only ever run pure CPU-bound
// transforms — they never submit jobs themselves — so the inline fallback
// is a throughput valve, not a deadlock guard.
func submitOrRun(jobs chan func(), f func()) {
	select {
	case jobs <- f:
	default:
		f()
	}
}

// transformChild computes the child's transformed contribution for every
// data position: transformed[i] is c.data[i]'s outgoing operations
// compacted and rewritten to apply after the parent history the child has
// not seen. Positions are independent except when the same parent
// structure is bound at several positions — later positions must also
// transform against the earlier positions' still-pending results.
//
// durs, when non-nil, receives each position's own transform time (the
// observability layer's per-structure spans); it must have length
// len(c.parentData). Passing nil — the tracing-off case — measures
// nothing and allocates nothing.
// The result table and (on the serial path) the transform windows are
// carved from ms and stay valid until the scratch is released, which the
// caller does once the merge has committed them.
func (t *Task) transformChild(c *Task, ms *mergeScratch, durs []time.Duration) [][]ot.Op {
	n := len(c.parentData)
	transformed := ms.transformed
	if cap(transformed) < n {
		transformed = make([][]ot.Op, n)
	} else {
		// Entries up to cap were nil'ed when their merge released the
		// scratch, so the reslice needs no clearing.
		transformed = transformed[:n]
	}
	ms.transformed = transformed
	if n > 1 && parallelMerge.Load() && runtime.GOMAXPROCS(0) > 1 {
		if jobs := mergePoolJobs(); jobs != nil {
			t.transformParallel(c, transformed, jobs, durs)
			return transformed
		}
	}

	// Inline serial path: pending chains operations across positions that
	// alias one parent structure, which also makes it the aliasing oracle
	// the parallel path must match. A single position cannot alias, so it
	// skips the chain bookkeeping entirely.
	pending := ms.pending
	for i, pm := range c.parentData {
		var start time.Time
		if durs != nil {
			start = time.Now()
		}
		server := pm.Log().CommittedSince(c.bases[i])
		if pending != nil {
			if prior := pending[pm]; len(prior) > 0 {
				merged := make([]ot.Op, 0, len(server)+len(prior))
				merged = append(merged, server...)
				merged = append(merged, prior...)
				server = merged
			}
		}
		childOps := ot.CompactSeq(c.data[i].Log().CommittedSince(c.floors[i]))
		transformed[i] = ms.ot.TransformAgainst(childOps, server)
		if n > 1 && len(transformed[i]) > 0 {
			if pending == nil {
				pending = make(map[mergeable.Mergeable][]ot.Op)
				ms.pending = pending
			}
			pending[pm] = append(pending[pm], transformed[i]...)
		}
		if durs != nil {
			durs[i] = time.Since(start)
		}
	}
	return transformed
}

// transformParallel farms the independent positions over the pool and
// computes aliased positions serially on the calling goroutine while the
// workers run. transformed[i] is written by exactly one goroutine and read
// only after wg.Wait(), which orders the writes before the caller's reads.
func (t *Task) transformParallel(c *Task, transformed [][]ot.Op, jobs chan func(), durs []time.Duration) {
	n := len(c.parentData)
	aliased := aliasedPositions(c.parentData)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if aliased != nil && aliased[i] {
			continue
		}
		// Skip positions with nothing outgoing without paying a dispatch:
		// their transform is empty whatever the server history says.
		if c.data[i].Log().CommittedLen() == c.floors[i] {
			continue
		}
		i := i
		wg.Add(1)
		submitOrRun(jobs, func() {
			defer wg.Done()
			var start time.Time
			if durs != nil {
				start = time.Now()
			}
			server := c.parentData[i].Log().CommittedSince(c.bases[i])
			childOps := ot.CompactSeq(c.data[i].Log().CommittedSince(c.floors[i]))
			transformed[i] = ot.TransformAgainst(childOps, server)
			if durs != nil {
				// durs[i] has exactly one writer (this job); the caller reads
				// it after wg.Wait, same ordering as transformed[i].
				durs[i] = time.Since(start)
			}
		})
	}

	// Aliased positions: serial, in position order, chaining pending
	// operations exactly as the inline path does.
	if aliased != nil {
		var pending map[mergeable.Mergeable][]ot.Op
		for i := 0; i < n; i++ {
			if !aliased[i] {
				continue
			}
			var start time.Time
			if durs != nil {
				start = time.Now()
			}
			pm := c.parentData[i]
			server := pm.Log().CommittedSince(c.bases[i])
			if pending != nil {
				if prior := pending[pm]; len(prior) > 0 {
					merged := make([]ot.Op, 0, len(server)+len(prior))
					merged = append(merged, server...)
					merged = append(merged, prior...)
					server = merged
				}
			}
			childOps := ot.CompactSeq(c.data[i].Log().CommittedSince(c.floors[i]))
			transformed[i] = ot.TransformAgainst(childOps, server)
			if len(transformed[i]) > 0 {
				if pending == nil {
					pending = make(map[mergeable.Mergeable][]ot.Op)
				}
				pending[pm] = append(pending[pm], transformed[i]...)
			}
			if durs != nil {
				durs[i] = time.Since(start)
			}
		}
	}
	wg.Wait()
}

// aliasedPositions reports which positions bind a parent structure that
// also appears at another position. Returns nil when every structure is
// distinct (the overwhelmingly common case). Small bindings use a
// quadratic scan to avoid a map allocation on the per-merge hot path.
func aliasedPositions(parentData []mergeable.Mergeable) []bool {
	n := len(parentData)
	if n <= 16 {
		var out []bool
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if parentData[i] == parentData[j] {
					if out == nil {
						out = make([]bool, n)
					}
					out[i] = true
					out[j] = true
					break
				}
			}
		}
		return out
	}
	first := make(map[mergeable.Mergeable]int, n)
	var out []bool
	for i, pm := range parentData {
		if j, ok := first[pm]; ok {
			if out == nil {
				out = make([]bool, n)
			}
			out[i] = true
			out[j] = true
			continue
		}
		first[pm] = i
	}
	return out
}

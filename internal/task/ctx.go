package task

import (
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/mergeable"
	"repro/internal/obs"
)

// Ctx is a task's view of itself. It is handed to the task's Func and must
// only be used from that task's own goroutine — handing it to another task
// would break the tree-shaped wait discipline that makes the system
// deadlock-free.
type Ctx struct {
	task *Task
}

// ID returns the identifier of the calling task.
func (c *Ctx) ID() uint64 { return c.task.id }

// Data returns the calling task's working copies (the same slice its Func
// received).
func (c *Ctx) Data() []mergeable.Mergeable { return c.task.data }

// Path returns the calling task's stable identity: the chain of
// per-parent creation sequence numbers from the root (e.g. "r/0/2").
// Unlike ID, the path is identical across runs of the same program, which
// is what merge scripts and the journal key their records by.
func (c *Ctx) Path() string { return c.task.path() }

// Aborted reports whether the parent marked this task externally aborted.
// Long computations without Sync points can poll it to unwind early.
func (c *Ctx) Aborted() bool { return c.task.abortFlag.Load() }

// Rand returns a pseudo-random source that is deterministic per task:
// seeded from the task's stable creation path (and the seed passed to the
// root via SeedRand, default 0). The paper's footnote 1 excludes
// Random()-style non-determinism from its guarantees; tasks that take
// their randomness from Rand stay inside them — same program, same seeds,
// same results on every run.
//
// The source is task-local and must not be shared with other tasks.
func (c *Ctx) Rand() *rand.Rand {
	t := c.task
	if t.rng == nil {
		h := fnv.New64a()
		h.Write([]byte(t.path()))
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(t.runtime.randSeed >> (8 * i))
		}
		h.Write(buf[:])
		t.rng = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	return t.rng
}

// SeedRand sets the base seed all task-local Rand sources derive from.
// Call it from the root task before spawning; different seeds give
// different (but each internally deterministic) executions.
func (c *Ctx) SeedRand(seed uint64) { c.task.runtime.randSeed = seed }

// Spawn creates a child task executing fn on deep copies of data, made at
// call time — the semantics of call-by-value that Section II.C describes.
// The child runs concurrently; Spawn returns its handle immediately. The
// parent must eventually merge the child with one of the Merge functions
// (or rely on the implicit MergeAll when the parent's Func returns).
func (c *Ctx) Spawn(fn Func, data ...mergeable.Mergeable) *Task {
	p := c.task
	rt := p.runtime
	tr := rt.obs
	var spawnStart time.Time
	if tr != nil {
		spawnStart = time.Now()
	}
	n := len(data)
	// The copies, the parent-structure bindings and the fused bases/floors
	// array all live in buffers owned by the child shell: respawning from a
	// pooled frame reuses them, and copying data out of the variadic slice
	// keeps the caller's argument slice from escaping.
	child := rt.getShell()
	buf := child.dataBuf
	if cap(buf) < 2*n {
		buf = make([]mergeable.Mergeable, 2*n)
	} else {
		buf = buf[:2*n]
	}
	child.dataBuf = buf
	copies, parents := buf[:n:n], buf[n:]
	copy(parents, data)
	bf := child.bfBuf
	if cap(bf) < 2*n {
		bf = make([]int, 2*n)
	} else {
		bf = bf[:2*n]
	}
	child.bfBuf = bf
	bases, floors := bf[:n:n], bf[n:]
	clear(floors) // reused backing: floors must start at zero
	for i, m := range parents {
		// Flush the parent's local operations into the committed history so
		// the child's base version covers everything in its copy.
		lg := m.Log()
		lg.FlushLocal()
		bases[i] = lg.CommittedLen()
		copies[i] = m.CloneValue()
		// Track the structure for history trimming. The log's tracker token
		// short-circuits re-insertion: fanning many children over the same
		// data set pays one append per structure total, not per spawn.
		if lg.Tracker() != p {
			p.tracked = append(p.tracked, m)
			lg.SetTracker(p)
		}
	}
	initTask(child, p, fn, copies, parents, bases, floors, rt)
	p.registerChild(child)
	if tr != nil {
		// Named by the child's stable path; the duration covers the deep
		// copies (the framework's per-spawn constant cost, Section III).
		// Emitted before startTask so the span exists before the child runs.
		tr.Emit(p.spanTrack(), obs.KindSpawn, child.spanTrack(), -1, int64(n), time.Since(spawnStart))
	}
	startTask(child)
	return child
}

// Clone creates a sibling of the calling task running fn (Section II.E).
// It exists for the blocking-accept pattern: a child that blocks on I/O
// clones itself to handle each accepted connection, and the shared parent
// merges the clones with MergeAny.
//
// The clone receives placeholder copies of the caller's data set. As the
// paper notes, that inherited value "will most likely be outdated", so the
// copies are marked stale: the clone must call Sync() — which refreshes
// them from the parent — before touching them. Values that are not
// mergeable data (sockets, request payloads) travel into fn as closure
// captures.
//
// Clone panics when called on the root task, which has no parent to attach
// a sibling to.
func (c *Ctx) Clone(fn Func) *Task {
	t := c.task
	p := t.parent
	if p == nil {
		panic("task: the root task cannot Clone itself")
	}
	tr := t.runtime.obs
	var cloneStart time.Time
	if tr != nil {
		cloneStart = time.Now()
	}
	n := len(t.data)
	sib := t.runtime.getShell()
	buf := sib.dataBuf
	if cap(buf) < 2*n {
		buf = make([]mergeable.Mergeable, 2*n)
	} else {
		buf = buf[:2*n]
	}
	sib.dataBuf = buf
	copies, parents := buf[:n:n], buf[n:]
	copy(parents, t.parentData)
	for i, m := range t.data {
		cp := m.CloneValue()
		cp.Log().MarkStale()
		copies[i] = cp
	}
	bf := sib.bfBuf
	if cap(bf) < 2*n {
		bf = make([]int, 2*n)
	} else {
		bf = bf[:2*n]
	}
	sib.bfBuf = bf
	bases, floors := bf[:n:n], bf[n:]
	copy(bases, t.bases)
	clear(floors)
	initTask(sib, p, fn, copies, parents, bases, floors, t.runtime)
	p.registerChild(sib)
	if tr != nil {
		// The span goes on the cloning task's own track (the clone caller is
		// the single writer here, not the parent the sibling attaches to).
		tr.Emit(t.spanTrack(), obs.KindSpawn, "clone "+sib.spanTrack(), -1, int64(len(copies)), time.Since(cloneStart))
	}
	startTask(sib)
	return sib
}

// Sync blocks until the parent merges this task (Section II.E). It is
// equivalent to completing the task and spawning a fresh one: the task's
// operations since the last sync are merged into the parent, and the
// task's copies are refreshed from the parent's current state.
//
// Sync returns nil on a successful merge, ErrMergeRejected when the
// parent's condition function discarded the changes (the copies are still
// refreshed), ErrAborted when the parent marked this task externally
// aborted (the task should unwind), and ErrRootSync on the root task.
func (c *Ctx) Sync() error { return c.task.enterSync() }

// MergeAll waits for every live child to complete or reach a Sync point
// and merges them in creation order — deterministically (Section II.D).
// Synced children are resumed on fresh copies; completed children are
// collected. Children spawned or cloned while MergeAll runs are not part
// of its snapshot and are handled by the next merge call.
//
// The returned error aggregates the errors of children that failed on
// their own (task errors and condition rejections); externally aborted
// children are discarded silently, since the abort was this task's choice.
func (c *Ctx) MergeAll(opts ...MergeOption) error {
	p := c.task
	return p.mergeSet(p.liveChildren(), applyOptions(opts))
}

// MergeAllFromSet waits for and merges exactly the given children,
// deterministically in argument order (Section II.D). It returns
// ErrNotChild if a task is not a live child of the caller; already
// collected children are skipped.
func (c *Ctx) MergeAllFromSet(tasks []*Task, opts ...MergeOption) error {
	p := c.task
	for _, t := range tasks {
		if t.parent != p {
			return ErrNotChild
		}
	}
	return p.mergeSet(tasks, applyOptions(opts))
}

// MergeAny waits for the first child to complete or reach a Sync point and
// merges only it — explicitly non-deterministic (Section II.D). The wait
// is dynamic: children cloned while MergeAny blocks count too, which is
// what the Listing 3 server pattern relies on (the root blocks in MergeAny
// while the accept task clones connection handlers). It returns the merged
// child's handle, or ErrNothingToMerge when no live child exists (it never
// blocks on an empty set; see Section IV.B).
func (c *Ctx) MergeAny(opts ...MergeOption) (*Task, error) {
	return c.task.mergeAnyDynamic(applyOptions(opts))
}

// MergeAnyFromSet is MergeAny restricted to the given children. MergeAny
// is the special case covering all live children.
func (c *Ctx) MergeAnyFromSet(tasks []*Task, opts ...MergeOption) (*Task, error) {
	p := c.task
	for _, t := range tasks {
		if t.parent != p {
			return nil, ErrNotChild
		}
	}
	return p.mergeAny(tasks, applyOptions(opts))
}

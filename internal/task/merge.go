package task

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/ot"
)

// Condition is a post-condition evaluated against a preview of the merge
// result (Section II.D): copies of the parent structures with the child's
// transformed operations applied, in the child's data order. Returning
// false rejects the merge — the child's changes are discarded, a rollback
// that (unlike transactional memory) only ever happens because the
// application said so, never because of write-write conflicts.
type Condition func(preview []mergeable.Mergeable) bool

// MergeOption configures a merge call.
type MergeOption func(*mergeConfig)

type mergeConfig struct {
	cond Condition
}

// WithCondition attaches a post-condition to a merge call. It applies to
// every child merged by that call.
func WithCondition(cond Condition) MergeOption {
	return func(c *mergeConfig) { c.cond = cond }
}

// evalCondition runs a user condition function, treating a panic as a
// rejection: a crashing validator must not take down the merging parent,
// and "could not validate" safely degrades to "do not accept".
func evalCondition(cond Condition, preview []mergeable.Mergeable) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return cond(preview)
}

// zeroMergeConfig is the shared config for option-less merge calls — the
// overwhelmingly common case. Merge paths only ever read the config, so
// sharing one instance is safe and keeps MergeAll allocation-free.
var zeroMergeConfig mergeConfig

func applyOptions(opts []MergeOption) *mergeConfig {
	if len(opts) == 0 {
		return &zeroMergeConfig
	}
	cfg := &mergeConfig{}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// mergeScratch bundles the per-merge working memory: the transformed-ops
// result table, the OT transform arena and the pending-chain map for
// aliased positions. Pooled and reused across merges, which is what keeps
// a steady-state no-surprise merge allocation-free.
type mergeScratch struct {
	transformed [][]ot.Op
	ot          ot.MergeScratch
	pending     map[mergeable.Mergeable][]ot.Op
}

var mergeScratchPool = sync.Pool{New: func() any { return new(mergeScratch) }}

// releaseMergeScratch clears the scratch's references (so pooled entries
// pin neither operations nor structures) and returns it to the pool. The
// arena reset invalidates every transform window handed out this merge;
// callers must have committed (copied) them already.
func releaseMergeScratch(ms *mergeScratch) {
	clear(ms.transformed)
	ms.ot.Reset()
	if ms.pending != nil {
		clear(ms.pending)
	}
	mergeScratchPool.Put(ms)
}

// mergeSet waits for and merges the given children in slice order. Skips
// children that were already collected (merged completions).
func (t *Task) mergeSet(tasks []*Task, cfg *mergeConfig) error {
	var errs []error
	for _, c := range tasks {
		if c.merged {
			continue
		}
		t.awaitQuiescent(c)
		if err := t.mergeChild(c, cfg); err != nil {
			errs = append(errs, err)
		}
	}
	t.trimHistories()
	return errors.Join(errs...)
}

// mergeAnyDynamic waits for the first of t's children — including ones
// registered while waiting, e.g. clones — to become quiescent and merges
// only it.
func (t *Task) mergeAnyDynamic(cfg *mergeConfig) (*Task, error) {
	c := t.scriptedPick()
	if c == nil {
		c = t.chosenPick(nil)
	}
	if c == nil {
		if len(t.pendingList) > 0 {
			c = t.pendingList[0]
			t.pendingList = t.pendingList[1:]
		} else {
			if !t.hasLiveChildren() {
				// No children exist, so none can appear either (only
				// children clone): never block on the empty set (§IV.B).
				return nil, ErrNothingToMerge
			}
			c = t.recvReady()
		}
	}
	t.recordPick(c)
	err := t.mergeChild(c, cfg)
	t.trimHistories()
	return c, err
}

// mergeAny waits for the first of the given children to become quiescent
// and merges only it.
func (t *Task) mergeAny(tasks []*Task, cfg *mergeConfig) (*Task, error) {
	live := make(map[*Task]bool, len(tasks))
	for _, c := range tasks {
		if !c.merged {
			live[c] = true
		}
	}
	if len(live) == 0 {
		return nil, ErrNothingToMerge
	}
	c := t.scriptedPick()
	if c == nil {
		c = t.chosenPick(live)
	}
	if c == nil {
		c = t.awaitAny(live)
	}
	t.recordPick(c)
	err := t.mergeChild(c, cfg)
	t.trimHistories()
	return c, err
}

// awaitQuiescent blocks until child c has announced quiescence (completed
// or blocked in Sync). Announcements from other children are queued.
func (t *Task) awaitQuiescent(c *Task) {
	for i, q := range t.pendingList {
		if q == c {
			t.pendingList = append(t.pendingList[:i], t.pendingList[i+1:]...)
			return
		}
	}
	for {
		q := t.recvReady()
		if q == c {
			return
		}
		t.pendingList = append(t.pendingList, q)
	}
}

// awaitAny blocks until some child in set announces quiescence, in arrival
// order (first-completed-first-merged, the paper's explicit
// non-determinism).
func (t *Task) awaitAny(set map[*Task]bool) *Task {
	for i, q := range t.pendingList {
		if set[q] {
			t.pendingList = append(t.pendingList[:i], t.pendingList[i+1:]...)
			return q
		}
	}
	for {
		q := t.recvReady()
		if set[q] {
			return q
		}
		t.pendingList = append(t.pendingList, q)
	}
}

// mergeChild folds one quiescent child into the parent's structures. This
// is the heart of the system: the child's local operations are transformed
// against the suffix of each structure's committed history the child has
// not seen (operational transformation serializes the concurrent
// operations), applied, and committed. A failed, aborted or
// condition-rejected child contributes nothing.
//
// The returned error reports failures the parent did not choose: the
// child's own error or a condition rejection. Externally aborted children
// merge silently.
// adoptPins pins c's base versions on its parent structures' logs. Spawn
// leaves pinning to the parent (the child's bases are covered by the
// spawner's own live pins until then — for a clone, by the cloning
// sibling's) so pins are only ever touched from the goroutine that owns
// the logs. Called before any merge of c and before any trim pass that
// observes c live; idempotent via c.pinned.
func (t *Task) adoptPins(c *Task) {
	if c.pinned {
		return
	}
	for i, pm := range c.parentData {
		pm.Log().Pin(c.bases[i])
	}
	c.pinned = true
}

// dropPins releases c's base pins when the parent reaps it.
func (t *Task) dropPins(c *Task) {
	if !c.pinned {
		return
	}
	for i, pm := range c.parentData {
		pm.Log().Unpin(c.bases[i])
	}
	c.pinned = false
}

func (t *Task) mergeChild(c *Task, cfg *mergeConfig) error {
	t.adoptPins(c)
	if t.parent == nil && t.runtime.onRootMerge != nil {
		// Root-merge observation for the journal's checkpoint cadence: the
		// hook runs on the root goroutine once this merge has fully landed
		// (including the resume handshake of a synced child), so it may
		// read the root structures without racing anything.
		defer func() {
			t.runtime.rootMerges++
			t.runtime.onRootMerge(t.data, t.runtime.rootMerges)
		}()
	}
	// Open the merge span before any merge work. Identity (track position,
	// child name) is fixed here; the outcome and op count land in End. The
	// child is quiescent, so reading/caching its track from the parent
	// goroutine is ordered by the quiescence announcement.
	tr := t.runtime.obs
	var mtrack string
	var mseq int
	var mstart time.Time
	if tr != nil {
		mstart = time.Now()
		mtrack = t.spanTrack()
		mseq = tr.Begin(mtrack, obs.KindMerge, c.spanTrack())
	}

	ph := phase(c.phase.Load())
	aborted := c.abortFlag.Load()
	failed := ph == phaseCompleted && c.err != nil

	var reportErr error
	discard := aborted || failed
	if failed && !aborted {
		reportErr = fmt.Errorf("task %d: %w", c.id, c.err)
	}

	// Always flush local operations into the committed histories first:
	// the parent's so version numbers cover everything a refreshed copy
	// will contain, the child's so its committed history holds its full
	// contribution in application order (its own operations interleaved
	// with those merged in from its children). The same pass detects a
	// child that contributed nothing — the no-op fan-out shape — with one
	// version comparison per position, so such merges skip the transform
	// machinery entirely.
	contributed := false
	for i, pm := range c.parentData {
		pm.Log().FlushLocal()
		cl := c.data[i].Log()
		cl.FlushLocal()
		if !contributed && cl.CommittedLen() != c.floors[i] {
			contributed = true
		}
	}

	appliedOps := 0
	if !discard {
		// Transform the child's operations against the unseen history.
		// The outgoing contribution is compacted first (adjacent pops and
		// appends collapse into ranges), which shrinks the quadratic
		// transform and the parent's history growth without touching any
		// version bookkeeping. When the same parent structure appears at
		// several data positions, later entries also transform against the
		// earlier entries' still-pending operations — they will have been
		// applied by the time the later ops are. Independent positions are
		// fanned over the transform worker pool (parallel.go); the apply
		// loop below stays serial in position order, so the merge result is
		// bit-identical to a fully serial merge.
		// transformed is nil when the child contributed nothing; the
		// preview and apply steps then see empty contributions.
		var transformed [][]ot.Op
		if contributed {
			ms := mergeScratchPool.Get().(*mergeScratch)
			defer releaseMergeScratch(ms)
			// With tracing on, transformChild fills per-position durations
			// (measured inside the engine, so parallel positions report their
			// own time, not the wall-clock of the whole wave). Spans are
			// emitted here in position order regardless of which engine ran,
			// keeping the tree identical across serial and parallel merges.
			var tdurs []time.Duration
			if tr != nil {
				tdurs = make([]time.Duration, len(c.parentData))
			}
			transformed = t.transformChild(c, ms, tdurs)
			if tr != nil {
				for i := range transformed {
					tr.Emit(mtrack, obs.KindTransform, "s"+strconv.Itoa(i), mseq, int64(len(transformed[i])), tdurs[i])
				}
			}
		}
		opsAt := func(i int) []ot.Op {
			if transformed == nil {
				return nil
			}
			return transformed[i]
		}

		if cfg.cond != nil {
			preview := make([]mergeable.Mergeable, len(c.parentData))
			for i, pm := range c.parentData {
				pv := pm.CloneValue()
				if err := pv.ApplyRemote(opsAt(i)); err != nil {
					panic(fmt.Sprintf("task: merge preview failed, transformation invariant broken: %v", err))
				}
				preview[i] = pv
			}
			if !evalCondition(cfg.cond, preview) {
				discard = true
				reportErr = fmt.Errorf("task %d: %w", c.id, ErrMergeRejected)
			}
		}

		if !discard && transformed != nil {
			for i, pm := range c.parentData {
				var astart time.Time
				if tr != nil {
					astart = time.Now()
				}
				if err := pm.ApplyRemote(transformed[i]); err != nil {
					panic(fmt.Sprintf("task: merge failed, transformation invariant broken: %v", err))
				}
				pm.Log().Commit(transformed[i])
				appliedOps += len(transformed[i])
				if tr != nil {
					tr.Emit(mtrack, obs.KindApply, "s"+strconv.Itoa(i), mseq, int64(len(transformed[i])), time.Since(astart))
				}
			}
		}
	}

	if t.runtime.tracer != nil || tr != nil {
		outcome := "merged"
		switch {
		case aborted:
			outcome = "aborted"
		case failed:
			outcome = "failed"
		case discard:
			outcome = "rejected"
		}
		if t.runtime.tracer != nil {
			t.runtime.tracer.record(t, c, ph != phaseCompleted, outcome, appliedOps)
		}
		if tr != nil {
			tr.End(mtrack, mseq, c.spanTrack()+" "+outcome, int64(appliedOps), mstart)
		}
	}

	// Whether merged or dismissed, the parent has now consumed the child's
	// contribution up to here.
	for i := range c.data {
		c.floors[i] = c.data[i].Log().CommittedLen()
	}

	if ph == phaseCompleted {
		switch {
		case aborted && c.err == nil:
			c.err = ErrAborted
		case discard && !failed && !aborted && c.err == nil:
			c.err = ErrMergeRejected // condition rejection
		}
		c.merged = true
		// The child's working copies are dead: their histories will never
		// be consulted again, so trim them to nothing and recycle the log
		// states into the shared pool. Recycle is a checked no-op for any
		// log that still holds something (e.g. a never-synced stale clone).
		for _, m := range c.data {
			lg := m.Log()
			lg.Trim(lg.CommittedLen())
			lg.Recycle()
		}
		t.dropPins(c)
		t.reap(c)
		return reportErr
	}

	// The child is blocked in Sync. Refresh its copies from the parent's
	// current state and resume it with the merge outcome.
	var resumeErr error
	switch {
	case aborted:
		resumeErr = ErrAborted
	case discard:
		resumeErr = ErrMergeRejected
	}
	if !aborted {
		for i, pm := range c.parentData {
			if err := c.data[i].AdoptFrom(pm); err != nil {
				panic(fmt.Sprintf("task: refresh failed: %v", err))
			}
			c.data[i].Log().ClearStale()
			lg := pm.Log()
			nb := lg.CommittedLen()
			lg.MovePin(c.bases[i], nb)
			c.bases[i] = nb
		}
	}
	if !t.runtime.gcDisable {
		// The parent has consumed the child's contribution up to the floor
		// and the child — quiescent, with all grandchildren collected — will
		// never transform below it again. Trimming here is what keeps a
		// long-lived sync-heavy leaf child's own history bounded: its copies
		// are refreshed in place, so no other trim point ever sees them.
		dropped := 0
		for i, m := range c.data {
			dropped += m.Log().Trim(c.floors[i])
		}
		if dropped > 0 && t.runtime.gcStats != nil {
			t.runtime.gcStats.Inc("compaction.log.child_trims")
			t.runtime.gcStats.Add("compaction.log.child_ops_dropped", int64(dropped))
		}
	}
	c.resume <- resumeMsg{err: resumeErr}
	if resumeErr != nil && errors.Is(resumeErr, ErrMergeRejected) {
		return reportErr
	}
	return nil
}

// trimHistories drops committed history that neither a live child's base
// version nor the upward-propagation floor still needs. Long-running
// programs (the network simulation syncs thousands of times) would
// otherwise accumulate unbounded operation logs.
//
// The pass is driven entirely by the base pins the runtime maintains on
// each tracked log (see Log.Pin): pins of just-registered clones are
// adopted first, each log's transient trim mark is seeded at its pin
// watermark, lowered by this task's own floors, and consumed by
// TrimToMark. No maps, no allocation — the old per-call min-version maps
// were the last allocating step on the merge path.
func (t *Task) trimHistories() {
	if len(t.tracked) == 0 || t.runtime.gcDisable {
		return
	}
	var start time.Time
	tr := t.runtime.obs
	if tr != nil && t.runtime.gcSpans {
		start = time.Now()
	}
	live := t.liveChildren()
	if len(live) == 0 && t.parent == nil {
		// Root with every child collected: nothing pins any history, so
		// trim everything and drop the tracking set without the mark passes
		// below. This is the tail of every fan-out. With the history gone
		// and the tracker cleared the log state is fully empty, so it is
		// recycled into the state pool — the next fan-out (or the next Run)
		// picks it up instead of allocating.
		dropped := 0
		for i, m := range t.tracked {
			lg := m.Log()
			dropped += lg.Trim(lg.CommittedLen())
			if lg.Tracker() == t {
				lg.SetTracker(nil)
			}
			lg.Recycle()
			t.tracked[i] = nil
		}
		t.tracked = t.tracked[:0]
		t.noteTrim(dropped, start)
		return
	}
	// Clones register their bases from the cloning sibling's goroutine and
	// cannot pin the parent's logs themselves; adopt any not-yet-pinned
	// child before computing watermarks, so its base holds history down.
	for _, c := range live {
		t.adoptPins(c)
	}
	for _, m := range t.tracked {
		m.Log().ResetTrimMark()
	}
	// History at or after this task's own floor must survive too: it is
	// this task's not-yet-propagated contribution to its parent. The root
	// has no parent to propagate to, so it is exempt.
	if t.parent != nil {
		for i, m := range t.data {
			if lg := m.Log(); lg.Tracker() == t {
				lg.LowerTrimMark(t.floors[i])
			}
		}
	}
	dropped := 0
	keep := t.tracked[:0]
	for _, m := range t.tracked {
		lg := m.Log()
		dropped += lg.TrimToMark(t.runtime.gcSlack)
		// A pinned log is some live child's parent structure and stays
		// tracked; an unpinned one has no live reference and is released.
		if lg.Pinned() {
			keep = append(keep, m)
			continue
		}
		// Keep the tracker-token invariant: clear it only if it is
		// still ours (another task may have started tracking since).
		if lg.Tracker() == t {
			lg.SetTracker(nil)
		}
	}
	// keep compacted in place; nil out the dropped tail so the backing
	// array does not pin untracked structures.
	for i := len(keep); i < len(t.tracked); i++ {
		t.tracked[i] = nil
	}
	t.tracked = keep
	t.noteTrim(dropped, start)
}

// noteTrim reports one trim pass's dropped-op count to the compaction
// counters and, when opted in, as a KindCompact span on a dedicated
// "gc:<path>" track (dedicated because trim timing for a task with clones
// in flight depends on registration races that never affect results —
// span-determinism checks filter gc tracks out).
func (t *Task) noteTrim(dropped int, start time.Time) {
	if dropped == 0 {
		return
	}
	if st := t.runtime.gcStats; st != nil {
		st.Inc("compaction.log.trims")
		st.Add("compaction.log.ops_dropped", int64(dropped))
	}
	if tr := t.runtime.obs; tr != nil && t.runtime.gcSpans {
		tr.Emit("gc:"+t.spanTrack(), obs.KindCompact, "trim", -1, int64(dropped), time.Since(start))
	}
}

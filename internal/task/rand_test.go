package task

import (
	"testing"

	"repro/internal/mergeable"
)

// randScenario builds a program whose behavior depends on task-local
// randomness and returns its fingerprint.
func randScenario(seed uint64) uint64 {
	l := mergeable.NewList[int]()
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		ctx.SeedRand(seed)
		for i := 0; i < 4; i++ {
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				r := ctx.Rand()
				cl := data[0].(*mergeable.List[int])
				for j, n := 0, 1+r.Intn(4); j < n; j++ {
					cl.Append(r.Intn(1000))
				}
				return nil
			}, data[0])
		}
		l2 := data[0].(*mergeable.List[int])
		l2.Append(ctx.Rand().Intn(1000)) // the root draws too
		return ctx.MergeAll()
	}, l)
	if err != nil {
		panic(err)
	}
	return l.Fingerprint()
}

// TestCtxRandDeterministic pins the extension beyond the paper's footnote
// 1: programs drawing randomness from Ctx.Rand stay deterministic.
func TestCtxRandDeterministic(t *testing.T) {
	want := randScenario(42)
	for i := 0; i < 10; i++ {
		if got := randScenario(42); got != want {
			t.Fatalf("run %d: fingerprint %x != %x", i, got, want)
		}
	}
}

// TestCtxRandSeedSensitive verifies different seeds give different
// executions and sibling tasks draw independent streams.
func TestCtxRandSeedSensitive(t *testing.T) {
	if randScenario(1) == randScenario(2) {
		t.Fatal("different seeds should change the outcome")
	}
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		draws := make(chan int, 2)
		for i := 0; i < 2; i++ {
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				draws <- ctx.Rand().Intn(1 << 30)
				return nil
			})
		}
		if err := ctx.MergeAll(); err != nil {
			return err
		}
		a, b := <-draws, <-draws
		if a == b {
			t.Errorf("sibling tasks drew identical values %d; streams should differ", a)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package task

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/mergeable"
)

// chooseScenario spawns three children appending their index and merges
// them with MergeAny in a loop, returning the final list contents.
func chooseScenario(t *testing.T, cfg RunConfig) []int {
	t.Helper()
	list := mergeable.NewList[int]()
	err := RunWith(cfg, func(ctx *Ctx, data []mergeable.Mergeable) error {
		for i := 0; i < 3; i++ {
			n := i
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				if n == 0 {
					// The earliest-spawned child finishes last, so a live
					// first-completed merge would almost never pick it first.
					time.Sleep(2 * time.Millisecond)
				}
				data[0].(*mergeable.List[int]).Append(n)
				return nil
			}, data[0])
		}
		for i := 0; i < 3; i++ {
			if _, err := ctx.MergeAny(); err != nil {
				return err
			}
		}
		return nil
	}, list)
	if err != nil {
		t.Fatal(err)
	}
	return list.Values()
}

// TestChooseForcesPickOrder pins the scheduler hook: the chooser forces
// merge order 2,1,0 against the completion order, and sees the candidate
// sets shrink as children are merged.
func TestChooseForcesPickOrder(t *testing.T) {
	var seen [][]uint64
	choose := func(path string, candidates []uint64) (uint64, bool) {
		if path != "r" {
			t.Errorf("chooser path = %q, want r", path)
		}
		seen = append(seen, append([]uint64(nil), candidates...))
		return candidates[len(candidates)-1], true
	}
	got := chooseScenario(t, RunConfig{Choose: choose})
	if want := []int{2, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("list = %v, want %v", got, want)
	}
	wantSeen := [][]uint64{{0, 1, 2}, {0, 1}, {0}}
	if !reflect.DeepEqual(seen, wantSeen) {
		t.Fatalf("candidate sets = %v, want %v", seen, wantSeen)
	}
}

// TestChooseDecline pins the fallback: a chooser that declines leaves the
// merge on live first-completed behavior, and the run still completes.
func TestChooseDecline(t *testing.T) {
	choose := func(string, []uint64) (uint64, bool) { return 0, false }
	got := chooseScenario(t, RunConfig{Choose: choose})
	if len(got) != 3 {
		t.Fatalf("list = %v, want 3 elements", got)
	}
}

// TestChooseFromSet drives MergeAnyFromSet: candidates are exactly the
// given set (duplicates collapsed), and the forced pick wins.
func TestChooseFromSet(t *testing.T) {
	var seen [][]uint64
	choose := func(path string, candidates []uint64) (uint64, bool) {
		seen = append(seen, append([]uint64(nil), candidates...))
		return candidates[len(candidates)-1], true
	}
	reg := mergeable.NewRegister(0)
	err := RunWith(RunConfig{Choose: choose}, func(ctx *Ctx, data []mergeable.Mergeable) error {
		var ts []*Task
		for i := 1; i <= 2; i++ {
			n := i
			ts = append(ts, ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				data[0].(*mergeable.Register[int]).Set(n)
				return nil
			}, data[0]))
		}
		// Duplicate entries must collapse to one candidate each.
		if _, err := ctx.MergeAnyFromSet([]*Task{ts[0], ts[0], ts[1]}); err != nil {
			return err
		}
		return ctx.MergeAll()
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || !reflect.DeepEqual(seen[0], []uint64{0, 1}) {
		t.Fatalf("candidate sets = %v, want [[0 1]]", seen)
	}
	// Forced pick was child seq 1 (Set(2)), so its write commits first and
	// wins the conflict; child 0's later Set(1) transforms to a no-op.
	if got := reg.Get(); got != 2 {
		t.Fatalf("register = %d, want 2", got)
	}
}

// TestChooseReplayPrecedence pins that a replay script wins over the
// chooser: scripted picks are not offered to it.
func TestChooseReplayPrecedence(t *testing.T) {
	script := NewMergeScript()
	if err := RunRecording(script, func(ctx *Ctx, data []mergeable.Mergeable) error {
		for i := 0; i < 2; i++ {
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error { return nil })
		}
		for i := 0; i < 2; i++ {
			if _, err := ctx.MergeAny(); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	choose := func(string, []uint64) (uint64, bool) { calls++; return 0, true }
	err := RunWith(RunConfig{Replay: script, Choose: choose}, func(ctx *Ctx, data []mergeable.Mergeable) error {
		for i := 0; i < 2; i++ {
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error { return nil })
		}
		for i := 0; i < 2; i++ {
			if _, err := ctx.MergeAny(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("chooser consulted %d times under a full replay script, want 0", calls)
	}
}

// TestChooseNonCandidatePanics pins the guard against a chooser that
// would make the parent wait for a child it could wait on forever.
func TestChooseNonCandidatePanics(t *testing.T) {
	choose := func(string, []uint64) (uint64, bool) { return 99, true }
	err := RunWith(RunConfig{Choose: choose}, func(ctx *Ctx, data []mergeable.Mergeable) error {
		ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error { return nil })
		_, err := ctx.MergeAny()
		return err
	})
	var pe PanicError
	if err == nil || !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError from non-candidate pick", err)
	}
}

package task

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mergeable"

	"repro/internal/testutil"
)

// TestRunPooledBoundsParallelism verifies at most maxParallel task bodies
// execute simultaneously.
func TestRunPooledBoundsParallelism(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		const limit = 2
		var running, maxRunning atomic.Int64
		err := RunPooled(limit, func(ctx *Ctx, data []mergeable.Mergeable) error {
			for i := 0; i < 8; i++ {
				ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
					n := running.Add(1)
					for {
						cur := maxRunning.Load()
						if n <= cur || maxRunning.CompareAndSwap(cur, n) {
							break
						}
					}
					time.Sleep(2 * time.Millisecond)
					running.Add(-1)
					return nil
				})
			}
			return ctx.MergeAll()
		})
		if err != nil {
			t.Fatal(err)
		}
		// The root releases its slot while blocked in MergeAll, so up to
		// `limit` children may run at once — never more.
		if got := maxRunning.Load(); got > limit {
			t.Fatalf("observed %d concurrent tasks, pool limit is %d", got, limit)
		}
	})
}

// TestRunPooledMatchesRun pins that pooling changes scheduling only:
// results are identical to the unbounded runtime, for every pool size.
func TestRunPooledMatchesRun(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		scenario := func(run func(fn Func, data ...mergeable.Mergeable) error) []int {
			l := mergeable.NewList[int]()
			err := run(func(ctx *Ctx, data []mergeable.Mergeable) error {
				lst := data[0].(*mergeable.List[int])
				for i := 0; i < 5; i++ {
					i := i
					ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
						data[0].(*mergeable.List[int]).Insert(0, i)
						return nil
					}, lst)
				}
				lst.Append(99)
				return ctx.MergeAll()
			}, l)
			if err != nil {
				t.Fatal(err)
			}
			return l.Values()
		}
		want := scenario(Run)
		for _, pool := range []int{1, 2, 3, 16} {
			pool := pool
			got := scenario(func(fn Func, data ...mergeable.Mergeable) error {
				return RunPooled(pool, fn, data...)
			})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pool %d: %v != %v", pool, got, want)
			}
		}
	})
}

// TestRunPooledSyncLoops runs the sync-heavy merge cycle under a pool of
// one — the configuration most likely to deadlock if a blocking point
// held its slot.
func TestRunPooledSyncLoops(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		c := mergeable.NewCounter(0)
		err := RunPooled(1, func(ctx *Ctx, data []mergeable.Mergeable) error {
			cnt := data[0].(*mergeable.Counter)
			for i := 0; i < 4; i++ {
				ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
					for s := 0; s < 3; s++ {
						data[0].(*mergeable.Counter).Inc()
						if err := ctx.Sync(); err != nil {
							return err
						}
					}
					return nil
				}, cnt)
			}
			for s := 0; s < 4; s++ {
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			}
			return nil
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value() != 12 {
			t.Fatalf("counter = %d, want 12", c.Value())
		}
	})
}

// TestRunPooledClamp covers the degenerate pool size.
func TestRunPooledClamp(t *testing.T) {
	err := RunPooled(0, func(ctx *Ctx, data []mergeable.Mergeable) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
}

package task

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by the runtime. Callers match them with
// errors.Is.
var (
	// ErrAborted is returned from Sync (and recorded as a task's error)
	// when the parent marked the task externally aborted (Section II.F of
	// the paper). The task should unwind; its changes are discarded.
	ErrAborted = errors.New("task: externally aborted")

	// ErrMergeRejected is returned from Sync when the parent's merge
	// condition function rejected the task's changes. The changes were
	// discarded and the task's copies refreshed from the parent.
	ErrMergeRejected = errors.New("task: merge rejected by condition")

	// ErrNothingToMerge is returned by MergeAny and MergeAnyFromSet when
	// there is no live child to wait for. Per Section IV.B it never blocks
	// on an empty set — which is exactly why a simulated deadlock turns
	// into a livelock instead.
	ErrNothingToMerge = errors.New("task: no child task to merge")

	// ErrNotChild is returned when a merge names a task that is not a
	// child of the caller (the wait graph must remain a tree).
	ErrNotChild = errors.New("task: not a child of the calling task")

	// ErrRootSync is returned when the root task calls Sync; it has no
	// parent to merge with.
	ErrRootSync = errors.New("task: root task cannot Sync")
)

// PanicError wraps a panic value recovered from a task function. The task
// is treated as failed: its changes are discarded at merge time.
type PanicError struct {
	Value any
}

// Error implements error.
func (e PanicError) Error() string { return fmt.Sprintf("task: panic: %v", e.Value) }

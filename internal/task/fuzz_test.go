package task

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mergeable"

	"repro/internal/testutil"
)

// fuzzTask builds a seed-derived task body: a deterministic-but-arbitrary
// mix of structure operations, nested spawns, explicit merges and syncs.
// Any two executions of the same seed must produce identical final state —
// the runtime's determinism guarantee probed across random tree shapes
// rather than hand-written scenarios.
func fuzzTask(seed int64, depth int) Func {
	return func(ctx *Ctx, data []mergeable.Mergeable) error {
		r := rand.New(rand.NewSource(seed))
		l := data[0].(*mergeable.List[int])
		c := data[1].(*mergeable.Counter)
		tx := data[2].(*mergeable.Text)

		mutate := func() {
			for i, n := 0, r.Intn(4); i < n; i++ {
				switch r.Intn(5) {
				case 0:
					l.Append(r.Intn(100))
				case 1:
					if l.Len() > 0 {
						l.Delete(r.Intn(l.Len()))
					}
				case 2:
					l.Insert(r.Intn(l.Len()+1), r.Intn(100))
				case 3:
					c.Add(int64(r.Intn(10) - 4))
				default:
					tx.Insert(r.Intn(tx.Len()+1), string(rune('a'+r.Intn(26))))
				}
			}
		}

		mutate()
		if depth > 0 {
			for k, kids := 0, r.Intn(3); k < kids; k++ {
				childSeed := seed*1000003 + int64(k)*7919 + int64(depth)
				ctx.Spawn(fuzzTask(childSeed, depth-1), l, c, tx)
			}
			if r.Intn(2) == 0 {
				if err := ctx.MergeAll(); err != nil {
					return err
				}
				mutate()
			} // else: rely on the implicit MergeAll
		}
		if ctx.task.parent != nil && r.Intn(3) == 0 {
			if err := ctx.Sync(); err != nil {
				return err
			}
			mutate()
		}
		return nil
	}
}

func runFuzzTree(seed int64) uint64 {
	l := mergeable.NewList(1, 2, 3)
	c := mergeable.NewCounter(0)
	tx := mergeable.NewText("seed")
	err := Run(fuzzTask(seed, 3), l, c, tx)
	if err != nil {
		panic(err)
	}
	return mergeable.CombineFingerprints(l.Fingerprint(), c.Fingerprint(), tx.Fingerprint())
}

// TestRuntimeDeterminismFuzz runs each random tree shape several times
// and requires identical fingerprints.
func TestRuntimeDeterminismFuzz(t *testing.T) {
	testutil.WithTimeout(t, 120*time.Second, func() {
		f := func(seed int64) bool {
			want := runFuzzTree(seed)
			for i := 0; i < 3; i++ {
				if got := runFuzzTree(seed); got != want {
					t.Logf("seed %d: run %d fingerprint %x != %x", seed, i, got, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRuntimeDeterminismFuzzPooled repeats the fuzz under a bounded pool:
// pooling must not change any outcome.
func TestRuntimeDeterminismFuzzPooled(t *testing.T) {
	testutil.WithTimeout(t, 120*time.Second, func() {
		runPooled := func(seed int64, pool int) uint64 {
			l := mergeable.NewList(1, 2, 3)
			c := mergeable.NewCounter(0)
			tx := mergeable.NewText("seed")
			if err := RunPooled(pool, fuzzTask(seed, 3), l, c, tx); err != nil {
				panic(err)
			}
			return mergeable.CombineFingerprints(l.Fingerprint(), c.Fingerprint(), tx.Fingerprint())
		}
		f := func(seed int64) bool {
			want := runFuzzTree(seed)
			for _, pool := range []int{1, 2, 8} {
				if got := runPooled(seed, pool); got != want {
					t.Logf("seed %d pool %d: %x != %x", seed, pool, got, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatal(err)
		}
	})
}

package task

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/mergeable"

	"repro/internal/testutil"
)

// TestListing1 runs the paper's Listing 1: a child appends 5 while the
// parent appends 4; MergeAllFromSet yields [1 2 3 4 5], always.
func TestListing1(t *testing.T) {
	f := func(ctx *Ctx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		l.Append(5)
		return nil
	}
	for i := 0; i < 50; i++ {
		list := mergeable.NewList(1, 2, 3)
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			l := data[0].(*mergeable.List[int])
			h := ctx.Spawn(f, l)
			l.Append(4)
			return ctx.MergeAllFromSet([]*Task{h})
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
			t.Fatalf("run %d: list = %v, want [1 2 3 4 5]", i, got)
		}
	}
}

// TestMergeAllCreationOrder pins deterministic merging: children are
// merged in creation order regardless of completion order, so the
// earliest-spawned child's conflicting write wins.
func TestMergeAllCreationOrder(t *testing.T) {
	for i := 0; i < 30; i++ {
		reg := mergeable.NewRegister("initial")
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			r := data[0].(*mergeable.Register[string])
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				time.Sleep(2 * time.Millisecond) // finishes last
				data[0].(*mergeable.Register[string]).Set("first-spawned")
				return nil
			}, r)
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				data[0].(*mergeable.Register[string]).Set("second-spawned")
				return nil
			}, r)
			return ctx.MergeAll()
		}, reg)
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.Get(); got != "first-spawned" {
			t.Fatalf("run %d: register = %q, want first-spawned (creation order)", i, got)
		}
	}
}

// TestMergeAllFromSetArgumentOrder pins that MergeAllFromSet merges in
// argument order, not creation order.
func TestMergeAllFromSetArgumentOrder(t *testing.T) {
	reg := mergeable.NewRegister(0)
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		r := data[0].(*mergeable.Register[int])
		set := func(v int) Func {
			return func(ctx *Ctx, data []mergeable.Mergeable) error {
				data[0].(*mergeable.Register[int]).Set(v)
				return nil
			}
		}
		h1 := ctx.Spawn(set(1), r)
		h2 := ctx.Spawn(set(2), r)
		return ctx.MergeAllFromSet([]*Task{h2, h1}) // reversed
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Get() != 2 {
		t.Fatalf("register = %d, want 2 (argument order: h2 merged first, earlier merge wins)", reg.Get())
	}
}

// TestImplicitMergeAll verifies that a returning task implicitly merges
// its unmerged children (Section II.D).
func TestImplicitMergeAll(t *testing.T) {
	c := mergeable.NewCounter(0)
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		cnt := data[0].(*mergeable.Counter)
		for i := 0; i < 5; i++ {
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				data[0].(*mergeable.Counter).Inc()
				return nil
			}, cnt)
		}
		return nil // no explicit merge
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

// TestSyncLoop runs a child that repeatedly syncs intermediate results —
// the long-running-task pattern of Section II.E.
func TestSyncLoop(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		list := mergeable.NewList[int]()
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			l := data[0].(*mergeable.List[int])
			h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				cl := data[0].(*mergeable.List[int])
				for i := 0; i < 3; i++ {
					cl.Append(i)
					if err := ctx.Sync(); err != nil {
						return err
					}
					// After Sync the copy reflects the parent's state,
					// including the parent's own concurrent appends.
					if cl.Len() < i+1 {
						t.Errorf("sync %d: copy too short: %v", i, cl.Values())
					}
				}
				return nil
			}, l)
			for i := 0; i < 3; i++ {
				if err := ctx.MergeAllFromSet([]*Task{h}); err != nil {
					return err
				}
				l.Append(100 + i)
			}
			return ctx.MergeAllFromSet([]*Task{h})
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); !reflect.DeepEqual(got, []int{0, 100, 1, 101, 2, 102}) {
			t.Fatalf("list = %v", got)
		}
	})
}

// TestCloneAcceptPattern exercises Clone + MergeAny: a child clones
// siblings (the blocking-accept pattern of Section II.E) which sync fresh
// data from the shared parent.
func TestCloneAcceptPattern(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		counter := mergeable.NewCounter(0)
		const clones = 4
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			cnt := data[0].(*mergeable.Counter)
			_ = cnt
			accept := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				for i := 0; i < clones; i++ {
					ctx.Clone(func(ctx *Ctx, data []mergeable.Mergeable) error {
						if err := ctx.Sync(); err != nil { // refresh stale copies
							return err
						}
						data[0].(*mergeable.Counter).Inc()
						return nil
					})
				}
				return nil
			}, cnt)
			merged := 0
			for merged < clones+1 { // clones + the accept task itself
				h, err := ctx.MergeAny()
				if errors.Is(err, ErrNothingToMerge) {
					break
				}
				if err != nil {
					return err
				}
				_ = h
				merged++
			}
			_ = accept
			return nil
		}, counter)
		if err != nil {
			t.Fatal(err)
		}
		if counter.Value() != clones {
			t.Fatalf("counter = %d, want %d", counter.Value(), clones)
		}
	})
}

// TestCloneDataStaleUntilSync verifies a clone's placeholder copies panic
// until the first Sync refreshes them.
func TestCloneDataStaleUntilSync(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		counter := mergeable.NewCounter(0)
		sawPanic := false
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				ctx.Clone(func(ctx *Ctx, data []mergeable.Mergeable) error {
					func() {
						defer func() {
							if recover() != nil {
								sawPanic = true
							}
						}()
						data[0].(*mergeable.Counter).Inc() // must panic: stale
					}()
					if err := ctx.Sync(); err != nil {
						return err
					}
					data[0].(*mergeable.Counter).Inc() // fine after Sync
					return nil
				})
				return nil
			}, data[0])
			return ctx.MergeAll()
		}, counter)
		if err != nil {
			t.Fatal(err)
		}
		if !sawPanic {
			t.Fatal("stale clone data should panic before Sync")
		}
		if counter.Value() != 1 {
			t.Fatalf("counter = %d, want 1", counter.Value())
		}
	})
}

// TestAbort verifies Section II.F: an externally aborted child's changes
// are dismissed, and the child observes the abort via Sync.
func TestAbort(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		list := mergeable.NewList[string]()
		var childSawAbort bool
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			l := data[0].(*mergeable.List[string])
			h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				cl := data[0].(*mergeable.List[string])
				cl.Append("discarded")
				for {
					if err := ctx.Sync(); err != nil {
						childSawAbort = errors.Is(err, ErrAborted)
						return err
					}
					cl.Append("more")
				}
			}, l)
			h.Abort()
			// First MergeAll resumes the child's pending Sync with
			// ErrAborted; the second collects its completion.
			if err := ctx.MergeAll(); err != nil {
				return err
			}
			if err := ctx.MergeAll(); err != nil {
				return err
			}
			if !h.Aborted() {
				t.Error("handle should report aborted")
			}
			if !errors.Is(h.Err(), ErrAborted) {
				t.Errorf("handle err = %v", h.Err())
			}
			return nil
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if list.Len() != 0 {
			t.Fatalf("aborted child's changes leaked: %v", list.Values())
		}
		if !childSawAbort {
			t.Fatal("child should observe ErrAborted from Sync")
		}
	})
}

// TestChildError verifies a failed child contributes nothing and its error
// reaches the parent's MergeAll result.
func TestChildError(t *testing.T) {
	list := mergeable.NewList[int]()
	boom := errors.New("boom")
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.List[int]).Append(1)
			return boom
		}, l)
		err := ctx.MergeAll()
		if !errors.Is(err, boom) {
			t.Errorf("MergeAll err = %v, want boom", err)
		}
		if !errors.Is(h.Err(), boom) {
			t.Errorf("handle err = %v", h.Err())
		}
		return nil
	}, list)
	if err != nil {
		t.Fatal(err)
	}
	if list.Len() != 0 {
		t.Fatalf("failed child's changes leaked: %v", list.Values())
	}
}

// TestChildPanic verifies panics are caught, wrapped as PanicError, and
// treated like task failure (changes discarded, grandchildren aborted).
func TestChildPanic(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		list := mergeable.NewList[int]()
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			l := data[0].(*mergeable.List[int])
			h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				cl := data[0].(*mergeable.List[int])
				// Spawn a grandchild, then die before merging it.
				ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
					data[0].(*mergeable.List[int]).Append(99)
					return nil
				}, cl)
				cl.Append(1)
				panic("kaboom")
			}, l)
			err := ctx.MergeAll()
			var pe PanicError
			if !errors.As(err, &pe) || pe.Value != "kaboom" {
				t.Errorf("MergeAll err = %v, want PanicError(kaboom)", err)
			}
			_ = h
			return nil
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if list.Len() != 0 {
			t.Fatalf("panicked child's changes leaked: %v", list.Values())
		}
	})
}

// TestMergeCondition verifies the rollback mechanism of Section II.D for
// completed children.
func TestMergeCondition(t *testing.T) {
	list := mergeable.NewList[int]()
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		spawnAppend := func(v int) *Task {
			return ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				data[0].(*mergeable.List[int]).Append(v)
				return nil
			}, l)
		}
		hOK := spawnAppend(3)
		cond := WithCondition(func(preview []mergeable.Mergeable) bool {
			// Accept only merges keeping every element below 10.
			for _, v := range preview[0].(*mergeable.List[int]).Values() {
				if v >= 10 {
					return false
				}
			}
			return true
		})
		if err := ctx.MergeAllFromSet([]*Task{hOK}, cond); err != nil {
			t.Errorf("valid merge rejected: %v", err)
		}
		hBad := spawnAppend(42)
		err := ctx.MergeAllFromSet([]*Task{hBad}, cond)
		if !errors.Is(err, ErrMergeRejected) {
			t.Errorf("invalid merge not rejected: %v", err)
		}
		if !errors.Is(hBad.Err(), ErrMergeRejected) {
			t.Errorf("handle err = %v", hBad.Err())
		}
		return nil
	}, list)
	if err != nil {
		t.Fatal(err)
	}
	if got := list.Values(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("list = %v, want [3]", got)
	}
}

// TestSyncMergeRejected verifies a syncing child survives a rejected merge:
// its changes are dropped, its copies refreshed, and Sync reports
// ErrMergeRejected (Listing 3's error-handling path).
func TestSyncMergeRejected(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		list := mergeable.NewList[int]()
		var syncErr error
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			l := data[0].(*mergeable.List[int])
			h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				cl := data[0].(*mergeable.List[int])
				cl.Append(42) // will be rejected
				syncErr = ctx.Sync()
				if cl.Len() != 0 {
					t.Errorf("copy not refreshed after rejection: %v", cl.Values())
				}
				cl.Append(7) // acceptable
				return nil
			}, l)
			reject := WithCondition(func(preview []mergeable.Mergeable) bool {
				for _, v := range preview[0].(*mergeable.List[int]).Values() {
					if v >= 10 {
						return false
					}
				}
				return true
			})
			if err := ctx.MergeAllFromSet([]*Task{h}, reject); err == nil {
				t.Error("first merge should report rejection")
			}
			return ctx.MergeAllFromSet([]*Task{h}, reject)
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(syncErr, ErrMergeRejected) {
			t.Fatalf("sync err = %v", syncErr)
		}
		if got := list.Values(); !reflect.DeepEqual(got, []int{7}) {
			t.Fatalf("list = %v, want [7]", got)
		}
	})
}

// TestMergeAnyNothingToMerge pins the non-blocking empty-set behavior that
// Section IV.B's livelock argument depends on.
func TestMergeAnyNothingToMerge(t *testing.T) {
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		if _, err := ctx.MergeAny(); !errors.Is(err, ErrNothingToMerge) {
			t.Errorf("MergeAny on no children = %v", err)
		}
		if _, err := ctx.MergeAnyFromSet(nil); !errors.Is(err, ErrNothingToMerge) {
			t.Errorf("MergeAnyFromSet(empty) = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMergeForeignChild verifies the tree discipline: merging another
// task's child fails with ErrNotChild.
func TestMergeForeignChild(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			var grandchild *Task
			got := make(chan *Task)
			ctx.Spawn(func(inner *Ctx, data []mergeable.Mergeable) error {
				h := inner.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error { return nil })
				got <- h
				return inner.MergeAll()
			})
			grandchild = <-got
			if err := ctx.MergeAllFromSet([]*Task{grandchild}); !errors.Is(err, ErrNotChild) {
				t.Errorf("merging grandchild = %v, want ErrNotChild", err)
			}
			if _, err := ctx.MergeAnyFromSet([]*Task{grandchild}); !errors.Is(err, ErrNotChild) {
				t.Errorf("MergeAnyFromSet(grandchild) = %v, want ErrNotChild", err)
			}
			return ctx.MergeAll()
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestRootSync pins that the root cannot Sync.
func TestRootSync(t *testing.T) {
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		if err := ctx.Sync(); !errors.Is(err, ErrRootSync) {
			t.Errorf("root Sync = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRootClonePanics pins that the root cannot Clone.
func TestRootClonePanics(t *testing.T) {
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		defer func() {
			if recover() == nil {
				t.Error("root Clone should panic")
			}
		}()
		ctx.Clone(func(ctx *Ctx, data []mergeable.Mergeable) error { return nil })
		return nil
	})
	if err != nil && !errors.As(err, &PanicError{}) {
		t.Fatal(err)
	}
}

// TestNestedHierarchy runs a three-level task tree with data flowing
// upward through two merge layers.
func TestNestedHierarchy(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		c := mergeable.NewCounter(0)
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			cnt := data[0].(*mergeable.Counter)
			for i := 0; i < 3; i++ {
				ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
					mid := data[0].(*mergeable.Counter)
					for j := 0; j < 4; j++ {
						ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
							data[0].(*mergeable.Counter).Inc()
							return nil
						}, mid)
					}
					return ctx.MergeAll()
				}, cnt)
			}
			return ctx.MergeAll()
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value() != 12 {
			t.Fatalf("counter = %d, want 12", c.Value())
		}
	})
}

// TestMultipleStructures passes several structures of different types to
// one child and checks they merge independently.
func TestMultipleStructures(t *testing.T) {
	list := mergeable.NewList(1)
	txt := mergeable.NewText("a")
	cnt := mergeable.NewCounter(0)
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		l, tx, c := data[0].(*mergeable.List[int]), data[1].(*mergeable.Text), data[2].(*mergeable.Counter)
		ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.List[int]).Append(2)
			data[1].(*mergeable.Text).Append("b")
			data[2].(*mergeable.Counter).Add(5)
			return nil
		}, l, tx, c)
		l.Append(3)
		tx.Append("c")
		c.Add(7)
		return ctx.MergeAll()
	}, list, txt, cnt)
	if err != nil {
		t.Fatal(err)
	}
	if got := list.Values(); !reflect.DeepEqual(got, []int{1, 3, 2}) {
		t.Fatalf("list = %v", got)
	}
	if txt.String() != "acb" {
		t.Fatalf("text = %q", txt.String())
	}
	if cnt.Value() != 12 {
		t.Fatalf("counter = %d", cnt.Value())
	}
}

// TestTaskIDsAndData covers the small Ctx accessors.
func TestTaskIDsAndData(t *testing.T) {
	c := mergeable.NewCounter(0)
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		if ctx.ID() == 0 {
			t.Error("root should have a nonzero id")
		}
		if len(ctx.Data()) != 1 {
			t.Errorf("root data = %v", ctx.Data())
		}
		if ctx.Aborted() {
			t.Error("root should not be aborted")
		}
		h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error { return nil }, data[0])
		if h.ID() == ctx.ID() {
			t.Error("child id should differ")
		}
		return ctx.MergeAll()
	}, c)
	if err != nil {
		t.Fatal(err)
	}
}

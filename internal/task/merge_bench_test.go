package task

import (
	"testing"

	"repro/internal/mergeable"
)

// BenchmarkMergeServerCopy isolates how the transform step handles the
// server history a child is transformed against. distinct: every position
// binds its own structure, the common case — the transform reads the
// committed history in place, with no defensive copy (the unconditional
// merge-append this family was added to guard). aliased: one structure
// bound at every position — the only case that still builds a merged
// server slice, because later positions must also transform against
// earlier positions' pending operations. Run with -benchmem: the distinct
// case's allocs/op is the regression signal.
func BenchmarkMergeServerCopy(b *testing.B) {
	const n = 8
	workload := func(b *testing.B, aliased bool) {
		for i := 0; i < b.N; i++ {
			data := make([]mergeable.Mergeable, n)
			if aliased {
				l := mergeable.NewList[int](0, 1, 2, 3, 4, 5, 6, 7)
				for j := range data {
					data[j] = l
				}
			} else {
				for j := range data {
					data[j] = mergeable.NewList[int](0, 1, 2, 3, 4, 5, 6, 7)
				}
			}
			err := Run(func(ctx *Ctx, d []mergeable.Mergeable) error {
				ch := ctx.Spawn(func(ctx *Ctx, d []mergeable.Mergeable) error {
					for _, m := range d {
						l := m.(*mergeable.List[int])
						for k := 0; k < 10; k++ {
							l.Set(k%8, k)
						}
					}
					return nil
				}, d...)
				// Concurrent parent operations give the child a non-empty
				// server history to transform against.
				for _, m := range d {
					l := m.(*mergeable.List[int])
					for k := 0; k < 10; k++ {
						l.Set((k+5)%8, -k)
					}
				}
				return ctx.MergeAllFromSet([]*Task{ch})
			}, data...)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("distinct", func(b *testing.B) { workload(b, false) })
	b.Run("aliased", func(b *testing.B) { workload(b, true) })
}

package task

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mergeable"
)

// TestMergeScriptSnapshotRestoreRoundTrip: Snapshot's bytes are
// deterministic and Restore rebuilds the identical pick table with the
// cursors rewound.
func TestMergeScriptSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewMergeScript()
	s.Append("r", 2)
	s.Append("r", 0)
	s.Append("r/1", 5)
	s.Append("r/0/3", 1)

	snap := s.Snapshot()
	if !bytes.Equal(snap, s.Snapshot()) {
		t.Fatal("two snapshots of the same script differ")
	}

	// Same picks inserted in a different order must serialize identically.
	s2 := NewMergeScript()
	s2.Append("r/0/3", 1)
	s2.Append("r/1", 5)
	s2.Append("r", 2)
	s2.Append("r", 0)
	if !bytes.Equal(snap, s2.Snapshot()) {
		t.Fatal("snapshot bytes depend on path insertion order")
	}

	restored := NewMergeScript()
	// Burn a cursor so Restore's rewind is observable.
	restored.Append("r", 9)
	restored.next("r")
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Picks(), s.Picks(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored picks %v, want %v", got, want)
	}
	if seq, ok := restored.next("r"); !ok || seq != 2 {
		t.Fatalf("first pick after restore = %d,%v, want 2,true (cursors not rewound)", seq, ok)
	}
	if err := restored.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}

// TestMergeScriptSinkStreamsInScriptOrder: the sink observes every pick,
// under the script's lock, in exactly the order the script commits them.
func TestMergeScriptSinkStreamsInScriptOrder(t *testing.T) {
	s := NewMergeScript()
	type pick struct {
		path string
		seq  uint64
	}
	var got []pick
	s.SetSink(func(path string, seq uint64) { got = append(got, pick{path, seq}) })

	c := mergeable.NewCounter(0)
	err := RunRecording(s, func(ctx *Ctx, data []mergeable.Mergeable) error {
		for i := 0; i < 4; i++ {
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				data[0].(*mergeable.Counter).Inc()
				return nil
			}, data[0])
		}
		for i := 0; i < 4; i++ {
			if _, err := ctx.MergeAny(); err != nil {
				return err
			}
		}
		return nil
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("sink observed %d picks, script recorded %d", len(got), s.Len())
	}
	want := s.Picks()["r"]
	for i, p := range got {
		if p.path != "r" || p.seq != want[i] {
			t.Fatalf("sink pick %d = %v, script has seq %d at that position", i, p, want[i])
		}
	}
}

// TestMergeScriptConcurrentUse hammers record/next/Append/Snapshot/Picks
// from many goroutines — the race detector is the assertion.
func TestMergeScriptConcurrentUse(t *testing.T) {
	s := NewMergeScript()
	s.SetSink(func(string, uint64) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			path := []string{"r", "r/0", "r/1", "r/2"}[g%4]
			for i := 0; i < 200; i++ {
				switch g % 4 {
				case 0:
					s.record(path, uint64(i))
				case 1:
					s.Append(path, uint64(i))
				case 2:
					s.next(path)
					s.Len()
				default:
					s.Snapshot()
					s.Picks()
				}
			}
		}()
	}
	wg.Wait()
	if err := NewMergeScript().Restore(s.Snapshot()); err != nil {
		t.Fatalf("snapshot taken under contention does not restore: %v", err)
	}
}

// TestRunRecoverableRootMergeHook: the hook fires once per root merge, on
// ascending 1-based ordinals, with the root's live structures.
func TestRunRecoverableRootMergeHook(t *testing.T) {
	var ordinals []int
	var values []int64
	hook := func(data []mergeable.Mergeable, n int) {
		ordinals = append(ordinals, n)
		values = append(values, data[0].(*mergeable.Counter).Value())
	}
	c := mergeable.NewCounter(0)
	err := RunRecoverable(nil, NewMergeScript(), hook, func(ctx *Ctx, data []mergeable.Mergeable) error {
		for i := 0; i < 3; i++ {
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				data[0].(*mergeable.Counter).Inc()
				return nil
			}, data[0])
			if err := ctx.MergeAll(); err != nil {
				return err
			}
		}
		return nil
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ordinals, []int{1, 2, 3}) {
		t.Fatalf("hook ordinals = %v, want [1 2 3]", ordinals)
	}
	if !reflect.DeepEqual(values, []int64{1, 2, 3}) {
		t.Fatalf("hook observed counter values %v, want [1 2 3] (post-merge state)", values)
	}
}

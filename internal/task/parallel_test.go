package task

import (
	"runtime"
	"testing"

	"repro/internal/mergeable"
)

// parallelWorkload runs a spawn/merge tree over several structures and
// returns the combined fingerprint of the final states. The workload mixes
// the cases the parallel transform engine must keep deterministic:
// multiple structures per child (fan-out across the pool), concurrent
// parent edits (non-empty server histories), sync round-trips (repeated
// merges of one child) and nested spawns.
func parallelWorkload(t *testing.T) uint64 {
	t.Helper()
	const structs = 6
	data := make([]mergeable.Mergeable, structs)
	for i := range data {
		l := mergeable.NewList[int]()
		for k := 0; k < 8; k++ {
			l.Append(k + i)
		}
		data[i] = l
	}
	err := Run(func(ctx *Ctx, d []mergeable.Mergeable) error {
		ch := ctx.Spawn(func(ctx *Ctx, d []mergeable.Mergeable) error {
			for round := 0; round < 3; round++ {
				for j, m := range d {
					l := m.(*mergeable.List[int])
					l.Set((round+j)%8, 100*round+j)
					l.Append(round)
					l.Delete(0)
				}
				if err := ctx.Sync(); err != nil {
					return err
				}
			}
			return nil
		}, d...)
		grand := ctx.Spawn(func(ctx *Ctx, d []mergeable.Mergeable) error {
			inner := ctx.Spawn(func(ctx *Ctx, d []mergeable.Mergeable) error {
				for _, m := range d {
					m.(*mergeable.List[int]).Append(-1)
				}
				return nil
			}, d[0], d[1])
			for j, m := range d {
				m.(*mergeable.List[int]).Set(j%8, -j)
			}
			return ctx.MergeAllFromSet([]*Task{inner})
		}, d...)
		// Concurrent parent edits so children transform against non-empty
		// server histories.
		for j, m := range d {
			l := m.(*mergeable.List[int])
			l.Set((j+1)%8, 7*j)
			l.Append(42)
		}
		return ctx.MergeAllFromSet([]*Task{ch, grand})
	}, data...)
	if err != nil {
		t.Fatal(err)
	}
	fps := make([]uint64, structs)
	for i, m := range data {
		fps[i] = m.Fingerprint()
	}
	return mergeable.CombineFingerprints(fps...)
}

// aliasWorkload binds the same parent structure at two data positions —
// the one cross-position dependency of the transform step — plus a
// distinct structure, and returns the final fingerprint.
func aliasWorkload(t *testing.T) uint64 {
	t.Helper()
	shared := mergeable.NewList[int]()
	other := mergeable.NewList[int]()
	for k := 0; k < 8; k++ {
		shared.Append(k)
		other.Append(10 * k)
	}
	err := Run(func(ctx *Ctx, d []mergeable.Mergeable) error {
		// d[0] and d[1] are independent copies of the same parent
		// structure; both contributions land in it at merge time, the
		// second transformed against the first's pending operations.
		ch := ctx.Spawn(func(ctx *Ctx, d []mergeable.Mergeable) error {
			d[0].(*mergeable.List[int]).Append(1)
			d[1].(*mergeable.List[int]).Append(2)
			d[2].(*mergeable.List[int]).Set(0, -1)
			d[0].(*mergeable.List[int]).Set(3, 33)
			d[1].(*mergeable.List[int]).Set(5, 55)
			return nil
		}, d[0], d[0], d[1])
		d[0].(*mergeable.List[int]).Append(9)
		return ctx.MergeAllFromSet([]*Task{ch})
	}, shared, other)
	if err != nil {
		t.Fatal(err)
	}
	return mergeable.CombineFingerprints(shared.Fingerprint(), other.Fingerprint())
}

// withEngine runs f under a parallel-merge setting and a GOMAXPROCS value,
// restoring both afterwards.
func withEngine(t *testing.T, parallel bool, procs int, f func() uint64) uint64 {
	t.Helper()
	SetParallelMerge(parallel)
	prev := runtime.GOMAXPROCS(procs)
	defer func() {
		runtime.GOMAXPROCS(prev)
		SetParallelMerge(true)
	}()
	return f()
}

// TestParallelMergeDeterminism pins the engine's core guarantee: the merge
// result is bit-identical with the transform pool on and off, at
// GOMAXPROCS 1 and 4. At GOMAXPROCS >= 2 the pool is actually exercised;
// at 1 the engine falls back inline even when enabled.
func TestParallelMergeDeterminism(t *testing.T) {
	serial := withEngine(t, false, 1, func() uint64 { return parallelWorkload(t) })
	for _, procs := range []int{1, 4} {
		got := withEngine(t, true, procs, func() uint64 { return parallelWorkload(t) })
		if got != serial {
			t.Errorf("GOMAXPROCS=%d: parallel fingerprint %#x != serial %#x", procs, got, serial)
		}
	}
	// Repeat under contention so pool scheduling orders vary across runs.
	base := withEngine(t, true, 4, func() uint64 { return parallelWorkload(t) })
	for run := 0; run < 10; run++ {
		got := withEngine(t, true, 4, func() uint64 { return parallelWorkload(t) })
		if got != base {
			t.Fatalf("run %d: fingerprint %#x != %#x — parallel merge is not deterministic", run, got, base)
		}
	}
}

// TestParallelMergeAliasing pins that structure aliasing (one Mergeable at
// several data positions) merges identically with the pool on and off:
// aliased positions must chain through the serial pending path.
func TestParallelMergeAliasing(t *testing.T) {
	serial := withEngine(t, false, 1, func() uint64 { return aliasWorkload(t) })
	for _, procs := range []int{1, 4} {
		got := withEngine(t, true, procs, func() uint64 { return aliasWorkload(t) })
		if got != serial {
			t.Errorf("GOMAXPROCS=%d: aliased fingerprint %#x != serial %#x", procs, got, serial)
		}
	}
}

// TestAliasedPositions covers the scan and map variants of alias
// detection.
func TestAliasedPositions(t *testing.T) {
	a := mergeable.NewList[int]()
	b := mergeable.NewList[int]()
	if got := aliasedPositions([]mergeable.Mergeable{a, b}); got != nil {
		t.Errorf("distinct structures flagged aliased: %v", got)
	}
	got := aliasedPositions([]mergeable.Mergeable{a, b, a})
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan variant: got %v, want %v", got, want)
		}
	}
	// Force the map variant with > 16 positions.
	big := make([]mergeable.Mergeable, 20)
	for i := range big {
		big[i] = mergeable.NewList[int]()
	}
	big[19] = big[3]
	mgot := aliasedPositions(big)
	for i := range big {
		want := i == 3 || i == 19
		if mgot[i] != want {
			t.Fatalf("map variant: position %d aliased=%v, want %v", i, mgot[i], want)
		}
	}
}

package task

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mergeable"
)

// This file backs the paper's debugging argument (Section I: determinism
// "has the potential to significantly simplify debugging: A bug will not
// appear only in some executions of a program"). A merge trace records
// every merge decision; for a deterministic program the per-parent traces
// are identical on every run, so a failing run can be compared
// merge-by-merge against a good one.

// MergeEvent describes one merge decision made by a parent task.
type MergeEvent struct {
	Seq      int    // position within the parent's merge sequence
	ParentID uint64 // merging task
	ChildID  uint64 // merged task
	Sync     bool   // true: sync merge (child resumed); false: completion
	Outcome  string // "merged", "aborted", "rejected" or "failed"
	Ops      int    // transformed operations applied to the parent
}

// String renders the event compactly.
func (e MergeEvent) String() string {
	kind := "done"
	if e.Sync {
		kind = "sync"
	}
	return fmt.Sprintf("#%d parent %d <- child %d [%s] %s ops=%d",
		e.Seq, e.ParentID, e.ChildID, kind, e.Outcome, e.Ops)
}

// Trace collects merge events from a traced Run. Parents merge
// concurrently in different subtrees, so the global collection order is
// scheduling-dependent — but each parent's own subsequence is part of the
// program's deterministic behavior, which is what ByParent exposes.
type Trace struct {
	mu     sync.Mutex
	events []MergeEvent
	seqs   map[uint64]int
}

func (tr *Trace) record(parent, child *Task, sync bool, outcome string, ops int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.seqs == nil {
		tr.seqs = make(map[uint64]int)
	}
	seq := tr.seqs[parent.id]
	tr.seqs[parent.id] = seq + 1
	tr.events = append(tr.events, MergeEvent{
		Seq:      seq,
		ParentID: parent.id,
		ChildID:  child.id,
		Sync:     sync,
		Outcome:  outcome,
		Ops:      ops,
	})
}

// Events returns every recorded event (collection order).
func (tr *Trace) Events() []MergeEvent {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]MergeEvent(nil), tr.events...)
}

// ByParent groups the events into each parent's merge sequence — the
// deterministic view.
func (tr *Trace) ByParent() map[uint64][]MergeEvent {
	out := make(map[uint64][]MergeEvent)
	for _, e := range tr.Events() {
		out[e.ParentID] = append(out[e.ParentID], e)
	}
	for _, evs := range out {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	}
	return out
}

// String renders the trace grouped by parent, parents in ID order.
func (tr *Trace) String() string {
	byParent := tr.ByParent()
	parents := make([]uint64, 0, len(byParent))
	for p := range byParent {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	var sb strings.Builder
	for _, p := range parents {
		fmt.Fprintf(&sb, "task %d merges:\n", p)
		for _, e := range byParent[p] {
			fmt.Fprintf(&sb, "  %s\n", e)
		}
	}
	return sb.String()
}

// RunTraced is Run with merge tracing: every merge decision in the whole
// task tree is recorded into the returned Trace. For programs using only
// deterministic merges, each parent's merge sequence is identical on
// every run — diffing two traces localizes a divergence to the exact
// merge where behavior forked.
func RunTraced(fn Func, data ...mergeable.Mergeable) (*Trace, error) {
	tr := &Trace{}
	err := RunWith(RunConfig{Trace: tr}, fn, data...)
	return tr, err
}

package task

import (
	"fmt"
	"sort"
)

// ChoiceFunc decides which child a MergeAny / MergeAnyFromSet call merges
// next — the scheduler hook the schedule explorer (internal/explore)
// drives. It is consulted on the merging parent's goroutine with the
// parent's stable path and the creation sequence numbers of the unmerged
// candidate children, in ascending order: the live children at call time
// for MergeAny, the given set for MergeAnyFromSet. Returning ok=true
// forces that child — the parent waits for it to become quiescent even if
// another candidate finishes first — which is how an explorer enumerates
// completion orders the wall clock would never produce. Returning
// ok=false falls back to live first-completed behavior.
//
// The returned childSeq must be one of candidates; anything else panics,
// since silently waiting for a child that is not a candidate could block
// forever. A replay script (RunConfig.Replay) takes precedence: the
// chooser only sees merges the script does not cover.
type ChoiceFunc func(parentPath string, candidates []uint64) (childSeq uint64, ok bool)

// chosenPick consults the runtime's chooser for a MergeAny pick. set
// restricts the candidates (MergeAnyFromSet); nil means all live
// children (dynamic MergeAny). It returns nil when no chooser is
// installed, no candidate exists, or the chooser declines.
func (t *Task) chosenPick(set map[*Task]bool) *Task {
	choose := t.runtime.choose
	if choose == nil {
		return nil
	}
	var cand []*Task
	if set == nil {
		cand = t.liveChildren()
	} else {
		cand = make([]*Task, 0, len(set))
		for c := range set {
			cand = append(cand, c)
		}
	}
	if len(cand) == 0 {
		return nil
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].seq < cand[j].seq })
	seqs := make([]uint64, len(cand))
	for i, c := range cand {
		seqs[i] = c.seq
	}
	seq, ok := choose(t.path(), seqs)
	if !ok {
		return nil
	}
	for _, c := range cand {
		if c.seq == seq {
			return t.awaitSeq(seq)
		}
	}
	panic(fmt.Sprintf("task: chooser picked child seq %d at %s, not among candidates %v", seq, t.path(), seqs))
}

package task

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"repro/internal/mergeable"
)

// Record & replay for the non-deterministic merges. Programs built only
// from MergeAll/MergeAllFromSet are deterministic by construction; the
// moment a program opts into MergeAny/MergeAnyFromSet (servers,
// interactive applications), its outcome depends on which child wins each
// race. A MergeScript captures exactly those decisions — nothing else is
// non-deterministic in the model — so replaying the script reproduces a
// recorded execution bit for bit. This extends the paper's debugging
// story to the programs that deliberately left determinism behind.

// MergeScript is the recorded sequence of non-deterministic merge picks.
// Children are identified by their creation path (per-parent creation
// sequence numbers from the root), which is stable across runs of the
// same program; task IDs are not.
//
// A script is safe for concurrent use: pooled and fan-out-heavy programs
// reach record/next from the merge paths of many tasks at once.
type MergeScript struct {
	mu      sync.Mutex
	picks   map[string][]uint64 // parent path -> child seqs in pick order
	cursors map[string]int      // replay progress per parent path
	// sink, when set, observes every recorded pick as it commits — the
	// journal's streaming write-ahead hook. It is invoked under mu, so
	// per-path pick order in the sink matches script order exactly; the
	// sink must not call back into the script.
	sink func(path string, childSeq uint64)
}

// NewMergeScript returns an empty script for RunRecording to fill.
func NewMergeScript() *MergeScript {
	return &MergeScript{picks: make(map[string][]uint64)}
}

// Len returns the total number of recorded picks.
func (s *MergeScript) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.picks {
		n += len(p)
	}
	return n
}

// SetSink installs a streaming observer invoked for every pick as it is
// recorded (see the field comment). Passing nil removes the sink. Install
// it before the run starts; swapping sinks mid-run is not supported.
func (s *MergeScript) SetSink(sink func(path string, childSeq uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
}

// Append records a pick from outside a run — journal recovery uses it to
// rebuild a script from durable pick records. The sink is not invoked.
func (s *MergeScript) Append(path string, childSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.picks == nil {
		s.picks = make(map[string][]uint64)
	}
	s.picks[path] = append(s.picks[path], childSeq)
}

// Picks returns a deep copy of the recorded picks, keyed by parent path.
func (s *MergeScript) Picks() map[string][]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]uint64, len(s.picks))
	for path, seqs := range s.picks {
		out[path] = append([]uint64(nil), seqs...)
	}
	return out
}

// pathPicks is the stable on-disk form of one parent's picks.
type pathPicks struct {
	Path string
	Seqs []uint64
}

// Snapshot returns a self-contained, deterministic encoding of the
// recorded picks: the same picks always produce the same bytes (paths are
// sorted), so snapshots embedded in journal checkpoints are comparable.
// Replay cursors are not part of the snapshot.
func (s *MergeScript) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	flat := make([]pathPicks, 0, len(s.picks))
	for path, seqs := range s.picks {
		flat = append(flat, pathPicks{Path: path, Seqs: append([]uint64(nil), seqs...)})
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].Path < flat[j].Path })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(flat); err != nil {
		// Encoding strings and uint64s into a bytes.Buffer cannot fail.
		panic(fmt.Sprintf("task: MergeScript snapshot: %v", err))
	}
	return buf.Bytes()
}

// Restore replaces the script's contents with a Snapshot's, rewinding the
// replay cursors.
func (s *MergeScript) Restore(data []byte) error {
	var flat []pathPicks
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&flat); err != nil {
		return fmt.Errorf("task: restore merge script: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.picks = make(map[string][]uint64, len(flat))
	for _, p := range flat {
		s.picks[p.Path] = p.Seqs
	}
	s.cursors = nil
	return nil
}

// record appends a pick made by the parent at path.
func (s *MergeScript) record(path string, childSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.picks[path] = append(s.picks[path], childSeq)
	if s.sink != nil {
		s.sink(path, childSeq)
	}
}

// next pops the parent's next scripted pick. ok is false when the script
// has no (further) picks for this parent — the caller falls back to live
// first-completed behavior.
func (s *MergeScript) next(path string) (childSeq uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cursors == nil {
		s.cursors = make(map[string]int)
	}
	i := s.cursors[path]
	p := s.picks[path]
	if i >= len(p) {
		return 0, false
	}
	s.cursors[path] = i + 1
	return p[i], true
}

// resetCursors rewinds the script so it can drive another replay.
func (s *MergeScript) resetCursors() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cursors = nil
}

// RunRecording is Run that additionally records every MergeAny /
// MergeAnyFromSet decision into script. The recorded run behaves exactly
// like a plain Run.
func RunRecording(script *MergeScript, fn Func, data ...mergeable.Mergeable) error {
	return RunWith(RunConfig{Record: script}, fn, data...)
}

// RunReplaying is Run with every MergeAny / MergeAnyFromSet decision
// forced to follow script (recorded by RunRecording from the same program
// with the same inputs). Replayed runs reproduce the recorded execution's
// results exactly. When the script runs dry — e.g. the program made more
// merges this time — the merges fall back to live first-completed
// behavior.
func RunReplaying(script *MergeScript, fn Func, data ...mergeable.Mergeable) error {
	return RunWith(RunConfig{Replay: script}, fn, data...)
}

// RootMergeHook observes the root task's data after each of its merges.
// It is invoked on the root goroutine — the only mutator of the root
// structures — with the merge's ordinal (1-based, deterministic under
// replay), so implementations may read the structures freely but must not
// retain references past the call. The journal's checkpoint writer is the
// intended implementation.
type RootMergeHook func(data []mergeable.Mergeable, rootMerges int)

// RunRecoverable is the journal's entry point: Run with the full recovery
// hook set. replay, when non-nil, forces the recorded picks (as in
// RunReplaying, including the live fallback once a path's picks are
// exhausted); record, when non-nil, captures every pick — replayed or
// fresh — firing its streaming sink (so a resumed run keeps journaling
// where the crashed one stopped); hook, when non-nil, observes the root's
// data after every root-level merge (the checkpoint cadence).
func RunRecoverable(replay, record *MergeScript, hook RootMergeHook, fn Func, data ...mergeable.Mergeable) error {
	return RunWith(RunConfig{Replay: replay, Record: record, OnRootMerge: hook}, fn, data...)
}

// path returns the task's stable identity: the chain of per-parent
// creation sequence numbers from the root.
func (t *Task) path() string {
	if t.parent == nil {
		return "r"
	}
	return fmt.Sprintf("%s/%d", t.parent.path(), t.seq)
}

// awaitSeq blocks until the child with the given creation sequence number
// announces quiescence. Other announcements queue up as usual.
func (t *Task) awaitSeq(seq uint64) *Task {
	for i, q := range t.pendingList {
		if q.seq == seq {
			t.pendingList = append(t.pendingList[:i], t.pendingList[i+1:]...)
			return q
		}
	}
	for {
		q := t.recvReady()
		if q.seq == seq {
			return q
		}
		t.pendingList = append(t.pendingList, q)
	}
}

// scriptedPick consults the replay script for this parent's next pick.
// It returns nil when the runtime is not replaying or the script is dry.
func (t *Task) scriptedPick() *Task {
	if t.runtime.replay == nil {
		return nil
	}
	seq, ok := t.runtime.replay.next(t.path())
	if !ok {
		return nil
	}
	return t.awaitSeq(seq)
}

// recordPick notes a non-deterministic pick when recording.
func (t *Task) recordPick(c *Task) {
	if t.runtime.record != nil {
		t.runtime.record.record(t.path(), c.seq)
	}
}

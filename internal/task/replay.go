package task

import (
	"fmt"
	"sync"

	"repro/internal/mergeable"
)

// Record & replay for the non-deterministic merges. Programs built only
// from MergeAll/MergeAllFromSet are deterministic by construction; the
// moment a program opts into MergeAny/MergeAnyFromSet (servers,
// interactive applications), its outcome depends on which child wins each
// race. A MergeScript captures exactly those decisions — nothing else is
// non-deterministic in the model — so replaying the script reproduces a
// recorded execution bit for bit. This extends the paper's debugging
// story to the programs that deliberately left determinism behind.

// MergeScript is the recorded sequence of non-deterministic merge picks.
// Children are identified by their creation path (per-parent creation
// sequence numbers from the root), which is stable across runs of the
// same program; task IDs are not.
type MergeScript struct {
	mu      sync.Mutex
	picks   map[string][]uint64 // parent path -> child seqs in pick order
	cursors map[string]int      // replay progress per parent path
}

// NewMergeScript returns an empty script for RunRecording to fill.
func NewMergeScript() *MergeScript {
	return &MergeScript{picks: make(map[string][]uint64)}
}

// Len returns the total number of recorded picks.
func (s *MergeScript) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.picks {
		n += len(p)
	}
	return n
}

// record appends a pick made by the parent at path.
func (s *MergeScript) record(path string, childSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.picks[path] = append(s.picks[path], childSeq)
}

// next pops the parent's next scripted pick. ok is false when the script
// has no (further) picks for this parent — the caller falls back to live
// first-completed behavior.
func (s *MergeScript) next(path string) (childSeq uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cursors == nil {
		s.cursors = make(map[string]int)
	}
	i := s.cursors[path]
	p := s.picks[path]
	if i >= len(p) {
		return 0, false
	}
	s.cursors[path] = i + 1
	return p[i], true
}

// resetCursors rewinds the script so it can drive another replay.
func (s *MergeScript) resetCursors() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cursors = nil
}

// RunRecording is Run that additionally records every MergeAny /
// MergeAnyFromSet decision into script. The recorded run behaves exactly
// like a plain Run.
func RunRecording(script *MergeScript, fn Func, data ...mergeable.Mergeable) error {
	rt := &treeRuntime{record: script}
	root := newTask(nil, fn, data, nil, nil, nil, rt)
	root.run()
	return root.err
}

// RunReplaying is Run with every MergeAny / MergeAnyFromSet decision
// forced to follow script (recorded by RunRecording from the same program
// with the same inputs). Replayed runs reproduce the recorded execution's
// results exactly. When the script runs dry — e.g. the program made more
// merges this time — the merges fall back to live first-completed
// behavior.
func RunReplaying(script *MergeScript, fn Func, data ...mergeable.Mergeable) error {
	script.resetCursors()
	rt := &treeRuntime{replay: script}
	root := newTask(nil, fn, data, nil, nil, nil, rt)
	root.run()
	return root.err
}

// path returns the task's stable identity: the chain of per-parent
// creation sequence numbers from the root.
func (t *Task) path() string {
	if t.parent == nil {
		return "r"
	}
	return fmt.Sprintf("%s/%d", t.parent.path(), t.seq)
}

// awaitSeq blocks until the child with the given creation sequence number
// announces quiescence. Other announcements queue up as usual.
func (t *Task) awaitSeq(seq uint64) *Task {
	for i, q := range t.pendingList {
		if q.seq == seq {
			t.pendingList = append(t.pendingList[:i], t.pendingList[i+1:]...)
			return q
		}
	}
	for {
		q := t.recvReady()
		if q.seq == seq {
			return q
		}
		t.pendingList = append(t.pendingList, q)
	}
}

// scriptedPick consults the replay script for this parent's next pick.
// It returns nil when the runtime is not replaying or the script is dry.
func (t *Task) scriptedPick() *Task {
	if t.runtime.replay == nil {
		return nil
	}
	seq, ok := t.runtime.replay.next(t.path())
	if !ok {
		return nil
	}
	return t.awaitSeq(seq)
}

// recordPick notes a non-deterministic pick when recording.
func (t *Task) recordPick(c *Task) {
	if t.runtime.record != nil {
		t.runtime.record.record(t.path(), c.seq)
	}
}

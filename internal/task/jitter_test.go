package task

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/mergeable"

	"repro/internal/testutil"
)

// runJittered executes fn with random scheduling delays injected at every
// runtime blocking point — a schedule-perturbation harness that widens
// interleaving coverage far beyond what natural scheduling produces. The
// injected delays come from a dedicated RNG guarded by a mutex (the
// perturbation itself may be racy in wall time; the program's results
// must not be).
func runJittered(seed int64, fn Func, data ...mergeable.Mergeable) error {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(seed))
	rt := &treeRuntime{jitter: func() {
		mu.Lock()
		d := time.Duration(r.Intn(300)) * time.Microsecond
		mu.Unlock()
		time.Sleep(d)
	}}
	root := newTask(nil, fn, data, nil, nil, nil, rt)
	root.run()
	return root.err
}

// TestJitteredDeterminism runs the fuzz scenario under injected runtime
// jitter: wildly different schedules, identical results.
func TestJitteredDeterminism(t *testing.T) {
	testutil.WithTimeout(t, 120*time.Second, func() {
		for _, seed := range []int64{1, 7, 42} {
			l := mergeable.NewList(1, 2, 3)
			c := mergeable.NewCounter(0)
			tx := mergeable.NewText("seed")
			if err := Run(fuzzTask(seed, 3), l, c, tx); err != nil {
				t.Fatal(err)
			}
			want := mergeable.CombineFingerprints(l.Fingerprint(), c.Fingerprint(), tx.Fingerprint())

			for trial := 0; trial < 3; trial++ {
				l2 := mergeable.NewList(1, 2, 3)
				c2 := mergeable.NewCounter(0)
				tx2 := mergeable.NewText("seed")
				if err := runJittered(int64(trial)*977+seed, fuzzTask(seed, 3), l2, c2, tx2); err != nil {
					t.Fatal(err)
				}
				got := mergeable.CombineFingerprints(l2.Fingerprint(), c2.Fingerprint(), tx2.Fingerprint())
				if got != want {
					t.Fatalf("seed %d trial %d: jittered fingerprint %x != %x", seed, trial, got, want)
				}
			}
		}
	})
}

// TestConditionPanicIsRejection pins the hardening: a panicking condition
// function rejects the merge instead of crashing the parent.
func TestConditionPanicIsRejection(t *testing.T) {
	c := mergeable.NewCounter(0)
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.Counter).Inc()
			return nil
		}, data[0])
		mergeErr := ctx.MergeAll(WithCondition(func(preview []mergeable.Mergeable) bool {
			panic("validator exploded")
		}))
		if mergeErr == nil {
			t.Error("panicking condition should reject the merge")
		}
		return nil
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 {
		t.Fatalf("rejected merge leaked: %d", c.Value())
	}
}

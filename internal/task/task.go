// Package task implements the paper's primary contribution: the Spawn &
// Merge runtime for deterministic synchronization of multi-threaded
// programs.
//
// An executing program is a tree of tasks. Spawn creates a child task that
// receives deep copies of selected mergeable data structures and runs
// concurrently — no memory is shared, so data races are impossible by
// construction. Merge folds a child's recorded operations back into the
// parent's structures using operational transformation (package ot), in an
// order chosen by the parent:
//
//   - MergeAll / MergeAllFromSet merge deterministically, in creation or
//     argument order. Programs that only use these are deterministic.
//   - MergeAny / MergeAnyFromSet merge on a first-completed basis and are
//     the explicit escape hatch for intentional non-determinism (servers,
//     interactive programs).
//
// Sync lets a long-running child merge intermediate results and continue on
// a fresh copy; Clone creates a sibling task (the blocking-accept pattern);
// Abort marks a child's changes as unwanted. Because the wait graph is the
// task tree and the only parent↔child cycle (Merge vs. Sync) is resolved by
// performing the merge, deadlocks are impossible (Section IV.B).
package task

import (
	"context"
	"math/rand"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Func is the body of a task. It receives the task's context and its
// working copies of the data structures passed to Spawn, in the same
// order. A non-nil return marks the task failed: its changes are discarded
// when the parent merges it.
//
// A Func must only touch the structures it received (or ones it created) —
// capturing a parent's structure in the closure would reintroduce shared
// memory, which is exactly what Spawn & Merge exists to prevent.
type Func func(ctx *Ctx, data []mergeable.Mergeable) error

// phase describes why a task became quiescent.
type phase int32

const (
	phaseRunning phase = iota
	phaseSyncing
	phaseCompleted
)

// resumeMsg is the parent's answer to a child blocked in Sync.
type resumeMsg struct {
	err error // nil, ErrAborted or ErrMergeRejected
}

// Task is a node of the task tree. The creating task receives it as a
// handle; only the exported methods are safe to call from other tasks.
type Task struct {
	id     uint64
	seq    uint64 // creation order among siblings
	parent *Task
	fn     Func

	// Working copies this task operates on, and the parent structures they
	// were copied from (same order). For the root task, data are the
	// structures passed to Run and parentData is nil.
	data       []mergeable.Mergeable
	parentData []mergeable.Mergeable
	// bases[i] is the version of parentData[i]'s committed history this
	// task's copy is based on. floors[i] is the version of data[i]'s own
	// committed history the parent has already consumed: a task's full
	// contribution at merge time is its copy's committed history since the
	// floor (which includes operations merged in from its own children)
	// plus its trailing local operations. Both are written at spawn/clone
	// time and by the parent during merges (while the task is quiescent).
	bases  []int
	floors []int

	// Child management (this task acting as a parent).
	mu       sync.Mutex
	children []*Task // live (unreaped) children, creation order
	nextSeq  uint64
	ready    chan *Task // children announce quiescence here
	// pendingList queues quiescent children not yet merged, in arrival
	// order. tracked remembers structures handed to children, for history
	// trimming (a slice, not a map: the log's tracker token already
	// deduplicates, so membership tests never happen). Both are touched
	// only by this task's own goroutine.
	pendingList []*Task
	tracked     []mergeable.Mergeable
	// snapBuf backs liveChildren snapshots; reused across calls, valid
	// until the next snapshot on the same task.
	snapBuf []*Task

	// Quiescence handshake (this task acting as a child).
	phase  atomic.Int32
	resume chan resumeMsg

	// Result and flags.
	err       error
	merged    bool // reaped by the parent
	abortFlag atomic.Bool
	// pinned reports whether this task's base versions are pinned on its
	// parent structures' logs. The parent adopts pins lazily — at its first
	// trim pass or merge that observes the child — because clones register
	// from the cloning sibling's goroutine, which must not touch the
	// parent's logs. Only the parent's goroutine reads or writes it, always
	// before any trim of the histories the pins protect.
	pinned bool
	// rng is the lazily created task-local deterministic random source
	// (see Ctx.Rand).
	rng *rand.Rand
	// track caches path() for span emission. It is written only from
	// goroutines whose accesses to this task are already ordered by the
	// runtime's channels (the task's own goroutine, or the parent while
	// the task is quiescent), and only when tracing is enabled.
	track string

	runtime *treeRuntime

	// ctx is the task's own Ctx, embedded so run() hands user code a
	// pointer into the task instead of allocating one per task.
	ctx Ctx

	// dataBuf and bfBuf are shell-owned backing arrays for the spawn-time
	// copies and the fused bases/floors array. They belong to the shell,
	// not the run: when a pooled frame reuses this shell for a later task,
	// the buffers are reused too (see runFrame).
	dataBuf []mergeable.Mergeable
	bfBuf   []int
}

// spanTrack returns the task's stable span track (its creation path),
// cached after the first computation. Only called when tracing is on.
func (t *Task) spanTrack() string {
	if t.track == "" {
		t.track = t.path()
	}
	return t.track
}

// treeRuntime holds process-wide state shared by a task tree.
type treeRuntime struct {
	nextID atomic.Uint64
	// tracer records merge decisions when non-nil (see RunTraced).
	tracer *Trace
	// record and replay capture / enforce the non-deterministic merge
	// picks (see RunRecording / RunReplaying).
	record *MergeScript
	replay *MergeScript
	// choose, when non-nil, decides MergeAny picks the replay script does
	// not cover — the schedule explorer's scheduler hook (see ChoiceFunc).
	choose ChoiceFunc
	// randSeed is the base seed for the task-local deterministic random
	// sources (see Ctx.Rand / Ctx.SeedRand).
	randSeed uint64
	// onRootMerge, when non-nil, observes the root's data after each of
	// the root task's merges (see RootMergeHook). rootMerges counts them;
	// both are touched only on the root goroutine.
	onRootMerge RootMergeHook
	rootMerges  int
	// jitter, when non-nil, is invoked at every blocking point of the
	// merge protocol — a test hook that perturbs schedules to widen
	// interleaving coverage without touching results.
	jitter func()
	// slots bounds how many tasks execute simultaneously when non-nil
	// (footnote 2 of the paper: "tasks may also be scheduled to be
	// executed on a pool of threads"). A task holds a slot while running
	// user code and releases it across every blocking point — Sync waits,
	// merge waits and completion — so a bounded pool can never deadlock
	// the merge protocol.
	slots chan struct{}
	// obs, when non-nil, receives hierarchical spans for every runtime
	// event (see package obs). Every hook site checks for nil first, so a
	// run without a tracer pays nothing on the spawn/merge hot path.
	obs *obs.Tracer
	// History-GC tuning, copied from RunConfig.History (see HistoryGC).
	gcDisable bool
	gcSlack   int
	gcStats   *stats.Counters
	gcSpans   bool
	// frame is the pooled run frame this runtime belongs to, nil when the
	// runtime was built by hand (tests). It owns the task-shell freelist.
	frame *runFrame
}

// getShell hands out a task shell: a recycled one from the frame's
// freelist when available, a fresh allocation otherwise. Shells handed out
// during a run are returned to the freelist only when the whole run ends
// (putFrame), so a handle stays valid for the entire Run that created it.
// Spawns may race from several goroutines; the freelist has its own lock.
func (rt *treeRuntime) getShell() *Task {
	f := rt.frame
	if f == nil {
		return &Task{}
	}
	f.mu.Lock()
	var t *Task
	if f.used < len(f.shells) {
		t = f.shells[f.used]
	} else {
		t = &Task{}
		f.shells = append(f.shells, t)
	}
	f.used++
	f.mu.Unlock()
	return t
}

// acquire takes an execution slot (no-op without a pool).
func (rt *treeRuntime) acquire() {
	if rt.jitter != nil {
		rt.jitter()
	}
	if rt.slots != nil {
		rt.slots <- struct{}{}
	}
}

// release returns an execution slot (no-op without a pool).
func (rt *treeRuntime) release() {
	if rt.slots != nil {
		<-rt.slots
	}
}

// ID returns the task's unique identifier within its Run.
func (t *Task) ID() uint64 { return t.id }

// Abort marks the task externally aborted (Section II.F). The task keeps
// running until it notices — its next Sync returns ErrAborted — but
// whatever it produces is discarded at merge time. Abort never blocks and
// is safe to call from the parent at any time.
func (t *Task) Abort() {
	t.abortFlag.Store(true)
	if tr := t.runtime.obs; tr != nil {
		// Abort may be called from any goroutine, so the span goes on a
		// dedicated per-target track (not the caller's or the target's own
		// track, whose program order it is not part of). path() is computed
		// fresh — the cross-goroutine caller must not touch the cache.
		tr.Emit("abort:"+t.path(), obs.KindAbort, "flagged", -1, 0, 0)
	}
}

// Aborted reports whether the task was marked externally aborted.
func (t *Task) Aborted() bool { return t.abortFlag.Load() }

// Err returns the task's recorded error. It is meaningful once the task
// has been merged by its parent; nil means the task completed and its
// changes were merged.
func (t *Task) Err() error { return t.err }

// Merged reports whether the task has completed and been collected by its
// parent. It must only be called from the parent task's goroutine (the
// same discipline as the Merge functions themselves).
func (t *Task) Merged() bool { return t.merged }

// newTask builds a task node. data are the working copies; parentData the
// parent structures they pair with (nil for the root).
func newTask(parent *Task, fn Func, data, parentData []mergeable.Mergeable, bases, floors []int, rt *treeRuntime) *Task {
	return initTask(rt.getShell(), parent, fn, data, parentData, bases, floors, rt)
}

// initTask (re)initializes a task shell for a new life. Shells come from a
// run frame's freelist (see runFrame) and carry reusable capacity — the
// ready/resume channels, the children/pending/tracked backing arrays and
// the spawn-copy buffers — all of which are kept; everything run-specific
// is reset here.
func initTask(t *Task, parent *Task, fn Func, data, parentData []mergeable.Mergeable, bases, floors []int, rt *treeRuntime) *Task {
	// ready and resume are created lazily — ready when the first child is
	// registered, resume on the first Sync — so leaf tasks (the common
	// case in wide fan-outs) allocate neither. Spawn passes floors fused
	// into the bases allocation; the root never consults its floors, so
	// only non-root callers that pass nil pay an allocation here.
	if floors == nil && parent != nil {
		floors = make([]int, len(data))
	}
	t.id = rt.nextID.Add(1)
	t.seq = 0
	t.parent = parent
	t.fn = fn
	t.data = data
	t.parentData = parentData
	t.bases = bases
	t.floors = floors
	t.children = t.children[:0]
	t.nextSeq = 0
	t.pendingList = t.pendingList[:0]
	t.tracked = t.tracked[:0]
	t.phase.Store(int32(phaseRunning))
	t.err = nil
	t.merged = false
	t.abortFlag.Store(false)
	t.pinned = false
	t.rng = nil
	t.track = ""
	t.runtime = rt
	t.ctx.task = t
	return t
}

// scrub drops every reference a retired shell holds into user data so a
// pooled frame does not pin structures or closures between runs. The
// result fields (err, merged, abortFlag) survive on purpose: handles
// returned by Spawn stay readable until the frame is actually reused.
func (t *Task) scrub() {
	t.parent = nil
	t.fn = nil
	t.data = nil
	t.parentData = nil
	t.bases = nil
	t.floors = nil
	clear(t.children)
	t.children = t.children[:0]
	clear(t.pendingList)
	t.pendingList = t.pendingList[:0]
	clear(t.tracked)
	t.tracked = t.tracked[:0]
	clear(t.snapBuf)
	t.snapBuf = t.snapBuf[:0]
	t.rng = nil
	clear(t.dataBuf)
}

// registerChild appends c to t's live children. Called by the spawning
// goroutine: the parent itself for Spawn, a child for Clone. The child's
// goroutine is started only after registration, so it observes t.ready.
func (t *Task) registerChild(c *Task) {
	t.mu.Lock()
	if t.ready == nil {
		// Buffered so quiescent children usually announce without parking:
		// on wide fan-outs an unbuffered channel costs a scheduler
		// round-trip per child, which dominates no-op merges on few cores.
		// Arrival order (= merge order for MergeAny) is the channel's FIFO
		// send order either way.
		t.ready = make(chan *Task, 32)
	}
	c.seq = t.nextSeq
	t.nextSeq++
	t.children = append(t.children, c)
	t.mu.Unlock()
}

// liveChildren snapshots the live children in creation order. The
// snapshot reuses a per-task buffer: it stays valid until the next
// liveChildren call on the same task, which every caller satisfies (no
// caller holds a snapshot across a nested snapshot — merges iterate it,
// then re-snapshot on the next round).
func (t *Task) liveChildren() []*Task {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.snapBuf = append(t.snapBuf[:0], t.children...)
	return t.snapBuf
}

// hasLiveChildren reports whether any live child exists, without the
// snapshot copy liveChildren makes.
func (t *Task) hasLiveChildren() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.children) > 0
}

// recvReady blocks until a child announces quiescence, releasing this
// task's execution slot for the duration so a bounded pool keeps making
// progress while the parent waits.
func (t *Task) recvReady() *Task {
	// Read the lazily created channel under the registration lock: a clone
	// registering a sibling from another goroutine may have just created
	// it. Callers only reach here after observing a live child, so the
	// channel exists.
	t.mu.Lock()
	ready := t.ready
	t.mu.Unlock()
	t.runtime.release()
	q := <-ready
	t.runtime.acquire()
	return q
}

// Task-runner reuse. Spawning is the framework's per-task constant cost
// (Section III measures it), and goroutine creation is a visible slice of
// it on fan-out-heavy programs. Finished runners park on runnerJobs and
// pick up the next task body instead of exiting; when no runner is parked,
// the task gets a fresh goroutine exactly as before. The pool only ever
// holds goroutines that once ran a task, so its size is bounded by the
// peak task concurrency. Semantics are unchanged: each task body still
// runs on its own goroutine, never interleaved with another body.
// runnerJobs is unbuffered on purpose: a send must only succeed when a
// runner is already parked on the receive, otherwise a task could sit in
// a buffer with no goroutine destined to execute it.
var runnerJobs = make(chan *Task)

// startTask hands c to a parked runner, or starts a new one.
func startTask(c *Task) {
	select {
	case runnerJobs <- c:
	default:
		go runnerLoop(c)
	}
}

func runnerLoop(c *Task) {
	c.run()
	for next := range runnerJobs {
		next.run()
	}
}

// reap removes a completed, merged child from the live list.
func (t *Task) reap(c *Task) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, x := range t.children {
		if x == c {
			t.children = append(t.children[:i], t.children[i+1:]...)
			break
		}
	}
}

// run executes the task body on the current goroutine, performs the
// implicit MergeAll of Section II.D ("whenever a task that still has
// running child tasks finishes MergeAll is called implicitly") and
// announces completion to the parent.
func (t *Task) run() {
	ctx := &t.ctx // embedded: no per-task Ctx allocation
	t.runtime.acquire()
	if profileLabels.Load() {
		// Label the user-code phase so CPU and goroutine profiles attribute
		// samples to individual tasks. Gated by an atomic so the disabled
		// path creates no closure and no label set.
		pprof.Do(context.Background(), pprof.Labels(
			"task_id", strconv.FormatUint(t.id, 10),
			"task_path", t.path(),
			"phase", "run",
		), func(context.Context) { t.execBody(ctx) })
	} else {
		t.execBody(ctx)
	}

	if t.err != nil {
		// A failed task cannot accept its children's changes — its own
		// copies are about to be dismissed. Abort them so they unwind.
		for _, c := range t.liveChildren() {
			c.Abort()
		}
	}
	// Merge (or discard) every remaining child, including tasks cloned
	// while the loop runs, so the subtree is fully collected before the
	// parent observes completion.
	if profileLabels.Load() && t.hasLiveChildren() {
		pprof.Do(context.Background(), pprof.Labels(
			"task_id", strconv.FormatUint(t.id, 10),
			"task_path", t.path(),
			"phase", "merge",
		), func(context.Context) { t.collectChildren(ctx) })
	} else {
		t.collectChildren(ctx)
	}

	if t.parent == nil {
		t.runtime.release()
		return // root: Run returns t.err
	}
	t.phase.Store(int32(phaseCompleted))
	t.runtime.release()
	if t.runtime.jitter != nil {
		t.runtime.jitter()
	}
	t.parent.ready <- t // may block until the parent drains announcements
}

// execBody runs the task function under the panic guard. Kept as a method
// (not an inline closure in run) so the pprof-label wrapper only
// allocates its closure when labelling is actually enabled.
func (t *Task) execBody(ctx *Ctx) {
	defer func() {
		if r := recover(); r != nil {
			t.err = PanicError{Value: r}
		}
	}()
	t.err = t.fn(ctx, t.data)
}

// collectChildren merges (or discards) every remaining child, including
// tasks cloned while the loop runs.
func (t *Task) collectChildren(ctx *Ctx) {
	for t.hasLiveChildren() {
		if err := ctx.MergeAll(); err != nil && t.err == nil {
			t.err = err
		}
	}
}

// profileLabels gates runtime/pprof goroutine labelling of task
// execution. Off by default: labelling costs one label-set allocation per
// task, which fan-out benchmarks would notice.
var profileLabels atomic.Bool

// SetProfileLabels enables or disables runtime/pprof labels on task
// goroutines. When enabled, every task body runs under labels
// task_id=<id>, task_path=<stable path>, phase=run|merge, so CPU and
// goroutine profiles can be filtered to a single task or to merge work
// (go tool pprof -tagfocus phase=merge).
func SetProfileLabels(on bool) { profileLabels.Store(on) }

// enterSync blocks the calling (child) goroutine until the parent merges
// it, then reports the merge outcome. See Ctx.Sync.
//
// Per Section II.E, Sync is equivalent to completing the task and spawning
// a new one right after the merge — and completing a task implies merging
// its own children first. enterSync therefore collects the task's live
// children before announcing quiescence; this is also what keeps the
// operation bookkeeping sound (a refresh while grandchild bases point into
// the old copy state would corrupt the transformation).
func (t *Task) enterSync() error {
	if t.parent == nil {
		return ErrRootSync
	}
	tr := t.runtime.obs
	var syncStart time.Time
	if tr != nil {
		syncStart = time.Now()
	}
	var childErr error
	for t.hasLiveChildren() {
		if err := t.mergeSet(t.liveChildren(), &zeroMergeConfig); err != nil && childErr == nil {
			childErr = err
		}
	}
	if t.resume == nil {
		// Created on first Sync, before announcing quiescence: the parent
		// reads the field only after receiving the announcement.
		t.resume = make(chan resumeMsg)
	}
	t.phase.Store(int32(phaseSyncing))
	t.runtime.release() // do not hold an execution slot while blocked
	if t.runtime.jitter != nil {
		t.runtime.jitter()
	}
	t.parent.ready <- t
	msg := <-t.resume
	t.runtime.acquire()
	t.phase.Store(int32(phaseRunning))
	if tr != nil {
		// Emitted from the task's own goroutine after the parent resumed
		// it, so the span sits at its deterministic position on this task's
		// track. The duration covers pre-merge child collection plus the
		// wait for the parent — the full Sync cost as the task experiences
		// it.
		name := "merged"
		if msg.err != nil {
			switch msg.err {
			case ErrAborted:
				name = "aborted"
			case ErrMergeRejected:
				name = "rejected"
			default:
				name = "error"
			}
		}
		tr.Emit(t.spanTrack(), obs.KindSync, name, -1, 0, time.Since(syncStart))
	}
	if msg.err != nil {
		return msg.err
	}
	return childErr
}

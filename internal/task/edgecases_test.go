package task

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/mergeable"

	"repro/internal/testutil"
)

// TestMergeSetDuplicateHandle documents MergeAllFromSet semantics with a
// repeated handle: a syncing child listed twice is merged twice (two sync
// rounds); a completed child is merged once and skipped afterwards.
func TestMergeSetDuplicateHandle(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		c := mergeable.NewCounter(0)
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				for i := 0; i < 2; i++ {
					data[0].(*mergeable.Counter).Inc()
					if err := ctx.Sync(); err != nil {
						return err
					}
				}
				return nil
			}, data[0])
			// One call, handle listed twice: merges two sync rounds.
			if err := ctx.MergeAllFromSet([]*Task{h, h}); err != nil {
				return err
			}
			if got := data[0].(*mergeable.Counter).Value(); got != 2 {
				t.Errorf("after duplicate merge: counter = %d, want 2", got)
			}
			// Completed child: merged once, duplicates skipped.
			if err := ctx.MergeAllFromSet([]*Task{h, h, h}); err != nil {
				return err
			}
			return nil
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value() != 2 {
			t.Fatalf("counter = %d", c.Value())
		}
	})
}

// TestSpawnWithNoData covers tasks that carry no mergeable structures —
// pure computations coordinated only through completion.
func TestSpawnWithNoData(t *testing.T) {
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			if len(data) != 0 {
				t.Errorf("data = %v", data)
			}
			return nil
		})
		return ctx.MergeAllFromSet([]*Task{h})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAbortBeforeFirstSync aborts a child before it ever reaches a
// blocking point; its entire contribution is discarded at completion.
func TestAbortBeforeFirstSync(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		l := mergeable.NewList[int]()
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			started := make(chan struct{})
			h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				close(started)
				data[0].(*mergeable.List[int]).Append(1)
				// Poll the abort flag like a long computation would.
				for !ctx.Aborted() {
					time.Sleep(time.Millisecond)
				}
				return nil
			}, data[0])
			<-started
			h.Abort()
			return ctx.MergeAll()
		}, l)
		if err != nil {
			t.Fatal(err)
		}
		if l.Len() != 0 {
			t.Fatalf("aborted work leaked: %v", l.Values())
		}
	})
}

// TestSameStructurePassedTwice passes one structure twice to a child; the
// pairing is positional, and both positions alias the same copy state at
// spawn. The merge must not double-apply.
func TestSameStructurePassedTwice(t *testing.T) {
	l := mergeable.NewList(1)
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		lst := data[0].(*mergeable.List[int])
		ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			// Two entries, two independent copies: edits to data[0] do not
			// show up in data[1] — they are separate copies by design.
			data[0].(*mergeable.List[int]).Append(2)
			data[1].(*mergeable.List[int]).Append(3)
			return nil
		}, lst, lst)
		return ctx.MergeAll()
	}, l)
	if err != nil {
		t.Fatal(err)
	}
	// Both copies' ops merge back into the one parent structure.
	got := l.Values()
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("list = %v, want %v", got, want)
	}
}

// TestZeroChildrenMergeAll pins MergeAll on a childless task: immediate
// no-op.
func TestZeroChildrenMergeAll(t *testing.T) {
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		return ctx.MergeAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestErrAbortedIsSticky verifies a second Sync after an abort still
// reports the abort rather than blocking forever.
func TestErrAbortedIsSticky(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
			h := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				for i := 0; ; i++ {
					if err := ctx.Sync(); err != nil {
						// Misbehave: sync again anyway.
						if err2 := ctx.Sync(); !errors.Is(err2, ErrAborted) {
							t.Errorf("second sync after abort = %v", err2)
						}
						return err
					}
				}
			})
			h.Abort()
			for i := 0; i < 4; i++ {
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

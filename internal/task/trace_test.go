package task

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/mergeable"

	"repro/internal/testutil"
)

// tracedScenario spawns children with every outcome class: a clean merge,
// sync merges, a failure, an abort and a condition rejection.
func tracedScenario(t *testing.T) *Trace {
	t.Helper()
	c := mergeable.NewCounter(0)
	tr, err := RunTraced(func(ctx *Ctx, data []mergeable.Mergeable) error {
		cnt := data[0].(*mergeable.Counter)

		ok := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.Counter).Inc()
			return nil
		}, cnt)
		syncer := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.Counter).Inc()
			if err := ctx.Sync(); err != nil {
				return err
			}
			data[0].(*mergeable.Counter).Inc()
			return nil
		}, cnt)
		failer := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			return errors.New("boom")
		}, cnt)
		if err := ctx.MergeAllFromSet([]*Task{ok, syncer}); err != nil {
			return err
		}
		if err := ctx.MergeAllFromSet([]*Task{syncer}); err != nil {
			return err
		}
		_ = ctx.MergeAllFromSet([]*Task{failer}) // expected failure

		rejected := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.Counter).Add(1000)
			return nil
		}, cnt)
		_ = ctx.MergeAllFromSet([]*Task{rejected}, WithCondition(func(p []mergeable.Mergeable) bool {
			return p[0].(*mergeable.Counter).Value() < 100
		}))

		aborted := ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			for {
				if err := ctx.Sync(); err != nil {
					return err
				}
			}
		}, cnt)
		aborted.Abort()
		if err := ctx.MergeAll(); err != nil {
			return err
		}
		return ctx.MergeAll()
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// traceShape reduces a trace to the comparable per-parent skeleton
// (outcome/kind/ops), dropping the run-specific task IDs.
func traceShape(tr *Trace) [][]string {
	byParent := tr.ByParent()
	// The scenario has a single merging parent (the root).
	var shape [][]string
	for _, evs := range byParent {
		var seq []string
		for _, e := range evs {
			kind := "done"
			if e.Sync {
				kind = "sync"
			}
			seq = append(seq, kind+"/"+e.Outcome)
		}
		shape = append(shape, seq)
	}
	return shape
}

func TestRunTracedRecordsOutcomes(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		tr := tracedScenario(t)
		var outcomes []string
		for _, e := range tr.Events() {
			outcomes = append(outcomes, e.Outcome)
		}
		for _, want := range []string{"merged", "failed", "rejected", "aborted"} {
			found := false
			for _, o := range outcomes {
				if o == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("trace missing outcome %q: %v", want, outcomes)
			}
		}
		s := tr.String()
		for _, want := range []string{"task", "sync", "merged", "ops="} {
			if !strings.Contains(s, want) {
				t.Errorf("trace rendering missing %q:\n%s", want, s)
			}
		}
	})
}

// TestTraceDeterministic pins the debugging claim: the per-parent merge
// sequence of a deterministic program is identical on every traced run.
func TestTraceDeterministic(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		want := traceShape(tracedScenario(t))
		for i := 0; i < 5; i++ {
			if got := traceShape(tracedScenario(t)); !reflect.DeepEqual(got, want) {
				t.Fatalf("run %d: trace shape diverged:\n%v\nvs\n%v", i, got, want)
			}
		}
	})
}

// TestTraceCountsOps checks that applied-operation counts reach the
// trace — and, incidentally, that adjacent appends were compacted into a
// single operation while the unrelated delete stayed separate.
func TestTraceCountsOps(t *testing.T) {
	l := mergeable.NewList(9)
	tr, err := RunTraced(func(ctx *Ctx, data []mergeable.Mergeable) error {
		ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			cl := data[0].(*mergeable.List[int])
			cl.Append(1, 2, 3) // one insert op
			cl.Append(4)       // compacted into the first
			cl.Delete(0)       // separate op
			return nil
		}, data[0])
		return ctx.MergeAll()
	}, l)
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Ops != 2 {
		t.Fatalf("events = %v, want one merge applying 2 compacted ops", evs)
	}
}

package task

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/mergeable"
	"repro/internal/obs"
)

// The differential compaction suite pins PR 9's core claim: history GC is
// invisible. A randomized spawn/mutate/sync/merge schedule is run twice —
// op-log trimming disabled, then enabled — with the disabled run's
// MergeAny picks recorded and replayed into the enabled run, so the only
// degree of freedom left is compaction itself. Every structure's final
// fingerprint and the two span trees must be bit-identical, at GOMAXPROCS
// 1 and 4 (the suite runs under -race in CI).

// diffData returns fresh instances of all eight provided structure
// families.
func diffData() []mergeable.Mergeable {
	return []mergeable.Mergeable{
		mergeable.NewList(1, 2, 3),
		mergeable.NewFastList(4, 5, 6),
		mergeable.NewQueue(7, 8),
		mergeable.NewFastQueue(9, 10),
		mergeable.NewText("diff"),
		mergeable.NewMap[int, int](),
		mergeable.NewCounter(0),
		mergeable.NewRegister("r0"),
	}
}

// diffMutate applies one seeded operation to a seeded structure.
func diffMutate(r *rand.Rand, data []mergeable.Mergeable) {
	switch r.Intn(8) {
	case 0:
		l := data[0].(*mergeable.List[int])
		if l.Len() > 0 && r.Intn(4) == 0 {
			l.Delete(r.Intn(l.Len()))
		} else {
			l.Insert(r.Intn(l.Len()+1), r.Intn(100))
		}
	case 1:
		f := data[1].(*mergeable.FastList[int])
		if f.Len() > 0 && r.Intn(2) == 0 {
			f.Set(r.Intn(f.Len()), r.Intn(100))
		} else {
			f.Append(r.Intn(100))
		}
	case 2:
		q := data[2].(*mergeable.Queue[int])
		if r.Intn(3) == 0 {
			q.PopFront()
		} else {
			q.Push(r.Intn(100))
		}
	case 3:
		q := data[3].(*mergeable.FastQueue[int])
		if r.Intn(3) == 0 {
			q.PopFront()
		} else {
			q.Push(r.Intn(100))
		}
	case 4:
		tx := data[4].(*mergeable.Text)
		if tx.Len() > 0 && r.Intn(4) == 0 {
			tx.Delete(r.Intn(tx.Len()), 1)
		} else {
			tx.Insert(r.Intn(tx.Len()+1), string(rune('a'+r.Intn(26))))
		}
	case 5:
		m := data[5].(*mergeable.Map[int, int])
		if r.Intn(4) == 0 {
			m.Delete(r.Intn(16))
		} else {
			m.Set(r.Intn(16), r.Intn(100))
		}
	case 6:
		data[6].(*mergeable.Counter).Add(int64(r.Intn(21) - 10))
	default:
		data[7].(*mergeable.Register[string]).Set(fmt.Sprintf("r%d", r.Intn(100)))
	}
}

// diffBody is the randomized schedule: every task mutates, interior tasks
// spawn a seeded brood and drain it through MergeAll, a MergeAny loop, or
// the implicit end-of-body collection, and leaves sometimes Sync mid-body
// — the path that pins the parent's history from a live child.
func diffBody(seed int64, depth int) Func {
	return func(ctx *Ctx, data []mergeable.Mergeable) error {
		r := rand.New(rand.NewSource(seed))
		for i, n := 0, 3+r.Intn(6); i < n; i++ {
			diffMutate(r, data)
		}
		if depth == 0 {
			if r.Intn(3) == 0 {
				if err := ctx.Sync(); err != nil {
					return err
				}
				diffMutate(r, data)
			}
			return nil
		}
		kids := 1 + r.Intn(3)
		for k := 0; k < kids; k++ {
			ctx.Spawn(diffBody(seed*7919+int64(k+1), depth-1), data...)
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			diffMutate(r, data)
		}
		switch r.Intn(3) {
		case 0:
			if err := ctx.MergeAll(); err != nil {
				return err
			}
		case 1:
			for k := 0; k < kids; k++ {
				if _, err := ctx.MergeAny(); err != nil {
					return err
				}
			}
		default:
			// Leave the brood for the implicit end-of-body collection.
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			diffMutate(r, data)
		}
		return nil
	}
}

// TestCompactionDifferential: GC off (recording) vs GC on (replaying the
// recorded picks) over randomized schedules — identical per-structure
// fingerprints and identical span trees, at 1 and 4 procs. Slack cycles
// through 0 (eager), 4 and 16 so the deferred-trim path is differential-
// tested too.
func TestCompactionDifferential(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			for seed := int64(1); seed <= 10; seed++ {
				off := diffData()
				script := NewMergeScript()
				trOff := obs.New()
				if err := RunWith(RunConfig{
					Record:  script,
					Obs:     trOff,
					History: HistoryGC{Disable: true},
				}, diffBody(seed, 3), off...); err != nil {
					t.Fatalf("seed %d: GC-off run: %v", seed, err)
				}

				slack := []int{0, 4, 16}[seed%3]
				on := diffData()
				trOn := obs.New()
				if err := RunWith(RunConfig{
					Replay:  script,
					Obs:     trOn,
					History: HistoryGC{Slack: slack},
				}, diffBody(seed, 3), on...); err != nil {
					t.Fatalf("seed %d: GC-on run (slack %d): %v", seed, slack, err)
				}

				for i := range off {
					if wantFP, gotFP := off[i].Fingerprint(), on[i].Fingerprint(); wantFP != gotFP {
						t.Fatalf("seed %d slack %d: structure %d (%T) diverged under compaction: %016x != %016x",
							seed, slack, i, off[i], gotFP, wantFP)
					}
				}
				offTree, onTree := trOff.Tree(), trOn.Tree()
				if offTree.Fingerprint() != onTree.Fingerprint() {
					for _, d := range obs.Diff(offTree, onTree) {
						t.Log(d)
					}
					t.Fatalf("seed %d slack %d: span trees diverged under compaction", seed, slack)
				}

				// The GC-on run actually ran with trimming: its retained
				// histories must be no larger than the unbounded run's, and
				// strictly smaller in aggregate (the schedules above commit
				// far more than one merge window of operations).
				offRetained, onRetained := 0, 0
				for i := range off {
					type logger interface{ Log() *mergeable.Log }
					offRetained += off[i].(logger).Log().RetainedLen()
					onRetained += on[i].(logger).Log().RetainedLen()
				}
				if onRetained >= offRetained {
					t.Fatalf("seed %d slack %d: GC-on run retained %d ops, GC-off %d — trimming never happened",
						seed, slack, onRetained, offRetained)
				}
			}
		})
	}
}

// TestCompactionDifferentialAcrossProcs crosses the knob with the
// scheduler: the same recorded schedule replayed GC-on at 1 proc and
// GC-on at 4 procs must agree with each other and with the GC-off
// original — compaction does not reintroduce scheduling sensitivity.
func TestCompactionDifferentialAcrossProcs(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for seed := int64(20); seed < 24; seed++ {
		off := diffData()
		script := NewMergeScript()
		runtime.GOMAXPROCS(4)
		if err := RunWith(RunConfig{Record: script, History: HistoryGC{Disable: true}}, diffBody(seed, 3), off...); err != nil {
			t.Fatalf("seed %d: recording run: %v", seed, err)
		}
		want := make([]uint64, len(off))
		for i := range off {
			want[i] = off[i].Fingerprint()
		}
		for _, procs := range []int{1, 4} {
			runtime.GOMAXPROCS(procs)
			on := diffData()
			if err := RunWith(RunConfig{Replay: script, History: HistoryGC{}}, diffBody(seed, 3), on...); err != nil {
				t.Fatalf("seed %d procs %d: GC-on replay: %v", seed, procs, err)
			}
			for i := range on {
				if on[i].Fingerprint() != want[i] {
					t.Fatalf("seed %d procs %d: structure %d (%T) diverged under compaction", seed, procs, i, on[i])
				}
			}
		}
	}
}

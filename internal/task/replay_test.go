package task

import (
	"testing"
	"time"

	"repro/internal/mergeable"

	"repro/internal/testutil"
)

// racyScenario uses MergeAny over children racing to write one register —
// a genuinely non-deterministic program. The returned values are the
// register after each of the four merges.
func racyScenario(run func(fn Func, data ...mergeable.Mergeable) error, delays []time.Duration) ([]int, error) {
	reg := mergeable.NewRegister(-1)
	var observed []int
	err := run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		r := data[0].(*mergeable.Register[int])
		for i := 0; i < 4; i++ {
			i := i
			ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
				time.Sleep(delays[i])
				data[0].(*mergeable.Register[int]).Set(i)
				return nil
			}, r)
		}
		for i := 0; i < 4; i++ {
			if _, err := ctx.MergeAny(); err != nil {
				return err
			}
			observed = append(observed, r.Get())
		}
		return nil
	}, reg)
	return observed, err
}

// TestRecordReplayReproducesNonDeterministicRun records a racy execution
// and replays it repeatedly with different timing: the replayed outcomes
// must match the recording exactly.
func TestRecordReplayReproducesNonDeterministicRun(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		script := NewMergeScript()
		// Record with strongly skewed delays so a specific order is likely.
		recorded, err := racyScenario(func(fn Func, data ...mergeable.Mergeable) error {
			return RunRecording(script, fn, data...)
		}, []time.Duration{30 * time.Millisecond, 0, 10 * time.Millisecond, 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if script.Len() != 4 {
			t.Fatalf("script recorded %d picks, want 4", script.Len())
		}
		// Replay with inverted delays: timing now favors a different
		// order, but the script must win.
		for i := 0; i < 10; i++ {
			replayed, err := racyScenario(func(fn Func, data ...mergeable.Mergeable) error {
				return RunReplaying(script, fn, data...)
			}, []time.Duration{0, 30 * time.Millisecond, 20 * time.Millisecond, 10 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for j := range recorded {
				if replayed[j] != recorded[j] {
					t.Fatalf("replay %d diverged at merge %d: %v vs recorded %v", i, j, replayed, recorded)
				}
			}
		}
	})
}

// TestReplayScriptDryFallsBack replays a script against a program that
// performs more merges than were recorded; the surplus merges fall back
// to live behavior instead of hanging.
func TestReplayScriptDryFallsBack(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		script := NewMergeScript() // empty: everything falls back
		c := mergeable.NewCounter(0)
		err := RunReplaying(script, func(ctx *Ctx, data []mergeable.Mergeable) error {
			for i := 0; i < 3; i++ {
				ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
					data[0].(*mergeable.Counter).Inc()
					return nil
				}, data[0])
			}
			for i := 0; i < 3; i++ {
				if _, err := ctx.MergeAny(); err != nil {
					return err
				}
			}
			return nil
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value() != 3 {
			t.Fatalf("counter = %d", c.Value())
		}
	})
}

// TestRecordingDeterministicProgramIsHarmless records a program without
// non-deterministic merges: the script stays empty and results match Run.
func TestRecordingDeterministicProgramIsHarmless(t *testing.T) {
	script := NewMergeScript()
	c := mergeable.NewCounter(0)
	err := RunRecording(script, func(ctx *Ctx, data []mergeable.Mergeable) error {
		ctx.Spawn(func(ctx *Ctx, data []mergeable.Mergeable) error {
			data[0].(*mergeable.Counter).Inc()
			return nil
		}, data[0])
		return ctx.MergeAll()
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if script.Len() != 0 {
		t.Fatalf("MergeAll must not be recorded, script has %d picks", script.Len())
	}
	if c.Value() != 1 {
		t.Fatalf("counter = %d", c.Value())
	}
}

// TestTaskPath pins the stable identity scheme replay relies on.
func TestTaskPath(t *testing.T) {
	err := Run(func(ctx *Ctx, data []mergeable.Mergeable) error {
		if got := ctx.task.path(); got != "r" {
			t.Errorf("root path = %q", got)
		}
		var child0, child1 *Task
		child0 = ctx.Spawn(func(inner *Ctx, data []mergeable.Mergeable) error {
			if got := inner.task.path(); got != "r/0" {
				t.Errorf("first child path = %q", got)
			}
			return nil
		})
		child1 = ctx.Spawn(func(inner *Ctx, data []mergeable.Mergeable) error {
			if got := inner.task.path(); got != "r/1" {
				t.Errorf("second child path = %q", got)
			}
			return nil
		})
		_, _ = child0, child1
		return ctx.MergeAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}

package task

import "repro/internal/mergeable"

// Run executes fn as the root task of a new task tree, on the calling
// goroutine, and returns when fn and every task it spawned have completed
// and been merged. The structures in data are the root's working set: Run
// operates on them directly, so after Run returns they hold the final,
// fully merged state.
//
// A program whose tasks only use MergeAll/MergeAllFromSet (and whose Funcs
// are themselves deterministic) produces identical results on every Run,
// on any number of cores — the paper's headline guarantee. Determinism is
// surrendered exactly where MergeAny/MergeAnyFromSet is chosen.
func Run(fn Func, data ...mergeable.Mergeable) error {
	rt := &treeRuntime{}
	root := newTask(nil, fn, data, nil, nil, nil, rt)
	root.run()
	return root.err
}

// RunPooled is Run with task execution bounded to maxParallel
// simultaneous tasks — footnote 2 of the paper: tasks need not map
// one-to-one onto threads but "may also be scheduled to be executed on a
// pool of threads". Tasks hold an execution slot only while running user
// code; every blocking point of the merge protocol releases it, so any
// maxParallel >= 1 preserves both progress and the determinism
// guarantees (results are identical to Run's).
func RunPooled(maxParallel int, fn Func, data ...mergeable.Mergeable) error {
	if maxParallel < 1 {
		maxParallel = 1
	}
	rt := &treeRuntime{slots: make(chan struct{}, maxParallel)}
	root := newTask(nil, fn, data, nil, nil, nil, rt)
	root.run()
	return root.err
}

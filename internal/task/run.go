package task

import (
	"sync"

	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/stats"
)

// HistoryGC tunes the incremental op-log garbage collector. The zero value
// is the default behavior: eager trimming at every merge point, exactly as
// if no knob existed.
type HistoryGC struct {
	// Disable turns history trimming off entirely. Results are identical —
	// compaction never changes a merge outcome, which the differential
	// compaction tests pin — but committed histories grow without bound, so
	// this exists for those tests and for the soak harness's unbounded
	// reference runs, not for production.
	Disable bool
	// Slack defers a trim until at least Slack operations would drop,
	// amortizing the retained-suffix copy on high-frequency sync loops.
	// Zero trims eagerly.
	Slack int
	// Stats, when non-nil, receives the compaction counter family:
	// compaction.log.trims, compaction.log.ops_dropped,
	// compaction.log.child_trims, compaction.log.child_ops_dropped.
	Stats *stats.Counters
	// Spans, when set (and RunConfig.Obs is non-nil), emits a
	// obs.KindCompact span on a dedicated "gc:<path>" track for every trim
	// pass that dropped operations. Off by default: trim timing for a task
	// with clones in flight depends on registration races that never affect
	// results, so gc spans are excluded from span-determinism checks.
	Spans bool
}

// RunConfig bundles every optional runtime hook. The zero value is a
// plain Run; the specialized runners (Run, RunPooled, RunTraced,
// RunRecording, RunReplaying, RunRecoverable, RunObserved) are all thin
// wrappers over RunWith with one field set.
type RunConfig struct {
	// MaxParallel bounds simultaneous task execution when > 0 (see
	// RunPooled).
	MaxParallel int
	// Trace records merge decisions when non-nil (see RunTraced).
	Trace *Trace
	// Record captures every MergeAny pick when non-nil (see RunRecording).
	Record *MergeScript
	// Replay forces recorded MergeAny picks when non-nil (see
	// RunReplaying). Cursors are rewound at the start of the run.
	Replay *MergeScript
	// Choose decides MergeAny picks the Replay script does not cover when
	// non-nil — the schedule explorer's scheduler hook (see ChoiceFunc).
	Choose ChoiceFunc
	// Jitter, when non-nil, is invoked at every blocking point of the
	// merge protocol. Test harnesses use it both to perturb schedules
	// (see runJittered) and as a progress pulse for stall watchdogs.
	Jitter func()
	// OnRootMerge observes the root's data after each root-level merge
	// (the journal's checkpoint cadence).
	OnRootMerge RootMergeHook
	// Obs receives hierarchical runtime spans when non-nil (see package
	// obs and RunObserved). With Obs nil the spawn/merge hot path pays
	// nothing — no allocations, no atomic traffic.
	Obs *obs.Tracer
	// History tunes the op-log garbage collector; the zero value trims
	// eagerly (the default since the runtime existed).
	History HistoryGC
}

// runFrame is the pooled per-Run allocation unit: the tree runtime, the
// root task and the shells of every task the run spawns all live here and
// are reused by later Runs. Handles returned by Spawn are valid for the
// duration of their Run; once Run returns, the frame may be recycled and
// the handles with it (reading Err/Merged from a stale handle remains
// memory-safe, but observes a later run once the frame is reused).
type runFrame struct {
	rt   treeRuntime
	root Task
	// data backs the root's working set, copied from Run's variadic so the
	// caller-side argument slice does not escape.
	data []mergeable.Mergeable
	// shells is the freelist of child task shells; used counts how many
	// are handed out in the current run. Guarded by mu (spawns race).
	mu     sync.Mutex
	shells []*Task
	used   int
}

var framePool = sync.Pool{New: func() any { return new(runFrame) }}

// getFrame takes a frame from the pool and resets its runtime for a new
// run. Fields are cleared one by one: treeRuntime embeds atomics, so a
// struct assignment would copy locks.
func getFrame() *runFrame {
	f := framePool.Get().(*runFrame)
	rt := &f.rt
	rt.nextID.Store(0)
	rt.tracer = nil
	rt.record = nil
	rt.replay = nil
	rt.choose = nil
	rt.randSeed = 0
	rt.onRootMerge = nil
	rt.rootMerges = 0
	rt.jitter = nil
	rt.slots = nil
	rt.obs = nil
	rt.gcDisable = false
	rt.gcSlack = 0
	rt.gcStats = nil
	rt.gcSpans = false
	rt.frame = f
	return f
}

// putFrame scrubs user-data references out of the frame and returns it to
// the pool. Every task of the finished run is quiescent by now: the root
// collected all children before run() returned, and a child's last action
// is its readiness announcement, which the root consumed.
func putFrame(f *runFrame) {
	for _, s := range f.shells[:f.used] {
		s.scrub()
	}
	f.used = 0
	f.root.scrub()
	clear(f.data)
	f.data = f.data[:0]
	framePool.Put(f)
}

// initRoot seats the run's working set and root task in the frame.
func initRoot(f *runFrame, fn Func, data []mergeable.Mergeable) *Task {
	f.data = append(f.data[:0], data...)
	return initTask(&f.root, nil, fn, f.data, nil, nil, nil, &f.rt)
}

// RunWith executes fn as the root task of a new task tree with the given
// configuration. It is the single entry point all other runners reduce
// to; see Run for the core semantics.
func RunWith(cfg RunConfig, fn Func, data ...mergeable.Mergeable) error {
	if cfg.Replay != nil {
		cfg.Replay.resetCursors()
	}
	f := getFrame()
	rt := &f.rt
	rt.tracer = cfg.Trace
	rt.record = cfg.Record
	rt.replay = cfg.Replay
	rt.choose = cfg.Choose
	rt.jitter = cfg.Jitter
	rt.onRootMerge = cfg.OnRootMerge
	rt.obs = cfg.Obs
	rt.gcDisable = cfg.History.Disable
	rt.gcSlack = cfg.History.Slack
	rt.gcStats = cfg.History.Stats
	rt.gcSpans = cfg.History.Spans
	if cfg.MaxParallel > 0 {
		rt.slots = make(chan struct{}, cfg.MaxParallel)
	}
	root := initRoot(f, fn, data)
	root.run()
	err := root.err
	putFrame(f)
	return err
}

// Run executes fn as the root task of a new task tree, on the calling
// goroutine, and returns when fn and every task it spawned have completed
// and been merged. The structures in data are the root's working set: Run
// operates on them directly, so after Run returns they hold the final,
// fully merged state.
//
// A program whose tasks only use MergeAll/MergeAllFromSet (and whose Funcs
// are themselves deterministic) produces identical results on every Run,
// on any number of cores — the paper's headline guarantee. Determinism is
// surrendered exactly where MergeAny/MergeAnyFromSet is chosen.
func Run(fn Func, data ...mergeable.Mergeable) error {
	f := getFrame()
	root := initRoot(f, fn, data)
	root.run()
	err := root.err
	putFrame(f)
	return err
}

// RunPooled is Run with task execution bounded to maxParallel
// simultaneous tasks — footnote 2 of the paper: tasks need not map
// one-to-one onto threads but "may also be scheduled to be executed on a
// pool of threads". Tasks hold an execution slot only while running user
// code; every blocking point of the merge protocol releases it, so any
// maxParallel >= 1 preserves both progress and the determinism
// guarantees (results are identical to Run's).
func RunPooled(maxParallel int, fn Func, data ...mergeable.Mergeable) error {
	if maxParallel < 1 {
		maxParallel = 1
	}
	return RunWith(RunConfig{MaxParallel: maxParallel}, fn, data...)
}

// RunObserved is Run with the observability layer enabled: every spawn,
// merge (with nested per-structure transform and apply phases), sync and
// abort is recorded into tracer as a span. For a deterministic program
// the resulting span tree is identical across runs and GOMAXPROCS
// settings, durations aside — see package obs.
func RunObserved(tracer *obs.Tracer, fn Func, data ...mergeable.Mergeable) error {
	return RunWith(RunConfig{Obs: tracer}, fn, data...)
}

package task

import (
	"repro/internal/mergeable"
	"repro/internal/obs"
)

// RunConfig bundles every optional runtime hook. The zero value is a
// plain Run; the specialized runners (Run, RunPooled, RunTraced,
// RunRecording, RunReplaying, RunRecoverable, RunObserved) are all thin
// wrappers over RunWith with one field set.
type RunConfig struct {
	// MaxParallel bounds simultaneous task execution when > 0 (see
	// RunPooled).
	MaxParallel int
	// Trace records merge decisions when non-nil (see RunTraced).
	Trace *Trace
	// Record captures every MergeAny pick when non-nil (see RunRecording).
	Record *MergeScript
	// Replay forces recorded MergeAny picks when non-nil (see
	// RunReplaying). Cursors are rewound at the start of the run.
	Replay *MergeScript
	// Choose decides MergeAny picks the Replay script does not cover when
	// non-nil — the schedule explorer's scheduler hook (see ChoiceFunc).
	Choose ChoiceFunc
	// Jitter, when non-nil, is invoked at every blocking point of the
	// merge protocol. Test harnesses use it both to perturb schedules
	// (see runJittered) and as a progress pulse for stall watchdogs.
	Jitter func()
	// OnRootMerge observes the root's data after each root-level merge
	// (the journal's checkpoint cadence).
	OnRootMerge RootMergeHook
	// Obs receives hierarchical runtime spans when non-nil (see package
	// obs and RunObserved). With Obs nil the spawn/merge hot path pays
	// nothing — no allocations, no atomic traffic.
	Obs *obs.Tracer
}

// RunWith executes fn as the root task of a new task tree with the given
// configuration. It is the single entry point all other runners reduce
// to; see Run for the core semantics.
func RunWith(cfg RunConfig, fn Func, data ...mergeable.Mergeable) error {
	if cfg.Replay != nil {
		cfg.Replay.resetCursors()
	}
	rt := &treeRuntime{
		tracer:      cfg.Trace,
		record:      cfg.Record,
		replay:      cfg.Replay,
		choose:      cfg.Choose,
		jitter:      cfg.Jitter,
		onRootMerge: cfg.OnRootMerge,
		obs:         cfg.Obs,
	}
	if cfg.MaxParallel > 0 {
		rt.slots = make(chan struct{}, cfg.MaxParallel)
	}
	root := newTask(nil, fn, data, nil, nil, nil, rt)
	root.run()
	return root.err
}

// Run executes fn as the root task of a new task tree, on the calling
// goroutine, and returns when fn and every task it spawned have completed
// and been merged. The structures in data are the root's working set: Run
// operates on them directly, so after Run returns they hold the final,
// fully merged state.
//
// A program whose tasks only use MergeAll/MergeAllFromSet (and whose Funcs
// are themselves deterministic) produces identical results on every Run,
// on any number of cores — the paper's headline guarantee. Determinism is
// surrendered exactly where MergeAny/MergeAnyFromSet is chosen.
func Run(fn Func, data ...mergeable.Mergeable) error {
	rt := &treeRuntime{}
	root := newTask(nil, fn, data, nil, nil, nil, rt)
	root.run()
	return root.err
}

// RunPooled is Run with task execution bounded to maxParallel
// simultaneous tasks — footnote 2 of the paper: tasks need not map
// one-to-one onto threads but "may also be scheduled to be executed on a
// pool of threads". Tasks hold an execution slot only while running user
// code; every blocking point of the merge protocol releases it, so any
// maxParallel >= 1 preserves both progress and the determinism
// guarantees (results are identical to Run's).
func RunPooled(maxParallel int, fn Func, data ...mergeable.Mergeable) error {
	if maxParallel < 1 {
		maxParallel = 1
	}
	return RunWith(RunConfig{MaxParallel: maxParallel}, fn, data...)
}

// RunObserved is Run with the observability layer enabled: every spawn,
// merge (with nested per-structure transform and apply phases), sync and
// abort is recorded into tracer as a span. For a deterministic program
// the resulting span tree is identical across runs and GOMAXPROCS
// settings, durations aside — see package obs.
func RunObserved(tracer *obs.Tracer, fn Func, data ...mergeable.Mergeable) error {
	return RunWith(RunConfig{Obs: tracer}, fn, data...)
}

// Package faultnet wraps the memnet in-memory transport with
// deterministic, seeded fault injection, so the distributed runtime can
// be exercised under chaos inside ordinary tests and soak runs.
//
// A Network is configured with per-event probabilities and a seed; every
// connection derives its own random stream from that seed, so a given
// connection observes the same fault schedule on every run with the same
// establishment order. Four fault classes are injected at the transport
// boundary, which is exactly where a real network fails:
//
//   - latency: each write is delayed by a seeded duration in
//     [0, MaxDelay), modelling a slow or congested link;
//   - drops: a write is silently swallowed. On a stream transport a
//     missing segment stalls the peer's decoder, so drops surface as
//     recv deadline expiries on the other side — the failure mode the
//     dist layer's per-message deadlines exist to catch;
//   - resets: the connection is torn down mid-write, modelling a
//     crashed process or an RST;
//   - dial failures: Dial returns an injected error, modelling a
//     refused or unreachable node.
//
// Independently of the probabilistic faults, Partition(node) blackholes
// all traffic of a node's connections in both directions without closing
// them — the silent partition that only heartbeats can detect — and
// Heal(node) restores it.
//
// All injected faults wrap ErrInjected so tests can tell injected chaos
// from genuine transport bugs, and every injection increments a named
// counter in Stats().
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memnet"
	"repro/internal/stats"
)

// ErrInjected is wrapped by every fault the network injects.
var ErrInjected = errors.New("faultnet: injected fault")

// Decision alternatives handed to a Config.Decider. Alternative 0 is
// always "no fault", so a decider that falls back to 0 (the schedule
// explorer's default) yields a healthy network.
const (
	// Write-path alternatives (n = 3).
	WriteDeliver = 0
	WriteDrop    = 1
	WriteReset   = 2
	// Dial-path alternatives (n = 2).
	DialOK   = 0
	DialFail = 1
)

// Config sets the fault mix. Zero values mean a perfectly healthy
// network (the wrapper then only adds accounting).
type Config struct {
	// Seed derives every connection's fault schedule. Two Networks with
	// the same Config and the same connection-establishment order inject
	// identical fault sequences.
	Seed int64
	// DropProb is the probability that a single write is silently
	// swallowed.
	DropProb float64
	// ResetProb is the probability that a single write kills the
	// connection instead of delivering.
	ResetProb float64
	// DialFailProb is the probability that a Dial fails outright.
	DialFailProb float64
	// MaxDelay bounds the seeded per-write latency; zero disables
	// latency injection.
	MaxDelay time.Duration
	// Decider, when non-nil, takes over every fault decision from the
	// seeded probabilistic streams — the schedule explorer's hook. Each
	// write asks for one of WriteDeliver / WriteDrop / WriteReset (n=3),
	// each dial for DialOK / DialFail (n=2). site identifies the decision
	// point stably across runs with the same connection-establishment
	// order ("fault.dial:n<node>", "fault.write:n<node>:<schedule seed>").
	// Latency injection is disabled under a decider: a deterministic
	// simulation must not sleep. Partitions stay under explicit
	// Partition/Heal control either way.
	Decider func(site string, n int) int
}

// Network is a fault-injecting transport fabric. Create listeners on it
// with Listen; all connections they produce share the network's
// configuration, partition state and counters.
type Network struct {
	cfg Config

	mu          sync.Mutex
	partitioned map[int]int // remaining swallow budget, or partitionForever

	counters *stats.Counters
}

// partitionForever marks an unbounded partition (explicit Heal required).
const partitionForever = -1

// New creates a network with the given fault configuration.
func New(cfg Config) *Network {
	return &Network{
		cfg:         cfg,
		partitioned: make(map[int]int),
		counters:    stats.NewCounters(),
	}
}

// Stats exposes the network's fault counters ("delay", "drop", "reset",
// "dial_fail", "dial_closed", "partition_swallow", "partition_heal").
func (n *Network) Stats() *stats.Counters { return n.counters }

// Partition blackholes node: every write on the node's connections — in
// either direction — is silently swallowed until Heal. Connections stay
// open, so only deadline or heartbeat machinery can notice.
func (n *Network) Partition(node int) {
	n.mu.Lock()
	n.partitioned[node] = partitionForever
	n.mu.Unlock()
}

// PartitionFor blackholes node until `swallows` writes have been eaten,
// then auto-heals. Healing on traffic count rather than wall time keeps
// the pulse meaningful at any load: the partition is guaranteed to be
// observed by exactly that many writes, whether they take a microsecond
// or a minute to arrive. swallows <= 0 is a no-op.
func (n *Network) PartitionFor(node, swallows int) {
	if swallows <= 0 {
		return
	}
	n.mu.Lock()
	n.partitioned[node] = swallows
	n.mu.Unlock()
}

// Heal reconnects a partitioned node.
func (n *Network) Heal(node int) {
	n.mu.Lock()
	delete(n.partitioned, node)
	n.mu.Unlock()
}

// swallowPartition consumes one write against node's partition budget,
// reporting whether the write is blackholed. A bounded partition whose
// budget hits zero heals itself.
func (n *Network) swallowPartition(node int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	budget, ok := n.partitioned[node]
	if !ok {
		return false
	}
	if budget != partitionForever {
		budget--
		if budget <= 0 {
			delete(n.partitioned, node)
			n.counters.Inc("partition_heal")
		} else {
			n.partitioned[node] = budget
		}
	}
	return true
}

// Listener wraps a memnet listener for one node; both ends of every
// connection it produces inject faults.
type Listener struct {
	net    *Network
	node   int
	inner  *memnet.Listener
	closed atomic.Bool

	mu        sync.Mutex
	dialRng   *rand.Rand
	dialSeq   int64
	acceptSeq int64
}

// nextSeed derives the fault-schedule seed for this listener's next
// connection from the network seed, the node id, the connection's
// direction and a per-direction sequence number. Keeping the dial and
// accept sides on separate sequences means a connection's schedule does
// not depend on how the two ends' wrap calls interleave.
func (l *Listener) nextSeed(accept bool) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var seq int64
	if accept {
		l.acceptSeq++
		seq = l.acceptSeq<<1 | 1
	} else {
		l.dialSeq++
		seq = l.dialSeq << 1
	}
	return l.net.cfg.Seed ^ int64(l.node+1)*0x1000193 ^ seq*0x7F4A7C15F39CC60D
}

// Listen creates a fault-injecting listener for the given node id with
// the given accept backlog.
func (n *Network) Listen(node, backlog int) *Listener {
	return &Listener{
		net:     n,
		node:    node,
		inner:   memnet.Listen(backlog),
		dialRng: rand.New(rand.NewSource(n.cfg.Seed ^ int64(node+1)*0x7F4A7C15F39CC60D)),
	}
}

// Accept blocks for an inbound connection and returns its fault-wrapped
// server end.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.wrap(c, l.node, l.nextSeed(true)), nil
}

// Dial connects to the listener, possibly failing with an injected
// error, and returns the fault-wrapped client end.
func (l *Listener) Dial() (net.Conn, error) {
	// A dial to a closed listener fails before any fault decision is
	// drawn: it can never succeed, so burning a decision (or a seeded
	// variate) on it would shift every later connection's fault schedule
	// by the timing of the node's death — nondeterminism injected by the
	// injector itself.
	if l.closed.Load() {
		l.net.counters.Inc("dial_closed")
		return nil, fmt.Errorf("faultnet: dial node %d: %w", l.node, memnet.ErrClosed)
	}
	var fail bool
	if d := l.net.cfg.Decider; d != nil {
		fail = d(fmt.Sprintf("fault.dial:n%d", l.node), 2) == DialFail
	} else {
		l.mu.Lock()
		fail = l.dialRng.Float64() < l.net.cfg.DialFailProb
		l.mu.Unlock()
	}
	if fail {
		l.net.counters.Inc("dial_fail")
		return nil, fmt.Errorf("faultnet: dial node %d: %w", l.node, ErrInjected)
	}
	c, err := l.inner.Dial()
	if err != nil {
		return nil, err
	}
	return l.net.wrap(c, l.node, l.nextSeed(false)), nil
}

// Close closes the underlying listener. Subsequent dials fail without
// consuming a fault decision.
func (l *Listener) Close() error {
	l.closed.Store(true)
	return l.inner.Close()
}

func (n *Network) wrap(c net.Conn, node int, seed int64) net.Conn {
	return &conn{
		Conn: c,
		net:  n,
		node: node,
		site: fmt.Sprintf("fault.write:n%d:%016x", node, uint64(seed)),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// conn injects faults on the write path. Reads pass through: since both
// ends of a conversation are wrapped, every direction of traffic crosses
// an injecting writer.
type conn struct {
	net.Conn
	net  *Network
	node int
	// site is the connection's stable decision-point identity for
	// Config.Decider, derived from the node and the connection seed.
	site string

	mu  sync.Mutex
	rng *rand.Rand
}

func (c *conn) Write(b []byte) (int, error) {
	var drop, reset bool
	var delayFrac float64
	if d := c.net.cfg.Decider; d != nil {
		switch d(c.site, 3) {
		case WriteDrop:
			drop = true
		case WriteReset:
			reset = true
		}
	} else {
		// Always draw all three variates so a connection's fault schedule
		// depends only on its seed and write count, not on the configured
		// probabilities.
		c.mu.Lock()
		delayFrac = c.rng.Float64()
		drop = c.rng.Float64() < c.net.cfg.DropProb
		reset = c.rng.Float64() < c.net.cfg.ResetProb
		c.mu.Unlock()
	}

	if c.net.swallowPartition(c.node) {
		c.net.counters.Inc("partition_swallow")
		return len(b), nil
	}
	if reset {
		c.net.counters.Inc("reset")
		c.Conn.Close()
		return 0, fmt.Errorf("faultnet: connection reset (node %d): %w", c.node, ErrInjected)
	}
	if drop {
		c.net.counters.Inc("drop")
		return len(b), nil
	}
	if d := time.Duration(delayFrac * float64(c.net.cfg.MaxDelay)); d > 0 {
		c.net.counters.Inc("delay")
		time.Sleep(d)
	}
	return c.Conn.Write(b)
}

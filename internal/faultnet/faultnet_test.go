package faultnet

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/memnet"
	"repro/internal/testutil"
)

// pipePair dials one connection through the listener and returns both
// fault-wrapped ends.
func pipePair(t *testing.T, l *Listener) (client, server net.Conn) {
	t.Helper()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	return client, <-accepted
}

// readWithDeadline reads up to len(buf) bytes, failing over to a timeout
// error instead of blocking forever.
func readWithDeadline(c net.Conn, buf []byte, d time.Duration) (int, error) {
	c.SetReadDeadline(time.Now().Add(d))
	defer c.SetReadDeadline(time.Time{})
	return c.Read(buf)
}

// TestHealthyPassThrough: a zero-fault network is a transparent pipe.
func TestHealthyPassThrough(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		n := New(Config{Seed: 1})
		l := n.Listen(0, 4)
		defer l.Close()
		client, server := pipePair(t, l)
		defer client.Close()
		defer server.Close()

		go client.Write([]byte("hello"))
		buf := make([]byte, 8)
		got, err := readWithDeadline(server, buf, 2*time.Second)
		if err != nil || string(buf[:got]) != "hello" {
			t.Fatalf("read = %q, %v", buf[:got], err)
		}
	})
}

// TestDeterministicSchedule: two networks with the same seed and the
// same connection/write sequence inject byte-identical fault schedules.
func TestDeterministicSchedule(t *testing.T) {
	testutil.WithTimeout(t, 20*time.Second, func() {
		run := func() (outcomes []bool, counters map[string]int64) {
			n := New(Config{Seed: 42, DropProb: 0.3, ResetProb: 0.1})
			l := n.Listen(0, 4)
			defer l.Close()
			client, server := pipePair(t, l)
			defer client.Close()
			defer server.Close()
			// Drain the server end so surviving writes don't block.
			go func() {
				buf := make([]byte, 64)
				for {
					if _, err := server.Read(buf); err != nil {
						return
					}
				}
			}()
			for i := 0; i < 40; i++ {
				_, err := client.Write([]byte("x"))
				outcomes = append(outcomes, err == nil)
				if err != nil {
					break // reset kills the connection
				}
			}
			return outcomes, n.Stats().Snapshot()
		}
		o1, c1 := run()
		o2, c2 := run()
		if len(o1) != len(o2) {
			t.Fatalf("different schedule lengths: %d vs %d", len(o1), len(o2))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("write %d diverged: %v vs %v", i, o1[i], o2[i])
			}
		}
		for _, k := range []string{"drop", "reset"} {
			if c1[k] != c2[k] {
				t.Fatalf("counter %s diverged: %d vs %d", k, c1[k], c2[k])
			}
		}
	})
}

// TestDropSwallowsWrite: with DropProb=1 every write claims success but
// nothing arrives — the reader can only notice via a deadline.
func TestDropSwallowsWrite(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		n := New(Config{Seed: 7, DropProb: 1})
		l := n.Listen(0, 4)
		defer l.Close()
		client, server := pipePair(t, l)
		defer client.Close()
		defer server.Close()

		if _, err := client.Write([]byte("lost")); err != nil {
			t.Fatalf("dropped write should claim success, got %v", err)
		}
		if _, err := readWithDeadline(server, make([]byte, 8), 100*time.Millisecond); !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("read after drop = %v, want deadline expiry", err)
		}
		if n.Stats().Get("drop") == 0 {
			t.Fatal("drop counter not incremented")
		}
	})
}

// TestResetKillsConnection: with ResetProb=1 the first write errors with
// ErrInjected and the connection is dead in both directions.
func TestResetKillsConnection(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		n := New(Config{Seed: 7, ResetProb: 1})
		l := n.Listen(0, 4)
		defer l.Close()
		client, server := pipePair(t, l)
		defer client.Close()
		defer server.Close()

		if _, err := client.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("write = %v, want injected reset", err)
		}
		if _, err := server.Read(make([]byte, 1)); err == nil {
			t.Fatal("server read should fail after reset")
		}
		if n.Stats().Get("reset") == 0 {
			t.Fatal("reset counter not incremented")
		}
	})
}

// TestDialFailure: with DialFailProb=1 dials fail with ErrInjected.
func TestDialFailure(t *testing.T) {
	n := New(Config{Seed: 7, DialFailProb: 1})
	l := n.Listen(0, 4)
	defer l.Close()
	if _, err := l.Dial(); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial = %v, want injected failure", err)
	}
	if n.Stats().Get("dial_fail") == 0 {
		t.Fatal("dial_fail counter not incremented")
	}
}

// TestLatencyDelivers: injected latency delays but does not lose data.
func TestLatencyDelivers(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		n := New(Config{Seed: 7, MaxDelay: 5 * time.Millisecond})
		l := n.Listen(0, 4)
		defer l.Close()
		client, server := pipePair(t, l)
		defer client.Close()
		defer server.Close()

		go client.Write([]byte("slow"))
		buf := make([]byte, 8)
		got, err := readWithDeadline(server, buf, 2*time.Second)
		if err != nil || string(buf[:got]) != "slow" {
			t.Fatalf("read = %q, %v", buf[:got], err)
		}
	})
}

// TestDeciderDrivesFaults: with a Decider installed the probabilistic
// streams are bypassed entirely — the decider's answers script every
// write and dial outcome, and the probabilities are ignored.
func TestDeciderDrivesFaults(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		var sites []string
		script := []int{WriteDeliver, WriteDrop, WriteReset}
		step := 0
		n := New(Config{
			Seed:     7,
			DropProb: 1, // must be ignored under a decider
			Decider: func(site string, alts int) int {
				sites = append(sites, site)
				if alts == 2 {
					return DialOK
				}
				pick := script[step%len(script)]
				step++
				return pick
			},
		})
		l := n.Listen(5, 4)
		defer l.Close()
		client, server := pipePair(t, l)
		defer client.Close()
		defer server.Close()

		// Write 1: deliver (DropProb=1 would have swallowed it).
		go client.Write([]byte("ok"))
		buf := make([]byte, 8)
		got, err := readWithDeadline(server, buf, 2*time.Second)
		if err != nil || string(buf[:got]) != "ok" {
			t.Fatalf("scripted deliver: read = %q, %v", buf[:got], err)
		}
		// Write 2: drop — claims success, nothing arrives.
		if _, err := client.Write([]byte("lost")); err != nil {
			t.Fatalf("scripted drop should claim success, got %v", err)
		}
		// Write 3: reset — the connection dies with ErrInjected.
		if _, err := client.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("scripted reset: write = %v, want injected reset", err)
		}
		if n.Stats().Get("drop") != 1 || n.Stats().Get("reset") != 1 {
			t.Fatalf("counters = %v, want one drop and one reset", n.Stats().Snapshot())
		}
		if len(sites) == 0 || sites[0] != "fault.dial:n5" {
			t.Fatalf("sites = %v, want dial site first", sites)
		}
		for _, s := range sites[1:] {
			if len(s) < len("fault.write:n5:") || s[:len("fault.write:n5:")] != "fault.write:n5:" {
				t.Fatalf("unexpected write site %q", s)
			}
		}
	})
}

// TestDeciderDialFailure: a decider can fail dials outright.
func TestDeciderDialFailure(t *testing.T) {
	n := New(Config{Decider: func(site string, alts int) int {
		if alts == 2 {
			return DialFail
		}
		return WriteDeliver
	}})
	l := n.Listen(0, 4)
	defer l.Close()
	if _, err := l.Dial(); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial = %v, want injected failure", err)
	}
}

// TestPartitionAndHeal: a partitioned node's traffic is blackholed in
// both directions without closing connections; Heal restores delivery.
func TestPartitionAndHeal(t *testing.T) {
	testutil.WithTimeout(t, 10*time.Second, func() {
		n := New(Config{Seed: 7})
		l := n.Listen(3, 4)
		defer l.Close()
		client, server := pipePair(t, l)
		defer client.Close()
		defer server.Close()

		n.Partition(3)
		if _, err := client.Write([]byte("void")); err != nil {
			t.Fatalf("partitioned write should be silently swallowed, got %v", err)
		}
		if _, err := server.Write([]byte("void")); err != nil {
			t.Fatalf("reverse direction should be swallowed too, got %v", err)
		}
		if _, err := readWithDeadline(server, make([]byte, 8), 100*time.Millisecond); !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("read during partition = %v, want deadline expiry", err)
		}
		if n.Stats().Get("partition_swallow") < 2 {
			t.Fatalf("partition_swallow = %d, want >= 2", n.Stats().Get("partition_swallow"))
		}

		n.Heal(3)
		go client.Write([]byte("back"))
		buf := make([]byte, 8)
		got, err := readWithDeadline(server, buf, 2*time.Second)
		if err != nil || string(buf[:got]) != "back" {
			t.Fatalf("read after heal = %q, %v", buf[:got], err)
		}
	})
}

// TestClosedDialConsumesNoDecision is the determinism regression for
// dead-node dials: once a listener closes (a killed node), dialing it
// must fail immediately without drawing a fault decision — under a
// decider or from the seeded stream — so the timing of a node's death
// cannot shift any later connection's fault schedule.
func TestClosedDialConsumesNoDecision(t *testing.T) {
	decisions := 0
	n := New(Config{Decider: func(site string, alts int) int {
		decisions++
		return 0
	}})
	l := n.Listen(4, 4)
	l.Close()
	_, err := l.Dial()
	if !errors.Is(err, memnet.ErrClosed) {
		t.Fatalf("dial after close = %v, want memnet.ErrClosed", err)
	}
	if errors.Is(err, ErrInjected) {
		t.Fatalf("closed-listener dial misreported as injected fault: %v", err)
	}
	if decisions != 0 {
		t.Fatalf("closed dial consumed %d decisions, want 0", decisions)
	}
	if got := n.Stats().Get("dial_closed"); got != 1 {
		t.Fatalf("dial_closed = %d, want 1", got)
	}
	if got := n.Stats().Get("dial_fail"); got != 0 {
		t.Fatalf("dial_fail = %d, want 0 (no fault was injected)", got)
	}

	// Seeded mode: the dial rng must not advance either. Two networks with
	// the same seed — one that dials a closed listener between two live
	// dials, one that does not — must agree on the live dials' outcomes.
	outcomes := func(closeBetween bool) []bool {
		nw := New(Config{Seed: 99, DialFailProb: 0.5})
		live := nw.Listen(1, 4)
		defer live.Close()
		go func() {
			for {
				if _, err := live.Accept(); err != nil {
					return
				}
			}
		}()
		dead := nw.Listen(2, 4)
		dead.Close()
		var out []bool
		for i := 0; i < 8; i++ {
			if closeBetween {
				if _, err := dead.Dial(); err == nil {
					t.Fatal("dial to closed listener succeeded")
				}
			}
			_, err := live.Dial()
			out = append(out, err == nil)
		}
		return out
	}
	plain, interleaved := outcomes(false), outcomes(true)
	for i := range plain {
		if plain[i] != interleaved[i] {
			t.Fatalf("dead-node dials drifted the seeded schedule: %v vs %v", plain, interleaved)
		}
	}
}

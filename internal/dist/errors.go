package dist

import (
	"errors"
	"fmt"
)

// Membership error taxonomy. Like the remote/transport split in
// worker.go, callers classify with errors.Is against the sentinels —
// never by string matching — and reach the details with errors.As
// against the concrete types.

var (
	// ErrDraining is the sentinel matched by errors.Is for a spawn that
	// could not be placed because the candidate nodes are draining: the
	// requested node refused the task (a drain landed between placement
	// and delivery) and no non-draining alternative existed. A draining
	// member finishes its in-flight work but accepts nothing new, so the
	// caller should treat this like transient capacity loss — back off,
	// or Join a replacement node.
	ErrDraining = errors.New("dist: node draining")

	// ErrStaleEpoch is the sentinel for a membership operation acting on
	// an outdated view of the cluster: draining or removing a member that
	// already left. The error carries the epochs involved, so callers can
	// resubscribe (Watch) and re-derive their view.
	ErrStaleEpoch = errors.New("dist: stale membership epoch")

	// ErrNoCoordinator is the sentinel for operations on a cluster whose
	// coordinator is gone (Close was called, or the process hosting it is
	// restarting). Remote tasks, joins, drains and watches all need a
	// live coordinator; a journal-backed coordinator comes back by
	// reopening its journal and re-driving the recorded state.
	ErrNoCoordinator = errors.New("dist: no coordinator")
)

// DrainingError reports a spawn refused by draining members. It
// classifies as ErrDraining.
type DrainingError struct {
	// Node is the member that refused (or would have hosted) the task.
	Node int
}

func (e DrainingError) Error() string {
	return fmt.Sprintf("dist: node %d is draining and accepts no new tasks", e.Node)
}

// Unwrap links the error to the ErrDraining sentinel for errors.Is.
func (e DrainingError) Unwrap() error { return ErrDraining }

// Is reports a match for the sentinel, so errors.Is works even through
// further wrapping layers.
func (e DrainingError) Is(target error) bool { return target == ErrDraining }

// IsDraining reports whether err is a drain refusal.
func IsDraining(err error) bool { return errors.Is(err, ErrDraining) }

// StaleEpochError reports a membership operation that referenced state
// the cluster has moved past. It classifies as ErrStaleEpoch.
type StaleEpochError struct {
	// Node is the member the operation referenced.
	Node int
	// Epoch is the cluster epoch at which the operation was rejected.
	Epoch uint64
}

func (e StaleEpochError) Error() string {
	return fmt.Sprintf("dist: node %d already left the cluster (epoch %d)", e.Node, e.Epoch)
}

// Unwrap links the error to the ErrStaleEpoch sentinel for errors.Is.
func (e StaleEpochError) Unwrap() error { return ErrStaleEpoch }

// Is reports a match for the sentinel.
func (e StaleEpochError) Is(target error) bool { return target == ErrStaleEpoch }

// IsStaleEpoch reports whether err is a stale-membership rejection.
func IsStaleEpoch(err error) bool { return errors.Is(err, ErrStaleEpoch) }

// noCoordinatorError wraps ErrNoCoordinator with the operation that
// needed one.
func noCoordinatorError(op string) error {
	return fmt.Errorf("dist: %s: %w", op, ErrNoCoordinator)
}

// errRebalanced marks a conversation the coordinator tore down on
// purpose to move a pre-progress task off a draining node. It rides the
// transport-error classification (the conversation is gone either way),
// so the ordinary failover loop re-places the task.
var errRebalanced = errors.New("dist: task rebalanced off draining node")

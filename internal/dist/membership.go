package dist

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Elastic membership. The cluster's node set is no longer fixed at
// construction: workers Join at runtime, Drain gracefully (finish
// in-flight work, accept nothing new, shed pre-progress tasks onto other
// members) and Leave. Every transition bumps a monotonically increasing
// membership epoch, is appended to the coordinator journal when one is
// attached (MembershipJournal), and is fanned out to subscribers as a
// typed event — the watched-coordination-tree idiom: membership is a
// small replicated tree of per-entity states, and consumers follow it
// through an event stream instead of polling.
//
// Epochs order every placement decision: a transition that happens
// before a spawn's placement is visible to it, one that happens after
// surfaces as a rebalance (pre-progress tasks are re-spawned from their
// original snapshots, so the merged result stays bit-identical — the
// Concurrent Revisions determinacy argument: a re-spawn from the same
// snapshot replays the same local history).

// MemberState is one member's lifecycle position.
type MemberState int32

const (
	// StateActive members host new and existing tasks.
	StateActive MemberState = iota
	// StateDraining members finish in-flight conversations but refuse
	// new spawns; pre-progress tasks are rebalanced away.
	StateDraining
	// StateLeft members are gone: listener closed, no conversations.
	StateLeft
)

// String returns the state's short name.
func (s MemberState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateDraining:
		return "draining"
	case StateLeft:
		return "left"
	}
	return "unknown"
}

// MemberEventKind classifies a membership transition.
type MemberEventKind uint8

const (
	// MemberJoined: a new worker node entered the cluster.
	MemberJoined MemberEventKind = iota + 1
	// MemberDraining: a member stopped accepting new tasks.
	MemberDraining
	// MemberLeft: a member departed; its listener is closed.
	MemberLeft
)

// String returns the kind's short name.
func (k MemberEventKind) String() string {
	switch k {
	case MemberJoined:
		return "joined"
	case MemberDraining:
		return "draining"
	case MemberLeft:
		return "left"
	}
	return "unknown"
}

// MemberEvent is one membership transition, stamped with the epoch that
// ordered it. Events on a watch arrive in strictly ascending epoch
// order.
type MemberEvent struct {
	Kind  MemberEventKind
	Node  int
	Epoch uint64
}

func (e MemberEvent) String() string {
	return fmt.Sprintf("n%d %s@e%d", e.Node, e.Kind, e.Epoch)
}

// MemberInfo is one member's row in a Members snapshot.
type MemberInfo struct {
	Node    int
	State   MemberState
	Healthy bool
	// JoinEpoch is the epoch at which the member entered (0 for the
	// construction-time nodes).
	JoinEpoch uint64
}

// MembershipJournal is the optional extension of RouteJournal for full
// coordinator state: a journal that also records membership transitions,
// so a restarted coordinator replays the epoch sequence the crashed one
// established (and a resumed run verifies it re-traces that sequence
// exactly). The journal package's *Journal satisfies it.
type MembershipJournal interface {
	RouteJournal
	// RecordMember durably appends one membership transition. During a
	// resume, re-recording a transition the journal already holds for
	// that epoch is a verification, not an append.
	RecordMember(epoch uint64, kind uint8, node int)
}

// MemberWatch is one subscription to the membership event stream.
// Events are delivered in epoch order on C. A subscriber that falls
// behind its buffer is disconnected rather than blocking membership
// transitions: its channel closes and Lagged reports true — resubscribe
// and resynchronize from a Members snapshot.
type MemberWatch struct {
	ch     chan MemberEvent
	c      *Cluster
	mu     sync.Mutex
	closed bool
	lagged bool
}

// C is the event stream. It closes when the watch is closed, the
// cluster shuts down, or the subscriber lagged.
func (w *MemberWatch) C() <-chan MemberEvent { return w.ch }

// Lagged reports whether the watch was disconnected for falling behind.
func (w *MemberWatch) Lagged() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lagged
}

// Close unsubscribes. Safe to call more than once.
func (w *MemberWatch) Close() {
	w.c.watchMu.Lock()
	delete(w.c.watchers, w)
	w.c.watchMu.Unlock()
	w.closeCh(false)
}

func (w *MemberWatch) closeCh(lagged bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		w.lagged = lagged
		close(w.ch)
	}
}

// deliver hands the watch one event without ever blocking the cluster's
// transition path. Callers hold c.watchMu.
func (w *MemberWatch) deliver(ev MemberEvent) bool {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return false
	}
	select {
	case w.ch <- ev:
		w.mu.Unlock()
		return true
	default:
		w.mu.Unlock()
		w.closeCh(true)
		return false
	}
}

// Watch subscribes to membership events from this point on, with the
// given channel buffer (minimum 1). Pair it with Members to initialize:
// snapshot first, then apply events with a higher epoch.
func (c *Cluster) Watch(buffer int) (*MemberWatch, error) {
	if c.closed.Load() {
		return nil, noCoordinatorError("watch")
	}
	if buffer < 1 {
		buffer = 1
	}
	w := &MemberWatch{ch: make(chan MemberEvent, buffer), c: c}
	c.watchMu.Lock()
	c.watchers[w] = struct{}{}
	c.watchMu.Unlock()
	return w, nil
}

// Members returns a point-in-time snapshot of the membership table,
// including departed members (their node ids are never reused, so
// journaled placements stay resolvable).
func (c *Cluster) Members() []MemberInfo {
	nodes := c.nodeList()
	out := make([]MemberInfo, len(nodes))
	for i, n := range nodes {
		out[i] = MemberInfo{
			Node:      n.id,
			State:     MemberState(n.state.Load()),
			Healthy:   n.healthy.Load(),
			JoinEpoch: n.joinEpoch,
		}
	}
	return out
}

// Epoch returns the current membership epoch. Epoch 0 is the
// construction-time membership; every Join/Drain/Leave increments it.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// emitLocked records one transition everywhere it must land: the
// journal (when it understands membership), the span stream, and every
// subscriber. Callers hold c.memMu, so events are globally ordered by
// epoch.
func (c *Cluster) emitLocked(ev MemberEvent) {
	if j := c.opts.Journal; j != nil {
		if mj, ok := j.(MembershipJournal); ok {
			mj.RecordMember(ev.Epoch, uint8(ev.Kind), ev.Node)
		}
	}
	if tr := c.opts.Obs; tr != nil {
		tr.Emit("cluster", obs.KindMember, ev.String(), -1, int64(ev.Node), 0)
	}
	c.watchMu.Lock()
	for w := range c.watchers {
		if !w.deliver(ev) {
			delete(c.watchers, w)
			c.counters.Inc("watch_lagged")
		}
	}
	c.watchMu.Unlock()
}

// Join adds a fresh worker node to the cluster and returns its id. The
// node's transport comes from Options.Listen with the new id; it is
// immediately placeable and (when heartbeats are on) probed like every
// other member.
func (c *Cluster) Join() (int, error) {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if c.closed.Load() {
		return -1, noCoordinatorError("join")
	}
	nodes := c.nodeList()
	id := len(nodes)
	n := newWorkerNode(id, c.opts.Listen(id), c.opts)
	epoch := c.epoch.Add(1)
	n.joinEpoch = epoch
	next := make([]*workerNode, len(nodes), len(nodes)+1)
	copy(next, nodes)
	next = append(next, n)
	c.members.Store(&next)
	c.counters.Inc("member_join")
	c.emitLocked(MemberEvent{Kind: MemberJoined, Node: id, Epoch: epoch})
	if c.opts.HeartbeatInterval > 0 {
		c.hbWG.Add(1)
		go c.heartbeatLoop(n)
	}
	return id, nil
}

// Drain marks a member draining: no new tasks are placed on it, its
// worker refuses spawns that were already routed its way, and every
// pre-progress in-flight task it hosts is torn down and re-spawned from
// its original snapshot on another member (the live rebalance).
// Conversations whose operations already merged finish where they are.
// Draining an already-draining member is a no-op; draining a departed
// one is an ErrStaleEpoch.
func (c *Cluster) Drain(node int) error {
	c.memMu.Lock()
	if c.closed.Load() {
		c.memMu.Unlock()
		return noCoordinatorError("drain")
	}
	nodes := c.nodeList()
	if node < 0 || node >= len(nodes) {
		c.memMu.Unlock()
		return fmt.Errorf("dist: drain: no worker node %d", node)
	}
	n := nodes[node]
	switch MemberState(n.state.Load()) {
	case StateLeft:
		c.memMu.Unlock()
		return StaleEpochError{Node: node, Epoch: c.epoch.Load()}
	case StateDraining:
		c.memMu.Unlock()
		return nil
	}
	n.state.Store(int32(StateDraining))
	epoch := c.epoch.Add(1)
	c.counters.Inc("member_drain")
	c.emitLocked(MemberEvent{Kind: MemberDraining, Node: node, Epoch: epoch})
	c.memMu.Unlock()

	c.rebalanceFrom(node)
	return nil
}

// drainWait bounds how long Leave waits for a draining member's
// in-flight conversations; past it the node is closed anyway (the
// graceful leave degrades to the kill path, which the failover machinery
// already survives).
const drainWait = 10 * time.Second

// Leave removes a member: drain (if not already draining), wait for its
// hosted conversations to finish, then close it and mark it left. Node
// ids are never reused. Leaving a departed member is an ErrStaleEpoch.
func (c *Cluster) Leave(node int) error {
	if err := c.Drain(node); err != nil {
		return err
	}
	nodes := c.nodeList()
	n := nodes[node]
	deadline := time.Now().Add(drainWait)
	for n.taskConns.Load() > 0 {
		if time.Now().After(deadline) {
			c.counters.Inc("leave_forced")
			break
		}
		time.Sleep(200 * time.Microsecond)
	}

	c.memMu.Lock()
	if c.closed.Load() {
		c.memMu.Unlock()
		return noCoordinatorError("leave")
	}
	if MemberState(n.state.Load()) == StateLeft {
		c.memMu.Unlock()
		return StaleEpochError{Node: node, Epoch: c.epoch.Load()}
	}
	n.state.Store(int32(StateLeft))
	epoch := c.epoch.Add(1)
	c.counters.Inc("member_leave")
	c.emitLocked(MemberEvent{Kind: MemberLeft, Node: node, Epoch: epoch})
	c.memMu.Unlock()

	n.close()
	return nil
}

// inflight is one live coordinator↔worker task conversation, registered
// so drains can shed it. Its mutex arbitrates the one race that
// matters: a drain must never tear down a conversation whose operations
// have entered the merge pipeline, and a proxy must never merge
// operations from a conversation a drain already cancelled.
type inflight struct {
	node int
	conn interface{ Close() error }

	mu         sync.Mutex
	progressed bool
	cancelled  bool
}

// markProgressed flips the conversation to progressed unless a drain won
// the race; it reports whether the proxy may keep going.
func (fl *inflight) markProgressed() bool {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.cancelled {
		return false
	}
	fl.progressed = true
	return true
}

// interrupted reports whether a drain cancelled this conversation.
func (fl *inflight) interrupted() bool {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.cancelled
}

// hasProgressed reports whether any of the task's operations merged.
func (fl *inflight) hasProgressed() bool {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.progressed
}

// cancel tears the conversation down if (and only if) it has not
// progressed. It reports whether it did.
func (fl *inflight) cancel() bool {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.progressed || fl.cancelled {
		return false
	}
	fl.cancelled = true
	fl.conn.Close()
	return true
}

func (c *Cluster) trackInflight(fl *inflight) {
	c.flMu.Lock()
	c.inflightSet[fl] = struct{}{}
	c.flMu.Unlock()
}

func (c *Cluster) untrackInflight(fl *inflight) {
	c.flMu.Lock()
	delete(c.inflightSet, fl)
	c.flMu.Unlock()
}

// rebalanceFrom sheds every pre-progress conversation hosted on node.
// The torn conversations surface as rebalance errors in their proxies,
// which re-spawn from the original snapshots on the next placeable
// member — results stay bit-identical because the replacement execution
// starts from the same state.
func (c *Cluster) rebalanceFrom(node int) {
	c.flMu.Lock()
	var victims []*inflight
	for fl := range c.inflightSet {
		if fl.node == node {
			victims = append(victims, fl)
		}
	}
	c.flMu.Unlock()
	for _, fl := range victims {
		if fl.cancel() {
			c.counters.Inc("rebalance")
		}
	}
}

// nextPlaceable picks the target after a failure (or drain) on `failed`:
// the first active, healthy member scanning forward from failed+1,
// wrapping around. The failed member itself is considered last, and only
// if it is still active and believed healthy (a transient reset, not a
// death). The scan is purely positional, so placement — like everything
// else in the runtime — is deterministic.
func (c *Cluster) nextPlaceable(failed int) (int, bool) {
	nodes := c.nodeList()
	n := len(nodes)
	for i := 1; i <= n; i++ {
		cand := (failed + i) % n
		if MemberState(nodes[cand].state.Load()) == StateActive && nodes[cand].healthy.Load() {
			return cand, true
		}
	}
	return 0, false
}

// anyDraining reports whether some member is draining — used to
// classify a failed placement as ErrDraining rather than a plain
// no-healthy-node failure.
func (c *Cluster) anyDraining() (int, bool) {
	for _, n := range c.nodeList() {
		if MemberState(n.state.Load()) == StateDraining {
			return n.id, true
		}
	}
	return 0, false
}

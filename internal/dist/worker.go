package dist

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/mergeable"
	"repro/internal/task"
)

// WorkerFunc is the body of a remote task. It runs on a worker node with
// rebuilt copies of the structures passed to SpawnRemote, in the same
// order. wctx.Sync ships the recorded operations to the coordinator and
// refreshes the copies, exactly like task.Ctx.Sync does locally.
type WorkerFunc func(wctx *WorkerCtx, data []mergeable.Mergeable) error

// WorkerCtx is the remote task's handle to the coordinator.
type WorkerCtx struct {
	peer *peer
	data []mergeable.Mergeable
}

// Sync sends the task's operations since the last sync to the
// coordinator, waits for the merge, and refreshes the local copies from
// the coordinator's state. It returns task.ErrAborted when the
// coordinator aborted this task and task.ErrMergeRejected when a merge
// condition discarded the changes (the copies are refreshed regardless,
// mirroring the local semantics).
func (w *WorkerCtx) Sync() error {
	msg := envelope{Kind: kindSync, Ops: make([]opsOf, len(w.data))}
	for i, m := range w.data {
		msg.Ops[i] = opsOf{Ops: m.Log().TakeLocal()}
	}
	if err := w.peer.send(msg); err != nil {
		return fmt.Errorf("dist: sync send: %w", err)
	}
	reply, err := w.peer.recv()
	if err != nil {
		return fmt.Errorf("dist: sync recv: %w", err)
	}
	if reply.Kind != kindReply {
		return fmt.Errorf("dist: unexpected message kind %d during sync", reply.Kind)
	}
	if reply.Err == wireAborted {
		return task.ErrAborted
	}
	if err := w.refresh(reply.Snapshots); err != nil {
		return err
	}
	if reply.Err == wireRejected {
		return task.ErrMergeRejected
	}
	return nil
}

// refresh replaces the worker's copies with decoded coordinator state.
func (w *WorkerCtx) refresh(snaps []snapshot) error {
	if len(snaps) != len(w.data) {
		return fmt.Errorf("dist: refresh carries %d snapshots for %d structures", len(snaps), len(w.data))
	}
	for i, s := range snaps {
		c, err := codecByName(s.Codec)
		if err != nil {
			return err
		}
		fresh, err := c.Decode(s.Data)
		if err != nil {
			return fmt.Errorf("dist: refresh decode: %w", err)
		}
		if err := w.data[i].AdoptFrom(fresh); err != nil {
			return err
		}
		w.data[i].Log().TakeLocal() // adoption is not an operation
	}
	return nil
}

const (
	wireAborted  = "\x00aborted"
	wireRejected = "\x00rejected"
	// wireDraining is a worker's refusal of a spawn that was routed to it
	// after it started draining; the coordinator re-places the task on an
	// active member.
	wireDraining = "\x00draining"
)

// workerNode is one simulated remote address space: a listener plus an
// accept loop, each accepted connection hosting one remote task or the
// coordinator's heartbeat conversation.
type workerNode struct {
	id       int
	listener Listener
	opts     Options

	// healthy is the coordinator's view of the node, maintained by the
	// heartbeat loop and by dial/transport failures.
	healthy atomic.Bool

	// state is the member's lifecycle position (MemberState); draining
	// and departed nodes refuse new spawns. joinEpoch is the epoch the
	// member entered at (0 for construction-time nodes), and taskConns
	// counts the task conversations the node currently hosts, so Leave
	// can wait for a drain to finish.
	state     atomic.Int32
	joinEpoch uint64
	taskConns atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
}

func newWorkerNode(id int, l Listener, opts Options) *workerNode {
	n := &workerNode{id: id, listener: l, opts: opts, conns: make(map[net.Conn]bool)}
	n.healthy.Store(true)
	go n.acceptLoop()
	return n
}

// close simulates node failure (or shutdown): no new connections, and
// every in-flight task connection is torn down so peers observe the
// failure instead of waiting forever.
func (n *workerNode) close() {
	n.listener.Close()
	n.mu.Lock()
	n.closed = true
	for c := range n.conns {
		c.Close()
	}
	n.conns = nil
	n.mu.Unlock()
}

func (n *workerNode) track(conn net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		conn.Close()
		return false
	}
	n.conns[conn] = true
	return true
}

func (n *workerNode) untrack(conn net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.conns != nil {
		delete(n.conns, conn)
	}
}

func (n *workerNode) acceptLoop() {
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		if !n.track(conn) {
			return
		}
		go func() {
			defer n.untrack(conn)
			n.serve(newPeerTimeouts(conn, n.opts.SendTimeout, n.opts.RecvTimeout))
		}()
	}
}

// serve dispatches one accepted connection: a kindPing opens a heartbeat
// conversation, a kindSpawn hosts a remote task.
func (n *workerNode) serve(p *peer) {
	defer p.close()
	first, err := p.recv()
	if err != nil {
		return
	}
	switch first.Kind {
	case kindPing:
		n.serveHeartbeat(p)
	case kindSpawn:
		n.serveTask(p, first)
	}
}

// serveHeartbeat answers the coordinator's liveness probes until the
// connection dies. The pong is sent with the node's send deadline, so a
// stalled coordinator cannot wedge the worker.
func (n *workerNode) serveHeartbeat(p *peer) {
	for {
		if err := p.send(envelope{Kind: kindPong}); err != nil {
			return
		}
		msg, err := p.recv()
		if err != nil || msg.Kind != kindPing {
			return
		}
	}
}

// serveTask hosts one remote task: decode the spawn message, rebuild the
// structures, run the registered function, and report completion. A
// draining (or departed) member refuses the spawn outright — the
// coordinator re-places it — but conversations already under way are
// unaffected: drain stops new work, it never corrupts old work.
func (n *workerNode) serveTask(p *peer, spawn envelope) {
	if MemberState(n.state.Load()) != StateActive {
		p.send(envelope{Kind: kindDone, Err: wireDraining})
		return
	}
	n.taskConns.Add(1)
	defer n.taskConns.Add(-1)
	data := make([]mergeable.Mergeable, len(spawn.Snapshots))
	for i, s := range spawn.Snapshots {
		c, err := codecByName(s.Codec)
		if err != nil {
			p.send(envelope{Kind: kindDone, Err: err.Error()})
			return
		}
		m, err := c.Decode(s.Data)
		if err != nil {
			p.send(envelope{Kind: kindDone, Err: err.Error()})
			return
		}
		m.Log().TakeLocal() // reconstruction is not local history
		data[i] = m
	}
	fn, err := funcByName(spawn.Fn)
	if err != nil {
		p.send(envelope{Kind: kindDone, Err: err.Error()})
		return
	}

	wctx := &WorkerCtx{peer: p, data: data}
	taskErr := runWorkerFunc(fn, wctx, data)

	done := envelope{Kind: kindDone, Ops: make([]opsOf, len(data))}
	for i, m := range data {
		done.Ops[i] = opsOf{Ops: m.Log().TakeLocal()}
	}
	if taskErr != nil {
		done.Err = taskErr.Error()
	}
	// The proxy may already be gone (e.g. it aborted us); a failed send
	// is fine, the coordinator side has everything it needs.
	_ = p.send(done)
}

// runWorkerFunc isolates panics exactly like the local runtime does.
func runWorkerFunc(fn WorkerFunc, wctx *WorkerCtx, data []mergeable.Mergeable) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = task.PanicError{Value: r}
		}
	}()
	return fn(wctx, data)
}

// ErrRemoteFailed is the sentinel matched by errors.Is for every failure
// reported by a remote worker function (as opposed to a transport or
// runtime error). The concrete error is a RemoteError carrying the
// worker's message.
var ErrRemoteFailed = errors.New("dist: remote task failed")

// ErrTransport is the sentinel matched by errors.Is for every failure of
// the conversation with a worker node — dial errors, send/recv errors
// and deadline expiries — as opposed to an error the remote function
// itself returned. Transport failures are the ones eligible for
// failover.
var ErrTransport = errors.New("dist: transport failure")

// RemoteError wraps a worker-reported failure. The original error value
// cannot cross the wire, so only its message survives; classification
// happens via errors.Is(err, ErrRemoteFailed) or errors.As with
// *RemoteError — never by string matching.
type RemoteError struct{ Msg string }

func (e RemoteError) Error() string { return ErrRemoteFailed.Error() + ": " + e.Msg }

// Unwrap links the error to the ErrRemoteFailed sentinel for errors.Is.
func (e RemoteError) Unwrap() error { return ErrRemoteFailed }

// Is reports a match for the sentinel, so errors.Is works even through
// further wrapping layers.
func (e RemoteError) Is(target error) bool { return target == ErrRemoteFailed }

// IsRemoteError reports whether err is a failure reported by a remote
// worker (as opposed to a transport or runtime error).
func IsRemoteError(err error) bool {
	return errors.Is(err, ErrRemoteFailed)
}

// transportError marks a failed conversation with a node; see
// ErrTransport.
type transportError struct {
	node int
	err  error
}

func (e transportError) Error() string {
	return fmt.Sprintf("dist: node %d: %v", e.node, e.err)
}

func (e transportError) Unwrap() error { return e.err }

func (e transportError) Is(target error) bool { return target == ErrTransport }

// IsTransportError reports whether err is a transport-level failure
// (connection, deadline or dial trouble) rather than an error returned
// by the remote function.
func IsTransportError(err error) bool {
	return errors.Is(err, ErrTransport)
}

package dist

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/ot"
	"repro/internal/task"

	"repro/internal/testutil"
)

func init() {
	RegisterFastListCodec[int]("test-fastlist-int")
	RegisterFastQueueCodec[int]("test-fastqueue-int")
	RegisterTreeCodec("test-tree")
	RegisterFunc("slow-sync-loop", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		c := data[0].(*mergeable.Counter)
		for {
			c.Inc()
			time.Sleep(5 * time.Millisecond)
			if err := wctx.Sync(); err != nil {
				return err
			}
		}
	})
}

// TestNodeFailureSurfacesAsError kills a worker node (closes its
// listener, which tears down the task connections) while a remote task
// runs; the coordinator-side proxy must fail with a transport error
// rather than hang, and the parent unwinds normally.
func TestNodeFailureSurfacesAsError(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		cluster := NewCluster(1)
		c := mergeable.NewCounter(0)
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "slow-sync-loop", data[0])
			// Let at least one sync round through, then kill the node.
			if err := ctx.MergeAll(); err != nil {
				return err
			}
			cluster.Close() // node failure
			mergeErr := ctx.MergeAll()
			if mergeErr == nil {
				t.Error("node failure should surface as a merge error")
			}
			if errors.Is(mergeErr, task.ErrAborted) {
				t.Errorf("unexpected abort classification: %v", mergeErr)
			}
			return nil
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value() < 1 {
			t.Fatalf("pre-failure sync should have merged, counter = %d", c.Value())
		}
	})
}

// TestDialAfterClusterClose covers spawning against a dead cluster.
func TestDialAfterClusterClose(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		cluster.Close()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "append5", data[0])
			if mergeErr := ctx.MergeAll(); mergeErr == nil {
				t.Error("spawn against a closed cluster should fail")
			}
			return nil
		}, mergeable.NewList[int]())
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestExtendedCodecRoundtrips covers the COW and tree codecs.
func TestExtendedCodecRoundtrips(t *testing.T) {
	fl := mergeable.NewFastList(1, 2, 3)
	fq := mergeable.NewFastQueue(4, 5)
	tr := mergeable.NewTree("root")
	if err := tr.InsertNode([]int{0}, "child"); err != nil {
		t.Fatal(err)
	}
	tr.Log().TakeLocal()

	for _, m := range []mergeable.Mergeable{fl, fq, tr} {
		codec, err := codecFor(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		b, err := codec.Encode(m)
		if err != nil {
			t.Fatalf("%T encode: %v", m, err)
		}
		back, err := codec.Decode(b)
		if err != nil {
			t.Fatalf("%T decode: %v", m, err)
		}
		if back.Fingerprint() != m.Fingerprint() {
			t.Errorf("%T: roundtrip changed the value", m)
		}
	}
}

// TestTreeSnapshotRoundtrip pins the Snapshot/NewTreeFromSnapshot pair the
// tree codec relies on.
func TestTreeSnapshotRoundtrip(t *testing.T) {
	tr := mergeable.NewTree("r")
	if err := tr.InsertNode([]int{0}, "a"); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	// Mutating the snapshot must not touch the tree.
	snap.Children[0].Value = "mutated"
	if tr.String() != "r(a)" {
		t.Fatalf("snapshot aliases tree: %s", tr.String())
	}
	rebuilt := mergeable.NewTreeFromSnapshot(snap)
	if rebuilt.String() != "r(mutated)" {
		t.Fatalf("rebuilt = %s", rebuilt.String())
	}
	empty := mergeable.NewTreeFromSnapshot(nil)
	if _, err := empty.Value(); err != nil {
		t.Fatalf("nil snapshot should build an empty tree: %v", err)
	}
	_ = ot.TreeNode{} // keep the ot import for the codec's payload note
}

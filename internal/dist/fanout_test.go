package dist

import (
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/task"
	"repro/internal/testutil"
)

// runFanout executes one three-node fan-out of append5 over a fresh list
// and returns the merged values, using either SpawnRemoteMany (shared
// encode) or a loop of SpawnRemote (per-proxy encode).
func runFanout(t *testing.T, shared bool) []int {
	t.Helper()
	cluster := NewCluster(3)
	defer cluster.Close()
	list := mergeable.NewList(1, 2, 3)
	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		var handles []*task.Task
		if shared {
			var err error
			handles, err = cluster.SpawnRemoteMany(ctx, []int{0, 1, 2}, "append5", l)
			if err != nil {
				return err
			}
		} else {
			for n := 0; n < 3; n++ {
				handles = append(handles, cluster.SpawnRemote(ctx, n, "append5", l))
			}
		}
		l.Append(4)
		return ctx.MergeAllFromSet(handles)
	}, list)
	if err != nil {
		t.Fatal(err)
	}
	return list.Values()
}

// TestSpawnRemoteManyMatchesSpawnRemote asserts the encode-once fan-out is
// observably identical to the per-node-encode loop it replaces: same
// deterministic merged state, in the same MergeAll order.
func TestSpawnRemoteManyMatchesSpawnRemote(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		sharedVals := runFanout(t, true)
		loopVals := runFanout(t, false)
		if len(sharedVals) != 7 {
			t.Fatalf("shared fan-out merged %v, want 7 elements", sharedVals)
		}
		if len(sharedVals) != len(loopVals) {
			t.Fatalf("shared %v vs loop %v", sharedVals, loopVals)
		}
		for i := range sharedVals {
			if sharedVals[i] != loopVals[i] {
				t.Fatalf("shared %v vs loop %v", sharedVals, loopVals)
			}
		}
	})
}

// TestSpawnRemoteManyEncodeError asserts an unencodable structure fails
// fast: the error comes back before any proxy task exists, so the caller
// has no children to collect.
func TestSpawnRemoteManyEncodeError(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		fl := mergeable.NewFastList[float32]() // no codec registered for this type
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			handles, err := cluster.SpawnRemoteMany(ctx, []int{0}, "append5", data[0])
			if err == nil {
				t.Error("SpawnRemoteMany accepted a structure without a codec")
			}
			if len(handles) != 0 {
				t.Errorf("got %d handles alongside the error", len(handles))
			}
			return nil
		}, fl)
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestSpawnRemoteManyFailover asserts a shared-snapshot proxy still fails
// over: killing the first target before the fan-out re-runs its task on
// the next healthy node from the same encoded snapshots.
func TestSpawnRemoteManyFailover(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1})
		defer cluster.Close()
		cluster.KillNode(0)
		list := mergeable.NewList(1, 2, 3)
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			handles, err := cluster.SpawnRemoteMany(ctx, []int{0}, "append5", data[0])
			if err != nil {
				return err
			}
			return ctx.MergeAllFromSet(handles)
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); len(got) != 4 || got[3] != 5 {
			t.Fatalf("list = %v, want [1 2 3 5]", got)
		}
		if cluster.Stats().Get("failover") == 0 {
			t.Fatal("expected a failover to be recorded")
		}
	})
}

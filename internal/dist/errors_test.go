package dist

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/task"
	"repro/internal/testutil"
)

// TestRemoteErrorClassification pins the typed-error contract: remote
// failures classify with errors.Is/errors.As, never by string matching.
func TestRemoteErrorClassification(t *testing.T) {
	err := RemoteError{Msg: "boom"}
	if !errors.Is(err, ErrRemoteFailed) {
		t.Error("errors.Is(RemoteError, ErrRemoteFailed) = false")
	}
	wrapped := fmt.Errorf("merge: %w", err)
	if !errors.Is(wrapped, ErrRemoteFailed) {
		t.Error("sentinel lost through wrapping")
	}
	var re RemoteError
	if !errors.As(wrapped, &re) || re.Msg != "boom" {
		t.Errorf("errors.As recovered %+v", re)
	}
	if !IsRemoteError(wrapped) {
		t.Error("IsRemoteError(wrapped) = false")
	}
	if errors.Is(wrapped, ErrTransport) {
		t.Error("remote failure misclassified as transport failure")
	}
}

// TestTransportErrorClassification covers the transport side of the
// split: the sentinel matches, and the underlying cause stays reachable.
func TestTransportErrorClassification(t *testing.T) {
	err := transportError{node: 3, err: fmt.Errorf("proxy recv: %w", io.EOF)}
	if !errors.Is(err, ErrTransport) {
		t.Error("errors.Is(transportError, ErrTransport) = false")
	}
	if !errors.Is(err, io.EOF) {
		t.Error("underlying cause lost")
	}
	if errors.Is(err, ErrRemoteFailed) {
		t.Error("transport failure misclassified as remote failure")
	}
	if !IsTransportError(fmt.Errorf("outer: %w", err)) {
		t.Error("IsTransportError lost through wrapping")
	}
}

// TestRemoteFailureClassifiesEndToEnd drives a real failing remote task
// and classifies the surfaced merge error with the sentinels.
func TestRemoteFailureClassifiesEndToEnd(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "fail", data[0])
			mergeErr := ctx.MergeAll()
			if !errors.Is(mergeErr, ErrRemoteFailed) {
				t.Errorf("MergeAll = %v, want ErrRemoteFailed", mergeErr)
			}
			if errors.Is(mergeErr, ErrTransport) {
				t.Errorf("remote failure misclassified as transport: %v", mergeErr)
			}
			var re RemoteError
			if !errors.As(mergeErr, &re) || re.Msg != "remote boom" {
				t.Errorf("errors.As recovered %+v", re)
			}
			return nil
		}, mergeable.NewList[int]())
		if err != nil {
			t.Fatal(err)
		}
	})
}

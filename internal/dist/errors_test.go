package dist

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/task"
	"repro/internal/testutil"
)

// TestRemoteErrorClassification pins the typed-error contract: remote
// failures classify with errors.Is/errors.As, never by string matching.
func TestRemoteErrorClassification(t *testing.T) {
	err := RemoteError{Msg: "boom"}
	if !errors.Is(err, ErrRemoteFailed) {
		t.Error("errors.Is(RemoteError, ErrRemoteFailed) = false")
	}
	wrapped := fmt.Errorf("merge: %w", err)
	if !errors.Is(wrapped, ErrRemoteFailed) {
		t.Error("sentinel lost through wrapping")
	}
	var re RemoteError
	if !errors.As(wrapped, &re) || re.Msg != "boom" {
		t.Errorf("errors.As recovered %+v", re)
	}
	if !IsRemoteError(wrapped) {
		t.Error("IsRemoteError(wrapped) = false")
	}
	if errors.Is(wrapped, ErrTransport) {
		t.Error("remote failure misclassified as transport failure")
	}
}

// TestTransportErrorClassification covers the transport side of the
// split: the sentinel matches, and the underlying cause stays reachable.
func TestTransportErrorClassification(t *testing.T) {
	err := transportError{node: 3, err: fmt.Errorf("proxy recv: %w", io.EOF)}
	if !errors.Is(err, ErrTransport) {
		t.Error("errors.Is(transportError, ErrTransport) = false")
	}
	if !errors.Is(err, io.EOF) {
		t.Error("underlying cause lost")
	}
	if errors.Is(err, ErrRemoteFailed) {
		t.Error("transport failure misclassified as remote failure")
	}
	if !IsTransportError(fmt.Errorf("outer: %w", err)) {
		t.Error("IsTransportError lost through wrapping")
	}
}

// TestMembershipErrorTaxonomy pins the errors.Is classification of the
// membership error set, mirroring the transport/remote split above:
// every concrete error matches its own sentinel (even through wrapping)
// and nobody else's.
func TestMembershipErrorTaxonomy(t *testing.T) {
	draining := DrainingError{Node: 3}
	stale := StaleEpochError{Node: 1, Epoch: 7}
	noCoord := noCoordinatorError("spawn")

	sentinels := []struct {
		name     string
		sentinel error
	}{
		{"ErrDraining", ErrDraining},
		{"ErrStaleEpoch", ErrStaleEpoch},
		{"ErrNoCoordinator", ErrNoCoordinator},
		{"ErrTransport", ErrTransport},
		{"ErrRemoteFailed", ErrRemoteFailed},
	}
	cases := []struct {
		name string
		err  error
		want error // the one sentinel the error must classify as
	}{
		{"DrainingError", draining, ErrDraining},
		{"wrapped DrainingError", fmt.Errorf("merge: %w", draining), ErrDraining},
		{"StaleEpochError", stale, ErrStaleEpoch},
		{"wrapped StaleEpochError", fmt.Errorf("admin: %w", stale), ErrStaleEpoch},
		{"noCoordinatorError", noCoord, ErrNoCoordinator},
		{"wrapped noCoordinatorError", fmt.Errorf("run: %w", noCoord), ErrNoCoordinator},
	}
	for _, tc := range cases {
		for _, s := range sentinels {
			got := errors.Is(tc.err, s.sentinel)
			want := s.sentinel == tc.want
			if got != want {
				t.Errorf("errors.Is(%s, %s) = %v, want %v", tc.name, s.name, got, want)
			}
		}
	}
}

// TestMembershipErrorDetails: errors.As recovers the concrete types with
// their payloads intact, through wrapping.
func TestMembershipErrorDetails(t *testing.T) {
	var d DrainingError
	if !errors.As(fmt.Errorf("x: %w", DrainingError{Node: 5}), &d) || d.Node != 5 {
		t.Fatalf("errors.As(DrainingError) recovered node %d, want 5", d.Node)
	}
	var s StaleEpochError
	if !errors.As(fmt.Errorf("x: %w", StaleEpochError{Node: 2, Epoch: 9}), &s) || s.Node != 2 || s.Epoch != 9 {
		t.Fatalf("errors.As(StaleEpochError) = %+v", s)
	}
}

// TestMembershipHelperClassifiers: IsDraining/IsStaleEpoch agree with
// errors.Is and reject foreign errors, and the internal rebalance marker
// keeps its transport classification without leaking into the drain
// taxonomy.
func TestMembershipHelperClassifiers(t *testing.T) {
	if !IsDraining(DrainingError{Node: 0}) {
		t.Fatal("IsDraining rejected a DrainingError")
	}
	if IsDraining(StaleEpochError{}) || IsDraining(errors.New("other")) || IsDraining(nil) {
		t.Fatal("IsDraining matched a non-draining error")
	}
	if !IsStaleEpoch(StaleEpochError{}) {
		t.Fatal("IsStaleEpoch rejected a StaleEpochError")
	}
	if IsStaleEpoch(DrainingError{}) || IsStaleEpoch(nil) {
		t.Fatal("IsStaleEpoch matched a non-stale error")
	}
	rebalanced := transportError{node: 1, err: errRebalanced}
	if !IsTransportError(rebalanced) {
		t.Fatal("rebalance marker lost its transport classification")
	}
	if IsDraining(rebalanced) {
		t.Fatal("rebalance marker misclassified as a drain refusal")
	}
	if !errors.Is(rebalanced, errRebalanced) {
		t.Fatal("rebalance marker not matchable by errors.Is")
	}
}

// TestRemoteFailureClassifiesEndToEnd drives a real failing remote task
// and classifies the surfaced merge error with the sentinels.
func TestRemoteFailureClassifiesEndToEnd(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "fail", data[0])
			mergeErr := ctx.MergeAll()
			if !errors.Is(mergeErr, ErrRemoteFailed) {
				t.Errorf("MergeAll = %v, want ErrRemoteFailed", mergeErr)
			}
			if errors.Is(mergeErr, ErrTransport) {
				t.Errorf("remote failure misclassified as transport: %v", mergeErr)
			}
			var re RemoteError
			if !errors.As(mergeErr, &re) || re.Msg != "remote boom" {
				t.Errorf("errors.As recovered %+v", re)
			}
			return nil
		}, mergeable.NewList[int]())
		if err != nil {
			t.Fatal(err)
		}
	})
}

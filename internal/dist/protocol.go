package dist

import (
	"encoding/gob"
	"net"
	"time"

	"repro/internal/ot"
)

// The wire protocol: one stream connection per remote task, carrying gob
// envelopes. The coordinator-side proxy sends a spawn message, then the
// conversation alternates worker→coordinator sync/done messages with
// coordinator→worker replies. A second kind of conversation carries
// liveness probes: the coordinator dials one heartbeat connection per
// node and exchanges ping/pong envelopes on it.

type msgKind uint8

const (
	kindSpawn msgKind = iota + 1
	kindSync
	kindReply
	kindDone
	kindPing
	kindPong
)

// snapshot is one structure's serialized value plus the codec to decode
// it with.
type snapshot struct {
	Codec string
	Data  []byte
}

// opsOf wraps one structure's operation list (gob cannot encode a naked
// [][]ot.Op with interface elements reliably across versions; a named
// struct keeps the schema explicit).
type opsOf struct {
	Ops []ot.Op
}

// envelope is the single wire message type.
type envelope struct {
	Kind msgKind

	// kindSpawn: function name and the initial structure snapshots.
	Fn        string
	Snapshots []snapshot

	// kindSync, kindDone: the remote task's local operations per
	// structure since the last sync; kindDone also carries the task's
	// error, kindReply the merge outcome ("", "rejected" or "aborted")
	// and the refreshed snapshots.
	Ops []opsOf
	Err string
}

// peer wraps a connection with gob codecs and optional per-message
// deadlines. A timeout of zero disables the corresponding deadline; once
// a deadline expires the gob stream is poisoned and the peer must be
// discarded, which is exactly how the runtime treats it (the failure
// surfaces as a transport error and, where safe, triggers failover).
type peer struct {
	conn        net.Conn
	enc         *gob.Encoder
	dec         *gob.Decoder
	sendTimeout time.Duration
	recvTimeout time.Duration
}

func newPeer(conn net.Conn) *peer {
	return &peer{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// newPeerTimeouts builds a peer whose send and recv calls each carry a
// fresh deadline of the given duration (zero: no deadline).
func newPeerTimeouts(conn net.Conn, sendTimeout, recvTimeout time.Duration) *peer {
	p := newPeer(conn)
	p.sendTimeout = sendTimeout
	p.recvTimeout = recvTimeout
	return p
}

func (p *peer) send(e envelope) error {
	if p.sendTimeout > 0 {
		p.conn.SetWriteDeadline(time.Now().Add(p.sendTimeout))
		defer p.conn.SetWriteDeadline(time.Time{})
	}
	return p.enc.Encode(e)
}

func (p *peer) recv() (envelope, error) {
	if p.recvTimeout > 0 {
		p.conn.SetReadDeadline(time.Now().Add(p.recvTimeout))
		defer p.conn.SetReadDeadline(time.Time{})
	}
	var e envelope
	err := p.dec.Decode(&e)
	return e, err
}

func (p *peer) close() { p.conn.Close() }

package dist

import (
	"encoding/gob"
	"net"

	"repro/internal/ot"
)

// The wire protocol: one stream connection per remote task, carrying gob
// envelopes. The coordinator-side proxy sends a spawn message, then the
// conversation alternates worker→coordinator sync/done messages with
// coordinator→worker replies.

type msgKind uint8

const (
	kindSpawn msgKind = iota + 1
	kindSync
	kindReply
	kindDone
)

// snapshot is one structure's serialized value plus the codec to decode
// it with.
type snapshot struct {
	Codec string
	Data  []byte
}

// opsOf wraps one structure's operation list (gob cannot encode a naked
// [][]ot.Op with interface elements reliably across versions; a named
// struct keeps the schema explicit).
type opsOf struct {
	Ops []ot.Op
}

// envelope is the single wire message type.
type envelope struct {
	Kind msgKind

	// kindSpawn: function name and the initial structure snapshots.
	Fn        string
	Snapshots []snapshot

	// kindSync, kindDone: the remote task's local operations per
	// structure since the last sync; kindDone also carries the task's
	// error, kindReply the merge outcome ("", "rejected" or "aborted")
	// and the refreshed snapshots.
	Ops []opsOf
	Err string
}

// peer wraps a connection with gob codecs.
type peer struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func newPeer(conn net.Conn) *peer {
	return &peer{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (p *peer) send(e envelope) error { return p.enc.Encode(e) }

func (p *peer) recv() (envelope, error) {
	var e envelope
	err := p.dec.Decode(&e)
	return e, err
}

func (p *peer) close() { p.conn.Close() }

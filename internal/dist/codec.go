// Package dist extends Spawn & Merge to distributed computing — the
// second future-work item of the paper's conclusion ("we plan to apply
// the concept of Spawn and Merge to distributed computing by using MPI").
//
// A Cluster consists of worker nodes that share no memory with the
// coordinator: task data crosses node boundaries only as serialized
// snapshots and serialized operation lists, exactly like ranks in an MPI
// job. SpawnRemote ships snapshot copies of selected mergeable structures
// to a worker, which runs a registered function on them; the worker's
// recorded operations travel back on Sync and completion, where a local
// proxy task re-issues them — so the coordinator's standard deterministic
// merge machinery (MergeAll and friends) applies unchanged, and the
// determinism guarantees carry over to the distributed setting.
//
// Transport is the in-memory memnet substrate (the repository's hermetic
// stand-in for TCP/MPI); the protocol is ordinary gob over a stream and
// would run over real sockets unmodified.
package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/mergeable"
	"repro/internal/ot"
)

func init() {
	// Operations travel inside interface-typed slices; gob needs the
	// concrete types registered once.
	gob.Register(ot.SeqInsert{})
	gob.Register(ot.SeqDelete{})
	gob.Register(ot.SeqSet{})
	gob.Register(ot.TextInsert{})
	gob.Register(ot.TextDelete{})
	gob.Register(ot.CounterAdd{})
	gob.Register(ot.MapSet{})
	gob.Register(ot.MapDelete{})
	gob.Register(ot.SetAdd{})
	gob.Register(ot.SetRemove{})
	gob.Register(ot.RegisterSet{})
	gob.Register(ot.TreeInsert{})
	gob.Register(ot.TreeDelete{})
	gob.Register(ot.TreeSet{})
}

// Codec serializes one concrete mergeable structure type. Codecs are
// registered per cluster-visible name; the same registrations must exist
// on every node (they do automatically here, since nodes share the
// process — with real remote nodes the registration code ships with the
// binary, as with MPI).
type Codec interface {
	// Name is the codec's wire identifier.
	Name() string
	// Type is the concrete structure type this codec handles.
	Type() reflect.Type
	// Encode snapshots the structure's current value.
	Encode(m mergeable.Mergeable) ([]byte, error)
	// Decode rebuilds a structure from a snapshot, with a fresh log.
	Decode(data []byte) (mergeable.Mergeable, error)
}

// registry holds the process-global codec and function tables.
var registry = struct {
	sync.RWMutex
	byName map[string]Codec
	byType map[reflect.Type]Codec
	funcs  map[string]WorkerFunc
}{
	byName: make(map[string]Codec),
	byType: make(map[reflect.Type]Codec),
	funcs:  make(map[string]WorkerFunc),
}

// RegisterCodec installs a codec. Registering the same name twice
// replaces the previous codec (convenient for tests).
func RegisterCodec(c Codec) {
	registry.Lock()
	defer registry.Unlock()
	registry.byName[c.Name()] = c
	registry.byType[c.Type()] = c
}

func codecFor(m mergeable.Mergeable) (Codec, error) {
	registry.RLock()
	defer registry.RUnlock()
	c, ok := registry.byType[reflect.TypeOf(m)]
	if !ok {
		return nil, fmt.Errorf("dist: no codec registered for %T", m)
	}
	return c, nil
}

func codecByName(name string) (Codec, error) {
	registry.RLock()
	defer registry.RUnlock()
	c, ok := registry.byName[name]
	if !ok {
		return nil, fmt.Errorf("dist: no codec registered under %q", name)
	}
	return c, nil
}

// EncodeSnapshot serializes m with its registered codec, returning the
// codec's wire name alongside the bytes. The journal uses the same
// codecs for durable snapshots that the cluster uses for the wire, so a
// structure that can cross a node boundary can also cross a crash.
func EncodeSnapshot(m mergeable.Mergeable) (codec string, data []byte, err error) {
	c, err := codecFor(m)
	if err != nil {
		return "", nil, err
	}
	b, err := c.Encode(m)
	if err != nil {
		return "", nil, fmt.Errorf("dist: encode %T: %w", m, err)
	}
	return c.Name(), b, nil
}

// DecodeSnapshot rebuilds a structure from EncodeSnapshot's output.
func DecodeSnapshot(codec string, data []byte) (mergeable.Mergeable, error) {
	c, err := codecByName(codec)
	if err != nil {
		return nil, err
	}
	return c.Decode(data)
}

// funcCodec is the generic implementation backing the per-structure
// constructors below.
type funcCodec struct {
	name string
	typ  reflect.Type
	enc  func(mergeable.Mergeable) ([]byte, error)
	dec  func([]byte) (mergeable.Mergeable, error)
}

func (c funcCodec) Name() string                                    { return c.name }
func (c funcCodec) Type() reflect.Type                              { return c.typ }
func (c funcCodec) Encode(m mergeable.Mergeable) ([]byte, error)    { return c.enc(m) }
func (c funcCodec) Decode(data []byte) (mergeable.Mergeable, error) { return c.dec(data) }

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// RegisterListCodec registers a codec for *mergeable.List[T] under name
// and registers T's payload with gob.
func RegisterListCodec[T any](name string) {
	var zero T
	gob.Register(zero)
	RegisterCodec(funcCodec{
		name: name,
		typ:  reflect.TypeOf((*mergeable.List[T])(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.List[T]).Values())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var vals []T
			if err := gobDecode(data, &vals); err != nil {
				return nil, err
			}
			return mergeable.NewList(vals...), nil
		},
	})
}

// RegisterQueueCodec registers a codec for *mergeable.Queue[T].
func RegisterQueueCodec[T any](name string) {
	var zero T
	gob.Register(zero)
	RegisterCodec(funcCodec{
		name: name,
		typ:  reflect.TypeOf((*mergeable.Queue[T])(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.Queue[T]).Values())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var vals []T
			if err := gobDecode(data, &vals); err != nil {
				return nil, err
			}
			return mergeable.NewQueue(vals...), nil
		},
	})
}

// RegisterMapCodec registers a codec for *mergeable.Map[K,V].
func RegisterMapCodec[K comparable, V any](name string) {
	var zeroK K
	var zeroV V
	gob.Register(zeroK)
	gob.Register(zeroV)
	RegisterCodec(funcCodec{
		name: name,
		typ:  reflect.TypeOf((*mergeable.Map[K, V])(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			mm := m.(*mergeable.Map[K, V])
			out := make(map[K]V, mm.Len())
			for _, k := range mm.Keys() {
				v, _ := mm.Get(k)
				out[k] = v
			}
			return gobEncode(out)
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var vals map[K]V
			if err := gobDecode(data, &vals); err != nil {
				return nil, err
			}
			m := mergeable.NewMap[K, V]()
			for k, v := range vals {
				m.Set(k, v)
			}
			m.Log().TakeLocal() // snapshot reconstruction is not history
			return m, nil
		},
	})
}

// RegisterSetCodec registers a codec for *mergeable.Set[K].
func RegisterSetCodec[K comparable](name string) {
	var zero K
	gob.Register(zero)
	RegisterCodec(funcCodec{
		name: name,
		typ:  reflect.TypeOf((*mergeable.Set[K])(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.Set[K]).Values())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var vals []K
			if err := gobDecode(data, &vals); err != nil {
				return nil, err
			}
			return mergeable.NewSet(vals...), nil
		},
	})
}

// RegisterRegisterCodec registers a codec for *mergeable.Register[T].
func RegisterRegisterCodec[T any](name string) {
	var zero T
	gob.Register(zero)
	RegisterCodec(funcCodec{
		name: name,
		typ:  reflect.TypeOf((*mergeable.Register[T])(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.Register[T]).Get())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var v T
			if err := gobDecode(data, &v); err != nil {
				return nil, err
			}
			return mergeable.NewRegister(v), nil
		},
	})
}

func init() {
	// Counter and Text have no type parameters; register them eagerly.
	RegisterCodec(funcCodec{
		name: "counter",
		typ:  reflect.TypeOf((*mergeable.Counter)(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.Counter).Value())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var v int64
			if err := gobDecode(data, &v); err != nil {
				return nil, err
			}
			return mergeable.NewCounter(v), nil
		},
	})
	RegisterCodec(funcCodec{
		name: "text",
		typ:  reflect.TypeOf((*mergeable.Text)(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.Text).String())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var s string
			if err := gobDecode(data, &s); err != nil {
				return nil, err
			}
			return mergeable.NewText(s), nil
		},
	})
}

// RegisterFastListCodec registers a codec for *mergeable.FastList[T].
func RegisterFastListCodec[T any](name string) {
	var zero T
	gob.Register(zero)
	RegisterCodec(funcCodec{
		name: name,
		typ:  reflect.TypeOf((*mergeable.FastList[T])(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.FastList[T]).Values())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var vals []T
			if err := gobDecode(data, &vals); err != nil {
				return nil, err
			}
			return mergeable.NewFastList(vals...), nil
		},
	})
}

// RegisterFastQueueCodec registers a codec for *mergeable.FastQueue[T].
func RegisterFastQueueCodec[T any](name string) {
	var zero T
	gob.Register(zero)
	RegisterCodec(funcCodec{
		name: name,
		typ:  reflect.TypeOf((*mergeable.FastQueue[T])(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.FastQueue[T]).Values())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var vals []T
			if err := gobDecode(data, &vals); err != nil {
				return nil, err
			}
			return mergeable.NewFastQueue(vals...), nil
		},
	})
}

// RegisterTreeCodec registers the codec for *mergeable.Tree. Node values
// travel as gob interface payloads, so callers must gob.Register every
// concrete value type their trees hold (strings and numbers work out of
// the box).
func RegisterTreeCodec(name string) {
	RegisterCodec(funcCodec{
		name: name,
		typ:  reflect.TypeOf((*mergeable.Tree)(nil)),
		enc: func(m mergeable.Mergeable) ([]byte, error) {
			return gobEncode(m.(*mergeable.Tree).Snapshot())
		},
		dec: func(data []byte) (mergeable.Mergeable, error) {
			var root *ot.TreeNode
			if err := gobDecode(data, &root); err != nil {
				return nil, err
			}
			return mergeable.NewTreeFromSnapshot(root), nil
		},
	})
}

// RegisterFunc installs a worker function under a cluster-visible name —
// the distributed analogue of passing a function to Spawn (closures
// cannot cross address spaces, so remote task bodies are named, as in
// every MPI program).
func RegisterFunc(name string, fn WorkerFunc) {
	registry.Lock()
	defer registry.Unlock()
	registry.funcs[name] = fn
}

func funcByName(name string) (WorkerFunc, error) {
	registry.RLock()
	defer registry.RUnlock()
	fn, ok := registry.funcs[name]
	if !ok {
		return nil, fmt.Errorf("dist: no function registered under %q", name)
	}
	return fn, nil
}

package dist

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memnet"
	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/task"
)

// Listener abstracts the transport a worker node listens on. The memnet
// listener satisfies it directly; faultnet wraps one with deterministic
// fault injection so the whole distributed runtime can run under chaos.
type Listener interface {
	Accept() (net.Conn, error)
	Dial() (net.Conn, error)
	Close() error
}

// RouteJournal records and replays the coordinator's failover routing
// decisions. With one attached, every SpawnRemote's effective target —
// the requested node, and each failover re-target after it — is recorded
// under the proxy task's stable path, and a restarted coordinator
// re-drives its fan-out to the nodes the previous run settled on instead
// of re-deriving placement from current health. The journal package's
// *Journal satisfies this interface and makes the record durable.
type RouteJournal interface {
	// RecordRoute durably notes that slot's task runs on node.
	RecordRoute(slot string, node int)
	// NextRoute returns the recorded node for slot, if any.
	NextRoute(slot string) (node int, ok bool)
}

// RetryPolicy governs how SpawnRemote survives transport trouble.
type RetryPolicy struct {
	// MaxAttempts is the total number of spawn attempts across nodes
	// (the first execution plus failovers). Zero means the default (2);
	// negative disables failover entirely (exactly one attempt).
	MaxAttempts int
	// DialRetries is how many extra dials to try against one node after
	// the first fails, with capped exponential backoff between them.
	// Zero means the default (2); negative disables retries.
	DialRetries int
	// BaseBackoff is the first retry's backoff; it doubles per retry up
	// to MaxBackoff. Zeros mean the defaults (5ms and 250ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// Options configures a cluster. The zero value of every field selects a
// hardened default; pass a negative duration to disable that mechanism.
type Options struct {
	// Nodes is the number of worker nodes.
	Nodes int
	// Retry is the failover policy applied to every SpawnRemote.
	Retry RetryPolicy
	// SendTimeout and RecvTimeout are the per-message deadlines applied
	// to every protocol conversation, on both the coordinator and the
	// worker side. Defaults: 30s for sends (a send is consumed promptly
	// by a healthy peer) and 2m for recvs (a recv legitimately spans the
	// peer's compute or merge time). Negative disables the deadline.
	SendTimeout time.Duration
	RecvTimeout time.Duration
	// HeartbeatInterval is how often the coordinator pings each node;
	// HeartbeatTimeout bounds each ping/pong round trip. A node that
	// misses a round is marked unhealthy (and recovers on the next
	// successful round), so a silent partition is detected within
	// roughly HeartbeatInterval + HeartbeatTimeout. Defaults: 250ms and
	// 2s. Negative HeartbeatInterval disables heartbeats.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Listen builds node i's transport listener. Nil selects plain
	// memnet; chaos tests pass a faultnet factory.
	Listen func(node int) Listener
	// Journal, when non-nil, records and replays failover routing (see
	// RouteJournal). Nil disables coordinator journaling.
	Journal RouteJournal
	// Obs, when non-nil, receives RPC spans (rpc.send, rpc.recv,
	// failover) on each proxy task's track, alongside whatever the task
	// runtime itself records. Nil — the default — costs nothing.
	Obs *obs.Tracer
}

// normalized resolves defaults; negative durations collapse to zero,
// which the peer layer treats as "no deadline".
func (o Options) normalized() Options {
	def := func(v, d time.Duration) time.Duration {
		switch {
		case v == 0:
			return d
		case v < 0:
			return 0
		}
		return v
	}
	o.SendTimeout = def(o.SendTimeout, 30*time.Second)
	o.RecvTimeout = def(o.RecvTimeout, 2*time.Minute)
	o.HeartbeatInterval = def(o.HeartbeatInterval, 250*time.Millisecond)
	o.HeartbeatTimeout = def(o.HeartbeatTimeout, 2*time.Second)
	switch {
	case o.Retry.MaxAttempts == 0:
		o.Retry.MaxAttempts = 2
	case o.Retry.MaxAttempts < 0:
		o.Retry.MaxAttempts = 1
	}
	switch {
	case o.Retry.DialRetries == 0:
		o.Retry.DialRetries = 2
	case o.Retry.DialRetries < 0:
		o.Retry.DialRetries = 0
	}
	if o.Retry.BaseBackoff == 0 {
		o.Retry.BaseBackoff = 5 * time.Millisecond
	}
	if o.Retry.MaxBackoff == 0 {
		o.Retry.MaxBackoff = 250 * time.Millisecond
	}
	if o.Listen == nil {
		o.Listen = func(int) Listener { return memnet.Listen(64) }
	}
	return o
}

// Cluster is a set of worker nodes reachable from the coordinator. Nodes
// share no memory with the coordinator or each other: all state crosses
// as serialized snapshots and operations (the MPI model, over the memnet
// transport, optionally behind a fault-injecting wrapper).
//
// Membership is elastic: the node table is copy-on-write (readers load it
// lock-free; Join/Drain/Leave/Close swap it under memMu, which serializes
// every transition and gives the epoch counter its total order). Node ids
// are stable forever — a departed member stays in the table as a
// tombstone so journaled placements keep resolving.
type Cluster struct {
	members  atomic.Pointer[[]*workerNode]
	opts     Options
	counters *stats.Counters

	// memMu serializes membership transitions (and Close); epoch stamps
	// them; closed gates every coordinator entry point.
	memMu  sync.Mutex
	epoch  atomic.Uint64
	closed atomic.Bool

	// watchers is the membership event fan-out (see MemberWatch).
	watchMu  sync.Mutex
	watchers map[*MemberWatch]struct{}

	// inflightSet tracks live task conversations so drains can shed the
	// pre-progress ones (see inflight).
	flMu        sync.Mutex
	inflightSet map[*inflight]struct{}

	stop     chan struct{}
	stopOnce sync.Once
	hbWG     sync.WaitGroup
}

// NewCluster starts n worker nodes with default hardening (deadlines,
// heartbeats, dial retry and single-failover policy).
func NewCluster(n int) *Cluster {
	return NewClusterWith(Options{Nodes: n})
}

// NewClusterWith starts a cluster with explicit options.
func NewClusterWith(opts Options) *Cluster {
	opts = opts.normalized()
	c := &Cluster{
		opts:        opts,
		counters:    stats.NewCounters(),
		watchers:    make(map[*MemberWatch]struct{}),
		inflightSet: make(map[*inflight]struct{}),
		stop:        make(chan struct{}),
	}
	nodes := make([]*workerNode, 0, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		nodes = append(nodes, newWorkerNode(i, opts.Listen(i), opts))
	}
	c.members.Store(&nodes)
	if opts.HeartbeatInterval > 0 {
		for _, n := range nodes {
			c.hbWG.Add(1)
			go c.heartbeatLoop(n)
		}
	}
	return c
}

// nodeList loads the current membership table (including tombstones).
func (c *Cluster) nodeList() []*workerNode { return *c.members.Load() }

// Size returns the number of worker nodes ever admitted, departed
// members included (node ids are never reused).
func (c *Cluster) Size() int { return len(c.nodeList()) }

// Stats exposes the cluster's fault-tolerance counters ("failover",
// "transport_error", "dial_retry", "dial_fail", "heartbeat_miss",
// "node_unhealthy", and the membership set: "member_join",
// "member_drain", "member_leave", "rebalance", "placement_redirect",
// "drain_refused", "route_stale", "watch_lagged", "leave_forced").
func (c *Cluster) Stats() *stats.Counters { return c.counters }

// Healthy reports the coordinator's current view of a node. Out-of-range
// nodes are unhealthy by definition.
func (c *Cluster) Healthy(node int) bool {
	nodes := c.nodeList()
	if node < 0 || node >= len(nodes) {
		return false
	}
	return nodes[node].healthy.Load()
}

// KillNode simulates the failure of a single node: its listener closes
// and every in-flight connection it hosts is torn down. Remote tasks on
// the node die; tasks that had not yet merged anything fail over to a
// healthy node under the cluster's retry policy. On a closed cluster
// every node is already down, so KillNode is a no-op.
func (c *Cluster) KillNode(node int) {
	if c.closed.Load() {
		return
	}
	nodes := c.nodeList()
	if node < 0 || node >= len(nodes) {
		return
	}
	nodes[node].close()
	c.markUnhealthy(nodes[node])
}

// Close shuts the cluster down. Remote tasks already running finish their
// current conversation and die with their connections. Open membership
// watches close with the cluster.
func (c *Cluster) Close() {
	c.memMu.Lock()
	already := c.closed.Swap(true)
	c.memMu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
	c.hbWG.Wait()
	for _, n := range c.nodeList() {
		n.close()
	}
	if !already {
		c.watchMu.Lock()
		for w := range c.watchers {
			w.closeCh(false)
		}
		c.watchers = make(map[*MemberWatch]struct{})
		c.watchMu.Unlock()
	}
}

func (c *Cluster) markUnhealthy(n *workerNode) {
	if n.healthy.CompareAndSwap(true, false) {
		c.counters.Inc("node_unhealthy")
	}
}

// heartbeatLoop is the coordinator→worker liveness probe for one node:
// one dedicated connection, one ping/pong round per interval. A failed
// round (dial, send, recv or wrong kind) marks the node unhealthy and
// discards the connection; a successful round marks it healthy again, so
// partitioned nodes recover automatically after Heal.
func (c *Cluster) heartbeatLoop(n *workerNode) {
	defer c.hbWG.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	var p *peer
	defer func() {
		if p != nil {
			p.close()
		}
	}()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		if MemberState(n.state.Load()) == StateLeft {
			// A departed member stays in the table only as a tombstone;
			// probing its closed listener would just mint miss counters.
			return
		}
		if p == nil {
			conn, err := n.listener.Dial()
			if err != nil {
				c.counters.Inc("heartbeat_miss")
				c.markUnhealthy(n)
				continue
			}
			p = newPeerTimeouts(conn, c.opts.HeartbeatTimeout, c.opts.HeartbeatTimeout)
		}
		if err := p.send(envelope{Kind: kindPing}); err == nil {
			if msg, err := p.recv(); err == nil && msg.Kind == kindPong {
				n.healthy.Store(true)
				continue
			}
		}
		p.close()
		p = nil
		c.counters.Inc("heartbeat_miss")
		c.markUnhealthy(n)
	}
}

// dialNode dials a node's listener with capped exponential backoff. A
// node that stays undialable is marked unhealthy.
func (c *Cluster) dialNode(n *workerNode) (net.Conn, error) {
	backoff := c.opts.Retry.BaseBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retry.DialRetries; attempt++ {
		if attempt > 0 {
			c.counters.Inc("dial_retry")
			time.Sleep(backoff)
			backoff *= 2
			if backoff > c.opts.Retry.MaxBackoff {
				backoff = c.opts.Retry.MaxBackoff
			}
		}
		conn, err := n.listener.Dial()
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	c.counters.Inc("dial_fail")
	c.markUnhealthy(n)
	return nil, fmt.Errorf("dial: %w", lastErr)
}

// SpawnRemote spawns a task whose body runs on worker node `node`,
// executing the function registered under fnName with snapshot copies of
// data. The returned handle is an ordinary *task.Task: the local child is
// a proxy that replays the remote operations, so every Merge flavor,
// Sync-merge, condition function and Abort works on remote tasks exactly
// as on local ones — including the determinism of MergeAll ordering.
//
// Under the cluster's RetryPolicy the proxy also survives node failure:
// if the conversation dies on a transport error before any of the remote
// task's operations have been merged, the proxy re-spawns the registered
// function on the next healthy node from the original snapshots. The
// replacement execution starts from identical state and its operations
// replay through the same proxy slot, so MergeAll ordering and the final
// merged state are bit-identical to a fault-free run. Once a sync round
// has been processed the remote task's effects are part of the global
// state and the failure surfaces as an error instead (re-execution would
// double-apply).
func (c *Cluster) SpawnRemote(ctx *task.Ctx, node int, fnName string, data ...mergeable.Mergeable) *task.Task {
	return c.spawnRemote(ctx, node, fnName, nil, data)
}

// SpawnRemoteMany spawns the registered function on each of the given
// nodes over snapshot copies of the same data — the fan-out shape of a
// scatter phase. The structures are serialized exactly once, in the
// calling task's goroutine before any proxy starts, and the encoded bytes
// are shared by every node's spawn message and by any failover re-spawn:
// snapshots are immutable once encoded, so sharing is safe, and a K-node
// fan-out pays one encode instead of K. Every returned handle is an
// ordinary *task.Task with the same merge/failover semantics as
// SpawnRemote.
//
// The error is an encoding error only; it is returned before any task is
// spawned, so the caller never has stray children to collect.
func (c *Cluster) SpawnRemoteMany(ctx *task.Ctx, nodes []int, fnName string, data ...mergeable.Mergeable) ([]*task.Task, error) {
	// Encoding reads the live structures, so it must happen here — in the
	// calling task's goroutine, before it can mutate them further — for the
	// bytes to equal what each proxy's own spawn-time snapshot would hold.
	snaps, err := encodeSnapshots(data)
	if err != nil {
		return nil, err
	}
	tasks := make([]*task.Task, len(nodes))
	for i, node := range nodes {
		tasks[i] = c.spawnRemote(ctx, node, fnName, snaps, data)
	}
	return tasks, nil
}

// spawnRemote builds the local proxy task behind SpawnRemote and
// SpawnRemoteMany. shared, when non-nil, is the pre-encoded snapshot set
// the proxy ships instead of encoding its own copies; the codecs encode
// values only (never log state), so the caller's encode of the live
// structures and the proxy's encode of its spawn-time copies are
// byte-identical.
func (c *Cluster) spawnRemote(ctx *task.Ctx, node int, fnName string, shared []snapshot, data []mergeable.Mergeable) *task.Task {
	return ctx.Spawn(func(ctx *task.Ctx, copies []mergeable.Mergeable) error {
		if c.closed.Load() {
			return noCoordinatorError("spawn")
		}
		nodes := c.nodeList()
		if node < 0 || node >= len(nodes) {
			return fmt.Errorf("dist: no worker node %d", node)
		}
		// The original snapshots, kept for failover re-spawns.
		snaps := shared
		if snaps == nil {
			var err error
			snaps, err = encodeSnapshots(copies)
			if err != nil {
				return err
			}
		}
		target := node
		// A drained (or departed) request target is redirected to the
		// next placeable member, by the same positional scan failover
		// uses — placement never depends on timing, only on the member
		// table the epoch ordered.
		if MemberState(nodes[target].state.Load()) != StateActive {
			next, ok := c.nextPlaceable(target)
			if !ok {
				if d, some := c.anyDraining(); some {
					return DrainingError{Node: d}
				}
				return fmt.Errorf("dist: no placeable node for task (requested %d)", node)
			}
			c.counters.Inc("placement_redirect")
			target = next
		}
		if j := c.opts.Journal; j != nil {
			// The proxy task's creation path is stable across runs — the
			// journal keys routing by it. A recorded route means a prior
			// (crashed) coordinator already drove this slot's failover;
			// re-drive it to the same node instead of starting over. A
			// route pointing at a member that has since departed is
			// stale: ignore it and place afresh.
			slot := ctx.Path()
			if n, ok := j.NextRoute(slot); ok {
				if n >= 0 && n < len(nodes) && MemberState(nodes[n].state.Load()) != StateLeft {
					if n != target {
						c.counters.Inc("route_replayed")
					}
					target = n
				} else {
					c.counters.Inc("route_stale")
				}
			}
			j.RecordRoute(slot, target)
		}
		for attempt := 1; ; attempt++ {
			fl := &inflight{node: target}
			err := c.runRemote(ctx, target, fnName, snaps, copies, fl)
			if err == nil {
				return nil
			}
			rebalanced := errors.Is(err, errRebalanced)
			refused := IsDraining(err)
			if fl.hasProgressed() || !(IsTransportError(err) || refused) || attempt >= c.opts.Retry.MaxAttempts {
				return err
			}
			switch {
			case rebalanced:
				// Counted by the drain that tore the conversation down.
			case refused:
				c.counters.Inc("drain_refused")
			default:
				c.counters.Inc("transport_error")
			}
			next, ok := c.nextPlaceable(target)
			if !ok {
				if d, some := c.anyDraining(); some {
					return DrainingError{Node: d}
				}
				return fmt.Errorf("dist: no healthy node for failover: %w", err)
			}
			if rebalanced || refused {
				if tr := c.opts.Obs; tr != nil {
					tr.Emit(ctx.Path(), obs.KindRebalance, fmt.Sprintf("%d->%d", target, next), -1, 0, 0)
				}
			} else {
				c.counters.Inc("failover")
				if tr := c.opts.Obs; tr != nil {
					tr.Emit(ctx.Path(), obs.KindFailover, fmt.Sprintf("%d->%d", target, next), -1, 0, 0)
				}
			}
			target = next
			if j := c.opts.Journal; j != nil {
				j.RecordRoute(ctx.Path(), target)
			}
		}
	}, data...)
}

// runRemote performs one spawn attempt against one node: dial, ship the
// snapshots, then relay until completion. fl is the conversation's
// registration in the in-flight set: it flips to progressed as soon as
// any remote operations have been merged into the coordinator's state —
// the point past which failover is no longer sound — and a drain may
// cancel it any time before that.
func (c *Cluster) runRemote(ctx *task.Ctx, node int, fnName string, snaps []snapshot, copies []mergeable.Mergeable, fl *inflight) error {
	tr := c.opts.Obs
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	conn, err := c.dialNode(c.nodeList()[node])
	if err != nil {
		return transportError{node: node, err: err}
	}
	fl.conn = conn
	c.trackInflight(fl)
	defer c.untrackInflight(fl)
	p := newPeerTimeouts(conn, c.opts.SendTimeout, c.opts.RecvTimeout)
	defer p.close()
	if err := p.send(envelope{Kind: kindSpawn, Fn: fnName, Snapshots: snaps}); err != nil {
		if fl.interrupted() {
			return transportError{node: node, err: errRebalanced}
		}
		return transportError{node: node, err: fmt.Errorf("spawn send: %w", err)}
	}
	if tr != nil {
		// Dial plus snapshot shipping: the distributed spawn's constant cost.
		tr.Emit(ctx.Path(), obs.KindSend, fmt.Sprintf("spawn@%d", node), -1, int64(len(snaps)), time.Since(start))
	}
	return c.proxyLoop(ctx, node, p, copies, fl)
}

// proxyLoop relays between the remote task and the local runtime: remote
// operations are re-issued as the proxy's own, remote syncs become local
// syncs, remote completion completes the proxy.
func (c *Cluster) proxyLoop(ctx *task.Ctx, node int, p *peer, copies []mergeable.Mergeable, fl *inflight) error {
	tr := c.opts.Obs
	var track string
	if tr != nil {
		track = ctx.Path()
	}
	for {
		var recvStart time.Time
		if tr != nil {
			recvStart = time.Now()
		}
		msg, err := p.recv()
		if err != nil {
			if fl.interrupted() {
				return transportError{node: node, err: errRebalanced}
			}
			return transportError{node: node, err: fmt.Errorf("proxy recv: %w", err)}
		}
		if tr != nil {
			name := "sync"
			if msg.Kind == kindDone {
				name = "done"
			}
			// The duration covers the wait for the remote task's compute —
			// rpc.recv latency is where a distributed run's time actually
			// goes, which is exactly what the histogram should show.
			tr.Emit(track, obs.KindRecv, fmt.Sprintf("%s@%d", name, node), -1, countOps(msg.Ops), time.Since(recvStart))
		}
		switch msg.Kind {
		case kindSync:
			// From here on the remote ops enter the coordinator's merge
			// pipeline; a later failure must not re-execute the task. A
			// drain that cancelled the conversation first wins the race:
			// the message is discarded unmerged and the task re-spawns
			// from its original snapshot elsewhere.
			if !fl.markProgressed() {
				return transportError{node: node, err: errRebalanced}
			}
			if err := replayOps(copies, msg.Ops); err != nil {
				return err
			}
			syncErr := ctx.Sync()
			reply := envelope{Kind: kindReply}
			switch {
			case errors.Is(syncErr, task.ErrAborted):
				reply.Err = wireAborted
				if err := p.send(reply); err != nil {
					return transportError{node: node, err: fmt.Errorf("proxy reply: %w", err)}
				}
				return task.ErrAborted
			case errors.Is(syncErr, task.ErrMergeRejected):
				reply.Err = wireRejected
			case syncErr != nil:
				return syncErr
			}
			snaps, err := encodeSnapshots(copies)
			if err != nil {
				return err
			}
			reply.Snapshots = snaps
			var sendStart time.Time
			if tr != nil {
				sendStart = time.Now()
			}
			if err := p.send(reply); err != nil {
				return transportError{node: node, err: fmt.Errorf("proxy reply: %w", err)}
			}
			if tr != nil {
				tr.Emit(track, obs.KindSend, fmt.Sprintf("reply@%d", node), -1, int64(len(reply.Snapshots)), time.Since(sendStart))
			}
		case kindDone:
			if msg.Err == wireDraining {
				// The drain landed worker-side before the task started:
				// nothing ran, re-place on an active member.
				return DrainingError{Node: node}
			}
			if msg.Err != "" {
				// A failed remote task contributes nothing, like a failed
				// local task; skip the replay and surface the error.
				return RemoteError{Msg: msg.Err}
			}
			// Completion is progress too: past this point the ops are
			// about to merge, so a racing drain must not double-run the
			// task. If the drain won, discard and re-spawn.
			if !fl.markProgressed() {
				return transportError{node: node, err: errRebalanced}
			}
			if err := replayOps(copies, msg.Ops); err != nil {
				return err
			}
			return nil
		default:
			// A stream that delivers an impossible kind is corrupt —
			// treat it like any other transport failure.
			return transportError{node: node, err: fmt.Errorf("unexpected message kind %d", msg.Kind)}
		}
	}
}

func encodeSnapshots(data []mergeable.Mergeable) ([]snapshot, error) {
	snaps := make([]snapshot, len(data))
	for i, m := range data {
		codec, err := codecFor(m)
		if err != nil {
			return nil, err
		}
		b, err := codec.Encode(m)
		if err != nil {
			return nil, fmt.Errorf("dist: encode %T: %w", m, err)
		}
		snaps[i] = snapshot{Codec: codec.Name(), Data: b}
	}
	return snaps, nil
}

// countOps totals the operations in a relayed message, for span op
// counts.
func countOps(ops []opsOf) int64 {
	var n int64
	for _, o := range ops {
		n += int64(len(o.Ops))
	}
	return n
}

func replayOps(copies []mergeable.Mergeable, ops []opsOf) error {
	if len(ops) != len(copies) {
		return fmt.Errorf("dist: remote sent ops for %d structures, have %d", len(ops), len(copies))
	}
	for i, o := range ops {
		if err := mergeable.ReplayAsLocal(copies[i], o.Ops); err != nil {
			return fmt.Errorf("dist: replay remote ops: %w", err)
		}
	}
	return nil
}

package dist

import (
	"errors"
	"fmt"

	"repro/internal/mergeable"
	"repro/internal/task"
)

// Cluster is a set of worker nodes reachable from the coordinator. Nodes
// share no memory with the coordinator or each other: all state crosses
// as serialized snapshots and operations (the MPI model, over the memnet
// transport).
type Cluster struct {
	nodes []*workerNode
}

// NewCluster starts n worker nodes.
func NewCluster(n int) *Cluster {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, newWorkerNode(i))
	}
	return c
}

// Size returns the number of worker nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Close shuts the cluster down. Remote tasks already running finish their
// current conversation and die with their connections.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.close()
	}
}

// SpawnRemote spawns a task whose body runs on worker node `node`,
// executing the function registered under fnName with snapshot copies of
// data. The returned handle is an ordinary *task.Task: the local child is
// a proxy that replays the remote operations, so every Merge flavor,
// Sync-merge, condition function and Abort works on remote tasks exactly
// as on local ones — including the determinism of MergeAll ordering.
func (c *Cluster) SpawnRemote(ctx *task.Ctx, node int, fnName string, data ...mergeable.Mergeable) *task.Task {
	return ctx.Spawn(func(ctx *task.Ctx, copies []mergeable.Mergeable) error {
		if node < 0 || node >= len(c.nodes) {
			return fmt.Errorf("dist: no worker node %d", node)
		}
		conn, err := c.nodes[node].listener.Dial()
		if err != nil {
			return fmt.Errorf("dist: dial node %d: %w", node, err)
		}
		p := newPeer(conn)
		defer p.close()

		spawn := envelope{Kind: kindSpawn, Fn: fnName}
		snaps, err := encodeSnapshots(copies)
		if err != nil {
			return err
		}
		spawn.Snapshots = snaps
		if err := p.send(spawn); err != nil {
			return fmt.Errorf("dist: spawn send: %w", err)
		}
		return c.proxyLoop(ctx, p, copies)
	}, data...)
}

// proxyLoop relays between the remote task and the local runtime: remote
// operations are re-issued as the proxy's own, remote syncs become local
// syncs, remote completion completes the proxy.
func (c *Cluster) proxyLoop(ctx *task.Ctx, p *peer, copies []mergeable.Mergeable) error {
	for {
		msg, err := p.recv()
		if err != nil {
			return fmt.Errorf("dist: proxy recv: %w", err)
		}
		switch msg.Kind {
		case kindSync:
			if err := replayOps(copies, msg.Ops); err != nil {
				return err
			}
			syncErr := ctx.Sync()
			reply := envelope{Kind: kindReply}
			switch {
			case errors.Is(syncErr, task.ErrAborted):
				reply.Err = wireAborted
				if err := p.send(reply); err != nil {
					return fmt.Errorf("dist: proxy reply: %w", err)
				}
				return task.ErrAborted
			case errors.Is(syncErr, task.ErrMergeRejected):
				reply.Err = wireRejected
			case syncErr != nil:
				return syncErr
			}
			snaps, err := encodeSnapshots(copies)
			if err != nil {
				return err
			}
			reply.Snapshots = snaps
			if err := p.send(reply); err != nil {
				return fmt.Errorf("dist: proxy reply: %w", err)
			}
		case kindDone:
			if msg.Err != "" {
				// A failed remote task contributes nothing, like a failed
				// local task; skip the replay and surface the error.
				return errRemote{msg: msg.Err}
			}
			if err := replayOps(copies, msg.Ops); err != nil {
				return err
			}
			return nil
		default:
			return fmt.Errorf("dist: unexpected message kind %d", msg.Kind)
		}
	}
}

func encodeSnapshots(data []mergeable.Mergeable) ([]snapshot, error) {
	snaps := make([]snapshot, len(data))
	for i, m := range data {
		codec, err := codecFor(m)
		if err != nil {
			return nil, err
		}
		b, err := codec.Encode(m)
		if err != nil {
			return nil, fmt.Errorf("dist: encode %T: %w", m, err)
		}
		snaps[i] = snapshot{Codec: codec.Name(), Data: b}
	}
	return snaps, nil
}

func replayOps(copies []mergeable.Mergeable, ops []opsOf) error {
	if len(ops) != len(copies) {
		return fmt.Errorf("dist: remote sent ops for %d structures, have %d", len(ops), len(copies))
	}
	for i, o := range ops {
		if err := mergeable.ReplayAsLocal(copies[i], o.Ops); err != nil {
			return fmt.Errorf("dist: replay remote ops: %w", err)
		}
	}
	return nil
}

package dist

import (
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// fakeRouteJournal is an in-memory RouteJournal for unit-testing the
// coordinator's record/replay hooks; the durable implementation lives in
// internal/journal and is integration-tested there.
type fakeRouteJournal struct {
	mu     sync.Mutex
	routes map[string]int
}

func newFakeRouteJournal() *fakeRouteJournal {
	return &fakeRouteJournal{routes: make(map[string]int)}
}

func (f *fakeRouteJournal) RecordRoute(slot string, node int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.routes[slot] = node
}

func (f *fakeRouteJournal) NextRoute(slot string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.routes[slot]
	return n, ok
}

// TestRouteJournalRecordsFailover: with a journal attached, a spawn that
// fails over leaves the slot pointing at the node the task finally ran
// on, not the one originally requested.
func TestRouteJournalRecordsFailover(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		j := newFakeRouteJournal()
		cluster := NewClusterWith(Options{
			Nodes:       2,
			RecvTimeout: 5 * time.Second,
			Journal:     j,
		})
		defer cluster.Close()
		fp, _ := failoverScenario(t, cluster, true)
		if fp == 0 {
			t.Fatal("scenario produced zero fingerprint")
		}
		if got := cluster.Stats().Get("failover"); got != 1 {
			t.Fatalf("failover counter = %d, want 1", got)
		}
		if n, ok := j.NextRoute("r/0"); !ok || n != 1 {
			t.Fatalf("journaled route for r/0 = %d,%v, want 1,true (the failover target)", n, ok)
		}
	})
}

// TestRouteJournalReplayRedirectsSpawn: a coordinator restarted with the
// routes of a crashed run re-drives each slot to the node that run
// settled on — no failover dance, identical result.
func TestRouteJournalReplayRedirectsSpawn(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		clean := NewCluster(2)
		want, _ := failoverScenario(t, clean, false)
		clean.Close()

		j := newFakeRouteJournal()
		j.RecordRoute("r/0", 1) // what a crashed coordinator's failover left behind
		cluster := NewClusterWith(Options{
			Nodes:       2,
			RecvTimeout: 5 * time.Second,
			Journal:     j,
		})
		defer cluster.Close()
		got, _ := failoverScenario(t, cluster, false) // requests node 0; journal redirects
		if got != want {
			t.Fatalf("fingerprint via replayed route = %x, want %x", got, want)
		}
		if c := cluster.Stats().Get("route_replayed"); c != 1 {
			t.Fatalf("route_replayed counter = %d, want 1", c)
		}
		if c := cluster.Stats().Get("failover"); c != 0 {
			t.Fatalf("failover counter = %d, want 0 (replay is not a failover)", c)
		}
	})
}

// TestRouteJournalIgnoresStaleNode: a journaled route pointing outside
// the current cluster (smaller restart topology) is ignored rather than
// crashing the spawn.
func TestRouteJournalIgnoresStaleNode(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		clean := NewCluster(2)
		want, _ := failoverScenario(t, clean, false)
		clean.Close()

		j := newFakeRouteJournal()
		j.RecordRoute("r/0", 7) // node that no longer exists
		cluster := NewClusterWith(Options{Nodes: 2, RecvTimeout: 5 * time.Second, Journal: j})
		defer cluster.Close()
		got, _ := failoverScenario(t, cluster, false)
		if got != want {
			t.Fatalf("fingerprint with stale route = %x, want %x", got, want)
		}
		if n, _ := j.NextRoute("r/0"); n != 0 {
			t.Fatalf("stale route not overwritten by the actual placement, still %d", n)
		}
	})
}

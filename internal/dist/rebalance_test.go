package dist

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/task"
	"repro/internal/testutil"
)

// rebalanceScenario runs the canonical drain workload: one gated remote
// task placed on node 0 plus parent-side appends. When drain is true,
// node 0 starts draining while the remote execution is parked before its
// first (and only) merge, so the cluster must tear the conversation down
// and re-spawn the task from its original snapshot on node 1. Returns
// the combined fingerprint and the list values.
func rebalanceScenario(t testing.TB, cluster *Cluster, drain bool) (uint64, []int) {
	t.Helper()
	list := mergeable.NewList[int]()
	cnt := mergeable.NewCounter(0)
	gate := newKillGate()
	if drain {
		curGate.Store(gate)
	} else {
		curGate.Store(nil)
	}
	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		h := cluster.SpawnRemote(ctx, 0, "failover-work", l, data[1])
		if drain {
			<-gate.started // the doomed execution is live on node 0
			if err := cluster.Drain(0); err != nil {
				return err
			}
			close(gate.release)
		}
		l.Append(99)
		return ctx.MergeAllFromSet([]*task.Task{h})
	}, list, cnt)
	if err != nil {
		t.Fatal(err)
	}
	return mergeable.CombineFingerprints(list.Fingerprint(), cnt.Fingerprint()), list.Values()
}

// TestRebalanceMidFlight: draining the node that hosts a pre-progress
// task moves the task, and the merged state is bit-identical to a run
// where the task never moved.
func TestRebalanceMidFlight(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		clean := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1})
		wantFP, wantVals := rebalanceScenario(t, clean, false)
		clean.Close()

		churned := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1, RecvTimeout: 5 * time.Second})
		defer churned.Close()
		gotFP, gotVals := rebalanceScenario(t, churned, true)

		if gotFP != wantFP {
			t.Fatalf("fingerprint moved=%x never-moved=%x; values %v vs %v", gotFP, wantFP, gotVals, wantVals)
		}
		if got := churned.Stats().Get("rebalance"); got != 1 {
			t.Fatalf("rebalance counter = %d, want 1", got)
		}
		if got := churned.Stats().Get("failover"); got != 0 {
			t.Fatalf("failover counter = %d, want 0 (this was a drain, not a death)", got)
		}
	})
}

// TestRebalanceDeterminismAcrossProcs is the GOMAXPROCS-swept acceptance
// test: the fingerprint of a run whose task is moved mid-flight must be
// bit-identical to the never-moved fingerprint on every procs setting —
// the paper's "regardless of the number of cores" claim extended to
// membership churn. (The detcheck helper cannot be used here — it rides
// internal/explore, which imports this package.)
func TestRebalanceDeterminismAcrossProcs(t *testing.T) {
	testutil.WithTimeout(t, 180*time.Second, func() {
		clean := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1})
		wantFP, _ := rebalanceScenario(t, clean, false)
		clean.Close()

		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
		for _, procs := range []int{1, 2, 4} {
			runtime.GOMAXPROCS(procs)
			for run := 0; run < 3; run++ {
				cluster := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1, RecvTimeout: 5 * time.Second})
				gotFP, gotVals := rebalanceScenario(t, cluster, true)
				cluster.Close()
				if gotFP != wantFP {
					t.Fatalf("procs=%d run=%d: moved fingerprint %x != never-moved %x (values %v)",
						procs, run, gotFP, wantFP, gotVals)
				}
			}
		}
	})
}

// TestLeaveAfterWorkCompletes: a graceful leave waits for the member's
// conversations, then departs; the run is unaffected and the member's
// slot stays resolvable as a tombstone.
func TestLeaveAfterWorkCompletes(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1})
		defer cluster.Close()
		list := mergeable.NewList[int]()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "append5", data[0])
			if err := ctx.MergeAll(); err != nil {
				return err
			}
			if err := cluster.Leave(0); err != nil {
				return err
			}
			// Work after the leave lands on the survivor.
			cluster.SpawnRemote(ctx, 0, "append5", data[0])
			return ctx.MergeAll()
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); len(got) != 2 {
			t.Fatalf("list = %v, want two appends", got)
		}
		if got := cluster.Stats().Get("member_leave"); got != 1 {
			t.Fatalf("member_leave = %d, want 1", got)
		}
		if got := cluster.Stats().Get("leave_forced"); got != 0 {
			t.Fatalf("leave_forced = %d, want 0 (node was idle)", got)
		}
	})
}

package dist

import (
	"errors"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/memnet"
	"repro/internal/mergeable"
	"repro/internal/task"
	"repro/internal/testutil"
)

// killGate coordinates "die on the first execution" chaos scenarios: the
// first execution of the gated function announces itself on started and
// blocks on release, giving the test a deterministic window to kill or
// partition the node before any of the task's operations are merged.
type killGate struct {
	started chan struct{}
	release chan struct{}
	first   atomic.Bool
}

func newKillGate() *killGate {
	return &killGate{started: make(chan struct{}), release: make(chan struct{})}
}

// curGate is swapped per test run; registered functions read it at call
// time so each run gets fresh channels.
var curGate atomic.Pointer[killGate]

func gateFirstExecution() {
	if g := curGate.Load(); g != nil && g.first.CompareAndSwap(false, true) {
		close(g.started)
		<-g.release
	}
}

func init() {
	RegisterFunc("failover-work", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		gateFirstExecution()
		l := data[0].(*mergeable.List[int])
		l.Append(1)
		l.Append(2)
		data[1].(*mergeable.Counter).Add(7)
		return nil
	})
	RegisterFunc("chaos-det-0", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Insert(0, 10)
		data[1].(*mergeable.Counter).Add(100)
		return nil
	})
	RegisterFunc("chaos-det-1", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Insert(0, 20)
		data[1].(*mergeable.Counter).Add(200)
		return nil
	})
	RegisterFunc("chaos-det-2", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Insert(0, 30)
		data[1].(*mergeable.Counter).Add(300)
		return nil
	})
	RegisterFunc("stall", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		time.Sleep(2 * time.Second)
		return nil
	})
}

// failoverScenario runs the canonical failover workload on a cluster:
// one gated remote task on node 0 plus parent-side appends. When kill is
// true, node 0 is killed while the remote task is parked before its
// first (and only) merge, so the cluster must transparently re-execute
// it elsewhere. Returns the combined fingerprint and the list values.
func failoverScenario(t *testing.T, cluster *Cluster, kill bool) (uint64, []int) {
	t.Helper()
	list := mergeable.NewList[int]()
	cnt := mergeable.NewCounter(0)
	gate := newKillGate()
	if kill {
		curGate.Store(gate)
	} else {
		curGate.Store(nil)
	}
	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		h := cluster.SpawnRemote(ctx, 0, "failover-work", l, data[1])
		if kill {
			<-gate.started // the doomed execution is live on node 0
			cluster.KillNode(0)
			close(gate.release)
		}
		l.Append(99)
		return ctx.MergeAllFromSet([]*task.Task{h})
	}, list, cnt)
	if err != nil {
		t.Fatal(err)
	}
	return mergeable.CombineFingerprints(list.Fingerprint(), cnt.Fingerprint()), list.Values()
}

// TestFailoverBeforeFirstMerge is the acceptance scenario: a worker node
// dies mid-run before the remote task's first merged sync; the task
// fails over to a healthy node and the final merged state is
// bit-identical to a fault-free run.
func TestFailoverBeforeFirstMerge(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		clean := NewCluster(2)
		wantFP, wantVals := failoverScenario(t, clean, false)
		clean.Close()

		faulty := NewClusterWith(Options{
			Nodes:       2,
			RecvTimeout: 5 * time.Second,
		})
		defer faulty.Close()
		gotFP, gotVals := failoverScenario(t, faulty, true)

		if !reflect.DeepEqual(gotVals, wantVals) {
			t.Fatalf("list after failover = %v, want %v", gotVals, wantVals)
		}
		if gotFP != wantFP {
			t.Fatalf("fingerprint after failover = %x, want %x", gotFP, wantFP)
		}
		if got := faulty.Stats().Get("failover"); got != 1 {
			t.Fatalf("failover counter = %d, want 1", got)
		}
		if faulty.Healthy(0) {
			t.Fatal("killed node still considered healthy")
		}
		if !faulty.Healthy(1) {
			t.Fatal("surviving node considered unhealthy")
		}
	})
}

// TestFailoverDeterministicAcrossSeeds repeats the kill scenario under a
// latency-injecting faultnet with several seeds: whatever the fault
// schedule, every run must converge to the fault-free fingerprint.
func TestFailoverDeterministicAcrossSeeds(t *testing.T) {
	testutil.WithTimeout(t, 120*time.Second, func() {
		clean := NewCluster(2)
		wantFP, _ := failoverScenario(t, clean, false)
		clean.Close()

		for seed := int64(1); seed <= 5; seed++ {
			fnet := faultnet.New(faultnet.Config{Seed: seed, MaxDelay: 2 * time.Millisecond})
			cluster := NewClusterWith(Options{
				Nodes:       2,
				RecvTimeout: 5 * time.Second,
				Listen:      func(node int) Listener { return fnet.Listen(node, 64) },
			})
			gotFP, _ := failoverScenario(t, cluster, true)
			cluster.Close()
			if gotFP != wantFP {
				t.Fatalf("seed %d: fingerprint %x != fault-free %x", seed, gotFP, wantFP)
			}
		}
	})
}

// TestNoFailoverAfterProgress: once a remote task has merged a sync, a
// node death must surface as a transport error instead of re-executing
// the task (re-execution would double-apply its merged operations).
func TestNoFailoverAfterProgress(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 2, RecvTimeout: 5 * time.Second})
		defer cluster.Close()
		c := mergeable.NewCounter(0)
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "slow-sync-loop", data[0])
			if err := ctx.MergeAll(); err != nil { // at least one sync merged
				return err
			}
			cluster.KillNode(0)
			mergeErr := ctx.MergeAll()
			if !IsTransportError(mergeErr) {
				t.Errorf("MergeAll after node death = %v, want transport error", mergeErr)
			}
			return nil
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if got := cluster.Stats().Get("failover"); got != 0 {
			t.Fatalf("failover counter = %d, want 0 (task had merged progress)", got)
		}
		if c.Value() < 1 {
			t.Fatalf("pre-failure sync should have merged, counter = %d", c.Value())
		}
	})
}

// TestFailoverExhaustion: when every attempt times out, the error that
// surfaces is a transport error and the attempt count honors the policy.
func TestFailoverExhaustion(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		cluster := NewClusterWith(Options{
			Nodes:       1,
			RecvTimeout: 300 * time.Millisecond,
			Retry:       RetryPolicy{MaxAttempts: 2},
		})
		defer cluster.Close()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "stall", data[0])
			mergeErr := ctx.MergeAll()
			if !IsTransportError(mergeErr) {
				t.Errorf("MergeAll = %v, want transport error", mergeErr)
			}
			if IsRemoteError(mergeErr) {
				t.Errorf("timeout misclassified as remote failure: %v", mergeErr)
			}
			return nil
		}, mergeable.NewCounter(0))
		if err != nil {
			t.Fatal(err)
		}
		if got := cluster.Stats().Get("failover"); got != 1 {
			t.Fatalf("failover counter = %d, want 1 (second attempt on same node)", got)
		}
	})
}

// flakyListener fails its first `failures` dials, then delegates to
// memnet — a deterministic stand-in for a node that takes a moment to
// come up.
type flakyListener struct {
	*memnet.Listener
	remaining atomic.Int64
}

func (f *flakyListener) Dial() (net.Conn, error) {
	if f.remaining.Add(-1) >= 0 {
		return nil, errors.New("flaky: connection refused")
	}
	return f.Listener.Dial()
}

// TestDialRetryBackoff: transient dial failures are absorbed by the
// capped-backoff retry loop without failing the spawn.
func TestDialRetryBackoff(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		fl := &flakyListener{Listener: memnet.Listen(64)}
		fl.remaining.Store(2)
		cluster := NewClusterWith(Options{
			Nodes:             1,
			HeartbeatInterval: -1, // keep the flaky budget for the spawn dial
			Retry:             RetryPolicy{DialRetries: 2},
			Listen:            func(int) Listener { return fl },
		})
		defer cluster.Close()
		list := mergeable.NewList[int]()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "append5", data[0])
			return ctx.MergeAll()
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); !reflect.DeepEqual(got, []int{5}) {
			t.Fatalf("list = %v, want [5]", got)
		}
		if got := cluster.Stats().Get("dial_retry"); got != 2 {
			t.Fatalf("dial_retry counter = %d, want 2", got)
		}
	})
}

// TestHeartbeatDetectsPartitionAndRecovers: a silent partition (writes
// blackholed, connections open) is detected within a bounded interval,
// and the node returns to the healthy set after healing.
func TestHeartbeatDetectsPartitionAndRecovers(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		fnet := faultnet.New(faultnet.Config{Seed: 1})
		cluster := NewClusterWith(Options{
			Nodes:             1,
			HeartbeatInterval: 25 * time.Millisecond,
			HeartbeatTimeout:  150 * time.Millisecond,
			Listen:            func(node int) Listener { return fnet.Listen(node, 64) },
		})
		defer cluster.Close()

		waitFor := func(desc string, cond func() bool) {
			deadline := time.Now().Add(10 * time.Second)
			for !cond() {
				if time.Now().After(deadline) {
					t.Fatalf("timed out waiting for %s", desc)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}

		waitFor("initial healthy state", func() bool { return cluster.Healthy(0) })
		fnet.Partition(0)
		waitFor("partition detection", func() bool { return !cluster.Healthy(0) })
		if cluster.Stats().Get("heartbeat_miss") == 0 {
			t.Fatal("heartbeat_miss counter not incremented")
		}
		fnet.Heal(0)
		waitFor("recovery after heal", func() bool { return cluster.Healthy(0) })
	})
}

// TestChaosSoakDeterminism runs the three-node determinism workload
// under a lossy, resetting, laggy network across several seeds. Runs may
// fail outright (that is chaos doing its job), but every run that
// succeeds must produce exactly the fault-free fingerprint.
func TestChaosSoakDeterminism(t *testing.T) {
	testutil.WithTimeout(t, 180*time.Second, func() {
		curGate.Store(nil)
		probe := func(cluster *Cluster) (uint64, error) {
			list := mergeable.NewList(0)
			cnt := mergeable.NewCounter(0)
			err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for i := 0; i < 3; i++ {
					cluster.SpawnRemote(ctx, i, []string{"chaos-det-0", "chaos-det-1", "chaos-det-2"}[i], data[0], data[1])
				}
				return ctx.MergeAll()
			}, list, cnt)
			if err != nil {
				return 0, err
			}
			return mergeable.CombineFingerprints(list.Fingerprint(), cnt.Fingerprint()), nil
		}

		clean := NewCluster(3)
		want, err := probe(clean)
		clean.Close()
		if err != nil {
			t.Fatal(err)
		}

		successes := 0
		for seed := int64(1); seed <= 6; seed++ {
			fnet := faultnet.New(faultnet.Config{
				Seed:      seed,
				DropProb:  0.02,
				ResetProb: 0.01,
				MaxDelay:  500 * time.Microsecond,
			})
			cluster := NewClusterWith(Options{
				Nodes:             3,
				SendTimeout:       time.Second,
				RecvTimeout:       time.Second,
				HeartbeatInterval: 50 * time.Millisecond,
				HeartbeatTimeout:  300 * time.Millisecond,
				Retry:             RetryPolicy{MaxAttempts: 4},
				Listen:            func(node int) Listener { return fnet.Listen(node, 64) },
			})
			got, err := probe(cluster)
			cluster.Close()
			if err != nil {
				t.Logf("seed %d: run lost to chaos (fine): %v", seed, err)
				continue
			}
			successes++
			if got != want {
				t.Fatalf("seed %d: fingerprint %x != fault-free %x", seed, got, want)
			}
		}
		if successes == 0 {
			t.Fatal("every chaos run failed; fault mix too hot for the test to mean anything")
		}
	})
}

package dist

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/task"
	"repro/internal/testutil"
)

// collectEvents drains w until it has n events or the deadline hits.
func collectEvents(t *testing.T, w *MemberWatch, n int) []MemberEvent {
	t.Helper()
	var out []MemberEvent
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-w.C():
			if !ok {
				t.Fatalf("watch closed after %d events, want %d", len(out), n)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out after %d events, want %d", len(out), n)
		}
	}
	return out
}

// TestMembershipLifecycle walks a member through join → drain → leave
// and checks the event stream, the epoch ordering, the Members snapshot
// and the stale-epoch rejections.
func TestMembershipLifecycle(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1})
		defer cluster.Close()

		w, err := cluster.Watch(8)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()

		id, err := cluster.Join()
		if err != nil {
			t.Fatal(err)
		}
		if id != 2 {
			t.Fatalf("joined node id = %d, want 2", id)
		}
		if err := cluster.Drain(id); err != nil {
			t.Fatal(err)
		}
		// Draining a draining member is a no-op — no error, no epoch bump.
		epochBefore := cluster.Epoch()
		if err := cluster.Drain(id); err != nil {
			t.Fatalf("second drain = %v, want nil", err)
		}
		if got := cluster.Epoch(); got != epochBefore {
			t.Fatalf("idempotent drain bumped epoch %d -> %d", epochBefore, got)
		}
		if err := cluster.Leave(id); err != nil {
			t.Fatal(err)
		}

		events := collectEvents(t, w, 3)
		want := []MemberEvent{
			{Kind: MemberJoined, Node: 2, Epoch: 1},
			{Kind: MemberDraining, Node: 2, Epoch: 2},
			{Kind: MemberLeft, Node: 2, Epoch: 3},
		}
		for i, ev := range events {
			if ev != want[i] {
				t.Fatalf("event %d = %v, want %v", i, ev, want[i])
			}
		}
		if got := cluster.Epoch(); got != 3 {
			t.Fatalf("epoch = %d, want 3", got)
		}

		members := cluster.Members()
		if len(members) != 3 {
			t.Fatalf("members = %d rows, want 3 (tombstones included)", len(members))
		}
		if members[0].State != StateActive || members[1].State != StateActive {
			t.Fatalf("construction-time members not active: %+v", members[:2])
		}
		if members[2].State != StateLeft || members[2].JoinEpoch != 1 {
			t.Fatalf("departed member row = %+v, want left with join epoch 1", members[2])
		}

		// Operations on a departed member reject with the stale-epoch
		// taxonomy.
		if err := cluster.Drain(id); !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("drain after leave = %v, want ErrStaleEpoch", err)
		}
		if err := cluster.Leave(id); !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("leave after leave = %v, want ErrStaleEpoch", err)
		}
	})
}

// TestJoinedNodeHostsTasks: a node admitted at runtime is a first-class
// placement target.
func TestJoinedNodeHostsTasks(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 1, HeartbeatInterval: -1})
		defer cluster.Close()
		id, err := cluster.Join()
		if err != nil {
			t.Fatal(err)
		}
		list := mergeable.NewList[int]()
		err = task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, id, "append5", data[0])
			return ctx.MergeAll()
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); len(got) != 1 || got[0] != 5 {
			t.Fatalf("list = %v, want [5]", got)
		}
	})
}

// TestDrainRedirectsPlacement: a spawn requested on a draining member is
// silently re-placed on the next active one; the run's outcome is
// unchanged.
func TestDrainRedirectsPlacement(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1})
		defer cluster.Close()
		if err := cluster.Drain(0); err != nil {
			t.Fatal(err)
		}
		list := mergeable.NewList[int]()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "append5", data[0])
			return ctx.MergeAll()
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); len(got) != 1 || got[0] != 5 {
			t.Fatalf("list = %v, want [5]", got)
		}
		if got := cluster.Stats().Get("placement_redirect"); got != 1 {
			t.Fatalf("placement_redirect = %d, want 1", got)
		}
	})
}

// TestAllMembersDrainingRefusesSpawn: when no placeable member remains,
// the spawn surfaces the draining taxonomy instead of hanging or
// misclassifying as transport trouble.
func TestAllMembersDrainingRefusesSpawn(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1})
		defer cluster.Close()
		if err := cluster.Drain(0); err != nil {
			t.Fatal(err)
		}
		if err := cluster.Drain(1); err != nil {
			t.Fatal(err)
		}
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "append5", data[0])
			mergeErr := ctx.MergeAll()
			if !IsDraining(mergeErr) {
				t.Errorf("MergeAll = %v, want ErrDraining", mergeErr)
			}
			if IsTransportError(mergeErr) {
				t.Errorf("drain refusal misclassified as transport error: %v", mergeErr)
			}
			return nil
		}, mergeable.NewList[int]())
		if err != nil {
			t.Fatal(err)
		}
	})
}

// staleRouteJournal always replays one fixed node for every slot — a
// stand-in for a crashed coordinator's journal whose routes point at a
// member that started draining before the restart finished re-driving.
type staleRouteJournal struct{ node int }

func (s staleRouteJournal) RecordRoute(string, int)      {}
func (s staleRouteJournal) NextRoute(string) (int, bool) { return s.node, true }

// TestWorkerRefusesSpawnWhileDraining: a journaled route is replayed
// with fidelity even onto a draining member, and the worker-side refusal
// (wireDraining) re-places the task instead of failing the run.
func TestWorkerRefusesSpawnWhileDraining(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{
			Nodes:             2,
			HeartbeatInterval: -1,
			Journal:           staleRouteJournal{node: 0},
		})
		defer cluster.Close()
		if err := cluster.Drain(0); err != nil {
			t.Fatal(err)
		}
		list := mergeable.NewList[int]()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 1, "append5", data[0])
			return ctx.MergeAll()
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); len(got) != 1 || got[0] != 5 {
			t.Fatalf("list = %v, want [5]", got)
		}
		if got := cluster.Stats().Get("drain_refused"); got != 1 {
			t.Fatalf("drain_refused = %d, want 1", got)
		}
	})
}

// TestWatchLagged: a subscriber that stops reading is disconnected
// (channel closed, Lagged true) instead of blocking membership
// transitions.
func TestWatchLagged(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 1, HeartbeatInterval: -1})
		defer cluster.Close()
		w, err := cluster.Watch(1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := cluster.Join(); err != nil {
				t.Fatal(err)
			}
		}
		// Buffer 1, three events, zero reads: the watch must have lagged.
		if _, ok := <-w.C(); !ok {
			t.Fatal("expected the one buffered event before the close")
		}
		if _, ok := <-w.C(); ok {
			t.Fatal("lagged watch still delivering")
		}
		if !w.Lagged() {
			t.Fatal("Lagged() = false after overflow disconnect")
		}
		if got := cluster.Stats().Get("watch_lagged"); got != 1 {
			t.Fatalf("watch_lagged = %d, want 1", got)
		}
	})
}

// TestClosedClusterRejectsMembershipOps: every coordinator entry point
// classifies as ErrNoCoordinator once the cluster is closed.
func TestClosedClusterRejectsMembershipOps(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewClusterWith(Options{Nodes: 2, HeartbeatInterval: -1})
		w, err := cluster.Watch(1)
		if err != nil {
			t.Fatal(err)
		}
		cluster.Close()

		if _, ok := <-w.C(); ok {
			t.Fatal("watch channel still open after cluster close")
		}
		if w.Lagged() {
			t.Fatal("clean close misreported as lag")
		}
		if _, err := cluster.Join(); !errors.Is(err, ErrNoCoordinator) {
			t.Fatalf("Join on closed cluster = %v, want ErrNoCoordinator", err)
		}
		if err := cluster.Drain(0); !errors.Is(err, ErrNoCoordinator) {
			t.Fatalf("Drain on closed cluster = %v, want ErrNoCoordinator", err)
		}
		if _, err := cluster.Watch(1); !errors.Is(err, ErrNoCoordinator) {
			t.Fatalf("Watch on closed cluster = %v, want ErrNoCoordinator", err)
		}
		err = task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "append5", data[0])
			mergeErr := ctx.MergeAll()
			if !errors.Is(mergeErr, ErrNoCoordinator) {
				t.Errorf("spawn on closed cluster = %v, want ErrNoCoordinator", mergeErr)
			}
			return nil
		}, mergeable.NewList[int]())
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestKillNodeAfterCloseIsNoop is the regression test for the
// KillNode-after-Close bug: killing any node (in range or not) on a
// closed cluster must be a harmless no-op.
func TestKillNodeAfterCloseIsNoop(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(2)
		cluster.Close()
		cluster.KillNode(0)
		cluster.KillNode(1)
		cluster.KillNode(99)
		cluster.KillNode(-1)
		// Close twice for good measure; both must stay idempotent.
		cluster.Close()
	})
}

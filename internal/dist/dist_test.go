package dist

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/task"

	"repro/internal/testutil"
)

func init() {
	RegisterListCodec[int]("test-list-int")
	RegisterQueueCodec[string]("test-queue-string")
	RegisterMapCodec[string, int]("test-map-string-int")
	RegisterSetCodec[string]("test-set-string")
	RegisterRegisterCodec[int]("test-register-int")

	RegisterFunc("append5", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Append(5)
		return nil
	})
	RegisterFunc("sync-loop", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		for i := 0; i < 3; i++ {
			l.Append(i)
			if err := wctx.Sync(); err != nil {
				return err
			}
		}
		return nil
	})
	RegisterFunc("sync-until-aborted", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		c := data[0].(*mergeable.Counter)
		for {
			c.Inc()
			if err := wctx.Sync(); err != nil {
				if errors.Is(err, task.ErrAborted) {
					return nil
				}
				return err
			}
		}
	})
	RegisterFunc("push-big", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		l := data[0].(*mergeable.List[int])
		l.Append(1000)
		err := wctx.Sync()
		if !errors.Is(err, task.ErrMergeRejected) {
			return fmt.Errorf("expected rejection, got %v", err)
		}
		if l.Len() != 0 {
			return fmt.Errorf("copy not refreshed after rejection: %v", l.Values())
		}
		l.Append(1) // acceptable retry
		return nil
	})
	RegisterFunc("fail", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Append(99)
		return errors.New("remote boom")
	})
	RegisterFunc("panic", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		panic("remote kaboom")
	})
}

// TestRemoteListing1 is the paper's Listing 1 with the child running on a
// remote node: same result, deterministically.
func TestRemoteListing1(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		list := mergeable.NewList(1, 2, 3)
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			l := data[0].(*mergeable.List[int])
			h := cluster.SpawnRemote(ctx, 0, "append5", l)
			l.Append(4)
			return ctx.MergeAllFromSet([]*task.Task{h})
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
			t.Fatalf("list = %v", got)
		}
	})
}

// TestRemoteSyncLoop mirrors the local sync-loop test over the wire.
func TestRemoteSyncLoop(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		list := mergeable.NewList[int]()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			l := data[0].(*mergeable.List[int])
			h := cluster.SpawnRemote(ctx, 0, "sync-loop", l)
			for i := 0; i < 3; i++ {
				if err := ctx.MergeAllFromSet([]*task.Task{h}); err != nil {
					return err
				}
				l.Append(100 + i)
			}
			return ctx.MergeAllFromSet([]*task.Task{h})
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); !reflect.DeepEqual(got, []int{0, 100, 1, 101, 2, 102}) {
			t.Fatalf("list = %v", got)
		}
	})
}

// TestRemoteAbort aborts a long-running remote task; the worker observes
// ErrAborted through its remote Sync and unwinds; its changes vanish.
func TestRemoteAbort(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		c := mergeable.NewCounter(0)
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			h := cluster.SpawnRemote(ctx, 0, "sync-until-aborted", data[0])
			// Let a few rounds through, then abort.
			for i := 0; i < 3; i++ {
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			}
			h.Abort()
			for i := 0; i < 4; i++ { // resume + collect
				if err := ctx.MergeAll(); err != nil {
					return err
				}
			}
			return nil
		}, c)
		if err != nil && !errors.Is(err, task.ErrAborted) {
			t.Fatal(err)
		}
		if c.Value() < 2 {
			t.Fatalf("counter = %d, want the pre-abort increments", c.Value())
		}
	})
}

// TestRemoteMergeRejected exercises the condition/rollback path across
// the wire: the worker's Sync reports the rejection and its copies are
// refreshed.
func TestRemoteMergeRejected(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		list := mergeable.NewList[int]()
		cond := task.WithCondition(func(preview []mergeable.Mergeable) bool {
			for _, v := range preview[0].(*mergeable.List[int]).Values() {
				if v >= 100 {
					return false
				}
			}
			return true
		})
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			h := cluster.SpawnRemote(ctx, 0, "push-big", data[0])
			if err := ctx.MergeAllFromSet([]*task.Task{h}, cond); !errors.Is(err, task.ErrMergeRejected) {
				t.Errorf("first merge = %v, want rejection", err)
			}
			return ctx.MergeAllFromSet([]*task.Task{h}, cond)
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("list = %v, want [1]", got)
		}
	})
}

// TestRemoteFailureDiscards verifies a failing remote task contributes
// nothing and surfaces as a remote error.
func TestRemoteFailureDiscards(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		list := mergeable.NewList[int]()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "fail", data[0])
			mergeErr := ctx.MergeAll()
			if mergeErr == nil || !IsRemoteError(mergeErr) {
				t.Errorf("MergeAll = %v, want remote error", mergeErr)
			}
			return nil
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if list.Len() != 0 {
			t.Fatalf("failed remote task's changes leaked: %v", list.Values())
		}
	})
}

// TestRemotePanicPropagates verifies remote panics arrive as remote
// errors carrying the panic text.
func TestRemotePanicPropagates(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "panic", data[0])
			mergeErr := ctx.MergeAll()
			if mergeErr == nil || !IsRemoteError(mergeErr) {
				t.Errorf("MergeAll = %v", mergeErr)
			}
			return nil
		}, mergeable.NewList[int]())
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestRemoteUnknownFuncAndNode covers the registration error paths.
func TestRemoteUnknownFuncAndNode(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "no-such-func", data[0])
			if mergeErr := ctx.MergeAll(); mergeErr == nil {
				t.Error("unknown function should fail the remote task")
			}
			cluster.SpawnRemote(ctx, 99, "append5", data[0])
			if mergeErr := ctx.MergeAll(); mergeErr == nil {
				t.Error("unknown node should fail the proxy")
			}
			return nil
		}, mergeable.NewList[int]())
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestDistributedDeterminism spreads conflicting workers across nodes and
// demands identical results on every run — the determinism guarantee
// surviving distribution.
func TestDistributedDeterminism(t *testing.T) {
	RegisterFunc("det-insert-0", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Insert(0, 1)
		data[1].(*mergeable.Counter).Add(10)
		return nil
	})
	RegisterFunc("det-insert-1", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Insert(0, 2)
		data[1].(*mergeable.Counter).Add(20)
		return nil
	})
	RegisterFunc("det-insert-2", func(wctx *WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Insert(0, 3)
		data[1].(*mergeable.Counter).Add(30)
		return nil
	})
	testutil.WithTimeout(t, 60*time.Second, func() {
		run := func() (uint64, []int) {
			cluster := NewCluster(3)
			defer cluster.Close()
			list := mergeable.NewList(0)
			cnt := mergeable.NewCounter(0)
			err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				for i := 0; i < 3; i++ {
					cluster.SpawnRemote(ctx, i, fmt.Sprintf("det-insert-%d", i), data[0], data[1])
				}
				return ctx.MergeAll()
			}, list, cnt)
			if err != nil {
				t.Fatal(err)
			}
			return mergeable.CombineFingerprints(list.Fingerprint(), cnt.Fingerprint()), list.Values()
		}
		want, vals := run()
		// Creation-order merging with earlier-merge priority: worker 0's
		// insert lands first, later inserts shift right behind it.
		if !reflect.DeepEqual(vals, []int{1, 2, 3, 0}) {
			t.Fatalf("merged list = %v, want creation-order conflict resolution", vals)
		}
		for i := 0; i < 8; i++ {
			if got, _ := run(); got != want {
				t.Fatalf("run %d: fingerprint %x != %x", i, got, want)
			}
		}
	})
}

// TestMixedLocalAndRemoteChildren merges local and remote children of the
// same parent in creation order.
func TestMixedLocalAndRemoteChildren(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		cluster := NewCluster(1)
		defer cluster.Close()
		list := mergeable.NewList[int]()
		err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			l := data[0].(*mergeable.List[int])
			cluster.SpawnRemote(ctx, 0, "append5", l)
			ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
				d[0].(*mergeable.List[int]).Append(7)
				return nil
			}, l)
			return ctx.MergeAll()
		}, list)
		if err != nil {
			t.Fatal(err)
		}
		if got := list.Values(); !reflect.DeepEqual(got, []int{5, 7}) {
			t.Fatalf("list = %v, want [5 7] (creation order)", got)
		}
	})
}

// TestCodecRoundtrips covers every provided codec.
func TestCodecRoundtrips(t *testing.T) {
	cases := []mergeable.Mergeable{
		mergeable.NewList(1, 2, 3),
		func() mergeable.Mergeable { q := mergeable.NewQueue[string](); q.Push("a"); q.Push("b"); return q }(),
		func() mergeable.Mergeable {
			m := mergeable.NewMap[string, int]()
			m.Set("k", 7)
			return m
		}(),
		mergeable.NewSet("x", "y"),
		mergeable.NewRegister(42),
		mergeable.NewCounter(13),
		mergeable.NewText("héllo"),
	}
	for _, m := range cases {
		codec, err := codecFor(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		b, err := codec.Encode(m)
		if err != nil {
			t.Fatalf("%T encode: %v", m, err)
		}
		back, err := codec.Decode(b)
		if err != nil {
			t.Fatalf("%T decode: %v", m, err)
		}
		if back.Fingerprint() != m.Fingerprint() {
			t.Errorf("%T: roundtrip changed the value", m)
		}
		if len(back.Log().LocalOps()) != 0 {
			t.Errorf("%T: decoded structure carries local ops", m)
		}
	}
	if _, err := codecFor(mergeable.NewMap[int, int]()); err == nil {
		t.Error("unregistered type should have no codec")
	}
	if _, err := codecByName("nope"); err == nil {
		t.Error("unknown codec name should fail")
	}
	if _, err := funcByName("nope"); err == nil {
		t.Error("unknown function name should fail")
	}
}

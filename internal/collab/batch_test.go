package collab

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/memnet"
)

// TestQueueCoalescesRuns checks the client-side run coalescing: an
// insert continuing exactly where the previous one ended extends it, a
// delete at the same position widens the previous delete, and anything
// else starts a new queued op.
func TestQueueCoalescesRuns(t *testing.T) {
	l := memnet.Listen(16)
	s := Serve(l, "0123456789")
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}

	c.QueueInsert(0, "ab")
	c.QueueInsert(2, "cd") // extends "ab" at rune position 0+2
	c.QueueInsert(9, "x")  // gap: new run
	if got := c.Queued(); got != 2 {
		t.Fatalf("queued after insert coalescing = %d, want 2", got)
	}
	c.QueueDelete(5, 1)
	c.QueueDelete(5, 2) // widens the delete at 5
	c.QueueDelete(0, 1) // different position: new op
	if got := c.Queued(); got != 4 {
		t.Fatalf("queued after delete coalescing = %d, want 4", got)
	}
	if got := c.Stats().Get("coalesced"); got != 2 {
		t.Fatalf("coalesced counter = %d, want 2", got)
	}

	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := c.Queued(); got != 0 {
		t.Fatalf("queued after flush = %d, want 0", got)
	}
	// Applied in queue order against "0123456789":
	// INS 0 "abcd" -> "abcd0123456789"; INS 9 "x" -> "abcd01234x56789";
	// DEL 5 3 -> "abcd04x56789"; DEL 0 1 -> "bcd04x56789".
	doc, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	const want = "bcd04x56789"
	if doc != want {
		t.Fatalf("doc after coalesced flush = %s, want %s", doc, want)
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestQueueCoalescingIsRuneAware queues multi-byte text: the
// continuation check must count runes, not bytes, or a follow-up insert
// lands mid-character.
func TestQueueCoalescingIsRuneAware(t *testing.T) {
	l := memnet.Listen(16)
	s := Serve(l, "")
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.QueueInsert(0, "héllo") // 5 runes, 6 bytes
	c.QueueInsert(5, "!")     // continues at rune 5: coalesces
	if got := c.Queued(); got != 1 {
		t.Fatalf("queued = %d, want 1 (rune-aware coalescing)", got)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	doc, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if doc != "héllo!" {
		t.Fatalf("doc = %s, want %q", doc, "héllo!")
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushOnSync: any direct round trip (Get here) must flush the queue
// first, so queued edits are never reordered around direct ones.
func TestFlushOnSync(t *testing.T) {
	l := memnet.Listen(16)
	s := Serve(l, "")
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.QueueInsert(0, "queued;")
	doc, err := c.Get() // never explicitly flushed
	if err != nil {
		t.Fatal(err)
	}
	if doc != "queued;" {
		t.Fatalf("Get did not flush the queue first: doc = %s", doc)
	}
	if got := c.Queued(); got != 0 {
		t.Fatalf("queued after implicit flush = %d, want 0", got)
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushDropsResolvedRefusals pins the queue-trim rule: every op the
// server acked — including per-op READONLY refusals — leaves the queue
// even when Flush returns an error. Without the trim a refused op stays
// queued forever, wedging every later Flush (and Bye), and resolved
// neighbors are re-sent under fresh sequence numbers the replay window
// cannot dedup — a double apply.
func TestFlushDropsResolvedRefusals(t *testing.T) {
	l := memnet.Listen(16)
	s := Serve(l, "")
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.QueueInsert(0, "live;")
	if err := c.Flush(); err != nil {
		t.Fatalf("flush while live: %v", err)
	}

	s.Drain()
	c.QueueInsert(0, "refused;")
	c.QueueDelete(0, 1) // separator: a second distinct queued op
	if err := c.Flush(); err == nil {
		t.Fatal("flush while draining succeeded, want *ReadOnlyError")
	} else if !errors.As(err, new(*ReadOnlyError)) {
		t.Fatalf("flush while draining = %v, want *ReadOnlyError", err)
	}
	if got := c.Queued(); got != 0 {
		t.Fatalf("queued after refused flush = %d, want 0 (refusals are resolved)", got)
	}

	s.Undrain()
	c.QueueInsert(0, "after;")
	if err := c.Flush(); err != nil {
		t.Fatalf("flush after undrain: %v", err)
	}
	doc, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if doc != "after;live;" {
		t.Fatalf("doc = %q, want %q (a resolved refusal must never be re-sent)", doc, "after;live;")
	}
	if err := c.Bye(); err != nil {
		t.Fatalf("bye after refused flush: %v", err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchChunksToReplayWindow queues far more distinct ops than
// MaxBatch: Flush must ship them in window-sized frames (so a reconnect
// can always resolve a cut frame by replay) and every op must apply
// exactly once. The server's frame counter proves the wire actually
// carried batch frames, not single lines.
func TestBatchChunksToReplayWindow(t *testing.T) {
	const ops = 20 // > 2x the default window of 8
	l := memnet.Listen(16)
	s := Serve(l, "")
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ops; i++ {
		c.QueueInsert(0, fmt.Sprintf("op%d;", i)) // never contiguous: no coalescing
		c.QueueDelete(0, 0)                       // zero-width separator keeps runs apart
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ops; i++ {
		marker := fmt.Sprintf("op%d;", i)
		if n := strings.Count(s.Document(), marker); n != 1 {
			t.Errorf("marker %q appears %d times, want 1", marker, n)
		}
	}
	if frames := s.Stats().Get("frames"); frames < 3 {
		t.Errorf("server saw %d batch frames, want >= 3 (40 ops / window 8)", frames)
	}
}

// TestBatchedMatchesUnbatchedOnMultiServer runs the batched workload
// against a plain MultiServer (no applyBatch hook: the front falls back
// to per-op apply inside one frame) and demands the same fingerprints as
// the unbatched reference — the framing layer must be invisible to
// document state on every server flavor, not just the sharded router.
func TestBatchedMatchesUnbatchedOnMultiServer(t *testing.T) {
	const clients, edits = 6, 8
	want := referenceFingerprints(t, clients, edits)

	l := memnet.Listen(64)
	s := ServeDocs(l, initialOf(shardedDocs))
	shardedWorkload(t, l, clients, edits, testClientOpts(), 3)
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, name := range shardedDocs {
		doc, ok := s.Document(name)
		if !ok {
			t.Fatalf("lost document %q", name)
		}
		if got := CanonicalFingerprint(doc); got != want[name] {
			t.Errorf("document %q fingerprint %016x != reference %016x", name, got, want[name])
		}
	}
	if got := s.Stats().Get("frames"); got == 0 {
		t.Error("no batch frames reached the MultiServer front")
	}
}

package collab

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/shard"
)

// Client-side op batching. QueueInsert/QueueDelete accumulate edits
// locally, coalescing runs (an insert continuing exactly where the last
// one ended extends it; a delete at the same position widens it), and
// Flush ships them in CRC-framed batches of at most MaxBatch ops — one
// wire round trip and one server merge per frame instead of one per op.
// Any blocking call (Get, Insert, Bye, ...) flushes first, so queued ops
// are never reordered around direct ones: flush-on-sync.
//
// Exactly-once carries over unchanged: every queued op still takes its
// own sequence number, the server acks each, and a frame cut short by
// BUSY or a transport failure is re-sent from the first unresolved op
// with the same numbers — the replay window (or the sharded router's
// retry identities) deduplicates whatever had already applied.

// queuedOp is one coalesced edit awaiting Flush.
type queuedOp struct {
	ins  bool
	pos  int
	n    int    // DEL width
	text string // INS text
}

// QueueInsert queues an insert for the next Flush, coalescing with the
// previous queued op when it extends the same run.
func (c *Client) QueueInsert(pos int, text string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.queue); n > 0 {
		last := &c.queue[n-1]
		if last.ins && pos == last.pos+len([]rune(last.text)) {
			last.text += text
			c.counters.Inc("coalesced")
			return
		}
	}
	c.queue = append(c.queue, queuedOp{ins: true, pos: pos, text: text})
}

// QueueDelete queues a delete for the next Flush, coalescing with a
// previous delete at the same position (deleting k runes at p twice is
// one delete of 2k at p).
func (c *Client) QueueDelete(pos, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k := len(c.queue); k > 0 {
		last := &c.queue[k-1]
		if !last.ins && pos == last.pos {
			last.n += n
			c.counters.Inc("coalesced")
			return
		}
	}
	c.queue = append(c.queue, queuedOp{pos: pos, n: n})
}

// Queued returns the number of queued (post-coalescing) ops.
func (c *Client) Queued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Flush ships every queued op and waits for all acks. On error only the
// genuinely unresolved tail stays queued; resolved ops (acked OK or
// acked ERR server-side) always leave the queue, so a later Flush
// re-sends exactly what the server has not acked, under the sequence
// numbers its replay window expects. The first resolved per-op refusal
// (ErrProtocol, ErrReadOnly) is returned after the rest of the batch
// settles; the refused op is resolved and is never re-sent.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	return c.flushLocked()
}

func (c *Client) flushLocked() error {
	for len(c.queue) > 0 {
		n := c.opts.MaxBatch
		if n > len(c.queue) {
			n = len(c.queue)
		}
		resolved, err := c.flushChunkLocked(c.queue[:n])
		// Resolved ops were acked (and, for OKs, applied) server-side:
		// they must leave the queue even when the chunk errors, or the
		// next Flush would re-send them under fresh sequence numbers the
		// replay window cannot dedup — a double apply.
		c.queue = c.queue[resolved:]
		if err != nil {
			return err
		}
	}
	c.queue = nil
	return nil
}

// flushChunkLocked drives one frame of ops to resolution, returning how
// many of ops resolved (acked OK or acked ERR — nextSeq advanced past
// them) alongside any error. The frame never exceeds the replay window,
// so after a reconnect every already-applied op still resolves by
// replay.
func (c *Client) flushChunkLocked(ops []queuedOp) (int, error) {
	base := c.nextSeq
	lines := make([]string, len(ops))
	for i, op := range ops {
		seq := base + uint64(i)
		if op.ins {
			lines[i] = fmt.Sprintf("%d INS %d %s", seq, op.pos, strconv.Quote(op.text))
		} else {
			lines[i] = fmt.Sprintf("%d DEL %d %d", seq, op.pos, op.n)
		}
	}
	resolved := 0
	var firstErr error
	for attempt := 0; ; attempt++ {
		if attempt >= c.opts.Backoff.MaxAttempts {
			return resolved, &OverloadedError{Reason: "retries exhausted", RetryAfter: c.opts.Backoff.Cap}
		}
		if c.conn == nil {
			if c.opts.NoAutoResume {
				return resolved, fmt.Errorf("collab: not connected (auto-resume disabled): %w", net.ErrClosed)
			}
			if err := c.resumeLocked(); err != nil {
				if errors.Is(err, ErrSessionExpired) || errors.Is(err, ErrClientClosed) {
					return resolved, err
				}
				c.counters.Inc("reconnect_retry")
				c.sleep(err, attempt)
				continue
			}
		}
		done, retryAfter, err := c.sendFrameLocked(lines[resolved:], base+uint64(resolved), &firstErr)
		resolved += done
		if resolved == len(ops) {
			return resolved, firstErr
		}
		if err != nil {
			if isResolvedClientError(err) {
				return resolved, err
			}
			c.counters.Inc("transport_errors")
			c.dropLocked()
			if c.opts.NoAutoResume {
				return resolved, err
			}
			c.sleep(err, attempt)
			continue
		}
		// Tail shed with BUSY: retry the unresolved ops after the hint.
		c.counters.Inc("busy")
		c.sleep(&OverloadedError{Reason: "request", RetryAfter: retryAfter}, attempt)
	}
}

// isResolvedClientError reports an error that terminates the flush
// because retrying the same bytes cannot change the answer.
func isResolvedClientError(err error) bool {
	return errors.Is(err, ErrSessionExpired) || errors.Is(err, ErrClientClosed) ||
		errors.As(err, new(*serverError))
}

// sendFrameLocked writes one frame and consumes one reply per line,
// counting how many ops resolved (acked OK or acked ERR). A BUSY tail
// stops the advance without error; per-op refusals are recorded into
// firstErr but keep the frame advancing (they are acked).
func (c *Client) sendFrameLocked(lines []string, baseSeq uint64, firstErr *error) (resolved int, retryAfter time.Duration, err error) {
	frame, ferr := shard.AppendFrame(nil, lines)
	if ferr != nil {
		return 0, 0, &ProtocolError{Detail: ferr.Error()}
	}
	c.conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	defer func() {
		if c.conn != nil {
			c.conn.SetDeadline(time.Time{})
		}
	}()
	if _, werr := c.conn.Write(frame); werr != nil {
		return 0, 0, fmt.Errorf("collab: write: %w", werr)
	}
	retryAfter = c.opts.Backoff.Base
	advance := true
	for i := 0; i < len(lines); i++ {
		seq := baseSeq + uint64(i)
		reply, rerr := c.r.ReadLine()
		if rerr != nil {
			return resolved, retryAfter, fmt.Errorf("collab: read: %w", rerr)
		}
		status, rest, _ := strings.Cut(strings.TrimSpace(reply), " ")
		seqStr, detail, _ := strings.Cut(rest, " ")
		rseq, perr := strconv.ParseUint(seqStr, 10, 64)
		if perr != nil {
			return resolved, retryAfter, &ProtocolError{Detail: fmt.Sprintf("unnumbered reply %q", reply)}
		}
		if rseq < seq {
			i-- // stale replay from an earlier attempt
			continue
		}
		if rseq > seq {
			return resolved, retryAfter, &ProtocolError{Detail: fmt.Sprintf("reply for future seq %d (sent %d)", rseq, seq)}
		}
		switch status {
		case "OK":
			if advance {
				c.acked, c.nextSeq = seq, seq+1
				resolved++
			}
		case "ERR":
			cat, why, _ := strings.Cut(detail, " ")
			if cat != "READONLY" && cat != "PROTOCOL" {
				return resolved, retryAfter, &serverError{detail: cat + " " + why}
			}
			if advance {
				c.acked, c.nextSeq = seq, seq+1
				resolved++
				if *firstErr == nil {
					if cat == "READONLY" {
						*firstErr = &ReadOnlyError{Reason: why}
					} else {
						*firstErr = &ProtocolError{Detail: why}
					}
				}
			}
		case "BUSY":
			// Everything from here on is unresolved; keep draining replies
			// so the connection stays usable for the retry.
			advance = false
			retryAfter = retryHint(detail)
		case "GONE":
			c.counters.Inc("gone")
			return resolved, retryAfter, &SessionExpiredError{ID: c.sid}
		default:
			return resolved, retryAfter, &ProtocolError{Detail: fmt.Sprintf("bad reply %q", reply)}
		}
	}
	return resolved, retryAfter, nil
}

package collab

import (
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Admission configures the front door's load-shedding gates. The zero
// value admits everything (no session cap, no rate limit, no merge
// backpressure) with default replay-window and idle-eviction bounds.
//
// All gates shed with explicit BUSY protocol replies carrying a
// retry-after hint, instead of letting the accept queue collapse: a shed
// client backs off and retries, an admitted client is never silently
// dropped.
type Admission struct {
	// MaxSessions caps live sessions (attached + detached-but-resumable).
	// A HELLO past the cap is shed with BUSY. Zero means unlimited.
	MaxSessions int

	// MaxPending caps merges in flight across all sessions: a mutating
	// request arriving while MaxPending merges are mid-Sync is shed with
	// BUSY, and GETs degrade to the connection task's local (possibly
	// stale) copy instead of adding merge load. Zero means unlimited.
	MaxPending int

	// RateBurst is the per-session token-bucket capacity; RateEvery is how
	// many logical ticks (server-wide processed requests) refill one
	// token. RateBurst zero disables rate limiting; RateEvery zero means 1.
	RateBurst int
	RateEvery int

	// WindowSize bounds the per-session replay window of acked replies
	// (default 8). A reconnecting client may re-send any request within
	// the window and get the recorded reply without re-execution; past the
	// window the session is no longer exactly-once and resume is refused.
	WindowSize int

	// IdleTicks is how many logical ticks a detached session survives
	// before eviction (default ~1M). IdleJitter adds a seeded per-session
	// offset in [0, IdleJitter) so evictions spread deterministically.
	// Logical time only advances with traffic, so an idle server never
	// evicts — eviction is a pure function of request ordering and seed.
	IdleTicks  uint64
	IdleJitter uint64

	// RetryAfter is the backoff hint advertised in BUSY replies
	// (default 2ms).
	RetryAfter time.Duration
}

// retryMillis renders the advertised retry-after hint.
func (a Admission) retryMillis() int64 {
	d := a.RetryAfter
	if d <= 0 {
		d = 2 * time.Millisecond
	}
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Options configures a resilient server (ServeWith / ServeDocsWith).
type Options struct {
	// Admission sets the load-shedding gates.
	Admission Admission
	// Seed drives the deterministic eviction jitter.
	Seed int64
	// Counters receives the front door's accounting (admitted, shed,
	// resumed, replayed, evicted, busy_rate, busy_merges, degraded_get,
	// readonly_refused, ...). A fresh set is created when nil.
	Counters *stats.Counters
	// Tracer, when non-nil, receives session spans (hello/resume/evict)
	// and the task runtime's spawn/clone/merge spans.
	Tracer *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.Counters == nil {
		o.Counters = stats.NewCounters()
	}
	return o
}

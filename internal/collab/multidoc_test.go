package collab

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/memnet"
)

func startMultiServer(t *testing.T, initial map[string]string) (*MultiServer, *memnet.Listener, func() *MultiServer) {
	t.Helper()
	l := memnet.Listen(16)
	s := ServeDocs(l, initial)
	stop := func() *MultiServer {
		l.Close()
		done := make(chan struct{})
		go func() {
			s.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("multi-doc server did not shut down")
		}
		return s
	}
	return s, l, stop
}

func TestMultiDocBasics(t *testing.T) {
	_, l, stop := startMultiServer(t, map[string]string{
		"notes": "n",
		"todo":  "t",
	})
	c, err := Dial(l)
	if err != nil {
		t.Fatal(err)
	}
	names, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if names != "notes,todo" {
		t.Fatalf("names = %q", names)
	}
	if _, err := c.Insert(0, "x"); err == nil {
		t.Fatal("editing before USE should error")
	}
	doc, err := c.Use("notes")
	if err != nil || doc != "n" {
		t.Fatalf("use notes = %q, %v", doc, err)
	}
	if doc, err = c.Insert(1, "ote"); err != nil || doc != "note" {
		t.Fatalf("insert = %q, %v", doc, err)
	}
	if doc, err = c.Use("todo"); err != nil || doc != "t" {
		t.Fatalf("use todo = %q, %v", doc, err)
	}
	if doc, err = c.Insert(1, "odo"); err != nil || doc != "todo" {
		t.Fatalf("insert = %q, %v", doc, err)
	}
	if _, err := c.Use("missing"); err == nil {
		t.Fatal("unknown document should error")
	}
	c.Close()
	s := stop()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Document("notes"); got != "note" {
		t.Fatalf("notes = %q", got)
	}
	if got, _ := s.Document("todo"); got != "todo" {
		t.Fatalf("todo = %q", got)
	}
	if _, ok := s.Document("missing"); ok {
		t.Fatal("missing doc should not resolve")
	}
	if s.Edits() != 2 {
		t.Fatalf("edits = %d", s.Edits())
	}
	if got := s.Names(); len(got) != 2 || got[0] != "notes" {
		t.Fatalf("names = %v", got)
	}
}

// TestMultiDocConcurrentClients has clients hammer two documents
// concurrently — same and different documents — and checks nothing is
// lost anywhere.
func TestMultiDocConcurrentClients(t *testing.T) {
	_, l, stop := startMultiServer(t, map[string]string{"a": "", "b": ""})
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(l)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			docName := "a"
			if id%2 == 1 {
				docName = "b"
			}
			if _, err := c.Use(docName); err != nil {
				errs <- err
				return
			}
			for j := 0; j < 4; j++ {
				doc, err := c.Get()
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Insert(len([]rune(doc)), fmt.Sprintf("c%d-%d;", id, j)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	s := stop()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Document("a")
	b, _ := s.Document("b")
	for id := 0; id < clients; id++ {
		target := a
		if id%2 == 1 {
			target = b
		}
		for j := 0; j < 4; j++ {
			frag := fmt.Sprintf("c%d-%d;", id, j)
			if strings.Count(target, frag) != 1 {
				t.Errorf("fragment %q not exactly once in %q", frag, target)
			}
		}
	}
	if s.Edits() != clients*4 {
		t.Errorf("edits = %d", s.Edits())
	}
}

package collab

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/stats"
)

// The session wire grammar, layered over the legacy command set (see
// DESIGN.md §13). A connection's first line selects the mode:
//
//	HELLO                      → OK <sid>               new session
//	                           → BUSY <retry-ms>        admission shed, connection closed
//	RESUME <sid> <client-seq>  → OK <sid> <acked-seq>   session re-attached
//	                           → ERR SESSION-EXPIRED <sid>
//	                           → BUSY <retry-ms>
//	anything else              → served sessionless (legacy mode, no resume)
//
// Session-mode requests carry a client-chosen monotone sequence number:
//
//	<seq> INS <pos> <quoted-text> | <seq> DEL <pos> <n> | <seq> GET |
//	<seq> BYE | <seq> USE <name>  | <seq> LIST
//
// and replies echo it:
//
//	OK <seq> <payload>          applied (or replayed from the window)
//	ERR <seq> PROTOCOL <why>    request-level error; acked and replayable
//	ERR <seq> READONLY <why>    mutation refused: draining/degraded
//	ERR <seq> INTERNAL <why>    server-side merge failure (terminal)
//	BUSY <seq> <retry-ms>       shed by rate limit or merge backpressure;
//	                            NOT acked — retry the same seq
//	GONE <seq>                  seq fell outside the replay window;
//	                            exactly-once lost, session unusable
type front struct {
	adm      Admission
	table    *sessionTable
	counters *stats.Counters
	pending  atomic.Int64 // merges currently in flight
	draining atomic.Bool
}

func newFront(opts Options) *front {
	return &front{
		adm:      opts.Admission,
		table:    newSessionTable(opts.Admission, opts.Seed, opts.Counters, opts.Tracer),
		counters: opts.Counters,
	}
}

// sessionOutcome is one applied request, produced by a server-specific
// apply callback. payload renders the OK reply's argument and runs after
// the request's merge, so it always reflects the post-merge state.
type sessionOutcome struct {
	status  string // "OK", or an "ERR <detail>" protocol error
	payload func() string
	mutated bool
	quit    bool
	noSync  bool // USE/LIST answer from session state; no merge needed
	shed    bool // could not be applied now (e.g. shard unreachable):
	//              reply BUSY, do NOT ack — the client retries the seq
}

// sessionHandler binds the front door to one connection task: apply
// executes a command against the task's data copies, sync merges them
// into the root, onMutate accounts an applied edit. applyBatch, when
// set, handles a whole frame of already-admitted commands at once (the
// sharded router groups them into wire batches); it must return one
// outcome per command and, once an outcome sheds, shed every later one
// too — the front cannot ack past an unresolved sequence number.
type sessionHandler struct {
	apply      func(sess *Session, seq uint64, cmd string) sessionOutcome
	applyBatch func(sess *Session, seqs []uint64, cmds []string) []sessionOutcome
	sync       func() error
	onMutate   func()
}

// isHandshake reports whether a connection's first line enters session
// mode.
func isHandshake(line string) bool {
	return line == "HELLO" || strings.HasPrefix(line, "RESUME ")
}

// isMutation classifies a session-mode command as document-mutating for
// the drain gate and merge backpressure. Clamped no-op deletes still
// count: the gate prices the attempt, not the outcome.
func isMutation(cmd string) bool {
	return strings.HasPrefix(cmd, "INS ") || strings.HasPrefix(cmd, "DEL ")
}

// serve runs the session-mode protocol on one connection, from the
// handshake line to detach. It always returns nil for transport-level
// endings (the client can resume); only a failed merge — a runtime
// error — propagates.
func (f *front) serve(socket net.Conn, r *bufio.Reader, first string, h sessionHandler) error {
	sess, ok := f.handshake(socket, first)
	if !ok {
		return nil // shed or expired; reply already written, connection closes
	}
	defer func() {
		if sess.detachConn(socket, f.table.tick()) {
			f.counters.Inc("detached")
		}
	}()
	fr := shard.NewFrameReader(r)
	for {
		lines, line, isFrame, err := fr.Next()
		if err != nil {
			// Transport gone — or a damaged batch frame, which we treat
			// the same way: the client re-sends on a fresh connection and
			// the replay window deduplicates.
			return nil
		}
		if isFrame {
			f.counters.Inc("frames")
			quit, err := f.requestFrame(socket, sess, lines, h)
			if err != nil {
				return err
			}
			if quit {
				f.table.remove(sess)
				f.counters.Inc("closed")
				return nil
			}
			continue
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		seqStr, cmd, found := strings.Cut(line, " ")
		seq, perr := strconv.ParseUint(seqStr, 10, 64)
		if !found || perr != nil || seq == 0 {
			f.counters.Inc("bad_request")
			fmt.Fprintf(socket, "ERR 0 PROTOCOL numbered request expected, got %q\n", line)
			continue
		}
		quit, err := f.request(socket, sess, seq, cmd, h)
		if err != nil {
			return err
		}
		if quit {
			f.table.remove(sess)
			f.counters.Inc("closed")
			return nil
		}
	}
}

// handshake processes HELLO / RESUME and attaches the session.
func (f *front) handshake(socket net.Conn, first string) (*Session, bool) {
	switch {
	case first == "HELLO":
		sess, ok := f.table.hello()
		if !ok {
			f.counters.Inc("shed")
			fmt.Fprintf(socket, "BUSY %d\n", f.adm.retryMillis())
			return nil, false
		}
		f.counters.Inc("admitted")
		sess.attach(socket)
		fmt.Fprintf(socket, "OK %s\n", sess.id)
		return sess, true
	default: // "RESUME <sid> <client-seq>"
		fields := strings.Fields(first)
		if len(fields) != 3 {
			f.counters.Inc("bad_request")
			fmt.Fprintf(socket, "ERR 0 PROTOCOL usage: RESUME <sid> <seq>\n")
			return nil, false
		}
		sid := fields[1]
		sess, ok := f.table.resume(sid)
		if !ok {
			f.counters.Inc("expired_resume")
			fmt.Fprintf(socket, "ERR SESSION-EXPIRED %s\n", sid)
			return nil, false
		}
		f.counters.Inc("resumed")
		sess.attach(socket)
		fmt.Fprintf(socket, "OK %s %d\n", sess.id, sess.acked())
		return sess, true
	}
}

// request processes one numbered request under the session's processing
// lock: the seq check, the apply, the merge and the ack are atomic with
// respect to a racing resumed connection re-sending the same request, so
// every seq is applied exactly once no matter how many transports carried
// it.
func (f *front) request(socket net.Conn, sess *Session, seq uint64, cmd string, h sessionHandler) (quit bool, err error) {
	tick := f.table.tick()
	sess.proc.Lock()
	defer sess.proc.Unlock()
	if !sess.current(socket) {
		// A resume stole the session while we queued for proc. The client
		// re-sends on the new transport; applying here would spend backend
		// work (and, sharded, forwarding retries) on a dead socket.
		f.counters.Inc("stale_conn")
		return false, nil
	}

	switch last := sess.acked(); {
	case seq <= last:
		// At-least-once retry of an acked request: replay the recorded
		// reply, never re-apply.
		if reply, ok := sess.replay(seq); ok {
			f.counters.Inc("replayed")
			fmt.Fprintln(socket, reply)
		} else {
			f.counters.Inc("window_miss")
			fmt.Fprintf(socket, "GONE %d\n", seq)
		}
		return false, nil
	case seq != last+1:
		f.counters.Inc("bad_request")
		fmt.Fprintf(socket, "ERR %d PROTOCOL sequence gap (want %d)\n", seq, last+1)
		return false, nil
	}

	mutating := isMutation(cmd)
	if mutating && f.draining.Load() {
		// Graceful degradation: reads flow, mutations get a typed reason.
		f.counters.Inc("readonly_refused")
		reply := fmt.Sprintf("ERR %d READONLY draining", seq)
		sess.ack(seq, reply, f.adm.WindowSize)
		fmt.Fprintln(socket, reply)
		return false, nil
	}
	if !sess.takeToken(tick, f.adm) {
		f.counters.Inc("busy_rate")
		fmt.Fprintf(socket, "BUSY %d %d\n", seq, f.adm.retryMillis())
		return false, nil
	}
	overloaded := f.adm.MaxPending > 0 && f.pending.Load() >= int64(f.adm.MaxPending)
	if mutating && overloaded {
		f.counters.Inc("busy_merges")
		fmt.Fprintf(socket, "BUSY %d %d\n", seq, f.adm.retryMillis())
		return false, nil
	}

	out := h.apply(sess, seq, cmd)
	if out.shed {
		// The backend could not take the request (shard handoff or outage
		// in flight): shed without acking so the retry lands cleanly.
		f.counters.Inc("busy_route")
		fmt.Fprintf(socket, "BUSY %d %d\n", seq, f.adm.retryMillis())
		return false, nil
	}
	if out.mutated {
		h.onMutate()
	}
	degraded := overloaded && !out.mutated && strings.HasPrefix(cmd, "GET")
	if degraded {
		// Under merge backpressure a GET answers from the connection
		// task's local copy — possibly one exchange stale — instead of
		// joining the merge queue.
		f.counters.Inc("degraded_get")
	} else if !out.noSync {
		f.pending.Add(1)
		err := h.sync()
		f.pending.Add(-1)
		if err != nil {
			fmt.Fprintf(socket, "ERR %d INTERNAL %v\n", seq, err)
			return false, err
		}
	}
	var reply string
	if out.status == "OK" {
		reply = fmt.Sprintf("OK %d %s", seq, out.payload())
	} else {
		reply = fmt.Sprintf("ERR %d PROTOCOL %s", seq, strings.TrimPrefix(out.status, "ERR "))
	}
	sess.ack(seq, reply, f.adm.WindowSize)
	fmt.Fprintln(socket, reply)
	return out.quit, nil
}

// requestFrame processes one batch frame of numbered requests under the
// session's processing lock. Admission runs per request in frame order
// against a virtual acked frontier; every admitted command is applied,
// the whole frame merges once (the batching win), and acks are recorded
// strictly in sequence order. The invariant that makes this safe is the
// same one request() keeps: a seq is acked only when every earlier seq
// is acked, so once one request is shed (BUSY) or refused without an
// ack, everything after it in the frame is shed too — even if a backend
// already applied it, the retry resolves by replay.
func (f *front) requestFrame(socket net.Conn, sess *Session, frame []string, h sessionHandler) (quit bool, err error) {
	sess.proc.Lock()
	defer sess.proc.Unlock()
	if !sess.current(socket) {
		// Same stale-attachment bailout as request(): under chaos, resumed
		// clients can queue dozens of dead connections on proc; each must
		// release it immediately or the live connection starves behind
		// forwarding retries done on behalf of sockets nobody reads.
		f.counters.Inc("stale_conn")
		return false, nil
	}

	type item struct {
		seq     uint64
		reply   string // early reply; "" while the outcome is pending
		ackable bool   // early reply that acks (READONLY refusal)
		applyAt int    // index into cmds, or -1
	}
	items := make([]item, 0, len(frame))
	var seqs []uint64
	var cmds []string
	frontier := sess.acked()
	blocked := false // a non-acking refusal poisons the rest of the frame

	for _, line := range frame {
		tick := f.table.tick()
		seqStr, cmd, found := strings.Cut(line, " ")
		seq, perr := strconv.ParseUint(seqStr, 10, 64)
		if !found || perr != nil || seq == 0 {
			f.counters.Inc("bad_request")
			items = append(items, item{reply: fmt.Sprintf("ERR 0 PROTOCOL numbered request expected, got %q", line), applyAt: -1})
			continue
		}
		it := item{seq: seq, applyAt: -1}
		switch {
		case seq <= sess.acked():
			if reply, ok := sess.replay(seq); ok {
				f.counters.Inc("replayed")
				it.reply = reply
			} else {
				f.counters.Inc("window_miss")
				it.reply = fmt.Sprintf("GONE %d", seq)
			}
		case blocked:
			it.reply = fmt.Sprintf("BUSY %d %d", seq, f.adm.retryMillis())
		case seq != frontier+1:
			f.counters.Inc("bad_request")
			it.reply = fmt.Sprintf("ERR %d PROTOCOL sequence gap (want %d)", seq, frontier+1)
		default:
			mutating := isMutation(cmd)
			switch {
			case mutating && f.draining.Load():
				f.counters.Inc("readonly_refused")
				it.reply = fmt.Sprintf("ERR %d READONLY draining", seq)
				it.ackable = true
				frontier++
			case !sess.takeToken(tick, f.adm):
				f.counters.Inc("busy_rate")
				it.reply = fmt.Sprintf("BUSY %d %d", seq, f.adm.retryMillis())
				blocked = true
			case mutating && f.adm.MaxPending > 0 && f.pending.Load() >= int64(f.adm.MaxPending):
				f.counters.Inc("busy_merges")
				it.reply = fmt.Sprintf("BUSY %d %d", seq, f.adm.retryMillis())
				blocked = true
			default:
				it.applyAt = len(cmds)
				seqs = append(seqs, seq)
				cmds = append(cmds, cmd)
				frontier++
			}
		}
		items = append(items, it)
	}

	var outs []sessionOutcome
	if len(cmds) > 0 {
		if h.applyBatch != nil {
			outs = h.applyBatch(sess, seqs, cmds)
		} else {
			outs = make([]sessionOutcome, len(cmds))
			for i := range cmds {
				outs[i] = h.apply(sess, seqs[i], cmds[i])
			}
		}
		needSync := false
		for _, out := range outs {
			if out.shed {
				continue
			}
			if out.mutated {
				h.onMutate()
			}
			if !out.noSync {
				needSync = true
			}
		}
		if needSync {
			f.pending.Add(1)
			err := h.sync()
			f.pending.Add(-1)
			if err != nil {
				fmt.Fprintf(socket, "ERR %d INTERNAL %v\n", seqs[0], err)
				return false, err
			}
		}
	}

	// Finalize in frame order: payloads render post-merge, acks advance
	// the real frontier sequentially, and the first shed converts every
	// later would-be ack into a BUSY (no gaps in the ack order).
	var buf []byte
	shed := false
	for _, it := range items {
		reply := it.reply
		switch {
		case it.applyAt >= 0:
			out := outs[it.applyAt]
			if shed || out.shed {
				shed = true
				f.counters.Inc("busy_route")
				reply = fmt.Sprintf("BUSY %d %d", it.seq, f.adm.retryMillis())
				break
			}
			if out.status == "OK" {
				reply = fmt.Sprintf("OK %d %s", it.seq, out.payload())
			} else {
				reply = fmt.Sprintf("ERR %d PROTOCOL %s", it.seq, strings.TrimPrefix(out.status, "ERR "))
			}
			sess.ack(it.seq, reply, f.adm.WindowSize)
			if out.quit {
				quit = true
			}
		case it.ackable:
			if shed {
				reply = fmt.Sprintf("BUSY %d %d", it.seq, f.adm.retryMillis())
				break
			}
			sess.ack(it.seq, reply, f.adm.WindowSize)
		}
		buf = append(buf, reply...)
		buf = append(buf, '\n')
	}
	socket.Write(buf)
	return quit, nil
}

// drain flips the server read-only: GETs are served, mutations refused
// with a typed READONLY reason.
func (f *front) drain() { f.draining.Store(true) }

// undrain restores full service.
func (f *front) undrain() { f.draining.Store(false) }

// shutdown flushes every live session (closing attached transports so
// connection tasks complete). Called by the accept task on its way out.
func (f *front) shutdown() { f.table.flush() }

package collab

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/stats"
)

// The session wire grammar, layered over the legacy command set (see
// DESIGN.md §13). A connection's first line selects the mode:
//
//	HELLO                      → OK <sid>               new session
//	                           → BUSY <retry-ms>        admission shed, connection closed
//	RESUME <sid> <client-seq>  → OK <sid> <acked-seq>   session re-attached
//	                           → ERR SESSION-EXPIRED <sid>
//	                           → BUSY <retry-ms>
//	anything else              → served sessionless (legacy mode, no resume)
//
// Session-mode requests carry a client-chosen monotone sequence number:
//
//	<seq> INS <pos> <quoted-text> | <seq> DEL <pos> <n> | <seq> GET |
//	<seq> BYE | <seq> USE <name>  | <seq> LIST
//
// and replies echo it:
//
//	OK <seq> <payload>          applied (or replayed from the window)
//	ERR <seq> PROTOCOL <why>    request-level error; acked and replayable
//	ERR <seq> READONLY <why>    mutation refused: draining/degraded
//	ERR <seq> INTERNAL <why>    server-side merge failure (terminal)
//	BUSY <seq> <retry-ms>       shed by rate limit or merge backpressure;
//	                            NOT acked — retry the same seq
//	GONE <seq>                  seq fell outside the replay window;
//	                            exactly-once lost, session unusable
type front struct {
	adm      Admission
	table    *sessionTable
	counters *stats.Counters
	pending  atomic.Int64 // merges currently in flight
	draining atomic.Bool
}

func newFront(opts Options) *front {
	return &front{
		adm:      opts.Admission,
		table:    newSessionTable(opts.Admission, opts.Seed, opts.Counters, opts.Tracer),
		counters: opts.Counters,
	}
}

// sessionOutcome is one applied request, produced by a server-specific
// apply callback. payload renders the OK reply's argument and runs after
// the request's merge, so it always reflects the post-merge state.
type sessionOutcome struct {
	status  string // "OK", or an "ERR <detail>" protocol error
	payload func() string
	mutated bool
	quit    bool
	noSync  bool // USE/LIST answer from session state; no merge needed
}

// sessionHandler binds the front door to one connection task: apply
// executes a command against the task's data copies, sync merges them
// into the root, onMutate accounts an applied edit.
type sessionHandler struct {
	apply    func(sess *Session, cmd string) sessionOutcome
	sync     func() error
	onMutate func()
}

// isHandshake reports whether a connection's first line enters session
// mode.
func isHandshake(line string) bool {
	return line == "HELLO" || strings.HasPrefix(line, "RESUME ")
}

// isMutation classifies a session-mode command as document-mutating for
// the drain gate and merge backpressure. Clamped no-op deletes still
// count: the gate prices the attempt, not the outcome.
func isMutation(cmd string) bool {
	return strings.HasPrefix(cmd, "INS ") || strings.HasPrefix(cmd, "DEL ")
}

// serve runs the session-mode protocol on one connection, from the
// handshake line to detach. It always returns nil for transport-level
// endings (the client can resume); only a failed merge — a runtime
// error — propagates.
func (f *front) serve(socket net.Conn, r *bufio.Reader, first string, h sessionHandler) error {
	sess, ok := f.handshake(socket, first)
	if !ok {
		return nil // shed or expired; reply already written, connection closes
	}
	defer func() {
		if sess.detachConn(socket, f.table.tick()) {
			f.counters.Inc("detached")
		}
	}()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil // transport gone: detach, session stays resumable
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		seqStr, cmd, found := strings.Cut(line, " ")
		seq, perr := strconv.ParseUint(seqStr, 10, 64)
		if !found || perr != nil || seq == 0 {
			f.counters.Inc("bad_request")
			fmt.Fprintf(socket, "ERR 0 PROTOCOL numbered request expected, got %q\n", line)
			continue
		}
		quit, err := f.request(socket, sess, seq, cmd, h)
		if err != nil {
			return err
		}
		if quit {
			f.table.remove(sess)
			f.counters.Inc("closed")
			return nil
		}
	}
}

// handshake processes HELLO / RESUME and attaches the session.
func (f *front) handshake(socket net.Conn, first string) (*Session, bool) {
	switch {
	case first == "HELLO":
		sess, ok := f.table.hello()
		if !ok {
			f.counters.Inc("shed")
			fmt.Fprintf(socket, "BUSY %d\n", f.adm.retryMillis())
			return nil, false
		}
		f.counters.Inc("admitted")
		sess.attach(socket)
		fmt.Fprintf(socket, "OK %s\n", sess.id)
		return sess, true
	default: // "RESUME <sid> <client-seq>"
		fields := strings.Fields(first)
		if len(fields) != 3 {
			f.counters.Inc("bad_request")
			fmt.Fprintf(socket, "ERR 0 PROTOCOL usage: RESUME <sid> <seq>\n")
			return nil, false
		}
		sid := fields[1]
		sess, ok := f.table.resume(sid)
		if !ok {
			f.counters.Inc("expired_resume")
			fmt.Fprintf(socket, "ERR SESSION-EXPIRED %s\n", sid)
			return nil, false
		}
		f.counters.Inc("resumed")
		sess.attach(socket)
		fmt.Fprintf(socket, "OK %s %d\n", sess.id, sess.acked())
		return sess, true
	}
}

// request processes one numbered request under the session's processing
// lock: the seq check, the apply, the merge and the ack are atomic with
// respect to a racing resumed connection re-sending the same request, so
// every seq is applied exactly once no matter how many transports carried
// it.
func (f *front) request(socket net.Conn, sess *Session, seq uint64, cmd string, h sessionHandler) (quit bool, err error) {
	tick := f.table.tick()
	sess.proc.Lock()
	defer sess.proc.Unlock()

	switch last := sess.acked(); {
	case seq <= last:
		// At-least-once retry of an acked request: replay the recorded
		// reply, never re-apply.
		if reply, ok := sess.replay(seq); ok {
			f.counters.Inc("replayed")
			fmt.Fprintln(socket, reply)
		} else {
			f.counters.Inc("window_miss")
			fmt.Fprintf(socket, "GONE %d\n", seq)
		}
		return false, nil
	case seq != last+1:
		f.counters.Inc("bad_request")
		fmt.Fprintf(socket, "ERR %d PROTOCOL sequence gap (want %d)\n", seq, last+1)
		return false, nil
	}

	mutating := isMutation(cmd)
	if mutating && f.draining.Load() {
		// Graceful degradation: reads flow, mutations get a typed reason.
		f.counters.Inc("readonly_refused")
		reply := fmt.Sprintf("ERR %d READONLY draining", seq)
		sess.ack(seq, reply, f.adm.WindowSize)
		fmt.Fprintln(socket, reply)
		return false, nil
	}
	if !sess.takeToken(tick, f.adm) {
		f.counters.Inc("busy_rate")
		fmt.Fprintf(socket, "BUSY %d %d\n", seq, f.adm.retryMillis())
		return false, nil
	}
	overloaded := f.adm.MaxPending > 0 && f.pending.Load() >= int64(f.adm.MaxPending)
	if mutating && overloaded {
		f.counters.Inc("busy_merges")
		fmt.Fprintf(socket, "BUSY %d %d\n", seq, f.adm.retryMillis())
		return false, nil
	}

	out := h.apply(sess, cmd)
	if out.mutated {
		h.onMutate()
	}
	degraded := overloaded && !out.mutated && strings.HasPrefix(cmd, "GET")
	if degraded {
		// Under merge backpressure a GET answers from the connection
		// task's local copy — possibly one exchange stale — instead of
		// joining the merge queue.
		f.counters.Inc("degraded_get")
	} else if !out.noSync {
		f.pending.Add(1)
		err := h.sync()
		f.pending.Add(-1)
		if err != nil {
			fmt.Fprintf(socket, "ERR %d INTERNAL %v\n", seq, err)
			return false, err
		}
	}
	var reply string
	if out.status == "OK" {
		reply = fmt.Sprintf("OK %d %s", seq, out.payload())
	} else {
		reply = fmt.Sprintf("ERR %d PROTOCOL %s", seq, strings.TrimPrefix(out.status, "ERR "))
	}
	sess.ack(seq, reply, f.adm.WindowSize)
	fmt.Fprintln(socket, reply)
	return out.quit, nil
}

// drain flips the server read-only: GETs are served, mutations refused
// with a typed READONLY reason.
func (f *front) drain() { f.draining.Store(true) }

// undrain restores full service.
func (f *front) undrain() { f.draining.Store(false) }

// shutdown flushes every live session (closing attached transports so
// connection tasks complete). Called by the accept task on its way out.
func (f *front) shutdown() { f.table.flush() }

package collab

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/journal"
	"repro/internal/memnet"
	"repro/internal/mergeable"
	"repro/internal/shard"
	"repro/internal/stats"
)

// ListenDialer is a transport endpoint usable from both sides: the shard
// host accepts on it, the router dials it. memnet and faultnet listeners
// both qualify, so the internal shard fabric runs hermetic or under
// chaos with the same code.
type ListenDialer interface {
	Listener
	Dialer
}

// ShardedOptions configures a sharded document service.
type ShardedOptions struct {
	// Front configures the public session front door (admission, seed,
	// counters, tracer) exactly as for ServeDocsWith.
	Front Options
	// Shards is the initial shard count (ids 0..Shards-1). Default 1.
	Shards int
	// Replicas is the virtual-point count per shard on the hash ring;
	// 0 means shard.DefaultReplicas.
	Replicas int
	// Pipes is the number of router→shard connections per shard. More
	// pipes mean more in-flight batches merging concurrently inside one
	// shard. Default 4.
	Pipes int
	// Dir, when set, enables per-shard crash recovery: each shard
	// incarnation journals to Dir/shard-NNNN/ops.log and KillShard /
	// ResumeShard become available.
	Dir string
	// ShardNet builds a fresh transport per shard incarnation (it is
	// called again after every handoff restart or resume). Default:
	// in-process memnet.
	ShardNet func(id int) ListenDialer
	// NoBatch disables router-side op batching: every forwarded op is
	// its own wire exchange and its own shard merge. The benchmarking
	// ablation for the batching win.
	NoBatch bool
	// PipeTimeout bounds each router→shard exchange; an expired pipe is
	// dropped and the op retried (under faultnet a partitioned write
	// would otherwise block forever). Default 2s.
	PipeTimeout time.Duration
	// RouterID prefixes retry identities so routers never collide.
	// Default "r0".
	RouterID string
	// UnsafeLiveHandoff plants the stale-owner bug for the schedule
	// explorer: handoffs snapshot documents from the still-running old
	// owner without an epoch fence, so a write racing the handoff lands
	// on the zombie copy and is silently lost. Never set outside tests.
	UnsafeLiveHandoff bool
}

func (o ShardedOptions) withDefaults() ShardedOptions {
	o.Front = o.Front.withDefaults()
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Pipes <= 0 {
		o.Pipes = 4
	}
	if o.PipeTimeout <= 0 {
		o.PipeTimeout = 2 * time.Second
	}
	if o.RouterID == "" {
		o.RouterID = "r0"
	}
	if o.ShardNet == nil {
		o.ShardNet = func(int) ListenDialer { return memnet.Listen(64) }
	}
	return o
}

// errMoved reports a shard that no longer owns the addressed document;
// the router refreshes its route and retries.
var errMoved = errors.New("collab: document moved off shard")

// ShardedServer is the routing front of the sharded document service:
// clients speak the ordinary session protocol to it, it maps each
// document onto its owning shard with a consistent-hash ring and
// forwards ops over the internal APPLY protocol, batching run-adjacent
// ops into CRC-framed wire batches. Each shard is an independent
// single-writer merge loop (a task tree of its own) with an optional
// per-shard journal; membership changes move documents between shards
// behind an epoch fence, and a SIGKILLed shard resumes from its journal
// without breaking exactly-once.
type ShardedServer struct {
	opts     ShardedOptions
	listener Listener
	names    []string // all documents, sorted
	front    *front
	counters *stats.Counters
	hist     *stats.Histogram

	mu      sync.RWMutex
	epoch   uint64
	ring    *shard.Ring
	route   []int32 // docIdx → owning shard id
	hosts   map[int]*shardHost
	pipes   map[int]*shardPipes
	killed  map[int]bool
	zombies []*shardHost // live-handoff leftovers (planted-bug mode)

	editsBanked int64 // edits of incarnations retired by handoffs

	connWG     sync.WaitGroup
	acceptDone chan struct{}
	closed     atomic.Bool

	finals     map[string]string
	finalEdits int64
}

// ServeSharded starts a sharded document service over the public
// listener. initial maps document names to initial contents; the
// document set is fixed for the server's lifetime, only ownership
// moves.
func ServeSharded(public Listener, initial map[string]string, opts ShardedOptions) (*ShardedServer, error) {
	opts = opts.withDefaults()
	names := make([]string, 0, len(initial))
	for name := range initial {
		if name == "" || strings.ContainsAny(name, " \n\r") {
			return nil, fmt.Errorf("collab: bad document name %q", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	s := &ShardedServer{
		opts:       opts,
		listener:   public,
		names:      names,
		front:      newFront(opts.Front),
		counters:   opts.Front.Counters,
		hist:       stats.NewLatencyHistogram(),
		epoch:      1,
		hosts:      make(map[int]*shardHost),
		pipes:      make(map[int]*shardPipes),
		killed:     make(map[int]bool),
		acceptDone: make(chan struct{}),
	}
	ids := make([]int, opts.Shards)
	for i := range ids {
		ids[i] = i
	}
	s.ring = shard.New(ids, opts.Replicas, s.epoch)
	s.route = make([]int32, len(names))
	contents := make(map[int]map[string]string, len(ids))
	for _, id := range ids {
		contents[id] = make(map[string]string)
	}
	for i, name := range names {
		id := s.ring.Owner(name)
		s.route[i] = int32(id)
		contents[id][name] = initial[name]
	}
	for _, id := range ids {
		if err := s.startShard(id, s.epoch, contents[id], nil, 0); err != nil {
			s.teardown()
			return nil, err
		}
	}

	go func() {
		defer close(s.acceptDone)
		for {
			socket, err := s.listener.Accept()
			if err != nil {
				return
			}
			s.connWG.Add(1)
			go func() {
				defer s.connWG.Done()
				s.serveConn(socket)
			}()
		}
	}()
	return s, nil
}

// startShard boots one shard incarnation and its router pipes. Caller
// holds s.mu (or is in single-threaded construction).
func (s *ShardedServer) startShard(id int, epoch uint64, contents map[string]string, dedupSeed map[string]string, editsBase int64) error {
	cfg := shardHostConfig{
		counters: s.counters,
		tracer:   s.opts.Front.Tracer,
		hist:     s.hist,
		fence:    !s.opts.UnsafeLiveHandoff,
	}
	if s.opts.Dir != "" {
		dir, err := journal.ShardDir(s.opts.Dir, id)
		if err != nil {
			return err
		}
		log, err := shard.CreateOpLog(filepath.Join(dir, "ops.log"))
		if err != nil {
			return err
		}
		cfg.log = log
	}
	net := s.opts.ShardNet(id)
	h, err := startShardHost(id, epoch, contents, dedupSeed, editsBase, net, cfg)
	if err != nil {
		if cfg.log != nil {
			cfg.log.Close()
		}
		net.Close()
		return err
	}
	s.hosts[id] = h
	s.pipes[id] = newShardPipes(id, net, s.opts.Pipes, s.opts.PipeTimeout)
	return nil
}

// teardown kills everything during a failed construction.
func (s *ShardedServer) teardown() {
	for _, h := range s.hosts {
		h.kill()
	}
	for _, pp := range s.pipes {
		pp.closeAll()
	}
}

func (s *ShardedServer) serveConn(socket net.Conn) {
	defer socket.Close()
	r := bufio.NewReader(socket)
	first, err := r.ReadString('\n')
	if err != nil {
		return
	}
	first = strings.TrimSpace(first)
	if !isHandshake(first) {
		// The sharded front is session-only: exactly-once forwarding
		// leans on session retry identities, which legacy mode lacks.
		s.counters.Inc("legacy_refused")
		fmt.Fprintf(socket, "ERR sharded service is session-only; start with HELLO\n")
		return
	}
	h := sessionHandler{
		apply:    s.applySharded,
		sync:     func() error { return nil }, // merges happen shard-side
		onMutate: func() { s.counters.Inc("routed_edits") },
	}
	if !s.opts.NoBatch {
		h.applyBatch = s.applyShardedBatch
	}
	s.front.serve(socket, r, first, h)
}

// ridFor builds the retry identity for a session request. It is a pure
// function of (router, session, seq), so no matter how many times the
// client or the router retries, the shard sees one identity and applies
// once.
func (s *ShardedServer) ridFor(sess *Session, seq uint64) string {
	return s.opts.RouterID + "." + sess.ID() + "." + strconv.FormatUint(seq, 10)
}

// pipeIdxFor spreads sessions across a shard's pipe pool so the shard's
// OT merge loop sees genuinely concurrent edit streams.
func pipeIdxFor(sess *Session) int {
	id := sess.ID()
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 0x100000001b3
	}
	return int(h % (1 << 31))
}

// applySharded routes one session command. USE/LIST/BYE resolve at the
// router; document ops forward to the owning shard.
func (s *ShardedServer) applySharded(sess *Session, seq uint64, cmd string) sessionOutcome {
	if name, ok := strings.CutPrefix(cmd, "USE "); ok {
		idx := s.docIndexOf(strings.TrimSpace(name))
		if idx < 0 {
			return sessionOutcome{status: fmt.Sprintf("ERR no document %q", name), noSync: true}
		}
		sess.setDocIdx(idx)
		payload, err := s.forward(sess, "-", idx, "GET")
		if err != nil {
			return s.classifyForward(err)
		}
		return sessionOutcome{status: "OK", payload: func() string { return payload }, noSync: true}
	}
	if cmd == "LIST" {
		return sessionOutcome{
			status:  "OK",
			payload: func() string { return strconv.Quote(strings.Join(s.names, ",")) },
			noSync:  true,
		}
	}
	if cmd == "BYE" {
		return sessionOutcome{status: "OK", payload: func() string { return strconv.Quote("") }, quit: true, noSync: true}
	}
	idx := sess.getDocIdx()
	if idx < 0 {
		return sessionOutcome{status: "ERR select a document with USE first", noSync: true}
	}
	rid := "-"
	mutation := isMutation(cmd)
	if mutation {
		rid = s.ridFor(sess, seq)
	}
	payload, err := s.forwardOn(pipeIdxFor(sess), rid, idx, cmd)
	if err != nil {
		return s.classifyForward(err)
	}
	return sessionOutcome{status: "OK", payload: func() string { return payload }, mutated: mutation, noSync: true}
}

// applyShardedBatch routes a frame of admitted commands, grouping runs
// of document mutations bound for the same shard into one wire batch
// (one frame out, one shard merge, one journal flush). Non-mutations
// break runs and route singly. Once anything sheds, everything after it
// sheds too — see sessionHandler.
func (s *ShardedServer) applyShardedBatch(sess *Session, seqs []uint64, cmds []string) []sessionOutcome {
	outs := make([]sessionOutcome, len(cmds))
	shedFrom := func(i int) {
		for ; i < len(cmds); i++ {
			outs[i] = sessionOutcome{shed: true}
		}
	}
	i := 0
	for i < len(cmds) {
		if !isMutation(cmds[i]) {
			outs[i] = s.applySharded(sess, seqs[i], cmds[i])
			if outs[i].shed {
				shedFrom(i + 1)
				return outs
			}
			i++
			continue
		}
		idx := sess.getDocIdx()
		if idx < 0 {
			outs[i] = sessionOutcome{status: "ERR select a document with USE first", noSync: true}
			i++
			continue
		}
		j := i
		for j < len(cmds) && isMutation(cmds[j]) {
			j++
		}
		if !s.forwardRun(sess, seqs[i:j], cmds[i:j], idx, outs[i:j]) {
			shedFrom(j)
			return outs
		}
		i = j
	}
	return outs
}

// classifyForward turns a forwarding failure into a session outcome.
func (s *ShardedServer) classifyForward(err error) sessionOutcome {
	var applyErr *shardApplyError
	if errors.As(err, &applyErr) {
		return sessionOutcome{status: "ERR " + applyErr.detail, noSync: true}
	}
	return sessionOutcome{shed: true}
}

// shardApplyError is a resolved per-op refusal from a shard (bad
// position, bad literal, ...): the op was never applied and retrying the
// same bytes cannot help.
type shardApplyError struct{ detail string }

func (e *shardApplyError) Error() string { return "collab: shard: " + e.detail }

// forwardAttempts bounds the router's internal retry loop. When it runs
// out (shard killed and not yet resumed, say) the op is shed to the
// client, whose own retry loop carries the longer wait.
const forwardAttempts = 24

func (s *ShardedServer) forward(sess *Session, rid string, docIdx int, cmd string) (string, error) {
	return s.forwardOn(pipeIdxFor(sess), rid, docIdx, cmd)
}

// forwardOn drives one op to its owning shard: route lookup, pipe
// exchange, and the retry loop over transport failures, epoch fences and
// ownership moves. Returns the quoted post-merge document.
func (s *ShardedServer) forwardOn(pipeIdx int, rid string, docIdx int, cmd string) (string, error) {
	var lastErr error
	for attempt := 0; attempt < forwardAttempts; attempt++ {
		if attempt > 0 {
			s.backoff(attempt)
		}
		if s.closed.Load() {
			return "", net.ErrClosed
		}
		s.mu.RLock()
		epoch := s.epoch
		id := int(s.route[docIdx])
		pp := s.pipes[id]
		s.mu.RUnlock()
		if pp == nil {
			lastErr = net.ErrClosed
			continue
		}
		line := fmt.Sprintf("APPLY %s %d %s %s", rid, epoch, s.names[docIdx], cmd)
		replies, err := pp.exchange(pipeIdx, epoch, []string{line})
		if err != nil {
			lastErr = s.countForwardError(err)
			continue
		}
		payload, err := s.classifyReply(id, replies[0])
		if err != nil {
			var applyErr *shardApplyError
			if errors.As(err, &applyErr) {
				return "", err
			}
			lastErr = s.countForwardError(err)
			continue
		}
		s.counters.Inc("forwarded")
		return payload, nil
	}
	return "", lastErr
}

// forwardRun drives a run of mutations as one batch frame. Each op's
// outcome lands in outs; returns false when the run gave up (the
// unresolved tail is shed — callers shed the rest of their frame too).
// Re-sending a partially-applied frame is safe: applied rids answer by
// replay.
func (s *ShardedServer) forwardRun(sess *Session, seqs []uint64, cmds []string, docIdx int, outs []sessionOutcome) bool {
	pipeIdx := pipeIdxFor(sess)
	rids := make([]string, len(cmds))
	for i := range cmds {
		rids[i] = s.ridFor(sess, seqs[i])
	}
	for attempt := 0; attempt < forwardAttempts; attempt++ {
		if attempt > 0 {
			s.backoff(attempt)
		}
		if s.closed.Load() {
			break
		}
		s.mu.RLock()
		epoch := s.epoch
		id := int(s.route[docIdx])
		pp := s.pipes[id]
		s.mu.RUnlock()
		if pp == nil {
			continue
		}
		lines := make([]string, len(cmds))
		for i := range cmds {
			lines[i] = fmt.Sprintf("APPLY %s %d %s %s", rids[i], epoch, s.names[docIdx], cmds[i])
		}
		replies, err := pp.exchange(pipeIdx, epoch, lines)
		if err != nil {
			s.countForwardError(err)
			continue
		}
		retry := false
		for i, reply := range replies {
			payload, cerr := s.classifyReply(id, reply)
			if cerr == nil {
				payload := payload
				outs[i] = sessionOutcome{status: "OK", payload: func() string { return payload }, mutated: true, noSync: true}
				continue
			}
			var applyErr *shardApplyError
			if errors.As(cerr, &applyErr) {
				outs[i] = sessionOutcome{status: "ERR " + applyErr.detail, noSync: true}
				continue
			}
			s.countForwardError(cerr)
			retry = true
			break
		}
		if !retry {
			s.counters.Inc("forwarded_batches")
			return true
		}
	}
	for i := range outs {
		outs[i] = sessionOutcome{shed: true}
	}
	return false
}

// classifyReply parses one shard reply line. OK returns the quoted
// document payload; ERR resolves as shardApplyError; STALE and MOVED
// return retriable routing errors (STALE carries the dist epoch
// taxonomy, so callers classify with errors.Is(err, dist.ErrStaleEpoch)).
func (s *ShardedServer) classifyReply(shardID int, reply string) (string, error) {
	status, rest, _ := strings.Cut(reply, " ")
	switch status {
	case "OK":
		_, payload, ok := strings.Cut(rest, " ")
		if !ok {
			return "", &shardApplyError{detail: fmt.Sprintf("malformed shard reply %q", reply)}
		}
		return payload, nil
	case "ERR":
		_, detail, _ := strings.Cut(rest, " ")
		return "", &shardApplyError{detail: detail}
	case "STALE":
		_, epochStr, _ := strings.Cut(rest, " ")
		e, _ := strconv.ParseUint(epochStr, 10, 64)
		return "", dist.StaleEpochError{Node: shardID, Epoch: e}
	case "MOVED":
		return "", errMoved
	default:
		return "", &shardApplyError{detail: fmt.Sprintf("malformed shard reply %q", reply)}
	}
}

// countForwardError accounts a retriable forwarding failure.
func (s *ShardedServer) countForwardError(err error) error {
	switch {
	case errors.Is(err, dist.ErrStaleEpoch):
		s.counters.Inc("route_stale")
	case errors.Is(err, errMoved):
		s.counters.Inc("route_moved")
	default:
		s.counters.Inc("pipe_errors")
	}
	return err
}

// backoff paces the forwarding retry loop: immediate for the first few
// attempts (fence races resolve as soon as the rebalance lock drops),
// then up to 10ms.
func (s *ShardedServer) backoff(attempt int) {
	if attempt < 3 {
		return
	}
	d := time.Duration(attempt-2) * time.Millisecond
	if d > 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	time.Sleep(d)
}

func (s *ShardedServer) docIndexOf(name string) int {
	lo, hi := 0, len(s.names)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.names[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.names) && s.names[lo] == name {
		return lo
	}
	return -1
}

// RouteOf returns the shard currently owning doc (-1 when unknown). The
// steady-state lookup is allocation-free.
func (s *ShardedServer) RouteOf(doc string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.docIndexOf(doc)
	if idx < 0 {
		return -1
	}
	return int(s.route[idx])
}

// Epoch returns the current fence epoch.
func (s *ShardedServer) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// ShardIDs returns the current ring membership.
func (s *ShardedServer) ShardIDs() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.IDs()
}

// AddShard joins a new shard id and rebalances documents onto it.
func (s *ShardedServer) AddShard(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring.Contains(id) {
		return fmt.Errorf("collab: shard %d already in the ring", id)
	}
	return s.rebalanceLocked(append(s.ring.IDs(), id))
}

// DrainShard removes a shard id from the ring, handing its documents to
// the survivors.
func (s *ShardedServer) DrainShard(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ring.Contains(id) {
		return fmt.Errorf("collab: shard %d not in the ring", id)
	}
	if s.ring.Len() == 1 {
		return fmt.Errorf("collab: cannot drain the last shard")
	}
	ids := make([]int, 0, s.ring.Len()-1)
	for _, m := range s.ring.IDs() {
		if m != id {
			ids = append(ids, m)
		}
	}
	return s.rebalanceLocked(ids)
}

// rebalanceLocked moves document ownership to a new ring at epoch+1.
//
// The safe path is a fence handoff: every shard whose document set
// changes is drained (listener and pipes closed, in-flight batches
// finish, task tree completes), its exact documents, applied-rid table
// and edit count are collected, and fresh incarnations start at the new
// epoch. Unaffected shards take the new epoch in place. Any op still in
// flight against an old incarnation either completed before the drain
// (and travels with the snapshot, rid included) or sees a dead pipe /
// STALE fence and retries against the new route — exactly once either
// way.
//
// With UnsafeLiveHandoff the fence is off and sources are left running
// while their documents are copied with live GETs — the planted
// lost-update bug the schedule explorer is expected to catch.
func (s *ShardedServer) rebalanceLocked(ids []int) error {
	if s.closed.Load() {
		return net.ErrClosed
	}
	if len(s.killed) > 0 {
		return fmt.Errorf("collab: rebalance with killed shards: resume them first")
	}
	newEpoch := s.epoch + 1
	newRing := shard.New(ids, s.opts.Replicas, newEpoch)
	newRoute := make([]int32, len(s.names))
	affected := make(map[int]bool)
	for i, name := range s.names {
		newRoute[i] = int32(newRing.Owner(name))
		if newRoute[i] != s.route[i] {
			affected[int(s.route[i])] = true
			affected[int(newRoute[i])] = true
		}
	}
	for id := range s.hosts {
		if !newRing.Contains(id) {
			affected[id] = true // leaving the ring: retire even if empty
		}
	}
	for _, id := range ids {
		if _, ok := s.hosts[id]; !ok {
			affected[id] = true // joining: must be started
		}
	}
	order := make([]int, 0, len(affected))
	for id := range affected {
		order = append(order, id)
	}
	sort.Ints(order)

	contents := make(map[string]string)
	dedup := make(map[string]string) // rid → doc, all retired incarnations
	if s.opts.UnsafeLiveHandoff {
		// BUG (planted): snapshot moved documents from their still-running
		// owners with live GETs and never fence or drain the sources. A
		// write that lands on the old owner after its document was copied
		// is acked there and never seen again.
		for i, name := range s.names {
			if newRoute[i] == s.route[i] {
				continue
			}
			doc, err := s.liveGetLocked(i)
			if err != nil {
				return fmt.Errorf("collab: live handoff snapshot of %q: %w", name, err)
			}
			contents[name] = doc
		}
		for _, id := range order {
			h := s.hosts[id]
			if h == nil {
				continue
			}
			for rid, doc := range h.dedupSnapshot() {
				dedup[rid] = doc
			}
			switch {
			case !newRing.Contains(id):
				// Drained source: left running, unrouted, unfenced — the
				// zombie at the heart of the bug.
				s.zombies = append(s.zombies, h)
				delete(s.hosts, id)
				if pp := s.pipes[id]; pp != nil {
					pp.closeAll()
				}
				delete(s.pipes, id)
			case shardGainsDocs(id, s.route, newRoute):
				// Destinations restart to adopt the moved documents; their
				// own documents are carried exactly (they are not the buggy
				// side of this handoff).
				h.shutdown()
				for k, v := range h.contents() {
					if _, moved := contents[k]; !moved {
						contents[k] = v
					}
				}
				s.editsBanked += h.finalEdits()
				delete(s.hosts, id)
				if pp := s.pipes[id]; pp != nil {
					pp.closeAll()
				}
				delete(s.pipes, id)
			default:
				// A source that only loses documents keeps running with the
				// lost documents still applied locally. Nothing routes here
				// anymore — except the in-flight write the bug loses.
			}
		}
	} else {
		for _, id := range order {
			h := s.hosts[id]
			if h == nil {
				continue
			}
			err := h.shutdown()
			// Even when the drain errors the incarnation is dead — the
			// listener, pipes and log are closed and the task tree has
			// completed — so collect its state either way and let the
			// rollback below restart it; returning without collecting
			// would strand its documents on a retired incarnation.
			for k, v := range h.contents() {
				contents[k] = v
			}
			for rid, doc := range h.dedupSnapshot() {
				dedup[rid] = doc
			}
			s.editsBanked += h.finalEdits()
			delete(s.hosts, id)
			if pp := s.pipes[id]; pp != nil {
				pp.closeAll()
			}
			delete(s.pipes, id)
			if err != nil {
				return s.rollbackRebalanceLocked(nil, contents, dedup,
					fmt.Errorf("collab: drain shard %d: %w", id, err))
			}
		}
	}

	// Start fresh incarnations for every affected member of the new ring
	// (in live-handoff mode, sources that merely lost documents are still
	// running and keep their incarnation). Any failure rolls the drained
	// shards back to the old epoch so their documents stay reachable.
	started := make([]int, 0, len(order))
	for _, id := range order {
		if !newRing.Contains(id) {
			continue
		}
		if _, running := s.hosts[id]; running {
			continue
		}
		owned := make(map[string]string)
		ownedDedup := make(map[string]string)
		for i, name := range s.names {
			if int(newRoute[i]) != id {
				continue
			}
			content, ok := contents[name]
			if !ok {
				return s.rollbackRebalanceLocked(started, contents, dedup,
					fmt.Errorf("collab: handoff lost document %q", name))
			}
			owned[name] = content
		}
		for rid, doc := range dedup {
			if idx := s.docIndexOf(doc); idx >= 0 && int(newRoute[idx]) == id {
				ownedDedup[rid] = doc
			}
		}
		if err := s.startShard(id, newEpoch, owned, ownedDedup, 0); err != nil {
			return s.rollbackRebalanceLocked(started, contents, dedup, err)
		}
		started = append(started, id)
	}
	// Unaffected shards keep their incarnation; only the fence moves.
	for id, h := range s.hosts {
		if !affected[id] {
			h.setEpoch(newEpoch)
		}
	}
	s.epoch, s.ring, s.route = newEpoch, newRing, newRoute
	s.counters.Inc("rebalances")
	return nil
}

// rollbackRebalanceLocked restores the pre-rebalance topology after a
// mid-flight drain or start failure. The incarnations this rebalance
// already started at the new epoch are killed — the route still points
// at the old topology and s.mu is held, so no op can have reached them
// and their seeded state is still in contents/dedup — and every old-ring
// shard left without an incarnation restarts from the collected
// snapshots at the OLD epoch under the OLD route, so its documents stay
// reachable instead of forwarding to a nil pipe forever. Epoch, ring and
// route never advance; the cause (joined with any restart failure) is
// returned so the rebalance still reports failed.
func (s *ShardedServer) rollbackRebalanceLocked(started []int, contents, dedup map[string]string, cause error) error {
	for _, id := range started {
		if h := s.hosts[id]; h != nil {
			h.kill()
			delete(s.hosts, id)
		}
		if pp := s.pipes[id]; pp != nil {
			pp.closeAll()
		}
		delete(s.pipes, id)
	}
	for _, id := range s.ring.IDs() {
		if _, running := s.hosts[id]; running {
			continue
		}
		owned := make(map[string]string)
		ownedDedup := make(map[string]string)
		for i, name := range s.names {
			if int(s.route[i]) != id {
				continue
			}
			content, ok := contents[name]
			if !ok {
				cause = errors.Join(cause, fmt.Errorf("collab: rollback lost document %q", name))
				continue
			}
			owned[name] = content
		}
		for rid, doc := range dedup {
			if idx := s.docIndexOf(doc); idx >= 0 && int(s.route[idx]) == id {
				ownedDedup[rid] = doc
			}
		}
		// The drained incarnation's edits were banked above; the restarted
		// one counts from zero on top, so Edits() stays exact.
		if err := s.startShard(id, s.epoch, owned, ownedDedup, 0); err != nil {
			cause = errors.Join(cause, fmt.Errorf("collab: rollback restart shard %d: %w", id, err))
		}
	}
	s.counters.Inc("rebalance_rollbacks")
	return cause
}

// shardGainsDocs reports whether shard id owns documents under newRoute
// that it did not own under oldRoute.
func shardGainsDocs(id int, oldRoute, newRoute []int32) bool {
	for i := range newRoute {
		if int(newRoute[i]) == id && oldRoute[i] != newRoute[i] {
			return true
		}
	}
	return false
}

// liveGetLocked reads a document's current content straight off its
// owning shard while holding s.mu — only the planted live-handoff bug
// uses it. Pipe exchanges never take s.mu, so this cannot deadlock with
// in-flight forwards.
func (s *ShardedServer) liveGetLocked(docIdx int) (string, error) {
	id := int(s.route[docIdx])
	pp := s.pipes[id]
	if pp == nil {
		return "", net.ErrClosed
	}
	line := fmt.Sprintf("APPLY - %d %s GET", s.epoch, s.names[docIdx])
	replies, err := pp.exchange(0, s.epoch, []string{line})
	if err != nil {
		return "", err
	}
	payload, err := s.classifyReply(id, replies[0])
	if err != nil {
		return "", err
	}
	return strconv.Unquote(payload)
}

// KillShard simulates SIGKILL of one shard: its listener, pipes and
// journal close immediately, in-flight batches lose their replies.
// Clients see BUSY sheds for its documents until ResumeShard. Requires a
// journal directory.
func (s *ShardedServer) KillShard(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.Dir == "" {
		return fmt.Errorf("collab: KillShard requires ShardedOptions.Dir")
	}
	h := s.hosts[id]
	if h == nil || s.killed[id] {
		return fmt.Errorf("collab: shard %d not running", id)
	}
	h.kill()
	if pp := s.pipes[id]; pp != nil {
		pp.closeAll()
	}
	s.pipes[id] = nil
	s.killed[id] = true
	s.counters.Inc("shard_kills")
	return nil
}

// ResumeShard replays a killed shard's journal and boots a fresh
// incarnation with the recovered documents, applied-rid table and edit
// count, then rejoins it at the current epoch. Ops acked before the kill
// were flushed first (flush-on-sync), so they all reappear; ops in the
// ack window die unacked and the owning sessions retry them — the rid
// table decides exactly-once either way.
func (s *ShardedServer) ResumeShard(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.killed[id] {
		return fmt.Errorf("collab: shard %d is not killed", id)
	}
	path := filepath.Join(s.opts.Dir, journal.ShardDirName(id), "ops.log")
	contents, dedup, edits, epoch, err := replayShardLog(path)
	if err != nil {
		return fmt.Errorf("collab: resume shard %d: %w", id, err)
	}
	if epoch != s.epoch {
		return fmt.Errorf("collab: resume shard %d: journal epoch %d, cluster epoch %d", id, epoch, s.epoch)
	}
	delete(s.hosts, id)
	delete(s.killed, id)
	// The replayed total becomes the new incarnation's edit base; its
	// fresh counter counts only post-resume edits on top.
	if err := s.startShard(id, s.epoch, contents, dedup, edits); err != nil {
		return err
	}
	s.counters.Inc("shard_resumes")
	return nil
}

// replayShardLog rebuilds a shard incarnation's state from its journal:
// the snapshot frame (epoch, edit base, documents, applied rids) plus
// every op frame applied in log order. Insert-only workloads replay to
// the same marker multiset the live OT merge produced, which is what the
// convergence fingerprint checks.
func replayShardLog(path string) (contents map[string]string, dedup map[string]string, edits int64, epoch uint64, err error) {
	log, frames, damage := shard.RecoverOpLog(path)
	if log == nil {
		return nil, nil, 0, 0, damage
	}
	log.Close()
	if len(frames) == 0 {
		return nil, nil, 0, 0, fmt.Errorf("journal has no snapshot frame (damage: %v)", damage)
	}
	texts := make(map[string]*mergeable.Text)
	dedup = make(map[string]string)
	for _, line := range frames[0] {
		tag, rest, _ := strings.Cut(line, " ")
		switch tag {
		case "E":
			epoch, err = strconv.ParseUint(rest, 10, 64)
		case "B":
			edits, err = strconv.ParseInt(rest, 10, 64)
		case "S":
			name, quoted, _ := strings.Cut(rest, " ")
			var content string
			content, err = strconv.Unquote(quoted)
			texts[name] = mergeable.NewText(content)
		case "D":
			rid, doc, _ := strings.Cut(rest, " ")
			dedup[rid] = doc
		default:
			err = fmt.Errorf("bad snapshot record %q", line)
		}
		if err != nil {
			return nil, nil, 0, 0, err
		}
	}
	for _, frame := range frames[1:] {
		for _, line := range frame {
			rest, ok := strings.CutPrefix(line, "A ")
			if !ok {
				return nil, nil, 0, 0, fmt.Errorf("bad op record %q", line)
			}
			rid, rest, _ := strings.Cut(rest, " ")
			name, cmd, _ := strings.Cut(rest, " ")
			doc := texts[name]
			if doc == nil {
				return nil, nil, 0, 0, fmt.Errorf("op record for unknown document %q", name)
			}
			if status, _, _ := applyRequest(doc, cmd); strings.HasPrefix(status, "ERR") {
				return nil, nil, 0, 0, fmt.Errorf("op record %q does not replay: %s", line, status)
			}
			dedup[rid] = name
			edits++
		}
	}
	contents = make(map[string]string, len(texts))
	for name, t := range texts {
		contents[name] = t.String()
	}
	return contents, dedup, edits, epoch, nil
}

// Drain flips the public front read-only.
func (s *ShardedServer) Drain() { s.front.drain() }

// Undrain restores full service.
func (s *ShardedServer) Undrain() { s.front.undrain() }

// Shutdown drains the public front, retires every shard (recovering
// killed ones from their journals), and freezes the final documents.
func (s *ShardedServer) Shutdown() error {
	if !s.closed.CompareAndSwap(false, true) {
		<-s.acceptDone
		return nil
	}
	s.front.drain()
	s.listener.Close()
	s.front.shutdown()
	<-s.acceptDone
	s.connWG.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	finals := make(map[string]string, len(s.names))
	edits := s.editsBanked
	for id, h := range s.hosts {
		if s.killed[id] {
			path := filepath.Join(s.opts.Dir, journal.ShardDirName(id), "ops.log")
			contents, _, e, _, err := replayShardLog(path)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			for k, v := range contents {
				finals[k] = v
			}
			edits += e
			continue
		}
		if err := h.shutdown(); err != nil && firstErr == nil {
			firstErr = err
		}
		for k, v := range h.contents() {
			finals[k] = v
		}
		edits += h.finalEdits()
	}
	for _, z := range s.zombies {
		z.kill()
	}
	for _, pp := range s.pipes {
		if pp != nil {
			pp.closeAll()
		}
	}
	s.finals, s.finalEdits = finals, edits
	return firstErr
}

// Document returns a document's final content. Valid after Shutdown.
func (s *ShardedServer) Document(name string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.finals[name]
	return v, ok
}

// Names returns the hosted document names, sorted.
func (s *ShardedServer) Names() []string { return append([]string(nil), s.names...) }

// Edits returns the total applied-edit count across every shard
// incarnation. Valid after Shutdown.
func (s *ShardedServer) Edits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.finalEdits
}

// Stats returns the service's counters (front door and shard fabric).
func (s *ShardedServer) Stats() *stats.Counters { return s.counters }

// MergeLatency returns the histogram of per-batch shard merge latencies.
func (s *ShardedServer) MergeLatency() *stats.Histogram { return s.hist }

// shardPipes is the router's connection pool to one shard incarnation:
// a fixed set of pipes, each a lazily-dialed connection with exclusive
// use under its mutex. Sessions hash onto pipes, so one shard sees
// several concurrent op streams (its OT merge loop earns its keep) while
// each stream stays ordered.
type shardPipes struct {
	shardID int
	dial    Dialer
	timeout time.Duration
	pipes   []shardPipe
}

type shardPipe struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

func newShardPipes(shardID int, dial Dialer, n int, timeout time.Duration) *shardPipes {
	return &shardPipes{shardID: shardID, dial: dial, timeout: timeout, pipes: make([]shardPipe, n)}
}

// exchange sends the APPLY lines down one pipe (framing multi-line
// batches) and reads one reply per line. Any transport failure drops the
// pipe's connection; the next exchange redials and re-handshakes.
func (p *shardPipes) exchange(idx int, epoch uint64, lines []string) ([]string, error) {
	pp := &p.pipes[idx%len(p.pipes)]
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.conn == nil {
		if err := p.handshake(pp, epoch); err != nil {
			return nil, err
		}
	}
	var req []byte
	if len(lines) > 1 {
		var err error
		req, err = shard.AppendFrame(nil, lines)
		if err != nil {
			return nil, err
		}
	} else {
		req = append([]byte(lines[0]), '\n')
	}
	pp.conn.SetDeadline(time.Now().Add(p.timeout))
	if _, err := pp.conn.Write(req); err != nil {
		pp.drop()
		return nil, err
	}
	replies := make([]string, len(lines))
	for i := range replies {
		line, err := pp.r.ReadString('\n')
		if err != nil {
			pp.drop()
			return nil, err
		}
		replies[i] = strings.TrimSpace(line)
	}
	pp.conn.SetDeadline(time.Time{})
	return replies, nil
}

// handshake dials and SHELLOs one pipe. A STALE answer classifies as
// dist.ErrStaleEpoch so the forwarding loop re-reads the route.
func (p *shardPipes) handshake(pp *shardPipe, epoch uint64) error {
	conn, err := p.dial.Dial()
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(p.timeout))
	if _, err := fmt.Fprintf(conn, "SHELLO %d\n", epoch); err != nil {
		conn.Close()
		return err
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		conn.Close()
		return err
	}
	line = strings.TrimSpace(line)
	if hostEpoch, ok := strings.CutPrefix(line, "STALE "); ok {
		conn.Close()
		e, _ := strconv.ParseUint(hostEpoch, 10, 64)
		return dist.StaleEpochError{Node: p.shardID, Epoch: e}
	}
	if !strings.HasPrefix(line, "OK ") {
		conn.Close()
		return fmt.Errorf("collab: bad SHELLO reply %q", line)
	}
	conn.SetDeadline(time.Time{})
	pp.conn, pp.r = conn, r
	return nil
}

// drop discards the pipe's connection (caller holds pp.mu).
func (pp *shardPipe) drop() {
	if pp.conn != nil {
		pp.conn.Close()
		pp.conn, pp.r = nil, nil
	}
}

// closeAll severs every pipe.
func (p *shardPipes) closeAll() {
	for i := range p.pipes {
		pp := &p.pipes[i]
		pp.mu.Lock()
		pp.drop()
		pp.mu.Unlock()
	}
}

package collab

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/task"
)

// The internal shard protocol, spoken between the sharded router and a
// shard host over memnet/faultnet. Frames batch APPLY lines; replies are
// one line per request, in request order:
//
//	SHELLO <epoch>                    → OK <epoch> | STALE <host-epoch>
//	APPLY <rid> <epoch> <doc> <cmd>   → OK <rid> <quoted-doc>
//	                                  → ERR <rid> <detail>     resolved; never applied
//	                                  → STALE <rid> <host-epoch>  epoch fence
//	                                  → MOVED <rid>            doc not owned here
//
// rid is the router-assigned retry identity: at-least-once delivery from
// the router collapses to exactly-once because a shard records every
// applied rid (durably, when journaled) and answers retries from that
// table. GETs carry rid "-": they are idempotent and skip the table.
//
// Each host is its own task tree — the per-shard single-writer merge
// loop. Router pipes become connection tasks whose local copies are
// OT-merged by the root, so concurrent pipes interleave exactly like
// concurrent clients on the unsharded server.

// ridClaim tracks one rid through apply: done closes when the op is
// resolved (applied and, when journaled, flushed). A claim that fails
// before resolution is deleted and its done closed, waking waiters to
// re-claim.
type ridClaim struct {
	doc  string
	done chan struct{}
}

// shardHostConfig carries the shared plumbing a ShardedServer hands each
// incarnation.
type shardHostConfig struct {
	counters *stats.Counters
	tracer   *obs.Tracer
	hist     *stats.Histogram // merge latency across all shards
	fence    bool             // epoch fence; false plants the stale-owner bug
	log      *shard.OpLog     // nil: no durability
}

// shardHost is one incarnation of one shard: a task-tree server over the
// shard's document subset at a single fence epoch. Handoffs and resumes
// build new incarnations; an incarnation's documents are readable only
// after wait().
type shardHost struct {
	id        int
	epoch     atomic.Uint64
	names     []string // owned docs, sorted
	docs      []*mergeable.Text
	edits     *mergeable.Counter
	editsBase int64
	ln        Listener
	cfg       shardHostConfig

	mu     sync.Mutex
	dedup  map[string]*ridClaim
	conns  map[net.Conn]struct{}
	killed bool

	done chan struct{}
	err  error
}

// startShardHost boots an incarnation over the given contents. dedupSeed
// pre-resolves rids applied by earlier incarnations (handoff transfer or
// oplog replay). When cfg.log is set, the incarnation's snapshot frame is
// written before it serves, so a later replay starts from this state.
func startShardHost(id int, epoch uint64, contents map[string]string, dedupSeed map[string]string, editsBase int64, ln Listener, cfg shardHostConfig) (*shardHost, error) {
	names := make([]string, 0, len(contents))
	for name := range contents {
		names = append(names, name)
	}
	sort.Strings(names)
	h := &shardHost{
		id:        id,
		names:     names,
		edits:     mergeable.NewCounter(0),
		editsBase: editsBase,
		ln:        ln,
		cfg:       cfg,
		dedup:     make(map[string]*ridClaim, len(dedupSeed)),
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
	}
	h.epoch.Store(epoch)
	for rid, doc := range dedupSeed {
		c := &ridClaim{doc: doc, done: make(chan struct{})}
		close(c.done)
		h.dedup[rid] = c
	}
	data := make([]mergeable.Mergeable, 0, len(names)+1)
	for _, name := range names {
		doc := mergeable.NewText(contents[name])
		h.docs = append(h.docs, doc)
		data = append(data, doc)
	}
	data = append(data, h.edits)

	if cfg.log != nil {
		snap := make([]string, 0, len(names)+len(dedupSeed)+2)
		snap = append(snap, fmt.Sprintf("E %d", epoch), fmt.Sprintf("B %d", editsBase))
		for _, name := range names {
			snap = append(snap, fmt.Sprintf("S %s %s", name, strconv.Quote(contents[name])))
		}
		for rid, doc := range dedupSeed {
			snap = append(snap, fmt.Sprintf("D %s %s", rid, doc))
		}
		if err := cfg.log.Append(snap); err != nil {
			return nil, err
		}
		if err := cfg.log.Flush(); err != nil {
			return nil, err
		}
	}

	go func() {
		defer close(h.done)
		h.err = task.RunWith(task.RunConfig{Obs: cfg.tracer}, func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			ctx.Spawn(h.acceptTask, d...)
			for {
				if _, err := ctx.MergeAny(); err != nil {
					if errors.Is(err, task.ErrNothingToMerge) {
						return nil
					}
					continue
				}
			}
		}, data...)
	}()
	return h, nil
}

func (h *shardHost) acceptTask(ctx *task.Ctx, data []mergeable.Mergeable) error {
	for {
		socket, err := h.ln.Accept()
		if err != nil {
			return nil
		}
		h.mu.Lock()
		if h.killed {
			h.mu.Unlock()
			socket.Close()
			continue
		}
		h.conns[socket] = struct{}{}
		h.mu.Unlock()
		ctx.Clone(h.connTask(socket))
	}
}

func (h *shardHost) dropConn(socket net.Conn) {
	h.mu.Lock()
	delete(h.conns, socket)
	h.mu.Unlock()
}

func (h *shardHost) connTask(socket net.Conn) task.Func {
	return func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		defer socket.Close()
		defer h.dropConn(socket)
		if err := ctx.Sync(); err != nil {
			return err
		}
		r := bufio.NewReader(socket)
		fr := shard.NewFrameReader(r)

		// Handshake: a single SHELLO line carrying the dialer's epoch.
		_, first, isFrame, err := fr.Next()
		if err != nil || isFrame {
			return nil
		}
		eStr, ok := strings.CutPrefix(first, "SHELLO ")
		if !ok {
			fmt.Fprintf(socket, "ERR - bad handshake %q\n", first)
			return nil
		}
		dialEpoch, perr := strconv.ParseUint(strings.TrimSpace(eStr), 10, 64)
		if own := h.epoch.Load(); perr != nil || (h.cfg.fence && dialEpoch != own) {
			h.cfg.counters.Inc("shard_stale_hello")
			fmt.Fprintf(socket, "STALE %d\n", own)
			return nil
		}
		fmt.Fprintf(socket, "OK %d\n", h.epoch.Load())

		for {
			lines, legacy, isFrame, err := fr.Next()
			if err != nil {
				return nil // transport gone or damaged frame: router re-sends
			}
			if !isFrame {
				lines = []string{legacy}
			} else {
				h.cfg.counters.Inc("shard_frames")
			}
			if err := h.processBatch(ctx, socket, data, lines); err != nil {
				return err
			}
		}
	}
}

// hostReq is one APPLY of a batch on its way through the pipeline.
type hostReq struct {
	rid     string
	docIdx  int
	cmd     string
	reply   string // fixed early reply (parse error / STALE / MOVED / replay)
	apply   bool
	mutated bool
	claim   *ridClaim // claim owned by this batch, nil otherwise
}

// processBatch runs one frame (or bare line) of APPLYs through the
// single-writer pipeline: fence, dedup claim, apply to the connection
// task's copies, one merge for the whole batch, one oplog flush before
// any ack (flush-on-sync), then replies in request order. A failed
// merge propagates; a durability failure kills the incarnation (its
// applied-but-unlogged state must never be acked or re-reached) and the
// router sheds its documents until a resume.
func (h *shardHost) processBatch(ctx *task.Ctx, socket net.Conn, data []mergeable.Mergeable, lines []string) error {
	reqs := make([]hostReq, len(lines))
	inBatch := make(map[string]bool, len(lines))
	edits := data[len(h.names)].(*mergeable.Counter)
	needSync := false

	release := func() {
		for i := range reqs {
			if c := reqs[i].claim; c != nil {
				h.mu.Lock()
				delete(h.dedup, reqs[i].rid)
				h.mu.Unlock()
				close(c.done)
				reqs[i].claim = nil
			}
		}
	}

	for i, line := range lines {
		req := &reqs[i]
		fields := strings.SplitN(line, " ", 5)
		if len(fields) < 5 || fields[0] != "APPLY" {
			req.rid, req.reply = "-", fmt.Sprintf("ERR - bad request %q", line)
			continue
		}
		req.rid, req.cmd = fields[1], fields[4]
		epoch, perr := strconv.ParseUint(fields[2], 10, 64)
		if perr != nil {
			req.reply = fmt.Sprintf("ERR %s bad epoch", req.rid)
			continue
		}
		if own := h.epoch.Load(); h.cfg.fence && epoch != own {
			h.cfg.counters.Inc("shard_stale_apply")
			req.reply = fmt.Sprintf("STALE %s %d", req.rid, own)
			continue
		}
		req.docIdx = h.docIndex(fields[3])
		if req.docIdx < 0 {
			h.cfg.counters.Inc("shard_moved")
			req.reply = fmt.Sprintf("MOVED %s", req.rid)
			continue
		}
		if !isMutation(req.cmd) {
			req.apply = true // idempotent read: no claim
			needSync = true
			continue
		}
		if inBatch[req.rid] {
			req.reply = fmt.Sprintf("ERR %s duplicate rid in batch", req.rid)
			continue
		}
		inBatch[req.rid] = true
		claim, replay := h.claimRID(req.rid, fields[3])
		if replay {
			h.cfg.counters.Inc("shard_replayed")
			doc := data[req.docIdx].(*mergeable.Text)
			req.reply = fmt.Sprintf("OK %s %s", req.rid, strconv.Quote(doc.String()))
			continue
		}
		req.claim = claim
		req.apply = true
		needSync = true
	}

	// Apply phase: every fresh op lands on this task's local copies.
	var records []string
	for i := range reqs {
		req := &reqs[i]
		if !req.apply {
			continue
		}
		doc := data[req.docIdx].(*mergeable.Text)
		status, mutated, _ := applyRequest(doc, req.cmd)
		req.mutated = mutated
		if strings.HasPrefix(status, "ERR") {
			// Never applied: release this rid so a corrected retry can land.
			if req.claim != nil {
				h.mu.Lock()
				delete(h.dedup, req.rid)
				h.mu.Unlock()
				close(req.claim.done)
				req.claim = nil
			}
			req.apply = false
			req.reply = fmt.Sprintf("ERR %s %s", req.rid, strings.TrimPrefix(status, "ERR "))
			continue
		}
		if mutated {
			edits.Inc()
			records = append(records, fmt.Sprintf("A %s %s %s", req.rid, h.names[req.docIdx], req.cmd))
		}
	}

	if needSync {
		start := time.Now()
		if err := ctx.Sync(); err != nil {
			release()
			fmt.Fprintf(socket, "ERR - INTERNAL %v\n", err)
			return err
		}
		h.cfg.hist.RecordDuration(time.Since(start))
	}

	// Durability before acks: the flush-on-sync rule. Any failure here
	// kills the incarnation: the batch is already applied and merged, so
	// if this incarnation kept serving, a router retry of the released
	// rids would apply them a second time. Killing closes the listener,
	// every pipe and the log, so no retry can reach this memory again —
	// the journal (which never saw these records) is the incarnation's
	// only legacy, exactly as after a SIGKILL. When the log is closed
	// because kill() already ran, this is a no-op beyond ending the task.
	if len(records) > 0 && h.cfg.log != nil {
		if err := h.cfg.log.Append(records); err != nil {
			release()
			h.kill()
			return err
		}
		if err := h.cfg.log.Flush(); err != nil {
			release()
			h.kill()
			return err
		}
	}

	// Resolve claims, then ack everything in request order.
	var out []byte
	for i := range reqs {
		req := &reqs[i]
		if req.claim != nil {
			close(req.claim.done)
			req.claim = nil
		}
		if req.reply == "" {
			doc := data[req.docIdx].(*mergeable.Text)
			req.reply = fmt.Sprintf("OK %s %s", req.rid, strconv.Quote(doc.String()))
		}
		out = append(out, req.reply...)
		out = append(out, '\n')
	}
	socket.Write(out)
	return nil
}

// claimRID resolves one rid against the applied table: (claim, false)
// hands the caller ownership of a fresh rid; (nil, true) reports an
// already-applied rid to answer by replay. A rid mid-flight on another
// connection blocks until that flight resolves or releases.
func (h *shardHost) claimRID(rid, doc string) (*ridClaim, bool) {
	for {
		h.mu.Lock()
		c, ok := h.dedup[rid]
		if !ok {
			c = &ridClaim{doc: doc, done: make(chan struct{})}
			h.dedup[rid] = c
			h.mu.Unlock()
			return c, false
		}
		select {
		case <-c.done:
			h.mu.Unlock()
			return nil, true
		default:
		}
		h.mu.Unlock()
		<-c.done // another connection owns this rid; wait it out
	}
}

func (h *shardHost) docIndex(name string) int {
	lo, hi := 0, len(h.names)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.names[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.names) && h.names[lo] == name {
		return lo
	}
	return -1
}

// setEpoch bumps the fence in place — used when a rebalance leaves this
// shard's document set untouched, so no restart is needed.
func (h *shardHost) setEpoch(e uint64) { h.epoch.Store(e) }

// closeConns severs every live router pipe.
func (h *shardHost) closeConns() {
	h.mu.Lock()
	conns := make([]net.Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// shutdown drains the incarnation for handoff: the listener and pipes
// close, in-flight batches finish their apply-sync-record sequence, the
// task tree completes. After shutdown the documents are exact — every
// acked op is merged — and safe to snapshot-transfer.
func (h *shardHost) shutdown() error {
	h.ln.Close()
	h.closeConns()
	err := h.wait()
	if h.cfg.log != nil {
		h.cfg.log.Close()
	}
	return err
}

// kill is the simulated SIGKILL: the incarnation's sockets and oplog
// close immediately and nobody waits for the task tree. In-flight
// batches lose their replies; whatever reached the oplog before the
// close is the incarnation's legacy.
func (h *shardHost) kill() {
	h.mu.Lock()
	h.killed = true
	h.mu.Unlock()
	h.ln.Close()
	h.closeConns()
	if h.cfg.log != nil {
		h.cfg.log.Close()
	}
}

// wait blocks until the incarnation's task tree completes.
func (h *shardHost) wait() error {
	<-h.done
	return h.err
}

// contents reads the final documents. Valid only after wait().
func (h *shardHost) contents() map[string]string {
	m := make(map[string]string, len(h.names))
	for i, name := range h.names {
		m[name] = h.docs[i].String()
	}
	return m
}

// dedupSnapshot exports the applied-rid table for handoff. Valid only
// after wait() (no claims are in flight then); unresolved claims are
// dropped — their ops were never acked.
func (h *shardHost) dedupSnapshot() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := make(map[string]string, len(h.dedup))
	for rid, c := range h.dedup {
		select {
		case <-c.done:
			m[rid] = c.doc
		default:
		}
	}
	return m
}

// finalEdits returns the incarnation's total applied-edit count. Valid
// after wait().
func (h *shardHost) finalEdits() int64 { return h.editsBase + h.edits.Value() }

package collab

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"

	"repro/internal/memnet"
	"repro/internal/mergeable"
	"repro/internal/task"
)

// MultiServer hosts a fixed set of named documents. Every connection task
// receives copies of all documents (they are one data set, merged
// atomically per request), selects one with USE and edits it; different
// clients can edit different documents — or the same one — concurrently.
type MultiServer struct {
	listener *memnet.Listener
	names    []string
	docs     []*mergeable.Text
	edits    *mergeable.Counter
	done     chan struct{}
	err      error
}

// ServeDocs starts a multi-document server. The document set is fixed for
// the server's lifetime (the task data passed at Spawn is a fixed set);
// initial maps name to initial content.
func ServeDocs(listener *memnet.Listener, initial map[string]string) *MultiServer {
	names := make([]string, 0, len(initial))
	for name := range initial {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic data layout
	s := &MultiServer{
		listener: listener,
		names:    names,
		edits:    mergeable.NewCounter(0),
		done:     make(chan struct{}),
	}
	data := make([]mergeable.Mergeable, 0, len(names)+1)
	for _, name := range names {
		doc := mergeable.NewText(initial[name])
		s.docs = append(s.docs, doc)
		data = append(data, doc)
	}
	data = append(data, s.edits)

	go func() {
		defer close(s.done)
		s.err = task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			ctx.Spawn(s.acceptTask, d...)
			for {
				if _, err := ctx.MergeAny(); err != nil {
					if errors.Is(err, task.ErrNothingToMerge) {
						return nil
					}
					continue
				}
			}
		}, data...)
	}()
	return s
}

// Wait blocks until the server's task tree has completed.
func (s *MultiServer) Wait() error {
	<-s.done
	return s.err
}

// Document returns a document's final content. Valid after Wait.
func (s *MultiServer) Document(name string) (string, bool) {
	for i, n := range s.names {
		if n == name {
			return s.docs[i].String(), true
		}
	}
	return "", false
}

// Names returns the hosted document names, sorted.
func (s *MultiServer) Names() []string { return append([]string(nil), s.names...) }

// Edits returns the number of applied edits. Valid after Wait.
func (s *MultiServer) Edits() int64 { return s.edits.Value() }

func (s *MultiServer) acceptTask(ctx *task.Ctx, data []mergeable.Mergeable) error {
	for {
		socket, err := s.listener.Accept()
		if err != nil {
			return nil
		}
		ctx.Clone(s.connTask(socket))
	}
}

func (s *MultiServer) connTask(socket net.Conn) task.Func {
	return func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		defer socket.Close()
		if err := ctx.Sync(); err != nil {
			return err
		}
		edits := data[len(s.names)].(*mergeable.Counter)
		current := -1
		r := bufio.NewReader(socket)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return nil
			}
			line = strings.TrimSpace(line)
			if name, ok := strings.CutPrefix(line, "USE "); ok {
				idx := s.docIndex(strings.TrimSpace(name))
				if idx < 0 {
					fmt.Fprintf(socket, "ERR no document %q\n", name)
					continue
				}
				current = idx
				fmt.Fprintf(socket, "OK %s\n", strconv.Quote(data[idx].(*mergeable.Text).String()))
				continue
			}
			if line == "LIST" {
				fmt.Fprintf(socket, "OK %s\n", strconv.Quote(strings.Join(s.names, ",")))
				continue
			}
			if current < 0 {
				fmt.Fprintf(socket, "ERR select a document with USE first\n")
				continue
			}
			doc := data[current].(*mergeable.Text)
			reply, mutated, quit := applyRequest(doc, line)
			if mutated {
				edits.Inc()
			}
			if err := ctx.Sync(); err != nil {
				fmt.Fprintf(socket, "ERR %v\n", err)
				return err
			}
			fmt.Fprintf(socket, "%s %s\n", reply, strconv.Quote(doc.String()))
			if quit {
				return nil
			}
		}
	}
}

func (s *MultiServer) docIndex(name string) int {
	for i, n := range s.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Use selects the named document for subsequent edits on this client and
// returns its current content.
func (c *Client) Use(name string) (string, error) {
	return c.roundtrip("USE %s", name)
}

// List returns the comma-joined document names hosted by a MultiServer.
func (c *Client) List() (string, error) {
	return c.roundtrip("LIST")
}

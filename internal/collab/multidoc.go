package collab

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mergeable"
	"repro/internal/stats"
	"repro/internal/task"
)

// MultiServer hosts a fixed set of named documents. Every connection task
// receives copies of all documents (they are one data set, merged
// atomically per request), selects one with USE and edits it; different
// clients can edit different documents — or the same one — concurrently.
//
// In session mode the USE selection is session state, not connection
// state: it survives reconnects and RESUME.
type MultiServer struct {
	listener Listener
	names    []string
	docs     []*mergeable.Text
	edits    *mergeable.Counter
	front    *front
	opts     Options
	done     chan struct{}
	err      error
}

// ServeDocs starts a multi-document server with default options. The
// document set is fixed for the server's lifetime (the task data passed
// at Spawn is a fixed set); initial maps name to initial content.
func ServeDocs(listener Listener, initial map[string]string) *MultiServer {
	return ServeDocsWith(listener, initial, Options{})
}

// ServeDocsWith starts a multi-document server with explicit front-door
// options.
func ServeDocsWith(listener Listener, initial map[string]string, opts Options) *MultiServer {
	opts = opts.withDefaults()
	names := make([]string, 0, len(initial))
	for name := range initial {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic data layout
	s := &MultiServer{
		listener: listener,
		names:    names,
		edits:    mergeable.NewCounter(0),
		front:    newFront(opts),
		opts:     opts,
		done:     make(chan struct{}),
	}
	data := make([]mergeable.Mergeable, 0, len(names)+1)
	for _, name := range names {
		doc := mergeable.NewText(initial[name])
		s.docs = append(s.docs, doc)
		data = append(data, doc)
	}
	data = append(data, s.edits)

	go func() {
		defer close(s.done)
		s.err = task.RunWith(task.RunConfig{Obs: opts.Tracer}, func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			ctx.Spawn(s.acceptTask, d...)
			for {
				if _, err := ctx.MergeAny(); err != nil {
					if errors.Is(err, task.ErrNothingToMerge) {
						return nil
					}
					continue
				}
			}
		}, data...)
	}()
	return s
}

// Wait blocks until the server's task tree has completed.
func (s *MultiServer) Wait() error {
	<-s.done
	return s.err
}

// Document returns a document's final content. Valid after Wait.
func (s *MultiServer) Document(name string) (string, bool) {
	for i, n := range s.names {
		if n == name {
			return s.docs[i].String(), true
		}
	}
	return "", false
}

// Names returns the hosted document names, sorted.
func (s *MultiServer) Names() []string { return append([]string(nil), s.names...) }

// Edits returns the number of applied edits. Valid after Wait.
func (s *MultiServer) Edits() int64 { return s.edits.Value() }

// Stats returns the front door's counters.
func (s *MultiServer) Stats() *stats.Counters { return s.opts.Counters }

// Drain flips the server read-only for session-mode mutations.
func (s *MultiServer) Drain() { s.front.drain() }

// Undrain restores full service.
func (s *MultiServer) Undrain() { s.front.undrain() }

// Shutdown drains, closes the listener, flushes live sessions, and waits.
func (s *MultiServer) Shutdown() error {
	s.front.drain()
	s.listener.Close()
	s.front.shutdown()
	return s.Wait()
}

func (s *MultiServer) acceptTask(ctx *task.Ctx, data []mergeable.Mergeable) error {
	defer s.front.shutdown()
	for {
		socket, err := s.listener.Accept()
		if err != nil {
			return nil
		}
		ctx.Clone(s.connTask(socket))
	}
}

func (s *MultiServer) connTask(socket net.Conn) task.Func {
	return func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		defer socket.Close()
		if err := ctx.Sync(); err != nil {
			return err
		}
		edits := data[len(s.names)].(*mergeable.Counter)
		r := bufio.NewReader(socket)
		first, err := r.ReadString('\n')
		if err != nil {
			return nil
		}
		first = strings.TrimSpace(first)
		if isHandshake(first) {
			return s.front.serve(socket, r, first, sessionHandler{
				apply:    func(sess *Session, _ uint64, cmd string) sessionOutcome { return s.applyMulti(sess, cmd, data) },
				sync:     ctx.Sync,
				onMutate: edits.Inc,
			})
		}
		s.opts.Counters.Inc("legacy")
		current := -1
		return legacyLoop(ctx, socket, r, first, func(line string) legacyOutcome {
			if name, ok := strings.CutPrefix(line, "USE "); ok {
				idx := s.docIndex(strings.TrimSpace(name))
				if idx < 0 {
					return legacyOutcome{status: fmt.Sprintf("ERR no document %q", name), noSync: true}
				}
				current = idx
				doc := data[idx].(*mergeable.Text)
				return legacyOutcome{
					status:  "OK",
					payload: func() string { return strconv.Quote(doc.String()) },
					noSync:  true,
				}
			}
			if line == "LIST" {
				return legacyOutcome{
					status:  "OK",
					payload: func() string { return strconv.Quote(strings.Join(s.names, ",")) },
					noSync:  true,
				}
			}
			if current < 0 {
				return legacyOutcome{status: "ERR select a document with USE first", noSync: true}
			}
			reply, mutated, quit := applyRequest(data[current].(*mergeable.Text), line)
			if mutated {
				edits.Inc()
			}
			doc := data[current].(*mergeable.Text)
			return legacyOutcome{
				status:  reply,
				payload: func() string { return strconv.Quote(doc.String()) },
				quit:    quit,
			}
		})
	}
}

// applyMulti executes one session-mode command against this connection
// task's copies, with the document selection read from (and written to)
// the session so it survives reconnects.
func (s *MultiServer) applyMulti(sess *Session, cmd string, data []mergeable.Mergeable) sessionOutcome {
	if name, ok := strings.CutPrefix(cmd, "USE "); ok {
		idx := s.docIndex(strings.TrimSpace(name))
		if idx < 0 {
			return sessionOutcome{status: fmt.Sprintf("ERR no document %q", name), noSync: true}
		}
		sess.setDocIdx(idx)
		doc := data[idx].(*mergeable.Text)
		return sessionOutcome{
			status:  "OK",
			payload: func() string { return strconv.Quote(doc.String()) },
			noSync:  true,
		}
	}
	if cmd == "LIST" {
		return sessionOutcome{
			status:  "OK",
			payload: func() string { return strconv.Quote(strings.Join(s.names, ",")) },
			noSync:  true,
		}
	}
	idx := sess.getDocIdx()
	if idx < 0 {
		return sessionOutcome{status: "ERR select a document with USE first", noSync: true}
	}
	doc := data[idx].(*mergeable.Text)
	reply, mutated, quit := applyRequest(doc, cmd)
	return sessionOutcome{
		status:  reply,
		payload: func() string { return strconv.Quote(doc.String()) },
		mutated: mutated,
		quit:    quit,
	}
}

func (s *MultiServer) docIndex(name string) int {
	for i, n := range s.names {
		if n == name {
			return i
		}
	}
	return -1
}

package collab

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/memnet"
)

// waitCounter polls a counter until it reaches want — for asserting on
// server-side transitions (like a detach) that trail a client-side close.
func waitCounter(t *testing.T, get func(string) int64, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for get(name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s = %d, want >= %d", name, get(name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// testClientOpts keeps hermetic tests fast: short per-request deadlines
// and tight backoff, but a generous retry budget.
func testClientOpts() ClientOptions {
	return ClientOptions{
		RequestTimeout: 2 * time.Second,
		Backoff:        Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, MaxAttempts: 40},
	}
}

// editScript is a fixed single-client editing session: a mix of inserts
// and deletes whose outcome is fully deterministic.
var editScript = []func(c *Client) (string, error){
	func(c *Client) (string, error) { return c.Insert(0, "hello") },
	func(c *Client) (string, error) { return c.Insert(5, " world") },
	func(c *Client) (string, error) { return c.Delete(0, 1) },
	func(c *Client) (string, error) { return c.Insert(0, "H") },
	func(c *Client) (string, error) { return c.Get() },
	func(c *Client) (string, error) { return c.Insert(11, "!") },
	func(c *Client) (string, error) { return c.Delete(5, 6) },
}

// runEditScript executes the script against a fresh server, killing the
// transport after request boundary dropAfter (len(script) means never),
// and returns the final document, edit counter and resume count.
func runEditScript(t *testing.T, dropAfter int) (string, int64, int64) {
	t.Helper()
	l := memnet.Listen(16)
	s := Serve(l, "")
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for i, op := range editScript {
		if _, err := op(c); err != nil {
			t.Fatalf("drop-after-%d: op %d: %v", dropAfter, i, err)
		}
		if i == dropAfter {
			c.Drop() // socket dies right after the acked reply
		}
	}
	if dropAfter == len(editScript) {
		c.Drop() // boundary after the last request, before BYE
	}
	if err := c.Bye(); err != nil {
		t.Fatalf("drop-after-%d: bye: %v", dropAfter, err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatalf("drop-after-%d: server: %v", dropAfter, err)
	}
	return s.Document(), s.Edits(), s.Stats().Get("resumed")
}

// TestResumeAtEveryBoundary kills the socket after each acked reply in
// turn; every interrupted run must resume and finish with the document
// and edit counter bit-identical to the uninterrupted run — at
// GOMAXPROCS 1 and 4.
func TestResumeAtEveryBoundary(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(map[int]string{1: "gomaxprocs1", 4: "gomaxprocs4"}[procs], func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			refDoc, refEdits, _ := runEditScript(t, -1)
			if refDoc != "Hello!" || refEdits != 6 {
				t.Fatalf("reference run: doc %q edits %d", refDoc, refEdits)
			}
			for boundary := 0; boundary <= len(editScript); boundary++ {
				doc, edits, resumed := runEditScript(t, boundary)
				if doc != refDoc {
					t.Errorf("boundary %d: doc %q, want %q", boundary, doc, refDoc)
				}
				if edits != refEdits {
					t.Errorf("boundary %d: edits %d, want %d", boundary, edits, refEdits)
				}
				if resumed < 1 {
					t.Errorf("boundary %d: no resume happened", boundary)
				}
			}
		})
	}
}

// TestReplayDedup loses the reply of an applied edit, resumes, and
// re-sends the same request: the server must replay the recorded ack
// instead of applying the edit twice.
func TestReplayDedup(t *testing.T) {
	l := memnet.Listen(16)
	s := Serve(l, "")
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The write completes (memnet delivers synchronously), then the
	// transport dies before the reply can be read: the classic lost-ack.
	if err := c.BeginInsert(0, "x"); err != nil {
		t.Fatal(err)
	}
	c.Drop()
	// Wait for the old attachment to finish: it applies the delivered
	// request, fails to write the reply, and detaches. Resuming before
	// that would race the steal — the old serve loop abandons requests
	// once its socket is no longer the session's attachment, and the
	// re-send would then apply fresh instead of exercising replay.
	for i := 0; s.Stats().Get("detached") == 0; i++ {
		if i > 1000 {
			t.Fatal("old attachment never detached")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Reconnect(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	doc, err := c.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if doc != "x" {
		t.Fatalf("doc after dedup = %q", doc)
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if s.Document() != "x" {
		t.Fatalf("final doc = %q, edit applied twice or lost", s.Document())
	}
	if s.Edits() != 1 {
		t.Fatalf("edits = %d, want exactly 1", s.Edits())
	}
	if s.Stats().Get("replayed") < 1 {
		t.Fatal("replay window was never used")
	}
}

// TestDeterministicEviction: a detached session is evicted after its
// seeded idle budget of logical ticks — driven purely by other sessions'
// traffic, never by wall time — and a resume attempt then fails with
// ErrSessionExpired; a fresh session recovers the client.
func TestDeterministicEviction(t *testing.T) {
	l := memnet.Listen(16)
	s := ServeWith(l, "", Options{
		Seed:      7,
		Admission: Admission{IdleTicks: 3, IdleJitter: 2},
	})
	a, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Insert(0, "a;"); err != nil {
		t.Fatal(err)
	}
	a.Drop() // detach; the idle clock starts ticking with b's traffic
	waitCounter(t, s.Stats().Get, "detached", 1)

	b, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // 12 ticks >> IdleTicks+jitter
		if _, err := b.Get(); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Reconnect(); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("resume after eviction: err = %v, want ErrSessionExpired", err)
	}
	if err := a.NewSession(); err != nil {
		t.Fatalf("new session after eviction: %v", err)
	}
	if _, err := a.Insert(0, "a2;"); err != nil {
		t.Fatal(err)
	}
	if err := a.Bye(); err != nil {
		t.Fatal(err)
	}
	if err := b.Bye(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Get("evicted"); got < 1 {
		t.Fatalf("evicted = %d, want >= 1", got)
	}
	if doc := s.Document(); doc != "a2;a;" && doc != "a;a2;" {
		t.Fatalf("doc = %q", doc)
	}
}

// TestDrainReadOnly: a draining server refuses mutations with a typed
// reason while still serving reads, and Shutdown flushes live sessions.
func TestDrainReadOnly(t *testing.T) {
	l := memnet.Listen(16)
	s := Serve(l, "base")
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(0, "x"); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if _, err := c.Insert(0, "y"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("mutation while draining: err = %v, want ErrReadOnly", err)
	}
	doc, err := c.Get()
	if err != nil {
		t.Fatalf("read while draining: %v", err)
	}
	if doc != "xbase" {
		t.Fatalf("read while draining = %q", doc)
	}
	s.Undrain()
	if _, err := c.Insert(0, "z"); err != nil {
		t.Fatalf("mutation after undrain: %v", err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := s.Document(); got != "zxbase" {
		t.Fatalf("final doc = %q", got)
	}
	if s.Stats().Get("readonly_refused") != 1 {
		t.Fatalf("readonly_refused = %d", s.Stats().Get("readonly_refused"))
	}
	c.Close()
	c.Close() // Close is idempotent
	if _, err := c.Get(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("request after Close: err = %v, want ErrClientClosed", err)
	}
}

// TestErrorTaxonomy checks every typed failure is classifiable with
// errors.Is, mirroring dist's error style.
func TestErrorTaxonomy(t *testing.T) {
	l := memnet.Listen(16)
	s := ServeWith(l, "", Options{Admission: Admission{MaxSessions: 1}})
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Request-level protocol failures keep the session alive.
	if _, err := c.roundtrip("INS x y"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad INS: err = %v, want ErrProtocol", err)
	}
	if _, err := c.roundtrip("NONSENSE"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("unknown command: err = %v, want ErrProtocol", err)
	}
	if _, err := c.Insert(0, "still works"); err != nil {
		t.Fatalf("session should survive protocol errors: %v", err)
	}

	// The session gate sheds a second HELLO with BUSY; a bounded retry
	// budget surfaces it as ErrOverloaded.
	_, err = DialWith(l, ClientOptions{
		RequestTimeout: time.Second,
		Backoff:        Backoff{Base: time.Millisecond, Cap: time.Millisecond, MaxAttempts: 2},
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second session: err = %v, want ErrOverloaded", err)
	}
	if s.Stats().Get("shed") < 1 {
		t.Fatalf("shed = %d, want >= 1", s.Stats().Get("shed"))
	}

	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestRateLimitOverload exhausts a tiny token bucket; the client's
// bounded retries surface ErrOverloaded, and a patient client completes.
func TestRateLimitOverload(t *testing.T) {
	l := memnet.Listen(16)
	s := ServeWith(l, "", Options{
		Admission: Admission{RateBurst: 1, RateEvery: 1000},
	})
	c, err := DialWith(l, ClientOptions{
		RequestTimeout: time.Second,
		Backoff:        Backoff{Base: time.Millisecond, Cap: time.Millisecond, MaxAttempts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(0, "x"); err != nil { // burst token
		t.Fatal(err)
	}
	if _, err := c.Insert(0, "y"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("rate-limited request: err = %v, want ErrOverloaded", err)
	}
	if s.Stats().Get("busy_rate") < 1 {
		t.Fatalf("busy_rate = %d, want >= 1", s.Stats().Get("busy_rate"))
	}
	c.Close()
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if s.Document() != "x" {
		t.Fatalf("doc = %q: a shed request must not half-apply", s.Document())
	}
}

// TestMultiDocSelectionSurvivesResume: the USE selection is session
// state, so a reconnected client keeps editing the same document.
func TestMultiDocSelectionSurvivesResume(t *testing.T) {
	l := memnet.Listen(16)
	s := ServeDocs(l, map[string]string{"notes": "", "todo": ""})
	c, err := DialWith(l, testClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Use("notes"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(0, "before;"); err != nil {
		t.Fatal(err)
	}
	c.Drop()
	// The next request auto-resumes; it must land in "notes" without a
	// fresh USE.
	if _, err := c.Insert(0, "after;"); err != nil {
		t.Fatal(err)
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	notes, _ := s.Document("notes")
	if notes != "after;before;" {
		t.Fatalf("notes = %q", notes)
	}
	if todo, _ := s.Document("todo"); todo != "" {
		t.Fatalf("todo = %q, edit leaked across documents", todo)
	}
	if s.Stats().Get("resumed") < 1 {
		t.Fatal("no resume happened")
	}
}

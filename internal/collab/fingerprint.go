package collab

import (
	"hash/fnv"
	"sort"
	"strings"
)

// CanonicalFingerprint hashes a document's `;`-terminated markers in
// sorted order. Chaos workloads write one unique marker per edit; the
// interleaving of concurrent clients (and hence the markers' order in the
// final document) legitimately varies run to run with MergeAny's
// first-completed order, but the marker *multiset* must not: an edit
// acked exactly once appears exactly once regardless of faults. Sorting
// before hashing makes the fingerprint insensitive to the legitimate
// variation and bit-sensitive to any lost or duplicated edit.
func CanonicalFingerprint(doc string) uint64 {
	markers := strings.SplitAfter(doc, ";")
	sort.Strings(markers)
	h := fnv.New64a()
	for _, m := range markers {
		h.Write([]byte(m))
	}
	return h.Sum64()
}

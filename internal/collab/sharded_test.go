package collab

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/faultnet"
	"repro/internal/memnet"
)

// shardedDocs is the document set the battery spreads over shards. Five
// names over up to four shards guarantees at least one shard holds more
// than one document and (with this naming) no shard is empty-handed for
// the whole sweep.
var shardedDocs = []string{"alpha", "beta", "gamma", "delta", "epsilon"}

func initialOf(docs []string) map[string]string {
	m := make(map[string]string, len(docs))
	for _, d := range docs {
		m[d] = ""
	}
	return m
}

func docFor(client int) string { return shardedDocs[client%len(shardedDocs)] }

// shardedWorkload runs `clients` concurrent sessions against d, each
// USE-ing its document and writing `edits` unique markers. batch > 0
// queues ops and flushes every `batch` of them instead of one round trip
// per op.
func shardedWorkload(t *testing.T, d Dialer, clients, edits int, opts ClientOptions, batch int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := DialWith(d, opts)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", id, err)
				return
			}
			defer c.Close()
			if _, err := c.Use(docFor(id)); err != nil {
				errs <- fmt.Errorf("client %d: use: %w", id, err)
				return
			}
			for j := 0; j < edits; j++ {
				marker := fmt.Sprintf("c%d-e%d;", id, j)
				if batch > 0 {
					c.QueueInsert(0, marker)
					if c.Queued() >= batch || j == edits-1 {
						if err := c.Flush(); err != nil {
							errs <- fmt.Errorf("client %d flush at %d: %w", id, j, err)
							return
						}
					}
				} else if _, err := c.Insert(0, marker); err != nil {
					errs <- fmt.Errorf("client %d edit %d: %w", id, j, err)
					return
				}
			}
			if err := c.Bye(); err != nil {
				errs <- fmt.Errorf("client %d: bye: %w", id, err)
				return
			}
			errs <- nil
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// checkShardedExactlyOnce asserts each client's markers appear exactly
// once in its document.
func checkShardedExactlyOnce(t *testing.T, finals map[string]string, clients, edits int) {
	t.Helper()
	for id := 0; id < clients; id++ {
		doc := finals[docFor(id)]
		for j := 0; j < edits; j++ {
			marker := fmt.Sprintf("c%d-e%d;", id, j)
			if n := strings.Count(doc, marker); n != 1 {
				t.Errorf("marker %q appears %d times in %q, want exactly 1", marker, n, docFor(id))
			}
		}
	}
}

// referenceFingerprints runs the same workload against a single-process
// MultiServer and returns the canonical per-document fingerprints — the
// ground truth every sharded topology must reproduce bit-identically.
func referenceFingerprints(t *testing.T, clients, edits int) map[string]uint64 {
	t.Helper()
	l := memnet.Listen(64)
	ref := ServeDocs(l, initialOf(shardedDocs))
	shardedWorkload(t, l, clients, edits, testClientOpts(), 0)
	if err := ref.Shutdown(); err != nil {
		t.Fatalf("reference shutdown: %v", err)
	}
	fps := make(map[string]uint64, len(shardedDocs))
	for _, name := range shardedDocs {
		doc, ok := ref.Document(name)
		if !ok {
			t.Fatalf("reference lost document %q", name)
		}
		fps[name] = CanonicalFingerprint(doc)
	}
	return fps
}

// checkFingerprints compares a sharded run's final documents against the
// reference fingerprints.
func checkFingerprints(t *testing.T, s *ShardedServer, want map[string]uint64) map[string]string {
	t.Helper()
	finals := make(map[string]string, len(shardedDocs))
	for _, name := range shardedDocs {
		doc, ok := s.Document(name)
		if !ok {
			t.Fatalf("sharded service lost document %q", name)
		}
		finals[name] = doc
		if got := CanonicalFingerprint(doc); got != want[name] {
			t.Errorf("document %q fingerprint %016x != reference %016x", name, got, want[name])
		}
	}
	return finals
}

// TestShardedConvergesAcrossShardCounts is the cross-shard determinism
// battery: the same workload over 1, 2 and 4 shards, with and without
// wire batching, swept across GOMAXPROCS, must converge to documents
// bit-identical (canonical fingerprint) to a single-process MultiServer
// reference, with an exact edit count.
func TestShardedConvergesAcrossShardCounts(t *testing.T) {
	const clients, edits = 6, 8
	want := referenceFingerprints(t, clients, edits)
	for _, procs := range []int{1, 4} {
		for _, shards := range []int{1, 2, 4} {
			for _, batch := range []int{0, 4} {
				name := fmt.Sprintf("procs=%d/shards=%d/batch=%d", procs, shards, batch)
				t.Run(name, func(t *testing.T) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
					l := memnet.Listen(64)
					s, err := ServeSharded(l, initialOf(shardedDocs), ShardedOptions{
						Shards:  shards,
						NoBatch: batch == 0, // exercise both router framing modes
					})
					if err != nil {
						t.Fatal(err)
					}
					shardedWorkload(t, l, clients, edits, testClientOpts(), batch)
					if err := s.Shutdown(); err != nil {
						t.Fatalf("shutdown: %v", err)
					}
					finals := checkFingerprints(t, s, want)
					checkShardedExactlyOnce(t, finals, clients, edits)
					if got, wantEdits := s.Edits(), int64(clients*edits); got != wantEdits {
						t.Errorf("edits = %d, want exactly %d", got, wantEdits)
					}
				})
			}
		}
	}
}

// TestShardedChaosConvergence runs the battery's 4-shard topology with
// the inter-node fabric on faultnet — seeded drops, resets and partition
// pulses on the shard links — and demands the same fingerprints as the
// fault-free reference. The router's rid-deduplicated retries are what
// make at-least-once wire delivery converge exactly once.
func TestShardedChaosConvergence(t *testing.T) {
	const clients, edits = 6, 8
	want := referenceFingerprints(t, clients, edits)

	fnet := faultnet.New(faultnet.Config{Seed: 1234, DropProb: 0.03, ResetProb: 0.02})
	l := memnet.Listen(64)
	s, err := ServeSharded(l, initialOf(shardedDocs), ShardedOptions{
		Shards:      4,
		PipeTimeout: 50 * time.Millisecond,
		ShardNet:    func(id int) ListenDialer { return fnet.Listen(id, 64) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// A bounded chaos phase: 40 partition pulses, each blackholing 3
	// writes on a rotating shard link. Bounding the count (rather than
	// pulsing until the workload ends) guarantees the blackholes heal —
	// a pulse cadence faster than the link's write rate would re-arm the
	// swallow budget forever and the run could never converge. Drops and
	// resets keep firing for the whole run regardless.
	stop := make(chan struct{})
	var pulses sync.WaitGroup
	pulses.Add(1)
	go func() {
		defer pulses.Done()
		for i := 0; i < 40; i++ {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				fnet.PartitionFor(i%4, 3)
			}
		}
	}()
	shardedWorkload(t, l, clients, edits, ClientOptions{
		RequestTimeout: 500 * time.Millisecond,
		Backoff:        Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, MaxAttempts: 2000},
	}, 3)
	close(stop)
	pulses.Wait()
	for id := 0; id < 4; id++ {
		fnet.Heal(id)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if injected := fnet.Stats().Get("drop") + fnet.Stats().Get("reset"); injected == 0 {
		t.Fatal("no faults were injected; the chaos run proved nothing")
	}
	finals := checkFingerprints(t, s, want)
	checkShardedExactlyOnce(t, finals, clients, edits)
	if got, wantEdits := s.Edits(), int64(clients*edits); got != wantEdits {
		t.Errorf("edits = %d, want exactly %d", got, wantEdits)
	}
}

// TestShardedKillResume SIGKILLs one shard mid-traffic and resumes it
// from its journal; every client must still complete its workload and
// the final fingerprints must match the fault-free reference — acked ops
// survive the kill (flushed before ack), unacked ones are retried under
// their original rid, so nothing applies twice.
func TestShardedKillResume(t *testing.T) {
	const clients, edits = 6, 10
	want := referenceFingerprints(t, clients, edits)

	l := memnet.Listen(64)
	s, err := ServeSharded(l, initialOf(shardedDocs), ShardedOptions{
		Shards: 2,
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := s.RouteOf(shardedDocs[0])
	if victim < 0 {
		t.Fatal("no route for doc 0")
	}

	workDone := make(chan struct{})
	go func() {
		defer close(workDone)
		shardedWorkload(t, l, clients, edits, ClientOptions{
			RequestTimeout: 500 * time.Millisecond,
			Backoff:        Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, MaxAttempts: 5000},
		}, 3)
	}()

	time.Sleep(5 * time.Millisecond) // let traffic build up
	if err := s.KillShard(victim); err != nil {
		t.Fatalf("kill: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // dead air: clients shed BUSY and retry
	if err := s.ResumeShard(victim); err != nil {
		t.Fatalf("resume: %v", err)
	}
	<-workDone

	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	finals := checkFingerprints(t, s, want)
	checkShardedExactlyOnce(t, finals, clients, edits)
	if got, wantEdits := s.Edits(), int64(clients*edits); got != wantEdits {
		t.Errorf("edits = %d, want exactly %d", got, wantEdits)
	}
	if s.Stats().Get("shard_kills") != 1 || s.Stats().Get("shard_resumes") != 1 {
		t.Errorf("kill/resume counters = %d/%d, want 1/1",
			s.Stats().Get("shard_kills"), s.Stats().Get("shard_resumes"))
	}
}

// TestShardedRejectsLegacyMode pins the router's session-only contract.
func TestShardedRejectsLegacyMode(t *testing.T) {
	l := memnet.Listen(4)
	s, err := ServeSharded(l, initialOf(shardedDocs), ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "INS 0 \"x\"\n")
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "session-only") {
		t.Fatalf("legacy mode not refused: %q", string(buf[:n]))
	}
	conn.Close()
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Get("legacy_refused") == 0 {
		t.Error("legacy_refused counter not bumped")
	}
}

// TestStaleEpochTaxonomy pins the satellite contract: a fenced shard's
// STALE answers classify under dist's epoch taxonomy, at both the
// handshake and the per-op layer.
func TestStaleEpochTaxonomy(t *testing.T) {
	nets := make(map[int]ListenDialer)
	var netsMu sync.Mutex
	l := memnet.Listen(4)
	s, err := ServeSharded(l, initialOf(shardedDocs), ShardedOptions{
		Shards: 2,
		ShardNet: func(id int) ListenDialer {
			n := memnet.Listen(64)
			netsMu.Lock()
			nets[id] = n
			netsMu.Unlock()
			return n
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	netsMu.Lock()
	n0 := nets[0]
	netsMu.Unlock()

	// Handshake fence: SHELLO at a wrong epoch.
	pp := newShardPipes(0, n0, 1, time.Second)
	defer pp.closeAll()
	_, err = pp.exchange(0, 99, []string{"APPLY - 99 alpha GET"})
	if !errors.Is(err, dist.ErrStaleEpoch) {
		t.Fatalf("stale SHELLO: got %v, want dist.ErrStaleEpoch", err)
	}
	var stale dist.StaleEpochError
	if !errors.As(err, &stale) || stale.Epoch != 1 {
		t.Fatalf("stale SHELLO: details %+v, want host epoch 1", err)
	}

	// Per-op fence: correct handshake, wrong APPLY epoch.
	pp2 := newShardPipes(0, n0, 1, time.Second)
	defer pp2.closeAll()
	name := shardedDocs[0]
	for _, d := range shardedDocs { // find a doc shard 0 owns
		if s.RouteOf(d) == 0 {
			name = d
			break
		}
	}
	replies, err := pp2.exchange(0, 1, []string{fmt.Sprintf("APPLY t.1 7 %s INS 0 \"x\"", name)})
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if _, err := s.classifyReply(0, replies[0]); !errors.Is(err, dist.ErrStaleEpoch) {
		t.Fatalf("stale APPLY: got %v, want dist.ErrStaleEpoch", err)
	}
	if s.Stats().Get("shard_stale_apply") == 0 {
		t.Error("shard_stale_apply counter not bumped")
	}
}

// TestShardedHandoffMidTraffic joins a shard and drains another while
// clients are writing. Every document crossing a handoff boundary moves
// by fenced snapshot at a new epoch; in-flight ops either land before
// the fence (and travel, rid included) or retry against the new owner —
// the fingerprints and the exact edit count prove nothing was lost or
// doubled at either boundary.
func TestShardedHandoffMidTraffic(t *testing.T) {
	const clients, edits = 6, 12
	want := referenceFingerprints(t, clients, edits)

	l := memnet.Listen(64)
	s, err := ServeSharded(l, initialOf(shardedDocs), ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	handoffs := make(chan error, 2)
	go func() {
		time.Sleep(2 * time.Millisecond)
		handoffs <- s.AddShard(7)
		time.Sleep(2 * time.Millisecond)
		handoffs <- s.DrainShard(0)
	}()
	shardedWorkload(t, l, clients, edits, testClientOpts(), 2)
	for i := 0; i < 2; i++ {
		if err := <-handoffs; err != nil {
			t.Fatalf("handoff: %v", err)
		}
	}
	if got := s.Epoch(); got != 3 {
		t.Errorf("epoch after two handoffs = %d, want 3", got)
	}
	if got := fmt.Sprint(s.ShardIDs()); got != "[1 7]" {
		t.Errorf("ring members = %v, want [1 7]", got)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	finals := checkFingerprints(t, s, want)
	checkShardedExactlyOnce(t, finals, clients, edits)
	if got, wantEdits := s.Edits(), int64(clients*edits); got != wantEdits {
		t.Errorf("edits = %d, want exactly %d", got, wantEdits)
	}
}

// Package collab is a collaborative text-editing server built on Spawn &
// Merge — operational transformation's home domain (the paper adopts OT
// from CSCW research on "concurrent editors of a document") served with
// the paper's own server architecture (Listing 3): an accept task blocks
// on incoming connections and Clones a sibling per client; every client's
// connection task edits its own copy of the document and merges through
// Sync after each request; the root merges first-completed-first with
// MergeAny.
//
// Concurrent edits from different clients are reconciled by the OT merge
// exactly as in a classic collaborative editor: no locks, no rejected
// edits, every client converges onto the same document.
package collab

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/memnet"
	"repro/internal/mergeable"
	"repro/internal/task"
)

// Server is a running collaborative document server. Create one with
// Serve; stop it by closing the listener (and the clients).
type Server struct {
	listener *memnet.Listener
	doc      *mergeable.Text
	edits    *mergeable.Counter
	done     chan struct{}
	err      error
}

// Serve starts a server for a single shared document with the given
// initial content. It returns immediately; the deterministic core runs
// until the listener closes and every connection task has completed.
func Serve(listener *memnet.Listener, initial string) *Server {
	s := &Server{
		listener: listener,
		doc:      mergeable.NewText(initial),
		edits:    mergeable.NewCounter(0),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.err = task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			ctx.Spawn(s.acceptTask, data...)
			for {
				if _, err := ctx.MergeAny(); err != nil {
					if errors.Is(err, task.ErrNothingToMerge) {
						return nil
					}
					// A connection task failing (client protocol error,
					// broken pipe) must not take the server down.
					continue
				}
			}
		}, s.doc, s.edits)
	}()
	return s
}

// Wait blocks until the server's task tree has completed and returns its
// error.
func (s *Server) Wait() error {
	<-s.done
	return s.err
}

// Document returns the final document. Valid after Wait.
func (s *Server) Document() string { return s.doc.String() }

// Edits returns the number of applied edit requests. Valid after Wait.
func (s *Server) Edits() int64 { return s.edits.Value() }

// acceptTask is Listing 3's accept(): clone a connection task per client.
func (s *Server) acceptTask(ctx *task.Ctx, data []mergeable.Mergeable) error {
	for {
		socket, err := s.listener.Accept()
		if err != nil {
			return nil // listener closed: shutting down
		}
		ctx.Clone(s.connTask(socket))
	}
}

// connTask is Listing 3's conn(): refresh the inherited stale copy, then
// serve edit requests, syncing after each one.
func (s *Server) connTask(socket net.Conn) task.Func {
	return func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		defer socket.Close()
		if err := ctx.Sync(); err != nil {
			return err
		}
		doc := data[0].(*mergeable.Text)
		edits := data[1].(*mergeable.Counter)
		r := bufio.NewReader(socket)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return nil // client hung up
			}
			reply, mutated, quit := applyRequest(doc, strings.TrimSpace(line))
			if mutated {
				edits.Inc()
			}
			if err := ctx.Sync(); err != nil { // merge this request's edit
				fmt.Fprintf(socket, "ERR %v\n", err)
				return err
			}
			// The reply always carries the post-merge document, so the
			// client sees concurrent edits no later than its next
			// round-trip.
			fmt.Fprintf(socket, "%s %s\n", reply, strconv.Quote(doc.String()))
			if quit {
				return nil
			}
		}
	}
}

// applyRequest parses and executes one protocol line against the task's
// copy. Protocol:
//
//	INS <pos> <quoted-text>   insert text at rune position pos
//	DEL <pos> <n>             delete n runes at pos
//	GET                       no edit, just fetch the document
//	BYE                       close the session
//
// Out-of-range positions are clamped into the current document — the
// collaborative-editing convention (the client's view may be one exchange
// behind).
func applyRequest(doc *mergeable.Text, line string) (reply string, mutated, quit bool) {
	fields := strings.SplitN(line, " ", 3)
	switch fields[0] {
	case "INS":
		if len(fields) < 3 {
			return "ERR usage: INS <pos> <quoted-text>", false, false
		}
		pos, err := strconv.Atoi(fields[1])
		if err != nil {
			return "ERR bad position", false, false
		}
		text, err := strconv.Unquote(fields[2])
		if err != nil {
			return "ERR bad text literal", false, false
		}
		pos = clamp(pos, 0, doc.Len())
		doc.Insert(pos, text)
		return "OK", true, false
	case "DEL":
		if len(fields) < 3 {
			return "ERR usage: DEL <pos> <n>", false, false
		}
		pos, err1 := strconv.Atoi(fields[1])
		n, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return "ERR bad numbers", false, false
		}
		pos = clamp(pos, 0, doc.Len())
		n = clamp(n, 0, doc.Len()-pos)
		if n > 0 {
			doc.Delete(pos, n)
			return "OK", true, false
		}
		return "OK", false, false
	case "GET":
		return "OK", false, false
	case "BYE":
		return "OK", false, true
	default:
		return "ERR unknown command", false, false
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Client is a test/demo client for the collaborative server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects a new client.
func Dial(listener *memnet.Listener) (*Client, error) {
	conn, err := listener.Dial()
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// roundtrip sends one request line and parses the reply.
func (c *Client) roundtrip(format string, args ...any) (string, error) {
	if _, err := fmt.Fprintf(c.conn, format+"\n", args...); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	status, rest, _ := strings.Cut(line, " ")
	if status != "OK" {
		return "", fmt.Errorf("collab: server: %s %s", status, rest)
	}
	doc, err := strconv.Unquote(strings.TrimSpace(rest))
	if err != nil {
		return "", fmt.Errorf("collab: bad reply %q: %w", line, err)
	}
	return doc, nil
}

// Insert inserts text at pos and returns the post-merge document.
func (c *Client) Insert(pos int, text string) (string, error) {
	return c.roundtrip("INS %d %s", pos, strconv.Quote(text))
}

// Delete removes n runes at pos and returns the post-merge document.
func (c *Client) Delete(pos, n int) (string, error) {
	return c.roundtrip("DEL %d %d", pos, n)
}

// Get fetches the current document.
func (c *Client) Get() (string, error) {
	return c.roundtrip("GET")
}

// Bye ends the session gracefully and closes the connection.
func (c *Client) Bye() error {
	_, err := c.roundtrip("BYE")
	c.conn.Close()
	return err
}

// Close terminates the connection without a goodbye.
func (c *Client) Close() { c.conn.Close() }

// Package collab is a collaborative text-editing server built on Spawn &
// Merge — operational transformation's home domain (the paper adopts OT
// from CSCW research on "concurrent editors of a document") served with
// the paper's own server architecture (Listing 3): an accept task blocks
// on incoming connections and Clones a sibling per client; every client's
// connection task edits its own copy of the document and merges through
// Sync after each request; the root merges first-completed-first with
// MergeAny.
//
// Concurrent edits from different clients are reconciled by the OT merge
// exactly as in a classic collaborative editor: no locks, no rejected
// edits, every client converges onto the same document.
//
// On top of that core sits a resilient front door (see front.go and
// DESIGN.md §13): server-issued sessions with a bounded replay window
// give exactly-once request processing across reconnects, an admission
// gate sheds overload with explicit BUSY replies, and a draining server
// degrades to read-only instead of going dark. Connections whose first
// line is HELLO or RESUME get the session protocol; anything else is
// served in the original sessionless mode, byte-for-byte compatible.
package collab

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/mergeable"
	"repro/internal/stats"
	"repro/internal/task"
)

// Listener is the accept side of a transport; *memnet.Listener and
// *faultnet.Listener both satisfy it, so the same server runs hermetic
// and under injected chaos.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
}

// Server is a running collaborative document server. Create one with
// Serve or ServeWith; stop it by closing the listener (or Shutdown).
type Server struct {
	listener Listener
	doc      *mergeable.Text
	edits    *mergeable.Counter
	front    *front
	opts     Options
	done     chan struct{}
	err      error
}

// Serve starts a server for a single shared document with the given
// initial content and default options. It returns immediately; the
// deterministic core runs until the listener closes and every connection
// task has completed.
func Serve(listener Listener, initial string) *Server {
	return ServeWith(listener, initial, Options{})
}

// ServeWith starts a server with explicit front-door options (admission
// gates, eviction seed, counters, tracer).
func ServeWith(listener Listener, initial string, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		listener: listener,
		doc:      mergeable.NewText(initial),
		edits:    mergeable.NewCounter(0),
		front:    newFront(opts),
		opts:     opts,
		done:     make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.err = task.RunWith(task.RunConfig{Obs: opts.Tracer}, func(ctx *task.Ctx, data []mergeable.Mergeable) error {
			ctx.Spawn(s.acceptTask, data...)
			for {
				if _, err := ctx.MergeAny(); err != nil {
					if errors.Is(err, task.ErrNothingToMerge) {
						return nil
					}
					// A connection task failing (client protocol error,
					// broken pipe) must not take the server down.
					continue
				}
			}
		}, s.doc, s.edits)
	}()
	return s
}

// Wait blocks until the server's task tree has completed and returns its
// error.
func (s *Server) Wait() error {
	<-s.done
	return s.err
}

// Document returns the final document. Valid after Wait.
func (s *Server) Document() string { return s.doc.String() }

// Edits returns the number of applied edit requests. Valid after Wait.
func (s *Server) Edits() int64 { return s.edits.Value() }

// Stats returns the front door's counters (admitted, shed, resumed,
// replayed, evicted, busy_rate, busy_merges, degraded_get, ...).
func (s *Server) Stats() *stats.Counters { return s.opts.Counters }

// Sessions returns the number of currently live sessions.
func (s *Server) Sessions() int { return s.front.table.live() }

// Drain flips the server read-only: GETs are served, session mutations
// refused with a typed READONLY reason the client surfaces as
// ErrReadOnly.
func (s *Server) Drain() { s.front.drain() }

// Undrain restores full service.
func (s *Server) Undrain() { s.front.undrain() }

// Shutdown drains, closes the listener, flushes every live session so
// their connection tasks complete, and waits for the task tree to exit.
func (s *Server) Shutdown() error {
	s.front.drain()
	s.listener.Close()
	s.front.shutdown()
	return s.Wait()
}

// acceptTask is Listing 3's accept(): clone a connection task per client.
// On listener close it flushes live sessions so every attached connection
// task winds down before the accept task's exit lets the root finish.
func (s *Server) acceptTask(ctx *task.Ctx, data []mergeable.Mergeable) error {
	defer s.front.shutdown()
	for {
		socket, err := s.listener.Accept()
		if err != nil {
			return nil // listener closed: shutting down
		}
		ctx.Clone(s.connTask(socket))
	}
}

// connTask is Listing 3's conn(): refresh the inherited stale copy, then
// serve edit requests, syncing after each one. The first line selects the
// protocol: HELLO/RESUME enters session mode, anything else is served in
// the original sessionless mode.
func (s *Server) connTask(socket net.Conn) task.Func {
	return func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		defer socket.Close()
		if err := ctx.Sync(); err != nil {
			return err
		}
		doc := data[0].(*mergeable.Text)
		edits := data[1].(*mergeable.Counter)
		r := bufio.NewReader(socket)
		first, err := r.ReadString('\n')
		if err != nil {
			return nil // client hung up before a request
		}
		first = strings.TrimSpace(first)
		if isHandshake(first) {
			return s.front.serve(socket, r, first, sessionHandler{
				apply: func(_ *Session, _ uint64, cmd string) sessionOutcome {
					reply, mutated, quit := applyRequest(doc, cmd)
					return sessionOutcome{
						status:  reply,
						payload: func() string { return strconv.Quote(doc.String()) },
						mutated: mutated,
						quit:    quit,
					}
				},
				sync:     ctx.Sync,
				onMutate: edits.Inc,
			})
		}
		s.opts.Counters.Inc("legacy")
		return legacyLoop(ctx, socket, r, first, func(line string) legacyOutcome {
			reply, mutated, quit := applyRequest(doc, line)
			if mutated {
				edits.Inc()
			}
			return legacyOutcome{
				status:  reply,
				payload: func() string { return strconv.Quote(doc.String()) },
				quit:    quit,
			}
		})
	}
}

// legacyOutcome is one handled request of the original sessionless
// protocol. payload (when non-nil) renders the reply's argument after the
// request's merge; noSync answers from local state without merging (the
// multi-document USE/LIST commands).
type legacyOutcome struct {
	status  string
	payload func() string
	quit    bool
	noSync  bool
}

// legacyLoop serves the original sessionless protocol: apply, sync, reply
// with the post-merge document. first is the already-read opening line.
func legacyLoop(ctx *task.Ctx, socket net.Conn, r *bufio.Reader, first string,
	handle func(line string) legacyOutcome) error {
	line := first
	for {
		out := handle(line)
		if !out.noSync {
			if err := ctx.Sync(); err != nil { // merge this request's edit
				fmt.Fprintf(socket, "ERR %v\n", err)
				return err
			}
		}
		// The reply carries the post-merge document, so the client sees
		// concurrent edits no later than its next round-trip.
		if out.payload != nil {
			fmt.Fprintf(socket, "%s %s\n", out.status, out.payload())
		} else {
			fmt.Fprintln(socket, out.status)
		}
		if out.quit {
			return nil
		}
		next, err := r.ReadString('\n')
		if err != nil {
			return nil // client hung up
		}
		line = strings.TrimSpace(next)
	}
}

// applyRequest parses and executes one protocol line against the task's
// copy. Protocol:
//
//	INS <pos> <quoted-text>   insert text at rune position pos
//	DEL <pos> <n>             delete n runes at pos
//	GET                       no edit, just fetch the document
//	BYE                       close the session
//
// Out-of-range positions are clamped into the current document — the
// collaborative-editing convention (the client's view may be one exchange
// behind).
func applyRequest(doc *mergeable.Text, line string) (reply string, mutated, quit bool) {
	fields := strings.SplitN(line, " ", 3)
	switch fields[0] {
	case "INS":
		if len(fields) < 3 {
			return "ERR usage: INS <pos> <quoted-text>", false, false
		}
		pos, err := strconv.Atoi(fields[1])
		if err != nil {
			return "ERR bad position", false, false
		}
		text, err := strconv.Unquote(fields[2])
		if err != nil {
			return "ERR bad text literal", false, false
		}
		pos = clamp(pos, 0, doc.Len())
		doc.Insert(pos, text)
		return "OK", true, false
	case "DEL":
		if len(fields) < 3 {
			return "ERR usage: DEL <pos> <n>", false, false
		}
		pos, err1 := strconv.Atoi(fields[1])
		n, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return "ERR bad numbers", false, false
		}
		pos = clamp(pos, 0, doc.Len())
		n = clamp(n, 0, doc.Len()-pos)
		if n > 0 {
			doc.Delete(pos, n)
			return "OK", true, false
		}
		return "OK", false, false
	case "GET":
		return "OK", false, false
	case "BYE":
		return "OK", false, true
	default:
		return "ERR unknown command", false, false
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

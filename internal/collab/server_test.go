package collab

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/memnet"
)

// startServer spins up a server and returns it with its listener and a
// shutdown helper guarded by a deadline.
func startServer(t *testing.T, initial string) (*Server, *memnet.Listener, func() *Server) {
	t.Helper()
	l := memnet.Listen(16)
	s := Serve(l, initial)
	stop := func() *Server {
		l.Close()
		done := make(chan struct{})
		go func() {
			s.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("server did not shut down")
		}
		return s
	}
	return s, l, stop
}

func TestSingleClientEditing(t *testing.T) {
	_, l, stop := startServer(t, "hello")
	c, err := Dial(l)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c.Insert(5, " world")
	if err != nil {
		t.Fatal(err)
	}
	if doc != "hello world" {
		t.Fatalf("doc = %q", doc)
	}
	doc, err = c.Delete(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if doc != "ello world" {
		t.Fatalf("doc = %q", doc)
	}
	doc, err = c.Insert(0, "H")
	if err != nil {
		t.Fatal(err)
	}
	if doc != "Hello world" {
		t.Fatalf("doc = %q", doc)
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	s := stop()
	if s.Wait() != nil {
		t.Fatal(s.Wait())
	}
	if s.Document() != "Hello world" {
		t.Fatalf("final doc = %q", s.Document())
	}
	if s.Edits() != 3 {
		t.Fatalf("edits = %d", s.Edits())
	}
}

// TestConcurrentClientsConverge is the collaborative-editing core: many
// clients append their own lines concurrently; every line must survive
// into the converged document exactly once.
func TestConcurrentClientsConverge(t *testing.T) {
	_, l, stop := startServer(t, "")
	const clients = 6
	const linesEach = 5

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(l)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < linesEach; j++ {
				// Append at the end of whatever document version the
				// client last saw; OT places concurrent appends safely.
				doc, err := c.Get()
				if err != nil {
					errs <- err
					return
				}
				line := fmt.Sprintf("client%d-line%d\n", id, j)
				if _, err := c.Insert(len([]rune(doc)), line); err != nil {
					errs <- err
					return
				}
			}
			errs <- c.Bye()
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	s := stop()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	doc := s.Document()
	for id := 0; id < clients; id++ {
		for j := 0; j < linesEach; j++ {
			line := fmt.Sprintf("client%d-line%d\n", id, j)
			if got := strings.Count(doc, line); got != 1 {
				t.Errorf("line %q appears %d times", strings.TrimSpace(line), got)
			}
		}
	}
	if s.Edits() != clients*linesEach {
		t.Errorf("edits = %d, want %d", s.Edits(), clients*linesEach)
	}
}

// TestConcurrentEditorsAtSamePosition lets two clients fight over the
// document head; OT must keep both edits.
func TestConcurrentEditorsAtSamePosition(t *testing.T) {
	_, l, stop := startServer(t, "base")
	a, err := Dial(l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dial(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Insert(0, "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(0, "B"); err != nil {
		t.Fatal(err)
	}
	doc, err := a.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "A") || !strings.Contains(doc, "B") || !strings.Contains(doc, "base") {
		t.Fatalf("doc = %q, lost an edit", doc)
	}
	a.Close()
	b.Close()
	s := stop()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolErrors exercises the server's error replies without
// killing the session or the server.
func TestProtocolErrors(t *testing.T) {
	_, l, stop := startServer(t, "abc")
	c, err := Dial(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundtrip("NONSENSE"); err == nil {
		t.Error("unknown command should error")
	}
	if _, err := c.roundtrip("INS x y"); err == nil {
		t.Error("bad position should error")
	}
	if _, err := c.roundtrip("INS 0 notquoted"); err == nil {
		t.Error("bad literal should error")
	}
	if _, err := c.roundtrip("DEL 0"); err == nil {
		t.Error("missing arg should error")
	}
	// The session still works afterwards.
	doc, err := c.Insert(0, "x")
	if err != nil {
		t.Fatal(err)
	}
	if doc != "xabc" {
		t.Fatalf("doc = %q", doc)
	}
	// Clamped edits succeed.
	if _, err := c.Insert(999, "!"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(999, 5); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := stop().Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestAbruptDisconnects drops clients mid-session; the server must keep
// running and shut down cleanly.
func TestAbruptDisconnects(t *testing.T) {
	_, l, stop := startServer(t, "")
	for i := 0; i < 4; i++ {
		c, err := Dial(l)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Insert(0, "x"); err != nil {
			t.Fatal(err)
		}
		c.Close() // no goodbye
	}
	s := stop()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Document(); got != "xxxx" {
		t.Fatalf("doc = %q", got)
	}
}
